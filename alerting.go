package mvg

import (
	"context"
	"fmt"
	"io"

	"mvg/internal/alert"
	"mvg/internal/ml"
)

// Public surface of the alerting subsystem (internal/alert): trigger rules
// evaluated per hop over a prediction stream's (class, proba, drift)
// sequence, driving an explicit OK → PENDING → FIRING → RESOLVED state
// machine. The types are aliases so values flow untranslated between this
// package, the serving layer, and external callers; semantics, the spec
// grammar, and the determinism contract are documented on the alert package
// and in docs/alerting.md.
type (
	// AlertTrigger is one alert rule (alias of alert.Trigger).
	AlertTrigger = alert.Trigger
	// AlertState is one of the four alert states (alias of alert.State).
	AlertState = alert.State
	// AlertTransition is one state change of one trigger.
	AlertTransition = alert.Transition
	// AlertStatus pairs a trigger name with its current state.
	AlertStatus = alert.Status
	// AlertEvent is a deliverable FIRING/RESOLVED notification.
	AlertEvent = alert.Event
	// AlertSink receives alert events (log sink, webhook sink, fanout).
	// The HTTP webhook implementation lives in internal/alert/webhook and
	// is wired up by the binaries (mvgserve -alert-webhook, mvgcli
	// -webhook): keeping it out of this package keeps net/http out of the
	// core library.
	AlertSink = alert.Sink
)

// NewAlertLogSink returns a sink writing one NDJSON event per line to w.
func NewAlertLogSink(w io.Writer) AlertSink { return alert.NewLogSink(w) }

// AlertFanout combines sinks into one that delivers to each in order.
func AlertFanout(sinks ...AlertSink) AlertSink { return alert.Fanout(sinks...) }

// Alert state and trigger-kind constants, re-exported for callers
// configuring triggers programmatically.
const (
	AlertOK       = alert.StateOK
	AlertPending  = alert.StatePending
	AlertFiring   = alert.StateFiring
	AlertResolved = alert.StateResolved

	AlertKindProba = alert.KindProba
	AlertKindDrift = alert.KindDrift
	AlertKindFlip  = alert.KindFlip
)

// ErrBadAlertTrigger matches every invalid trigger configuration or spec
// parse failure (alias of the alert package's sentinel).
var ErrBadAlertTrigger = alert.ErrBadTrigger

// ParseAlertTriggers parses a ';'-separated list of trigger specs in the
// compact key=value grammar ("kind=proba,class=1,rise=0.9,clear=0.6"; see
// docs/alerting.md#trigger-specs). Failures match ErrBadAlertTrigger.
func ParseAlertTriggers(specs string) ([]AlertTrigger, error) {
	return alert.ParseTriggers(specs)
}

// StreamPoint is one hop's full observation from an alerting stream: the
// prediction, the window's drift score (when the model carries a baseline),
// and the alert transitions this hop caused (nil when no trigger changed
// state, and always nil when no triggers are configured).
type StreamPoint struct {
	// Sample is the index of the window-closing sample (Pushed()-1).
	Sample int
	// Class and Proba are the prediction, exactly as Stream.Predict
	// returns them.
	Class int
	Proba []float64
	// Drift is the window's drift score; valid only when HasDrift is true.
	Drift    float64
	HasDrift bool
	// Transitions are the alert state changes caused by this hop, in
	// trigger order.
	Transitions []AlertTransition
}

// SetAlerts installs alert triggers on the stream: from the next hop on,
// PredictAlert evaluates them against each prediction. Triggers are
// validated up front (errors match ErrBadAlertTrigger); drift triggers
// additionally require the model to carry a drift baseline
// (ErrNoDriftBaseline otherwise). Calling SetAlerts replaces any previous
// triggers and resets their states; SetAlerts with no triggers removes
// alerting. Feature-only streams (Pipeline.NewStream) cannot alert.
func (s *Stream) SetAlerts(triggers ...AlertTrigger) error {
	if s.model == nil {
		return fmt.Errorf("mvg: alerts require a model-bound stream (built with Model.NewStream)")
	}
	if len(triggers) == 0 {
		s.alerts = nil
		return nil
	}
	eval, err := alert.NewEvaluator(triggers...)
	if err != nil {
		return err
	}
	if eval.NeedsDrift() && !s.model.HasDrift() {
		return fmt.Errorf("%w: kind=drift triggers need one (retrain or re-save the model)", ErrNoDriftBaseline)
	}
	s.alerts = eval
	return nil
}

// Alerts returns each configured trigger's name and current state, in
// trigger order (nil when no triggers are configured).
func (s *Stream) Alerts() []AlertStatus {
	if s.alerts == nil {
		return nil
	}
	return s.alerts.States()
}

// AlertTriggers returns a copy of the configured triggers with defaults
// filled (nil when no triggers are configured).
func (s *Stream) AlertTriggers() []AlertTrigger {
	if s.alerts == nil {
		return nil
	}
	return s.alerts.Triggers()
}

// PredictAlert classifies the current window and, in the same pass, scores
// its drift against the model's training centroids and advances the alert
// state machine. Features are extracted once and shared by all three. It is
// Predict plus observability: the prediction fields are bit-identical to
// Stream.Predict on the same window, the drift score is deterministic, and
// the transition sequence over a series is bit-identical at every worker
// count (docs/alerting.md#determinism). Works without SetAlerts too —
// Transitions just stays nil.
func (s *Stream) PredictAlert(ctx context.Context) (StreamPoint, error) {
	var pt StreamPoint
	if s.model == nil {
		return pt, fmt.Errorf("mvg: stream is not bound to a model (built with Pipeline.NewStream; use Model.NewStream)")
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return pt, err
		}
	}
	feats, err := s.Features()
	if err != nil {
		return pt, err
	}
	pt.Sample = s.pushed - 1
	// Drift first: classifyFeatures may scale, and the baseline lives in
	// raw feature space.
	if s.model.HasDrift() {
		d, err := s.model.Drift(feats)
		if err != nil {
			return pt, err
		}
		pt.Drift, pt.HasDrift = d, true
	}
	if s.rowIn == nil {
		s.rowIn = make([][]float64, 1)
	}
	s.rowIn[0] = feats
	probas, err := s.model.classifyFeatures(s.rowIn)
	if err != nil {
		return pt, err
	}
	pt.Class, pt.Proba = ml.Predict(probas)[0], probas[0]
	if s.alerts != nil {
		pt.Transitions = s.alerts.Eval(alert.Point{
			Sample:   pt.Sample,
			Class:    pt.Class,
			Proba:    pt.Proba,
			Drift:    pt.Drift,
			HasDrift: pt.HasDrift,
		})
	}
	return pt, nil
}
