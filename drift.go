package mvg

import (
	"math"
)

// Feature-drift baseline: at Train time the model captures one centroid per
// class in raw (pre-scaler) feature space, plus each class's spread — the
// RMS distance of that class's training rows to its centroid. The drift
// score of a window is then its normalized distance to the nearest class:
//
//	Drift(x) = min over classes c of  ‖x − centroid_c‖ / spread_c
//
// A score near or below 1 means the window's feature vector sits where the
// training data sat; scores well above 1 mean the window looks like nothing
// the model was trained on, whatever class the classifier picks — the
// novelty signal the alerting layer thresholds with kind=drift triggers
// (docs/alerting.md#drift-score). The computation is pure float64
// arithmetic over immutable state: deterministic and safe for concurrent
// use.

// driftBaseline is the per-class geometry captured at Train time and
// persisted with the model.
type driftBaseline struct {
	centroids [][]float64 // per class; nil for classes absent from training
	spreads   []float64   // RMS distance of the class rows to the centroid
}

// computeDriftBaseline builds the baseline from the training feature matrix
// and labels. Classes with no rows get a nil centroid and are skipped by
// the score; a degenerate class whose rows coincide gets spread 1 so its
// distances pass through unscaled.
func computeDriftBaseline(X [][]float64, labels []int, classes int) driftBaseline {
	b := driftBaseline{
		centroids: make([][]float64, classes),
		spreads:   make([]float64, classes),
	}
	if len(X) == 0 {
		return b
	}
	width := len(X[0])
	counts := make([]int, classes)
	for i, row := range X {
		c := labels[i]
		if c < 0 || c >= classes {
			continue
		}
		if b.centroids[c] == nil {
			b.centroids[c] = make([]float64, width)
		}
		for j, v := range row {
			b.centroids[c][j] += v
		}
		counts[c]++
	}
	for c, n := range counts {
		if n == 0 {
			continue
		}
		for j := range b.centroids[c] {
			b.centroids[c][j] /= float64(n)
		}
	}
	for i, row := range X {
		c := labels[i]
		if c < 0 || c >= classes || counts[c] == 0 {
			continue
		}
		b.spreads[c] += sqDist(row, b.centroids[c])
	}
	for c, n := range counts {
		if n == 0 {
			continue
		}
		b.spreads[c] = math.Sqrt(b.spreads[c] / float64(n))
		if b.spreads[c] == 0 {
			b.spreads[c] = 1
		}
	}
	return b
}

func sqDist(a, b []float64) float64 {
	var sum float64
	for i, v := range a {
		d := v - b[i]
		sum += d * d
	}
	return sum
}

// empty reports whether the baseline carries no usable centroid. Length
// checks, not nil checks: gob may round-trip absent classes as zero-length
// rows.
func (b driftBaseline) empty() bool {
	for _, c := range b.centroids {
		if len(c) > 0 {
			return false
		}
	}
	return true
}

// score is the drift score of one feature row (see the file comment).
func (b driftBaseline) score(x []float64) float64 {
	best := math.Inf(1)
	for c, centroid := range b.centroids {
		if len(centroid) != len(x) {
			continue
		}
		if d := math.Sqrt(sqDist(x, centroid)) / b.spreads[c]; d < best {
			best = d
		}
	}
	return best
}

// HasDrift reports whether the model carries a drift baseline. Models
// trained by this version always do; models loaded from snapshots written
// before the baseline existed do not, and their streams reject drift
// triggers with ErrNoDriftBaseline.
func (m *Model) HasDrift() bool { return !m.drift.empty() }

// Drift returns the drift/novelty score of one feature vector in the
// model's raw (pre-scaler) feature space — its distance to the nearest
// training-class centroid, normalized by that class's spread (see the file
// comment for the definition). Vectors of the wrong width return a
// *ShapeError; models without a baseline return ErrNoDriftBaseline.
func (m *Model) Drift(features []float64) (float64, error) {
	if !m.HasDrift() {
		return 0, ErrNoDriftBaseline
	}
	if len(features) != len(m.names) {
		return 0, &ShapeError{What: "feature vector width", Got: len(features), Want: len(m.names)}
	}
	return m.drift.score(features), nil
}
