package mvg

import (
	"context"
	"math/rand"
	"testing"
)

// BenchmarkStreamWithAlerting measures what the alerting layer adds to the
// per-hop serving cost: "predict" is the plain streaming prediction loop
// (Push to the hop boundary + Predict), "alerting" is the same loop through
// PredictAlert with a drift score and three armed triggers. The CI bench
// gate pins both arms' allocs/op (equal: the alerting layer allocates
// nothing per hop, which is the within-10% contract enforced exactly) and
// backstops ns/op with a noise-tolerant ≤1.25× ratio gate
// (.github/BENCH_baseline.json); the measured wall-clock delta is ~1%.
// The classifier is a constant stub so the delta measured is the alerting
// layer, not booster inference noise.
func BenchmarkStreamWithAlerting(b *testing.B) {
	const windowLen, hop = 512, 8
	p, err := NewPipeline(streamBenchCfg())
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()

	rng := rand.New(rand.NewSource(3))
	samples := make([]float64, 1<<14)
	level := 0.0
	for i := range samples {
		level += rng.NormFloat64()
		samples[i] = level
	}

	// A model with a real drift baseline (centroids from two windows of the
	// sample stream) but a free classifier.
	X, err := p.Extract(context.Background(), [][]float64{
		samples[:windowLen], samples[windowLen : 2*windowLen],
	})
	if err != nil {
		b.Fatal(err)
	}
	model := &Model{
		pipe:      p,
		clf:       constProbaClf{classes: 2},
		classes:   2,
		names:     p.FeatureNames(windowLen),
		seriesLen: windowLen,
		drift:     computeDriftBaseline(X, []int{0, 1}, 2),
	}

	run := func(b *testing.B, alerting bool) {
		s, err := model.NewStream(hop)
		if err != nil {
			b.Fatal(err)
		}
		if alerting {
			err := s.SetAlerts(
				AlertTrigger{Kind: AlertKindFlip},
				AlertTrigger{Kind: AlertKindProba, Class: 1, Rise: 0.9, Clear: 0.5},
				AlertTrigger{Kind: AlertKindDrift, Rise: 1e9, Clear: 1},
			)
			if err != nil {
				b.Fatal(err)
			}
		}
		for i := 0; i < 2*windowLen; i++ {
			if _, err := s.Push(samples[i%len(samples)]); err != nil {
				b.Fatal(err)
			}
		}
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		n := 2 * windowLen
		for i := 0; i < b.N; i++ {
			for {
				ready, err := s.Push(samples[n%len(samples)])
				n++
				if err != nil {
					b.Fatal(err)
				}
				if ready {
					break
				}
			}
			if alerting {
				if _, err := s.PredictAlert(ctx); err != nil {
					b.Fatal(err)
				}
			} else {
				if _, _, err := s.Predict(ctx); err != nil {
					b.Fatal(err)
				}
			}
		}
	}

	b.Run("predict", func(b *testing.B) { run(b, false) })
	b.Run("alerting", func(b *testing.B) { run(b, true) })
}
