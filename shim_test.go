package mvg

import "context"

// The deprecated one-shot free functions (Train, ExtractFeatures,
// ExtractFeaturesBatch, TrainMultivariate) are gone from the public
// surface — the Pipeline API is the supported path (docs/api.md). The
// many historical test call sites keep their one-shot shape through
// these package-local shims, which are also a standing check that the
// Pipeline API fully covers what the free functions did.

// trainOnce trains through a fresh pipeline. The pipeline is left open:
// the returned model is bound to it and predictions run on its pool.
func trainOnce(series [][]float64, labels []int, classes int, cfg Config) (*Model, error) {
	p, err := NewPipeline(cfg)
	if err != nil {
		return nil, err
	}
	return p.Train(context.Background(), series, labels, classes)
}

// extractOnce extracts a feature matrix and the matching names through
// a throwaway pipeline.
func extractOnce(series [][]float64, cfg Config) ([][]float64, []string, error) {
	p, err := NewPipeline(cfg)
	if err != nil {
		return nil, nil, err
	}
	defer p.Close()
	X, err := p.Extract(context.Background(), series)
	if err != nil {
		return nil, nil, err
	}
	return X, p.FeatureNames(len(series[0])), nil
}

// trainMultivariateOnce trains a multichannel model through a fresh
// pipeline (left open, like trainOnce).
func trainMultivariateOnce(samples [][][]float64, labels []int, classes int, cfg Config) (*MultivariateModel, error) {
	p, err := NewPipeline(cfg)
	if err != nil {
		return nil, err
	}
	return p.TrainMultivariate(context.Background(), samples, labels, classes)
}
