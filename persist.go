package mvg

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"mvg/internal/ml"
	"mvg/internal/ml/xgb"
)

// Model persistence: a trained xgb-backed pipeline (the default
// configuration) can be written to any io.Writer and restored without
// retraining. The snapshot carries the extraction Config, the fitted
// booster, the optional scaler, and the metadata needed to validate
// inputs at load time.

type modelSnapshot struct {
	Version     int
	Cfg         Config
	Classes     int
	SeriesLen   int
	Names       []string
	ScalerMin   []float64
	ScalerRange []float64
	Booster     []byte
	// Drift baseline (PR 7). Older snapshots simply lack these fields —
	// gob tolerates that in both directions, so the version stays at 1 and
	// such models load with HasDrift() == false.
	Centroids [][]float64
	Spreads   []float64
}

const snapshotVersion = 1

// Save serializes the model. Only the "xgb" classifier back end supports
// persistence; rf/svm/stack models return an error.
func (m *Model) Save(w io.Writer) error {
	booster, ok := m.clf.(*xgb.Model)
	if !ok {
		return fmt.Errorf("mvg: persistence requires the xgb classifier (have %T)", m.clf)
	}
	raw, err := booster.MarshalBinary()
	if err != nil {
		return err
	}
	snap := modelSnapshot{
		Version:   snapshotVersion,
		Cfg:       m.pipe.cfg,
		Classes:   m.classes,
		SeriesLen: m.seriesLen,
		Names:     m.names,
		Booster:   raw,
		Centroids: m.drift.centroids,
		Spreads:   m.drift.spreads,
	}
	// Workers is a deployment-time concurrency knob, not part of the
	// learned model: pinning the training machine's setting would force
	// e.g. a single-threaded CI-trained model to predict single-threaded
	// on a 64-core server forever. Saved models default to GOMAXPROCS;
	// use SetWorkers after LoadModel to tune.
	snap.Cfg.Workers = 0
	if m.scaler != nil {
		snap.ScalerMin = m.scaler.Min
		snap.ScalerRange = m.scaler.Range
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("mvg: encode model: %w", err)
	}
	return nil
}

// LoadModel restores a model written by Save. The loaded model gets its
// own fresh Pipeline (worker pool included), built from the persisted
// Config; use SetWorkers to match the serving machine's parallelism.
func LoadModel(r io.Reader) (*Model, error) {
	var snap modelSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("mvg: decode model: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("mvg: unsupported model version %d", snap.Version)
	}
	p, err := NewPipeline(snap.Cfg)
	if err != nil {
		return nil, err
	}
	booster := &xgb.Model{}
	if err := booster.UnmarshalBinary(snap.Booster); err != nil {
		return nil, err
	}
	m := &Model{
		pipe:      p,
		clf:       booster,
		classes:   snap.Classes,
		names:     snap.Names,
		seriesLen: snap.SeriesLen,
		drift:     driftBaseline{centroids: snap.Centroids, spreads: snap.Spreads},
	}
	if snap.ScalerMin != nil {
		m.scaler = &ml.MinMaxScaler{Min: snap.ScalerMin, Range: snap.ScalerRange}
	}
	return m, nil
}

// SaveFile writes the model to path (see Save for the persistence
// contract). The file is written atomically: a temporary sibling is
// created first and renamed over path only after a successful encode, so
// a concurrent LoadModelFile — e.g. a serving registry reload — never
// observes a half-written snapshot.
func (m *Model) SaveFile(path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("mvg: save model: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := m.Save(tmp); err != nil {
		tmp.Close()
		return err
	}
	// CreateTemp opens 0600; restore normal file permissions so a service
	// running as a different user than the trainer can read the model.
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return fmt.Errorf("mvg: save model: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("mvg: save model: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("mvg: save model: %w", err)
	}
	return nil
}

// LoadModelFile restores a model from a file written by SaveFile (or Save).
func LoadModelFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("mvg: load model: %w", err)
	}
	defer f.Close()
	return LoadModel(f)
}
