package mvg

import (
	"fmt"
	"sort"
	"sync/atomic"

	"mvg/internal/core"
	"mvg/internal/grids"
	"mvg/internal/ml"
	"mvg/internal/ml/modelsel"
	"mvg/internal/ml/stack"
	"mvg/internal/ml/xgb"
)

// Model is a trained MVG classifier: a feature extractor plus a tuned
// generic classifier (and, for SVM-based configurations, the feature
// scaler learned on the training set).
//
// All trained state is immutable, so a Model is safe for concurrent use;
// the only mutable field is the worker cap, which SetWorkers may retune
// while PredictBatch calls are in flight (it is read atomically per call).
type Model struct {
	cfg       Config
	workers   atomic.Int64 // worker cap; cfg.Workers is only the initial value
	extractor *core.Extractor
	scaler    *ml.MinMaxScaler // non-nil when the classifier needs scaling
	clf       ml.Classifier
	classes   int
	names     []string
	seriesLen int
}

// Train extracts MVG features from the labelled series, tunes the selected
// classifier family with stratified cross validation (Section 3.2), refits
// the winner on the full training set, and returns the ready-to-use model.
// Labels must be dense ids in [0, classes).
//
// Both stages run on the parallel batch engine: feature extraction fans the
// training series across cfg.Workers goroutines, and grid search
// cross-validates candidate configurations on the same executor. The
// trained model is identical for every worker count (docs/concurrency.md).
func Train(series [][]float64, labels []int, classes int, cfg Config) (*Model, error) {
	if len(series) == 0 {
		return nil, fmt.Errorf("mvg: no training series")
	}
	if len(series) != len(labels) {
		return nil, fmt.Errorf("mvg: %d series but %d labels", len(series), len(labels))
	}
	e, err := cfg.extractor()
	if err != nil {
		return nil, err
	}
	X, err := e.ExtractDatasetWorkers(series, cfg.Workers)
	if err != nil {
		return nil, err
	}
	clf, scaler, err := fitClassifier(X, labels, classes, cfg)
	if err != nil {
		return nil, err
	}
	m := &Model{
		cfg:       cfg,
		extractor: e,
		scaler:    scaler,
		clf:       clf,
		classes:   classes,
		names:     e.FeatureNames(len(series[0])),
		seriesLen: len(series[0]),
	}
	m.workers.Store(int64(cfg.Workers))
	return m, nil
}

// fitClassifier tunes and fits the configured classifier family on a
// feature matrix, returning the trained model and, for scale-sensitive
// configurations, the fitted scaler.
func fitClassifier(X [][]float64, labels []int, classes int, cfg Config) (ml.Classifier, *ml.MinMaxScaler, error) {
	size := grids.Quick
	if cfg.FullGrid {
		size = grids.Full
	}
	folds := cfg.Folds
	if folds < 2 {
		folds = 3
	}
	switch cfg.Classifier {
	case "", "xgb":
		clf, _, err := modelsel.Best(grids.XGB(size, cfg.Seed), X, labels, classes, folds, cfg.Oversample, cfg.Seed, cfg.Workers)
		return clf, nil, err
	case "rf":
		clf, _, err := modelsel.Best(grids.RF(size, cfg.Seed), X, labels, classes, folds, cfg.Oversample, cfg.Seed, cfg.Workers)
		return clf, nil, err
	case "svm":
		scaler := &ml.MinMaxScaler{}
		scaled, err := scaler.FitTransform(X)
		if err != nil {
			return nil, nil, err
		}
		clf, _, err := modelsel.Best(grids.SVM(size, cfg.Seed), scaled, labels, classes, folds, cfg.Oversample, cfg.Seed, cfg.Workers)
		return clf, scaler, err
	case "stack":
		// Stacking scales features once for everyone; tree models are
		// insensitive to monotone scaling (Section 4.3), so a shared
		// min-max transform is safe and keeps the SVM family happy.
		scaler := &ml.MinMaxScaler{}
		scaled, err := scaler.FitTransform(X)
		if err != nil {
			return nil, nil, err
		}
		ens := stack.New(stack.Params{
			TopK:       5,
			Folds:      folds,
			Oversample: cfg.Oversample,
			Seed:       cfg.Seed,
			Workers:    cfg.Workers,
		},
			stack.Family{Name: "xgb", Candidates: grids.XGB(size, cfg.Seed)},
			stack.Family{Name: "rf", Candidates: grids.RF(size, cfg.Seed)},
			stack.Family{Name: "svm", Candidates: grids.SVM(size, cfg.Seed)},
		)
		if err := ens.Fit(scaled, labels, classes); err != nil {
			return nil, nil, err
		}
		return ens, scaler, nil
	}
	return nil, nil, fmt.Errorf("mvg: unknown classifier %q (want xgb, rf, svm or stack)", cfg.Classifier)
}

// features extracts (and scales, if configured) inference features on the
// parallel batch engine, honouring the model's Config.Workers.
func (m *Model) features(series [][]float64) ([][]float64, error) {
	X, err := m.extractor.ExtractDatasetWorkers(series, m.Workers())
	if err != nil {
		return nil, err
	}
	if m.scaler != nil {
		return m.scaler.Transform(X)
	}
	return X, nil
}

// PredictProba returns one class-probability vector per series, fanning
// feature extraction across the model's worker pool (Config.Workers;
// 0 = GOMAXPROCS) with per-worker scratch reuse. Row i always corresponds
// to series[i] and the probabilities are byte-identical for every worker
// count (docs/concurrency.md).
func (m *Model) PredictProba(series [][]float64) ([][]float64, error) {
	X, err := m.features(series)
	if err != nil {
		return nil, err
	}
	return m.clf.PredictProba(X)
}

// PredictBatch classifies a batch of series on the parallel extraction
// engine and returns the most probable class per series, in input order.
// See PredictProba for the concurrency and determinism guarantees.
func (m *Model) PredictBatch(series [][]float64) ([]int, error) {
	proba, err := m.PredictProba(series)
	if err != nil {
		return nil, err
	}
	return ml.Predict(proba), nil
}

// Predict returns the most probable class per series. It is an alias for
// PredictBatch kept for single-call readability.
func (m *Model) Predict(series [][]float64) ([]int, error) {
	return m.PredictBatch(series)
}

// ErrorRate scores the model on a labelled test set (the paper's metric).
func (m *Model) ErrorRate(series [][]float64, labels []int) (float64, error) {
	pred, err := m.Predict(series)
	if err != nil {
		return 0, err
	}
	if len(pred) != len(labels) {
		return 0, fmt.Errorf("mvg: %d predictions but %d labels", len(pred), len(labels))
	}
	return ml.ErrorRate(pred, labels), nil
}

// Classes returns the number of classes the model was trained with.
func (m *Model) Classes() int { return m.classes }

// SeriesLen returns the series length the model was trained on. Inputs to
// PredictBatch and PredictProba must have this length.
func (m *Model) SeriesLen() int { return m.seriesLen }

// SetWorkers retunes the worker-goroutine cap used by PredictBatch and
// PredictProba (0 = GOMAXPROCS). Predictions are byte-identical for every
// worker count, so this only affects throughput — the knob exists so a
// model trained (or loaded) on one machine can match the parallelism of
// the machine it serves on. It is safe to call while predictions are in
// flight: in-flight batches keep the count they started with, later
// batches pick up the new value.
func (m *Model) SetWorkers(workers int) { m.workers.Store(int64(workers)) }

// Workers reports the current worker-goroutine cap (0 = GOMAXPROCS).
func (m *Model) Workers() int { return int(m.workers.Load()) }

// FeatureNames returns the names of the extracted features in order
// (e.g. "T0.HVG.P(M44)"; the layout is specified in docs/features.md).
func (m *Model) FeatureNames() []string {
	out := make([]string, len(m.names))
	copy(out, m.names)
	return out
}

// FeatureWeight pairs a feature name with its importance.
type FeatureWeight struct {
	Name   string
	Weight float64
}

// FeatureImportance returns gain-based feature importances sorted by
// descending weight (the paper's Figure 10 case study). It is only
// available for the "xgb" classifier.
func (m *Model) FeatureImportance() ([]FeatureWeight, error) {
	booster, ok := m.clf.(*xgb.Model)
	if !ok {
		return nil, fmt.Errorf("mvg: feature importance requires the xgb classifier (have %T)", m.clf)
	}
	imp := booster.FeatureImportance()
	if len(imp) != len(m.names) {
		return nil, fmt.Errorf("mvg: importance width %d != %d features", len(imp), len(m.names))
	}
	out := make([]FeatureWeight, len(imp))
	for i, w := range imp {
		out[i] = FeatureWeight{Name: m.names[i], Weight: w}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Weight > out[j].Weight })
	return out, nil
}
