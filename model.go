package mvg

import (
	"context"
	"fmt"
	"sort"

	"mvg/internal/grids"
	"mvg/internal/ml"
	"mvg/internal/ml/modelsel"
	"mvg/internal/ml/stack"
	"mvg/internal/ml/xgb"
	"mvg/internal/parallel"
)

// Model is a trained MVG classifier: a tuned generic classifier (and, for
// SVM-based configurations, the feature scaler learned on the training
// set) bound to the Pipeline that extracted its features. Predictions run
// on that pipeline's persistent worker pool, so a model served in a hot
// loop keeps its extraction scratch warm across requests.
//
// All trained state is immutable, so a Model is safe for concurrent use.
// The worker cap lives on the pipeline and may be retuned with SetWorkers
// while predictions are in flight.
type Model struct {
	pipe      *Pipeline
	scaler    *ml.MinMaxScaler // non-nil when the classifier needs scaling
	clf       ml.Classifier
	classes   int
	names     []string
	seriesLen int
	drift     driftBaseline // per-class feature centroids captured at Train time
}

// fitClassifier tunes and fits the configured classifier family on a
// feature matrix using the given executor for grid-search fan-out,
// returning the trained model and, for scale-sensitive configurations, the
// fitted scaler.
func fitClassifier(ctx context.Context, run parallel.Runner, X [][]float64, labels []int, classes int, cfg Config) (ml.Classifier, *ml.MinMaxScaler, error) {
	size := grids.Quick
	if cfg.FullGrid {
		size = grids.Full
	}
	folds := cfg.Folds
	if folds < 2 {
		folds = 3
	}
	switch cfg.Classifier {
	case "", "xgb":
		clf, _, err := modelsel.Best(ctx, run, grids.XGB(size, cfg.Seed), X, labels, classes, folds, cfg.Oversample, cfg.Seed)
		return clf, nil, err
	case "rf":
		clf, _, err := modelsel.Best(ctx, run, grids.RF(size, cfg.Seed), X, labels, classes, folds, cfg.Oversample, cfg.Seed)
		return clf, nil, err
	case "svm":
		scaler := &ml.MinMaxScaler{}
		scaled, err := scaler.FitTransform(X)
		if err != nil {
			return nil, nil, err
		}
		clf, _, err := modelsel.Best(ctx, run, grids.SVM(size, cfg.Seed), scaled, labels, classes, folds, cfg.Oversample, cfg.Seed)
		return clf, scaler, err
	case "stack":
		// Stacking scales features once for everyone; tree models are
		// insensitive to monotone scaling (Section 4.3), so a shared
		// min-max transform is safe and keeps the SVM family happy.
		scaler := &ml.MinMaxScaler{}
		scaled, err := scaler.FitTransform(X)
		if err != nil {
			return nil, nil, err
		}
		ens := stack.New(stack.Params{
			TopK:       5,
			Folds:      folds,
			Oversample: cfg.Oversample,
			Seed:       cfg.Seed,
			Workers:    cfg.Workers,
		},
			stack.Family{Name: "xgb", Candidates: grids.XGB(size, cfg.Seed)},
			stack.Family{Name: "rf", Candidates: grids.RF(size, cfg.Seed)},
			stack.Family{Name: "svm", Candidates: grids.SVM(size, cfg.Seed)},
		)
		if err := ens.FitContext(ctx, run, scaled, labels, classes); err != nil {
			return nil, nil, err
		}
		return ens, scaler, nil
	}
	// Unreachable through the public API: Config.validateClassifier gates
	// every path into here. Hitting this means a family was whitelisted
	// without a dispatch arm.
	return nil, nil, fmt.Errorf("mvg: internal: classifier %q passed validation but has no dispatch arm", cfg.Classifier)
}

// features extracts inference features on the model's pipeline, after
// validating every series against the training length.
func (m *Model) features(ctx context.Context, series [][]float64) ([][]float64, error) {
	for i, s := range series {
		if len(s) != m.seriesLen {
			return nil, &ShapeError{What: fmt.Sprintf("series %d length", i), Got: len(s), Want: m.seriesLen}
		}
	}
	return m.pipe.Extract(ctx, series)
}

// classifyFeatures is the single scale-then-classify tail shared by every
// prediction path — batch (PredictProba) and streaming (Stream.Predict) —
// so the two can never drift: it applies the fitted scaler when the
// classifier needs one and returns the class-probability rows.
func (m *Model) classifyFeatures(X [][]float64) ([][]float64, error) {
	if m.scaler != nil {
		var err error
		X, err = m.scaler.Transform(X)
		if err != nil {
			return nil, err
		}
	}
	return m.clf.PredictProba(X)
}

// PredictProba returns one class-probability vector per series, fanning
// feature extraction across the pipeline's worker pool (0 = GOMAXPROCS)
// with per-worker scratch reuse. Row i always corresponds to series[i] and
// the probabilities are byte-identical for every worker count
// (docs/concurrency.md). The context is checked between per-series jobs; a
// cancelled call returns ctx.Err() promptly. A series whose length differs
// from the training length returns a *ShapeError before any extraction
// runs.
func (m *Model) PredictProba(ctx context.Context, series [][]float64) ([][]float64, error) {
	X, err := m.features(ctx, series)
	if err != nil {
		return nil, err
	}
	return m.classifyFeatures(X)
}

// PredictBatch classifies a batch of series on the model's pipeline and
// returns the most probable class per series, in input order. See
// PredictProba for the concurrency, cancellation and determinism
// guarantees.
func (m *Model) PredictBatch(ctx context.Context, series [][]float64) ([]int, error) {
	proba, err := m.PredictProba(ctx, series)
	if err != nil {
		return nil, err
	}
	return ml.Predict(proba), nil
}

// Predict returns the most probable class per series. It is an alias for
// PredictBatch kept for single-call readability.
func (m *Model) Predict(ctx context.Context, series [][]float64) ([]int, error) {
	return m.PredictBatch(ctx, series)
}

// ErrorRate scores the model on a labelled test set (the paper's metric).
func (m *Model) ErrorRate(ctx context.Context, series [][]float64, labels []int) (float64, error) {
	pred, err := m.Predict(ctx, series)
	if err != nil {
		return 0, err
	}
	if len(pred) != len(labels) {
		return 0, &ShapeError{What: "labels", Got: len(labels), Want: len(pred)}
	}
	return ml.ErrorRate(pred, labels), nil
}

// Pipeline returns the pipeline the model predicts on — the one that
// trained it (Pipeline.Train) or the dedicated pipeline built by the
// deprecated free functions. Closing it invalidates the model.
func (m *Model) Pipeline() *Pipeline { return m.pipe }

// Classes returns the number of classes the model was trained with.
func (m *Model) Classes() int { return m.classes }

// SeriesLen returns the series length the model was trained on. Inputs to
// PredictBatch and PredictProba must have this length.
func (m *Model) SeriesLen() int { return m.seriesLen }

// SetWorkers retunes the worker-goroutine cap used by PredictBatch and
// PredictProba (0 = GOMAXPROCS). Predictions are byte-identical for every
// worker count, so this only affects throughput — the knob exists so a
// model trained (or loaded) on one machine can match the parallelism of
// the machine it serves on. It is safe to call while predictions are in
// flight: in-flight batches keep the count they started with, later
// batches pick up the new value. It delegates to the model's pipeline, so
// models sharing a pipeline share the cap.
func (m *Model) SetWorkers(workers int) { m.pipe.SetWorkers(workers) }

// Workers reports the current worker-goroutine cap (0 = GOMAXPROCS).
func (m *Model) Workers() int { return m.pipe.Workers() }

// FeatureNames returns the names of the extracted features in order
// (e.g. "T0.HVG.P(M44)"; the layout is specified in docs/features.md).
func (m *Model) FeatureNames() []string {
	out := make([]string, len(m.names))
	copy(out, m.names)
	return out
}

// FeatureWeight pairs a feature name with its importance.
type FeatureWeight struct {
	Name   string
	Weight float64
}

// FeatureImportance returns gain-based feature importances sorted by
// descending weight (the paper's Figure 10 case study). It is only
// available for the "xgb" classifier.
func (m *Model) FeatureImportance() ([]FeatureWeight, error) {
	booster, ok := m.clf.(*xgb.Model)
	if !ok {
		return nil, fmt.Errorf("mvg: feature importance requires the xgb classifier (have %T)", m.clf)
	}
	imp := booster.FeatureImportance()
	if len(imp) != len(m.names) {
		return nil, fmt.Errorf("mvg: importance width %d != %d features", len(imp), len(m.names))
	}
	out := make([]FeatureWeight, len(imp))
	for i, w := range imp {
		out[i] = FeatureWeight{Name: m.names[i], Weight: w}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Weight > out[j].Weight })
	return out, nil
}
