// Command benchcheck gates CI on benchmark regressions. It parses the
// text output of `go test -bench -benchmem`, writes the parsed results as
// JSON (the build artifact), and compares allocs/op — the metric the
// parallel engine's scratch-reuse design pins — against a checked-in
// baseline, failing when any benchmark regresses beyond the tolerance.
//
// allocs/op is the gate (rather than ns/op) because it is deterministic
// across runner hardware: a scratch-reuse regression shows up as extra
// allocations on every machine, while wall-clock noise on shared CI
// runners would make a time gate flap.
//
// Usage:
//
//	go test -bench=ExtractBatch -benchtime=1x -benchmem -run='^$' . | tee bench.txt
//	go run ./.github/benchcheck -in bench.txt -baseline .github/BENCH_baseline.json -json-out bench.json
//	go run ./.github/benchcheck -in bench.txt -baseline .github/BENCH_baseline.json -update   # re-pin
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Baseline is the checked-in regression gate.
type Baseline struct {
	Note       string                   `json:"note,omitempty"`
	Tolerance  float64                  `json:"tolerance"`
	Benchmarks map[string]BaselineEntry `json:"benchmarks"`
	// Ratios are cross-benchmark speed gates evaluated within a single
	// run, so — unlike an absolute ns/op gate — they hold on any runner
	// hardware. The streaming engine's "incremental beats full recompute
	// by ≥5×" claim is pinned this way.
	Ratios []RatioGate `json:"ratios,omitempty"`
}

// RatioGate fails the run when Name's ns/op exceeds MaxFraction of
// Reference's ns/op in the same run (e.g. 0.2 enforces a ≥5× speedup).
type RatioGate struct {
	Name        string  `json:"name"`
	Reference   string  `json:"reference"`
	MaxFraction float64 `json:"max_fraction"`
	Why         string  `json:"why,omitempty"`
}

// BaselineEntry pins what compare() gates — allocs/op only — plus the
// baseline's ns/op, which is never gated (wall-clock noise on shared CI
// runners would make a time gate flap) but is reported as a delta in the
// job summary so reviewers see speedups and slowdowns at a glance.
type BaselineEntry struct {
	AllocsPerOp float64 `json:"allocs_per_op"`
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
}

// procSuffix strips the trailing -GOMAXPROCS from a benchmark name so
// baselines pinned on one machine match runners with different core
// counts ("BenchmarkExtractBatch/workers=1-8" -> ".../workers=1").
var procSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	var (
		in       = flag.String("in", "", "benchmark text output to parse (default stdin)")
		baseline = flag.String("baseline", "", "baseline JSON to compare against")
		jsonOut  = flag.String("json-out", "", "write parsed results as JSON to this file")
		update   = flag.Bool("update", false, "rewrite the baseline from the parsed results instead of comparing")
		tol      = flag.Float64("tolerance", -1, "allowed fractional allocs/op regression (overrides the baseline's own tolerance)")
		summary  = flag.String("summary-out", "", "write a markdown summary (ns/op deltas vs baseline, allocs gate) to this file")
	)
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	results, err := parse(r)
	if err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark lines found (did the bench run with -benchmem?)"))
	}

	if *jsonOut != "" {
		raw, err := json.MarshalIndent(sorted(results), "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonOut, append(raw, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("benchcheck: wrote %d results to %s\n", len(results), *jsonOut)
	}
	if *baseline == "" {
		return
	}

	if *update {
		if err := writeBaseline(*baseline, results, *tol); err != nil {
			fatal(err)
		}
		fmt.Printf("benchcheck: pinned %d benchmarks in %s\n", len(results), *baseline)
		return
	}

	base, err := readBaseline(*baseline)
	if err != nil {
		fatal(err)
	}
	tolerance := base.Tolerance
	if *tol >= 0 {
		tolerance = *tol
	}
	if *summary != "" {
		if err := os.WriteFile(*summary, []byte(markdownSummary(results, base, tolerance)), 0o644); err != nil {
			fatal(err)
		}
	}
	if err := compare(results, base, tolerance); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcheck:", err)
	os.Exit(1)
}

// parse extracts benchmark results from `go test -bench` text output.
// Lines look like:
//
//	BenchmarkExtractBatch/workers=1-8  1  56405794 ns/op  37456 B/op  212 allocs/op  1134 series/sec
func parse(r io.Reader) (map[string]Result, error) {
	results := make(map[string]Result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{
			Name:        procSuffix.ReplaceAllString(fields[0], ""),
			Iterations:  iters,
			AllocsPerOp: -1,
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			}
		}
		results[res.Name] = res
	}
	return results, sc.Err()
}

func sorted(results map[string]Result) []Result {
	out := make([]Result, 0, len(results))
	for _, res := range results {
		out = append(out, res)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func readBaseline(path string) (*Baseline, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if len(base.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s pins no benchmarks", path)
	}
	return &base, nil
}

func writeBaseline(path string, results map[string]Result, tol float64) error {
	if tol < 0 {
		tol = 0.10
	}
	base := Baseline{
		Note:       "allocs/op gate for the parallel batch engine; re-pin with the -update command in .github/benchcheck/main.go",
		Tolerance:  tol,
		Benchmarks: make(map[string]BaselineEntry, len(results)),
	}
	// Re-pinning refreshes the per-benchmark numbers; the ratio gates are
	// hand-written policy and survive the rewrite. A baseline that exists
	// but cannot be read must abort rather than silently drop the gates.
	if prev, err := readBaseline(path); err == nil {
		base.Ratios = prev.Ratios
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("refusing to re-pin over unreadable baseline (ratio gates would be lost): %w", err)
	}
	for name, res := range results {
		if res.AllocsPerOp < 0 {
			return fmt.Errorf("%s has no allocs/op (run the bench with -benchmem)", name)
		}
		base.Benchmarks[name] = BaselineEntry{AllocsPerOp: res.AllocsPerOp, NsPerOp: res.NsPerOp}
	}
	raw, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// markdownSummary renders the run as a GitHub job-summary table: ns/op
// with its delta against the pinned baseline (informational — wall time is
// never gated) and the allocs/op gate verdict.
func markdownSummary(results map[string]Result, base *Baseline, tolerance float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "## Benchmark gate\n\n")
	fmt.Fprintf(&b, "allocs/op gated at +%.0f%%; ns/op deltas are informational.\n\n", tolerance*100)
	b.WriteString("| benchmark | ns/op | Δ ns/op vs baseline | B/op | allocs/op | baseline allocs/op | gate |\n")
	b.WriteString("|---|---:|---:|---:|---:|---:|---|\n")
	for _, res := range sorted(results) {
		pin, pinned := base.Benchmarks[res.Name]
		delta := "n/a"
		if pinned && pin.NsPerOp > 0 && res.NsPerOp > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(res.NsPerOp-pin.NsPerOp)/pin.NsPerOp)
		}
		gate := "not pinned"
		baseAllocs := "—"
		if pinned {
			baseAllocs = fmt.Sprintf("%.0f", pin.AllocsPerOp)
			if res.AllocsPerOp <= pin.AllocsPerOp*(1+tolerance) {
				gate = "ok"
			} else {
				gate = "**FAIL**"
			}
		}
		fmt.Fprintf(&b, "| %s | %.0f | %s | %.0f | %.0f | %s | %s |\n",
			res.Name, res.NsPerOp, delta, res.BytesPerOp, res.AllocsPerOp, baseAllocs, gate)
	}
	// Pinned benchmarks absent from the run fail compare(); surface them in
	// the table too so the summary never reads green while the job is red.
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		if _, ok := results[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		pin := base.Benchmarks[name]
		fmt.Fprintf(&b, "| %s | — | — | — | — | %.0f | **FAIL** (missing from run) |\n",
			name, pin.AllocsPerOp)
	}
	if len(base.Ratios) > 0 {
		b.WriteString("\n### Ratio gates (same-run speedups)\n\n")
		b.WriteString("| benchmark | vs | speedup | required | gate |\n")
		b.WriteString("|---|---|---:|---:|---|\n")
		for _, rg := range base.Ratios {
			got, haveGot := results[rg.Name]
			ref, haveRef := results[rg.Reference]
			if !haveGot || !haveRef || got.NsPerOp <= 0 || ref.NsPerOp <= 0 {
				fmt.Fprintf(&b, "| %s | %s | — | ≥%.1fx | **FAIL** (missing) |\n", rg.Name, rg.Reference, 1/rg.MaxFraction)
				continue
			}
			gate := "ok"
			if _, ok := checkRatio(results, rg); !ok {
				gate = "**FAIL**"
			}
			fmt.Fprintf(&b, "| %s | %s | %.1fx | ≥%.1fx | %s |\n",
				rg.Name, rg.Reference, ref.NsPerOp/got.NsPerOp, 1/rg.MaxFraction, gate)
		}
	}
	return b.String()
}

// compare fails when any pinned benchmark is missing from the run or its
// allocs/op exceeds baseline*(1+tolerance). Extra benchmarks in the run
// are reported but never gate, so adding benchmarks doesn't break CI.
func compare(results map[string]Result, base *Baseline, tolerance float64) error {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	var failures []string
	fmt.Printf("benchcheck: gating %d benchmarks at +%.0f%% allocs/op tolerance\n", len(names), tolerance*100)
	for _, name := range names {
		pin := base.Benchmarks[name]
		got, ok := results[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: pinned in baseline but missing from this run", name))
			continue
		}
		if got.AllocsPerOp < 0 {
			failures = append(failures, fmt.Sprintf("%s: no allocs/op in output (run with -benchmem)", name))
			continue
		}
		allowed := pin.AllocsPerOp * (1 + tolerance)
		status := "ok"
		if got.AllocsPerOp > allowed {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf("%s: %.0f allocs/op exceeds baseline %.0f (+%.0f%% allowed)",
				name, got.AllocsPerOp, pin.AllocsPerOp, tolerance*100))
		}
		fmt.Printf("  %-48s %8.0f allocs/op (baseline %8.0f, allowed %8.0f)  %s\n",
			name, got.AllocsPerOp, pin.AllocsPerOp, allowed, status)
	}
	for _, rg := range base.Ratios {
		msg, ok := checkRatio(results, rg)
		fmt.Printf("  %s\n", msg)
		if !ok {
			failures = append(failures, msg)
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("benchmark regression:\n  %s", strings.Join(failures, "\n  "))
	}
	fmt.Println("benchcheck: no benchmark regressions")
	return nil
}

// checkRatio evaluates one cross-benchmark speed gate against the run.
func checkRatio(results map[string]Result, rg RatioGate) (msg string, ok bool) {
	got, haveGot := results[rg.Name]
	ref, haveRef := results[rg.Reference]
	switch {
	case !haveGot:
		return fmt.Sprintf("ratio gate %s: benchmark missing from this run", rg.Name), false
	case !haveRef:
		return fmt.Sprintf("ratio gate %s: reference %s missing from this run", rg.Name, rg.Reference), false
	case got.NsPerOp <= 0 || ref.NsPerOp <= 0:
		return fmt.Sprintf("ratio gate %s: no ns/op in output", rg.Name), false
	}
	frac := got.NsPerOp / ref.NsPerOp
	if frac > rg.MaxFraction {
		return fmt.Sprintf("ratio gate %s: %.0f ns/op is %.3f of %s's %.0f, exceeds max %.3f (want ≥%.1fx speedup)",
			rg.Name, got.NsPerOp, frac, rg.Reference, ref.NsPerOp, rg.MaxFraction, 1/rg.MaxFraction), false
	}
	return fmt.Sprintf("ratio gate %s: %.1fx faster than %s (≥%.1fx required)  ok",
		rg.Name, 1/frac, rg.Reference, 1/rg.MaxFraction), true
}
