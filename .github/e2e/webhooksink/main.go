// Command webhooksink is the e2e alert smoke test's capture server: it
// accepts webhook POSTs on /hook, appends each body as one NDJSON line to
// the -out file (synced before acknowledging, so a polling test never
// reads a half-written line), and reports the delivery count on /count.
// It is test scaffolding for .github/e2e/alert_smoke.sh, not part of the
// library.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sync"
)

func main() {
	var (
		addr = flag.String("addr", "127.0.0.1:18091", "listen address")
		out  = flag.String("out", "", "append one NDJSON line per delivery to this file (required)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "webhooksink: -out is required")
		os.Exit(2)
	}
	f, err := os.OpenFile(*out, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		log.Fatal(err)
	}

	var (
		mu    sync.Mutex
		count int
	)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /hook", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		mu.Lock()
		defer mu.Unlock()
		if _, err := f.Write(append(body, '\n')); err == nil {
			err = f.Sync()
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		count++
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /count", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		fmt.Fprintln(w, count)
	})
	log.Printf("webhooksink: listening on %s, capturing to %s", *addr, *out)
	log.Fatal(http.ListenAndServe(*addr, mux))
}
