#!/usr/bin/env bash
# End-to-end smoke test of the bulk offline extraction pipeline
# (docs/bulk.md): stream a synthetic dataset to disk with tsgen bulk
# mode, extract it into a columnar feature store, prove resume skips
# every durable chunk and repairs a lost shard to a byte-identical
# store, run the validation suite with the re-extraction parity check,
# train from the store, and assert validation fails on corruption.
# Run locally with: bash .github/e2e/bulk_smoke.sh
set -euo pipefail

WORK="$(mktemp -d)"
cleanup() { rm -rf "$WORK"; }
trap cleanup EXIT

note() { printf '\n== %s ==\n' "$*"; }
die() { echo "e2e: FAIL: $*" >&2; exit 1; }

ROWS=512
CHUNK=128
CHUNKS=$((ROWS / CHUNK))
STORE="$WORK/store"

note "build binaries"
go build -o "$WORK/bin/tsgen" ./cmd/tsgen
go build -o "$WORK/bin/mvgcli" ./cmd/mvgcli

note "tsgen bulk mode: stream $ROWS rows to one UCR file"
"$WORK/bin/tsgen" -rows "$ROWS" -dataset SynthECG -seed 5 -out "$WORK/big_TRAIN" \
  | tee "$WORK/tsgen.log"
grep -q "wrote $WORK/big_TRAIN: $ROWS rows" "$WORK/tsgen.log" || die "tsgen bulk summary"
LINES=$(wc -l < "$WORK/big_TRAIN")
[ "$LINES" = "$ROWS" ] || die "big_TRAIN has $LINES lines, want $ROWS"

note "extract into a feature store ($CHUNKS chunks of $CHUNK)"
"$WORK/bin/mvgcli" extract -data "$WORK/big_TRAIN" -out "$STORE" \
  -chunk "$CHUNK" -q | tee "$WORK/extract.log"
grep -q "$ROWS rows in $CHUNKS chunks ($CHUNKS extracted, 0 resumed)" "$WORK/extract.log" \
  || die "fresh extract summary"
[ -f "$STORE/manifest.json" ] || die "no manifest written"

note "rerun resumes: every chunk durable, nothing recomputed"
"$WORK/bin/mvgcli" extract -data "$WORK/big_TRAIN" -out "$STORE" \
  -chunk "$CHUNK" -q | tee "$WORK/resume.log"
grep -q "(0 extracted, $CHUNKS resumed)" "$WORK/resume.log" || die "full-resume summary"

note "interrupted run: delete one shard, resume repairs byte-identically"
( cd "$STORE" && sha256sum manifest.json shard-*.fm ) > "$WORK/store.before"
rm "$STORE/shard-000002.fm"
"$WORK/bin/mvgcli" extract -data "$WORK/big_TRAIN" -out "$STORE" \
  -chunk "$CHUNK" -q | tee "$WORK/repair.log"
grep -q "(1 extracted, $((CHUNKS - 1)) resumed)" "$WORK/repair.log" \
  || die "repair run should re-extract exactly the lost chunk"
( cd "$STORE" && sha256sum manifest.json shard-*.fm ) > "$WORK/store.after"
diff -u "$WORK/store.before" "$WORK/store.after" \
  || die "repaired store is not byte-identical to the uninterrupted one"

note "validation suite incl. re-extraction parity"
"$WORK/bin/mvgcli" validate -store "$STORE" -data "$WORK/big_TRAIN" \
  -chunk "$CHUNK" -sample 2 | tee "$WORK/validate.log"
for check in manifest shards labels finite counts parity; do
  grep -q "ok   $check" "$WORK/validate.log" || die "validate: no ok line for $check"
done
grep -q 'store is valid' "$WORK/validate.log" || die "validate verdict"

note "train from the store (no re-extraction)"
"$WORK/bin/tsgen" -out "$WORK/data" -dataset SynthECG -seed 5 >/dev/null
"$WORK/bin/mvgcli" -from-store "$STORE" -test "$WORK/data/SynthECG_TEST" \
  -classifier rf -seed 7 | tee "$WORK/train.log"
grep -q "store: $ROWS rows" "$WORK/train.log" || die "from-store header"
grep -q 'error rate:' "$WORK/train.log" || die "from-store training produced no error rate"

note "corruption is caught: flip one shard byte, validate must fail"
python3 - "$STORE/shard-000001.fm" <<'EOF'
import sys
p = sys.argv[1]
b = bytearray(open(p, "rb").read())
b[-1] ^= 0x01
open(p, "wb").write(bytes(b))
EOF
if "$WORK/bin/mvgcli" validate -store "$STORE" > "$WORK/corrupt.log" 2>&1; then
  die "validate passed on a corrupted shard"
fi
grep -q 'store is INVALID' "$WORK/corrupt.log" || die "corrupt validate verdict"
grep -q 'FAIL shards' "$WORK/corrupt.log" || die "corrupt validate should fail the shards check"

echo
echo "e2e: PASS"
