#!/usr/bin/env bash
# End-to-end smoke test of the serving stack: build the real binaries,
# train a model on a synthetic dataset, boot mvgserve, and drive every
# endpoint — /healthz, /v1/models, /predict, /predict_proba and the
# streaming NDJSON endpoint — asserting status codes and JSON shape.
# Run locally with: bash .github/e2e/serve_smoke.sh
set -euo pipefail

PORT="${E2E_PORT:-18080}"
BASE="http://127.0.0.1:${PORT}"
WORK="$(mktemp -d)"
SERVE_PID=""
cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

note() { printf '\n== %s ==\n' "$*"; }
die() { echo "e2e: FAIL: $*" >&2; exit 1; }

command -v jq >/dev/null || die "jq is required"

note "build binaries"
go build -o "$WORK/bin/tsgen" ./cmd/tsgen
go build -o "$WORK/bin/mvgcli" ./cmd/mvgcli
go build -o "$WORK/bin/mvgserve" ./cmd/mvgserve

note "generate synthetic dataset + train a model"
"$WORK/bin/tsgen" -out "$WORK/data" -dataset WarpedShapes -seed 3
mkdir -p "$WORK/models"
"$WORK/bin/mvgcli" \
  -train "$WORK/data/WarpedShapes_TRAIN" \
  -test "$WORK/data/WarpedShapes_TEST" \
  -save "$WORK/models/shapes.mvg" | tee "$WORK/train.log"
grep -q 'model saved to' "$WORK/train.log" || die "training did not save a model"

note "boot mvgserve"
"$WORK/bin/mvgserve" -models "$WORK/models" -addr "127.0.0.1:${PORT}" &
SERVE_PID=$!
for i in $(seq 1 50); do
  if curl -sf "$BASE/healthz" >/dev/null 2>&1; then break; fi
  kill -0 "$SERVE_PID" 2>/dev/null || die "mvgserve exited during startup"
  sleep 0.2
  [ "$i" = 50 ] && die "mvgserve never became healthy"
done

# http_assert METHOD PATH EXPECTED_CODE [BODY_FILE] -> response body on stdout
http_assert() {
  local method="$1" path="$2" want="$3" body="${4:-}"
  local out="$WORK/resp.json" code
  if [ -n "$body" ]; then
    code=$(curl -s -o "$out" -w '%{http_code}' -X "$method" --data-binary "@$body" "$BASE$path")
  else
    code=$(curl -s -o "$out" -w '%{http_code}' -X "$method" "$BASE$path")
  fi
  [ "$code" = "$want" ] || die "$method $path returned $code, want $want: $(cat "$out")"
  cat "$out"
}

note "GET /healthz"
http_assert GET /healthz 200 | jq -e '.status == "ok" and .models == 1' >/dev/null \
  || die "/healthz shape"

note "GET /v1/models"
http_assert GET /v1/models 200 | jq -e \
  '.models | length == 1 and .[0].name == "shapes" and (.[0].features | length > 0)' >/dev/null \
  || die "/v1/models shape"

# One test series, label stripped — the model's exact input length.
SERIES_JSON=$(head -1 "$WORK/data/WarpedShapes_TEST" | cut -d, -f2- | jq -Rc 'split(",") | map(tonumber)')
N_CLASSES=2

note "POST /predict (single + batch)"
echo "{\"series\": $SERIES_JSON}" > "$WORK/req.json"
http_assert POST /v1/models/shapes/predict 200 "$WORK/req.json" \
  | jq -e '.model == "shapes" and (.class | type == "number")' >/dev/null || die "/predict single shape"
echo "{\"batch\": [$SERIES_JSON, $SERIES_JSON]}" > "$WORK/req.json"
http_assert POST /v1/models/shapes/predict 200 "$WORK/req.json" \
  | jq -e '.classes | length == 2 and all(type == "number")' >/dev/null || die "/predict batch shape"

note "POST /predict_proba"
echo "{\"series\": $SERIES_JSON}" > "$WORK/req.json"
http_assert POST /v1/models/shapes/predict_proba 200 "$WORK/req.json" \
  | jq -e ".proba | length == $N_CLASSES and (add > 0.99 and add < 1.01)" >/dev/null \
  || die "/predict_proba shape"

note "POST /stream (NDJSON, 2 windows at hop=64)"
# Two test series back to back = 256 samples through a 128-window model:
# hop=64 must emit predictions at samples 128, 192 and 256, then done.
{ head -2 "$WORK/data/WarpedShapes_TEST" | cut -d, -f2- | tr ',' '\n'; } > "$WORK/stream.txt"
http_assert POST '/v1/models/shapes/stream?hop=64' 200 "$WORK/stream.txt" > "$WORK/stream_out.ndjson"
PRED_LINES=$(jq -s '[.[] | select(.class != null)] | length' "$WORK/stream_out.ndjson")
[ "$PRED_LINES" = 3 ] || die "/stream emitted $PRED_LINES predictions, want 3"
jq -se "[.[] | select(.class != null)] | all(.proba | length == $N_CLASSES)" \
  "$WORK/stream_out.ndjson" >/dev/null || die "/stream proba shape"
jq -se '.[-1].done == true and .[-1].samples == 256 and .[-1].predictions == 3' \
  "$WORK/stream_out.ndjson" >/dev/null || die "/stream terminal line"

note "error statuses"
echo '{"series": [1, 2, 3]}' > "$WORK/req.json"
http_assert POST /v1/models/shapes/predict 400 "$WORK/req.json" >/dev/null     # wrong length
http_assert POST /v1/models/nope/predict 404 "$WORK/req.json" >/dev/null       # unknown model
printf 'not-a-number\n' > "$WORK/bad.txt"
http_assert POST /v1/models/shapes/stream 400 "$WORK/bad.txt" >/dev/null       # malformed sample
http_assert POST '/v1/models/shapes/stream?hop=0' 400 "$WORK/bad.txt" >/dev/null # bad hop

note "graceful shutdown"
kill "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""

# ---------------------------------------------------------------------------
# Overload behavior (docs/robustness.md): reboot with capacity dialed to the
# floor and assert the server sheds deterministically instead of queueing.
# ---------------------------------------------------------------------------
note "boot mvgserve with minimal capacity (-max-inflight 1 -max-queue 0 -max-streams-per-tenant 1)"
"$WORK/bin/mvgserve" -models "$WORK/models" -addr "127.0.0.1:${PORT}" \
  -max-inflight 1 -max-queue 0 -max-streams-per-tenant 1 -retry-after 7s &
SERVE_PID=$!
for i in $(seq 1 50); do
  if curl -sf "$BASE/healthz" >/dev/null 2>&1; then break; fi
  kill -0 "$SERVE_PID" 2>/dev/null || die "overload mvgserve exited during startup"
  sleep 0.2
  [ "$i" = 50 ] && die "overload mvgserve never became healthy"
done

note "stream quota: second same-tenant stream is shed with 429 + Retry-After"
# Hold one dialogue open: stream the window, then keep the body open with a
# sleep so the session stays registered (-T streams stdin chunked).
{ head -1 "$WORK/data/WarpedShapes_TEST" | cut -d, -f2- | tr ',' '\n'; sleep 8; } \
  | curl -sN -o "$WORK/held_stream.ndjson" -X POST -T - "$BASE/v1/models/shapes/stream" &
HELD_PID=$!
for i in $(seq 1 50); do
  STREAMS=$(curl -s "$BASE/healthz" | jq -r '.streams')
  [ "$STREAMS" = 1 ] && break
  sleep 0.2
  [ "$i" = 50 ] && die "held stream never registered (streams=$STREAMS)"
done
printf '1\n' > "$WORK/one.txt"
CODE=$(curl -s -o "$WORK/shed_stream.json" -D "$WORK/shed_headers.txt" -w '%{http_code}' \
  -X POST --data-binary "@$WORK/one.txt" "$BASE/v1/models/shapes/stream")
[ "$CODE" = 429 ] || die "second same-tenant stream returned $CODE, want 429: $(cat "$WORK/shed_stream.json")"
grep -qi '^Retry-After: 7' "$WORK/shed_headers.txt" || die "429 lacks Retry-After: 7 header"
jq -e '.error | test("tenant")' "$WORK/shed_stream.json" >/dev/null || die "429 body: $(cat "$WORK/shed_stream.json")"

note "predict overload: parallel storm against 1 slot / 0 queue"
echo "{\"series\": $SERIES_JSON}" > "$WORK/req.json"
STORM=20
STORM_PIDS=""
for i in $(seq 1 "$STORM"); do
  curl -s -o /dev/null -w '%{http_code}\n' -X POST --data-binary "@$WORK/req.json" \
    "$BASE/v1/models/shapes/predict" > "$WORK/storm_$i.code" &
  STORM_PIDS="$STORM_PIDS $!"
done
# Wait for the storm curls and the held stream (its sleep ends the body,
# so the dialogue closes with a done line).
wait $STORM_PIDS "$HELD_PID" 2>/dev/null || true
cat "$WORK"/storm_*.code > "$WORK/storm.codes"
N_TOTAL=$(wc -l < "$WORK/storm.codes")
N_200=$(grep -c '^200$' "$WORK/storm.codes" || true)
N_429=$(grep -c '^429$' "$WORK/storm.codes" || true)
[ "$N_TOTAL" = "$STORM" ] || die "storm: $N_TOTAL responses, want $STORM"
[ "$((N_200 + N_429))" = "$STORM" ] || die "storm saw codes other than 200/429: $(sort "$WORK/storm.codes" | uniq -c)"
[ "$N_200" -ge 1 ] || die "storm: nothing was admitted"
echo "storm: $N_200 admitted, $N_429 shed"

note "shed accounting: client-observed 429s match mvgserve_shed_total"
SHED_TOTAL=$(curl -s "$BASE/metrics" | awk '$1 == "mvgserve_shed_total" {print $2}')
WANT_SHED=$((N_429 + 1)) # predict sheds + the stream quota rejection above
[ "$SHED_TOTAL" = "$WANT_SHED" ] || die "mvgserve_shed_total=$SHED_TOTAL, want $WANT_SHED"
curl -s "$BASE/metrics" | grep -q '^mvgserve_request_timeout_total ' || die "request_timeout_total series missing"
curl -s "$BASE/metrics" | grep -q 'mvgserve_stream_evicted_total{reason="idle"}' || die "stream_evicted_total series missing"
curl -s "$BASE/healthz" | jq -e ".ready == true and .shed_total == $WANT_SHED" >/dev/null \
  || die "healthz readiness shape: $(curl -s "$BASE/healthz")"

note "overload server shutdown"
kill "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""

echo
echo "e2e: PASS"
