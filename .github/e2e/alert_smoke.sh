#!/usr/bin/env bash
# End-to-end smoke test of the alerting pipeline: build the real binaries,
# train a model, boot mvgserve with a webhook sink pointed at a local
# capture server, stream a series engineered to flip the prediction, and
# assert (a) FIRING and RESOLVED alert lines on the wire, (b) FIRING and
# RESOLVED webhook deliveries at the capture server, (c) the /metrics
# transition counters. See docs/alerting.md for the semantics under test.
# Run locally with: bash .github/e2e/alert_smoke.sh
set -euo pipefail

PORT="${E2E_PORT:-18090}"
HOOK_PORT="${E2E_HOOK_PORT:-18091}"
BASE="http://127.0.0.1:${PORT}"
WORK="$(mktemp -d)"
SERVE_PID=""
HOOK_PID=""
cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
  [ -n "$HOOK_PID" ] && kill "$HOOK_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

note() { printf '\n== %s ==\n' "$*"; }
die() { echo "alert-e2e: FAIL: $*" >&2; exit 1; }

command -v jq >/dev/null || die "jq is required"

note "build binaries"
go build -o "$WORK/bin/tsgen" ./cmd/tsgen
go build -o "$WORK/bin/mvgcli" ./cmd/mvgcli
go build -o "$WORK/bin/mvgserve" ./cmd/mvgserve
go build -o "$WORK/bin/webhooksink" ./.github/e2e/webhooksink

note "generate synthetic dataset + train a model"
"$WORK/bin/tsgen" -out "$WORK/data" -dataset WarpedShapes -seed 3
mkdir -p "$WORK/models"
"$WORK/bin/mvgcli" \
  -train "$WORK/data/WarpedShapes_TRAIN" \
  -test "$WORK/data/WarpedShapes_TEST" \
  -save "$WORK/models/shapes.mvg" >/dev/null

note "boot webhook capture server + mvgserve with the webhook sink"
: > "$WORK/hooks.ndjson"
"$WORK/bin/webhooksink" -addr "127.0.0.1:${HOOK_PORT}" -out "$WORK/hooks.ndjson" &
HOOK_PID=$!
"$WORK/bin/mvgserve" -models "$WORK/models" -addr "127.0.0.1:${PORT}" \
  -alert-webhook "http://127.0.0.1:${HOOK_PORT}/hook" &
SERVE_PID=$!
for i in $(seq 1 50); do
  if curl -sf "$BASE/healthz" >/dev/null 2>&1 \
    && curl -sf "http://127.0.0.1:${HOOK_PORT}/count" >/dev/null 2>&1; then break; fi
  kill -0 "$SERVE_PID" 2>/dev/null || die "mvgserve exited during startup"
  kill -0 "$HOOK_PID" 2>/dev/null || die "webhooksink exited during startup"
  sleep 0.2
  [ "$i" = 50 ] && die "servers never became healthy"
done

note "build a flipping stream: class A, then class B, then class A again"
# One series per class from the test split (first CSV field is the label):
# the middle stretch flips the model's prediction, the tail flips it back,
# so a kind=flip trigger must both fire and resolve.
A=$(awk -F, '$1 == 1 { print; exit }' "$WORK/data/WarpedShapes_TEST" | cut -d, -f2-)
B=$(awk -F, '$1 == 2 { print; exit }' "$WORK/data/WarpedShapes_TEST" | cut -d, -f2-)
[ -n "$A" ] && [ -n "$B" ] || die "test split lacks both classes"
{ echo "$A"; echo "$B"; echo "$A"; } | tr ',' '\n' > "$WORK/stream.txt"

note "stream with ?alert=kind=flip"
CODE=$(curl -s -o "$WORK/stream_out.ndjson" -w '%{http_code}' \
  --data-binary "@$WORK/stream.txt" "$BASE/v1/models/shapes/stream?hop=64&alert=kind=flip")
[ "$CODE" = 200 ] || die "stream returned $CODE: $(cat "$WORK/stream_out.ndjson")"

jq -se '[.[] | select(.class != null)] | length > 0 and all(.drift != null)' \
  "$WORK/stream_out.ndjson" >/dev/null || die "prediction lines lack drift scores"
FIRING=$(jq -s '[.[] | select(.alert == "flip" and .to == "FIRING")] | length' "$WORK/stream_out.ndjson")
RESOLVED=$(jq -s '[.[] | select(.alert == "flip" and .to == "RESOLVED")] | length' "$WORK/stream_out.ndjson")
[ "$FIRING" -ge 1 ] || die "no FIRING alert line on the wire: $(cat "$WORK/stream_out.ndjson")"
[ "$RESOLVED" -ge 1 ] || die "no RESOLVED alert line on the wire: $(cat "$WORK/stream_out.ndjson")"
echo "wire: $FIRING FIRING, $RESOLVED RESOLVED"

note "webhook deliveries reach the capture server"
# The webhook worker is asynchronous: poll until every wire transition
# landed (the sink delivers exactly the FIRING/RESOLVED ones).
WANT=$((FIRING + RESOLVED))
for i in $(seq 1 50); do
  GOT=$(curl -sf "http://127.0.0.1:${HOOK_PORT}/count") || GOT=0
  [ "$GOT" -ge "$WANT" ] && break
  sleep 0.2
  [ "$i" = 50 ] && die "webhook got $GOT deliveries, want $WANT: $(cat "$WORK/hooks.ndjson")"
done
jq -se "[.[] | select(.model == \"shapes\" and .trigger == \"flip\" and .to == \"FIRING\")] | length >= 1" \
  "$WORK/hooks.ndjson" >/dev/null || die "no FIRING webhook delivery: $(cat "$WORK/hooks.ndjson")"
jq -se "[.[] | select(.model == \"shapes\" and .trigger == \"flip\" and .to == \"RESOLVED\")] | length >= 1" \
  "$WORK/hooks.ndjson" >/dev/null || die "no RESOLVED webhook delivery: $(cat "$WORK/hooks.ndjson")"

note "/metrics exposes alert transition counters"
curl -sf "$BASE/metrics" > "$WORK/metrics.txt"
grep -q 'mvgserve_alert_transitions_total{trigger="flip",to="FIRING"}' "$WORK/metrics.txt" \
  || die "missing FIRING transition counter: $(grep mvgserve_alert "$WORK/metrics.txt" || true)"
grep -q 'mvgserve_alert_transitions_total{trigger="flip",to="RESOLVED"}' "$WORK/metrics.txt" \
  || die "missing RESOLVED transition counter"
# The dialogue is over, so every live-stream gauge cell is back to zero.
if grep 'mvgserve_alert_state{trigger="flip"' "$WORK/metrics.txt" | grep -qv ' 0$'; then
  die "stale alert-state gauge: $(grep mvgserve_alert_state "$WORK/metrics.txt")"
fi

note "bad trigger specs are 400s"
CODE=$(curl -s -o /dev/null -w '%{http_code}' \
  --data-binary '1' "$BASE/v1/models/shapes/stream?alert=kind=nope")
[ "$CODE" = 400 ] || die "bad alert spec returned $CODE, want 400"

note "graceful shutdown"
kill "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""

echo
echo "alert-e2e: PASS"
