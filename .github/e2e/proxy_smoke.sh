#!/usr/bin/env bash
# End-to-end smoke test of the fleet layer (docs/serving.md#fleet): build
# the real binaries, train a model, boot TWO mvgserve replicas behind one
# mvgproxy, and predict through the proxy over both transports. Then the
# chaos half: kill the replica that owns the model and prove the next
# predict still succeeds with exactly one recorded retry, kill the
# survivor and prove the proxy sheds with 429 / RESOURCE_EXHAUSTED and
# exact mvgproxy_shed_total accounting.
# Run locally with: bash .github/e2e/proxy_smoke.sh
set -euo pipefail

PROXY_PORT="${E2E_PROXY_PORT:-18090}"
HTTP1="127.0.0.1:${E2E_REPLICA1_HTTP:-18091}"
GRPC1="127.0.0.1:${E2E_REPLICA1_GRPC:-18092}"
HTTP2="127.0.0.1:${E2E_REPLICA2_HTTP:-18093}"
GRPC2="127.0.0.1:${E2E_REPLICA2_GRPC:-18094}"
PROXY="127.0.0.1:${PROXY_PORT}"
BASE="http://$PROXY"
WORK="$(mktemp -d)"
PID1="" PID2="" PROXY_PID=""
cleanup() {
  for pid in "$PID1" "$PID2" "$PROXY_PID"; do
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

note() { printf '\n== %s ==\n' "$*"; }
die() { echo "e2e-proxy: FAIL: $*" >&2; exit 1; }

command -v jq >/dev/null || die "jq is required"

note "build binaries"
go build -o "$WORK/bin/tsgen" ./cmd/tsgen
go build -o "$WORK/bin/mvgcli" ./cmd/mvgcli
go build -o "$WORK/bin/mvgserve" ./cmd/mvgserve
go build -o "$WORK/bin/mvgproxy" ./cmd/mvgproxy

note "generate synthetic dataset + train a model"
"$WORK/bin/tsgen" -out "$WORK/data" -dataset WarpedShapes -seed 3
mkdir -p "$WORK/models"
"$WORK/bin/mvgcli" \
  -train "$WORK/data/WarpedShapes_TRAIN" \
  -test "$WORK/data/WarpedShapes_TEST" \
  -save "$WORK/models/shapes.mvg" | tee "$WORK/train.log"
grep -q 'model saved to' "$WORK/train.log" || die "training did not save a model"

wait_healthy() {
  local url="$1" pid="$2" what="$3"
  for i in $(seq 1 50); do
    if curl -sf "$url" >/dev/null 2>&1; then return 0; fi
    kill -0 "$pid" 2>/dev/null || die "$what exited during startup"
    sleep 0.2
  done
  die "$what never became healthy"
}

note "boot two mvgserve replicas (HTTP + gRPC each)"
"$WORK/bin/mvgserve" -models "$WORK/models" -addr "$HTTP1" -grpc-addr "$GRPC1" &
PID1=$!
"$WORK/bin/mvgserve" -models "$WORK/models" -addr "$HTTP2" -grpc-addr "$GRPC2" &
PID2=$!
wait_healthy "http://$HTTP1/healthz" "$PID1" "replica 1"
wait_healthy "http://$HTTP2/healthz" "$PID2" "replica 2"

# The health interval is parked high: the proxy's synchronous startup
# poll sees both replicas up, and every later state change must come
# from the passive mark-down path this test exists to exercise — an
# active poll racing the kill would make the retry count nondeterministic.
note "boot mvgproxy over both replicas"
"$WORK/bin/mvgproxy" -addr "$PROXY" -health-interval 10m \
  -replica "$HTTP1,$GRPC1" -replica "$HTTP2,$GRPC2" &
PROXY_PID=$!
wait_healthy "$BASE/healthz" "$PROXY_PID" "mvgproxy"
curl -s "$BASE/healthz" | jq -e \
  '.ready == true and (.backends | to_entries | length == 2 and all(.value))' >/dev/null \
  || die "proxy healthz: $(curl -s "$BASE/healthz")"

# One test series, label stripped, as mvgcli predict input.
head -1 "$WORK/data/WarpedShapes_TEST" | cut -d, -f2- > "$WORK/series.txt"

proxy_metric() { curl -s "$BASE/metrics" | awk -v m="$1" '$1 == m {print $2}'; }
# predicts_served REPLICA_HTTP_ADDR -> total predict requests that replica saw
predicts_served() {
  curl -s "http://$1/metrics" \
    | awk '/^mvgserve_requests_total\{route="(grpc_)?predict(_proba)?"/ {n += $2} END {print n + 0}'
}

note "predict through the proxy over HTTP and gRPC: byte-identical"
"$WORK/bin/mvgcli" predict -addr "$PROXY" -model shapes -in "$WORK/series.txt" \
  > "$WORK/pred_http.json"
"$WORK/bin/mvgcli" predict -grpc-addr "$PROXY" -model shapes -in "$WORK/series.txt" \
  > "$WORK/pred_grpc.json"
jq -e '.model == "shapes" and (.class | type == "number")' "$WORK/pred_http.json" >/dev/null \
  || die "HTTP predict shape: $(cat "$WORK/pred_http.json")"
diff "$WORK/pred_http.json" "$WORK/pred_grpc.json" \
  || die "transports disagree through the proxy"

note "both transports landed on the model's owner replica"
SERVED1=$(predicts_served "$HTTP1")
SERVED2=$(predicts_served "$HTTP2")
[ "$((SERVED1 + SERVED2))" = 2 ] || die "replicas served $SERVED1+$SERVED2 predicts, want 2"
if [ "$SERVED1" = 2 ]; then
  OWNER_PID=$PID1; OWNER_HTTP=$HTTP1; SURVIVOR_HTTP=$HTTP2; OWNER=1
elif [ "$SERVED2" = 2 ]; then
  OWNER_PID=$PID2; OWNER_HTTP=$HTTP2; SURVIVOR_HTTP=$HTTP1; OWNER=2
else
  die "predicts split across replicas ($SERVED1/$SERVED2): ring is not routing by model"
fi
echo "owner of model shapes: replica $OWNER ($OWNER_HTTP)"

note "list models and stream through the proxy"
curl -sf "$BASE/v1/models" | jq -e '.models[0].name == "shapes"' >/dev/null \
  || die "/v1/models through proxy"
{ head -2 "$WORK/data/WarpedShapes_TEST" | cut -d, -f2- | tr ',' '\n'; } > "$WORK/stream.txt"
curl -sf -X POST --data-binary "@$WORK/stream.txt" \
  "$BASE/v1/models/shapes/stream?hop=64" > "$WORK/stream_out.ndjson" \
  || die "stream through proxy failed"
PRED_LINES=$(jq -s '[.[] | select(.class != null)] | length' "$WORK/stream_out.ndjson")
[ "$PRED_LINES" = 3 ] || die "proxied stream emitted $PRED_LINES predictions, want 3"
jq -se '.[-1].done == true' "$WORK/stream_out.ndjson" >/dev/null || die "proxied stream terminal line"

note "kill the owner replica mid-fleet"
kill -9 "$OWNER_PID"
wait "$OWNER_PID" 2>/dev/null || true
if [ "$OWNER" = 1 ]; then PID1=""; else PID2=""; fi

note "next predict fails over: succeeds with exactly one recorded retry"
"$WORK/bin/mvgcli" predict -addr "$PROXY" -model shapes -in "$WORK/series.txt" \
  > "$WORK/pred_failover.json" || die "predict after owner kill failed"
jq -e '.model == "shapes" and (.class | type == "number")' "$WORK/pred_failover.json" >/dev/null \
  || die "failover predict shape: $(cat "$WORK/pred_failover.json")"
[ "$(proxy_metric mvgproxy_retries_total)" = 1 ] \
  || die "mvgproxy_retries_total=$(proxy_metric mvgproxy_retries_total), want 1"
curl -s "$BASE/metrics" | grep -q "mvgproxy_backend_up{backend=\"$OWNER_HTTP\"} 0" \
  || die "dead owner still reported up: $(curl -s "$BASE/metrics" | grep backend_up)"

note "gRPC skips the corpse at zero retry cost"
"$WORK/bin/mvgcli" predict -grpc-addr "$PROXY" -model shapes -in "$WORK/series.txt" \
  > "$WORK/pred_grpc2.json" || die "gRPC predict after owner kill failed"
diff "$WORK/pred_failover.json" "$WORK/pred_grpc2.json" \
  || die "transports disagree after failover"
[ "$(proxy_metric mvgproxy_retries_total)" = 1 ] \
  || die "gRPC predict after mark-down burned a retry"

note "kill the survivor: proxy sheds with exact accounting"
SURVIVOR_PID="${PID1}${PID2}" # only one is still set
kill -9 "$SURVIVOR_PID"
wait "$SURVIVOR_PID" 2>/dev/null || true
PID1="" PID2=""

echo "{\"series\": $(jq -Rc 'split(",") | map(tonumber)' "$WORK/series.txt")}" > "$WORK/req.json"
CODE=$(curl -s -o "$WORK/shed.json" -D "$WORK/shed_headers.txt" -w '%{http_code}' \
  -X POST --data-binary "@$WORK/req.json" "$BASE/v1/models/shapes/predict")
[ "$CODE" = 429 ] || die "predict against dead fleet returned $CODE, want 429: $(cat "$WORK/shed.json")"
grep -qi '^Retry-After:' "$WORK/shed_headers.txt" || die "429 lacks Retry-After header"

if "$WORK/bin/mvgcli" predict -grpc-addr "$PROXY" -model shapes -in "$WORK/series.txt" \
    >/dev/null 2>"$WORK/grpc_shed.err"; then
  die "gRPC predict against dead fleet succeeded"
fi
grep -qi 'RESOURCE_EXHAUSTED\|resource exhausted' "$WORK/grpc_shed.err" \
  || die "gRPC shed error does not carry RESOURCE_EXHAUSTED: $(cat "$WORK/grpc_shed.err")"

# Exactly two requests hit a dead fleet: the HTTP 429 and the gRPC shed.
[ "$(proxy_metric mvgproxy_shed_total)" = 2 ] \
  || die "mvgproxy_shed_total=$(proxy_metric mvgproxy_shed_total), want 2"
[ "$(proxy_metric mvgproxy_retries_total)" = 1 ] \
  || die "shedding burned retries: $(proxy_metric mvgproxy_retries_total)"
CODE=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/healthz")
[ "$CODE" = 503 ] || die "proxy healthz with dead fleet returned $CODE, want 503"

note "graceful proxy shutdown"
kill "$PROXY_PID"
wait "$PROXY_PID" 2>/dev/null || true
PROXY_PID=""

echo
echo "e2e-proxy: PASS"
