// Command apisurface renders the exported API of one or more Go
// packages as a deterministic, diff-friendly text listing — the CI gate
// compares it against the checked-in .github/API_surface.txt, so every
// public-surface change must land as a reviewed diff of that file.
//
// Unlike apidiff it needs no module downloads or type checking: the
// listing is built purely from parsed source with the standard library,
// which keeps the gate runnable offline and hermetic.
//
// Usage:
//
//	go run ./.github/apisurface . ./api/mvgpb                      # print
//	go run ./.github/apisurface -w .github/API_surface.txt . ./api/mvgpb
package main

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"io/fs"
	"os"
	"regexp"
	"sort"
	"strings"
)

func main() {
	write := flag.String("w", "", "write the listing to this file instead of stdout")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: apisurface [-w file] pkgdir...")
		os.Exit(2)
	}
	var buf bytes.Buffer
	for i, dir := range flag.Args() {
		if i > 0 {
			fmt.Fprintln(&buf)
		}
		if err := emitPackage(&buf, dir); err != nil {
			fmt.Fprintf(os.Stderr, "apisurface: %s: %v\n", dir, err)
			os.Exit(1)
		}
	}
	if *write == "" {
		os.Stdout.Write(buf.Bytes())
		return
	}
	if err := os.WriteFile(*write, buf.Bytes(), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "apisurface:", err)
		os.Exit(1)
	}
}

// emitPackage renders one package directory: a header line, then every
// exported declaration on its own sorted line.
func emitPackage(w *bytes.Buffer, dir string) error {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir,
		func(fi fs.FileInfo) bool { return !strings.HasSuffix(fi.Name(), "_test.go") }, 0)
	if err != nil {
		return err
	}
	var lines []string
	var pkgName string
	for name, pkg := range pkgs {
		if name == "main" || strings.HasSuffix(name, "_test") {
			continue
		}
		pkgName = name
		// File iteration order is map-random; sorting the final lines
		// makes the output independent of it.
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				lines = append(lines, declLines(fset, decl)...)
			}
		}
	}
	if pkgName == "" {
		return fmt.Errorf("no library package found")
	}
	sort.Strings(lines)
	fmt.Fprintf(w, "package %s (%s)\n", pkgName, dir)
	for _, l := range lines {
		fmt.Fprintf(w, "  %s\n", l)
	}
	return nil
}

// declLines renders the exported parts of one top-level declaration,
// zero or more listing lines.
func declLines(fset *token.FileSet, decl ast.Decl) []string {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() {
			return nil
		}
		if d.Recv != nil {
			recv := recvType(d.Recv)
			if recv == "" || !ast.IsExported(strings.TrimPrefix(recv, "*")) {
				return nil
			}
			return []string{fmt.Sprintf("method (%s) %s%s", recv, d.Name.Name, signature(fset, d.Type))}
		}
		return []string{fmt.Sprintf("func %s%s", d.Name.Name, signature(fset, d.Type))}
	case *ast.GenDecl:
		var out []string
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if !s.Name.IsExported() {
					continue
				}
				filterUnexported(s.Type)
				out = append(out, fmt.Sprintf("type %s %s", s.Name.Name, render(fset, s.Type)))
			case *ast.ValueSpec:
				exported := false
				for _, n := range s.Names {
					exported = exported || n.IsExported()
				}
				if !exported {
					continue
				}
				out = append(out, fmt.Sprintf("%s %s", d.Tok, render(fset, s)))
			}
		}
		return out
	}
	return nil
}

func recvType(recv *ast.FieldList) string {
	if len(recv.List) != 1 {
		return ""
	}
	t := recv.List[0].Type
	// Generic receivers ("Foo[T]") reduce to the base name.
	if ix, ok := t.(*ast.IndexExpr); ok {
		t = ix.X
	}
	switch x := t.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.StarExpr:
		if id, ok := x.X.(*ast.Ident); ok {
			return "*" + id.Name
		}
	}
	return ""
}

// signature renders a FuncType without the leading "func" keyword.
func signature(fset *token.FileSet, t *ast.FuncType) string {
	return strings.TrimPrefix(render(fset, t), "func")
}

var spaceRun = regexp.MustCompile(`\s+`)

// render prints a node on one line with whitespace runs collapsed, so
// the listing is stable under gofmt's multi-line layouts.
func render(fset *token.FileSet, node any) string {
	var buf bytes.Buffer
	printer.Fprint(&buf, fset, node)
	return spaceRun.ReplaceAllString(strings.TrimSpace(buf.String()), " ")
}

// filterUnexported strips unexported members from struct and interface
// types in place: they are not part of the public surface, and their
// churn must not trip the gate.
func filterUnexported(t ast.Expr) {
	switch x := t.(type) {
	case *ast.StructType:
		if x.Fields == nil {
			return
		}
		kept := x.Fields.List[:0]
		for _, f := range x.Fields.List {
			if len(f.Names) == 0 {
				// Embedded field: keep when the embedded type name is
				// exported.
				name := render(token.NewFileSet(), f.Type)
				name = strings.TrimPrefix(name, "*")
				if i := strings.LastIndex(name, "."); i >= 0 {
					name = name[i+1:]
				}
				if ast.IsExported(name) {
					kept = append(kept, f)
				}
				continue
			}
			names := f.Names[:0]
			for _, n := range f.Names {
				if n.IsExported() {
					names = append(names, n)
				}
			}
			if len(names) > 0 {
				f.Names = names
				kept = append(kept, f)
			}
		}
		x.Fields.List = kept
	case *ast.InterfaceType:
		if x.Methods == nil {
			return
		}
		kept := x.Methods.List[:0]
		for _, m := range x.Methods.List {
			if len(m.Names) == 0 || m.Names[0].IsExported() {
				kept = append(kept, m)
			}
		}
		x.Methods.List = kept
	}
}
