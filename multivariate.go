package mvg

import (
	"fmt"

	"mvg/internal/core"
	"mvg/internal/ml"
)

// The paper's conclusion (§6) names multivariate time series as future
// work. This file provides the natural extension: every channel is
// transformed into its own multiscale visibility graphs, the per-channel
// feature blocks are concatenated, and the combined unordered vector is
// classified exactly like the univariate one.

// MultivariateModel is a trained multichannel MVG classifier.
type MultivariateModel struct {
	cfg       Config
	extractor *core.Extractor
	scaler    *ml.MinMaxScaler
	clf       ml.Classifier
	classes   int
	channels  int
	names     []string
}

// validateMultivariate checks the sample tensor: samples[i][c] is channel
// c of sample i; channels must agree across samples, and each channel has
// one length shared by all samples.
func validateMultivariate(samples [][][]float64) (channels int, err error) {
	if len(samples) == 0 {
		return 0, fmt.Errorf("mvg: no samples")
	}
	channels = len(samples[0])
	if channels == 0 {
		return 0, fmt.Errorf("mvg: sample 0 has no channels")
	}
	for i, s := range samples {
		if len(s) != channels {
			return 0, fmt.Errorf("mvg: sample %d has %d channels, sample 0 has %d", i, len(s), channels)
		}
		for c := range s {
			if len(s[c]) != len(samples[0][c]) {
				return 0, fmt.Errorf("mvg: sample %d channel %d has %d points, sample 0 has %d",
					i, c, len(s[c]), len(samples[0][c]))
			}
		}
	}
	return channels, nil
}

// extractMultivariate concatenates per-channel feature vectors. Each
// channel's batch runs on the parallel extraction engine with the given
// worker count (0 = GOMAXPROCS); channels are processed sequentially so
// the per-sample concatenation order — and therefore the matrix — is
// deterministic.
func extractMultivariate(e *core.Extractor, samples [][][]float64, channels, workers int) ([][]float64, error) {
	n := len(samples)
	out := make([][]float64, n)
	channelSeries := make([][]float64, n)
	for c := 0; c < channels; c++ {
		for i := range samples {
			channelSeries[i] = samples[i][c]
		}
		X, err := e.ExtractDatasetWorkers(channelSeries, workers)
		if err != nil {
			return nil, fmt.Errorf("mvg: channel %d: %w", c, err)
		}
		for i := range out {
			out[i] = append(out[i], X[i]...)
		}
	}
	return out, nil
}

// TrainMultivariate trains an MVG classifier on multichannel series:
// samples[i][c] is channel c of sample i. Channels may have different
// lengths from each other, but each channel's length must be uniform
// across samples.
func TrainMultivariate(samples [][][]float64, labels []int, classes int, cfg Config) (*MultivariateModel, error) {
	channels, err := validateMultivariate(samples)
	if err != nil {
		return nil, err
	}
	if len(samples) != len(labels) {
		return nil, fmt.Errorf("mvg: %d samples but %d labels", len(samples), len(labels))
	}
	e, err := cfg.extractor()
	if err != nil {
		return nil, err
	}
	X, err := extractMultivariate(e, samples, channels, cfg.Workers)
	if err != nil {
		return nil, err
	}
	clf, scaler, err := fitClassifier(X, labels, classes, cfg)
	if err != nil {
		return nil, err
	}
	m := &MultivariateModel{
		cfg:       cfg,
		extractor: e,
		scaler:    scaler,
		clf:       clf,
		classes:   classes,
		channels:  channels,
	}
	for c := 0; c < channels; c++ {
		for _, name := range e.FeatureNames(len(samples[0][c])) {
			m.names = append(m.names, fmt.Sprintf("C%d.%s", c, name))
		}
	}
	return m, nil
}

// PredictProba returns class probabilities per multichannel sample.
func (m *MultivariateModel) PredictProba(samples [][][]float64) ([][]float64, error) {
	channels, err := validateMultivariate(samples)
	if err != nil {
		return nil, err
	}
	if channels != m.channels {
		return nil, fmt.Errorf("mvg: model trained with %d channels, got %d", m.channels, channels)
	}
	X, err := extractMultivariate(m.extractor, samples, channels, m.cfg.Workers)
	if err != nil {
		return nil, err
	}
	if m.scaler != nil {
		X, err = m.scaler.Transform(X)
		if err != nil {
			return nil, err
		}
	}
	return m.clf.PredictProba(X)
}

// Predict returns the most probable class per sample.
func (m *MultivariateModel) Predict(samples [][][]float64) ([]int, error) {
	proba, err := m.PredictProba(samples)
	if err != nil {
		return nil, err
	}
	return ml.Predict(proba), nil
}

// ErrorRate scores the model on a labelled multichannel test set.
func (m *MultivariateModel) ErrorRate(samples [][][]float64, labels []int) (float64, error) {
	pred, err := m.Predict(samples)
	if err != nil {
		return 0, err
	}
	if len(pred) != len(labels) {
		return 0, fmt.Errorf("mvg: %d predictions but %d labels", len(pred), len(labels))
	}
	return ml.ErrorRate(pred, labels), nil
}

// Channels returns the channel count the model was trained with.
func (m *MultivariateModel) Channels() int { return m.channels }

// FeatureNames returns the concatenated per-channel feature names
// ("C0.T0.VG.P(M21)", ...).
func (m *MultivariateModel) FeatureNames() []string {
	out := make([]string, len(m.names))
	copy(out, m.names)
	return out
}
