package mvg

import (
	"context"
	"fmt"

	"mvg/internal/ml"
)

// The paper's conclusion (§6) names multivariate time series as future
// work. This file provides the natural extension: every channel is
// transformed into its own multiscale visibility graphs, the per-channel
// feature blocks are concatenated, and the combined unordered vector is
// classified exactly like the univariate one.

// MultivariateModel is a trained multichannel MVG classifier. Like Model,
// it is bound to the Pipeline that extracted its features and is safe for
// concurrent use.
type MultivariateModel struct {
	pipe     *Pipeline
	scaler   *ml.MinMaxScaler
	clf      ml.Classifier
	classes  int
	channels int
	names    []string
}

// validateMultivariate checks the sample tensor: samples[i][c] is channel
// c of sample i; channels must agree across samples, and each channel has
// one length shared by all samples. Violations return a *ShapeError
// matching ErrShapeMismatch.
func validateMultivariate(samples [][][]float64) (channels int, err error) {
	if len(samples) == 0 {
		return 0, &ShapeError{What: "sample batch", Got: 0, Want: -1}
	}
	channels = len(samples[0])
	if channels == 0 {
		return 0, &ShapeError{What: "sample 0 channels", Got: 0, Want: -1}
	}
	for i, s := range samples {
		if len(s) != channels {
			return 0, &ShapeError{What: fmt.Sprintf("sample %d channels", i), Got: len(s), Want: channels}
		}
		for c := range s {
			if len(s[c]) != len(samples[0][c]) {
				return 0, &ShapeError{What: fmt.Sprintf("sample %d channel %d length", i, c),
					Got: len(s[c]), Want: len(samples[0][c])}
			}
		}
	}
	return channels, nil
}

// extractMultivariate concatenates per-channel feature vectors. Each
// channel's batch runs on the pipeline's worker pool; channels are
// processed sequentially so the per-sample concatenation order — and
// therefore the matrix — is deterministic. The context is checked between
// per-series jobs inside every channel batch.
func extractMultivariate(ctx context.Context, p *Pipeline, samples [][][]float64, channels int) ([][]float64, error) {
	n := len(samples)
	out := make([][]float64, n)
	channelSeries := make([][]float64, n)
	for c := 0; c < channels; c++ {
		for i := range samples {
			channelSeries[i] = samples[i][c]
		}
		X, err := p.Extract(ctx, channelSeries)
		if err != nil {
			return nil, fmt.Errorf("mvg: channel %d: %w", c, err)
		}
		for i := range out {
			out[i] = append(out[i], X[i]...)
		}
	}
	return out, nil
}

// TrainMultivariate trains an MVG classifier on multichannel series on the
// pipeline's worker pool: samples[i][c] is channel c of sample i. Channels
// may have different lengths from each other, but each channel's length
// must be uniform across samples. The returned model is bound to this
// pipeline, like Pipeline.Train's.
func (p *Pipeline) TrainMultivariate(ctx context.Context, samples [][][]float64, labels []int, classes int) (*MultivariateModel, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	channels, err := validateMultivariate(samples)
	if err != nil {
		return nil, err
	}
	if len(samples) != len(labels) {
		return nil, &ShapeError{What: "labels", Got: len(labels), Want: len(samples)}
	}
	X, err := extractMultivariate(ctx, p, samples, channels)
	if err != nil {
		return nil, err
	}
	clf, scaler, err := fitClassifier(ctx, p.runner(), X, labels, classes, p.cfg)
	if err != nil {
		return nil, p.wrapErr(err)
	}
	m := &MultivariateModel{
		pipe:     p,
		scaler:   scaler,
		clf:      clf,
		classes:  classes,
		channels: channels,
	}
	for c := 0; c < channels; c++ {
		for _, name := range p.extractor.FeatureNames(len(samples[0][c])) {
			m.names = append(m.names, fmt.Sprintf("C%d.%s", c, name))
		}
	}
	return m, nil
}

// PredictProba returns class probabilities per multichannel sample,
// extracting features on the model's pipeline with cooperative
// cancellation (see Model.PredictProba for the guarantees).
func (m *MultivariateModel) PredictProba(ctx context.Context, samples [][][]float64) ([][]float64, error) {
	channels, err := validateMultivariate(samples)
	if err != nil {
		return nil, err
	}
	if channels != m.channels {
		return nil, &ShapeError{What: "channels", Got: channels, Want: m.channels}
	}
	X, err := extractMultivariate(ctx, m.pipe, samples, channels)
	if err != nil {
		return nil, err
	}
	if m.scaler != nil {
		X, err = m.scaler.Transform(X)
		if err != nil {
			return nil, err
		}
	}
	return m.clf.PredictProba(X)
}

// Predict returns the most probable class per sample.
func (m *MultivariateModel) Predict(ctx context.Context, samples [][][]float64) ([]int, error) {
	proba, err := m.PredictProba(ctx, samples)
	if err != nil {
		return nil, err
	}
	return ml.Predict(proba), nil
}

// ErrorRate scores the model on a labelled multichannel test set.
func (m *MultivariateModel) ErrorRate(ctx context.Context, samples [][][]float64, labels []int) (float64, error) {
	pred, err := m.Predict(ctx, samples)
	if err != nil {
		return 0, err
	}
	if len(pred) != len(labels) {
		return 0, &ShapeError{What: "labels", Got: len(labels), Want: len(pred)}
	}
	return ml.ErrorRate(pred, labels), nil
}

// Channels returns the channel count the model was trained with.
func (m *MultivariateModel) Channels() int { return m.channels }

// Pipeline returns the pipeline the model predicts on.
func (m *MultivariateModel) Pipeline() *Pipeline { return m.pipe }

// FeatureNames returns the concatenated per-channel feature names
// ("C0.T0.VG.P(M21)", ...).
func (m *MultivariateModel) FeatureNames() []string {
	out := make([]string, len(m.names))
	copy(out, m.names)
	return out
}
