package mvg

import (
	"context"
	"testing"
)

// BenchmarkBulkExtract measures the bulk store path end to end — chunked
// extraction, shard encoding, atomic writes, manifest checkpoints — for a
// 64×256 batch in 16-row chunks. Pinned in .github/BENCH_baseline.json:
// the allocs/op gate catches accidental per-row allocations sneaking into
// the store encode/checkpoint loop, where a 100k-series run would
// multiply them. Workers=1 keeps allocs/op scheduling-independent, same
// as the pinned ExtractBatch/workers=1 case.
func BenchmarkBulkExtract(b *testing.B) {
	series := batchSeries(64, 256, 5)
	labels := make([]string, len(series))
	for i := range labels {
		labels[i] = []string{"a", "b"}[i%2]
	}
	p, err := NewPipeline(Config{Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	dir := b.TempDir()
	ctx := context.Background()
	// Warm the worker pool and allocator so allocs/op measures the steady
	// state the gate pins, not first-call goroutine spawns.
	if _, err := p.ExtractToStore(ctx, SliceSource(series, labels, 16), StoreOptions{Dir: dir, Dataset: "bench"}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := p.ExtractToStore(ctx, SliceSource(series, labels, 16), StoreOptions{
			Dir: dir, Dataset: "bench",
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Rows != len(series) {
			b.Fatalf("rows = %d", res.Rows)
		}
	}
}
