package mvg

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// makeMultichannel builds a 2-class, 2-channel problem: class decides the
// frequency on channel 0 and the noise correlation on channel 1.
func makeMultichannel(n int, seed int64) ([][][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	samples := make([][][]float64, n)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		class := i % 2
		ch0 := make([]float64, 128)
		freq := 3.0
		if class == 1 {
			freq = 7
		}
		phase := rng.Float64() * 2 * math.Pi
		for j := range ch0 {
			ch0[j] = math.Sin(2*math.Pi*freq*float64(j)/128+phase) + 0.2*rng.NormFloat64()
		}
		ch1 := make([]float64, 96) // different channel length on purpose
		x := 0.0
		for j := range ch1 {
			phi := 0.1
			if class == 1 {
				phi = 0.9
			}
			x = phi*x + rng.NormFloat64()
			ch1[j] = x
		}
		samples[i] = [][]float64{ch0, ch1}
		labels[i] = class
	}
	return samples, labels
}

func TestTrainMultivariate(t *testing.T) {
	trainS, trainY := makeMultichannel(40, 1)
	testS, testY := makeMultichannel(30, 2)
	model, err := trainMultivariateOnce(trainS, trainY, 2, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if model.Channels() != 2 {
		t.Errorf("Channels() = %d", model.Channels())
	}
	errRate, err := model.ErrorRate(context.Background(), testS, testY)
	if err != nil {
		t.Fatal(err)
	}
	if errRate > 0.25 {
		t.Errorf("multivariate error rate = %v", errRate)
	}
	names := model.FeatureNames()
	if !strings.HasPrefix(names[0], "C0.") {
		t.Errorf("first name = %q", names[0])
	}
	foundC1 := false
	for _, n := range names {
		if strings.HasPrefix(n, "C1.") {
			foundC1 = true
			break
		}
	}
	if !foundC1 {
		t.Error("channel 1 names missing")
	}
	proba, err := model.PredictProba(context.Background(), testS[:3])
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range proba {
		sum := 0.0
		for _, v := range p {
			sum += v
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Errorf("probabilities sum to %v", sum)
		}
	}
}

func TestMultivariateValidation(t *testing.T) {
	trainS, trainY := makeMultichannel(20, 3)
	if _, err := trainMultivariateOnce(nil, nil, 2, Config{}); err == nil {
		t.Error("empty samples should fail")
	}
	if _, err := trainMultivariateOnce(trainS, trainY[:5], 2, Config{}); err == nil {
		t.Error("label mismatch should fail")
	}
	// Ragged channel counts.
	bad := [][][]float64{trainS[0], {trainS[1][0]}}
	if _, err := trainMultivariateOnce(bad, []int{0, 1}, 2, Config{}); err == nil {
		t.Error("ragged channels should fail")
	}
	// Ragged per-channel lengths.
	bad2 := [][][]float64{
		{make([]float64, 64), make([]float64, 64)},
		{make([]float64, 64), make([]float64, 32)},
	}
	if _, err := trainMultivariateOnce(bad2, []int{0, 1}, 2, Config{}); err == nil {
		t.Error("ragged lengths should fail")
	}
	// Channel-count mismatch at prediction time.
	model, err := trainMultivariateOnce(trainS, trainY, 2, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := model.Predict(context.Background(), [][][]float64{{trainS[0][0]}}); err == nil {
		t.Error("channel mismatch at predict should fail")
	}
}
