// Benchmarks regenerating every table and figure of the paper's evaluation
// (EXPERIMENTS.md maps each benchmark to its artifact) plus the §4.5
// complexity micro-benchmarks. Experiment benchmarks run on a reduced
// two-dataset slice of the suite so `go test -bench=.` completes quickly;
// `cmd/mvgbench` prints the full tables.
package mvg

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"testing"

	"mvg/internal/core"
	"mvg/internal/experiments"
	"mvg/internal/graph"
	"mvg/internal/motif"
	"mvg/internal/timeseries"
	"mvg/internal/visibility"
)

// benchConfig is the reduced experiment configuration used by the
// per-table benchmarks.
func benchConfig() experiments.Config {
	return experiments.Config{
		Out:      io.Discard,
		Seed:     1,
		Quick:    true,
		Datasets: []string{"SynthECG", "EngineNoise"},
	}
}

func runExperiment(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchConfig())
		if err := r.Run(name); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure1_VGConstruction regenerates the Figure 1 artifact: the
// VG and HVG of a small series.
func BenchmarkFigure1_VGConstruction(b *testing.B) {
	series := []float64{0.87, 0.49, 0.36, 0.83, 0.87, 0.49, 0.36, 0.83,
		0.87, 0.49, 0.36, 0.83, 0.32, 0.56, 0.25, 0.35, 0.2, 0.96, 0.15, 0.34, 0.7}
	for i := 0; i < b.N; i++ {
		if _, err := SummarizeVG(series); err != nil {
			b.Fatal(err)
		}
		if _, err := SummarizeHVG(series); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2_MotifDistributions regenerates the per-class motif
// probability boxplot statistics.
func BenchmarkFigure2_MotifDistributions(b *testing.B) { runExperiment(b, "fig2") }

// BenchmarkTable2_HeuristicAblation regenerates the representation
// ablation (columns A–G plus 1NN references and Wilcoxon rows).
func BenchmarkTable2_HeuristicAblation(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkFigure3_MPDvsAll regenerates the MPDs-vs-all-features scatter.
func BenchmarkFigure3_MPDvsAll(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkFigure4_GraphTypes regenerates the HVG/VG/UVG scatter.
func BenchmarkFigure4_GraphTypes(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFigure5_Scales regenerates the UVG/AMVG/MVG scatter.
func BenchmarkFigure5_Scales(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFigure6_ClassifierFamilies regenerates the RF/SVM/XGBoost
// critical-difference diagram.
func BenchmarkFigure6_ClassifierFamilies(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFigure7_Stacking regenerates the stacking CD diagram.
func BenchmarkFigure7_Stacking(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkTable3_StateOfTheArt regenerates the five-baseline accuracy and
// runtime comparison.
func BenchmarkTable3_StateOfTheArt(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkFigure8_BaselineScatter regenerates the per-baseline scatter.
func BenchmarkFigure8_BaselineScatter(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFigure9_RuntimeComparison regenerates the FS-vs-MVG runtime
// comparison.
func BenchmarkFigure9_RuntimeComparison(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFigure10_FeatureImportance regenerates the case-study feature
// ranking.
func BenchmarkFigure10_FeatureImportance(b *testing.B) { runExperiment(b, "fig10") }

// ---- §4.5 complexity micro-benchmarks ----

func randomSeries(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	t := make([]float64, n)
	for i := range t {
		t[i] = rng.NormFloat64()
	}
	return t
}

func benchSizes(b *testing.B, f func(b *testing.B, series []float64)) {
	for _, n := range []int{128, 512, 2048} {
		series := randomSeries(n, int64(n))
		b.Run(sizeName(n), func(b *testing.B) { f(b, series) })
	}
}

func sizeName(n int) string {
	switch n {
	case 128:
		return "n=128"
	case 512:
		return "n=512"
	default:
		return "n=2048"
	}
}

// BenchmarkVG_DivideConquer measures the default sub-quadratic VG builder.
func BenchmarkVG_DivideConquer(b *testing.B) {
	benchSizes(b, func(b *testing.B, series []float64) {
		for i := 0; i < b.N; i++ {
			if _, err := visibility.VG(series); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkVG_Naive measures the O(n²) reference builder (the ablation the
// paper's efficiency claims rest on).
func BenchmarkVG_Naive(b *testing.B) {
	benchSizes(b, func(b *testing.B, series []float64) {
		for i := 0; i < b.N; i++ {
			if _, err := visibility.VGNaive(series); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkHVG measures the O(n) stack builder.
func BenchmarkHVG(b *testing.B) {
	benchSizes(b, func(b *testing.B, series []float64) {
		for i := 0; i < b.N; i++ {
			if _, err := visibility.HVG(series); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func benchGraph(b *testing.B, n int) *graph.Graph {
	b.Helper()
	g, err := visibility.VG(randomSeries(n, int64(n)))
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkMotifCount measures exact graphlet counting (the PGD stand-in).
func BenchmarkMotifCount(b *testing.B) {
	for _, n := range []int{128, 512, 2048} {
		g := benchGraph(b, n)
		b.Run(sizeName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				motif.Count(g)
			}
		})
	}
}

// BenchmarkKCore measures the O(m) core decomposition.
func BenchmarkKCore(b *testing.B) {
	g := benchGraph(b, 2048)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.CoreNumbers()
	}
}

// BenchmarkAssortativity measures the O(m) assortativity coefficient.
func BenchmarkAssortativity(b *testing.B) {
	g := benchGraph(b, 2048)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Assortativity()
	}
}

// BenchmarkExtractFeatures measures the full Algorithm 1 per series.
func BenchmarkExtractFeatures(b *testing.B) {
	e, err := core.NewExtractor(core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	benchSizes(b, func(b *testing.B, series []float64) {
		for i := 0; i < b.N; i++ {
			if _, err := e.Extract(series); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExtractBatch measures the parallel batch engine (Algorithm 1
// fanned across the internal/parallel worker pool with per-worker scratch
// reuse) on a synthetic dataset, at 1, 2, 4 and GOMAXPROCS workers. The
// series/sec metric is the headline throughput of the extraction stage;
// speedup is read off by comparing sub-benchmarks.
func BenchmarkExtractBatch(b *testing.B) {
	const batch, length = 64, 512
	series := make([][]float64, batch)
	for i := range series {
		series[i] = randomSeries(length, int64(i+1))
	}
	e, err := core.NewExtractor(core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	workerCounts := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 2 && p != 4 {
		workerCounts = append(workerCounts, p)
	}
	for _, workers := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := e.ExtractDatasetWorkers(series, workers); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "series/sec")
		})
	}
}

// BenchmarkExtractScratchReuse isolates the allocation win of per-worker
// scratch reuse: the same series extracted with a persistent Scratch versus
// the throwaway scratch Extract allocates per call.
func BenchmarkExtractScratchReuse(b *testing.B) {
	series := randomSeries(512, 11)
	e, err := core.NewExtractor(core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("fresh-scratch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := e.Extract(series); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reused-scratch", func(b *testing.B) {
		b.ReportAllocs()
		sc := core.NewScratch()
		for i := 0; i < b.N; i++ {
			if _, err := e.ExtractWith(sc, series); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// monotoneRamp returns the decreasing linear ramp — the worst case of
// both the plain divide-and-conquer recursion (the pivot always sits at
// the window edge) and the backward-scan builder (whose window-maximum
// early exit never fires while every slope record is negative).
func monotoneRamp(n int) []float64 {
	t := make([]float64, n)
	for i := range t {
		t[i] = float64(-i)
	}
	return t
}

// BenchmarkNVGBuildMonotone measures the hull-tree divide-and-conquer NVG
// builder (internal/visibility/dnc.go) on the monotone worst case, where
// the pre-index builder was O(n²). The same-run ratio gate in
// BENCH_baseline.json requires ≥5× over BenchmarkNVGBuildScanMonotone at
// n=10k.
func BenchmarkNVGBuildMonotone(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000} {
		series := monotoneRamp(n)
		b.Run(fmt.Sprintf("n=%dk", n/1000), func(b *testing.B) {
			b.ReportAllocs()
			var vb visibility.Builder
			for i := 0; i < b.N; i++ {
				if _, err := vb.VGEdges(series); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkNVGBuildScanMonotone measures the backward-scan reference
// builder on the same worst case — the baseline the ratio gate divides by.
func BenchmarkNVGBuildScanMonotone(b *testing.B) {
	series := monotoneRamp(10_000)
	b.Run("n=10k", func(b *testing.B) {
		b.ReportAllocs()
		var vb visibility.Builder
		for i := 0; i < b.N; i++ {
			if _, err := vb.VGEdgesScan(series); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExtractLongSeries measures one 100k-point request on a warm
// pipeline: a batch smaller than the worker budget, so extraction fans
// the per-scale graph builds across the pool (in-series parallelism)
// instead of serializing the request on a single worker. Workers are
// pinned at 4 so the routing does not depend on the host's core count,
// and the pool is warmed before the timer: the gated allocs/op is the
// steady-state per-request cost, not the scheduling-dependent first-call
// scratch growth.
func BenchmarkExtractLongSeries(b *testing.B) {
	series := [][]float64{randomSeries(100_000, 42)}
	p, err := NewPipeline(Config{Workers: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 3; i++ {
		if _, err := p.Extract(context.Background(), series); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Extract(context.Background(), series); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDTW measures the distance kernel of the 1NN baselines.
func BenchmarkDTW(b *testing.B) {
	a := randomSeries(512, 1)
	c := randomSeries(512, 2)
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := timeseries.DTW(a, c, -1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("window=51", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := timeseries.DTW(a, c, 51); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTauAblation measures how the τ threshold (Definition 3.1)
// trades scale count against extraction cost — a design-choice ablation
// from DESIGN.md.
func BenchmarkTauAblation(b *testing.B) {
	series := randomSeries(1024, 3)
	for _, tau := range []int{-1, 15, 63} {
		e, err := core.NewExtractor(core.Options{Tau: tau})
		if err != nil {
			b.Fatal(err)
		}
		name := "tau=default15"
		switch tau {
		case -1:
			name = "tau=min"
		case 63:
			name = "tau=63"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := e.Extract(series); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExtendedFeaturesAblation measures the cost of the future-work
// feature set (degree entropy + transitivity) on top of the paper's
// evaluated configuration.
func BenchmarkExtendedFeaturesAblation(b *testing.B) {
	series := randomSeries(512, 7)
	for _, ext := range []bool{false, true} {
		e, err := core.NewExtractor(core.Options{Extended: ext})
		if err != nil {
			b.Fatal(err)
		}
		name := "paper-featureset"
		if ext {
			name = "with-futurework-features"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := e.Extract(series); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
