package mvg

import (
	"errors"
	"fmt"

	"mvg/internal/core"
)

// The public error taxonomy. Every sentinel is matchable with errors.Is
// through any level of wrapping, and the structured kinds (ConfigError,
// ShapeError) are additionally extractable with errors.As to recover the
// offending field or dimensions. The serving layer maps these onto HTTP
// statuses: ErrBadConfig, ErrShapeMismatch and ErrSeriesTooShort are
// caller mistakes (400), everything else is a server fault (500). See
// docs/api.md for the full taxonomy.
var (
	// ErrBadConfig reports an invalid Config. NewPipeline validates
	// eagerly, so the error surfaces at pipeline construction rather than
	// on the first batch. Wrapped by *ConfigError, which names the field.
	ErrBadConfig = errors.New("mvg: invalid configuration")

	// ErrSeriesTooShort reports a series that cannot produce a single
	// visibility graph under the configured scales (Definition 3.1: every
	// scale at or below τ points is discarded, and a graph needs at least
	// two vertices).
	ErrSeriesTooShort = core.ErrSeriesTooShort

	// ErrShapeMismatch reports inputs whose dimensions do not line up: an
	// empty batch, a labels slice of a different length than the series
	// batch, a prediction series whose length differs from the training
	// length, or a multivariate sample with the wrong channel count.
	// Wrapped by *ShapeError, which carries the observed and expected
	// dimensions.
	ErrShapeMismatch = errors.New("mvg: input shape mismatch")

	// ErrPipelineClosed is returned by every Pipeline method (and by the
	// methods of a Model bound to that Pipeline) after Close: the worker
	// pool has been released and the pipeline no longer accepts work.
	ErrPipelineClosed = errors.New("mvg: pipeline closed")

	// ErrStreamNotReady is returned by Stream.Features and Stream.Predict
	// before the first full window has been pushed (Stream.Pushed() <
	// Stream.WindowLen()).
	ErrStreamNotReady = errors.New("mvg: stream window not yet full")

	// ErrNonFiniteSample is returned by Stream.Push for NaN or infinite
	// samples, which have no visibility ordering. The offending sample is
	// rejected; the stream's window is untouched and stays usable.
	ErrNonFiniteSample = errors.New("mvg: non-finite sample")

	// ErrNoDriftBaseline reports a drift-score request against a model
	// without training-class centroids — one loaded from a snapshot written
	// before the drift baseline existed. Retrain (or re-save from a fresh
	// Train) to capture the baseline.
	ErrNoDriftBaseline = errors.New("mvg: model has no drift baseline")
)

// ConfigError reports which Config field made a Pipeline unbuildable. It
// matches errors.Is(err, ErrBadConfig) and is the errors.As target for
// recovering the field programmatically.
type ConfigError struct {
	Field string // the Config field name, e.g. "Scale"
	Value string // the rejected value
	Want  string // human-readable description of the accepted values
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("mvg: invalid Config.%s %q (want %s)", e.Field, e.Value, e.Want)
}

// Unwrap makes errors.Is(err, ErrBadConfig) hold.
func (e *ConfigError) Unwrap() error { return ErrBadConfig }

// ShapeError reports an input whose dimensions do not match what the
// pipeline or model expects. It matches errors.Is(err, ErrShapeMismatch)
// and is the errors.As target for recovering the dimensions.
type ShapeError struct {
	What string // what was mis-shaped, e.g. "series batch" or "labels"
	Got  int    // the observed count or length
	Want int    // the expected value; negative when any non-zero value would do
}

func (e *ShapeError) Error() string {
	if e.Want < 0 {
		return fmt.Sprintf("mvg: %s mismatch: got %d, want at least 1", e.What, e.Got)
	}
	return fmt.Sprintf("mvg: %s mismatch: got %d, want %d", e.What, e.Got, e.Want)
}

// Unwrap makes errors.Is(err, ErrShapeMismatch) hold.
func (e *ShapeError) Unwrap() error { return ErrShapeMismatch }
