module mvg

go 1.24
