package mvg

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
)

// batchSeries draws a deterministic batch of random-walk series.
func batchSeries(n, length int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		t := make([]float64, length)
		v := 0.0
		for k := range t {
			v += rng.NormFloat64()
			t[k] = v
		}
		out[i] = t
	}
	return out
}

// requireBitIdentical fails unless a and b are bit-for-bit identical
// feature matrices (math.Float64bits equality, stricter than ==).
func requireBitIdentical(t *testing.T, a, b [][]float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("row %d widths differ: %d vs %d", i, len(a[i]), len(b[i]))
		}
		for j := range a[i] {
			if math.Float64bits(a[i][j]) != math.Float64bits(b[i][j]) {
				t.Fatalf("row %d col %d differ: %v vs %v", i, j, a[i][j], b[i][j])
			}
		}
	}
}

// TestExtractFeaturesBatchDeterministic verifies the engine's central
// guarantee: the feature matrix is byte-identical for every worker count,
// so Config.Workers is purely a throughput knob.
func TestExtractFeaturesBatchDeterministic(t *testing.T) {
	series := batchSeries(40, 192, 1)
	ref, names, err := extractOnce(series, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) != len(series) || len(names) != len(ref[0]) {
		t.Fatalf("shape: %d rows, %d names, width %d", len(ref), len(names), len(ref[0]))
	}
	for _, workers := range []int{2, 3, 8} {
		X, _, err := extractOnce(series, Config{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		requireBitIdentical(t, ref, X)
	}
	// The engine must also agree with one-at-a-time extraction.
	for i, s := range series[:5] {
		row, _, err := extractOnce([][]float64{s}, Config{})
		if err != nil {
			t.Fatal(err)
		}
		requireBitIdentical(t, [][]float64{ref[i]}, row)
	}
}

// TestExtractFeaturesBatchDeterministicExtended covers the non-default
// representation modes, which exercise different scratch-buffer shapes.
func TestExtractFeaturesBatchDeterministicExtended(t *testing.T) {
	series := batchSeries(24, 160, 2)
	for _, cfg := range []Config{
		{Scale: "uvg"},
		{Scale: "amvg"},
		{Graphs: "vg"},
		{Graphs: "hvg", Features: "mpds"},
		{Extended: true},
	} {
		cfg1 := cfg
		cfg1.Workers = 1
		ref, _, err := extractOnce(series, cfg1)
		if err != nil {
			t.Fatalf("%+v: %v", cfg1, err)
		}
		cfg8 := cfg
		cfg8.Workers = 8
		X, _, err := extractOnce(series, cfg8)
		if err != nil {
			t.Fatalf("%+v: %v", cfg8, err)
		}
		requireBitIdentical(t, ref, X)
	}
}

// TestPredictBatch trains a small model and checks that PredictBatch,
// Predict and per-series prediction all agree, across worker counts.
func TestPredictBatch(t *testing.T) {
	train, labels := predictableDataset(t, 1)
	model, err := trainOnce(train, labels, 2, Config{Folds: 2, Seed: 1, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	test, _ := predictableDataset(t, 2)
	want, err := model.PredictBatch(context.Background(), test)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(test) {
		t.Fatalf("%d predictions for %d series", len(want), len(test))
	}
	got, err := model.Predict(context.Background(), test)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Predict vs PredictBatch disagree at %d: %d vs %d", i, got[i], want[i])
		}
	}
	for i, s := range test[:4] {
		one, err := model.PredictBatch(context.Background(), [][]float64{s})
		if err != nil {
			t.Fatal(err)
		}
		if one[0] != want[i] {
			t.Fatalf("single-series PredictBatch disagrees at %d: %d vs %d", i, one[0], want[i])
		}
	}
}

// TestPredictBatchRace exercises the worker pool under the race detector:
// a wide PredictBatch fan-out plus concurrent batch extractions. Run with
// `go test -race` (CI always does).
func TestPredictBatchRace(t *testing.T) {
	train, labels := predictableDataset(t, 3)
	model, err := trainOnce(train, labels, 2, Config{Folds: 2, Seed: 1, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	test, _ := predictableDataset(t, 4)
	done := make(chan error, 3)
	for g := 0; g < 3; g++ {
		go func() {
			// Each goroutine drives its own batch through the shared model;
			// extraction scratch is per-worker inside each call.
			_, err := model.PredictBatch(context.Background(), test)
			done <- err
		}()
	}
	for g := 0; g < 3; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestSetWorkersRace pins the concurrency contract the serving registry
// relies on: SetWorkers may retune the worker cap while PredictBatch
// callers are in flight, with no data race (run with -race; CI always
// does) and no effect on results — every prediction is byte-identical to
// the sequential reference regardless of when the cap changes.
func TestSetWorkersRace(t *testing.T) {
	train, labels := predictableDataset(t, 5)
	model, err := trainOnce(train, labels, 2, Config{Folds: 2, Seed: 1, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	test, _ := predictableDataset(t, 6)
	want, err := model.PredictBatch(context.Background(), test)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 3; k++ {
				got, err := model.PredictBatch(context.Background(), test)
				if err != nil {
					errs <- err
					return
				}
				for i := range got {
					if got[i] != want[i] {
						errs <- fmt.Errorf("prediction %d changed under SetWorkers: %d vs %d", i, got[i], want[i])
						return
					}
				}
			}
		}()
	}
	for w := 0; w < 200; w++ {
		model.SetWorkers(w % 5)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent PredictBatch under SetWorkers: %v", err)
	}
	model.SetWorkers(8)
	if model.Workers() != 8 {
		t.Errorf("Workers() = %d, want 8", model.Workers())
	}
}

// predictableDataset generates a two-class problem (smooth sine vs noise
// burst) small enough for fast training in tests.
func predictableDataset(t *testing.T, seed int64) ([][]float64, []int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const perClass, length = 10, 128
	series := make([][]float64, 0, 2*perClass)
	labels := make([]int, 0, 2*perClass)
	for i := 0; i < perClass; i++ {
		smooth := make([]float64, length)
		phase := rng.Float64()
		for k := range smooth {
			smooth[k] = math.Sin(2*math.Pi*(float64(k)/16+phase)) + 0.05*rng.NormFloat64()
		}
		series = append(series, smooth)
		labels = append(labels, 0)

		noisy := make([]float64, length)
		for k := range noisy {
			noisy[k] = rng.NormFloat64()
		}
		series = append(series, noisy)
		labels = append(labels, 1)
	}
	return series, labels
}
