// Divide-and-conquer acceleration for the natural-visibility builder.
//
// The max-pivot recursion in Builder.VGEdges splits every window at its
// maximum: cross-pivot sight lines must terminate at the pivot, so the
// pivot's left/right visibility scans plus recursion on the two halves
// enumerate the whole edge set. The recursion itself is fine — what
// degenerates on monotone/sawtooth series is the O(window) work per
// window (linear argmax + linear sweeps), which adds up to O(n²) when the
// pivot always sits at a window edge.
//
// pivotIndex removes both linear passes. It is a block-structured segment
// tree over runs of vgBlock samples storing, per node:
//
//   - the maximum value and its leftmost position, answering the pivot
//     query in O(log n), and
//   - the upper convex hull of the node's points (an arena of int32
//     indices), answering "is any point of this node visible above the
//     running record slope σ?" by a tangent search over the hull.
//
// The visibility sweeps become ray-shooting jump scans: find the next
// index whose slope to the pivot strictly exceeds σ, emit it, raise σ,
// continue after it. A node fully inside the query range is pruned when
// its hull's maximum slope toward the pivot is ≤ σ; leaf blocks are
// scanned linearly with the exact float predicate of the classic sweep,
// so every emitted edge satisfies the same computed inequality as before.
// On an exactly linear ramp the hulls collapse to their endpoints (the
// collinearity cross products are exact for integer-valued samples) and
// the tangent bound equals σ exactly, so whole windows prune in O(log n):
// the monotone worst case drops from O(n²) to O(n log n).
//
// Float caveat: the tangent position is located by a binary search that
// assumes the computed slope sequence along the hull is unimodal. It is
// mathematically, and the search finishes with a linear scan of the final
// candidate window, but adversarial values could in principle wiggle the
// computed sequence by an ulp near its peak and prune a node whose best
// slope beats σ by less than ~2 ulps. Exact ties (the ramp case) and the
// quantized fuzz corpus (slope margins ≥ 2e-6) are unaffected; the
// differential and property suites pin the edge sets builder-for-builder.
package visibility

import (
	"math"

	"mvg/internal/buf"
)

const (
	// vgBlock is the leaf granularity of the pivot index: runs of vgBlock
	// samples are scanned linearly with the exact sweep predicate.
	vgBlock = 64
	// dncTreeMin is the series length from which VGEdges builds the pivot
	// index; below it the linear recursion is cheaper than tree upkeep.
	dncTreeMin = 256
	// dncWindowMin is the window size from which the recursion consults
	// the index; smaller windows fall back to the linear scans.
	dncWindowMin = vgBlock
)

// pivotIndex is the segment tree described in the package comment. All
// storage is reused across builds via the owning Builder's scratch.
type pivotIndex struct {
	n       int // samples covered by the current build
	leaf    int // leaf blocks rounded up to a power of two; node k's children are 2k, 2k+1
	maxVal  []float64
	maxArg  []int32
	hullPos []int32 // per-node [start, start+len) into hullIdx
	hullLen []int32
	hullIdx []int32 // arena of upper-hull vertex indices, grouped per node
}

// build (re)indexes t. Leaf blocks get a monotone-chain upper hull and a
// linear argmax; internal nodes merge children bottom-up (their hulls are
// chains over the children's hull vertices, which preserves the upper
// hull of the union).
func (px *pivotIndex) build(t []float64) {
	n := len(t)
	blocks := (n + vgBlock - 1) / vgBlock
	leaf := 1
	for leaf < blocks {
		leaf <<= 1
	}
	px.n, px.leaf = n, leaf
	nodes := 2 * leaf
	px.maxVal = buf.Grow(px.maxVal, nodes)
	px.maxArg = buf.Grow(px.maxArg, nodes)
	px.hullPos = buf.Grow(px.hullPos, nodes)
	px.hullLen = buf.Grow(px.hullLen, nodes)
	px.hullIdx = px.hullIdx[:0]
	for b := 0; b < leaf; b++ {
		node := leaf + b
		lo := b * vgBlock
		start := len(px.hullIdx)
		px.hullPos[node] = int32(start)
		if lo >= n {
			// Padding block past the series: never intersects a query.
			px.maxVal[node], px.maxArg[node], px.hullLen[node] = math.Inf(-1), -1, 0
			continue
		}
		hi := min(lo+vgBlock-1, n-1)
		best := lo
		for i := lo; i <= hi; i++ {
			if t[i] > t[best] {
				best = i
			}
			px.hullIdx = hullPush(px.hullIdx, start, t, int32(i))
		}
		px.maxVal[node], px.maxArg[node] = t[best], int32(best)
		px.hullLen[node] = int32(len(px.hullIdx) - start)
	}
	for node := leaf - 1; node >= 1; node-- {
		l, r := 2*node, 2*node+1
		if px.maxVal[r] > px.maxVal[l] { // ties keep the leftmost argmax
			px.maxVal[node], px.maxArg[node] = px.maxVal[r], px.maxArg[r]
		} else {
			px.maxVal[node], px.maxArg[node] = px.maxVal[l], px.maxArg[l]
		}
		start := len(px.hullIdx)
		px.hullPos[node] = int32(start)
		for _, c := range [2]int{l, r} {
			// Appends target indices ≥ start, past this child's span, so
			// reading the child hull while growing the arena is safe.
			child := px.hullIdx[px.hullPos[c] : px.hullPos[c]+px.hullLen[c]]
			for _, v := range child {
				px.hullIdx = hullPush(px.hullIdx, start, t, v)
			}
		}
		px.hullLen[node] = int32(len(px.hullIdx) - start)
	}
}

// hullPush appends vertex v to the upper hull growing in hull[start:],
// popping trailing vertices that lie on or below the chord to v. Points
// are (index, value); cross ≥ 0 means the middle vertex is not strictly
// above the chord, so it cannot support a tangent the endpoints don't.
func hullPush(hull []int32, start int, t []float64, v int32) []int32 {
	for len(hull)-start >= 2 {
		a, b := hull[len(hull)-2], hull[len(hull)-1]
		if float64(b-a)*(t[v]-t[a])-(t[b]-t[a])*float64(v-a) >= 0 {
			hull = hull[:len(hull)-1]
		} else {
			break
		}
	}
	return append(hull, v)
}

// argmax returns the leftmost index of the maximum of t[lo..hi].
func (px *pivotIndex) argmax(t []float64, lo, hi int) int {
	best := -1
	bestVal := math.Inf(-1)
	px.argmaxNode(t, 1, 0, px.leaf*vgBlock-1, lo, hi, &bestVal, &best)
	return best
}

func (px *pivotIndex) argmaxNode(t []float64, node, nl, nr, lo, hi int, bestVal *float64, best *int) {
	if nl > hi || nr < lo {
		return
	}
	if lo <= nl && nr <= hi {
		// Traversal is left to right, so strict > keeps the leftmost tie.
		if v := px.maxVal[node]; v > *bestVal {
			*bestVal, *best = v, int(px.maxArg[node])
		}
		return
	}
	if node >= px.leaf {
		for i := max(nl, lo); i <= min(nr, hi); i++ {
			if t[i] > *bestVal {
				*bestVal, *best = t[i], i
			}
		}
		return
	}
	mid := (nl + nr) / 2
	px.argmaxNode(t, 2*node, nl, mid, lo, hi, bestVal, best)
	px.argmaxNode(t, 2*node+1, mid+1, nr, lo, hi, bestVal, best)
}

// shootRight returns the leftmost k in [lo, hi] (all right of pivot p)
// with (t[k]-t[p])/(k-p) > sigma, or -1. The predicate evaluated at leaf
// blocks is float-identical to the classic rightward sweep.
func (px *pivotIndex) shootRight(t []float64, lo, hi, p int, sigma float64) int {
	if lo > hi {
		return -1
	}
	return px.shootRightNode(t, 1, 0, px.leaf*vgBlock-1, lo, hi, p, sigma)
}

func (px *pivotIndex) shootRightNode(t []float64, node, nl, nr, lo, hi, p int, sigma float64) int {
	if nl > hi || nr < lo {
		return -1
	}
	if lo <= nl && nr <= hi && !px.hullAbove(t, node, p, sigma) {
		return -1
	}
	if node >= px.leaf {
		tp := t[p]
		for k := max(nl, lo); k <= min(nr, hi); k++ {
			if (t[k]-tp)/float64(k-p) > sigma {
				return k
			}
		}
		return -1
	}
	mid := (nl + nr) / 2
	if k := px.shootRightNode(t, 2*node, nl, mid, lo, hi, p, sigma); k >= 0 {
		return k
	}
	return px.shootRightNode(t, 2*node+1, mid+1, nr, lo, hi, p, sigma)
}

// shootLeft returns the rightmost k in [lo, hi] (all left of pivot p)
// with (t[k]-t[p])/(p-k) > sigma, or -1 — the mirror of shootRight, with
// the right child searched first.
func (px *pivotIndex) shootLeft(t []float64, lo, hi, p int, sigma float64) int {
	if lo > hi {
		return -1
	}
	return px.shootLeftNode(t, 1, 0, px.leaf*vgBlock-1, lo, hi, p, sigma)
}

func (px *pivotIndex) shootLeftNode(t []float64, node, nl, nr, lo, hi, p int, sigma float64) int {
	if nl > hi || nr < lo {
		return -1
	}
	if lo <= nl && nr <= hi && !px.hullAbove(t, node, p, sigma) {
		return -1
	}
	if node >= px.leaf {
		tp := t[p]
		for k := min(nr, hi); k >= max(nl, lo); k-- {
			if (t[k]-tp)/float64(p-k) > sigma {
				return k
			}
		}
		return -1
	}
	mid := (nl + nr) / 2
	if k := px.shootLeftNode(t, 2*node+1, mid+1, nr, lo, hi, p, sigma); k >= 0 {
		return k
	}
	return px.shootLeftNode(t, 2*node, nl, mid, lo, hi, p, sigma)
}

// hullAbove reports whether any hull vertex of node sees the pivot above
// slope sigma, i.e. max over the hull of |t[v]-t[p]| / |v-p| signed away
// from the pivot exceeds sigma. The slope sequence along an upper hull
// viewed from an external point is unimodal (rises to the tangent, then
// falls), so a binary search over adjacent pairs narrows to a small
// window that is checked linearly. Only called for nodes fully inside a
// query range, so every vertex is on one side of p and v != p.
func (px *pivotIndex) hullAbove(t []float64, node, p int, sigma float64) bool {
	start := int(px.hullPos[node])
	h := px.hullIdx[start : start+int(px.hullLen[node])]
	tp := t[p]
	slope := func(i int) float64 {
		v := int(h[i])
		d := v - p
		if d < 0 {
			d = -d
		}
		return (t[v] - tp) / float64(d)
	}
	lo, hi := 0, len(h)-1
	for hi-lo > 6 {
		m := (lo + hi) / 2
		if slope(m) < slope(m+1) {
			lo = m + 1
		} else {
			hi = m
		}
	}
	for i := lo; i <= hi; i++ {
		if slope(i) > sigma {
			return true
		}
	}
	return false
}
