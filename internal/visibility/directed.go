package visibility

import (
	"math"

	"mvg/internal/graph"
)

// The paper (§2.1) notes that visibility graphs can be made directed "by
// limiting the direction of viewpoints" and weighted (Supriya et al. 2016
// use edge weights for EEG epilepsy detection). This file provides both
// variants; the evaluated pipeline uses the undirected builders, but the
// variants are part of the library surface for downstream experimentation.

// Digraph is a minimal directed graph: edges point forward in time, from
// earlier to later vertices (the "left-to-right viewpoint" convention).
type Digraph struct {
	// Out[i] lists j > i visible from i; In[j] lists i < j seeing j.
	Out [][]int32
	In  [][]int32
	m   int
}

// N returns the vertex count.
func (d *Digraph) N() int { return len(d.Out) }

// M returns the edge count.
func (d *Digraph) M() int { return d.m }

// OutDegree and InDegree report per-vertex degrees.
func (d *Digraph) OutDegree(v int) int { return len(d.Out[v]) }
func (d *Digraph) InDegree(v int) int  { return len(d.In[v]) }

// DegreeStats returns max/mean of the in- and out-degree sequences, the
// natural directed analogues of the paper's degree statistics.
func (d *Digraph) DegreeStats() (maxIn, maxOut int, meanIn, meanOut float64) {
	n := d.N()
	if n == 0 {
		return
	}
	var sumIn, sumOut int
	for v := 0; v < n; v++ {
		in, out := len(d.In[v]), len(d.Out[v])
		sumIn += in
		sumOut += out
		if in > maxIn {
			maxIn = in
		}
		if out > maxOut {
			maxOut = out
		}
	}
	return maxIn, maxOut, float64(sumIn) / float64(n), float64(sumOut) / float64(n)
}

func newDigraph(n int) *Digraph {
	return &Digraph{Out: make([][]int32, n), In: make([][]int32, n)}
}

func (d *Digraph) addEdge(i, j int) {
	d.Out[i] = append(d.Out[i], int32(j))
	d.In[j] = append(d.In[j], int32(i))
	d.m++
}

// DirectedVG builds the time-directed natural visibility graph: the same
// edge set as VG, with every edge oriented from the earlier to the later
// time step.
func DirectedVG(t []float64) (*Digraph, error) {
	g, err := VG(t)
	if err != nil {
		return nil, err
	}
	return orient(g), nil
}

// DirectedHVG builds the time-directed horizontal visibility graph.
func DirectedHVG(t []float64) (*Digraph, error) {
	g, err := HVG(t)
	if err != nil {
		return nil, err
	}
	return orient(g), nil
}

func orient(g *graph.Graph) *Digraph {
	d := newDigraph(g.N())
	for _, e := range g.Edges() {
		d.addEdge(e[0], e[1])
	}
	return d
}

// WeightedEdge is a visibility edge annotated with the view angle between
// the two bar tops: w = arctan((v_j - v_i) / (j - i)), the weighting of
// Supriya et al. (2016). Weights are signed: descending sight lines are
// negative.
type WeightedEdge struct {
	I, J   int
	Weight float64
}

// WeightedVG returns the natural visibility graph as a weighted edge list.
func WeightedVG(t []float64) ([]WeightedEdge, error) {
	g, err := VG(t)
	if err != nil {
		return nil, err
	}
	return weight(t, g), nil
}

// WeightedHVG returns the horizontal visibility graph as a weighted edge
// list.
func WeightedHVG(t []float64) ([]WeightedEdge, error) {
	g, err := HVG(t)
	if err != nil {
		return nil, err
	}
	return weight(t, g), nil
}

func weight(t []float64, g *graph.Graph) []WeightedEdge {
	edges := g.Edges()
	out := make([]WeightedEdge, len(edges))
	for k, e := range edges {
		out[k] = WeightedEdge{
			I:      e[0],
			J:      e[1],
			Weight: angle(t, e[0], e[1]),
		}
	}
	return out
}

func angle(t []float64, i, j int) float64 {
	return math.Atan((t[j] - t[i]) / float64(j-i))
}
