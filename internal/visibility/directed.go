package visibility

import (
	"math"

	"mvg/internal/graph"
)

// The paper (§2.1) notes that visibility graphs can be made directed "by
// limiting the direction of viewpoints" and weighted (Supriya et al. 2016
// use edge weights for EEG epilepsy detection). This file provides both
// variants; the evaluated pipeline uses the undirected builders, but the
// variants are part of the library surface for downstream experimentation.

// Digraph is a minimal directed graph: edges point forward in time, from
// earlier to later vertices (the "left-to-right viewpoint" convention).
type Digraph struct {
	// Out[i] lists j > i visible from i; In[j] lists i < j seeing j.
	// Both are sorted ascending. The rows are views into one flat
	// compressed-sparse-row array shared with the graph build.
	Out [][]int32
	In  [][]int32
	m   int
}

// N returns the vertex count.
func (d *Digraph) N() int { return len(d.Out) }

// M returns the edge count.
func (d *Digraph) M() int { return d.m }

// OutDegree and InDegree report per-vertex degrees.
func (d *Digraph) OutDegree(v int) int { return len(d.Out[v]) }
func (d *Digraph) InDegree(v int) int  { return len(d.In[v]) }

// DegreeStats returns max/mean of the in- and out-degree sequences, the
// natural directed analogues of the paper's degree statistics.
func (d *Digraph) DegreeStats() (maxIn, maxOut int, meanIn, meanOut float64) {
	n := d.N()
	if n == 0 {
		return
	}
	var sumIn, sumOut int
	for v := 0; v < n; v++ {
		in, out := len(d.In[v]), len(d.Out[v])
		sumIn += in
		sumOut += out
		if in > maxIn {
			maxIn = in
		}
		if out > maxOut {
			maxOut = out
		}
	}
	return maxIn, maxOut, float64(sumIn) / float64(n), float64(sumOut) / float64(n)
}

func newDigraph(n int) *Digraph {
	return &Digraph{Out: make([][]int32, n), In: make([][]int32, n)}
}

// orient converts an undirected visibility graph into its time-directed
// form. In a visibility graph every edge connects an earlier to a later
// time step, so vertex v's in-neighbors are exactly its lower-numbered CSR
// row entries and its out-neighbors the higher-numbered ones: the Digraph
// is two subslice views per row over the graph's flat neighbor array, with
// no per-edge work and no edge-list materialization (the former
// implementation round-tripped through the allocating Edges()).
func orient(g *graph.Graph) *Digraph {
	offs, nbrs := g.CSR()
	fwd := g.Forward()
	d := newDigraph(g.N())
	d.m = g.M()
	for v := 0; v < g.N(); v++ {
		d.In[v] = nbrs[offs[v]:fwd[v]]
		d.Out[v] = nbrs[fwd[v]:offs[v+1]]
	}
	return d
}

// DirectedVG builds the time-directed natural visibility graph: the same
// edge set as VG, with every edge oriented from the earlier to the later
// time step.
func DirectedVG(t []float64) (*Digraph, error) {
	var b Builder
	return b.DirectedVG(t)
}

// DirectedHVG builds the time-directed horizontal visibility graph.
func DirectedHVG(t []float64) (*Digraph, error) {
	var b Builder
	return b.DirectedHVG(t)
}

// DirectedVG is the builder variant of the package-level DirectedVG: the
// edge scan reuses the builder's buffers, so batch conversion allocates
// only the returned Digraph. The result does not alias the builder and
// stays valid across further builder calls.
func (b *Builder) DirectedVG(t []float64) (*Digraph, error) {
	edges, err := b.VGEdges(t)
	if err != nil {
		return nil, err
	}
	return orient(graph.FromEdgesUnchecked(len(t), edges)), nil
}

// DirectedHVG is the builder variant of the package-level DirectedHVG; see
// (*Builder).DirectedVG for the reuse contract.
func (b *Builder) DirectedHVG(t []float64) (*Digraph, error) {
	edges, err := b.HVGEdges(t)
	if err != nil {
		return nil, err
	}
	return orient(graph.FromEdgesUnchecked(len(t), edges)), nil
}

// WeightedEdge is a visibility edge annotated with the view angle between
// the two bar tops: w = arctan((v_j - v_i) / (j - i)), the weighting of
// Supriya et al. (2016). Weights are signed: descending sight lines are
// negative.
type WeightedEdge struct {
	I, J   int
	Weight float64
}

// WeightedVG returns the natural visibility graph as a weighted edge list.
func WeightedVG(t []float64) ([]WeightedEdge, error) {
	var b Builder
	edges, err := b.VGEdges(t)
	if err != nil {
		return nil, err
	}
	return weight(t, edges), nil
}

// WeightedHVG returns the horizontal visibility graph as a weighted edge
// list.
func WeightedHVG(t []float64) ([]WeightedEdge, error) {
	var b Builder
	edges, err := b.HVGEdges(t)
	if err != nil {
		return nil, err
	}
	return weight(t, edges), nil
}

// weight annotates the builder's edge list directly (every visibility edge
// is emitted as (earlier, later), so no orientation pass is needed).
func weight(t []float64, edges [][2]int) []WeightedEdge {
	out := make([]WeightedEdge, len(edges))
	for k, e := range edges {
		out[k] = WeightedEdge{
			I:      e[0],
			J:      e[1],
			Weight: angle(t, e[0], e[1]),
		}
	}
	return out
}

func angle(t []float64, i, j int) float64 {
	return math.Atan((t[j] - t[i]) / float64(j-i))
}
