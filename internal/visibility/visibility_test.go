package visibility

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mvg/internal/graph"
)

func randomSeries(n int, rng *rand.Rand) []float64 {
	t := make([]float64, n)
	for i := range t {
		t[i] = rng.NormFloat64()
	}
	return t
}

func edgeSet(g *graph.Graph) map[[2]int]bool {
	s := map[[2]int]bool{}
	for _, e := range g.Edges() {
		s[e] = true
	}
	return s
}

func sameGraph(a, b *graph.Graph) bool {
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	ea, eb := edgeSet(a), edgeSet(b)
	for e := range ea {
		if !eb[e] {
			return false
		}
	}
	return true
}

func TestVGKnownSmall(t *testing.T) {
	// Series: [3, 1, 2]. Edges: (0,1) adjacent, (1,2) adjacent,
	// (0,2): line from (0,3) to (2,2) at k=1 has value 2.5 > 1 → visible.
	g, err := VGNaive([]float64{3, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]int{{0, 1}, {0, 2}, {1, 2}}
	if g.M() != len(want) {
		t.Fatalf("M = %d, want %d (edges %v)", g.M(), len(want), g.Edges())
	}
	for _, e := range want {
		if !g.HasEdge(e[0], e[1]) {
			t.Errorf("missing edge %v", e)
		}
	}
}

func TestVGBlockedView(t *testing.T) {
	// Series: [1, 5, 1, 5, 1]. The peaks block everything across them.
	g, err := VGNaive([]float64{1, 5, 1, 5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(0, 4) {
		t.Error("0 should not see 4 over two peaks")
	}
	if !g.HasEdge(1, 3) {
		t.Error("peaks 1 and 3 should see each other over the valley")
	}
	if g.HasEdge(0, 3) {
		t.Error("0 should not see 3: peak at 1 blocks (line value 4 < 5)")
	}
}

func TestVGCollinearNotVisible(t *testing.T) {
	// Strictly collinear points: middle bar touches the sight line, and the
	// definition requires strict inequality.
	g, err := VGNaive([]float64{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(0, 2) {
		t.Error("collinear middle point must block visibility")
	}
	if g.M() != 2 {
		t.Errorf("M = %d, want 2", g.M())
	}
}

func TestHVGKnownExample(t *testing.T) {
	// Classic example from Luque et al.: [3, 1, 2, 4].
	// Edges: (0,1), (1,2), (2,3) adjacency; (0,2): needs 3,2 > 1 ✓;
	// (0,3): needs 3,4 > 1,2 ✓. (1,3): needs 1,4 > 2 ✗.
	g, err := HVG([]float64{3, 1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 2}, {0, 3}}
	if g.M() != len(want) {
		t.Fatalf("M = %d, want %d (edges %v)", g.M(), len(want), g.Edges())
	}
	for _, e := range want {
		if !g.HasEdge(e[0], e[1]) {
			t.Errorf("missing edge %v", e)
		}
	}
}

func TestHVGEqualHeightsBlock(t *testing.T) {
	g, err := HVG([]float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(0, 2) {
		t.Error("equal middle bar must block horizontal visibility")
	}
	if g.M() != 2 {
		t.Errorf("M = %d, want 2", g.M())
	}
}

func TestErrorsOnBadInput(t *testing.T) {
	for name, f := range map[string]func([]float64) (*graph.Graph, error){
		"VG": VG, "VGNaive": VGNaive, "HVG": HVG, "HVGNaive": HVGNaive,
	} {
		if _, err := f(nil); err == nil {
			t.Errorf("%s(nil) should fail", name)
		}
		if _, err := f([]float64{1}); err == nil {
			t.Errorf("%s(single point) should fail", name)
		}
		if _, err := f([]float64{1, math.NaN()}); err == nil {
			t.Errorf("%s(NaN) should fail", name)
		}
		if _, err := f([]float64{1, math.Inf(1)}); err == nil {
			t.Errorf("%s(Inf) should fail", name)
		}
	}
}

func TestVGDivideAndConquerMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(120)
		series := randomSeries(n, rng)
		a, err1 := VG(series)
		b, err2 := VGNaive(series)
		if err1 != nil || err2 != nil {
			return false
		}
		return sameGraph(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestVGDivideAndConquerWithTies(t *testing.T) {
	// Integer-valued series produce many exact ties, stressing the strict
	// inequality handling in both builders.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		series := make([]float64, n)
		for i := range series {
			series[i] = float64(rng.Intn(4))
		}
		a, err1 := VG(series)
		b, err2 := VGNaive(series)
		if err1 != nil || err2 != nil {
			return false
		}
		return sameGraph(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestHVGMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(120)
		series := make([]float64, n)
		for i := range series {
			if rng.Float64() < 0.3 {
				series[i] = float64(rng.Intn(3)) // force ties
			} else {
				series[i] = rng.NormFloat64()
			}
		}
		a, err1 := HVG(series)
		b, err2 := HVGNaive(series)
		if err1 != nil || err2 != nil {
			return false
		}
		return sameGraph(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestHVGSubgraphOfVG(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		series := randomSeries(2+rng.Intn(100), rng)
		vg, err1 := VG(series)
		hvg, err2 := HVG(series)
		if err1 != nil || err2 != nil {
			return false
		}
		for _, e := range hvg.Edges() {
			if !vg.HasEdge(e[0], e[1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestVisibilityGraphsConnectedWithAdjacentEdges(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		series := randomSeries(2+rng.Intn(80), rng)
		for _, build := range []func([]float64) (*graph.Graph, error){VG, HVG} {
			g, err := build(series)
			if err != nil {
				return false
			}
			if !g.IsConnected() {
				return false
			}
			for i := 0; i+1 < g.N(); i++ {
				if !g.HasEdge(i, i+1) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestAffineInvariance(t *testing.T) {
	// VGs and HVGs are invariant under positive affine transforms of the
	// values and are preserved by horizontal rescaling (which we cannot
	// express on integer indices, so we test value transforms only).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		series := randomSeries(2+rng.Intn(80), rng)
		scaled := make([]float64, len(series))
		a := rng.Float64()*10 + 0.1
		b := rng.NormFloat64() * 100
		for i, v := range series {
			scaled[i] = a*v + b
		}
		v1, _ := VG(series)
		v2, _ := VG(scaled)
		h1, _ := HVG(series)
		h2, _ := HVG(scaled)
		return sameGraph(v1, v2) && sameGraph(h1, h2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMonotoneSeriesVG(t *testing.T) {
	// A strictly convex series has all pairs visible: VG = K_n.
	n := 20
	conv := make([]float64, n)
	for i := range conv {
		conv[i] = float64(i * i)
	}
	g, err := VG(conv)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != n*(n-1)/2 {
		t.Errorf("convex series VG has %d edges, want complete %d", g.M(), n*(n-1)/2)
	}
	// A strictly concave series: only adjacent pairs visible in HVG-like
	// fashion... for VG, concave means every non-adjacent line passes below
	// the intermediate points: only adjacent edges.
	conc := make([]float64, n)
	for i := range conc {
		conc[i] = -float64(i-n/2) * float64(i-n/2)
	}
	g2, err := VG(conc)
	if err != nil {
		t.Fatal(err)
	}
	if g2.M() != n-1 {
		t.Errorf("concave series VG has %d edges, want chain %d", g2.M(), n-1)
	}
}

func TestHVGMeanDegreeRandomSeries(t *testing.T) {
	// Luque et al. exact result: for i.i.d. continuous series the expected
	// HVG mean degree tends to 4 as n→∞.
	rng := rand.New(rand.NewSource(42))
	series := randomSeries(20000, rng)
	g, err := HVG(series)
	if err != nil {
		t.Fatal(err)
	}
	_, _, mean := g.DegreeStats()
	if mean < 3.8 || mean > 4.1 {
		t.Errorf("HVG mean degree on iid noise = %v, want ≈4", mean)
	}
}
