package visibility

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"mvg/internal/graph"
)

// Property-based coverage for the visibility builders: rather than only
// comparing implementations pairwise, these tests assert the structural
// invariants straight from the definitions, over randomized and
// adversarial series families sized to exercise both the linear recursion
// (n < dncTreeMin) and the hull-tree path (n ≥ dncTreeMin, windows ≥
// dncWindowMin).
//
// Values are quantized to multiples of 1/8 (like the fuzz corpus) so the
// re-derived criterion slopes are well separated from the builders'
// record slopes — the checks below must not hinge on sub-ulp float
// coincidences the builders themselves never face in tests.

// propertyFamilies generates the adversarial + randomized series of one
// test round at length n: the monotone/sawtooth shapes that degenerate
// the plain recursion, constant plateaus (equal-height blocking), a
// quantized random walk, sparse spikes (star-shaped graphs) and plain
// quantized noise.
func propertyFamilies(n int, rng *rand.Rand) map[string][]float64 {
	monoUp := make([]float64, n)
	monoDown := make([]float64, n)
	constant := make([]float64, n)
	sawtooth := make([]float64, n)
	walk := make([]float64, n)
	spikes := make([]float64, n)
	noise := make([]float64, n)
	level := 0.0
	for i := 0; i < n; i++ {
		monoUp[i] = float64(i)
		monoDown[i] = float64(-i)
		constant[i] = 2.5
		sawtooth[i] = float64(i % 9)
		level += float64(rng.Intn(9)-4) / 8
		walk[i] = level
		if rng.Intn(16) == 0 {
			spikes[i] = float64(8 + rng.Intn(64))
		}
		noise[i] = float64(rng.Intn(256)-128) / 8
	}
	return map[string][]float64{
		"monotone-up":   monoUp,
		"monotone-down": monoDown,
		"constant":      constant,
		"sawtooth":      sawtooth,
		"random-walk":   walk,
		"spikes":        spikes,
		"noise":         noise,
	}
}

// vgVisible re-derives the natural visibility criterion for the pair
// (i, j): the slope from i to j strictly exceeds the slope from i to
// every intermediate point (equivalent to the bar criterion of
// Definition 2.3, and the exact float expressions of VGNaive).
func vgVisible(t []float64, i, j int) bool {
	s := (t[j] - t[i]) / float64(j-i)
	for k := i + 1; k < j; k++ {
		if (t[k]-t[i])/float64(k-i) >= s {
			return false
		}
	}
	return true
}

// hvgVisible re-derives the horizontal visibility criterion: every
// intermediate bar is strictly below both endpoints.
func hvgVisible(t []float64, i, j int) bool {
	for k := i + 1; k < j; k++ {
		if t[k] >= t[i] || t[k] >= t[j] {
			return false
		}
	}
	return true
}

// checkGraphInvariants asserts the CSR structure is a simple undirected
// graph: strictly sorted rows (no duplicates), no self-loops, symmetric
// adjacency.
func checkGraphInvariants(t *testing.T, name string, g *graph.Graph) {
	t.Helper()
	for v := 0; v < g.N(); v++ {
		row := g.Neighbors(v)
		for i, u := range row {
			if u == int32(v) {
				t.Fatalf("%s: self-loop at %d", name, v)
			}
			if i > 0 && row[i-1] >= u {
				t.Fatalf("%s: row %d not strictly sorted: %v", name, v, row)
			}
			if !g.HasEdge(v, int(u)) || !g.HasEdge(int(u), v) {
				t.Fatalf("%s: edge (%d,%d) not symmetric", name, v, u)
			}
		}
	}
}

// checkVGProperties asserts soundness (every emitted edge satisfies the
// criterion) for any n and completeness (no valid edge missing) against
// the O(n²) definition check for n ≤ 256.
func checkVGProperties(t *testing.T, name string, series []float64, g *graph.Graph) {
	t.Helper()
	checkGraphInvariants(t, name, g)
	for _, e := range g.Edges() {
		if !vgVisible(series, e[0], e[1]) {
			t.Fatalf("%s: emitted VG edge %v violates the visibility criterion", name, e)
		}
	}
	if len(series) <= 256 {
		for i := 0; i < len(series); i++ {
			for j := i + 1; j < len(series); j++ {
				if vgVisible(series, i, j) && !g.HasEdge(i, j) {
					t.Fatalf("%s: valid VG edge (%d,%d) missing", name, i, j)
				}
			}
		}
	}
}

func checkHVGProperties(t *testing.T, name string, series []float64, g *graph.Graph) {
	t.Helper()
	checkGraphInvariants(t, name, g)
	for _, e := range g.Edges() {
		if !hvgVisible(series, e[0], e[1]) {
			t.Fatalf("%s: emitted HVG edge %v violates the horizontal criterion", name, e)
		}
	}
	if len(series) <= 256 {
		for i := 0; i < len(series); i++ {
			for j := i + 1; j < len(series); j++ {
				if hvgVisible(series, i, j) && !g.HasEdge(i, j) {
					t.Fatalf("%s: valid HVG edge (%d,%d) missing", name, i, j)
				}
			}
		}
	}
}

// sortedEdges canonicalizes an edge list for set comparison (the builders
// emit different orders: recursion order vs right-endpoint order).
func sortedEdges(edges [][2]int) [][2]int {
	out := make([][2]int, len(edges))
	copy(out, edges)
	sort.Slice(out, func(a, b int) bool {
		if out[a][0] != out[b][0] {
			return out[a][0] < out[b][0]
		}
		return out[a][1] < out[b][1]
	})
	return out
}

// TestVGPropertiesAcrossFamilies pins soundness/completeness of the
// divide-and-conquer builder and edge-set agreement with the backward
// scan, at sizes straddling the hull-tree threshold (dncTreeMin = 256)
// and the window cutover (dncWindowMin = 64).
func TestVGPropertiesAcrossFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var b, scan Builder // reused across rounds: buffer reuse must not perturb output
	for _, n := range []int{2, 3, 63, 64, 255, 256, 257, 500, 1023} {
		for name, series := range propertyFamilies(n, rng) {
			g := buildCSR(t, &b, series, false)
			checkVGProperties(t, name, series, g)

			scanEdges, err := scan.VGEdgesScan(series)
			if err != nil {
				t.Fatal(err)
			}
			var gs graph.Graph
			gs.BuildUnchecked(n, scanEdges)
			identicalGraphs(t, name+"/dnc-vs-scan", g, &gs)

			h := buildCSR(t, &b, series, true)
			checkHVGProperties(t, name, series, h)
			for _, e := range h.Edges() {
				if !g.HasEdge(e[0], e[1]) {
					t.Fatalf("%s: HVG edge %v missing from VG", name, e)
				}
			}
		}
	}
}

// TestVGEdgeSequenceStableAcrossIndex asserts the hull-tree path emits
// the exact edge sequence of the linear recursion, not merely the same
// set: feature extraction's differential guarantees (golden vectors,
// stream-vs-batch) assume builder output is a pure function of the
// series, independent of which query strategy answered the scans.
func TestVGEdgeSequenceStableAcrossIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var indexed Builder
	for _, n := range []int{256, 300, 777, 1024} {
		for name, series := range propertyFamilies(n, rng) {
			got, err := indexed.VGEdges(series)
			if err != nil {
				t.Fatal(err)
			}
			gotCopy := append([][2]int(nil), got...)
			want := linearVGEdges(series)
			if len(gotCopy) != len(want) {
				t.Fatalf("%s n=%d: %d edges, linear recursion emits %d", name, n, len(gotCopy), len(want))
			}
			for i := range want {
				if gotCopy[i] != want[i] {
					t.Fatalf("%s n=%d: edge %d = %v, linear recursion emits %v", name, n, i, gotCopy[i], want[i])
				}
			}
		}
	}
}

// linearVGEdges is the pre-index max-pivot recursion (linear argmax +
// linear sweeps), kept verbatim as the emission-order reference.
func linearVGEdges(t []float64) [][2]int {
	var edges [][2]int
	var stack []window
	stack = append(stack, window{0, len(t) - 1})
	for len(stack) > 0 {
		w := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if w.hi <= w.lo {
			continue
		}
		p := w.lo
		for k := w.lo + 1; k <= w.hi; k++ {
			if t[k] > t[p] {
				p = k
			}
		}
		maxSlope := math.Inf(-1)
		for j := p + 1; j <= w.hi; j++ {
			slope := (t[j] - t[p]) / float64(j-p)
			if slope > maxSlope {
				edges = append(edges, [2]int{p, j})
				maxSlope = slope
			}
		}
		maxSlope = math.Inf(-1)
		for j := p - 1; j >= w.lo; j-- {
			slope := (t[j] - t[p]) / float64(p-j)
			if slope > maxSlope {
				edges = append(edges, [2]int{j, p})
				maxSlope = slope
			}
		}
		stack = append(stack, window{w.lo, p - 1}, window{p + 1, w.hi})
	}
	return edges
}

// TestVGEdgesScanMatchesNaive pins the backward-scan reference itself
// against the definition-driven builder, so the differential chain
// naive ↔ scan ↔ divide-and-conquer is anchored at both ends.
func TestVGEdgesScanMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var b Builder
	for _, n := range []int{2, 50, 128, 200} {
		for name, series := range propertyFamilies(n, rng) {
			ref, err := VGNaive(series)
			if err != nil {
				t.Fatal(err)
			}
			edges, err := b.VGEdgesScan(series)
			if err != nil {
				t.Fatal(err)
			}
			var g graph.Graph
			g.BuildUnchecked(n, edges)
			identicalGraphs(t, name+"/scan-vs-naive", &g, ref)
		}
	}
}

// TestVGEdgesScanErrors pins the validation contract shared by every
// builder entry point.
func TestVGEdgesScanErrors(t *testing.T) {
	var b Builder
	if _, err := b.VGEdgesScan([]float64{1}); err == nil {
		t.Fatal("VGEdgesScan accepted a 1-point series")
	}
	if _, err := b.VGEdgesScan([]float64{1, math.NaN()}); err == nil {
		t.Fatal("VGEdgesScan accepted NaN")
	}
	if _, err := b.VGEdgesScan([]float64{1, math.Inf(1)}); err == nil {
		t.Fatal("VGEdgesScan accepted +Inf")
	}
}

// TestSortedEdgesHelper guards the canonicalization used by the property
// suite itself.
func TestSortedEdgesHelper(t *testing.T) {
	in := [][2]int{{2, 3}, {0, 5}, {0, 1}}
	got := sortedEdges(in)
	want := [][2]int{{0, 1}, {0, 5}, {2, 3}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sortedEdges = %v, want %v", got, want)
		}
	}
}
