package visibility

import (
	"math"
	"testing"

	"mvg/internal/graph"
)

// longSeriesFromBytes decodes fuzz bytes one point per byte like
// seriesFromBytes, but caps at 2048 points instead of 256: the
// divide-and-conquer builder switches to its hull-tree index at
// dncTreeMin = 256 samples, so the differential fuzz below must routinely
// cross that threshold (and the dncWindowMin window cutover inside the
// recursion) to exercise the indexed path.
func longSeriesFromBytes(data []byte) []float64 {
	if len(data) > 2048 {
		data = data[:2048]
	}
	series := make([]float64, len(data))
	for i, b := range data {
		series[i] = float64(int(b)-128) / 8
	}
	return series
}

// FuzzDNCAgainstBackwardScan differentially fuzzes the divide-and-conquer
// builder (hull-tree index included) against the backward-scan reference
// VGEdgesScan: identical CSR graphs on every input, plus the builder-
// independent structural invariants. Quantized inputs keep slope margins
// ≥ ~2e-6, far above the ulp scale, so set equality is exact.
func FuzzDNCAgainstBackwardScan(f *testing.F) {
	for _, series := range adversarialSeries() {
		buf := make([]byte, len(series))
		for i, v := range series {
			buf[i] = byte(int(math.Min(math.Max(v, -16), 15)*8) + 128)
		}
		f.Add(buf)
	}
	// Long monotone ramps cross the tree threshold with degenerate pivots
	// — the regime the index exists for.
	ramp := make([]byte, 1024)
	for i := range ramp {
		ramp[i] = byte(255 - (i % 256))
	}
	f.Add(ramp)
	saw := make([]byte, 700)
	for i := range saw {
		saw[i] = byte(128 + 8*(i%9))
	}
	f.Add(saw)

	f.Fuzz(func(t *testing.T, data []byte) {
		series := longSeriesFromBytes(data)
		if len(series) < 2 {
			t.Skip()
		}
		var b Builder
		dnc := buildCSR(t, &b, series, false)

		var scanB Builder
		edges, err := scanB.VGEdgesScan(series)
		if err != nil {
			t.Fatal(err)
		}
		var scan graph.Graph
		scan.BuildUnchecked(len(series), edges)

		identicalGraphs(t, "dnc-vs-scan", dnc, &scan)
		for _, e := range dnc.Edges() {
			if !vgVisible(series, e[0], e[1]) {
				t.Fatalf("emitted VG edge %v violates the visibility criterion", e)
			}
		}
	})
}
