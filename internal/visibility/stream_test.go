package visibility

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"mvg/internal/graph"
)

// batchWindowGraphs builds the batch-reference VG and HVG of one window.
func batchWindowGraphs(t *testing.T, b *Builder, window []float64) (vg, hvg *graph.Graph) {
	t.Helper()
	vgEdges, err := b.VGEdges(window)
	if err != nil {
		t.Fatal(err)
	}
	vg = graph.FromEdgesUnchecked(len(window), vgEdges)
	hvgEdges, err := b.HVGEdges(window)
	if err != nil {
		t.Fatal(err)
	}
	hvg = graph.FromEdgesUnchecked(len(window), hvgEdges)
	return vg, hvg
}

// slideAndCompare pushes series through an Incremental of the given window
// length and, once the window is full, compares both maintained graphs
// against batch rebuilds of the materialized window after every push.
func slideAndCompare(t *testing.T, name string, series []float64, windowLen int) {
	t.Helper()
	inc, err := NewIncremental(windowLen, true, true)
	if err != nil {
		t.Fatal(err)
	}
	var b Builder
	var vgSnap, hvgSnap graph.Graph
	var window []float64
	for i, x := range series {
		if err := inc.Push(x); err != nil {
			t.Fatalf("%s: push %d: %v", name, i, err)
		}
		if inc.Len() < 2 {
			continue
		}
		window = inc.WindowInto(window)
		wantVG, wantHVG := batchWindowGraphs(t, &b, window)
		inc.SnapshotVG(&vgSnap)
		inc.SnapshotHVG(&hvgSnap)
		identicalGraphs(t, name+"/vg", &vgSnap, wantVG)
		identicalGraphs(t, name+"/hvg", &hvgSnap, wantHVG)
	}
}

func TestIncrementalAgainstBatchAdversarial(t *testing.T) {
	for name, series := range adversarialSeries() {
		if len(series) < 4 {
			continue
		}
		for _, w := range []int{2, 3, 8, 32} {
			if w > len(series) {
				continue
			}
			slideAndCompare(t, name, series, w)
		}
	}
}

func TestIncrementalAgainstBatchRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for iter := 0; iter < 25; iter++ {
		series := randomSeries(3+rng.Intn(96), rng)
		// Plateaus exercise the equal-height pop rule across evictions.
		if iter%2 == 0 {
			for i := range series {
				series[i] = math.Round(series[i] * 2)
			}
		}
		w := 2 + rng.Intn(len(series)-1)
		slideAndCompare(t, "random", series, w)
	}
}

// TestIncrementalLongStream wraps the ring many times over a window much
// shorter than the stream, exercising stack compaction and slot reuse.
func TestIncrementalLongStream(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const w = 24
	series := make([]float64, 40*w)
	level := 0.0
	for i := range series {
		level += rng.NormFloat64()
		series[i] = math.Round(level*4) / 4
	}
	slideAndCompare(t, "long-walk", series, w)
}

func TestIncrementalSampleRingOnly(t *testing.T) {
	inc, err := NewIncremental(4, false, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := inc.Push(float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	got := inc.WindowInto(nil)
	want := []float64{6, 7, 8, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("window = %v, want %v", got, want)
		}
	}
	if inc.Total() != 10 || inc.Len() != 4 {
		t.Fatalf("Total=%d Len=%d, want 10/4", inc.Total(), inc.Len())
	}
}

func TestIncrementalRejectsNonFinite(t *testing.T) {
	inc, err := NewIncremental(8, true, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{1, 2, 0.5} {
		if err := inc.Push(x); err != nil {
			t.Fatal(err)
		}
	}
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		err := inc.Push(bad)
		if !errors.Is(err, ErrNonFinite) {
			t.Fatalf("Push(%v) = %v, want ErrNonFinite", bad, err)
		}
	}
	if inc.Len() != 3 {
		t.Fatalf("rejected pushes mutated the window: Len=%d, want 3", inc.Len())
	}
	// The window must still track the batch builders after a rejection.
	slide := inc.WindowInto(nil)
	var b Builder
	wantVG, _ := batchWindowGraphs(t, &b, slide)
	var snap graph.Graph
	inc.SnapshotVG(&snap)
	identicalGraphs(t, "post-reject/vg", &snap, wantVG)
}

func TestIncrementalWindowLenValidation(t *testing.T) {
	if _, err := NewIncremental(1, true, true); !errors.Is(err, ErrWindowLen) {
		t.Fatalf("NewIncremental(1) err = %v, want ErrWindowLen", err)
	}
}

func TestIncrementalReset(t *testing.T) {
	inc, err := NewIncremental(6, true, true)
	if err != nil {
		t.Fatal(err)
	}
	series := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	for _, x := range series {
		if err := inc.Push(x); err != nil {
			t.Fatal(err)
		}
	}
	inc.Reset()
	if inc.Len() != 0 || inc.Total() != 0 {
		t.Fatalf("Reset left Len=%d Total=%d", inc.Len(), inc.Total())
	}
	slideAndCompare(t, "post-reset", series, 6)
}

// TestIncrementalPushAllocFree pins the hot-path contract: warm pushes
// allocate nothing.
func TestIncrementalPushAllocFree(t *testing.T) {
	inc, err := NewIncremental(64, true, true)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	walk := 0.0
	push := func() {
		walk += rng.NormFloat64()
		if err := inc.Push(walk); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 64*4; i++ {
		push()
	}
	if allocs := testing.AllocsPerRun(200, push); allocs > 0 {
		t.Fatalf("warm Push allocates %.1f/op, want 0", allocs)
	}
}
