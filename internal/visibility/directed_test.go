package visibility

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDirectedVGMatchesUndirected(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		series := randomSeries(2+rng.Intn(80), rng)
		g, err1 := VG(series)
		d, err2 := DirectedVG(series)
		if err1 != nil || err2 != nil {
			return false
		}
		if d.M() != g.M() || d.N() != g.N() {
			return false
		}
		// Every directed edge goes forward in time and exists undirected.
		for i := 0; i < d.N(); i++ {
			for _, j := range d.Out[i] {
				if int(j) <= i || !g.HasEdge(i, int(j)) {
					return false
				}
			}
		}
		// In/out degrees are consistent with the undirected degrees.
		for v := 0; v < d.N(); v++ {
			if d.InDegree(v)+d.OutDegree(v) != g.Degree(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDirectedDegreeStats(t *testing.T) {
	// Series [3,1,2]: edges (0,1),(1,2),(0,2) all forward.
	d, err := DirectedVG([]float64{3, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	maxIn, maxOut, meanIn, meanOut := d.DegreeStats()
	if maxOut != 2 || maxIn != 2 {
		t.Errorf("max degrees = in %d out %d", maxIn, maxOut)
	}
	if math.Abs(meanIn-1) > 1e-12 || math.Abs(meanOut-1) > 1e-12 {
		t.Errorf("mean degrees = in %v out %v, want 1", meanIn, meanOut)
	}
	// First vertex sees only forward; last only backward.
	if d.InDegree(0) != 0 || d.OutDegree(2) != 0 {
		t.Error("boundary degrees wrong")
	}
	empty := newDigraph(0)
	if a, b, c, e := empty.DegreeStats(); a != 0 || b != 0 || c != 0 || e != 0 {
		t.Error("empty digraph stats should be zero")
	}
}

func TestDirectedHVG(t *testing.T) {
	d, err := DirectedHVG([]float64{3, 1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if d.M() != 5 {
		t.Errorf("directed HVG edges = %d, want 5", d.M())
	}
	if _, err := DirectedHVG([]float64{1}); err == nil {
		t.Error("short series should fail")
	}
	if _, err := DirectedVG(nil); err == nil {
		t.Error("empty series should fail")
	}
}

func TestWeightedVGAngles(t *testing.T) {
	// Peak at index 1 blocks (0,2): only the two adjacent edges remain,
	// plus (1,2) falling and (0,1) rising.
	series := []float64{0, 1, 0.5}
	edges, err := WeightedVG(series)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 2 {
		t.Fatalf("weighted edges = %d, want 2", len(edges))
	}
	for _, e := range edges {
		want := math.Atan((series[e.J] - series[e.I]) / float64(e.J-e.I))
		if math.Abs(e.Weight-want) > 1e-12 {
			t.Errorf("edge (%d,%d) weight %v, want %v", e.I, e.J, e.Weight, want)
		}
		if e.Weight < -math.Pi/2 || e.Weight > math.Pi/2 {
			t.Errorf("weight %v outside (-π/2, π/2)", e.Weight)
		}
	}
	// Rising edge positive, falling edge negative.
	for _, e := range edges {
		if series[e.J] > series[e.I] && e.Weight <= 0 {
			t.Errorf("rising edge (%d,%d) has weight %v", e.I, e.J, e.Weight)
		}
		if series[e.J] < series[e.I] && e.Weight >= 0 {
			t.Errorf("falling edge (%d,%d) has weight %v", e.I, e.J, e.Weight)
		}
	}
}

func TestWeightedHVGSubsetOfWeightedVG(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	series := randomSeries(60, rng)
	vgEdges, err := WeightedVG(series)
	if err != nil {
		t.Fatal(err)
	}
	hvgEdges, err := WeightedHVG(series)
	if err != nil {
		t.Fatal(err)
	}
	vgSet := map[[2]int]float64{}
	for _, e := range vgEdges {
		vgSet[[2]int{e.I, e.J}] = e.Weight
	}
	for _, e := range hvgEdges {
		w, ok := vgSet[[2]int{e.I, e.J}]
		if !ok {
			t.Fatalf("HVG edge (%d,%d) missing from VG", e.I, e.J)
		}
		if w != e.Weight {
			t.Fatalf("weight mismatch on (%d,%d)", e.I, e.J)
		}
	}
	if _, err := WeightedVG(nil); err == nil {
		t.Error("empty series should fail")
	}
	if _, err := WeightedHVG([]float64{1}); err == nil {
		t.Error("short series should fail")
	}
}
