package visibility

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"mvg/internal/graph"
)

// Differential coverage for the CSR substrate under the visibility
// builders: the fast VG/HVG constructors (divide-and-conquer and stack
// builders feeding the counting-sort CSR build) are pinned against the
// naive O(n²) definition-driven references on adversarial and fuzzed
// series. Adversarial shapes matter because they exercise the degenerate
// graph layouts: monotone series produce a near-clique at the maximum
// (worst-case row lengths), constant series produce a path (HVG) and
// clique-free chains, spikes produce stars, and alternating series produce
// maximal-degree combs.

func adversarialSeries() map[string][]float64 {
	monotoneUp := make([]float64, 64)
	monotoneDown := make([]float64, 64)
	constant := make([]float64, 64)
	alternating := make([]float64, 64)
	spike := make([]float64, 64)
	staircase := make([]float64, 64)
	for i := range monotoneUp {
		monotoneUp[i] = float64(i)
		monotoneDown[i] = float64(-i)
		constant[i] = 3.5
		alternating[i] = float64(i % 2)
		staircase[i] = float64(i / 8)
	}
	spike[32] = 1e9
	return map[string][]float64{
		"monotone-up":   monotoneUp,
		"monotone-down": monotoneDown,
		"constant":      constant,
		"alternating":   alternating,
		"single-spike":  spike,
		"staircase":     staircase,
		"two-points":    {1, 2},
		"equal-pair":    {1, 1},
	}
}

// identicalGraphs asserts g and ref agree exactly: vertex and edge counts,
// every sorted CSR row, and the forward split invariant.
func identicalGraphs(t *testing.T, name string, g, ref *graph.Graph) {
	t.Helper()
	if g.N() != ref.N() || g.M() != ref.M() {
		t.Fatalf("%s: N/M = %d/%d, reference %d/%d", name, g.N(), g.M(), ref.N(), ref.M())
	}
	offs, nbrs := g.CSR()
	fwd := g.Forward()
	for v := 0; v < g.N(); v++ {
		got, want := g.Neighbors(v), ref.Neighbors(v)
		if len(got) != len(want) {
			t.Fatalf("%s: degree(%d) = %d, reference %d", name, v, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: row %d = %v, reference %v", name, v, got, want)
			}
			if i > 0 && got[i-1] >= got[i] {
				t.Fatalf("%s: row %d not strictly sorted: %v", name, v, got)
			}
		}
		for p := offs[v]; p < offs[v+1]; p++ {
			if (p < fwd[v]) != (nbrs[p] < int32(v)) {
				t.Fatalf("%s: forward split of vertex %d broken", name, v)
			}
		}
	}
}

func buildCSR(t *testing.T, b *Builder, series []float64, hvg bool) *graph.Graph {
	t.Helper()
	var (
		edges [][2]int
		err   error
	)
	if hvg {
		edges, err = b.HVGEdges(series)
	} else {
		edges, err = b.VGEdges(series)
	}
	if err != nil {
		t.Fatal(err)
	}
	var g graph.Graph
	g.BuildUnchecked(len(series), edges)
	return &g
}

func TestCSRBuildersAgainstNaiveAdversarial(t *testing.T) {
	var b Builder
	for name, series := range adversarialSeries() {
		vgRef, err := VGNaive(series)
		if err != nil {
			t.Fatal(err)
		}
		identicalGraphs(t, name+"/vg", buildCSR(t, &b, series, false), vgRef)
		hvgRef, err := HVGNaive(series)
		if err != nil {
			t.Fatal(err)
		}
		identicalGraphs(t, name+"/hvg", buildCSR(t, &b, series, true), hvgRef)
	}
}

func TestCSRBuildersAgainstNaiveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var b Builder // shared across iterations: reuse must not perturb output
	for iter := 0; iter < 60; iter++ {
		series := randomSeries(2+rng.Intn(120), rng)
		// Random plateaus exercise the equal-height blocking rules.
		if iter%3 == 0 {
			for i := range series {
				series[i] = math.Round(series[i] * 2)
			}
		}
		vgRef, err := VGNaive(series)
		if err != nil {
			t.Fatal(err)
		}
		identicalGraphs(t, "vg", buildCSR(t, &b, series, false), vgRef)
		hvgRef, err := HVGNaive(series)
		if err != nil {
			t.Fatal(err)
		}
		identicalGraphs(t, "hvg", buildCSR(t, &b, series, true), hvgRef)
	}
}

// seriesFromBytes decodes fuzz bytes into a bounded finite series, one
// point per byte, spanning positive, negative and repeated values.
func seriesFromBytes(data []byte) []float64 {
	if len(data) > 256 {
		data = data[:256]
	}
	series := make([]float64, len(data))
	for i, b := range data {
		series[i] = float64(int(b)-128) / 8
	}
	return series
}

// FuzzCSRBuildersAgainstNaive differentially fuzzes the production path
// (fast builders + counting-sort CSR build) against both O(n²) references.
func FuzzCSRBuildersAgainstNaive(f *testing.F) {
	for _, series := range adversarialSeries() {
		buf := make([]byte, len(series))
		for i, v := range series {
			buf[i] = byte(int(math.Min(math.Max(v, -16), 15)*8) + 128)
		}
		f.Add(buf)
	}
	var lenBuf [8]byte
	binary.LittleEndian.PutUint64(lenBuf[:], 42)
	f.Add(lenBuf[:])

	f.Fuzz(func(t *testing.T, data []byte) {
		series := seriesFromBytes(data)
		if len(series) < 2 {
			t.Skip()
		}
		var b Builder
		vgRef, err := VGNaive(series)
		if err != nil {
			t.Fatal(err)
		}
		identicalGraphs(t, "vg", buildCSR(t, &b, series, false), vgRef)
		hvgRef, err := HVGNaive(series)
		if err != nil {
			t.Fatal(err)
		}
		identicalGraphs(t, "hvg", buildCSR(t, &b, series, true), hvgRef)

		// The HVG is a subgraph of the VG on any series (Lacasa et al.).
		hvg := buildCSR(t, &b, series, true)
		vg := buildCSR(t, &b, series, false)
		for _, e := range hvg.Edges() {
			if !vg.HasEdge(e[0], e[1]) {
				t.Fatalf("HVG edge %v missing from VG", e)
			}
		}
	})
}
