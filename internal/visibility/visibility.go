// Package visibility converts time series into (horizontal) visibility
// graphs following Lacasa et al. (Definition 2.3 of the paper) and Luque et
// al. (Definition 2.4).
//
// Vertex i of the resulting graph corresponds to time step i. Two vertices
// are connected in the natural visibility graph (VG) when the straight line
// between the tops of their value bars clears every intermediate bar, and
// in the horizontal visibility graph (HVG) when a horizontal line does.
// HVGs are always subgraphs of VGs, both are connected, and both are
// invariant under affine transformations of the series.
//
// Four constructors are provided:
//
//   - VGNaive: the O(n²) definition-driven scan (reference implementation),
//   - VG: a divide-and-conquer builder that pivots on window maxima,
//     accelerated by a hull-tree pivot index (see dnc.go) to O(n log n)
//     worst case — including the monotone/sawtooth series where the plain
//     recursion degenerates (the practical counterpart of the
//     sub-quadratic algorithm of Afshani et al. cited in the paper),
//   - Builder.VGEdgesScan: the per-vertex backward max-slope scan of the
//     streaming maintainer, kept as a differential reference and as the
//     worst-case benchmark baseline,
//   - HVG: the stack-based O(n) builder.
package visibility

import (
	"errors"
	"fmt"
	"math"

	"mvg/internal/graph"
)

// ErrTooShort is returned for series with fewer than two points.
var ErrTooShort = errors.New("visibility: series needs at least 2 points")

func validate(t []float64) error {
	if len(t) < 2 {
		return ErrTooShort
	}
	for i, v := range t {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("visibility: non-finite value %v at index %d", v, i)
		}
	}
	return nil
}

// VGNaive builds the natural visibility graph by the O(n²) left-to-right
// slope scan. Each pair (i,j) is linked iff the slope from i to j strictly
// exceeds the slope from i to every intermediate point, which is equivalent
// to the bar-visibility criterion of Definition 2.3.
func VGNaive(t []float64) (*graph.Graph, error) {
	if err := validate(t); err != nil {
		return nil, err
	}
	n := len(t)
	edges := make([][2]int, 0, 2*n)
	for i := 0; i < n-1; i++ {
		maxSlope := math.Inf(-1)
		for j := i + 1; j < n; j++ {
			slope := (t[j] - t[i]) / float64(j-i)
			if slope > maxSlope {
				edges = append(edges, [2]int{i, j})
				maxSlope = slope
			}
		}
	}
	return graph.FromEdgesUnchecked(n, edges), nil
}

// window is one divide-and-conquer interval of the VG builder.
type window struct{ lo, hi int }

// Builder constructs visibility graphs with reusable internal buffers (the
// edge list, the divide-and-conquer window stack, the hull-tree pivot
// index and the HVG bar stack), so batch extraction can transform one
// scale after another without per-graph allocations. The zero value is
// ready for use; a Builder must not be shared between goroutines. Edge
// slices returned by VGEdges/VGEdgesScan/HVGEdges alias the builder and
// are valid only until its next call.
type Builder struct {
	edges [][2]int
	win   []window
	stack []int
	px    pivotIndex
}

// VG builds the natural visibility graph with a divide-and-conquer
// strategy: the maximum of the current window is the pivot; every
// visibility line crossing the pivot's position must terminate at the pivot
// (nothing can be seen "over" a strictly larger bar), so it suffices to
// scan the pivot's visibility left and right and recurse on the two halves.
// For series of at least dncTreeMin points the pivot search and both
// visibility sweeps run on the hull-tree index of dnc.go, bounding the
// worst case (monotone/sawtooth windows, where the plain recursion is
// O(n²)) at O(n log n); shorter series use the linear scans directly.
func VG(t []float64) (*graph.Graph, error) {
	var b Builder
	edges, err := b.VGEdges(t)
	if err != nil {
		return nil, err
	}
	return graph.FromEdgesUnchecked(len(t), edges), nil
}

// VGEdges computes the natural visibility edge list of t into the builder's
// reusable buffer (see VG for the algorithm). The emitted edge sequence is
// identical to the pre-index builder's: the index answers the same pivot
// and record-slope queries the linear scans answered, with the leaf-level
// predicate evaluated by the same float expressions.
func (b *Builder) VGEdges(t []float64) ([][2]int, error) {
	if err := validate(t); err != nil {
		return nil, err
	}
	n := len(t)
	edges := b.edges[:0]
	indexed := n >= dncTreeMin
	if indexed {
		b.px.build(t)
	}

	// Explicit stack avoids deep recursion on adversarial (monotone) input.
	stack := append(b.win[:0], window{0, n - 1})
	for len(stack) > 0 {
		w := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if w.hi <= w.lo {
			continue
		}
		var p int
		if indexed && w.hi-w.lo+1 >= dncWindowMin {
			// Pivot: leftmost maximum of the window, off the index.
			p = b.px.argmax(t, w.lo, w.hi)
			tp := t[p]
			// Rightward visibility: jump from record to record. Skipped
			// points have slope ≤ the running record, exactly the points
			// the linear sweep passes over without emitting.
			sigma := math.Inf(-1)
			for j := p + 1; j <= w.hi; {
				k := b.px.shootRight(t, j, w.hi, p, sigma)
				if k < 0 {
					break
				}
				edges = append(edges, [2]int{p, k})
				sigma = (t[k] - tp) / float64(k-p)
				j = k + 1
			}
			// Leftward visibility, mirrored.
			sigma = math.Inf(-1)
			for j := p - 1; j >= w.lo; {
				k := b.px.shootLeft(t, w.lo, j, p, sigma)
				if k < 0 {
					break
				}
				edges = append(edges, [2]int{k, p})
				sigma = (t[k] - tp) / float64(p-k)
				j = k - 1
			}
		} else {
			// Pivot: leftmost maximum of the window.
			p = w.lo
			for k := w.lo + 1; k <= w.hi; k++ {
				if t[k] > t[p] {
					p = k
				}
			}
			// Rightward visibility scan from the pivot.
			maxSlope := math.Inf(-1)
			for j := p + 1; j <= w.hi; j++ {
				slope := (t[j] - t[p]) / float64(j-p)
				if slope > maxSlope {
					edges = append(edges, [2]int{p, j})
					maxSlope = slope
				}
			}
			// Leftward visibility scan from the pivot.
			maxSlope = math.Inf(-1)
			for j := p - 1; j >= w.lo; j-- {
				slope := (t[j] - t[p]) / float64(p-j)
				if slope > maxSlope {
					edges = append(edges, [2]int{j, p})
					maxSlope = slope
				}
			}
		}
		stack = append(stack, window{w.lo, p - 1}, window{p + 1, w.hi})
	}
	b.edges, b.win = edges, stack
	return edges, nil
}

// VGEdgesScan computes the natural visibility edge list with the
// per-vertex backward max-slope scan of the streaming maintainer
// (Incremental.Push), including its window-maximum early exit. It is kept
// as the differential reference for the divide-and-conquer builder
// (FuzzDNCAgainstBackwardScan) and as the worst-case benchmark baseline:
// output-sensitive on typical series, O(n²) on monotone decreasing ones.
// Edge order differs from VGEdges (grouped by right endpoint, collected
// descending); the edge set is identical.
func (b *Builder) VGEdgesScan(t []float64) ([][2]int, error) {
	if err := validate(t); err != nil {
		return nil, err
	}
	edges := b.edges[:0]
	m := t[0] // running maximum of t[:j]
	for j := 1; j < len(t); j++ {
		x := t[j]
		maxSlope := math.Inf(-1)
		for k := j - 1; k >= 0; k-- {
			slope := (t[k] - x) / float64(j-k)
			if slope > maxSlope {
				edges = append(edges, [2]int{k, j})
				maxSlope = slope
			}
			// Every remaining bar sits at distance ≥ j-k+1 and height ≤ m:
			// nothing left can beat the record (same exit as stream.go).
			if maxSlope >= 0 && maxSlope*float64(j-k+1) >= m-x {
				break
			}
		}
		if x > m {
			m = x
		}
	}
	b.edges = edges
	return edges, nil
}

// HVG builds the horizontal visibility graph with the O(n) stack algorithm:
// each new point links to every smaller bar popped from the stack and to
// the first bar at least as tall as itself; equal-height bars block further
// visibility and are popped.
func HVG(t []float64) (*graph.Graph, error) {
	var b Builder
	edges, err := b.HVGEdges(t)
	if err != nil {
		return nil, err
	}
	return graph.FromEdgesUnchecked(len(t), edges), nil
}

// HVGEdges computes the horizontal visibility edge list of t into the
// builder's reusable buffer (see HVG for the algorithm).
func (b *Builder) HVGEdges(t []float64) ([][2]int, error) {
	if err := validate(t); err != nil {
		return nil, err
	}
	n := len(t)
	edges := b.edges[:0]
	stack := b.stack[:0]
	for j := 0; j < n; j++ {
		for len(stack) > 0 && t[stack[len(stack)-1]] < t[j] {
			edges = append(edges, [2]int{stack[len(stack)-1], j})
			stack = stack[:len(stack)-1]
		}
		if len(stack) > 0 {
			top := stack[len(stack)-1]
			edges = append(edges, [2]int{top, j})
			if t[top] == t[j] {
				stack = stack[:len(stack)-1]
			}
		}
		stack = append(stack, j)
	}
	b.edges, b.stack = edges, stack
	return edges, nil
}

// HVGNaive is the O(n²) definition-driven horizontal visibility builder
// kept as a reference implementation for testing.
func HVGNaive(t []float64) (*graph.Graph, error) {
	if err := validate(t); err != nil {
		return nil, err
	}
	n := len(t)
	edges := make([][2]int, 0, 2*n)
	for i := 0; i < n-1; i++ {
		blocker := math.Inf(-1)
		for j := i + 1; j < n; j++ {
			if t[i] > blocker && t[j] > blocker {
				edges = append(edges, [2]int{i, j})
			}
			if t[j] >= t[i] {
				break
			}
			if t[j] > blocker {
				blocker = t[j]
			}
		}
	}
	return graph.FromEdgesUnchecked(n, edges), nil
}
