// Incremental sliding-window maintenance of visibility graphs.
//
// Both visibility criteria are local: whether (i,j) is an edge depends
// only on the values at indices i..j. Sliding a window therefore never
// rewires surviving pairs — appending a sample only ADDS edges from the
// new rightmost point backward, and evicting the oldest point only
// REMOVES its incident edges. Incremental maintains both graphs under
// that observation:
//
//   - HVG: the classic monotone-stack argument. The stack of
//     "right-visible records" (each bar strictly taller than everything
//     after it) is carried across pushes; a new bar links to every bar it
//     pops plus the first bar at least as tall, amortized O(1) per push.
//     Evicting the oldest bar can only touch the stack bottom.
//   - NVG: a backward max-slope scan from the new point — a bar is
//     visible iff its slope toward the new point strictly exceeds every
//     nearer bar's — with an early exit once even the window maximum
//     (read off the stack bottom) could no longer beat the running
//     maximum slope. Output-sensitive: O(new edges) until the exit
//     triggers, O(window) worst case.
package visibility

import (
	"errors"
	"fmt"
	"math"

	"mvg/internal/graph"
)

// ErrNonFinite is returned by Incremental.Push for NaN or infinite
// samples, which have no place in a visibility ordering.
var ErrNonFinite = errors.New("visibility: non-finite sample")

// ErrWindowLen is returned for windows too short to ever hold a graph.
var ErrWindowLen = errors.New("visibility: window needs at least 2 points")

// Incremental maintains the natural and/or horizontal visibility graph of
// a sliding window over a sample stream. Push appends one sample, evicting
// the oldest automatically once the window is full; Snapshot* materialize
// the current window's graphs as CSR for the batch feature kernels.
//
// The maintained edge sets are identical to what the batch builders
// (Builder.VGEdges / Builder.HVGEdges) produce on the materialized window
// — pinned by differential tests and FuzzStreamAgainstBatch. An
// Incremental must not be shared between goroutines.
type Incremental struct {
	capacity int
	vg, hvg  *graph.RingGraph // nil when that graph is not maintained

	values []float64 // ring of raw samples, slot = id % capacity
	start  int       // logical id of the oldest live sample
	count  int       // live samples

	// Monotone stack of logical ids with strictly decreasing values from
	// bottom to top (the right-visible records). stack[bot:] is live; the
	// dead prefix left by evictions is compacted away amortized O(1).
	stack []int
	bot   int

	nbrs []int // backward-neighbor scratch, collected descending
}

// NewIncremental returns a maintainer for windows of windowLen samples.
// maintainVG / maintainHVG select which graphs are kept; with both false
// the Incremental degrades to a plain sample ring (the fallback mode of
// mvg.Stream, which then rebuilds graphs per hop).
func NewIncremental(windowLen int, maintainVG, maintainHVG bool) (*Incremental, error) {
	if windowLen < 2 {
		return nil, fmt.Errorf("%w: windowLen=%d", ErrWindowLen, windowLen)
	}
	inc := &Incremental{
		capacity: windowLen,
		values:   make([]float64, windowLen),
	}
	if maintainVG {
		inc.vg = graph.NewRingGraph(windowLen)
	}
	if maintainHVG {
		inc.hvg = graph.NewRingGraph(windowLen)
	}
	return inc, nil
}

// Reset empties the window, retaining all storage.
func (inc *Incremental) Reset() {
	inc.start, inc.count, inc.bot = 0, 0, 0
	inc.stack = inc.stack[:0]
	if inc.vg != nil {
		inc.vg.Reset(inc.capacity)
	}
	if inc.hvg != nil {
		inc.hvg.Reset(inc.capacity)
	}
}

// WindowLen returns the window capacity.
func (inc *Incremental) WindowLen() int { return inc.capacity }

// Len returns the number of live samples (== WindowLen once full).
func (inc *Incremental) Len() int { return inc.count }

// Total returns how many samples have ever been pushed.
func (inc *Incremental) Total() int { return inc.start + inc.count }

func (inc *Incremental) val(id int) float64 { return inc.values[id%inc.capacity] }

// Push appends one sample, evicting the oldest first when the window is
// full, and updates the maintained graphs. Non-finite samples are rejected
// with ErrNonFinite and leave the window untouched.
func (inc *Incremental) Push(x float64) error {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return fmt.Errorf("%w: %v", ErrNonFinite, x)
	}
	if inc.count == inc.capacity {
		inc.evict()
	}
	id := inc.start + inc.count
	maintain := inc.vg != nil || inc.hvg != nil

	if inc.vg != nil && inc.count > 0 {
		// Backward max-slope scan. M is the window maximum, the value of
		// the stack bottom (the earliest right-visible record).
		maxSlope := math.Inf(-1)
		m := inc.val(inc.stack[inc.bot])
		nbrs := inc.nbrs[:0]
		for k := id - 1; k >= inc.start; k-- {
			slope := (inc.val(k) - x) / float64(id-k)
			if slope > maxSlope {
				nbrs = append(nbrs, k)
				maxSlope = slope
			}
			// Every remaining bar sits at distance ≥ id-k+1 and at height
			// ≤ m, so its slope is at most (m-x)/(id-k+1) ≤
			// maxSlope·(id-k+1)/(id-k+1): nothing left can be visible.
			if maxSlope >= 0 && maxSlope*float64(id-k+1) >= m-x {
				break
			}
		}
		inc.nbrs = nbrs
		reverse(nbrs) // collected descending; RingGraph wants ascending
		inc.vg.Append(nbrs)
	} else if inc.vg != nil {
		inc.vg.Append(nil)
	}

	if maintain {
		// HVG links and stack update: pop strictly smaller bars (each an
		// edge), link to the first bar at least as tall, pop it when equal
		// (equal heights block further visibility), push the new bar.
		nbrs := inc.nbrs[:0]
		for len(inc.stack) > inc.bot && inc.val(inc.stack[len(inc.stack)-1]) < x {
			nbrs = append(nbrs, inc.stack[len(inc.stack)-1])
			inc.stack = inc.stack[:len(inc.stack)-1]
		}
		if len(inc.stack) > inc.bot {
			top := inc.stack[len(inc.stack)-1]
			nbrs = append(nbrs, top)
			if inc.val(top) == x {
				inc.stack = inc.stack[:len(inc.stack)-1]
			}
		}
		inc.nbrs = nbrs
		if inc.hvg != nil {
			reverse(nbrs)
			inc.hvg.Append(nbrs)
		}
		inc.stack = append(inc.stack, id)
	}

	inc.values[id%inc.capacity] = x
	inc.count++
	return nil
}

// evict drops the oldest sample and its incident edges.
func (inc *Incremental) evict() {
	u := inc.start
	if inc.vg != nil {
		inc.vg.Evict()
	}
	if inc.hvg != nil {
		inc.hvg.Evict()
	}
	// The evictee is the earliest live index, so it can only be the stack
	// bottom: every other stack entry has later indices below it.
	if len(inc.stack) > inc.bot && inc.stack[inc.bot] == u {
		inc.bot++
		if inc.bot >= inc.capacity {
			// Compact the dead prefix; costs O(window) every ≥window
			// evictions, amortized O(1).
			inc.stack = inc.stack[:copy(inc.stack, inc.stack[inc.bot:])]
			inc.bot = 0
		}
	}
	inc.start++
	inc.count--
}

// WindowInto materializes the live window in time order into dst (grown as
// needed) and returns it.
func (inc *Incremental) WindowInto(dst []float64) []float64 {
	if cap(dst) < inc.count {
		dst = make([]float64, inc.count)
	}
	dst = dst[:inc.count]
	for k := 0; k < inc.count; k++ {
		dst[k] = inc.val(inc.start + k)
	}
	return dst
}

// SnapshotVG materializes the window's natural visibility graph into g
// (vertices renumbered to 0..Len-1 in window order). It panics when the
// Incremental was built without VG maintenance.
func (inc *Incremental) SnapshotVG(g *graph.Graph) { inc.vg.ToCSR(g) }

// SnapshotHVG materializes the window's horizontal visibility graph into g.
// It panics when the Incremental was built without HVG maintenance.
func (inc *Incremental) SnapshotHVG(g *graph.Graph) { inc.hvg.ToCSR(g) }

func reverse(s []int) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}
