package graph

import (
	"math/rand"
	"sort"
	"testing"
)

// refAdjacency is the pre-CSR slice-of-slices substrate kept as the
// differential-test reference: per-vertex adjacency slices appended
// edge-by-edge and sorted afterwards, exactly what the old graph.Graph did.
type refAdjacency struct {
	adj [][]int32
	m   int
}

func newRef(n int, edges [][2]int) *refAdjacency {
	r := &refAdjacency{adj: make([][]int32, n)}
	for _, e := range edges {
		r.adj[e[0]] = append(r.adj[e[0]], int32(e[1]))
		r.adj[e[1]] = append(r.adj[e[1]], int32(e[0]))
		r.m++
	}
	for v := range r.adj {
		sort.Slice(r.adj[v], func(i, j int) bool { return r.adj[v][i] < r.adj[v][j] })
	}
	return r
}

// randomEdgeList returns a duplicate-free edge list on n vertices.
func randomEdgeList(n int, p float64, rng *rand.Rand) [][2]int {
	var edges [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				edges = append(edges, [2]int{i, j})
			}
		}
	}
	// Shuffle and randomly flip orientations: the CSR build must not
	// depend on edge order or endpoint order.
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	for i := range edges {
		if rng.Intn(2) == 0 {
			edges[i][0], edges[i][1] = edges[i][1], edges[i][0]
		}
	}
	return edges
}

// TestCSRAgainstSliceReference pins the counting-sort CSR build against the
// old slice-backed adjacency on random edge lists: identical sorted rows,
// degrees, forward splits and edge sets.
func TestCSRAgainstSliceReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		n := 1 + rng.Intn(40)
		edges := randomEdgeList(n, rng.Float64(), rng)
		g := FromEdgesUnchecked(n, edges)
		ref := newRef(n, edges)

		if g.N() != n || g.M() != ref.m {
			t.Fatalf("iter %d: N/M = %d/%d, want %d/%d", iter, g.N(), g.M(), n, ref.m)
		}
		offs, nbrs := g.CSR()
		fwd := g.Forward()
		if len(offs) != n+1 || int(offs[n]) != len(nbrs) || len(nbrs) != 2*ref.m {
			t.Fatalf("iter %d: CSR shape offsets=%d neighbors=%d m=%d", iter, len(offs), len(nbrs), ref.m)
		}
		for v := 0; v < n; v++ {
			row := g.Neighbors(v)
			want := ref.adj[v]
			if len(row) != len(want) {
				t.Fatalf("iter %d: degree(%d) = %d, want %d", iter, v, len(row), len(want))
			}
			for i := range row {
				if row[i] != want[i] {
					t.Fatalf("iter %d: row %d = %v, want %v", iter, v, row, want)
				}
			}
			// Forward split: everything before is < v, everything after > v.
			for p := offs[v]; p < offs[v+1]; p++ {
				if before := p < fwd[v]; before != (nbrs[p] < int32(v)) {
					t.Fatalf("iter %d: forward split of %d misplaced entry %d (fwd=%d)",
						iter, v, nbrs[p], fwd[v]-offs[v])
				}
			}
		}
		// Incremental AddEdge path must agree with the bulk build.
		inc := New(n)
		for _, e := range edges {
			if err := inc.AddEdge(e[0], e[1]); err != nil {
				t.Fatalf("iter %d: AddEdge(%v): %v", iter, e, err)
			}
		}
		for v := 0; v < n; v++ {
			a, b := inc.Neighbors(v), g.Neighbors(v)
			if len(a) != len(b) {
				t.Fatalf("iter %d: incremental degree(%d) mismatch", iter, v)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("iter %d: incremental row %d = %v, bulk %v", iter, v, a, b)
				}
			}
		}
	}
}

// TestCSRScratchReuse pins that rebuilding a graph in place over shrinking
// and growing vertex counts never leaks rows from a previous build.
func TestCSRScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var g Graph
	for iter := 0; iter < 100; iter++ {
		n := 1 + rng.Intn(60)
		edges := randomEdgeList(n, 0.3, rng)
		g.BuildUnchecked(n, edges)
		ref := newRef(n, edges)
		if g.N() != n || g.M() != ref.m {
			t.Fatalf("iter %d: N/M mismatch after reuse", iter)
		}
		for v := 0; v < n; v++ {
			row := g.Neighbors(v)
			want := ref.adj[v]
			if len(row) != len(want) {
				t.Fatalf("iter %d: reused degree(%d) = %d, want %d", iter, v, len(row), len(want))
			}
			for i := range row {
				if row[i] != want[i] {
					t.Fatalf("iter %d: reused row %d = %v, want %v", iter, v, row, want)
				}
			}
		}
	}
	// Reset to edgeless must clear rows without reallocating behavior.
	g.Reset(5)
	if g.M() != 0 || g.N() != 5 {
		t.Fatal("Reset did not clear the graph")
	}
	for v := 0; v < 5; v++ {
		if len(g.Neighbors(v)) != 0 {
			t.Fatalf("Reset left neighbors at %d", v)
		}
	}
}
