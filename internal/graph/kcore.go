package graph

import "mvg/internal/buf"

// CoreScratch holds the reusable work arrays of the per-graph statistics
// that need O(n) state — core decomposition and the degree-distribution
// entropy — so hot loops can process one graph after another without
// reallocating. The zero value is ready for use.
type CoreScratch struct {
	core, deg, bin, start, vert, pos, fill []int
}

// CoreNumbers computes the core number of every vertex with the
// Batagelj–Zaversnik bucket algorithm, which runs in O(|V| + |E|) time.
// The core number of v is the largest k such that v belongs to the k-core
// (the maximal subgraph in which every vertex has degree >= k, equation 3
// of the paper).
func (g *Graph) CoreNumbers() []int {
	return g.CoreNumbersScratch(&CoreScratch{})
}

// CoreNumbersScratch is CoreNumbers computed in s's reusable buffers. The
// returned slice aliases s and is valid until the next call with the same
// scratch.
func (g *Graph) CoreNumbersScratch(s *CoreScratch) []int {
	g.ensureBuilt()
	n := g.N()
	// No zero-fill needed: the peel loop assigns core[v] for every vertex.
	s.core = buf.Grow(s.core, n)
	core := s.core
	if n == 0 {
		return core
	}
	s.deg = g.DegreesInto(s.deg)
	deg := s.deg
	maxDeg := 0
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	// Bucket sort vertices by degree.
	s.bin = buf.GrowZero(s.bin, maxDeg+2)
	bin := s.bin // bin[d] = start index of degree-d block in vert
	for _, d := range deg {
		bin[d+1]++
	}
	for d := 1; d <= maxDeg+1; d++ {
		bin[d] += bin[d-1]
	}
	s.start = buf.Grow(s.start, maxDeg+1)
	start := s.start
	copy(start, bin[:maxDeg+1])
	s.vert = buf.Grow(s.vert, n)
	s.pos = buf.Grow(s.pos, n)
	vert := s.vert // vertices ordered by current degree
	pos := s.pos   // position of each vertex in vert
	s.fill = buf.Grow(s.fill, maxDeg+1)
	fill := s.fill
	copy(fill, start)
	for v := 0; v < n; v++ {
		pos[v] = fill[deg[v]]
		vert[pos[v]] = v
		fill[deg[v]]++
	}
	// Peel vertices in nondecreasing degree order.
	offs, nbrs := g.offsets, g.neighbors
	for i := 0; i < n; i++ {
		v := vert[i]
		core[v] = deg[v]
		for _, wi := range nbrs[offs[v]:offs[v+1]] {
			w := int(wi)
			if deg[w] > deg[v] {
				dw := deg[w]
				pw := pos[w]
				ps := start[dw]
				u := vert[ps]
				if u != w {
					// Swap w with the first vertex of its degree block.
					vert[ps], vert[pw] = w, u
					pos[w], pos[u] = ps, pw
				}
				start[dw]++
				deg[w]--
			}
		}
	}
	return core
}

// Degeneracy returns the maximum core number over all vertices — the K of
// equation 3 in the paper ("K-core" feature). It is 0 for edgeless graphs.
func (g *Graph) Degeneracy() int {
	return g.DegeneracyScratch(&CoreScratch{})
}

// DegeneracyScratch is Degeneracy computed in s's reusable buffers.
func (g *Graph) DegeneracyScratch(s *CoreScratch) int {
	maxCore := 0
	for _, c := range g.CoreNumbersScratch(s) {
		if c > maxCore {
			maxCore = c
		}
	}
	return maxCore
}

// KCore returns the vertex set of the k-core: every vertex whose core
// number is at least k.
func (g *Graph) KCore(k int) []int {
	var out []int
	for v, c := range g.CoreNumbers() {
		if c >= k {
			out = append(out, v)
		}
	}
	return out
}
