package graph

// CoreNumbers computes the core number of every vertex with the
// Batagelj–Zaversnik bucket algorithm, which runs in O(|V| + |E|) time.
// The core number of v is the largest k such that v belongs to the k-core
// (the maximal subgraph in which every vertex has degree >= k, equation 3
// of the paper).
func (g *Graph) CoreNumbers() []int {
	n := g.N()
	core := make([]int, n)
	if n == 0 {
		return core
	}
	deg := g.Degrees()
	maxDeg := 0
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	// Bucket sort vertices by degree.
	bin := make([]int, maxDeg+2) // bin[d] = start index of degree-d block in vert
	for _, d := range deg {
		bin[d+1]++
	}
	for d := 1; d <= maxDeg+1; d++ {
		bin[d] += bin[d-1]
	}
	start := make([]int, maxDeg+1)
	copy(start, bin[:maxDeg+1])
	vert := make([]int, n) // vertices ordered by current degree
	pos := make([]int, n)  // position of each vertex in vert
	fill := make([]int, maxDeg+1)
	copy(fill, start)
	for v := 0; v < n; v++ {
		pos[v] = fill[deg[v]]
		vert[pos[v]] = v
		fill[deg[v]]++
	}
	// Peel vertices in nondecreasing degree order.
	for i := 0; i < n; i++ {
		v := vert[i]
		core[v] = deg[v]
		for _, wi := range g.adj[v] {
			w := int(wi)
			if deg[w] > deg[v] {
				dw := deg[w]
				pw := pos[w]
				ps := start[dw]
				u := vert[ps]
				if u != w {
					// Swap w with the first vertex of its degree block.
					vert[ps], vert[pw] = w, u
					pos[w], pos[u] = ps, pw
				}
				start[dw]++
				deg[w]--
			}
		}
	}
	return core
}

// Degeneracy returns the maximum core number over all vertices — the K of
// equation 3 in the paper ("K-core" feature). It is 0 for edgeless graphs.
func (g *Graph) Degeneracy() int {
	maxCore := 0
	for _, c := range g.CoreNumbers() {
		if c > maxCore {
			maxCore = c
		}
	}
	return maxCore
}

// KCore returns the vertex set of the k-core: every vertex whose core
// number is at least k.
func (g *Graph) KCore(k int) []int {
	var out []int
	for v, c := range g.CoreNumbers() {
		if c >= k {
			out = append(out, v)
		}
	}
	return out
}
