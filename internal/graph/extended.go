package graph

import (
	"math"

	"mvg/internal/buf"
)

// The features in this file go beyond the paper's evaluated set; its
// conclusion (§6) names degree-distribution entropy and further structural
// metrics as future work for improving MVG accuracy. They are exposed to
// the pipeline behind the Extended feature option.

// DegreeEntropy returns the Shannon entropy (in bits) of the degree
// distribution — a scale-free-ness indicator the VG literature associates
// with fractality. O(|V|) time.
//
// Counts are accumulated in a degree-indexed array and summed in ascending
// degree order, so the floating-point result is bit-for-bit reproducible
// (a map here would randomize summation order and flip the last ulp
// between runs, breaking the pipeline's determinism guarantee).
func (g *Graph) DegreeEntropy() float64 {
	return g.DegreeEntropyScratch(&CoreScratch{})
}

// DegreeEntropyScratch is DegreeEntropy computed in s's reusable buffers
// (the degree histogram reuses the same storage as the core-decomposition
// bucket array, so one CoreScratch serves both per-graph statistics).
func (g *Graph) DegreeEntropyScratch(s *CoreScratch) float64 {
	n := g.N()
	if n == 0 {
		return 0
	}
	g.ensureBuilt()
	maxDeg := 0
	for v := 0; v < n; v++ {
		if d := int(g.offsets[v+1] - g.offsets[v]); d > maxDeg {
			maxDeg = d
		}
	}
	s.bin = buf.GrowZero(s.bin, maxDeg+1)
	counts := s.bin
	for v := 0; v < n; v++ {
		counts[g.offsets[v+1]-g.offsets[v]]++
	}
	h := 0.0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(n)
		h -= p * math.Log2(p)
	}
	return h
}

// Transitivity returns the global clustering coefficient
// 3·triangles / wedges (0 when the graph has no wedges). It measures how
// often visibility neighbourhoods close into triangles, complementing the
// motif probability distribution with a single scale-free summary.
// O(Σ_v d_v · d̄) time via merge-scan intersection of contiguous CSR rows,
// visiting each edge once through the forward ranges.
func (g *Graph) Transitivity() float64 {
	g.ensureBuilt()
	offs, nbrs := g.offsets, g.neighbors
	fwd := g.forward
	var wedges, triangles3 int64 // triangles3 = 3 × #triangles = Σ_e tri_e
	for u := 0; u < g.N(); u++ {
		ru := nbrs[offs[u]:offs[u+1]]
		du := int64(len(ru))
		wedges += du * (du - 1) / 2
		for p := fwd[u]; p < offs[u+1]; p++ {
			v := nbrs[p]
			triangles3 += int64(sortedIntersectionSize(ru, nbrs[offs[v]:offs[v+1]]))
		}
	}
	if wedges == 0 {
		return 0
	}
	return float64(triangles3) / float64(wedges)
}

func sortedIntersectionSize(a, b []int32) int {
	i, j, c := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}
