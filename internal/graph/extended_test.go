package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDegreeEntropyKnown(t *testing.T) {
	// Regular graphs have zero degree entropy.
	if h := complete(5).DegreeEntropy(); h != 0 {
		t.Errorf("K5 degree entropy = %v, want 0", h)
	}
	if h := New(4).DegreeEntropy(); h != 0 {
		t.Errorf("edgeless entropy = %v, want 0", h)
	}
	if h := New(0).DegreeEntropy(); h != 0 {
		t.Errorf("empty graph entropy = %v", h)
	}
	// Path on 4 vertices: degrees 1,2,2,1 → two equiprobable values → 1 bit.
	if h := path(4).DegreeEntropy(); !almost(h, 1) {
		t.Errorf("P4 degree entropy = %v, want 1", h)
	}
	// Star on 5: degrees {4:1, 1:4} → H = -(0.2 log 0.2 + 0.8 log 0.8).
	g := New(5)
	for i := 1; i < 5; i++ {
		_ = g.AddEdge(0, i)
	}
	want := -(0.2*math.Log2(0.2) + 0.8*math.Log2(0.8))
	if h := g.DegreeEntropy(); !almost(h, want) {
		t.Errorf("star entropy = %v, want %v", h, want)
	}
}

func TestTransitivityKnown(t *testing.T) {
	if tr := complete(5).Transitivity(); !almost(tr, 1) {
		t.Errorf("K5 transitivity = %v, want 1", tr)
	}
	if tr := path(5).Transitivity(); tr != 0 {
		t.Errorf("path transitivity = %v, want 0", tr)
	}
	if tr := New(3).Transitivity(); tr != 0 {
		t.Errorf("edgeless transitivity = %v, want 0", tr)
	}
	// Paw: triangle a,b,c + pendant d on a.
	// Triangles = 1 (×3 = 3); wedges: deg 3,2,2,1 → 3+1+1+0 = 5.
	g := New(4)
	_ = g.AddEdge(0, 1)
	_ = g.AddEdge(1, 2)
	_ = g.AddEdge(0, 2)
	_ = g.AddEdge(0, 3)
	if tr := g.Transitivity(); !almost(tr, 3.0/5) {
		t.Errorf("paw transitivity = %v, want 0.6", tr)
	}
}

func TestTransitivityBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(25, rng.Float64(), rng)
		tr := g.Transitivity()
		return tr >= 0 && tr <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTransitivityMatchesMotifRatio(t *testing.T) {
	// Transitivity must equal 3·M31 / (3·M31 + M32) — a cross-check
	// against the independent motif-count path.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(20, 0.3, rng)
		// Count triangles and induced wedges directly.
		var tri, wedge int
		for i := 0; i < g.N(); i++ {
			for j := i + 1; j < g.N(); j++ {
				for k := j + 1; k < g.N(); k++ {
					e := 0
					if g.HasEdge(i, j) {
						e++
					}
					if g.HasEdge(i, k) {
						e++
					}
					if g.HasEdge(j, k) {
						e++
					}
					switch e {
					case 3:
						tri++
					case 2:
						wedge++
					}
				}
			}
		}
		want := 0.0
		if 3*tri+wedge > 0 {
			want = float64(3*tri) / float64(3*tri+wedge)
		}
		return math.Abs(g.Transitivity()-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
