package graph

import "math"

// Assortativity returns the degree assortativity coefficient — the Pearson
// correlation of remaining degrees across edges (Newman 2003, equation 4 of
// the paper). It runs in O(|E|) time.
//
// The second return value reports whether the coefficient is defined: it is
// false when the graph has no edges or when all edge-endpoint degrees are
// equal (zero variance), in which case the coefficient is conventionally 0.
func (g *Graph) Assortativity() (float64, bool) {
	m := float64(g.m)
	if g.m == 0 {
		return 0, false
	}
	// Accumulate over each edge in both directions (the standard symmetric
	// formulation): r = [M^-1 Σ j_i k_i - (M^-1 Σ (j_i+k_i)/2)^2] /
	//                   [M^-1 Σ (j_i^2+k_i^2)/2 - (M^-1 Σ (j_i+k_i)/2)^2]
	g.ensureBuilt()
	offs, nbrs := g.offsets, g.neighbors
	var sumJK, sumHalf, sumHalfSq float64
	for u := 0; u < g.N(); u++ {
		row := nbrs[offs[u]:offs[u+1]]
		du := float64(len(row))
		for _, vi := range row {
			v := int(vi)
			if v <= u {
				continue
			}
			dv := float64(offs[v+1] - offs[v])
			sumJK += du * dv
			sumHalf += (du + dv) / 2
			sumHalfSq += (du*du + dv*dv) / 2
		}
	}
	mean := sumHalf / m
	num := sumJK/m - mean*mean
	den := sumHalfSq/m - mean*mean
	if den <= 0 || math.IsNaN(den) {
		return 0, false
	}
	return num / den, true
}
