// Package graph provides the undirected-graph substrate used by the MVG
// pipeline: a compact adjacency representation plus the statistical graph
// features the paper extracts — density, degree statistics, k-core number
// (degeneracy) via the Batagelj–Zaversnik O(m) algorithm, and the degree
// assortativity coefficient (Newman's r).
package graph

import (
	"errors"
	"fmt"
	"slices"
	"sort"

	"mvg/internal/buf"
)

// Graph is a simple undirected graph on vertices 0..N-1 with sorted
// adjacency lists and no self-loops or parallel edges.
type Graph struct {
	adj    [][]int32
	m      int  // number of edges
	sorted bool // adjacency lists sorted (maintained by Build/AddEdge+Finalize)
}

// ErrVertexRange is returned when an edge endpoint is out of range.
var ErrVertexRange = errors.New("graph: vertex out of range")

// New returns an empty graph with n vertices.
func New(n int) *Graph {
	if n < 0 {
		n = 0
	}
	return &Graph{adj: make([][]int32, n), sorted: true}
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors returns the sorted adjacency list of v. The returned slice is
// owned by the graph and must not be modified.
func (g *Graph) Neighbors(v int) []int32 {
	g.ensureSorted()
	return g.adj[v]
}

// AddEdge inserts the undirected edge (u,v). Self-loops and duplicate edges
// are rejected with an error. Adjacency order is restored lazily.
func (g *Graph) AddEdge(u, v int) error {
	n := len(g.adj)
	if u < 0 || u >= n || v < 0 || v >= n {
		return fmt.Errorf("%w: (%d,%d) with n=%d", ErrVertexRange, u, v, n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at %d", u)
	}
	if g.HasEdge(u, v) {
		return fmt.Errorf("graph: duplicate edge (%d,%d)", u, v)
	}
	g.adj[u] = append(g.adj[u], int32(v))
	g.adj[v] = append(g.adj[v], int32(u))
	g.m++
	g.sorted = false
	return nil
}

// addEdgeUnchecked appends an edge assuming the caller guarantees validity
// and uniqueness; used by bulk constructors.
func (g *Graph) addEdgeUnchecked(u, v int) {
	g.adj[u] = append(g.adj[u], int32(v))
	g.adj[v] = append(g.adj[v], int32(u))
	g.m++
	g.sorted = false
}

// FromEdges builds a graph on n vertices from an edge list. Duplicate edges
// and self-loops are rejected.
func FromEdges(n int, edges [][2]int) (*Graph, error) {
	g := New(n)
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	g.ensureSorted()
	return g, nil
}

// FromEdgesUnchecked builds a graph from a known-valid, duplicate-free edge
// list (as produced by the visibility-graph constructors) without the
// per-edge membership checks of FromEdges.
func FromEdgesUnchecked(n int, edges [][2]int) *Graph {
	g := New(n)
	g.BuildUnchecked(n, edges)
	return g
}

// Reset reinitializes g in place to an edgeless graph on n vertices,
// retaining previously allocated adjacency storage so that rebuilding a
// graph of similar size performs no allocations. The zero Graph value is
// ready for Reset.
func (g *Graph) Reset(n int) {
	if n < 0 {
		n = 0
	}
	if cap(g.adj) >= n {
		g.adj = g.adj[:n]
	} else {
		g.adj = append(g.adj[:cap(g.adj)], make([][]int32, n-cap(g.adj))...)
	}
	for v := range g.adj {
		g.adj[v] = g.adj[v][:0]
	}
	g.m = 0
	g.sorted = true
}

// BuildUnchecked resets g to n vertices and bulk-loads a known-valid,
// duplicate-free edge list, reusing g's backing storage. It is the in-place
// counterpart of FromEdgesUnchecked, used by hot loops (core.Scratch) that
// build one visibility graph per scale and discard it immediately.
func (g *Graph) BuildUnchecked(n int, edges [][2]int) {
	g.Reset(n)
	for _, e := range edges {
		g.addEdgeUnchecked(e[0], e[1])
	}
	g.ensureSorted()
}

func (g *Graph) ensureSorted() {
	if g.sorted {
		return
	}
	for _, nbrs := range g.adj {
		slices.Sort(nbrs)
	}
	g.sorted = true
}

// HasEdge reports whether the undirected edge (u,v) exists.
func (g *Graph) HasEdge(u, v int) bool {
	n := len(g.adj)
	if u < 0 || u >= n || v < 0 || v >= n || u == v {
		return false
	}
	// Search the shorter list.
	a := g.adj[u]
	if len(g.adj[v]) < len(a) {
		a = g.adj[v]
		v = u
	}
	if g.sorted {
		i := sort.Search(len(a), func(i int) bool { return a[i] >= int32(v) })
		return i < len(a) && a[i] == int32(v)
	}
	for _, w := range a {
		if w == int32(v) {
			return true
		}
	}
	return false
}

// Edges returns all edges as (u,v) pairs with u < v, in vertex order.
func (g *Graph) Edges() [][2]int {
	g.ensureSorted()
	out := make([][2]int, 0, g.m)
	for u, nbrs := range g.adj {
		for _, v := range nbrs {
			if int(v) > u {
				out = append(out, [2]int{u, int(v)})
			}
		}
	}
	return out
}

// Degrees returns the degree sequence.
func (g *Graph) Degrees() []int {
	return g.DegreesInto(nil)
}

// DegreesInto writes the degree sequence into dst, growing it as needed,
// and returns the filled slice. Passing a reused buffer avoids the
// allocation of Degrees.
func (g *Graph) DegreesInto(dst []int) []int {
	dst = buf.Grow(dst, len(g.adj))
	for v := range g.adj {
		dst[v] = len(g.adj[v])
	}
	return dst
}

// Density returns 2|E| / (|V| (|V|-1)) (equation 2 of the paper).
// Graphs with fewer than two vertices have density 0.
func (g *Graph) Density() float64 {
	n := float64(g.N())
	if g.N() < 2 {
		return 0
	}
	return 2 * float64(g.m) / (n * (n - 1))
}

// DegreeStats returns the maximum, minimum and mean vertex degree.
// All are 0 for the empty graph.
func (g *Graph) DegreeStats() (maxDeg, minDeg int, meanDeg float64) {
	n := g.N()
	if n == 0 {
		return 0, 0, 0
	}
	maxDeg = len(g.adj[0])
	minDeg = maxDeg
	total := 0
	for _, nbrs := range g.adj {
		d := len(nbrs)
		total += d
		if d > maxDeg {
			maxDeg = d
		}
		if d < minDeg {
			minDeg = d
		}
	}
	return maxDeg, minDeg, float64(total) / float64(n)
}

// IsConnected reports whether the graph is connected (the empty graph and
// single-vertex graph count as connected).
func (g *Graph) IsConnected() bool {
	n := g.N()
	if n <= 1 {
		return true
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.adj[v] {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, int(w))
			}
		}
	}
	return count == n
}
