// Package graph provides the undirected-graph substrate used by the MVG
// pipeline: a flat compressed-sparse-row (CSR) representation plus the
// statistical graph features the paper extracts — density, degree
// statistics, k-core number (degeneracy) via the Batagelj–Zaversnik O(m)
// algorithm, and the degree assortativity coefficient (Newman's r).
//
// # Memory layout
//
// A built graph is two flat arrays: offsets (length N+1) and neighbors
// (length 2M). The adjacency row of vertex v is the contiguous slice
// neighbors[offsets[v]:offsets[v+1]], always sorted ascending. The layout
// is produced from an edge stream by a two-pass counting scatter (degree
// count → prefix sum → destination-grouped scatter → source-row scatter)
// that emits every row already sorted, so no comparison sort ever runs —
// see docs/perf.md for the construction in detail. All per-feature walks
// (motif counting, core decomposition, transitivity, assortativity)
// traverse these contiguous rows, which is what keeps their constants low
// on the sparse graphs visibility transforms produce.
package graph

import (
	"errors"
	"fmt"
	"sort"

	"mvg/internal/buf"
)

// Graph is a simple undirected graph on vertices 0..N-1 with sorted
// adjacency rows stored in compressed-sparse-row form and no self-loops or
// parallel edges.
//
// The flat edge list (elist) is the construction-time source of truth;
// the CSR arrays are (re)built from it lazily after mutation. Bulk
// constructors (BuildUnchecked, FromEdges*) build eagerly, so the hot
// extraction path never takes the lazy branch. All backing arrays are
// retained across Reset/BuildUnchecked, so rebuilding a graph of similar
// size performs no allocations.
type Graph struct {
	n         int
	m         int     // number of edges
	offsets   []int32 // len n+1 when built; row v is neighbors[offsets[v]:offsets[v+1]]
	neighbors []int32 // len 2m when built; each row sorted ascending
	forward   []int32 // len n when built; index in neighbors of the first entry of row v that is > v

	elist []int32 // flat (u,v) edge pairs, len 2m
	dirty bool    // elist has edges not yet folded into the CSR arrays

	scatter []int32 // counting-sort work array: arc sources grouped by destination
	cursor  []int32 // counting-sort work array: per-vertex write cursors
}

// ErrVertexRange is returned when an edge endpoint is out of range.
var ErrVertexRange = errors.New("graph: vertex out of range")

// New returns an empty graph with n vertices.
func New(n int) *Graph {
	if n < 0 {
		n = 0
	}
	g := &Graph{}
	g.Reset(n)
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// ensureBuilt folds pending edges into the CSR arrays. Bulk-built graphs
// are always built; only the incremental AddEdge path goes lazy.
func (g *Graph) ensureBuilt() {
	if g.dirty {
		g.build()
	}
}

// row returns the sorted adjacency row of v. Internal consumers call it
// after ensureBuilt; the public accessor is Neighbors.
func (g *Graph) row(v int) []int32 {
	return g.neighbors[g.offsets[v]:g.offsets[v+1]]
}

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int {
	g.ensureBuilt()
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the sorted adjacency row of v. The returned slice is a
// view into the graph's flat neighbor array and must not be modified; it is
// valid until the graph is next mutated or rebuilt.
func (g *Graph) Neighbors(v int) []int32 {
	g.ensureBuilt()
	return g.row(v)
}

// AddEdge inserts the undirected edge (u,v). Self-loops and duplicate edges
// are rejected with an error. The CSR arrays are rebuilt lazily on the next
// read; incremental insertion is intended for small test graphs, while bulk
// construction goes through BuildUnchecked/FromEdges.
func (g *Graph) AddEdge(u, v int) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("%w: (%d,%d) with n=%d", ErrVertexRange, u, v, g.n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at %d", u)
	}
	u32, v32 := int32(u), int32(v)
	for i := 0; i < len(g.elist); i += 2 {
		a, b := g.elist[i], g.elist[i+1]
		if (a == u32 && b == v32) || (a == v32 && b == u32) {
			return fmt.Errorf("graph: duplicate edge (%d,%d)", u, v)
		}
	}
	g.elist = append(g.elist, u32, v32)
	g.m++
	g.dirty = true
	return nil
}

// FromEdges builds a graph on n vertices from an edge list. Duplicate edges
// and self-loops are rejected.
func FromEdges(n int, edges [][2]int) (*Graph, error) {
	g := New(n)
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	g.ensureBuilt()
	return g, nil
}

// FromEdgesUnchecked builds a graph from a known-valid, duplicate-free edge
// list (as produced by the visibility-graph constructors) without the
// per-edge membership checks of FromEdges.
func FromEdgesUnchecked(n int, edges [][2]int) *Graph {
	g := &Graph{}
	g.BuildUnchecked(n, edges)
	return g
}

// Reset reinitializes g in place to an edgeless graph on n vertices,
// retaining previously allocated storage so that rebuilding a graph of
// similar size performs no allocations. The zero Graph value is ready for
// Reset.
func (g *Graph) Reset(n int) {
	if n < 0 {
		n = 0
	}
	g.n = n
	g.m = 0
	g.elist = g.elist[:0]
	g.offsets = buf.GrowZero(g.offsets, n+1)
	g.forward = buf.GrowZero(g.forward, n)
	g.neighbors = g.neighbors[:0]
	g.dirty = false
}

// BuildUnchecked resets g to n vertices and bulk-loads a known-valid,
// duplicate-free edge list, reusing g's backing storage. It is the in-place
// counterpart of FromEdgesUnchecked, used by hot loops (core.Scratch) that
// build one visibility graph per scale and discard it immediately. The edge
// stream is consumed directly by the counting-sort CSR build; edges may
// alias a reusable builder buffer (it is copied, not retained).
func (g *Graph) BuildUnchecked(n int, edges [][2]int) {
	if n < 0 {
		n = 0
	}
	g.n = n
	g.m = len(edges)
	el := buf.Grow(g.elist, 2*len(edges))
	for i, e := range edges {
		el[2*i] = int32(e[0])
		el[2*i+1] = int32(e[1])
	}
	g.elist = el
	g.build()
}

// build constructs the CSR arrays from the flat edge list with a counting
// sort that leaves every row sorted, in O(n + m) with no comparisons:
//
//  1. count degrees into offsets and prefix-sum them,
//  2. scatter arc *sources* into buckets grouped by arc *destination*
//     (bucket boundaries are the same offsets array — for undirected arcs
//     the in-degree equals the degree),
//  3. walk destinations in ascending order, appending each destination to
//     its sources' rows; since destinations ascend and each row cursor only
//     moves forward, every row comes out sorted.
func (g *Graph) build() {
	n, arcs := g.n, 2*g.m
	g.offsets = buf.GrowZero(g.offsets, n+1)
	g.forward = buf.GrowZero(g.forward, n)
	offsets, forward := g.offsets, g.forward
	el := g.elist
	for i := 0; i < len(el); i += 2 {
		u, v := el[i], el[i+1]
		offsets[u+1]++
		offsets[v+1]++
		// Count forward degrees (neighbors greater than the vertex): the
		// smaller endpoint of each edge gains one forward neighbor.
		if u < v {
			forward[u]++
		} else {
			forward[v]++
		}
	}
	for v := 0; v < n; v++ {
		offsets[v+1] += offsets[v]
	}
	// Forward count → absolute index of the first forward entry of each row.
	for v := 0; v < n; v++ {
		forward[v] = offsets[v+1] - forward[v]
	}
	g.scatter = buf.Grow(g.scatter, arcs)
	g.cursor = buf.Grow(g.cursor, n)
	scatter, cursor := g.scatter, g.cursor
	copy(cursor, offsets[:n])
	for i := 0; i < len(el); i += 2 {
		u, v := el[i], el[i+1]
		scatter[cursor[v]] = u
		cursor[v]++
		scatter[cursor[u]] = v
		cursor[u]++
	}
	g.neighbors = buf.Grow(g.neighbors, arcs)
	neighbors := g.neighbors
	copy(cursor, offsets[:n])
	for d := 0; d < n; d++ {
		d32 := int32(d)
		for p := offsets[d]; p < offsets[d+1]; p++ {
			s := scatter[p]
			neighbors[cursor[s]] = d32
			cursor[s]++
		}
	}
	g.dirty = false
}

// CSR returns the graph's flat compressed-sparse-row arrays: offsets has
// length N()+1 and neighbors concatenates the sorted adjacency rows (length
// 2·M()), with row v at neighbors[offsets[v]:offsets[v+1]]. Feature kernels
// (motif counting, core decomposition) hoist these once and index directly,
// avoiding a method call and dirty-check per inner-loop row access. The
// returned slices are owned by the graph, must not be modified, and are
// valid until the graph is next mutated or rebuilt.
func (g *Graph) CSR() (offsets, neighbors []int32) {
	g.ensureBuilt()
	return g.offsets, g.neighbors
}

// Forward returns the per-vertex forward-split array: forward[v] is the
// index in the CSR neighbor array of the first entry of row v greater than
// v, so neighbors[forward[v]:offsets[v+1]] lists v's higher-numbered
// neighbors and neighbors[offsets[v]:forward[v]] its lower-numbered ones
// (each edge appears exactly once across all forward ranges). Kernels that
// enumerate each edge or triangle once iterate forward ranges instead of
// filtering full rows. Ownership and validity follow CSR.
func (g *Graph) Forward() []int32 {
	g.ensureBuilt()
	return g.forward
}

// HasEdge reports whether the undirected edge (u,v) exists.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n || u == v {
		return false
	}
	g.ensureBuilt()
	// Search the shorter row.
	a := g.row(u)
	if b := g.row(v); len(b) < len(a) {
		a = b
		v = u
	}
	i := sort.Search(len(a), func(i int) bool { return a[i] >= int32(v) })
	return i < len(a) && a[i] == int32(v)
}

// Edges returns all edges as (u,v) pairs with u < v, in vertex order.
func (g *Graph) Edges() [][2]int {
	g.ensureBuilt()
	out := make([][2]int, 0, g.m)
	for u := 0; u < g.n; u++ {
		for _, v := range g.row(u) {
			if int(v) > u {
				out = append(out, [2]int{u, int(v)})
			}
		}
	}
	return out
}

// Degrees returns the degree sequence.
func (g *Graph) Degrees() []int {
	return g.DegreesInto(nil)
}

// DegreesInto writes the degree sequence into dst, growing it as needed,
// and returns the filled slice. Passing a reused buffer avoids the
// allocation of Degrees.
func (g *Graph) DegreesInto(dst []int) []int {
	g.ensureBuilt()
	dst = buf.Grow(dst, g.n)
	for v := 0; v < g.n; v++ {
		dst[v] = int(g.offsets[v+1] - g.offsets[v])
	}
	return dst
}

// Density returns 2|E| / (|V| (|V|-1)) (equation 2 of the paper).
// Graphs with fewer than two vertices have density 0.
func (g *Graph) Density() float64 {
	n := float64(g.n)
	if g.n < 2 {
		return 0
	}
	return 2 * float64(g.m) / (n * (n - 1))
}

// DegreeStats returns the maximum, minimum and mean vertex degree.
// All are 0 for the empty graph.
func (g *Graph) DegreeStats() (maxDeg, minDeg int, meanDeg float64) {
	if g.n == 0 {
		return 0, 0, 0
	}
	g.ensureBuilt()
	maxDeg = int(g.offsets[1])
	minDeg = maxDeg
	for v := 1; v < g.n; v++ {
		d := int(g.offsets[v+1] - g.offsets[v])
		if d > maxDeg {
			maxDeg = d
		}
		if d < minDeg {
			minDeg = d
		}
	}
	return maxDeg, minDeg, 2 * float64(g.m) / float64(g.n)
}

// IsConnected reports whether the graph is connected (the empty graph and
// single-vertex graph count as connected).
func (g *Graph) IsConnected() bool {
	n := g.n
	if n <= 1 {
		return true
	}
	g.ensureBuilt()
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.row(v) {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, int(w))
			}
		}
	}
	return count == n
}
