package graph

import (
	"math/rand"
	"testing"
)

// refWindow is a naive sliding-window reference: it keeps the full edge
// list and rebuilds membership from scratch on every mutation.
type refWindow struct {
	start, count int
	edges        map[[2]int]bool
}

func newRefWindow() *refWindow { return &refWindow{edges: map[[2]int]bool{}} }

func (w *refWindow) append(neighbors []int) int {
	id := w.start + w.count
	for _, v := range neighbors {
		w.edges[[2]int{v, id}] = true
	}
	w.count++
	return id
}

func (w *refWindow) evict() {
	for e := range w.edges {
		if e[0] == w.start || e[1] == w.start {
			delete(w.edges, e)
		}
	}
	w.start++
	w.count--
}

func (w *refWindow) graph() *Graph {
	g := New(w.count)
	for e := range w.edges {
		if err := g.AddEdge(e[0]-w.start, e[1]-w.start); err != nil {
			panic(err)
		}
	}
	return g
}

func identicalCSR(t *testing.T, got, want *Graph) {
	t.Helper()
	if got.N() != want.N() || got.M() != want.M() {
		t.Fatalf("N/M = %d/%d, want %d/%d", got.N(), got.M(), want.N(), want.M())
	}
	for v := 0; v < got.N(); v++ {
		a, b := got.Neighbors(v), want.Neighbors(v)
		if len(a) != len(b) {
			t.Fatalf("degree(%d) = %d, want %d", v, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("row %d = %v, want %v", v, a, b)
			}
		}
	}
	offs, neighbors := got.CSR()
	fwd := got.Forward()
	for v := 0; v < got.N(); v++ {
		for p := offs[v]; p < offs[v+1]; p++ {
			if (p < fwd[v]) != (neighbors[p] < int32(v)) {
				t.Fatalf("forward split of vertex %d broken", v)
			}
		}
	}
}

// TestRingGraphAgainstReference drives a RingGraph and the naive reference
// through the same random slide sequence, comparing CSR snapshots.
func TestRingGraphAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const capacity = 16
	r := NewRingGraph(capacity)
	ref := newRefWindow()
	var snap Graph
	for step := 0; step < 4000; step++ {
		if r.count == capacity || (r.count > 0 && rng.Intn(4) == 0) {
			r.Evict()
			ref.evict()
		}
		// Random ascending subset of the live window as backward neighbors.
		var nbrs []int
		for id := r.Start(); id < r.Start()+r.Len(); id++ {
			if rng.Intn(3) == 0 {
				nbrs = append(nbrs, id)
			}
		}
		gotID := r.Append(nbrs)
		if wantID := ref.append(nbrs); gotID != wantID {
			t.Fatalf("step %d: Append id = %d, want %d", step, gotID, wantID)
		}
		if r.Len() != ref.count || r.Start() != ref.start {
			t.Fatalf("step %d: window [%d,+%d), want [%d,+%d)", step, r.Start(), r.Len(), ref.start, ref.count)
		}
		if step%17 == 0 {
			r.ToCSR(&snap)
			identicalCSR(t, &snap, ref.graph())
		}
	}
}

func TestRingGraphEmptyAndReset(t *testing.T) {
	r := NewRingGraph(4)
	var snap Graph
	r.ToCSR(&snap)
	if snap.N() != 0 || snap.M() != 0 {
		t.Fatalf("empty snapshot N/M = %d/%d", snap.N(), snap.M())
	}
	r.Evict() // no-op on empty
	r.Append(nil)
	r.Append([]int{0})
	if r.M() != 1 || r.Len() != 2 {
		t.Fatalf("M=%d Len=%d, want 1/2", r.M(), r.Len())
	}
	r.Reset(4)
	if r.M() != 0 || r.Len() != 0 || r.Start() != 0 {
		t.Fatalf("Reset left M=%d Len=%d Start=%d", r.M(), r.Len(), r.Start())
	}
	r.ToCSR(&snap)
	if snap.N() != 0 {
		t.Fatalf("post-Reset snapshot N = %d", snap.N())
	}
}

func TestRingGraphAppendFullPanics(t *testing.T) {
	r := NewRingGraph(2)
	r.Append(nil)
	r.Append([]int{0})
	defer func() {
		if recover() == nil {
			t.Fatal("Append on a full window did not panic")
		}
	}()
	r.Append(nil)
}

// TestRingGraphSnapshotAllocFree pins the steady-state contract: once the
// ring and snapshot buffers are warm, slides and snapshots allocate
// nothing.
func TestRingGraphSnapshotAllocFree(t *testing.T) {
	r := NewRingGraph(32)
	var snap Graph
	rng := rand.New(rand.NewSource(3))
	slide := func(n int) {
		for i := 0; i < n; i++ {
			if r.Len() == r.Capacity() {
				r.Evict()
			}
			nbrs := make([]int, 0, 4)
			for id := r.Start() + max(0, r.Len()-4); id < r.Start()+r.Len(); id++ {
				if rng.Intn(2) == 0 {
					nbrs = append(nbrs, id)
				}
			}
			r.Append(nbrs)
			r.ToCSR(&snap)
		}
	}
	slide(128) // warm every slot twice
	nbrs := make([]int, 1)
	allocs := testing.AllocsPerRun(64, func() {
		if r.Len() == r.Capacity() {
			r.Evict()
		}
		nbrs[0] = r.Start() + r.Len() - 1
		r.Append(nbrs)
		r.ToCSR(&snap)
	})
	if allocs > 0 {
		t.Fatalf("warm slide+snapshot allocates %.1f/op, want 0", allocs)
	}
}
