package graph

import "mvg/internal/buf"

// RingGraph is the sliding-window graph substrate behind mvg.Stream: an
// undirected graph whose vertices are a contiguous window of a monotone
// logical sequence (time steps). It supports exactly the two mutations a
// sliding window needs — Append a new rightmost vertex with edges to older
// vertices, and Evict the leftmost vertex with all its incident edges —
// each in O(degree), with all storage reused across window slides.
//
// Vertices are addressed by their logical id (the value of Append's
// counter when they were added); the live window is [Start, Start+Len).
// Internally each vertex's adjacency row lives in a ring slot (id modulo
// capacity), stored in ascending logical order. Two facts keep mutations
// O(degree) without any searching:
//
//   - Append only ever links the new vertex (the window maximum id), so an
//     older vertex's row is extended at its tail and stays sorted.
//   - Evict removes the smallest live id, which — rows being sorted and
//     already purged of earlier evictions — is the head entry of every row
//     that contains it, so removal is a per-row head advance.
//
// ToCSR materializes the window as an ordinary CSR Graph (vertices
// renumbered to 0..Len-1 in window order), so every existing feature
// kernel runs unchanged on the snapshot.
//
// A RingGraph must not be shared between goroutines. The zero value is not
// ready for use; construct with NewRingGraph or Reset.
type RingGraph struct {
	capacity int
	start    int // logical id of the oldest live vertex
	count    int // live vertices
	m        int // live edges

	rows  [][]int // slot → ascending logical neighbor ids (with a dead prefix)
	heads []int   // slot → index of the first live entry of rows[slot]

	elist [][2]int // reusable ToCSR edge-list scratch
}

// NewRingGraph returns an empty ring graph for windows of up to capacity
// vertices.
func NewRingGraph(capacity int) *RingGraph {
	r := &RingGraph{}
	r.Reset(capacity)
	return r
}

// Reset reinitializes r in place to an empty window of the given capacity,
// retaining row storage when the capacity is unchanged.
func (r *RingGraph) Reset(capacity int) {
	if capacity < 1 {
		capacity = 1
	}
	if capacity != r.capacity || r.rows == nil {
		r.rows = make([][]int, capacity)
		r.heads = make([]int, capacity)
	} else {
		for i := range r.rows {
			r.rows[i] = r.rows[i][:0]
			r.heads[i] = 0
		}
	}
	r.capacity = capacity
	r.start = 0
	r.count = 0
	r.m = 0
}

// Capacity returns the maximum number of live vertices.
func (r *RingGraph) Capacity() int { return r.capacity }

// Len returns the number of live vertices.
func (r *RingGraph) Len() int { return r.count }

// M returns the number of live edges.
func (r *RingGraph) M() int { return r.m }

// Start returns the logical id of the oldest live vertex; the next Append
// creates id Start()+Len().
func (r *RingGraph) Start() int { return r.start }

// Degree returns the degree of the live vertex with the given logical id.
func (r *RingGraph) Degree(id int) int {
	slot := id % r.capacity
	return len(r.rows[slot]) - r.heads[slot]
}

// Append adds the next vertex (logical id Start()+Len()) linked to the
// given older live vertices and returns its id. neighbors must be strictly
// ascending logical ids within the live window; the slice is copied, not
// retained. The window must not be full — callers evict first (mvg.Stream
// does; see internal/visibility.Incremental).
func (r *RingGraph) Append(neighbors []int) int {
	if r.count == r.capacity {
		panic("graph: RingGraph.Append on a full window (Evict first)")
	}
	id := r.start + r.count
	slot := id % r.capacity
	row := r.rows[slot][:0]
	r.heads[slot] = 0
	for _, v := range neighbors {
		row = append(row, v)
		vslot := v % r.capacity
		r.rows[vslot] = append(r.rows[vslot], id)
	}
	r.rows[slot] = row
	r.m += len(neighbors)
	r.count++
	return id
}

// Evict removes the oldest live vertex and its incident edges. It is a
// no-op on an empty window.
func (r *RingGraph) Evict() {
	if r.count == 0 {
		return
	}
	u := r.start
	uslot := u % r.capacity
	row := r.rows[uslot][r.heads[uslot]:]
	for _, v := range row {
		// u is v's smallest live neighbor: advance past it.
		r.heads[v%r.capacity]++
	}
	r.m -= len(row)
	r.rows[uslot] = r.rows[uslot][:0]
	r.heads[uslot] = 0
	r.start++
	r.count--
}

// ToCSR materializes the live window into g as a CSR graph with vertices
// renumbered to 0..Len()-1 in window order (logical id minus Start). The
// snapshot goes through the same counting-sort build as the batch
// visibility constructors, so a RingGraph holding the same edge set as a
// batch-built window produces a bit-identical CSR layout — the property
// mvg.Stream's determinism contract rests on. All of g's and r's storage
// is reused across snapshots.
func (r *RingGraph) ToCSR(g *Graph) {
	edges := buf.Grow(r.elist, r.m)[:0]
	for k := 0; k < r.count; k++ {
		id := r.start + k
		slot := id % r.capacity
		for _, v := range r.rows[slot][r.heads[slot]:] {
			// Each edge appears in both endpoint rows; emit it from the
			// higher endpoint so every edge is listed exactly once.
			if v < id {
				edges = append(edges, [2]int{v - r.start, k})
			}
		}
	}
	r.elist = edges
	g.BuildUnchecked(r.count, edges)
}
