package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// path builds a path graph 0-1-2-...-n-1.
func path(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		if err := g.AddEdge(i, i+1); err != nil {
			panic(err)
		}
	}
	return g
}

// complete builds K_n.
func complete(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if err := g.AddEdge(i, j); err != nil {
				panic(err)
			}
		}
	}
	return g
}

// randomGraph builds a G(n,p) graph.
func randomGraph(n int, p float64, rng *rand.Rand) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				_ = g.AddEdge(i, j)
			}
		}
	}
	return g
}

func TestAddEdgeValidation(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(0, 1); err == nil {
		t.Error("duplicate edge should fail")
	}
	if err := g.AddEdge(1, 0); err == nil {
		t.Error("reversed duplicate edge should fail")
	}
	if err := g.AddEdge(1, 1); err == nil {
		t.Error("self-loop should fail")
	}
	if err := g.AddEdge(0, 3); err == nil {
		t.Error("out-of-range vertex should fail")
	}
	if err := g.AddEdge(-1, 0); err == nil {
		t.Error("negative vertex should fail")
	}
	if g.M() != 1 {
		t.Errorf("M = %d, want 1", g.M())
	}
}

func TestHasEdgeAndNeighbors(t *testing.T) {
	g, err := FromEdges(4, [][2]int{{0, 2}, {0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 2) || !g.HasEdge(2, 0) {
		t.Error("edge (0,2) missing")
	}
	if g.HasEdge(1, 3) {
		t.Error("edge (1,3) should not exist")
	}
	if g.HasEdge(0, 0) || g.HasEdge(0, 9) {
		t.Error("degenerate HasEdge should be false")
	}
	nb := g.Neighbors(0)
	if len(nb) != 2 || nb[0] != 1 || nb[1] != 2 {
		t.Errorf("Neighbors(0) = %v, want [1 2] sorted", nb)
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	want := [][2]int{{0, 1}, {0, 3}, {1, 2}, {2, 3}}
	g, err := FromEdges(4, want)
	if err != nil {
		t.Fatal(err)
	}
	got := g.Edges()
	if len(got) != len(want) {
		t.Fatalf("Edges() len = %d, want %d", len(got), len(want))
	}
	seen := map[[2]int]bool{}
	for _, e := range got {
		seen[e] = true
	}
	for _, e := range want {
		if !seen[e] {
			t.Errorf("edge %v missing from Edges()", e)
		}
	}
}

func TestDensity(t *testing.T) {
	if d := complete(5).Density(); !almost(d, 1) {
		t.Errorf("K5 density = %v, want 1", d)
	}
	if d := New(5).Density(); d != 0 {
		t.Errorf("empty graph density = %v", d)
	}
	if d := New(1).Density(); d != 0 {
		t.Errorf("single vertex density = %v", d)
	}
	if d := path(5).Density(); !almost(d, 2.0*4/(5*4)) {
		t.Errorf("P5 density = %v", d)
	}
}

func TestDegreeStats(t *testing.T) {
	g := path(4) // degrees 1,2,2,1
	maxD, minD, mean := g.DegreeStats()
	if maxD != 2 || minD != 1 || !almost(mean, 1.5) {
		t.Errorf("DegreeStats = %d,%d,%v", maxD, minD, mean)
	}
	maxD, minD, mean = New(0).DegreeStats()
	if maxD != 0 || minD != 0 || mean != 0 {
		t.Error("empty graph degree stats should be zero")
	}
}

func TestIsConnected(t *testing.T) {
	if !path(6).IsConnected() {
		t.Error("path should be connected")
	}
	g := New(4)
	_ = g.AddEdge(0, 1)
	_ = g.AddEdge(2, 3)
	if g.IsConnected() {
		t.Error("two components should not be connected")
	}
	if !New(1).IsConnected() || !New(0).IsConnected() {
		t.Error("trivial graphs count as connected")
	}
}

func TestCoreNumbersKnown(t *testing.T) {
	// K4 plus a pendant: core numbers 3,3,3,3,1.
	g := complete(4)
	h := New(5)
	for _, e := range g.Edges() {
		_ = h.AddEdge(e[0], e[1])
	}
	_ = h.AddEdge(3, 4)
	cores := h.CoreNumbers()
	want := []int{3, 3, 3, 3, 1}
	for v, c := range cores {
		if c != want[v] {
			t.Errorf("core[%d] = %d, want %d", v, c, want[v])
		}
	}
	if h.Degeneracy() != 3 {
		t.Errorf("degeneracy = %d, want 3", h.Degeneracy())
	}
	k3 := h.KCore(3)
	if len(k3) != 4 {
		t.Errorf("3-core size = %d, want 4", len(k3))
	}
}

func TestCoreNumbersPathAndCycle(t *testing.T) {
	if d := path(10).Degeneracy(); d != 1 {
		t.Errorf("path degeneracy = %d, want 1", d)
	}
	// Cycle: every vertex has core number 2.
	g := path(6)
	_ = g.AddEdge(0, 5)
	for v, c := range g.CoreNumbers() {
		if c != 2 {
			t.Errorf("cycle core[%d] = %d, want 2", v, c)
		}
	}
	if New(3).Degeneracy() != 0 {
		t.Error("edgeless graph degeneracy should be 0")
	}
}

// coreBrute computes core numbers by iterative peeling (simple but slow).
func coreBrute(g *Graph) []int {
	n := g.N()
	deg := g.Degrees()
	removed := make([]bool, n)
	core := make([]int, n)
	for k := 0; ; k++ {
		// Remove everything with degree <= k repeatedly.
		changed := true
		any := false
		for v := 0; v < n; v++ {
			if !removed[v] {
				any = true
			}
		}
		if !any {
			break
		}
		for changed {
			changed = false
			for v := 0; v < n; v++ {
				if !removed[v] && deg[v] <= k {
					removed[v] = true
					core[v] = k
					changed = true
					for _, w := range g.Neighbors(v) {
						if !removed[w] {
							deg[w]--
						}
					}
				}
			}
		}
	}
	return core
}

func TestCoreNumbersAgainstBrute(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(20, 0.25, rng)
		got := g.CoreNumbers()
		want := coreBrute(g)
		for v := range got {
			if got[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestKCoreInvariant(t *testing.T) {
	// Every vertex of the k-core has >= k neighbours inside the k-core.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(30, 0.2, rng)
		k := g.Degeneracy()
		members := map[int]bool{}
		for _, v := range g.KCore(k) {
			members[v] = true
		}
		if len(members) == 0 && g.M() > 0 {
			return false
		}
		for v := range members {
			inside := 0
			for _, w := range g.Neighbors(v) {
				if members[int(w)] {
					inside++
				}
			}
			if inside < k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// assortBrute computes the Pearson correlation of endpoint degrees over the
// directed edge list (each undirected edge contributes both orientations).
func assortBrute(g *Graph) (float64, bool) {
	var xs, ys []float64
	for u := 0; u < g.N(); u++ {
		for _, w := range g.Neighbors(u) {
			xs = append(xs, float64(g.Degree(u)))
			ys = append(ys, float64(g.Degree(int(w))))
		}
	}
	if len(xs) == 0 {
		return 0, false
	}
	mx, my := meanOf(xs), meanOf(ys)
	var cov, vx, vy float64
	for i := range xs {
		cov += (xs[i] - mx) * (ys[i] - my)
		vx += (xs[i] - mx) * (xs[i] - mx)
		vy += (ys[i] - my) * (ys[i] - my)
	}
	if vx <= 0 || vy <= 0 {
		return 0, false
	}
	return cov / math.Sqrt(vx*vy), true
}

func meanOf(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

func TestAssortativityKnown(t *testing.T) {
	// A star graph is maximally disassortative: r = -1.
	g := New(6)
	for i := 1; i < 6; i++ {
		_ = g.AddEdge(0, i)
	}
	r, ok := g.Assortativity()
	if !ok || !almost(r, -1) {
		t.Errorf("star assortativity = %v ok=%v, want -1", r, ok)
	}
	// Regular graphs have undefined assortativity (zero degree variance).
	if _, ok := complete(5).Assortativity(); ok {
		t.Error("K5 assortativity should be undefined")
	}
	if _, ok := New(4).Assortativity(); ok {
		t.Error("edgeless assortativity should be undefined")
	}
}

func TestAssortativityAgainstBrute(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(25, 0.2, rng)
		got, ok1 := g.Assortativity()
		want, ok2 := assortBrute(g)
		if ok1 != ok2 {
			return false
		}
		if !ok1 {
			return true
		}
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }
