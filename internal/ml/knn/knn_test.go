package knn

import (
	"math"
	"testing"

	"mvg/internal/ml"
	"mvg/internal/ml/mltest"
	"mvg/internal/timeseries"
)

func TestConformance(t *testing.T) {
	mltest.Conformance(t, "5nn", func() ml.Classifier {
		return New(5, nil)
	})
}

func TestOneNNExactRecall(t *testing.T) {
	// 1NN must perfectly recall its own training set.
	X, y := mltest.Blobs(50, 3, 4, 2.0, 3)
	m := New(1, nil)
	if err := m.Fit(X, y, 3); err != nil {
		t.Fatal(err)
	}
	proba, err := m.PredictProba(X)
	if err != nil {
		t.Fatal(err)
	}
	if acc := ml.Accuracy(ml.Predict(proba), y); acc != 1 {
		t.Errorf("1NN training recall = %v, want 1", acc)
	}
}

func TestKNNVoteFractions(t *testing.T) {
	X := [][]float64{{0}, {0.1}, {0.2}, {10}}
	y := []int{0, 0, 1, 1}
	m := New(3, nil)
	if err := m.Fit(X, y, 2); err != nil {
		t.Fatal(err)
	}
	proba, err := m.PredictProba([][]float64{{0.05}})
	if err != nil {
		t.Fatal(err)
	}
	// Neighbours: 0, 0.1, 0.2 → votes 2:1.
	if math.Abs(proba[0][0]-2.0/3) > 1e-9 {
		t.Errorf("vote fractions = %v", proba[0])
	}
}

func TestDTW1NNBeatsED1NNOnWarpedData(t *testing.T) {
	// Same shape, shifted phase: DTW should dominate Euclidean.
	mk := func(shift int, n int) []float64 {
		s := make([]float64, n)
		for i := range s {
			s[i] = math.Sin(2 * math.Pi * float64(i+shift) / 16)
		}
		return s
	}
	var X [][]float64
	var y []int
	for shift := 0; shift < 6; shift++ {
		X = append(X, mk(shift, 64))
		y = append(y, 0)
		sq := make([]float64, 64)
		for i := range sq {
			if math.Sin(2*math.Pi*float64(i+shift)/16) > 0 {
				sq[i] = 1
			} else {
				sq[i] = -1
			}
		}
		X = append(X, sq)
		y = append(y, 1)
	}
	trainX, trainY := X[:8], y[:8]
	testX, testY := X[8:], y[8:]

	dtw := NewSeriesDTW(8)
	if err := dtw.Fit(trainX, trainY, 2); err != nil {
		t.Fatal(err)
	}
	proba, err := dtw.PredictProba(testX)
	if err != nil {
		t.Fatal(err)
	}
	if acc := ml.Accuracy(ml.Predict(proba), testY); acc < 0.99 {
		t.Errorf("1NN-DTW accuracy on warped data = %v", acc)
	}
}

func TestLBKeoghPruningMatchesExhaustive(t *testing.T) {
	// Predictions with pruning must equal brute-force DTW 1NN.
	X, y := mltest.Blobs(40, 2, 32, 1.0, 9)
	pruned := NewSeriesDTW(4)
	if err := pruned.Fit(X, y, 2); err != nil {
		t.Fatal(err)
	}
	brute := New(1, func(a, b []float64) (float64, error) { return timeseries.DTW(a, b, 4) })
	brute.name = "brute"
	if err := brute.Fit(X, y, 2); err != nil {
		t.Fatal(err)
	}
	testX, _ := mltest.Blobs(30, 2, 32, 1.0, 77)
	p1, err := pruned.PredictProba(testX)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := brute.PredictProba(testX)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1 {
		for j := range p1[i] {
			if p1[i][j] != p2[i][j] {
				t.Fatalf("pruned vs exhaustive mismatch at [%d][%d]: %v vs %v",
					i, j, p1[i], p2[i])
			}
		}
	}
}

func TestNames(t *testing.T) {
	if NewSeriesED().Name() != "1nn-ed" {
		t.Error("1nn-ed name")
	}
	if NewSeriesDTW(-1).Name() != "1nn-dtw(w=-1)" {
		t.Error("dtw name")
	}
}
