// Package knn implements k-nearest-neighbour classification over arbitrary
// distance functions. It powers both feature-space kNN and the paper's two
// distance-based baselines: 1NN with Euclidean distance and 1NN with DTW
// (Table 2/3), the latter accelerated with LB_Keogh lower-bound pruning.
package knn

import (
	"fmt"
	"math"
	"sort"

	"mvg/internal/ml"
	"mvg/internal/timeseries"
)

// Distance computes the dissimilarity between two vectors.
type Distance func(a, b []float64) (float64, error)

// Model is a fitted kNN classifier implementing ml.Classifier.
type Model struct {
	// K is the neighbourhood size (default 1).
	K int
	// Metric is the distance function (default Euclidean).
	Metric Distance
	// name for reports.
	name string

	train   [][]float64
	labels  []int
	classes int

	// DTW acceleration state (set by NewSeriesDTW).
	dtwWindow    int
	useLB        bool
	upper, lower [][]float64
}

// New returns a kNN model over the given metric.
func New(k int, metric Distance) *Model {
	if k <= 0 {
		k = 1
	}
	if metric == nil {
		metric = timeseries.Euclidean
	}
	return &Model{K: k, Metric: metric, name: fmt.Sprintf("%dnn", k)}
}

// NewSeriesED returns the paper's 1NN-ED baseline (raw series input).
func NewSeriesED() *Model {
	m := New(1, timeseries.Euclidean)
	m.name = "1nn-ed"
	return m
}

// NewSeriesDTW returns the paper's 1NN-DTW baseline with a Sakoe-Chiba
// window (negative = unconstrained). Neighbour search uses LB_Keogh
// lower-bound pruning when the window is non-negative and series lengths
// are uniform.
func NewSeriesDTW(window int) *Model {
	m := &Model{K: 1, dtwWindow: window, name: fmt.Sprintf("1nn-dtw(w=%d)", window)}
	m.Metric = func(a, b []float64) (float64, error) {
		return timeseries.DTW(a, b, window)
	}
	m.useLB = window >= 0
	return m
}

// Clone returns a fresh untrained copy.
func (m *Model) Clone() ml.Classifier {
	return &Model{K: m.K, Metric: m.Metric, name: m.name,
		dtwWindow: m.dtwWindow, useLB: m.useLB}
}

// Name implements ml.Named.
func (m *Model) Name() string { return m.name }

// Fit memorizes the training set (and precomputes DTW envelopes when
// lower-bound pruning is enabled).
func (m *Model) Fit(X [][]float64, y []int, classes int) error {
	if err := ml.CheckTrainingSet(X, y, classes); err != nil {
		return err
	}
	m.train = X
	m.labels = y
	m.classes = classes
	if m.useLB {
		uniform := true
		for _, row := range X {
			if len(row) != len(X[0]) {
				uniform = false
				break
			}
		}
		if uniform {
			m.upper = make([][]float64, len(X))
			m.lower = make([][]float64, len(X))
			for i, row := range X {
				m.upper[i], m.lower[i] = timeseries.Envelope(row, m.dtwWindow)
			}
		} else {
			m.upper, m.lower = nil, nil
		}
	}
	return nil
}

type scored struct {
	dist  float64
	label int
}

// neighbours returns the k nearest training points to x.
func (m *Model) neighbours(x []float64) ([]scored, error) {
	k := m.K
	if k > len(m.train) {
		k = len(m.train)
	}
	best := make([]scored, 0, k)
	worst := math.Inf(1)
	for i, row := range m.train {
		if m.upper != nil && len(best) == k && len(x) == len(row) {
			lb, err := timeseries.LBKeogh(x, m.upper[i], m.lower[i])
			if err == nil && lb >= worst {
				continue // cannot beat the current kth neighbour
			}
		}
		d, err := m.Metric(x, row)
		if err != nil {
			return nil, err
		}
		if len(best) < k {
			best = append(best, scored{d, m.labels[i]})
			if len(best) == k {
				sort.Slice(best, func(a, b int) bool { return best[a].dist < best[b].dist })
				worst = best[k-1].dist
			}
			continue
		}
		if d < worst {
			best[k-1] = scored{d, m.labels[i]}
			sort.Slice(best, func(a, b int) bool { return best[a].dist < best[b].dist })
			worst = best[k-1].dist
		}
	}
	if len(best) < k {
		sort.Slice(best, func(a, b int) bool { return best[a].dist < best[b].dist })
	}
	return best, nil
}

// PredictProba votes uniformly among the k nearest neighbours.
func (m *Model) PredictProba(X [][]float64) ([][]float64, error) {
	if m.train == nil {
		return nil, ml.ErrNotFitted
	}
	out := make([][]float64, len(X))
	for i, x := range X {
		nb, err := m.neighbours(x)
		if err != nil {
			return nil, err
		}
		p := make([]float64, m.classes)
		for _, s := range nb {
			p[s.label]++
		}
		ml.Normalize(p)
		out[i] = p
	}
	return out, nil
}
