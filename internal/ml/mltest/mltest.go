// Package mltest provides shared fixtures and a conformance suite for
// ml.Classifier implementations, so every model family is held to the same
// behavioural contract.
package mltest

import (
	"math"
	"math/rand"
	"testing"

	"mvg/internal/ml"
)

// Blobs draws n points from `classes` Gaussian blobs in `dims` dimensions.
// Blob centers sit on coordinate axes at distance 4; spread is the
// within-blob standard deviation.
func Blobs(n, classes, dims int, spread float64, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % classes
		row := make([]float64, dims)
		for j := range row {
			row[j] = spread * rng.NormFloat64()
		}
		row[c%dims] += 4
		X[i] = row
		y[i] = c
	}
	rng.Shuffle(n, func(a, b int) {
		X[a], X[b] = X[b], X[a]
		y[a], y[b] = y[b], y[a]
	})
	return X, y
}

// XOR draws a 2-class XOR problem that defeats linear models.
func XOR(n int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		a := rng.Float64()*2 - 1
		b := rng.Float64()*2 - 1
		X[i] = []float64{a, b}
		if (a > 0) != (b > 0) {
			y[i] = 1
		}
	}
	return X, y
}

// Conformance runs the shared behavioural contract against a classifier
// constructor (called fresh for each sub-test).
func Conformance(t *testing.T, name string, fresh func() ml.Classifier) {
	t.Helper()

	t.Run(name+"/rejects_bad_input", func(t *testing.T) {
		c := fresh()
		if err := c.Fit(nil, nil, 2); err == nil {
			t.Error("Fit(empty) should fail")
		}
		if err := c.Fit([][]float64{{1}, {2}}, []int{0, 5}, 2); err == nil {
			t.Error("Fit with out-of-range label should fail")
		}
		if _, err := c.PredictProba([][]float64{{1}}); err == nil {
			t.Error("PredictProba before Fit should fail")
		}
	})

	t.Run(name+"/learns_blobs_binary", func(t *testing.T) {
		X, y := Blobs(120, 2, 4, 0.6, 7)
		c := fresh()
		if err := c.Fit(X, y, 2); err != nil {
			t.Fatal(err)
		}
		testX, testY := Blobs(80, 2, 4, 0.6, 99)
		proba, err := c.PredictProba(testX)
		if err != nil {
			t.Fatal(err)
		}
		if acc := ml.Accuracy(ml.Predict(proba), testY); acc < 0.9 {
			t.Errorf("binary blob accuracy = %v, want ≥0.9", acc)
		}
	})

	t.Run(name+"/learns_blobs_multiclass", func(t *testing.T) {
		X, y := Blobs(150, 3, 4, 0.6, 11)
		c := fresh()
		if err := c.Fit(X, y, 3); err != nil {
			t.Fatal(err)
		}
		testX, testY := Blobs(90, 3, 4, 0.6, 101)
		proba, err := c.PredictProba(testX)
		if err != nil {
			t.Fatal(err)
		}
		if acc := ml.Accuracy(ml.Predict(proba), testY); acc < 0.85 {
			t.Errorf("3-class blob accuracy = %v, want ≥0.85", acc)
		}
	})

	t.Run(name+"/probability_simplex", func(t *testing.T) {
		X, y := Blobs(90, 3, 3, 1.0, 13)
		c := fresh()
		if err := c.Fit(X, y, 3); err != nil {
			t.Fatal(err)
		}
		proba, err := c.PredictProba(X[:20])
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range proba {
			if len(p) != 3 {
				t.Fatalf("row %d has %d probabilities", i, len(p))
			}
			sum := 0.0
			for _, v := range p {
				if v < -1e-12 || v > 1+1e-12 || math.IsNaN(v) {
					t.Fatalf("row %d has invalid probability %v", i, v)
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-6 {
				t.Fatalf("row %d sums to %v", i, sum)
			}
		}
	})

	t.Run(name+"/clone_is_untrained", func(t *testing.T) {
		X, y := Blobs(60, 2, 3, 1.0, 17)
		c := fresh()
		if err := c.Fit(X, y, 2); err != nil {
			t.Fatal(err)
		}
		clone := c.Clone()
		if _, err := clone.PredictProba(X[:2]); err == nil {
			t.Error("clone should be untrained")
		}
		// And the clone must be independently trainable.
		if err := clone.Fit(X, y, 2); err != nil {
			t.Errorf("clone failed to train: %v", err)
		}
	})
}
