package linear

import (
	"testing"

	"mvg/internal/ml"
	"mvg/internal/ml/mltest"
)

func TestConformance(t *testing.T) {
	mltest.Conformance(t, "logreg", func() ml.Classifier {
		return New(Params{})
	})
}

func TestCannotLearnXOR(t *testing.T) {
	// Logistic regression is linear; XOR stays near chance.
	X, y := mltest.XOR(300, 7)
	m := New(Params{MaxIter: 300})
	if err := m.Fit(X, y, 2); err != nil {
		t.Fatal(err)
	}
	proba, err := m.PredictProba(X)
	if err != nil {
		t.Fatal(err)
	}
	if acc := ml.Accuracy(ml.Predict(proba), y); acc > 0.72 {
		t.Errorf("linear model should not solve XOR, accuracy = %v", acc)
	}
}

func TestRegularizationShrinksWeights(t *testing.T) {
	X, y := mltest.Blobs(100, 2, 3, 0.8, 5)
	weak := New(Params{L2: 1e-6, MaxIter: 300})
	strong := New(Params{L2: 10, MaxIter: 300})
	if err := weak.Fit(X, y, 2); err != nil {
		t.Fatal(err)
	}
	if err := strong.Fit(X, y, 2); err != nil {
		t.Fatal(err)
	}
	norm := func(m *Model) float64 {
		s := 0.0
		for _, row := range m.W {
			for _, v := range row[:len(row)-1] {
				s += v * v
			}
		}
		return s
	}
	if norm(strong) >= norm(weak) {
		t.Errorf("stronger L2 should shrink weights: %v vs %v", norm(strong), norm(weak))
	}
}

func TestPredictWidthMismatch(t *testing.T) {
	X, y := mltest.Blobs(50, 2, 3, 1.0, 3)
	m := New(Params{})
	if err := m.Fit(X, y, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := m.PredictProba([][]float64{{1, 2}}); err == nil {
		t.Error("feature width mismatch should fail")
	}
}
