// Package linear implements multinomial logistic regression with L2
// regularization, trained by full-batch gradient descent with backtracking
// step control. It is the meta-learner of the stacking ensemble
// (Algorithm 2 computes estimator weights "with logistic regression") and
// doubles as a simple calibrated base classifier.
package linear

import (
	"fmt"
	"math"

	"mvg/internal/ml"
)

// Params configures training.
type Params struct {
	// L2 is the ridge penalty on weights (default 1e-4; the bias is not
	// penalized).
	L2 float64
	// MaxIter bounds gradient-descent iterations (default 200).
	MaxIter int
	// Tol stops training when the loss improvement falls below it
	// (default 1e-7).
	Tol float64
	// LearningRate is the initial step size (default 1; backtracking
	// shrinks it per iteration as needed).
	LearningRate float64
}

func (p Params) withDefaults() Params {
	if p.L2 < 0 {
		p.L2 = 0
	} else if p.L2 == 0 {
		p.L2 = 1e-4
	}
	if p.MaxIter <= 0 {
		p.MaxIter = 200
	}
	if p.Tol <= 0 {
		p.Tol = 1e-7
	}
	if p.LearningRate <= 0 {
		p.LearningRate = 1
	}
	return p
}

// Model is a fitted multinomial logistic regression implementing
// ml.Classifier.
type Model struct {
	P       Params
	classes int
	// W[c] is the weight row for class c; the last entry is the bias.
	W [][]float64
}

// New returns an untrained model.
func New(p Params) *Model { return &Model{P: p} }

// Clone returns a fresh untrained model with identical parameters.
func (m *Model) Clone() ml.Classifier { return &Model{P: m.P} }

// Name implements ml.Named.
func (m *Model) Name() string {
	p := m.P.withDefaults()
	return fmt.Sprintf("logreg(l2=%.2g)", p.L2)
}

// scores computes raw class scores for one (unaugmented) row.
func (m *Model) scores(row []float64, out []float64) {
	d := len(row)
	for c := range m.W {
		s := m.W[c][d] // bias
		w := m.W[c]
		for j, v := range row {
			s += w[j] * v
		}
		out[c] = s
	}
}

func softmaxInPlace(v []float64) {
	maxV := v[0]
	for _, x := range v[1:] {
		if x > maxV {
			maxV = x
		}
	}
	sum := 0.0
	for i, x := range v {
		e := math.Exp(x - maxV)
		v[i] = e
		sum += e
	}
	for i := range v {
		v[i] /= sum
	}
}

// loss returns the L2-regularized mean cross entropy under weights W.
func (m *Model) loss(X [][]float64, y []int) float64 {
	n := len(X)
	k := m.classes
	buf := make([]float64, k)
	total := 0.0
	for i, row := range X {
		m.scores(row, buf)
		softmaxInPlace(buf)
		p := buf[y[i]]
		if p < 1e-15 {
			p = 1e-15
		}
		total += -math.Log(p)
	}
	total /= float64(n)
	p := m.P.withDefaults()
	reg := 0.0
	d := len(X[0])
	for c := range m.W {
		for j := 0; j < d; j++ {
			reg += m.W[c][j] * m.W[c][j]
		}
	}
	return total + 0.5*p.L2*reg
}

// Fit trains by full-batch gradient descent with backtracking line search.
func (m *Model) Fit(X [][]float64, y []int, classes int) error {
	if err := ml.CheckTrainingSet(X, y, classes); err != nil {
		return err
	}
	p := m.P.withDefaults()
	m.P = p
	m.classes = classes
	n := len(X)
	d := len(X[0])
	m.W = make([][]float64, classes)
	for c := range m.W {
		m.W[c] = make([]float64, d+1)
	}

	grad := make([][]float64, classes)
	for c := range grad {
		grad[c] = make([]float64, d+1)
	}
	buf := make([]float64, classes)
	step := p.LearningRate
	prevLoss := m.loss(X, y)

	for iter := 0; iter < p.MaxIter; iter++ {
		for c := range grad {
			for j := range grad[c] {
				grad[c][j] = 0
			}
		}
		for i, row := range X {
			m.scores(row, buf)
			softmaxInPlace(buf)
			for c := 0; c < classes; c++ {
				delta := buf[c]
				if y[i] == c {
					delta -= 1
				}
				g := grad[c]
				for j, v := range row {
					g[j] += delta * v
				}
				g[d] += delta
			}
		}
		inv := 1 / float64(n)
		for c := 0; c < classes; c++ {
			for j := 0; j < d; j++ {
				grad[c][j] = grad[c][j]*inv + p.L2*m.W[c][j]
			}
			grad[c][d] *= inv
		}

		// Backtracking: shrink the step until the loss decreases.
		improved := false
		for try := 0; try < 30; try++ {
			for c := range m.W {
				for j := range m.W[c] {
					m.W[c][j] -= step * grad[c][j]
				}
			}
			l := m.loss(X, y)
			if l < prevLoss {
				if prevLoss-l < p.Tol {
					prevLoss = l
					return nil
				}
				prevLoss = l
				improved = true
				step *= 1.1
				break
			}
			// Undo and halve.
			for c := range m.W {
				for j := range m.W[c] {
					m.W[c][j] += step * grad[c][j]
				}
			}
			step /= 2
		}
		if !improved {
			break
		}
	}
	return nil
}

// PredictProba returns softmax probabilities.
func (m *Model) PredictProba(X [][]float64) ([][]float64, error) {
	if m.W == nil {
		return nil, ml.ErrNotFitted
	}
	out := make([][]float64, len(X))
	for i, row := range X {
		if len(row)+1 != len(m.W[0]) {
			return nil, ml.ErrShapeMismatch
		}
		p := make([]float64, m.classes)
		m.scores(row, p)
		softmaxInPlace(p)
		out[i] = p
	}
	return out, nil
}
