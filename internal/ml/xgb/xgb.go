// Package xgb implements gradient-boosted decision trees in the XGBoost
// style (Chen & Guestrin 2016): second-order Taylor objective, regularized
// split gain, shrinkage, and row/column subsampling, with a softmax
// multi-class objective. It is the primary classifier the paper pairs with
// MVG features, and exposes gain-based feature importance for the Figure 10
// case study.
package xgb

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"mvg/internal/ml"
)

// Params configures boosting. Zero values take the documented defaults.
type Params struct {
	// NumRounds is the number of boosting rounds (default 50).
	NumRounds int
	// LearningRate is the shrinkage η applied to every leaf (default 0.3).
	LearningRate float64
	// MaxDepth limits each regression tree (default 6).
	MaxDepth int
	// Lambda is the L2 penalty on leaf weights (default 1).
	Lambda float64
	// Gamma is the minimum split gain (default 0).
	Gamma float64
	// Subsample is the row-sampling fraction per round (default 1; the
	// paper's experiments use 0.5).
	Subsample float64
	// ColsampleByTree is the feature-sampling fraction per tree (default 1;
	// the paper's experiments use 0.5).
	ColsampleByTree float64
	// MinChildWeight is the minimum hessian sum per child (default 1).
	MinChildWeight float64
	// Seed drives subsampling.
	Seed int64
}

func (p Params) withDefaults() Params {
	if p.NumRounds <= 0 {
		p.NumRounds = 50
	}
	if p.LearningRate <= 0 {
		p.LearningRate = 0.3
	}
	if p.MaxDepth <= 0 {
		p.MaxDepth = 6
	}
	if p.Lambda < 0 {
		p.Lambda = 0
	} else if p.Lambda == 0 {
		p.Lambda = 1
	}
	if p.Subsample <= 0 || p.Subsample > 1 {
		p.Subsample = 1
	}
	if p.ColsampleByTree <= 0 || p.ColsampleByTree > 1 {
		p.ColsampleByTree = 1
	}
	if p.MinChildWeight <= 0 {
		p.MinChildWeight = 1
	}
	return p
}

// regNode is a node of a second-order regression tree.
type regNode struct {
	feature   int32 // -1 for leaf
	threshold float64
	left      int32
	right     int32
	weight    float64 // leaf output (already shrunk by η)
}

type regTree struct{ nodes []regNode }

func (t *regTree) predict(row []float64) float64 {
	n := &t.nodes[0]
	for n.feature >= 0 {
		if row[n.feature] <= n.threshold {
			n = &t.nodes[n.left]
		} else {
			n = &t.nodes[n.right]
		}
	}
	return n.weight
}

// Model is a fitted boosted ensemble implementing ml.Classifier.
type Model struct {
	P       Params
	classes int
	// trees[round][class]
	trees [][]regTree
	// gain accumulates split gain per feature (importance).
	gain []float64
}

// New returns an untrained model.
func New(p Params) *Model { return &Model{P: p} }

// Clone returns a fresh untrained model with identical parameters.
func (m *Model) Clone() ml.Classifier { return &Model{P: m.P} }

// Name implements ml.Named.
func (m *Model) Name() string {
	p := m.P.withDefaults()
	return fmt.Sprintf("xgb(rounds=%d,lr=%.2g,depth=%d)", p.NumRounds, p.LearningRate, p.MaxDepth)
}

// treeBuilder grows one regression tree on gradients/hessians.
type treeBuilder struct {
	X       [][]float64
	g, h    []float64
	p       Params
	nodes   []regNode
	columns []int
	gain    []float64
}

func (b *treeBuilder) leaf(idx []int) int32 {
	var G, H float64
	for _, i := range idx {
		G += b.g[i]
		H += b.h[i]
	}
	w := -G / (H + b.p.Lambda) * b.p.LearningRate
	b.nodes = append(b.nodes, regNode{feature: -1, weight: w})
	return int32(len(b.nodes) - 1)
}

func (b *treeBuilder) grow(idx []int, depth int) int32 {
	if depth >= b.p.MaxDepth || len(idx) < 2 {
		return b.leaf(idx)
	}
	var G, H float64
	for _, i := range idx {
		G += b.g[i]
		H += b.h[i]
	}
	parentScore := G * G / (H + b.p.Lambda)

	bestGain := 0.0
	bestFeature := -1
	bestThreshold := 0.0

	order := make([]int, len(idx))
	for _, f := range b.columns {
		copy(order, idx)
		sort.Slice(order, func(a, c int) bool { return b.X[order[a]][f] < b.X[order[c]][f] })
		var GL, HL float64
		for k := 0; k+1 < len(order); k++ {
			i := order[k]
			GL += b.g[i]
			HL += b.h[i]
			v, next := b.X[i][f], b.X[order[k+1]][f]
			if v == next {
				continue
			}
			HR := H - HL
			if HL < b.p.MinChildWeight || HR < b.p.MinChildWeight {
				continue
			}
			GR := G - GL
			gain := 0.5*(GL*GL/(HL+b.p.Lambda)+GR*GR/(HR+b.p.Lambda)-parentScore) - b.p.Gamma
			if gain > bestGain {
				bestGain = gain
				bestFeature = f
				bestThreshold = (v + next) / 2
			}
		}
	}

	if bestFeature < 0 {
		return b.leaf(idx)
	}
	b.gain[bestFeature] += bestGain

	var leftIdx, rightIdx []int
	for _, i := range idx {
		if b.X[i][bestFeature] <= bestThreshold {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	if len(leftIdx) == 0 || len(rightIdx) == 0 {
		return b.leaf(idx)
	}
	self := int32(len(b.nodes))
	b.nodes = append(b.nodes, regNode{feature: int32(bestFeature), threshold: bestThreshold})
	l := b.grow(leftIdx, depth+1)
	r := b.grow(rightIdx, depth+1)
	b.nodes[self].left = l
	b.nodes[self].right = r
	return self
}

// Fit trains the boosted ensemble with the softmax objective: each round
// grows one tree per class on that class's gradients g = p − 1{y=c} and
// hessians h = p(1 − p).
func (m *Model) Fit(X [][]float64, y []int, classes int) error {
	if err := ml.CheckTrainingSet(X, y, classes); err != nil {
		return err
	}
	p := m.P.withDefaults()
	n := len(X)
	width := len(X[0])
	m.classes = classes
	m.trees = m.trees[:0]
	m.gain = make([]float64, width)
	rng := rand.New(rand.NewSource(p.Seed))

	// raw[i][c] — accumulated scores.
	raw := make([][]float64, n)
	for i := range raw {
		raw[i] = make([]float64, classes)
	}
	probs := make([][]float64, n)
	for i := range probs {
		probs[i] = make([]float64, classes)
	}
	g := make([]float64, n)
	h := make([]float64, n)
	allCols := make([]int, width)
	for i := range allCols {
		allCols[i] = i
	}

	for round := 0; round < p.NumRounds; round++ {
		// Softmax over current raw scores.
		for i := range raw {
			softmaxInto(raw[i], probs[i])
		}
		// Row subsample for this round.
		var rows []int
		if p.Subsample < 1 {
			for i := 0; i < n; i++ {
				if rng.Float64() < p.Subsample {
					rows = append(rows, i)
				}
			}
			if len(rows) < 2 {
				rows = allRows(n)
			}
		} else {
			rows = allRows(n)
		}

		roundTrees := make([]regTree, classes)
		for c := 0; c < classes; c++ {
			for i := 0; i < n; i++ {
				target := 0.0
				if y[i] == c {
					target = 1
				}
				pc := probs[i][c]
				g[i] = pc - target
				h[i] = pc * (1 - pc)
				if h[i] < 1e-16 {
					h[i] = 1e-16
				}
			}
			// Column subsample per tree.
			cols := allCols
			if p.ColsampleByTree < 1 {
				k := int(math.Ceil(p.ColsampleByTree * float64(width)))
				if k < 1 {
					k = 1
				}
				perm := rng.Perm(width)[:k]
				sort.Ints(perm)
				cols = perm
			}
			b := &treeBuilder{X: X, g: g, h: h, p: p, columns: cols, gain: m.gain}
			b.grow(rows, 0)
			roundTrees[c] = regTree{nodes: b.nodes}
			// Update raw scores for all samples.
			for i := 0; i < n; i++ {
				raw[i][c] += roundTrees[c].predict(X[i])
			}
		}
		m.trees = append(m.trees, roundTrees)
	}
	return nil
}

func allRows(n int) []int {
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	return rows
}

// softmaxInto writes softmax(raw) into dst.
func softmaxInto(raw, dst []float64) {
	maxV := raw[0]
	for _, v := range raw[1:] {
		if v > maxV {
			maxV = v
		}
	}
	sum := 0.0
	for i, v := range raw {
		e := math.Exp(v - maxV)
		dst[i] = e
		sum += e
	}
	for i := range dst {
		dst[i] /= sum
	}
}

// PredictProba returns softmax class probabilities.
func (m *Model) PredictProba(X [][]float64) ([][]float64, error) {
	if m.trees == nil {
		return nil, ml.ErrNotFitted
	}
	out := make([][]float64, len(X))
	for i, row := range X {
		raw := make([]float64, m.classes)
		for _, roundTrees := range m.trees {
			for c := range roundTrees {
				raw[c] += roundTrees[c].predict(row)
			}
		}
		p := make([]float64, m.classes)
		softmaxInto(raw, p)
		out[i] = p
	}
	return out, nil
}

// FeatureImportance returns total split gain per feature, normalized to
// sum to one (zero vector if the ensemble never split).
func (m *Model) FeatureImportance() []float64 {
	out := make([]float64, len(m.gain))
	copy(out, m.gain)
	sum := 0.0
	for _, v := range out {
		sum += v
	}
	if sum > 0 {
		for i := range out {
			out[i] /= sum
		}
	}
	return out
}
