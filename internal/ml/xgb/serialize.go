package xgb

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"mvg/internal/ml"
)

// Serialization uses encoding/gob over an exported snapshot of the fitted
// ensemble so trained models can be stored and reloaded without
// retraining (model persistence is table stakes for a production
// pipeline; the facade's Model.Save/Load builds on this).

type nodeSnapshot struct {
	Feature   int32
	Threshold float64
	Left      int32
	Right     int32
	Weight    float64
}

type modelSnapshot struct {
	Params  Params
	Classes int
	Trees   [][][]nodeSnapshot
	Gain    []float64
}

// MarshalBinary encodes a fitted model.
func (m *Model) MarshalBinary() ([]byte, error) {
	if m.trees == nil {
		return nil, ml.ErrNotFitted
	}
	snap := modelSnapshot{
		Params:  m.P,
		Classes: m.classes,
		Gain:    m.gain,
	}
	snap.Trees = make([][][]nodeSnapshot, len(m.trees))
	for r, round := range m.trees {
		snap.Trees[r] = make([][]nodeSnapshot, len(round))
		for c, tree := range round {
			nodes := make([]nodeSnapshot, len(tree.nodes))
			for i, n := range tree.nodes {
				nodes[i] = nodeSnapshot{n.feature, n.threshold, n.left, n.right, n.weight}
			}
			snap.Trees[r][c] = nodes
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return nil, fmt.Errorf("xgb: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary restores a model encoded by MarshalBinary.
func (m *Model) UnmarshalBinary(data []byte) error {
	var snap modelSnapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		return fmt.Errorf("xgb: decode: %w", err)
	}
	if snap.Classes < 2 || len(snap.Trees) == 0 {
		return fmt.Errorf("xgb: decoded model is malformed (%d classes, %d rounds)",
			snap.Classes, len(snap.Trees))
	}
	m.P = snap.Params
	m.classes = snap.Classes
	m.gain = snap.Gain
	m.trees = make([][]regTree, len(snap.Trees))
	for r, round := range snap.Trees {
		if len(round) != snap.Classes {
			return fmt.Errorf("xgb: round %d has %d trees, want %d", r, len(round), snap.Classes)
		}
		m.trees[r] = make([]regTree, len(round))
		for c, nodes := range round {
			tree := make([]regNode, len(nodes))
			for i, n := range nodes {
				if n.Feature >= 0 && (n.Left < 0 || n.Right < 0 ||
					int(n.Left) >= len(nodes) || int(n.Right) >= len(nodes)) {
					return fmt.Errorf("xgb: node %d of tree (%d,%d) has invalid children", i, r, c)
				}
				tree[i] = regNode{n.Feature, n.Threshold, n.Left, n.Right, n.Weight}
			}
			m.trees[r][c] = regTree{nodes: tree}
		}
	}
	return nil
}
