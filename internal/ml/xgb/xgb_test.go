package xgb

import (
	"testing"

	"mvg/internal/ml"
	"mvg/internal/ml/mltest"
)

func TestConformance(t *testing.T) {
	mltest.Conformance(t, "xgb", func() ml.Classifier {
		return New(Params{NumRounds: 30, MaxDepth: 3, Seed: 1})
	})
}

func TestLearnsXOR(t *testing.T) {
	X, y := mltest.XOR(300, 5)
	m := New(Params{NumRounds: 50, MaxDepth: 4, LearningRate: 0.3, Seed: 2})
	if err := m.Fit(X, y, 2); err != nil {
		t.Fatal(err)
	}
	testX, testY := mltest.XOR(200, 99)
	proba, err := m.PredictProba(testX)
	if err != nil {
		t.Fatal(err)
	}
	if acc := ml.Accuracy(ml.Predict(proba), testY); acc < 0.9 {
		t.Errorf("XOR test accuracy = %v, want ≥0.9", acc)
	}
}

func TestMoreRoundsFitTighter(t *testing.T) {
	X, y := mltest.Blobs(120, 3, 4, 1.5, 7)
	few := New(Params{NumRounds: 2, MaxDepth: 3, Seed: 4})
	many := New(Params{NumRounds: 60, MaxDepth: 3, Seed: 4})
	if err := few.Fit(X, y, 3); err != nil {
		t.Fatal(err)
	}
	if err := many.Fit(X, y, 3); err != nil {
		t.Fatal(err)
	}
	pf, _ := few.PredictProba(X)
	pm, _ := many.PredictProba(X)
	if ml.LogLoss(pm, y) >= ml.LogLoss(pf, y) {
		t.Errorf("training loss should drop with rounds: %v → %v",
			ml.LogLoss(pf, y), ml.LogLoss(pm, y))
	}
}

func TestSubsamplingStillLearns(t *testing.T) {
	X, y := mltest.Blobs(150, 2, 4, 0.8, 9)
	m := New(Params{NumRounds: 40, MaxDepth: 3, Subsample: 0.5, ColsampleByTree: 0.5, Seed: 5})
	if err := m.Fit(X, y, 2); err != nil {
		t.Fatal(err)
	}
	testX, testY := mltest.Blobs(100, 2, 4, 0.8, 55)
	proba, err := m.PredictProba(testX)
	if err != nil {
		t.Fatal(err)
	}
	if acc := ml.Accuracy(ml.Predict(proba), testY); acc < 0.9 {
		t.Errorf("subsampled accuracy = %v", acc)
	}
}

func TestFeatureImportance(t *testing.T) {
	// Only feature 0 carries signal; importance must concentrate there.
	X, y := mltest.Blobs(200, 2, 1, 0.5, 11)
	wide := make([][]float64, len(X))
	for i, row := range X {
		wide[i] = []float64{row[0], float64(i % 7), float64((i * 13) % 5)}
	}
	m := New(Params{NumRounds: 20, MaxDepth: 3, Seed: 3})
	if err := m.Fit(wide, y, 2); err != nil {
		t.Fatal(err)
	}
	imp := m.FeatureImportance()
	if len(imp) != 3 {
		t.Fatalf("importance length = %d", len(imp))
	}
	if imp[0] < 0.5 || imp[0] <= imp[1] || imp[0] <= imp[2] {
		t.Errorf("feature 0 should dominate importance, got %v", imp)
	}
	sum := imp[0] + imp[1] + imp[2]
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("importance sums to %v", sum)
	}
}

func TestDeterministic(t *testing.T) {
	X, y := mltest.Blobs(100, 3, 4, 1.0, 13)
	run := func() float64 {
		m := New(Params{NumRounds: 15, MaxDepth: 3, Subsample: 0.7, Seed: 77})
		if err := m.Fit(X, y, 3); err != nil {
			t.Fatal(err)
		}
		proba, _ := m.PredictProba(X)
		return ml.LogLoss(proba, y)
	}
	if run() != run() {
		t.Error("boosting is not deterministic under a fixed seed")
	}
}
