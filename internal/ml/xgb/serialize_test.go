package xgb

import (
	"testing"

	"mvg/internal/ml/mltest"
)

func TestMarshalRoundTrip(t *testing.T) {
	X, y := mltest.Blobs(100, 3, 4, 1.0, 7)
	m := New(Params{NumRounds: 10, MaxDepth: 3, Seed: 1})
	if err := m.Fit(X, y, 3); err != nil {
		t.Fatal(err)
	}
	raw, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := &Model{}
	if err := restored.UnmarshalBinary(raw); err != nil {
		t.Fatal(err)
	}
	p1, _ := m.PredictProba(X)
	p2, err := restored.PredictProba(X)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1 {
		for j := range p1[i] {
			if p1[i][j] != p2[i][j] {
				t.Fatalf("prediction drift at [%d][%d]", i, j)
			}
		}
	}
	imp1, imp2 := m.FeatureImportance(), restored.FeatureImportance()
	for i := range imp1 {
		if imp1[i] != imp2[i] {
			t.Fatal("importance drift")
		}
	}
}

func TestMarshalUnfitted(t *testing.T) {
	if _, err := New(Params{}).MarshalBinary(); err == nil {
		t.Error("marshal of unfitted model should fail")
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	m := &Model{}
	if err := m.UnmarshalBinary([]byte("garbage")); err == nil {
		t.Error("garbage should fail")
	}
	if err := m.UnmarshalBinary(nil); err == nil {
		t.Error("empty should fail")
	}
}

func TestUnmarshalRejectsMalformed(t *testing.T) {
	// Craft a valid-gob but semantically broken snapshot: node children
	// out of range.
	X, y := mltest.Blobs(60, 2, 3, 1.0, 3)
	m := New(Params{NumRounds: 2, MaxDepth: 2, Seed: 1})
	if err := m.Fit(X, y, 2); err != nil {
		t.Fatal(err)
	}
	raw, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt by truncating: decoder must error, not panic.
	for _, cut := range []int{1, len(raw) / 2, len(raw) - 1} {
		bad := &Model{}
		if err := bad.UnmarshalBinary(raw[:cut]); err == nil {
			t.Errorf("truncated payload (%d bytes) should fail", cut)
		}
	}
}
