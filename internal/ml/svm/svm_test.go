package svm

import (
	"math"
	"testing"

	"mvg/internal/ml"
	"mvg/internal/ml/mltest"
)

func TestConformanceRBF(t *testing.T) {
	mltest.Conformance(t, "svm-rbf", func() ml.Classifier {
		return New(Params{C: 10, Kernel: RBF, Gamma: 0.5, Seed: 1})
	})
}

func TestConformanceLinear(t *testing.T) {
	mltest.Conformance(t, "svm-linear", func() ml.Classifier {
		return New(Params{C: 10, Kernel: Linear, Seed: 1})
	})
}

func TestRBFLearnsXOR(t *testing.T) {
	X, y := mltest.XOR(200, 5)
	m := New(Params{C: 10, Kernel: RBF, Gamma: 2, Seed: 2})
	if err := m.Fit(X, y, 2); err != nil {
		t.Fatal(err)
	}
	testX, testY := mltest.XOR(150, 88)
	proba, err := m.PredictProba(testX)
	if err != nil {
		t.Fatal(err)
	}
	if acc := ml.Accuracy(ml.Predict(proba), testY); acc < 0.9 {
		t.Errorf("RBF XOR accuracy = %v, want ≥0.9", acc)
	}
}

func TestLinearCannotLearnXOR(t *testing.T) {
	// Sanity check that the linear kernel is genuinely linear.
	X, y := mltest.XOR(200, 5)
	m := New(Params{C: 10, Kernel: Linear, Seed: 2})
	if err := m.Fit(X, y, 2); err != nil {
		t.Fatal(err)
	}
	proba, err := m.PredictProba(X)
	if err != nil {
		t.Fatal(err)
	}
	if acc := ml.Accuracy(ml.Predict(proba), y); acc > 0.75 {
		t.Errorf("linear SVM should not solve XOR, accuracy = %v", acc)
	}
}

func TestDegenerateSingleClassVsRest(t *testing.T) {
	// Three classes but one is missing from training: the OvR machine for
	// it degenerates; predictions must still be a valid simplex.
	X := [][]float64{{0, 0}, {0, 1}, {4, 4}, {4, 5}, {0.2, 0.1}, {4.2, 4.4}}
	y := []int{0, 0, 1, 1, 0, 1}
	m := New(Params{C: 1, Seed: 3})
	if err := m.Fit(X, y, 3); err != nil {
		t.Fatal(err)
	}
	proba, err := m.PredictProba(X)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range proba {
		sum := 0.0
		for _, v := range p {
			if math.IsNaN(v) || v < 0 {
				t.Fatalf("invalid probability %v", p)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("probabilities sum to %v", sum)
		}
	}
}

func TestPlattFit(t *testing.T) {
	// Well-separated decision values: the sigmoid must be monotone in f
	// and cross 0.5 between the groups.
	dec := []float64{-3, -2.5, -2, 2, 2.5, 3}
	pos := []bool{false, false, false, true, true, true}
	a, b := plattFit(dec, pos)
	sigmoid := func(f float64) float64 { return 1 / (1 + math.Exp(a*f+b)) }
	if sigmoid(-3) > 0.3 || sigmoid(3) < 0.7 {
		t.Errorf("Platt sigmoid miscalibrated: p(-3)=%v p(3)=%v", sigmoid(-3), sigmoid(3))
	}
	if sigmoid(-1) >= sigmoid(1) {
		t.Error("Platt sigmoid should increase with the decision value")
	}
}
