// Package svm implements support vector machine classification with the
// SMO solver (Platt 1998), linear and RBF kernels, one-vs-rest multi-class
// decomposition, and Platt sigmoid calibration for probability outputs —
// the third generic classifier family used in the paper (Section 4.3).
//
// Inputs should be min-max scaled (ml.MinMaxScaler); the paper notes kernel
// machines are sensitive to feature magnitudes.
package svm

import (
	"fmt"
	"math"
	"math/rand"

	"mvg/internal/ml"
)

// KernelKind selects the kernel function.
type KernelKind int

const (
	// RBF is exp(-γ‖a-b‖²) (default).
	RBF KernelKind = iota
	// Linear is ⟨a,b⟩.
	Linear
)

func (k KernelKind) String() string {
	if k == Linear {
		return "linear"
	}
	return "rbf"
}

// Params configures the machine.
type Params struct {
	// C is the soft-margin penalty (default 1).
	C float64
	// Kernel selects RBF (default) or Linear.
	Kernel KernelKind
	// Gamma is the RBF width; 0 means 1/numFeatures.
	Gamma float64
	// Tol is the KKT violation tolerance (default 1e-3).
	Tol float64
	// MaxPasses is the number of consecutive full passes without updates
	// before the SMO loop stops (default 5).
	MaxPasses int
	// MaxIter bounds total SMO iterations (default 300 passes).
	MaxIter int
	// Seed drives the SMO partner selection.
	Seed int64
}

func (p Params) withDefaults() Params {
	if p.C <= 0 {
		p.C = 1
	}
	if p.Tol <= 0 {
		p.Tol = 1e-3
	}
	if p.MaxPasses <= 0 {
		p.MaxPasses = 5
	}
	if p.MaxIter <= 0 {
		p.MaxIter = 300
	}
	return p
}

// binarySVM is one trained machine for a single ±1 problem.
type binarySVM struct {
	alphaY []float64 // αᵢ·yᵢ for support vectors
	sv     [][]float64
	b      float64
	// Platt sigmoid parameters: P(y=1|f) = 1/(1+exp(A·f+B)).
	plattA, plattB float64
}

// Model is a fitted one-vs-rest SVM implementing ml.Classifier.
type Model struct {
	P        Params
	classes  int
	machines []binarySVM
	gamma    float64
}

// New returns an untrained model.
func New(p Params) *Model { return &Model{P: p} }

// Clone returns a fresh untrained model with identical parameters.
func (m *Model) Clone() ml.Classifier { return &Model{P: m.P} }

// Name implements ml.Named.
func (m *Model) Name() string {
	p := m.P.withDefaults()
	return fmt.Sprintf("svm(%s,C=%.3g,gamma=%.3g)", p.Kernel, p.C, p.Gamma)
}

func (m *Model) kernel(a, b []float64) float64 {
	switch m.P.Kernel {
	case Linear:
		dot := 0.0
		for i := range a {
			dot += a[i] * b[i]
		}
		return dot
	default:
		ss := 0.0
		for i := range a {
			d := a[i] - b[i]
			ss += d * d
		}
		return math.Exp(-m.gamma * ss)
	}
}

// Fit trains one binary machine per class (one vs rest). For two classes a
// single machine is trained and mirrored.
func (m *Model) Fit(X [][]float64, y []int, classes int) error {
	if err := ml.CheckTrainingSet(X, y, classes); err != nil {
		return err
	}
	p := m.P.withDefaults()
	m.P = p
	m.classes = classes
	m.gamma = p.Gamma
	if m.gamma <= 0 {
		m.gamma = 1 / float64(len(X[0]))
	}
	nMachines := classes
	if classes == 2 {
		nMachines = 1
	}
	m.machines = make([]binarySVM, nMachines)
	for c := 0; c < nMachines; c++ {
		yy := make([]float64, len(y))
		pos := 0
		for i, label := range y {
			if label == c {
				yy[i] = 1
				pos++
			} else {
				yy[i] = -1
			}
		}
		if pos == 0 || pos == len(y) {
			// Degenerate one-vs-rest problem; a constant machine.
			sign := -1.0
			if pos == len(y) {
				sign = 1
			}
			m.machines[c] = binarySVM{b: sign, plattA: -1, plattB: 0}
			continue
		}
		mach, err := m.trainBinary(X, yy, p, int64(c)*7919+p.Seed)
		if err != nil {
			return err
		}
		m.machines[c] = mach
	}
	return nil
}

// trainBinary runs simplified SMO on a ±1 problem and calibrates Platt's
// sigmoid on the resulting decision values.
func (m *Model) trainBinary(X [][]float64, y []float64, p Params, seed int64) (binarySVM, error) {
	n := len(X)
	rng := rand.New(rand.NewSource(seed))
	alpha := make([]float64, n)
	b := 0.0

	// Cache the kernel matrix; the paper's training sets are small enough
	// (≤ a few thousand rows) for the O(n²) cache to pay off.
	K := make([][]float64, n)
	for i := range K {
		K[i] = make([]float64, n)
		for j := 0; j <= i; j++ {
			v := m.kernel(X[i], X[j])
			K[i][j] = v
			K[j][i] = v
		}
	}

	f := func(i int) float64 {
		sum := b
		for j := 0; j < n; j++ {
			if alpha[j] > 0 {
				sum += alpha[j] * y[j] * K[i][j]
			}
		}
		return sum
	}

	passes := 0
	iter := 0
	for passes < p.MaxPasses && iter < p.MaxIter {
		changed := 0
		for i := 0; i < n; i++ {
			Ei := f(i) - y[i]
			if (y[i]*Ei < -p.Tol && alpha[i] < p.C) || (y[i]*Ei > p.Tol && alpha[i] > 0) {
				j := rng.Intn(n - 1)
				if j >= i {
					j++
				}
				Ej := f(j) - y[j]
				ai, aj := alpha[i], alpha[j]
				var L, H float64
				if y[i] != y[j] {
					L = math.Max(0, aj-ai)
					H = math.Min(p.C, p.C+aj-ai)
				} else {
					L = math.Max(0, ai+aj-p.C)
					H = math.Min(p.C, ai+aj)
				}
				if L == H {
					continue
				}
				eta := 2*K[i][j] - K[i][i] - K[j][j]
				if eta >= 0 {
					continue
				}
				ajNew := aj - y[j]*(Ei-Ej)/eta
				if ajNew > H {
					ajNew = H
				} else if ajNew < L {
					ajNew = L
				}
				if math.Abs(ajNew-aj) < 1e-5 {
					continue
				}
				aiNew := ai + y[i]*y[j]*(aj-ajNew)
				b1 := b - Ei - y[i]*(aiNew-ai)*K[i][i] - y[j]*(ajNew-aj)*K[i][j]
				b2 := b - Ej - y[i]*(aiNew-ai)*K[i][j] - y[j]*(ajNew-aj)*K[j][j]
				switch {
				case aiNew > 0 && aiNew < p.C:
					b = b1
				case ajNew > 0 && ajNew < p.C:
					b = b2
				default:
					b = (b1 + b2) / 2
				}
				alpha[i], alpha[j] = aiNew, ajNew
				changed++
			}
		}
		if changed == 0 {
			passes++
		} else {
			passes = 0
		}
		iter++
	}

	// Compact to support vectors.
	var mach binarySVM
	mach.b = b
	for i := 0; i < n; i++ {
		if alpha[i] > 1e-12 {
			mach.alphaY = append(mach.alphaY, alpha[i]*y[i])
			mach.sv = append(mach.sv, X[i])
		}
	}
	// Decision values on the training set for Platt calibration.
	dec := make([]float64, n)
	labels := make([]bool, n)
	for i := 0; i < n; i++ {
		dec[i] = mach.decision(m, X[i])
		labels[i] = y[i] > 0
	}
	mach.plattA, mach.plattB = plattFit(dec, labels)
	return mach, nil
}

func (s *binarySVM) decision(m *Model, x []float64) float64 {
	sum := s.b
	for i, sv := range s.sv {
		sum += s.alphaY[i] * m.kernel(sv, x)
	}
	return sum
}

func (s *binarySVM) proba(m *Model, x []float64) float64 {
	f := s.decision(m, x)
	return 1 / (1 + math.Exp(s.plattA*f+s.plattB))
}

// PredictProba returns normalized one-vs-rest Platt probabilities.
func (m *Model) PredictProba(X [][]float64) ([][]float64, error) {
	if m.machines == nil {
		return nil, ml.ErrNotFitted
	}
	out := make([][]float64, len(X))
	for i, row := range X {
		p := make([]float64, m.classes)
		if m.classes == 2 {
			p1 := m.machines[0].proba(m, row)
			p[0], p[1] = p1, 1-p1
			// Machine 0 separates class 0 (+1) from class 1 (-1).
		} else {
			for c := range m.machines {
				p[c] = m.machines[c].proba(m, row)
			}
			ml.Normalize(p)
		}
		out[i] = p
	}
	return out, nil
}

// plattFit fits sigmoid parameters (A, B) minimizing the calibration NLL
// via the robust Newton iteration of Lin, Lin & Weng (2007).
func plattFit(dec []float64, pos []bool) (a, b float64) {
	n := len(dec)
	var np, nn float64
	for _, isPos := range pos {
		if isPos {
			np++
		} else {
			nn++
		}
	}
	hi := (np + 1) / (np + 2)
	lo := 1 / (nn + 2)
	t := make([]float64, n)
	for i, isPos := range pos {
		if isPos {
			t[i] = hi
		} else {
			t[i] = lo
		}
	}
	a = 0
	b = math.Log((nn + 1) / (np + 1))
	const (
		maxIter = 100
		minStep = 1e-10
		sigma   = 1e-12
	)
	fval := 0.0
	for i := 0; i < n; i++ {
		fApB := dec[i]*a + b
		if fApB >= 0 {
			fval += t[i]*fApB + math.Log1p(math.Exp(-fApB))
		} else {
			fval += (t[i]-1)*fApB + math.Log1p(math.Exp(fApB))
		}
	}
	for it := 0; it < maxIter; it++ {
		var h11, h22, h21, g1, g2 float64
		h11, h22 = sigma, sigma
		for i := 0; i < n; i++ {
			fApB := dec[i]*a + b
			var p, q float64
			if fApB >= 0 {
				e := math.Exp(-fApB)
				p = e / (1 + e)
				q = 1 / (1 + e)
			} else {
				e := math.Exp(fApB)
				p = 1 / (1 + e)
				q = e / (1 + e)
			}
			d2 := p * q
			h11 += dec[i] * dec[i] * d2
			h22 += d2
			h21 += dec[i] * d2
			d1 := t[i] - p
			g1 += dec[i] * d1
			g2 += d1
		}
		if math.Abs(g1) < 1e-5 && math.Abs(g2) < 1e-5 {
			break
		}
		det := h11*h22 - h21*h21
		dA := -(h22*g1 - h21*g2) / det
		dB := -(-h21*g1 + h11*g2) / det
		gd := g1*dA + g2*dB
		step := 1.0
		for step >= minStep {
			newA := a + step*dA
			newB := b + step*dB
			newF := 0.0
			for i := 0; i < n; i++ {
				fApB := dec[i]*newA + newB
				if fApB >= 0 {
					newF += t[i]*fApB + math.Log1p(math.Exp(-fApB))
				} else {
					newF += (t[i]-1)*fApB + math.Log1p(math.Exp(fApB))
				}
			}
			if newF < fval+1e-4*step*gd {
				a, b, fval = newA, newB, newF
				break
			}
			step /= 2
		}
		if step < minStep {
			break
		}
	}
	return a, b
}
