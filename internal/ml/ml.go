// Package ml provides the shared machine-learning substrate for the MVG
// pipeline: the Classifier interface implemented by every model family
// (trees, forests, boosting, SVM, kNN, logistic regression, stacking),
// classification metrics, and feature scaling.
package ml

import (
	"errors"
	"fmt"
	"math"
)

// Classifier is a trainable multi-class classification model.
//
// Fit trains on feature matrix X (rows are samples) with labels y in
// [0, classes). PredictProba returns one probability vector per row of X,
// each of length classes and summing to one. Clone returns a fresh,
// untrained model with identical hyper-parameters (used by cross
// validation and stacking, which train many copies).
type Classifier interface {
	Fit(X [][]float64, y []int, classes int) error
	PredictProba(X [][]float64) ([][]float64, error)
	Clone() Classifier
}

// Named is implemented by classifiers that can describe their configured
// hyper-parameters; used in experiment reports.
type Named interface {
	Name() string
}

// Common validation errors.
var (
	ErrNoData        = errors.New("ml: empty training set")
	ErrBadLabels     = errors.New("ml: labels out of range")
	ErrNotFitted     = errors.New("ml: model is not fitted")
	ErrShapeMismatch = errors.New("ml: X and y shape mismatch")
)

// CheckTrainingSet validates a (X, y, classes) triple.
func CheckTrainingSet(X [][]float64, y []int, classes int) error {
	if len(X) == 0 {
		return ErrNoData
	}
	if len(X) != len(y) {
		return fmt.Errorf("%w: %d rows, %d labels", ErrShapeMismatch, len(X), len(y))
	}
	if classes < 2 {
		return fmt.Errorf("ml: need at least 2 classes, got %d", classes)
	}
	width := len(X[0])
	for i, row := range X {
		if len(row) != width {
			return fmt.Errorf("%w: row %d has %d features, row 0 has %d",
				ErrShapeMismatch, i, len(row), width)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("ml: non-finite feature X[%d][%d]=%v", i, j, v)
			}
		}
	}
	for i, label := range y {
		if label < 0 || label >= classes {
			return fmt.Errorf("%w: y[%d]=%d with %d classes", ErrBadLabels, i, label, classes)
		}
	}
	return nil
}

// Predict reduces probability vectors to hard labels via argmax.
func Predict(proba [][]float64) []int {
	out := make([]int, len(proba))
	for i, p := range proba {
		out[i] = ArgMax(p)
	}
	return out
}

// ArgMax returns the index of the largest value (first on ties).
func ArgMax(p []float64) int {
	best := 0
	for i := 1; i < len(p); i++ {
		if p[i] > p[best] {
			best = i
		}
	}
	return best
}

// Accuracy returns the fraction of matching labels.
func Accuracy(pred, truth []int) float64 {
	if len(pred) == 0 || len(pred) != len(truth) {
		return 0
	}
	hit := 0
	for i := range pred {
		if pred[i] == truth[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(pred))
}

// ErrorRate is 1 - Accuracy — the measure reported throughout the paper.
func ErrorRate(pred, truth []int) float64 {
	if len(pred) == 0 {
		return 0
	}
	return 1 - Accuracy(pred, truth)
}

// LogLoss returns the mean cross entropy −log P(ŷ|y) (equation 5 of the
// paper) of predicted probability vectors against true labels, with
// probabilities clipped away from 0 and 1 for numerical stability.
func LogLoss(proba [][]float64, truth []int) float64 {
	const eps = 1e-15
	if len(proba) == 0 || len(proba) != len(truth) {
		return math.Inf(1)
	}
	total := 0.0
	for i, p := range proba {
		c := truth[i]
		if c < 0 || c >= len(p) {
			return math.Inf(1)
		}
		v := p[c]
		if v < eps {
			v = eps
		}
		if v > 1-eps {
			v = 1 - eps
		}
		total += -math.Log(v)
	}
	return total / float64(len(proba))
}

// NumClasses returns 1 + max(y), the label-count convention used when a
// caller does not track class counts separately.
func NumClasses(y []int) int {
	maxLabel := -1
	for _, v := range y {
		if v > maxLabel {
			maxLabel = v
		}
	}
	return maxLabel + 1
}

// ClassCounts tallies label frequencies into a slice of length classes.
func ClassCounts(y []int, classes int) []int {
	counts := make([]int, classes)
	for _, v := range y {
		if v >= 0 && v < classes {
			counts[v]++
		}
	}
	return counts
}

// Uniform returns the uniform probability vector of length k.
func Uniform(k int) []float64 {
	p := make([]float64, k)
	for i := range p {
		p[i] = 1 / float64(k)
	}
	return p
}

// Normalize scales a non-negative vector to sum to one in place, falling
// back to uniform when the sum is not positive, and returns it.
func Normalize(p []float64) []float64 {
	sum := 0.0
	for _, v := range p {
		sum += v
	}
	if sum <= 0 {
		copy(p, Uniform(len(p)))
		return p
	}
	for i := range p {
		p[i] /= sum
	}
	return p
}
