package forest

import (
	"testing"

	"mvg/internal/ml"
	"mvg/internal/ml/mltest"
)

func TestConformance(t *testing.T) {
	mltest.Conformance(t, "forest", func() ml.Classifier {
		return New(Params{NumTrees: 30, Seed: 1})
	})
}

func TestDeterministicAcrossRuns(t *testing.T) {
	X, y := mltest.Blobs(100, 3, 4, 1.2, 21)
	run := func() [][]float64 {
		f := New(Params{NumTrees: 20, Seed: 42})
		if err := f.Fit(X, y, 3); err != nil {
			t.Fatal(err)
		}
		proba, err := f.PredictProba(X[:10])
		if err != nil {
			t.Fatal(err)
		}
		return proba
	}
	a, b := run(), run()
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("forest predictions differ across identical runs at [%d][%d]", i, j)
			}
		}
	}
}

func TestLearnsXOR(t *testing.T) {
	X, y := mltest.XOR(300, 5)
	f := New(Params{NumTrees: 40, Seed: 2})
	if err := f.Fit(X, y, 2); err != nil {
		t.Fatal(err)
	}
	testX, testY := mltest.XOR(200, 77)
	proba, err := f.PredictProba(testX)
	if err != nil {
		t.Fatal(err)
	}
	if acc := ml.Accuracy(ml.Predict(proba), testY); acc < 0.85 {
		t.Errorf("XOR test accuracy = %v, want ≥0.85", acc)
	}
}

func TestMoreTreesSmoothProbabilities(t *testing.T) {
	X, y := mltest.Blobs(80, 2, 3, 1.8, 3)
	small := New(Params{NumTrees: 1, Seed: 9})
	big := New(Params{NumTrees: 200, Seed: 9})
	if err := small.Fit(X, y, 2); err != nil {
		t.Fatal(err)
	}
	if err := big.Fit(X, y, 2); err != nil {
		t.Fatal(err)
	}
	testX, testY := mltest.Blobs(100, 2, 3, 1.8, 31)
	ps, _ := small.PredictProba(testX)
	pb, _ := big.PredictProba(testX)
	if ml.LogLoss(pb, testY) >= ml.LogLoss(ps, testY) {
		t.Errorf("bagging should reduce log loss: 1 tree %v vs 200 trees %v",
			ml.LogLoss(ps, testY), ml.LogLoss(pb, testY))
	}
}
