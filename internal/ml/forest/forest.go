// Package forest implements a random forest classifier: bootstrap-bagged
// CART trees with per-node feature subsampling (Breiman 2001), one of the
// three generic classifier families the paper feeds MVG features into.
package forest

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"mvg/internal/ml"
	"mvg/internal/ml/cart"
)

// Params configures the forest.
type Params struct {
	// NumTrees is the ensemble size (default 100).
	NumTrees int
	// MaxDepth limits individual trees; 0 means unlimited.
	MaxDepth int
	// MinSamplesLeaf per tree (default 1).
	MinSamplesLeaf int
	// MaxFeatures per node; 0 means √p (the standard default).
	MaxFeatures int
	// Seed drives bootstrapping and feature subsampling.
	Seed int64
}

func (p Params) withDefaults() Params {
	if p.NumTrees <= 0 {
		p.NumTrees = 100
	}
	return p
}

// Forest is a fitted random forest implementing ml.Classifier.
type Forest struct {
	P       Params
	trees   []*cart.Tree
	classes int
}

// New returns an untrained forest.
func New(p Params) *Forest { return &Forest{P: p} }

// Clone returns a fresh untrained forest with identical parameters.
func (f *Forest) Clone() ml.Classifier { return &Forest{P: f.P} }

// Name implements ml.Named.
func (f *Forest) Name() string {
	p := f.P.withDefaults()
	return fmt.Sprintf("rf(trees=%d,depth=%d)", p.NumTrees, p.MaxDepth)
}

// Fit trains NumTrees trees on bootstrap resamples in parallel.
func (f *Forest) Fit(X [][]float64, y []int, classes int) error {
	if err := ml.CheckTrainingSet(X, y, classes); err != nil {
		return err
	}
	p := f.P.withDefaults()
	maxFeatures := p.MaxFeatures
	if maxFeatures <= 0 {
		maxFeatures = int(math.Sqrt(float64(len(X[0]))))
		if maxFeatures < 1 {
			maxFeatures = 1
		}
	}
	f.classes = classes
	f.trees = make([]*cart.Tree, p.NumTrees)

	// Pre-draw independent seeds so the result is deterministic regardless
	// of goroutine scheduling.
	seedRng := rand.New(rand.NewSource(p.Seed))
	seeds := make([]int64, p.NumTrees)
	for i := range seeds {
		seeds[i] = seedRng.Int63()
	}

	workers := runtime.NumCPU()
	if workers > p.NumTrees {
		workers = p.NumTrees
	}
	errs := make([]error, p.NumTrees)
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range jobs {
				rng := rand.New(rand.NewSource(seeds[t]))
				bx := make([][]float64, len(X))
				by := make([]int, len(y))
				for i := range bx {
					j := rng.Intn(len(X))
					bx[i] = X[j]
					by[i] = y[j]
				}
				tree := cart.New(cart.Params{
					MaxDepth:       p.MaxDepth,
					MinSamplesLeaf: p.MinSamplesLeaf,
					MaxFeatures:    maxFeatures,
					Seed:           rng.Int63(),
				})
				if err := tree.Fit(bx, by, classes); err != nil {
					errs[t] = err
					continue
				}
				f.trees[t] = tree
			}
		}()
	}
	for t := 0; t < p.NumTrees; t++ {
		jobs <- t
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// PredictProba averages the leaf distributions of all trees.
func (f *Forest) PredictProba(X [][]float64) ([][]float64, error) {
	if f.trees == nil {
		return nil, ml.ErrNotFitted
	}
	out := make([][]float64, len(X))
	for i := range out {
		out[i] = make([]float64, f.classes)
	}
	for _, tree := range f.trees {
		probs, err := tree.PredictProba(X)
		if err != nil {
			return nil, err
		}
		for i, p := range probs {
			for c, v := range p {
				out[i][c] += v
			}
		}
	}
	for i := range out {
		ml.Normalize(out[i])
	}
	return out, nil
}
