package ml

// MinMaxScaler rescales each feature to [0, 1] based on training-set
// minima and maxima — required by the SVM family (Section 4.3 of the
// paper: kernel methods are sensitive to feature magnitudes, tree
// ensembles are not). Constant features map to 0.
type MinMaxScaler struct {
	Min   []float64
	Range []float64 // max - min; 0 marks constant features
}

// Fit learns per-feature minima and ranges.
func (s *MinMaxScaler) Fit(X [][]float64) error {
	if len(X) == 0 {
		return ErrNoData
	}
	w := len(X[0])
	s.Min = make([]float64, w)
	maxs := make([]float64, w)
	copy(s.Min, X[0])
	copy(maxs, X[0])
	for _, row := range X[1:] {
		if len(row) != w {
			return ErrShapeMismatch
		}
		for j, v := range row {
			if v < s.Min[j] {
				s.Min[j] = v
			}
			if v > maxs[j] {
				maxs[j] = v
			}
		}
	}
	s.Range = make([]float64, w)
	for j := range s.Range {
		s.Range[j] = maxs[j] - s.Min[j]
	}
	return nil
}

// Transform returns scaled copies of the rows. Values outside the training
// range extrapolate beyond [0, 1], which downstream models tolerate.
func (s *MinMaxScaler) Transform(X [][]float64) ([][]float64, error) {
	if s.Min == nil {
		return nil, ErrNotFitted
	}
	out := make([][]float64, len(X))
	for i, row := range X {
		if len(row) != len(s.Min) {
			return nil, ErrShapeMismatch
		}
		r := make([]float64, len(row))
		for j, v := range row {
			if s.Range[j] > 0 {
				r[j] = (v - s.Min[j]) / s.Range[j]
			}
		}
		out[i] = r
	}
	return out, nil
}

// FitTransform fits on X and returns its scaled rows.
func (s *MinMaxScaler) FitTransform(X [][]float64) ([][]float64, error) {
	if err := s.Fit(X); err != nil {
		return nil, err
	}
	return s.Transform(X)
}
