// Package cart implements CART-style binary classification trees with gini
// impurity and exact greedy splits. It is the base learner of the random
// forest (internal/ml/forest); the boosting package grows its own
// second-order regression trees.
package cart

import (
	"math"
	"math/rand"
	"sort"

	"mvg/internal/ml"
)

// Params configures tree induction.
type Params struct {
	// MaxDepth limits tree depth; 0 means unlimited.
	MaxDepth int
	// MinSamplesLeaf is the minimum number of training samples per leaf
	// (default 1).
	MinSamplesLeaf int
	// MinSamplesSplit is the minimum number of samples required to attempt
	// a split (default 2).
	MinSamplesSplit int
	// MaxFeatures is the number of features examined per node; 0 means all
	// (set to √p by the random forest).
	MaxFeatures int
	// Seed drives feature subsampling.
	Seed int64
}

func (p Params) withDefaults() Params {
	if p.MinSamplesLeaf <= 0 {
		p.MinSamplesLeaf = 1
	}
	if p.MinSamplesSplit < 2 {
		p.MinSamplesSplit = 2
	}
	return p
}

// node is one tree node; leaves carry class probabilities.
type node struct {
	feature   int32 // -1 for leaves
	threshold float64
	left      int32
	right     int32
	probs     []float64
}

// Tree is a fitted classification tree implementing ml.Classifier.
type Tree struct {
	P       Params
	nodes   []node
	classes int
}

// New returns an untrained tree with the given parameters.
func New(p Params) *Tree { return &Tree{P: p} }

// Clone returns a fresh untrained tree with identical parameters.
func (t *Tree) Clone() ml.Classifier { return &Tree{P: t.P} }

// Name implements ml.Named.
func (t *Tree) Name() string { return "cart" }

// builder carries shared state during induction.
type builder struct {
	X        [][]float64
	y        []int
	classes  int
	p        Params
	rng      *rand.Rand
	nodes    []node
	sampleW  []float64 // optional sample weights (nil = unweighted)
	features []int     // scratch for feature subsampling
}

// Fit grows the tree on (X, y).
func (t *Tree) Fit(X [][]float64, y []int, classes int) error {
	if err := ml.CheckTrainingSet(X, y, classes); err != nil {
		return err
	}
	t.classes = classes
	t.P = t.P.withDefaults()
	b := &builder{
		X:       X,
		y:       y,
		classes: classes,
		p:       t.P,
		rng:     rand.New(rand.NewSource(t.P.Seed)),
	}
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	b.grow(idx, 0)
	t.nodes = b.nodes
	return nil
}

// FitWeighted grows the tree with per-sample weights (used by boosting-like
// callers and oversampling-free class weighting).
func (t *Tree) FitWeighted(X [][]float64, y []int, classes int, w []float64) error {
	if err := ml.CheckTrainingSet(X, y, classes); err != nil {
		return err
	}
	if len(w) != len(X) {
		return ml.ErrShapeMismatch
	}
	t.classes = classes
	t.P = t.P.withDefaults()
	b := &builder{
		X:       X,
		y:       y,
		classes: classes,
		p:       t.P,
		rng:     rand.New(rand.NewSource(t.P.Seed)),
		sampleW: w,
	}
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	b.grow(idx, 0)
	t.nodes = b.nodes
	return nil
}

func (b *builder) weight(i int) float64 {
	if b.sampleW == nil {
		return 1
	}
	return b.sampleW[i]
}

// leaf creates a leaf node from the samples' class distribution.
func (b *builder) leaf(idx []int) int32 {
	probs := make([]float64, b.classes)
	for _, i := range idx {
		probs[b.y[i]] += b.weight(i)
	}
	ml.Normalize(probs)
	b.nodes = append(b.nodes, node{feature: -1, probs: probs})
	return int32(len(b.nodes) - 1)
}

// gini returns the gini impurity of a weighted class histogram.
func gini(counts []float64, total float64) float64 {
	if total <= 0 {
		return 0
	}
	sumSq := 0.0
	for _, c := range counts {
		sumSq += c * c
	}
	return 1 - sumSq/(total*total)
}

// candidateFeatures returns the feature indices examined at one node.
func (b *builder) candidateFeatures(width int) []int {
	if b.p.MaxFeatures <= 0 || b.p.MaxFeatures >= width {
		if b.features == nil {
			b.features = make([]int, width)
			for i := range b.features {
				b.features[i] = i
			}
		}
		return b.features
	}
	// Partial Fisher-Yates over a reusable index slice.
	if b.features == nil {
		b.features = make([]int, width)
		for i := range b.features {
			b.features[i] = i
		}
	}
	for i := 0; i < b.p.MaxFeatures; i++ {
		j := i + b.rng.Intn(width-i)
		b.features[i], b.features[j] = b.features[j], b.features[i]
	}
	return b.features[:b.p.MaxFeatures]
}

// grow recursively builds the subtree over idx and returns its node index.
func (b *builder) grow(idx []int, depth int) int32 {
	pure := true
	first := b.y[idx[0]]
	for _, i := range idx[1:] {
		if b.y[i] != first {
			pure = false
			break
		}
	}
	if pure || len(idx) < b.p.MinSamplesSplit ||
		(b.p.MaxDepth > 0 && depth >= b.p.MaxDepth) {
		return b.leaf(idx)
	}

	bestFeature := -1
	bestThreshold := 0.0
	bestScore := math.Inf(1)

	total := 0.0
	parentCounts := make([]float64, b.classes)
	for _, i := range idx {
		w := b.weight(i)
		parentCounts[b.y[i]] += w
		total += w
	}
	parentGini := gini(parentCounts, total)

	order := make([]int, len(idx))
	left := make([]float64, b.classes)
	for _, f := range b.candidateFeatures(len(b.X[0])) {
		copy(order, idx)
		sort.Slice(order, func(a, c int) bool { return b.X[order[a]][f] < b.X[order[c]][f] })
		for i := range left {
			left[i] = 0
		}
		leftTotal := 0.0
		leftCount := 0
		for k := 0; k+1 < len(order); k++ {
			i := order[k]
			w := b.weight(i)
			left[b.y[i]] += w
			leftTotal += w
			leftCount++
			v, next := b.X[i][f], b.X[order[k+1]][f]
			if v == next {
				continue // cannot split between equal values
			}
			if leftCount < b.p.MinSamplesLeaf || len(order)-leftCount < b.p.MinSamplesLeaf {
				continue
			}
			rightTotal := total - leftTotal
			score := 0.0
			// Weighted child gini.
			{
				sumSq := 0.0
				for _, c := range left {
					sumSq += c * c
				}
				if leftTotal > 0 {
					score += leftTotal * (1 - sumSq/(leftTotal*leftTotal))
				}
				sumSq = 0
				for ci, c := range parentCounts {
					r := c - left[ci]
					sumSq += r * r
				}
				if rightTotal > 0 {
					score += rightTotal * (1 - sumSq/(rightTotal*rightTotal))
				}
			}
			score /= total
			if score < bestScore {
				bestScore = score
				bestFeature = f
				bestThreshold = (v + next) / 2
			}
		}
	}

	if bestFeature < 0 || bestScore >= parentGini-1e-12 {
		return b.leaf(idx)
	}

	var leftIdx, rightIdx []int
	for _, i := range idx {
		if b.X[i][bestFeature] <= bestThreshold {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	if len(leftIdx) == 0 || len(rightIdx) == 0 {
		return b.leaf(idx)
	}

	self := int32(len(b.nodes))
	b.nodes = append(b.nodes, node{feature: int32(bestFeature), threshold: bestThreshold})
	l := b.grow(leftIdx, depth+1)
	r := b.grow(rightIdx, depth+1)
	b.nodes[self].left = l
	b.nodes[self].right = r
	return self
}

// PredictProba returns leaf class distributions for each row.
func (t *Tree) PredictProba(X [][]float64) ([][]float64, error) {
	if t.nodes == nil {
		return nil, ml.ErrNotFitted
	}
	out := make([][]float64, len(X))
	for i, row := range X {
		p := t.predictRow(row)
		cp := make([]float64, len(p))
		copy(cp, p)
		out[i] = cp
	}
	return out, nil
}

func (t *Tree) predictRow(row []float64) []float64 {
	n := &t.nodes[0]
	for n.feature >= 0 {
		if row[n.feature] <= n.threshold {
			n = &t.nodes[n.left]
		} else {
			n = &t.nodes[n.right]
		}
	}
	return n.probs
}

// Depth returns the maximum depth of the fitted tree (root = 0).
func (t *Tree) Depth() int {
	if len(t.nodes) == 0 {
		return 0
	}
	var walk func(i int32, d int) int
	walk = func(i int32, d int) int {
		n := t.nodes[i]
		if n.feature < 0 {
			return d
		}
		l := walk(n.left, d+1)
		r := walk(n.right, d+1)
		if l > r {
			return l
		}
		return r
	}
	return walk(0, 0)
}

// NumNodes returns the number of nodes in the fitted tree.
func (t *Tree) NumNodes() int { return len(t.nodes) }
