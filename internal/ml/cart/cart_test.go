package cart

import (
	"testing"

	"mvg/internal/ml"
	"mvg/internal/ml/mltest"
)

func TestConformance(t *testing.T) {
	mltest.Conformance(t, "cart", func() ml.Classifier {
		return New(Params{MaxDepth: 8})
	})
}

func TestLearnsXOR(t *testing.T) {
	X, y := mltest.XOR(200, 3)
	tree := New(Params{MaxDepth: 6})
	if err := tree.Fit(X, y, 2); err != nil {
		t.Fatal(err)
	}
	proba, err := tree.PredictProba(X)
	if err != nil {
		t.Fatal(err)
	}
	if acc := ml.Accuracy(ml.Predict(proba), y); acc < 0.95 {
		t.Errorf("XOR training accuracy = %v, want ≥0.95 (trees are non-linear)", acc)
	}
}

func TestMaxDepthRespected(t *testing.T) {
	X, y := mltest.Blobs(200, 2, 4, 1.5, 5)
	for _, depth := range []int{1, 2, 4} {
		tree := New(Params{MaxDepth: depth})
		if err := tree.Fit(X, y, 2); err != nil {
			t.Fatal(err)
		}
		if d := tree.Depth(); d > depth {
			t.Errorf("tree depth %d exceeds limit %d", d, depth)
		}
	}
}

func TestMinSamplesLeaf(t *testing.T) {
	X, y := mltest.Blobs(100, 2, 3, 1.5, 9)
	big := New(Params{MinSamplesLeaf: 1})
	small := New(Params{MinSamplesLeaf: 20})
	if err := big.Fit(X, y, 2); err != nil {
		t.Fatal(err)
	}
	if err := small.Fit(X, y, 2); err != nil {
		t.Fatal(err)
	}
	if small.NumNodes() >= big.NumNodes() {
		t.Errorf("larger MinSamplesLeaf should prune: %d vs %d nodes",
			small.NumNodes(), big.NumNodes())
	}
}

func TestPureNodeBecomesLeaf(t *testing.T) {
	// All samples the same class: a single leaf predicting it.
	X := [][]float64{{1}, {2}, {3}}
	y := []int{1, 1, 1}
	tree := New(Params{})
	if err := tree.Fit(X, y, 2); err != nil {
		t.Fatal(err)
	}
	if tree.NumNodes() != 1 {
		t.Errorf("pure data should give a single leaf, got %d nodes", tree.NumNodes())
	}
	proba, _ := tree.PredictProba([][]float64{{9}})
	if proba[0][1] != 1 {
		t.Errorf("pure leaf probs = %v", proba[0])
	}
}

func TestConstantFeaturesGiveLeaf(t *testing.T) {
	// No split possible: identical rows with mixed labels.
	X := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	y := []int{0, 1, 0, 1}
	tree := New(Params{})
	if err := tree.Fit(X, y, 2); err != nil {
		t.Fatal(err)
	}
	if tree.NumNodes() != 1 {
		t.Errorf("unsplittable data should give a leaf, got %d nodes", tree.NumNodes())
	}
	proba, _ := tree.PredictProba(X[:1])
	if proba[0][0] != 0.5 || proba[0][1] != 0.5 {
		t.Errorf("leaf probs = %v, want [0.5 0.5]", proba[0])
	}
}

func TestFitWeighted(t *testing.T) {
	// With overwhelming weight on class-1 samples, the root majority
	// should flip even though class 0 has more rows.
	X := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	y := []int{0, 0, 0, 1}
	tree := New(Params{})
	if err := tree.FitWeighted(X, y, 2, []float64{1, 1, 1, 100}); err != nil {
		t.Fatal(err)
	}
	proba, _ := tree.PredictProba(X[:1])
	if proba[0][1] < 0.9 {
		t.Errorf("weighted leaf probs = %v, want class 1 dominant", proba[0])
	}
	if err := tree.FitWeighted(X, y, 2, []float64{1}); err == nil {
		t.Error("weight length mismatch should fail")
	}
}
