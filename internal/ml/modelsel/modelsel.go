// Package modelsel provides the model-selection machinery of Section 3.2:
// stratified k-fold cross validation, grid search scored by cross entropy,
// and random oversampling of minority classes for imbalanced data.
package modelsel

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"mvg/internal/ml"
	"mvg/internal/parallel"
)

// StratifiedKFolds partitions sample indices into k folds preserving class
// proportions (the paper uses stratified 3-fold CV). Classes with fewer
// samples than folds still contribute to some folds; every index appears in
// exactly one fold.
func StratifiedKFolds(y []int, k int, seed int64) ([][]int, error) {
	if k < 2 {
		return nil, fmt.Errorf("modelsel: need k >= 2 folds, got %d", k)
	}
	if len(y) < k {
		return nil, fmt.Errorf("modelsel: %d samples cannot fill %d folds", len(y), k)
	}
	rng := rand.New(rand.NewSource(seed))
	byClass := map[int][]int{}
	for i, label := range y {
		byClass[label] = append(byClass[label], i)
	}
	labels := make([]int, 0, len(byClass))
	for label := range byClass {
		labels = append(labels, label)
	}
	sort.Ints(labels)
	folds := make([][]int, k)
	next := 0
	for _, label := range labels {
		idx := byClass[label]
		rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		for _, i := range idx {
			folds[next%k] = append(folds[next%k], i)
			next++
		}
	}
	for fi, fold := range folds {
		if len(fold) == 0 {
			return nil, fmt.Errorf("modelsel: fold %d empty", fi)
		}
		sort.Ints(fold)
	}
	return folds, nil
}

// Split materializes the train/validation matrices for one held-out fold.
func Split(X [][]float64, y []int, folds [][]int, hold int) (trX [][]float64, trY []int, vaX [][]float64, vaY []int) {
	inHold := map[int]bool{}
	for _, i := range folds[hold] {
		inHold[i] = true
	}
	for i := range X {
		if inHold[i] {
			vaX = append(vaX, X[i])
			vaY = append(vaY, y[i])
		} else {
			trX = append(trX, X[i])
			trY = append(trY, y[i])
		}
	}
	return
}

// Oversample balances classes by sampling minority-class rows with
// replacement until every class matches the majority count (Section 3.2).
// Rows are shared, not copied. The returned order is shuffled.
func Oversample(X [][]float64, y []int, classes int, seed int64) ([][]float64, []int) {
	counts := ml.ClassCounts(y, classes)
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	rng := rand.New(rand.NewSource(seed))
	outX := make([][]float64, 0, maxCount*classes)
	outY := make([]int, 0, maxCount*classes)
	outX = append(outX, X...)
	outY = append(outY, y...)
	byClass := make([][]int, classes)
	for i, label := range y {
		byClass[label] = append(byClass[label], i)
	}
	for c, idx := range byClass {
		if len(idx) == 0 {
			continue
		}
		for extra := counts[c]; extra < maxCount; extra++ {
			j := idx[rng.Intn(len(idx))]
			outX = append(outX, X[j])
			outY = append(outY, c)
		}
	}
	rng.Shuffle(len(outX), func(a, b int) {
		outX[a], outX[b] = outX[b], outX[a]
		outY[a], outY[b] = outY[b], outY[a]
	})
	return outX, outY
}

// CVResult reports one candidate's cross-validation outcome.
type CVResult struct {
	Candidate ml.Classifier
	// LogLoss is the mean validation cross entropy across folds
	// (equation 5 — the paper's model-selection score).
	LogLoss float64
	// ErrorRate is the mean validation error rate across folds.
	ErrorRate float64
}

// CrossValidate scores one candidate configuration with stratified k-fold
// CV, optionally oversampling each training split. The context is checked
// between folds, so a cancelled grid search stops mid-candidate rather
// than finishing every remaining fold.
func CrossValidate(ctx context.Context, c ml.Classifier, X [][]float64, y []int, classes, folds int, oversample bool, seed int64) (CVResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	fs, err := StratifiedKFolds(y, folds, seed)
	if err != nil {
		return CVResult{}, err
	}
	var totalLL, totalER float64
	for hold := range fs {
		if err := ctx.Err(); err != nil {
			return CVResult{}, err
		}
		trX, trY, vaX, vaY := Split(X, y, fs, hold)
		if oversample {
			trX, trY = Oversample(trX, trY, classes, seed+int64(hold))
		}
		model := c.Clone()
		if err := model.Fit(trX, trY, classes); err != nil {
			return CVResult{}, fmt.Errorf("modelsel: fold %d: %w", hold, err)
		}
		proba, err := model.PredictProba(vaX)
		if err != nil {
			return CVResult{}, err
		}
		totalLL += ml.LogLoss(proba, vaY)
		totalER += ml.ErrorRate(ml.Predict(proba), vaY)
	}
	n := float64(len(fs))
	return CVResult{Candidate: c, LogLoss: totalLL / n, ErrorRate: totalER / n}, nil
}

// GridSearch cross-validates every candidate on the given executor — the
// persistent pool of an mvg.Pipeline, or parallel.Limit(workers) for
// one-shot searches (run == nil defaults to Limit(0), i.e. GOMAXPROCS
// per-call goroutines) — and returns the results sorted by ascending log
// loss (best first, original grid order breaking ties so the outcome is
// deterministic regardless of the worker count). The context cancels the
// search between cross-validation jobs, returning ctx.Err(). Candidates
// that fail to train are skipped; an error is returned only if all fail.
func GridSearch(ctx context.Context, run parallel.Runner, candidates []ml.Classifier, X [][]float64, y []int, classes, folds int, oversample bool, seed int64) ([]CVResult, error) {
	if len(candidates) == 0 {
		return nil, fmt.Errorf("modelsel: no candidates")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if run == nil {
		run = parallel.Limit(0)
	}
	type slot struct {
		res CVResult
		err error
	}
	slots := make([]slot, len(candidates))
	err := run.Run(ctx, len(candidates), func(i int) error {
		slots[i].res, slots[i].err = CrossValidate(ctx, candidates[i], X, y, classes, folds, oversample, seed)
		return nil // per-candidate failures are tolerated below
	})
	if err != nil {
		return nil, err // cancellation (or executor shutdown), not a candidate failure
	}

	var results []CVResult
	var lastErr error
	for _, s := range slots {
		if s.err != nil {
			lastErr = s.err
			continue
		}
		results = append(results, s.res)
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("modelsel: every candidate failed: %w", lastErr)
	}
	sort.SliceStable(results, func(i, j int) bool { return results[i].LogLoss < results[j].LogLoss })
	return results, nil
}

// Best runs GridSearch and returns the winning configuration refitted on
// the full (optionally oversampled) training set. See GridSearch for the
// executor and cancellation semantics.
func Best(ctx context.Context, run parallel.Runner, candidates []ml.Classifier, X [][]float64, y []int, classes, folds int, oversample bool, seed int64) (ml.Classifier, []CVResult, error) {
	results, err := GridSearch(ctx, run, candidates, X, y, classes, folds, oversample, seed)
	if err != nil {
		return nil, nil, err
	}
	trX, trY := X, y
	if oversample {
		trX, trY = Oversample(X, y, classes, seed)
	}
	winner := results[0].Candidate.Clone()
	if err := winner.Fit(trX, trY, classes); err != nil {
		return nil, nil, err
	}
	return winner, results, nil
}
