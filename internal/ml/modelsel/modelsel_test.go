package modelsel

import (
	"context"
	"testing"

	"mvg/internal/ml"
	"mvg/internal/ml/cart"
	"mvg/internal/ml/mltest"
)

func TestStratifiedKFolds(t *testing.T) {
	y := []int{0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1}
	folds, err := StratifiedKFolds(y, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 3 {
		t.Fatalf("got %d folds", len(folds))
	}
	seen := map[int]int{}
	for _, fold := range folds {
		class0 := 0
		for _, i := range fold {
			seen[i]++
			if y[i] == 0 {
				class0++
			}
		}
		// Perfectly balanced labels must stratify 2/2 per fold.
		if class0 != 2 {
			t.Errorf("fold has %d class-0 samples, want 2", class0)
		}
	}
	if len(seen) != len(y) {
		t.Errorf("folds cover %d of %d indices", len(seen), len(y))
	}
	for i, c := range seen {
		if c != 1 {
			t.Errorf("index %d appears %d times", i, c)
		}
	}
}

func TestStratifiedKFoldsErrors(t *testing.T) {
	if _, err := StratifiedKFolds([]int{0, 1}, 1, 1); err == nil {
		t.Error("k=1 should fail")
	}
	if _, err := StratifiedKFolds([]int{0}, 2, 1); err == nil {
		t.Error("fewer samples than folds should fail")
	}
}

func TestSplit(t *testing.T) {
	X := [][]float64{{0}, {1}, {2}, {3}}
	y := []int{0, 0, 1, 1}
	folds := [][]int{{0, 2}, {1, 3}}
	trX, trY, vaX, vaY := Split(X, y, folds, 0)
	if len(trX) != 2 || len(vaX) != 2 {
		t.Fatalf("split sizes: %d/%d", len(trX), len(vaX))
	}
	if vaX[0][0] != 0 || vaX[1][0] != 2 {
		t.Errorf("validation rows wrong: %v", vaX)
	}
	if trY[0] != 0 || trY[1] != 1 {
		t.Errorf("train labels wrong: %v", trY)
	}
	_ = vaY
}

func TestOversampleBalances(t *testing.T) {
	X := [][]float64{{0}, {1}, {2}, {3}, {4}, {5}, {6}, {7}, {8}, {9}}
	y := []int{0, 0, 0, 0, 0, 0, 0, 0, 1, 1}
	ox, oy := Oversample(X, y, 2, 3)
	counts := ml.ClassCounts(oy, 2)
	if counts[0] != counts[1] {
		t.Errorf("oversampled counts = %v, want balanced", counts)
	}
	if len(ox) != len(oy) {
		t.Error("row/label mismatch after oversampling")
	}
	// Every oversampled minority row must be one of the originals.
	valid := map[float64]bool{8: true, 9: true}
	for i, label := range oy {
		if label == 1 && !valid[ox[i][0]] {
			t.Errorf("unknown minority row %v", ox[i])
		}
	}
}

func TestCrossValidateAndGridSearch(t *testing.T) {
	X, y := mltest.Blobs(90, 2, 4, 0.8, 5)
	good := cart.New(cart.Params{MaxDepth: 6})
	bad := cart.New(cart.Params{MaxDepth: 1, MinSamplesLeaf: 40})
	res, err := CrossValidate(context.Background(), good, X, y, 2, 3, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.ErrorRate > 0.15 {
		t.Errorf("CV error rate = %v for separable blobs", res.ErrorRate)
	}
	results, err := GridSearch(context.Background(), nil, []ml.Classifier{bad, good}, X, y, 2, 3, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	if results[0].LogLoss > results[1].LogLoss {
		t.Error("grid search results not sorted by log loss")
	}
	if results[0].Candidate != ml.Classifier(good) {
		t.Error("deeper tree should win on separable blobs")
	}
	if _, err := GridSearch(context.Background(), nil, nil, X, y, 2, 3, false, 1); err == nil {
		t.Error("empty grid should fail")
	}
}

func TestBestRefitsOnFullData(t *testing.T) {
	X, y := mltest.Blobs(90, 3, 4, 0.8, 9)
	cands := []ml.Classifier{
		cart.New(cart.Params{MaxDepth: 2}),
		cart.New(cart.Params{MaxDepth: 8}),
	}
	model, results, err := Best(context.Background(), nil, cands, X, y, 3, 3, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no results")
	}
	proba, err := model.PredictProba(X)
	if err != nil {
		t.Fatalf("winner is not fitted: %v", err)
	}
	if acc := ml.Accuracy(ml.Predict(proba), y); acc < 0.9 {
		t.Errorf("refit winner training accuracy = %v", acc)
	}
}
