package stack

import (
	"testing"

	"mvg/internal/ml"
	"mvg/internal/ml/cart"
	"mvg/internal/ml/linear"
	"mvg/internal/ml/mltest"
	"mvg/internal/ml/xgb"
)

func families() []Family {
	return []Family{
		{Name: "cart", Candidates: []ml.Classifier{
			cart.New(cart.Params{MaxDepth: 3}),
			cart.New(cart.Params{MaxDepth: 8}),
		}},
		{Name: "xgb", Candidates: []ml.Classifier{
			xgb.New(xgb.Params{NumRounds: 15, MaxDepth: 3, Seed: 1}),
		}},
		{Name: "logreg", Candidates: []ml.Classifier{
			linear.New(linear.Params{}),
		}},
	}
}

func TestConformance(t *testing.T) {
	mltest.Conformance(t, "stack", func() ml.Classifier {
		return New(Params{TopK: 1, Folds: 3, Seed: 1}, families()...)
	})
}

func TestMembersSelected(t *testing.T) {
	X, y := mltest.Blobs(90, 2, 4, 0.8, 3)
	e := New(Params{TopK: 2, Folds: 3, Seed: 1}, families()...)
	if err := e.Fit(X, y, 2); err != nil {
		t.Fatal(err)
	}
	members := e.Members()
	// cart contributes 2, xgb 1, logreg 1 → 4 members.
	if len(members) != 4 {
		t.Fatalf("got %d members, want 4", len(members))
	}
	counts := map[string]int{}
	for _, m := range members {
		counts[m.Family]++
		if m.CVScore < 0 {
			t.Errorf("member %s has negative CV score", m.Family)
		}
	}
	if counts["cart"] != 2 || counts["xgb"] != 1 || counts["logreg"] != 1 {
		t.Errorf("family counts = %v", counts)
	}
}

func TestStackingBeatsWorstBase(t *testing.T) {
	X, y := mltest.Blobs(120, 3, 4, 1.2, 7)
	testX, testY := mltest.Blobs(90, 3, 4, 1.2, 71)

	weak := cart.New(cart.Params{MaxDepth: 1})
	if err := weak.Fit(X, y, 3); err != nil {
		t.Fatal(err)
	}
	weakProba, _ := weak.PredictProba(testX)

	e := New(Params{TopK: 1, Folds: 3, Seed: 2},
		Family{Name: "weak", Candidates: []ml.Classifier{cart.New(cart.Params{MaxDepth: 1})}},
		Family{Name: "strong", Candidates: []ml.Classifier{xgb.New(xgb.Params{NumRounds: 20, MaxDepth: 3, Seed: 1})}},
	)
	if err := e.Fit(X, y, 3); err != nil {
		t.Fatal(err)
	}
	proba, err := e.PredictProba(testX)
	if err != nil {
		t.Fatal(err)
	}
	if ml.ErrorRate(ml.Predict(proba), testY) > ml.ErrorRate(ml.Predict(weakProba), testY) {
		t.Errorf("stack error %v worse than weakest base %v",
			ml.ErrorRate(ml.Predict(proba), testY),
			ml.ErrorRate(ml.Predict(weakProba), testY))
	}
}

func TestNoFamiliesFails(t *testing.T) {
	X, y := mltest.Blobs(30, 2, 2, 1.0, 1)
	e := New(Params{})
	if err := e.Fit(X, y, 2); err == nil {
		t.Error("fit with no families should fail")
	}
}

func TestOversampledStack(t *testing.T) {
	// Imbalanced blobs: stacking with oversampling must stay usable.
	X, y := mltest.Blobs(100, 2, 3, 0.9, 13)
	// Drop most of class 1 to create imbalance.
	var ix [][]float64
	var iy []int
	kept1 := 0
	for i := range X {
		if y[i] == 1 {
			if kept1 >= 12 {
				continue
			}
			kept1++
		}
		ix = append(ix, X[i])
		iy = append(iy, y[i])
	}
	e := New(Params{TopK: 1, Folds: 3, Oversample: true, Seed: 5}, families()...)
	if err := e.Fit(ix, iy, 2); err != nil {
		t.Fatal(err)
	}
	testX, testY := mltest.Blobs(80, 2, 3, 0.9, 131)
	proba, err := e.PredictProba(testX)
	if err != nil {
		t.Fatal(err)
	}
	if acc := ml.Accuracy(ml.Predict(proba), testY); acc < 0.85 {
		t.Errorf("imbalanced stack accuracy = %v", acc)
	}
}
