// Package stack implements stacked generalization (Wolpert 1992) following
// Algorithm 2 of the paper: candidate base classifiers are scored with
// stratified cross validation by cross entropy, the top-k per family are
// kept, and a logistic-regression meta-learner combines their out-of-fold
// probability predictions into the final ensemble.
package stack

import (
	"context"
	"fmt"
	"sort"

	"mvg/internal/ml"
	"mvg/internal/ml/linear"
	"mvg/internal/ml/modelsel"
	"mvg/internal/parallel"
)

// Family is a named pool of candidate configurations (e.g. every XGBoost
// hyper-parameter combination from the grid).
type Family struct {
	Name       string
	Candidates []ml.Classifier
}

// Params configures ensemble construction.
type Params struct {
	// TopK is the number of estimators kept per family (default 5, as in
	// Section 4.3).
	TopK int
	// Folds is the stratified CV fold count (default 3).
	Folds int
	// Oversample enables random oversampling of minority classes inside
	// every training split.
	Oversample bool
	// Seed drives fold assignment and oversampling.
	Seed int64
	// MetaL2 is the meta-learner's ridge penalty (default 1e-3).
	MetaL2 float64
	// Workers caps the worker goroutines used for candidate grid search
	// (<= 0 selects GOMAXPROCS; see internal/parallel).
	Workers int
}

func (p Params) withDefaults() Params {
	if p.TopK <= 0 {
		p.TopK = 5
	}
	if p.Folds < 2 {
		p.Folds = 3
	}
	if p.MetaL2 <= 0 {
		p.MetaL2 = 1e-3
	}
	return p
}

// Member records one selected base estimator.
type Member struct {
	Family  string
	CVScore float64 // cross-validation log loss
	model   ml.Classifier
}

// Ensemble is a fitted stacking ensemble implementing ml.Classifier.
type Ensemble struct {
	P        Params
	families []Family
	members  []Member
	meta     *linear.Model
	classes  int
}

// New returns an untrained ensemble over the given families.
func New(p Params, families ...Family) *Ensemble {
	return &Ensemble{P: p, families: families}
}

// Clone returns a fresh untrained ensemble with the same families; the
// base candidates themselves are cloned so no training state leaks.
func (e *Ensemble) Clone() ml.Classifier {
	fams := make([]Family, len(e.families))
	for i, f := range e.families {
		cands := make([]ml.Classifier, len(f.Candidates))
		for j, c := range f.Candidates {
			cands[j] = c.Clone()
		}
		fams[i] = Family{Name: f.Name, Candidates: cands}
	}
	return New(e.P, fams...)
}

// Name implements ml.Named.
func (e *Ensemble) Name() string {
	names := make([]string, len(e.families))
	for i, f := range e.families {
		names[i] = f.Name
	}
	return fmt.Sprintf("stack(%v,top%d)", names, e.P.withDefaults().TopK)
}

// Members lists the selected base estimators of a fitted ensemble.
func (e *Ensemble) Members() []Member { return e.members }

// Fit implements Algorithm 2:
//  1. score every candidate of every family with stratified k-fold CV on
//     cross entropy (lines 4–10),
//  2. keep the top-k per family (lines 11–12),
//  3. compute combination weights with a logistic-regression meta-learner
//     trained on out-of-fold base predictions (line 13),
//  4. refit every selected base estimator on the full training set.
//
// Fit satisfies ml.Classifier by running FitContext with a background
// context on a per-call executor capped at Params.Workers.
func (e *Ensemble) Fit(X [][]float64, y []int, classes int) error {
	return e.FitContext(context.Background(), parallel.Limit(e.P.Workers), X, y, classes)
}

// FitContext is Fit with cooperative cancellation and an explicit
// grid-search executor — mvg.Pipeline hands in its persistent pool here.
// The context is checked between grid-search jobs, folds and member
// refits; a cancelled fit returns ctx.Err().
func (e *Ensemble) FitContext(ctx context.Context, run parallel.Runner, X [][]float64, y []int, classes int) error {
	if err := ml.CheckTrainingSet(X, y, classes); err != nil {
		return err
	}
	if len(e.families) == 0 {
		return fmt.Errorf("stack: no families configured")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	p := e.P.withDefaults()
	e.P = p
	e.classes = classes
	e.members = e.members[:0]

	// 1–2: select top-k candidates per family by CV log loss.
	for _, fam := range e.families {
		results, err := modelsel.GridSearch(ctx, run, fam.Candidates, X, y, classes, p.Folds, p.Oversample, p.Seed)
		if err != nil {
			return fmt.Errorf("stack: family %s: %w", fam.Name, err)
		}
		k := p.TopK
		if k > len(results) {
			k = len(results)
		}
		for _, r := range results[:k] {
			e.members = append(e.members, Member{
				Family:  fam.Name,
				CVScore: r.LogLoss,
				model:   r.Candidate, // untrained configuration; refit below
			})
		}
	}
	sort.SliceStable(e.members, func(i, j int) bool { return e.members[i].CVScore < e.members[j].CVScore })

	// 3: build out-of-fold meta-features: for every member, its predicted
	// probability vector on each held-out sample.
	folds, err := modelsel.StratifiedKFolds(y, p.Folds, p.Seed)
	if err != nil {
		return err
	}
	metaX := make([][]float64, len(X))
	for i := range metaX {
		metaX[i] = make([]float64, len(e.members)*classes)
	}
	for hold := range folds {
		if err := ctx.Err(); err != nil {
			return err
		}
		trX, trY, _, _ := modelsel.Split(X, y, folds, hold)
		if p.Oversample {
			trX, trY = modelsel.Oversample(trX, trY, classes, p.Seed+int64(hold))
		}
		holdIdx := folds[hold]
		vaX := make([][]float64, len(holdIdx))
		for k, i := range holdIdx {
			vaX[k] = X[i]
		}
		for mi, member := range e.members {
			model := member.model.Clone()
			if err := model.Fit(trX, trY, classes); err != nil {
				return fmt.Errorf("stack: member %d fold %d: %w", mi, hold, err)
			}
			proba, err := model.PredictProba(vaX)
			if err != nil {
				return err
			}
			for k, i := range holdIdx {
				copy(metaX[i][mi*classes:(mi+1)*classes], proba[k])
			}
		}
	}
	e.meta = linear.New(linear.Params{L2: p.MetaL2, MaxIter: 300})
	if err := e.meta.Fit(metaX, y, classes); err != nil {
		return fmt.Errorf("stack: meta-learner: %w", err)
	}

	// 4: refit members on the full training set.
	trX, trY := X, y
	if p.Oversample {
		trX, trY = modelsel.Oversample(X, y, classes, p.Seed)
	}
	for mi := range e.members {
		if err := ctx.Err(); err != nil {
			return err
		}
		model := e.members[mi].model.Clone()
		if err := model.Fit(trX, trY, classes); err != nil {
			return fmt.Errorf("stack: refit member %d: %w", mi, err)
		}
		e.members[mi].model = model
	}
	return nil
}

// PredictProba feeds base-estimator probabilities through the meta-learner.
func (e *Ensemble) PredictProba(X [][]float64) ([][]float64, error) {
	if e.meta == nil {
		return nil, ml.ErrNotFitted
	}
	metaX := make([][]float64, len(X))
	for i := range metaX {
		metaX[i] = make([]float64, len(e.members)*e.classes)
	}
	for mi, member := range e.members {
		proba, err := member.model.PredictProba(X)
		if err != nil {
			return nil, err
		}
		for i := range X {
			copy(metaX[i][mi*e.classes:(mi+1)*e.classes], proba[i])
		}
	}
	return e.meta.PredictProba(metaX)
}
