package ml

import (
	"math"
	"testing"
)

func TestCheckTrainingSet(t *testing.T) {
	X := [][]float64{{1, 2}, {3, 4}}
	y := []int{0, 1}
	if err := CheckTrainingSet(X, y, 2); err != nil {
		t.Errorf("valid set rejected: %v", err)
	}
	if err := CheckTrainingSet(nil, nil, 2); err == nil {
		t.Error("empty set accepted")
	}
	if err := CheckTrainingSet(X, []int{0}, 2); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := CheckTrainingSet(X, y, 1); err == nil {
		t.Error("single class accepted")
	}
	if err := CheckTrainingSet(X, []int{0, 2}, 2); err == nil {
		t.Error("out-of-range label accepted")
	}
	if err := CheckTrainingSet([][]float64{{1}, {1, 2}}, y, 2); err == nil {
		t.Error("ragged matrix accepted")
	}
	if err := CheckTrainingSet([][]float64{{math.NaN()}, {1}}, y, 2); err == nil {
		t.Error("NaN feature accepted")
	}
}

func TestPredictAndArgMax(t *testing.T) {
	proba := [][]float64{{0.2, 0.8}, {0.9, 0.1}, {0.5, 0.5}}
	pred := Predict(proba)
	want := []int{1, 0, 0} // ties go to the first index
	for i := range want {
		if pred[i] != want[i] {
			t.Errorf("pred[%d] = %d, want %d", i, pred[i], want[i])
		}
	}
}

func TestAccuracyErrorRate(t *testing.T) {
	pred := []int{0, 1, 1, 0}
	truth := []int{0, 1, 0, 0}
	if got := Accuracy(pred, truth); got != 0.75 {
		t.Errorf("accuracy = %v", got)
	}
	if got := ErrorRate(pred, truth); got != 0.25 {
		t.Errorf("error rate = %v", got)
	}
	if Accuracy(nil, nil) != 0 {
		t.Error("empty accuracy should be 0")
	}
	if Accuracy([]int{1}, []int{1, 2}) != 0 {
		t.Error("mismatched lengths should give 0")
	}
}

func TestLogLoss(t *testing.T) {
	perfect := [][]float64{{1, 0}, {0, 1}}
	if got := LogLoss(perfect, []int{0, 1}); got > 1e-10 {
		t.Errorf("perfect log loss = %v", got)
	}
	uniform := [][]float64{{0.5, 0.5}}
	if got := LogLoss(uniform, []int{0}); math.Abs(got-math.Ln2) > 1e-12 {
		t.Errorf("uniform log loss = %v, want ln2", got)
	}
	// Confident wrong answers are clipped, not infinite.
	wrong := [][]float64{{0, 1}}
	if got := LogLoss(wrong, []int{0}); math.IsInf(got, 1) || got < 10 {
		t.Errorf("clipped wrong log loss = %v", got)
	}
	if !math.IsInf(LogLoss(nil, nil), 1) {
		t.Error("empty log loss should be +Inf")
	}
	if !math.IsInf(LogLoss([][]float64{{1}}, []int{5}), 1) {
		t.Error("label out of range should be +Inf")
	}
}

func TestNumClassesAndCounts(t *testing.T) {
	y := []int{0, 2, 1, 2}
	if got := NumClasses(y); got != 3 {
		t.Errorf("NumClasses = %d", got)
	}
	counts := ClassCounts(y, 3)
	if counts[0] != 1 || counts[1] != 1 || counts[2] != 2 {
		t.Errorf("ClassCounts = %v", counts)
	}
}

func TestUniformNormalize(t *testing.T) {
	u := Uniform(4)
	for _, v := range u {
		if v != 0.25 {
			t.Errorf("Uniform(4) = %v", u)
		}
	}
	p := Normalize([]float64{2, 6})
	if p[0] != 0.25 || p[1] != 0.75 {
		t.Errorf("Normalize = %v", p)
	}
	z := Normalize([]float64{0, 0})
	if z[0] != 0.5 || z[1] != 0.5 {
		t.Errorf("zero-vector Normalize = %v, want uniform", z)
	}
}

func TestMinMaxScaler(t *testing.T) {
	X := [][]float64{{0, 10, 5}, {10, 20, 5}}
	var s MinMaxScaler
	out, err := s.FitTransform(X)
	if err != nil {
		t.Fatal(err)
	}
	if out[0][0] != 0 || out[1][0] != 1 {
		t.Errorf("column 0 scaled wrong: %v", out)
	}
	if out[0][1] != 0 || out[1][1] != 1 {
		t.Errorf("column 1 scaled wrong: %v", out)
	}
	// Constant column maps to 0.
	if out[0][2] != 0 || out[1][2] != 0 {
		t.Errorf("constant column: %v", out)
	}
	// Transform of unseen data extrapolates.
	ext, err := s.Transform([][]float64{{20, 15, 7}})
	if err != nil {
		t.Fatal(err)
	}
	if ext[0][0] != 2 || ext[0][1] != 0.5 {
		t.Errorf("extrapolation: %v", ext)
	}
	var unfit MinMaxScaler
	if _, err := unfit.Transform(X); err == nil {
		t.Error("transform before fit should fail")
	}
	if err := (&MinMaxScaler{}).Fit(nil); err == nil {
		t.Error("fit on empty should fail")
	}
	if _, err := s.Transform([][]float64{{1}}); err == nil {
		t.Error("width mismatch should fail")
	}
}
