// Package sax implements Symbolic Aggregate approXimation (Lin et al.
// 2007): z-normalization, PAA, and discretization against N(0,1)
// equiprobable breakpoints. It is the symbolic substrate shared by the
// SAX-VSM and Fast Shapelets baselines the paper compares against.
package sax

import (
	"errors"
	"fmt"
	"math"

	"mvg/internal/timeseries"
)

// MinAlphabet and MaxAlphabet bound supported cardinalities.
const (
	MinAlphabet = 2
	MaxAlphabet = 26
)

var errAlphabet = errors.New("sax: alphabet size out of range")

// Breakpoints returns the a-1 breakpoints that cut the standard normal
// distribution into a equiprobable regions: β_i = Φ⁻¹((i+1)/a).
func Breakpoints(a int) ([]float64, error) {
	if a < MinAlphabet || a > MaxAlphabet {
		return nil, fmt.Errorf("%w: %d", errAlphabet, a)
	}
	out := make([]float64, a-1)
	for i := range out {
		out[i] = NormalQuantile(float64(i+1) / float64(a))
	}
	return out, nil
}

// Symbolize maps one PAA value to its alphabet symbol given breakpoints.
func Symbolize(v float64, breakpoints []float64) byte {
	i := 0
	for i < len(breakpoints) && v > breakpoints[i] {
		i++
	}
	return byte('a' + i)
}

// Encoder converts series (or subsequences) into SAX words with fixed
// parameters. It is safe for concurrent use.
type Encoder struct {
	Segments    int // PAA word length (cardinality of the word)
	Alphabet    int
	breakpoints []float64
}

// NewEncoder validates parameters and precomputes breakpoints.
func NewEncoder(segments, alphabet int) (*Encoder, error) {
	if segments < 1 {
		return nil, fmt.Errorf("sax: need at least 1 segment, got %d", segments)
	}
	bp, err := Breakpoints(alphabet)
	if err != nil {
		return nil, err
	}
	return &Encoder{Segments: segments, Alphabet: alphabet, breakpoints: bp}, nil
}

// Word converts a series into one SAX word: z-normalize, PAA to Segments
// values, symbolize. Series shorter than Segments are rejected.
func (e *Encoder) Word(series []float64) (string, error) {
	if len(series) < e.Segments {
		return "", fmt.Errorf("sax: series of %d points shorter than %d segments", len(series), e.Segments)
	}
	z := timeseries.ZNormalize(series)
	paa, err := timeseries.PAA(z, e.Segments)
	if err != nil {
		return "", err
	}
	buf := make([]byte, e.Segments)
	for i, v := range paa {
		buf[i] = Symbolize(v, e.breakpoints)
	}
	return string(buf), nil
}

// SlidingWords converts every length-window subsequence of the series into
// a SAX word. With numerosity reduction, consecutive identical words
// collapse to one occurrence (the standard bag-of-patterns convention that
// prevents long flat stretches from dominating the bag).
func (e *Encoder) SlidingWords(series []float64, window int, numerosityReduction bool) ([]string, error) {
	if window < e.Segments {
		return nil, fmt.Errorf("sax: window %d shorter than %d segments", window, e.Segments)
	}
	if len(series) < window {
		return nil, fmt.Errorf("sax: series of %d points shorter than window %d", len(series), window)
	}
	var words []string
	prev := ""
	for start := 0; start+window <= len(series); start++ {
		w, err := e.Word(series[start : start+window])
		if err != nil {
			return nil, err
		}
		if numerosityReduction && w == prev {
			continue
		}
		words = append(words, w)
		prev = w
	}
	return words, nil
}

// NormalQuantile returns Φ⁻¹(p) for the standard normal distribution using
// Acklam's rational approximation (relative error < 1.15e-9), refined with
// one Halley step against math.Erfc.
func NormalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	const (
		pLow  = 0.02425
		pHigh = 1 - pLow
	)
	var (
		a = [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
			-2.759285104469687e+02, 1.383577518672690e+02,
			-3.066479806614716e+01, 2.506628277459239e+00}
		b = [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
			-1.556989798598866e+02, 6.680131188771972e+01,
			-1.328068155288572e+01}
		c = [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
			-2.400758277161838e+00, -2.549732539343734e+00,
			4.374664141464968e+00, 2.938163982698783e+00}
		d = [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
			2.445134137142996e+00, 3.754408661907416e+00}
	)
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step.
	e := 0.5*math.Erfc(-x/math.Sqrt2) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x -= u / (1 + x*u/2)
	return x
}
