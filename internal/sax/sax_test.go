package sax

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestNormalQuantile(t *testing.T) {
	cases := map[float64]float64{
		0.5:   0,
		0.975: 1.959964,
		0.025: -1.959964,
		0.84:  0.994458,
	}
	for p, want := range cases {
		if got := NormalQuantile(p); math.Abs(got-want) > 1e-5 {
			t.Errorf("Quantile(%v) = %v, want %v", p, got, want)
		}
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Error("boundary quantiles should be infinite")
	}
	// Round trip through the CDF.
	for _, p := range []float64{0.01, 0.2, 0.5, 0.77, 0.99} {
		z := NormalQuantile(p)
		back := 0.5 * math.Erfc(-z/math.Sqrt2)
		if math.Abs(back-p) > 1e-9 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, back)
		}
	}
}

func TestBreakpoints(t *testing.T) {
	bp, err := Breakpoints(4)
	if err != nil {
		t.Fatal(err)
	}
	// Classic SAX table for a=4: -0.67, 0, 0.67.
	want := []float64{-0.6745, 0, 0.6745}
	for i := range want {
		if math.Abs(bp[i]-want[i]) > 1e-3 {
			t.Errorf("bp[%d] = %v, want %v", i, bp[i], want[i])
		}
	}
	// Monotonicity for all alphabet sizes.
	for a := MinAlphabet; a <= MaxAlphabet; a++ {
		bp, err := Breakpoints(a)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(bp); i++ {
			if bp[i] <= bp[i-1] {
				t.Fatalf("breakpoints not increasing for a=%d", a)
			}
		}
	}
	if _, err := Breakpoints(1); err == nil {
		t.Error("a=1 should fail")
	}
	if _, err := Breakpoints(27); err == nil {
		t.Error("a=27 should fail")
	}
}

func TestSymbolize(t *testing.T) {
	bp, _ := Breakpoints(4)
	cases := map[float64]byte{-2: 'a', -0.3: 'b', 0.3: 'c', 2: 'd'}
	for v, want := range cases {
		if got := Symbolize(v, bp); got != want {
			t.Errorf("Symbolize(%v) = %c, want %c", v, got, want)
		}
	}
}

func TestWord(t *testing.T) {
	enc, err := NewEncoder(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	// A ramp maps to a monotone word.
	w, err := enc.Word([]float64{1, 2, 3, 4, 5, 6, 7, 8})
	if err != nil {
		t.Fatal(err)
	}
	if w != "abcd" {
		t.Errorf("ramp word = %q, want abcd", w)
	}
	if _, err := enc.Word([]float64{1, 2}); err == nil {
		t.Error("series shorter than segments should fail")
	}
	if _, err := NewEncoder(0, 4); err == nil {
		t.Error("0 segments should fail")
	}
	if _, err := NewEncoder(4, 1); err == nil {
		t.Error("tiny alphabet should fail")
	}
}

func TestWordSymbolsEquiprobableOnGaussianData(t *testing.T) {
	// For N(0,1) samples, symbols should be roughly uniform.
	rng := rand.New(rand.NewSource(5))
	enc, _ := NewEncoder(1, 4)
	counts := map[string]int{}
	n := 20000
	for i := 0; i < n; i++ {
		w, err := enc.Word([]float64{rng.NormFloat64()})
		if err != nil {
			t.Fatal(err)
		}
		counts[w]++
	}
	_ = counts
	// Note: single-point series z-normalize to zero → constant symbol.
	// Use raw symbolization against breakpoints instead.
	bp, _ := Breakpoints(4)
	sym := map[byte]int{}
	for i := 0; i < n; i++ {
		sym[Symbolize(rng.NormFloat64(), bp)]++
	}
	for s, c := range sym {
		frac := float64(c) / float64(n)
		if frac < 0.22 || frac > 0.28 {
			t.Errorf("symbol %c frequency %v, want ≈0.25", s, frac)
		}
	}
}

func TestSlidingWords(t *testing.T) {
	series := []float64{0, 1, 2, 3, 2, 1, 0, 1, 2, 3, 2, 1}
	enc, _ := NewEncoder(4, 3)
	words, err := enc.SlidingWords(series, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(words) != len(series)-8+1 {
		t.Errorf("got %d words, want %d", len(words), len(series)-8+1)
	}
	for _, w := range words {
		if len(w) != 4 {
			t.Errorf("word %q has wrong length", w)
		}
		for _, ch := range w {
			if !strings.ContainsRune("abc", ch) {
				t.Errorf("word %q has invalid symbol", w)
			}
		}
	}
	// Numerosity reduction collapses runs.
	reduced, err := enc.SlidingWords(series, 8, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(reduced) > len(words) {
		t.Error("numerosity reduction should not grow the bag")
	}
	for i := 1; i < len(reduced); i++ {
		if reduced[i] == reduced[i-1] {
			t.Error("consecutive duplicate survived numerosity reduction")
		}
	}
	if _, err := enc.SlidingWords(series, 2, false); err == nil {
		t.Error("window < segments should fail")
	}
	if _, err := enc.SlidingWords([]float64{1, 2}, 8, false); err == nil {
		t.Error("series shorter than window should fail")
	}
}
