package ucr

import (
	"errors"
	"strconv"
	"strings"
	"testing"
)

// TestParseErrorTaxonomy pins the typed-error contract of the loader:
// every malformed input matches ErrMalformed via errors.Is and exposes
// its coordinates via errors.As.
func TestParseErrorTaxonomy(t *testing.T) {
	cases := []struct {
		name        string
		in          string
		line, field int
	}{
		{"empty-file", "", 0, 0},
		{"label-only-row", "1\n", 1, 0},
		{"non-numeric-value", "1,1.5,abc,2\n", 1, 3},
		{"non-numeric-later-line", "1,1,2\n2,3,x\n", 2, 3},
		{"whitespace-form-bad-value", "1 2 nope\n", 1, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Read(strings.NewReader(tc.in), "toy")
			if err == nil {
				t.Fatal("Read succeeded on malformed input")
			}
			if !errors.Is(err, ErrMalformed) {
				t.Fatalf("errors.Is(err, ErrMalformed) = false for %v", err)
			}
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("errors.As(*ParseError) = false for %T %v", err, err)
			}
			if pe.File != "toy" || pe.Line != tc.line || pe.Field != tc.field {
				t.Fatalf("ParseError coordinates = %s:%d:%d, want toy:%d:%d",
					pe.File, pe.Line, pe.Field, tc.line, tc.field)
			}
		})
	}
}

// TestParseErrorWrapsCause checks the underlying strconv failure stays
// reachable through the chain.
func TestParseErrorWrapsCause(t *testing.T) {
	_, err := Read(strings.NewReader("1,oops\n"), "toy")
	var ne *strconv.NumError
	if !errors.As(err, &ne) {
		t.Fatalf("strconv cause not reachable through %v", err)
	}
	if !errors.Is(err, ErrMalformed) {
		t.Fatal("wrapped cause broke the ErrMalformed match")
	}
}

// TestReadFileMissingIsNotMalformed keeps I/O failures distinct from
// malformed content: a missing file must not match ErrMalformed.
func TestReadFileMissingIsNotMalformed(t *testing.T) {
	_, err := ReadFile("/does/not/exist")
	if err == nil {
		t.Fatal("ReadFile succeeded on a missing path")
	}
	if errors.Is(err, ErrMalformed) {
		t.Fatalf("missing file matched ErrMalformed: %v", err)
	}
}
