package ucr

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
)

// TestChunkReaderMatchesRead pins the one-parser contract: streaming the
// file chunk by chunk yields exactly the rows Read materializes, in order,
// at every chunk size straddling the row count.
func TestChunkReaderMatchesRead(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 37; i++ {
		fmt.Fprintf(&b, "%d,%d.5,%d.25,%d\n", i%3+1, i, i+1, i+2)
	}
	in := b.String()
	want, err := Read(strings.NewReader(in), "toy")
	if err != nil {
		t.Fatal(err)
	}
	for _, chunkSize := range []int{1, 2, 7, 36, 37, 38, 1000} {
		t.Run(fmt.Sprintf("chunk=%d", chunkSize), func(t *testing.T) {
			cr := NewChunkReader(strings.NewReader(in), "toy", chunkSize)
			row := 0
			for {
				c, err := cr.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatal(err)
				}
				if c.Start != row {
					t.Fatalf("chunk start = %d, want %d", c.Start, row)
				}
				if len(c.Series) > chunkSize {
					t.Fatalf("chunk has %d rows, cap %d", len(c.Series), chunkSize)
				}
				for i, s := range c.Series {
					if got, want := c.Labels[i], want.ClassNames[want.Labels[row]]; got != want {
						t.Fatalf("row %d label = %q, want %q", row, got, want)
					}
					if len(s) != len(want.Series[row]) {
						t.Fatalf("row %d width = %d, want %d", row, len(s), len(want.Series[row]))
					}
					for j := range s {
						if s[j] != want.Series[row][j] {
							t.Fatalf("row %d col %d = %v, want %v", row, j, s[j], want.Series[row][j])
						}
					}
					row++
				}
			}
			if row != want.Len() {
				t.Fatalf("streamed %d rows, want %d", row, want.Len())
			}
			if cr.Width() != want.SeriesLength() {
				t.Fatalf("Width() = %d, want %d", cr.Width(), want.SeriesLength())
			}
		})
	}
}

// TestChunkReaderTaxonomy pins the PR 5 error contract on the streaming
// path: malformed records mid-file fail with a *ParseError carrying
// absolute line/field coordinates and matching ErrMalformed, including
// records truncated partway through (ragged width, cut-off number,
// label-only line).
func TestChunkReaderTaxonomy(t *testing.T) {
	cases := []struct {
		name        string
		in          string
		line, field int
	}{
		{"empty-file", "", 0, 0},
		{"blank-lines-only", "\n  \n\n", 0, 0},
		{"label-only-row", "1\n", 1, 0},
		{"non-numeric-value", "1,1.5,abc,2\n", 1, 3},
		{"truncated-number-mid-file", "1,1,2\n2,3,4\n2,3,4.5e\n", 3, 3},
		{"truncated-record-mid-file", "1,1,2,3\n2,4,5\n", 2, 0},
		{"overlong-record-mid-file", "1,1,2\n2,4,5,6\n", 2, 0},
		{"label-only-mid-file", "1,1,2\n2\n1,3,4\n", 2, 0},
		{"malformed-after-first-chunk", "1,1,2\n2,3,4\n1,5,6\nbroken\n", 4, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cr := NewChunkReader(strings.NewReader(tc.in), "toy", 2)
			var err error
			for err == nil {
				_, err = cr.Next()
			}
			if err == io.EOF {
				t.Fatal("stream ended cleanly on malformed input")
			}
			if !errors.Is(err, ErrMalformed) {
				t.Fatalf("errors.Is(err, ErrMalformed) = false for %v", err)
			}
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("errors.As(*ParseError) = false for %T %v", err, err)
			}
			if pe.File != "toy" || pe.Line != tc.line || pe.Field != tc.field {
				t.Fatalf("ParseError coordinates = %s:%d:%d, want toy:%d:%d",
					pe.File, pe.Line, pe.Field, tc.line, tc.field)
			}
			// Errors are sticky: a retry must not silently resume.
			if _, again := cr.Next(); again == nil || again.Error() != err.Error() {
				t.Fatalf("error not sticky: second Next returned %v", again)
			}
		})
	}
}

// errReader fails with a transport error after feeding some valid rows.
type errReader struct {
	prefix io.Reader
	err    error
}

func (e *errReader) Read(p []byte) (int, error) {
	n, err := e.prefix.Read(p)
	if n > 0 {
		return n, nil
	}
	if err == io.EOF {
		return 0, e.err
	}
	return n, err
}

// TestChunkReaderIOErrorNotMalformed keeps the retryable/permanent split:
// a mid-read transport failure must surface as-is, outside ErrMalformed.
func TestChunkReaderIOErrorNotMalformed(t *testing.T) {
	boom := errors.New("connection reset")
	cr := NewChunkReader(&errReader{prefix: strings.NewReader("1,1,2\n2,3,4\n"), err: boom}, "toy", 1)
	var err error
	for err == nil {
		_, err = cr.Next()
	}
	if errors.Is(err, ErrMalformed) {
		t.Fatalf("I/O failure matched ErrMalformed: %v", err)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("underlying I/O error lost: %v", err)
	}
}

// TestReadChunksCallbackError checks a callback error aborts the stream
// unchanged.
func TestReadChunksCallbackError(t *testing.T) {
	stop := errors.New("enough")
	calls := 0
	err := ReadChunks(strings.NewReader("1,1,2\n2,3,4\n1,5,6\n"), "toy", 1, func(c *Chunk) error {
		calls++
		if calls == 2 {
			return stop
		}
		return nil
	})
	if !errors.Is(err, stop) {
		t.Fatalf("ReadChunks error = %v, want %v", err, stop)
	}
	if calls != 2 {
		t.Fatalf("callback ran %d times, want 2", calls)
	}
}

// TestChunkReaderBlankLinesBetweenChunks checks blank and padded lines are
// skipped without perturbing row indexing.
func TestChunkReaderBlankLinesBetweenChunks(t *testing.T) {
	in := "1,1,2\n\n   \n2,3,4\n\n1,5,6\n"
	var rows int
	err := ReadChunks(strings.NewReader(in), "toy", 2, func(c *Chunk) error {
		if c.Start != rows {
			t.Fatalf("chunk start = %d, want %d", c.Start, rows)
		}
		rows += len(c.Series)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rows != 3 {
		t.Fatalf("streamed %d rows, want 3", rows)
	}
}
