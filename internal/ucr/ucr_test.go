package ucr

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadCommaFormat(t *testing.T) {
	in := "1,0.5,1.5,2.5\n-1,3.0,2.0,1.0\n1,0.1,0.2,0.3\n"
	d, err := Read(strings.NewReader(in), "toy")
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 3 || d.Classes() != 2 || d.SeriesLength() != 3 {
		t.Fatalf("parsed %d samples, %d classes, len %d", d.Len(), d.Classes(), d.SeriesLength())
	}
	// Numeric label order: -1 before 1.
	if d.ClassNames[0] != "-1" || d.ClassNames[1] != "1" {
		t.Errorf("class names = %v", d.ClassNames)
	}
	if d.Labels[0] != 1 || d.Labels[1] != 0 {
		t.Errorf("labels = %v", d.Labels)
	}
	if d.Series[1][0] != 3.0 {
		t.Errorf("series[1] = %v", d.Series[1])
	}
}

func TestReadWhitespaceFormat(t *testing.T) {
	in := "2 0.5 1.5\n10 3.0 2.0\n"
	d, err := Read(strings.NewReader(in), "ws")
	if err != nil {
		t.Fatal(err)
	}
	// Numeric ordering: 2 before 10 (not lexicographic).
	if d.ClassNames[0] != "2" || d.ClassNames[1] != "10" {
		t.Errorf("class names = %v", d.ClassNames)
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(strings.NewReader(""), "empty"); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := Read(strings.NewReader("1\n"), "short"); err == nil {
		t.Error("label-only line should fail")
	}
	if _, err := Read(strings.NewReader("1,abc\n"), "bad"); err == nil {
		t.Error("non-numeric value should fail")
	}
	if _, err := Read(strings.NewReader("1,1,2\n2,1\n"), "ragged"); err == nil {
		t.Error("ragged rows should fail validation")
	}
}

func TestWriteRoundTrip(t *testing.T) {
	d := &Dataset{
		Name:       "rt",
		Series:     [][]float64{{1.5, -2.25}, {0, 3}},
		Labels:     []int{1, 0},
		ClassNames: []string{"a", "b"},
	}
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf, "rt")
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 || back.Classes() != 2 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	for i := range d.Series {
		for j := range d.Series[i] {
			if back.Series[i][j] != d.Series[i][j] {
				t.Errorf("value [%d][%d] = %v, want %v", i, j, back.Series[i][j], d.Series[i][j])
			}
		}
	}
	if back.ClassNames[back.Labels[0]] != "b" {
		t.Error("labels scrambled in round trip")
	}
}

func TestFileRoundTripAndPair(t *testing.T) {
	dir := t.TempDir()
	train := &Dataset{
		Series:     [][]float64{{1, 2}, {3, 4}},
		Labels:     []int{0, 1},
		ClassNames: []string{"1", "2"},
	}
	// Test split mentions a third class unseen in training.
	test := &Dataset{
		Series:     [][]float64{{5, 6}, {7, 8}},
		Labels:     []int{0, 1},
		ClassNames: []string{"2", "3"},
	}
	trainPath := filepath.Join(dir, "TOY_TRAIN")
	testPath := filepath.Join(dir, "TOY_TEST")
	if err := train.WriteFile(trainPath); err != nil {
		t.Fatal(err)
	}
	if err := test.WriteFile(testPath); err != nil {
		t.Fatal(err)
	}
	tr, te, err := ReadPair(trainPath, testPath)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Classes() != 3 || te.Classes() != 3 {
		t.Fatalf("reconciled classes = %d/%d, want 3", tr.Classes(), te.Classes())
	}
	// Token "2" must map to the same id in both splits.
	id2 := -1
	for i, n := range tr.ClassNames {
		if n == "2" {
			id2 = i
		}
	}
	if tr.Labels[1] != id2 || te.Labels[0] != id2 {
		t.Errorf("label \"2\" inconsistent: train %v test %v id %d", tr.Labels, te.Labels, id2)
	}
	if _, err := ReadFile(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file should fail")
	}
	if !os.IsNotExist(func() error { _, err := ReadFile(filepath.Join(dir, "missing")); return err }()) {
		// The error should wrap the fs error; just assert non-nil above.
		_ = err
	}
}

func TestValidate(t *testing.T) {
	bad := &Dataset{
		Series:     [][]float64{{1}},
		Labels:     []int{5},
		ClassNames: []string{"a"},
	}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range label should fail validation")
	}
	empty := &Dataset{}
	if err := empty.Validate(); err == nil {
		t.Error("empty dataset should fail validation")
	}
	if empty.SeriesLength() != 0 {
		t.Error("empty SeriesLength should be 0")
	}
}
