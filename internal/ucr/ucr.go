// Package ucr reads and writes the UCR Time Series Classification Archive
// text format: one sample per line, the class label first, then the
// observations, comma separated. Labels are arbitrary tokens (the archive
// uses -1/1, 1..K, 0..K-1 inconsistently); this package maps them to dense
// class ids 0..K-1 and keeps the original names for round-tripping.
package ucr

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// ErrMalformed is the sentinel for unparseable UCR content: short rows,
// non-numeric values, empty files. Every parse failure wraps it (match
// with errors.Is) through a *ParseError carrying the file/line/field
// coordinates (recover with errors.As) — the same taxonomy style as the
// public mvg error surface (docs/api.md).
var ErrMalformed = errors.New("ucr: malformed data")

// ParseError locates one malformed spot in a UCR-format input. Line and
// Field are 1-based; zero means "not applicable" (e.g. an empty file).
// Err holds the underlying cause (a strconv error, an I/O error) when
// there is one.
type ParseError struct {
	File  string // input name as passed to Read/ReadFile
	Line  int    // 1-based line number, 0 when whole-file
	Field int    // 1-based field number within the line, 0 when whole-line
	Msg   string // what was wrong
	Err   error  // underlying cause, may be nil
}

func (e *ParseError) Error() string {
	var b strings.Builder
	b.WriteString("ucr: ")
	b.WriteString(e.File)
	if e.Line > 0 {
		fmt.Fprintf(&b, " line %d", e.Line)
	}
	if e.Field > 0 {
		fmt.Fprintf(&b, " field %d", e.Field)
	}
	b.WriteString(": ")
	b.WriteString(e.Msg)
	if e.Err != nil {
		fmt.Fprintf(&b, ": %v", e.Err)
	}
	return b.String()
}

// Unwrap exposes the underlying cause to errors.Is/As chains.
func (e *ParseError) Unwrap() error { return e.Err }

// Is makes every ParseError match errors.Is(err, ErrMalformed) regardless
// of the underlying cause.
func (e *ParseError) Is(target error) bool { return target == ErrMalformed }

// Dataset is one split (train or test) of a UCR-format dataset.
type Dataset struct {
	// Name is a human-readable identifier (file stem or generator name).
	Name string
	// Series holds one row per sample.
	Series [][]float64
	// Labels holds dense class ids aligned with Series.
	Labels []int
	// ClassNames maps dense ids back to the original label tokens.
	ClassNames []string
}

// Classes returns the number of distinct classes.
func (d *Dataset) Classes() int { return len(d.ClassNames) }

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Series) }

// SeriesLength returns the length of the first series (UCR datasets are
// uniform) or 0 when empty.
func (d *Dataset) SeriesLength() int {
	if len(d.Series) == 0 {
		return 0
	}
	return len(d.Series[0])
}

// Validate checks internal consistency: aligned slices, uniform lengths,
// labels in range.
func (d *Dataset) Validate() error {
	if len(d.Series) == 0 {
		return errors.New("ucr: empty dataset")
	}
	if len(d.Series) != len(d.Labels) {
		return fmt.Errorf("ucr: %d series, %d labels", len(d.Series), len(d.Labels))
	}
	width := len(d.Series[0])
	for i, s := range d.Series {
		if len(s) != width {
			return fmt.Errorf("ucr: series %d has %d points, series 0 has %d", i, len(s), width)
		}
	}
	for i, label := range d.Labels {
		if label < 0 || label >= len(d.ClassNames) {
			return fmt.Errorf("ucr: label %d of sample %d out of range [0,%d)", label, i, len(d.ClassNames))
		}
	}
	return nil
}

// Read parses UCR-format lines. Label tokens are assigned dense ids in
// sorted token order so the mapping is deterministic. It is built on the
// same chunked parser as ReadChunks — Read simply materializes every
// chunk; use ReadChunks/NewChunkReader when the dataset must not be held
// in memory at once.
func Read(r io.Reader, name string) (*Dataset, error) {
	var series [][]float64
	var labelTokens []string
	err := ReadChunks(r, name, 0, func(c *Chunk) error {
		series = append(series, c.Series...)
		labelTokens = append(labelTokens, c.Labels...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	tokens := map[string]bool{}
	for _, t := range labelTokens {
		tokens[t] = true
	}
	classNames := make([]string, 0, len(tokens))
	for t := range tokens {
		classNames = append(classNames, t)
	}
	sortLabels(classNames)
	id := map[string]int{}
	for i, t := range classNames {
		id[t] = i
	}
	d := &Dataset{Name: name, ClassNames: classNames, Series: series}
	for _, t := range labelTokens {
		d.Labels = append(d.Labels, id[t])
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// splitFlexible splits on commas or arbitrary whitespace (both appear in
// the wild for UCR files).
func splitFlexible(line string) []string {
	if strings.Contains(line, ",") {
		parts := strings.Split(line, ",")
		out := parts[:0]
		for _, p := range parts {
			p = strings.TrimSpace(p)
			if p != "" {
				out = append(out, p)
			}
		}
		return out
	}
	return strings.Fields(line)
}

// sortLabels orders numerically when all tokens parse as numbers,
// lexically otherwise.
func sortLabels(tokens []string) {
	numeric := true
	vals := make([]float64, len(tokens))
	for i, t := range tokens {
		v, err := strconv.ParseFloat(t, 64)
		if err != nil {
			numeric = false
			break
		}
		vals[i] = v
	}
	if numeric {
		sort.Slice(tokens, func(a, b int) bool {
			va, _ := strconv.ParseFloat(tokens[a], 64)
			vb, _ := strconv.ParseFloat(tokens[b], 64)
			return va < vb
		})
		return
	}
	sort.Strings(tokens)
}

// ReadFile reads one UCR split from disk, using the file stem as the name.
func ReadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	name := path
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return Read(f, name)
}

// ReadPair reads train and test splits and reconciles their label
// mappings: the union of label tokens defines the dense ids, so a class
// present only in the test split still gets a consistent id.
func ReadPair(trainPath, testPath string) (train, test *Dataset, err error) {
	train, err = ReadFile(trainPath)
	if err != nil {
		return nil, nil, err
	}
	test, err = ReadFile(testPath)
	if err != nil {
		return nil, nil, err
	}
	if err := Reconcile(train, test); err != nil {
		return nil, nil, err
	}
	return train, test, nil
}

// Reconcile remaps both datasets onto the union of their class names.
func Reconcile(a, b *Dataset) error {
	tokens := map[string]bool{}
	for _, t := range a.ClassNames {
		tokens[t] = true
	}
	for _, t := range b.ClassNames {
		tokens[t] = true
	}
	union := make([]string, 0, len(tokens))
	for t := range tokens {
		union = append(union, t)
	}
	sortLabels(union)
	id := map[string]int{}
	for i, t := range union {
		id[t] = i
	}
	for _, d := range []*Dataset{a, b} {
		for i, label := range d.Labels {
			d.Labels[i] = id[d.ClassNames[label]]
		}
		d.ClassNames = union
	}
	return nil
}

// Write emits the dataset in UCR comma-separated format.
func (d *Dataset) Write(w io.Writer) error {
	if err := d.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	for i, s := range d.Series {
		if _, err := bw.WriteString(d.ClassNames[d.Labels[i]]); err != nil {
			return err
		}
		for _, v := range s {
			if _, err := fmt.Fprintf(bw, ",%g", v); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteFile writes the dataset to path in UCR format.
func (d *Dataset) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
