package ucr

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// DefaultChunkSize is the chunk granularity used when a caller passes a
// non-positive size to NewChunkReader/ReadChunks. 1024 rows keeps a chunk
// of typical UCR series (a few hundred samples each) in the low tens of
// megabytes while amortizing per-chunk overhead.
const DefaultChunkSize = 1024

// Chunk is one bounded slice of a UCR-format dataset as produced by a
// ChunkReader. Labels are the raw label tokens exactly as they appear in
// the file — a chunked read cannot assign dense class ids up front the way
// Read does, because the full token set is unknown until the last chunk;
// callers build their own mapping (bulk extraction uses first-seen order,
// Read sorts the union).
type Chunk struct {
	// Start is the 0-based dataset row index of the first series in the
	// chunk (blank lines are not counted).
	Start int
	// Series holds the chunk's samples, one row per series. The slices
	// are freshly allocated per chunk and safe to retain.
	Series [][]float64
	// Labels holds the raw label tokens aligned with Series.
	Labels []string
}

// ChunkReader streams a UCR-format input in bounded chunks: at any moment
// at most one chunk of rows is resident, regardless of dataset size. It
// preserves Read's error taxonomy — every malformed record surfaces as a
// *ParseError matching ErrMalformed with absolute 1-based line/field
// coordinates, while mid-read I/O failures stay outside ErrMalformed so
// callers can tell a retryable fault from permanently bad data — and
// additionally enforces uniform series length eagerly, so a truncated or
// ragged record mid-file fails at its own line number instead of at
// end-of-read validation.
type ChunkReader struct {
	name      string
	chunkSize int
	sc        *bufio.Scanner
	lineNo    int // 1-based line of the most recently scanned line
	row       int // dataset row index of the next series
	width     int // series length pinned by the first record, 0 before it
	err       error
	done      bool
}

// NewChunkReader wraps r for chunked reading. A non-positive chunkSize
// selects DefaultChunkSize.
func NewChunkReader(r io.Reader, name string, chunkSize int) *ChunkReader {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	return &ChunkReader{name: name, chunkSize: chunkSize, sc: sc}
}

// Width returns the uniform series length, available after the first
// successful Next (0 before).
func (cr *ChunkReader) Width() int { return cr.width }

// Rows returns how many series have been produced so far.
func (cr *ChunkReader) Rows() int { return cr.row }

// Next returns the next chunk of up to chunkSize series. The final chunk
// may be shorter; after it, Next returns io.EOF. An input with no samples
// at all returns a *ParseError (matching Read's contract), and every error
// is sticky: once Next fails, all later calls return the same error.
func (cr *ChunkReader) Next() (*Chunk, error) {
	if cr.err != nil {
		return nil, cr.err
	}
	if cr.done {
		return nil, io.EOF
	}
	c := &Chunk{Start: cr.row}
	for len(c.Series) < cr.chunkSize && cr.sc.Scan() {
		cr.lineNo++
		line := trimSpaceBytes(cr.sc.Bytes())
		if len(line) == 0 {
			continue
		}
		values, label, err := cr.parseRow(line)
		if err != nil {
			cr.err = err
			return nil, err
		}
		c.Series = append(c.Series, values)
		c.Labels = append(c.Labels, label)
		cr.row++
	}
	if len(c.Series) < cr.chunkSize {
		// The scan loop stopped early: end of input or a scan failure.
		if err := cr.sc.Err(); err != nil {
			// A mid-read I/O failure is not malformed content: keep it out
			// of the ErrMalformed taxonomy (same contract as Read).
			cr.err = fmt.Errorf("ucr: reading %s: %w", cr.name, err)
			return nil, cr.err
		}
		cr.done = true
		if cr.row == 0 {
			cr.err = &ParseError{File: cr.name, Msg: "contains no samples"}
			return nil, cr.err
		}
		if len(c.Series) == 0 {
			return nil, io.EOF
		}
	}
	return c, nil
}

// parseRow parses one non-blank line into its label token and values,
// enforcing the uniform width pinned by the first record.
func (cr *ChunkReader) parseRow(line []byte) (values []float64, label string, err error) {
	fields := splitFlexible(string(line))
	if len(fields) < 2 {
		return nil, "", &ParseError{File: cr.name, Line: cr.lineNo, Msg: "need a label and at least one value"}
	}
	values = make([]float64, len(fields)-1)
	for i, f := range fields[1:] {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, "", &ParseError{File: cr.name, Line: cr.lineNo, Field: i + 2, Msg: "not a number", Err: err}
		}
		values[i] = v
	}
	if cr.width == 0 {
		cr.width = len(values)
	} else if len(values) != cr.width {
		return nil, "", &ParseError{
			File: cr.name, Line: cr.lineNo,
			Msg: fmt.Sprintf("series has %d points, series 1 has %d", len(values), cr.width),
		}
	}
	return values, fields[0], nil
}

// trimSpaceBytes trims ASCII whitespace without converting to string
// first, so blank and padded lines cost no allocation.
func trimSpaceBytes(b []byte) []byte {
	for len(b) > 0 && asciiSpace(b[0]) {
		b = b[1:]
	}
	for len(b) > 0 && asciiSpace(b[len(b)-1]) {
		b = b[:len(b)-1]
	}
	return b
}

func asciiSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\v' || c == '\f'
}

// ReadChunks streams the input through fn one chunk at a time, holding at
// most one chunk in memory. fn must not retain err-free progress
// assumptions across calls: the first malformed record aborts the stream
// with its *ParseError. A non-nil error from fn aborts with that error.
func ReadChunks(r io.Reader, name string, chunkSize int, fn func(*Chunk) error) error {
	cr := NewChunkReader(r, name, chunkSize)
	for {
		c, err := cr.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(c); err != nil {
			return err
		}
	}
}
