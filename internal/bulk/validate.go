package bulk

import (
	"context"
	"fmt"
	"io"
	"math"
)

// The validation suite replays a feature store's invariants from the
// outside, trusting nothing but the bytes on disk (and, for parity, the
// original input). Checks are ordered from structural to semantic:
//
//	manifest   decodes, internally consistent, complete
//	shards     every shard present, checksummed, header matches manifest
//	labels     every label id within [0, classes)
//	finite     every feature value finite (NaN/±Inf never legitimate)
//	counts     per-chunk and total row counts agree with the manifest
//	parity     sampled rows per shard re-extract to bit-identical
//	           features — the determinism contract the golden vectors pin,
//	           now enforced end-to-end through the store
//
// Each check yields a CheckResult rather than aborting the suite, so one
// report names everything wrong with a store at once.

// CheckResult is one validation check's verdict.
type CheckResult struct {
	Name   string
	OK     bool
	Detail string // first failure's coordinates, or a summary when OK
}

// ValidateOptions configures a validation pass.
type ValidateOptions struct {
	// Dir is the store directory.
	Dir string
	// Source, when non-nil, replays the original input for the parity
	// check; Extract must then be non-nil too. The source's chunking must
	// match the store's (same chunk size over the same input).
	Source  Source
	Extract ExtractFunc
	// SampleRows bounds how many rows per shard the parity check
	// re-extracts (evenly spaced, always including first and last row of
	// the shard). Non-positive selects 4.
	SampleRows int
}

// Validate runs the suite and reports one CheckResult per check plus an
// overall verdict. It returns a non-nil error only when the pass itself
// could not run (context cancelled, source I/O failure) — a broken store
// is a false verdict, not an error.
func Validate(ctx context.Context, opts ValidateOptions) (results []CheckResult, ok bool, err error) {
	add := func(r CheckResult) {
		results = append(results, r)
	}

	m, err := ReadManifest(opts.Dir)
	if err != nil {
		add(CheckResult{Name: "manifest", Detail: err.Error()})
		return results, false, nil
	}
	if !m.Complete {
		add(CheckResult{Name: "manifest", Detail: "store is incomplete (extraction was interrupted; re-run extract to finish)"})
		return results, false, nil
	}
	add(CheckResult{Name: "manifest", OK: true,
		Detail: fmt.Sprintf("%d rows, %d chunks, %d features, %d classes", m.Rows, len(m.Chunks), m.Cols, len(m.ClassNames))})

	shards := CheckResult{Name: "shards", OK: true, Detail: fmt.Sprintf("%d shard checksums verified", len(m.Chunks))}
	labels := CheckResult{Name: "labels", OK: true, Detail: fmt.Sprintf("all label ids in [0,%d)", len(m.ClassNames))}
	finite := CheckResult{Name: "finite", OK: true, Detail: fmt.Sprintf("%d feature values finite", m.Rows*m.Cols)}
	counts := CheckResult{Name: "counts", OK: true, Detail: fmt.Sprintf("row counts consistent (%d total)", m.Rows)}

	rows := 0
	for i := range m.Chunks {
		if err := ctx.Err(); err != nil {
			return results, false, err
		}
		ids, x, err := ReadChunkRows(opts.Dir, m, i)
		if err != nil {
			if shards.OK {
				shards = CheckResult{Name: "shards", Detail: err.Error()}
			}
			continue
		}
		rows += len(x)
		for r, id := range ids {
			if int(id) < 0 || int(id) >= len(m.ClassNames) {
				if labels.OK {
					labels = CheckResult{Name: "labels",
						Detail: fmt.Sprintf("chunk %d row %d: label id %d outside [0,%d)", i, r, id, len(m.ClassNames))}
				}
				break
			}
		}
		if r, c, fin := CheckFinite(x); !fin && finite.OK {
			finite = CheckResult{Name: "finite",
				Detail: fmt.Sprintf("chunk %d row %d col %d (%s): non-finite feature %v", i, r, c, m.FeatureNames[c], x[r][c])}
		}
	}
	if shards.OK && rows != m.Rows {
		counts = CheckResult{Name: "counts", Detail: fmt.Sprintf("shards hold %d rows, manifest says %d", rows, m.Rows)}
	}
	add(shards)
	add(labels)
	add(finite)
	add(counts)

	if opts.Source != nil {
		parity, err := parityCheck(ctx, m, opts)
		if err != nil {
			return results, false, err
		}
		add(parity)
	}

	ok = true
	for _, r := range results {
		ok = ok && r.OK
	}
	return results, ok, nil
}

// sampleIndices picks up to k evenly spaced row indices in [0, rows),
// always including the first and last row. Deterministic by construction:
// the parity sample for a given store never varies between runs.
func sampleIndices(rows, k int) []int {
	if k <= 0 {
		k = 4
	}
	if k >= rows {
		idx := make([]int, rows)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	if k == 1 {
		return []int{0}
	}
	idx := make([]int, 0, k)
	for i := 0; i < k; i++ {
		j := i * (rows - 1) / (k - 1)
		if n := len(idx); n == 0 || idx[n-1] != j {
			idx = append(idx, j)
		}
	}
	return idx
}

// parityCheck replays the input through the store's chunking, verifies
// each chunk is the exact input the manifest recorded, and re-extracts
// sampled rows asserting bit-identical feature vectors and label
// mappings. A passing parity check means the store is interchangeable
// with a fresh extraction of the same input.
func parityCheck(ctx context.Context, m *Manifest, opts ValidateOptions) (CheckResult, error) {
	fail := func(format string, args ...any) CheckResult {
		return CheckResult{Name: "parity", Detail: fmt.Sprintf(format, args...)}
	}
	if opts.Extract == nil {
		return fail("parity requested without an extractor"), nil
	}
	classID := map[string]int{}
	for i, name := range m.ClassNames {
		classID[name] = i
	}
	sampled := 0
	for index := 0; ; index++ {
		series, labels, err := opts.Source.NextChunk()
		if err == io.EOF {
			if index != len(m.Chunks) {
				return fail("input has %d chunks, store has %d", index, len(m.Chunks)), nil
			}
			break
		}
		if err != nil {
			return CheckResult{}, err
		}
		if index >= len(m.Chunks) {
			return fail("input has more chunks than the store's %d", len(m.Chunks)), nil
		}
		c := m.Chunks[index]
		if len(series) != c.Rows {
			return fail("chunk %d: input has %d rows, store has %d (was the store built with a different chunk size?)",
				index, len(series), c.Rows), nil
		}
		if got := hashChunkInput(series, labels); got != c.InputSHA256 {
			return fail("chunk %d: input differs from the one extracted (hash %s, manifest says %s)",
				index, got, c.InputSHA256), nil
		}
		ids, x, err := ReadChunkRows(opts.Dir, m, index)
		if err != nil {
			return fail("chunk %d: %v", index, err), nil
		}
		for _, r := range sampleIndices(c.Rows, opts.SampleRows) {
			if err := ctx.Err(); err != nil {
				return CheckResult{}, err
			}
			wantID, known := classID[labels[r]]
			if !known || int(ids[r]) != wantID {
				return fail("chunk %d row %d: stored label id %d does not map to token %q", index, r, ids[r], labels[r]), nil
			}
			fresh, err := opts.Extract(ctx, series[r:r+1])
			if err != nil {
				return CheckResult{}, fmt.Errorf("parity re-extraction of chunk %d row %d: %w", index, r, err)
			}
			if len(fresh) != 1 || len(fresh[0]) != m.Cols {
				return fail("chunk %d row %d: re-extraction returned %d cols, store has %d", index, r, len(fresh[0]), m.Cols), nil
			}
			for j, v := range fresh[0] {
				if math.Float64bits(v) != math.Float64bits(x[r][j]) {
					return fail("chunk %d row %d col %d (%s): stored %x, re-extracted %x — store is not bit-identical to fresh extraction",
						index, r, j, m.FeatureNames[j], math.Float64bits(x[r][j]), math.Float64bits(v)), nil
				}
			}
			sampled++
		}
	}
	return CheckResult{Name: "parity", OK: true,
		Detail: fmt.Sprintf("%d sampled rows re-extracted bit-identically", sampled)}, nil
}
