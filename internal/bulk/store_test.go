package bulk

import (
	"encoding/binary"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
)

// TestShardRoundTrip pins the binary shard contract: canonical encoding,
// exact decode, and the documented column-major layout.
func TestShardRoundTrip(t *testing.T) {
	labels := []int32{0, 2, 1}
	x := [][]float64{
		{1.5, -2.25, math.SmallestNonzeroFloat64},
		{0, 3.5, 7},
		{-1, math.MaxFloat64, 2},
	}
	b := encodeShard(labels, x)
	if got, want := len(b), 16+4*3+8*9; got != want {
		t.Fatalf("shard size = %d, want %d", got, want)
	}
	// Column-major: the first float64 after the label block is x[0][0],
	// the second x[1][0] (next row, same feature).
	off := 16 + 4*3
	if v := math.Float64frombits(binary.LittleEndian.Uint64(b[off+8:])); v != x[1][0] {
		t.Fatalf("second data value = %v, want x[1][0] = %v (layout is not column-major)", v, x[1][0])
	}
	gotLabels, gotX, err := decodeShard(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotLabels, labels) || !reflect.DeepEqual(gotX, x) {
		t.Fatalf("round trip mismatch:\nlabels %v vs %v\nx %v vs %v", gotLabels, labels, gotX, x)
	}
	// Canonical: re-encoding the decode reproduces the exact bytes.
	if again := encodeShard(gotLabels, gotX); string(again) != string(b) {
		t.Fatal("encode(decode(shard)) != shard")
	}
}

// TestShardDecodeRejects covers the corruption classes decode must fail
// closed on.
func TestShardDecodeRejects(t *testing.T) {
	good := encodeShard([]int32{0, 1}, [][]float64{{1, 2}, {3, 4}})
	cases := map[string][]byte{
		"empty":       {},
		"short":       good[:10],
		"bad-magic":   append([]byte("NOPE"), good[4:]...),
		"bad-version": func() []byte { b := append([]byte{}, good...); b[4] = 9; return b }(),
		"truncated":   good[:len(good)-1],
		"trailing":    append(append([]byte{}, good...), 0),
		"lying-rows":  func() []byte { b := append([]byte{}, good...); b[8] = 7; return b }(),
	}
	for name, b := range cases {
		if _, _, err := decodeShard(b); !errors.Is(err, ErrBadStore) {
			t.Errorf("%s: decodeShard err = %v, want ErrBadStore", name, err)
		}
	}
}

// validManifest builds a structurally consistent manifest for tests.
func validManifest() *Manifest {
	cfg := []byte(`{"scale":"mvg"}`)
	m := &Manifest{
		FormatVersion: FormatVersion,
		Dataset:       "toy",
		Config:        cfg,
		ConfigHash:    hashHex(cfg),
		SeriesLen:     8,
		Cols:          3,
		FeatureNames:  []string{"a", "b", "c"},
		ClassNames:    []string{"1", "2"},
		Rows:          2,
		Complete:      true,
		Chunks: []ChunkInfo{{
			Index: 0, Rows: 2, Shard: shardName(0),
			ShardSHA256: strings.Repeat("ab", 32),
			InputSHA256: hashChunkInput([][]float64{{1}}, []string{"1"}),
		}},
	}
	return m
}

// TestManifestRoundTrip pins deterministic encode/decode.
func TestManifestRoundTrip(t *testing.T) {
	m := validManifest()
	b, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeManifest(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip mismatch:\n%#v\n%#v", got, m)
	}
	b2, err := got.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(b2) {
		t.Fatal("manifest encoding is not deterministic")
	}
}

// TestDecodeManifestRejects covers the structural validations: every
// mutation below must fail closed with ErrBadStore.
func TestDecodeManifestRejects(t *testing.T) {
	mutate := map[string]func(m *Manifest){
		"bad-version":      func(m *Manifest) { m.FormatVersion = 99 },
		"config-tampered":  func(m *Manifest) { m.Config = []byte(`{"scale":"uvg"}`) },
		"hash-tampered":    func(m *Manifest) { m.ConfigHash = "sha256:" + strings.Repeat("0", 64) },
		"no-config":        func(m *Manifest) { m.Config = nil },
		"bad-series-len":   func(m *Manifest) { m.SeriesLen = 0 },
		"names-vs-cols":    func(m *Manifest) { m.FeatureNames = m.FeatureNames[:2] },
		"sparse-chunks":    func(m *Manifest) { m.Chunks[0].Index = 3 },
		"zero-row-chunk":   func(m *Manifest) { m.Chunks[0].Rows = 0 },
		"path-traversal":   func(m *Manifest) { m.Chunks[0].Shard = "../../etc/passwd" },
		"absolute-shard":   func(m *Manifest) { m.Chunks[0].Shard = "/etc/passwd" },
		"bad-digest":       func(m *Manifest) { m.Chunks[0].ShardSHA256 = "zz" },
		"rows-mismatch":    func(m *Manifest) { m.Rows = 5 },
		"duplicate-class":  func(m *Manifest) { m.ClassNames = []string{"1", "1"} },
		"negative-rows":    func(m *Manifest) { m.Rows = -1; m.Chunks = nil },
		"uppercase-digest": func(m *Manifest) { m.Chunks[0].InputSHA256 = strings.ToUpper(m.Chunks[0].InputSHA256) },
	}
	for name, fn := range mutate {
		t.Run(name, func(t *testing.T) {
			m := validManifest()
			fn(m)
			b, err := m.Encode()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := DecodeManifest(b); !errors.Is(err, ErrBadStore) {
				t.Fatalf("DecodeManifest err = %v, want ErrBadStore", err)
			}
		})
	}
	if _, err := DecodeManifest([]byte("not json")); !errors.Is(err, ErrBadStore) {
		t.Fatalf("non-JSON err = %v, want ErrBadStore", err)
	}
}

// TestSampleIndices pins the deterministic parity sampling: first and
// last row always included, indices strictly increasing, bounded by k.
func TestSampleIndices(t *testing.T) {
	for _, tc := range []struct{ rows, k, want int }{
		{1, 4, 1}, {2, 4, 2}, {3, 4, 3}, {4, 4, 4}, {5, 4, 4}, {1000, 4, 4}, {1000, 1, 1}, {7, 0, 4},
	} {
		idx := sampleIndices(tc.rows, tc.k)
		if len(idx) != tc.want {
			t.Fatalf("sampleIndices(%d,%d) len = %d, want %d", tc.rows, tc.k, len(idx), tc.want)
		}
		if idx[0] != 0 {
			t.Fatalf("sampleIndices(%d,%d) first = %d, want 0", tc.rows, tc.k, idx[0])
		}
		if tc.k > 1 && idx[len(idx)-1] != tc.rows-1 {
			t.Fatalf("sampleIndices(%d,%d) last = %d, want %d", tc.rows, tc.k, idx[len(idx)-1], tc.rows-1)
		}
		for i := 1; i < len(idx); i++ {
			if idx[i] <= idx[i-1] {
				t.Fatalf("sampleIndices(%d,%d) not strictly increasing: %v", tc.rows, tc.k, idx)
			}
		}
	}
}
