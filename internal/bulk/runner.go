package bulk

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"mvg/internal/faults"
)

// ExtractFunc turns a chunk of series into one feature row per series.
// The bulk runner supplies chunks of the source's size; mvg wires this to
// Pipeline.Extract, so per-series work fans across the persistent pool.
type ExtractFunc func(ctx context.Context, series [][]float64) ([][]float64, error)

// ErrStoreMismatch reports a resume attempt against a store built from a
// different extraction config or dataset: extending it would mix feature
// spaces, so the runner refuses; start over with Resume disabled.
var ErrStoreMismatch = errors.New("bulk: existing store does not match this run")

// RunOptions configures one bulk extraction run.
type RunOptions struct {
	// Dir is the store directory; it is created if missing.
	Dir string
	// Dataset names the input in the manifest (reports, mismatch checks).
	Dataset string
	// ConfigJSON is the opaque extraction config recorded in the
	// manifest; its hash is the resume-compatibility key.
	ConfigJSON []byte
	// Extract computes feature rows for a chunk.
	Extract ExtractFunc
	// FeatureNames resolves the feature-column names for the uniform
	// series length, called once on the first chunk.
	FeatureNames func(seriesLen int) []string
	// Resume makes the runner honour an existing manifest: chunks whose
	// input hash and shard checksum both verify are skipped. When false,
	// any existing manifest and shards are removed first.
	Resume bool
	// Injector is the optional fault-injection hook exercised by the
	// crash-recovery suite; nil means disarmed.
	Injector *faults.Injector
	// Progress, when non-nil, observes every chunk decision.
	Progress func(Progress)
}

// Progress is one chunk's outcome, delivered in chunk order.
type Progress struct {
	Chunk   int
	Rows    int
	Skipped bool // true when the chunk's prior shard verified and was kept
}

// Result summarizes a completed run.
type Result struct {
	Manifest *Manifest
	// Extracted and Skipped count chunks computed vs verified-and-kept.
	Extracted, Skipped int
}

// Run streams src chunk by chunk into a columnar feature store at
// opts.Dir: at most one chunk of raw series plus its feature rows is in
// memory at any moment, regardless of dataset size. After every chunk the
// manifest checkpoint is atomically rewritten, so a killed run loses at
// most the chunk in flight; a resumed run (opts.Resume) re-reads the
// input — parsing is cheap next to extraction — and re-extracts only
// chunks whose recorded input hash or shard checksum fails to verify.
// Because shard bytes and manifest JSON are pure functions of (input,
// config), the store a resumed run converges to is byte-identical to an
// uninterrupted run's.
func Run(ctx context.Context, src Source, opts RunOptions) (*Result, error) {
	if opts.Extract == nil || opts.FeatureNames == nil {
		return nil, errors.New("bulk: RunOptions needs Extract and FeatureNames")
	}
	if len(opts.ConfigJSON) == 0 {
		return nil, errors.New("bulk: RunOptions needs ConfigJSON")
	}
	cfg, err := compactJSON(opts.ConfigJSON)
	if err != nil {
		return nil, fmt.Errorf("bulk: ConfigJSON: %w", err)
	}
	opts.ConfigJSON = cfg
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}

	prior, err := loadPrior(opts)
	if err != nil {
		return nil, err
	}

	m := &Manifest{
		FormatVersion: FormatVersion,
		Dataset:       opts.Dataset,
		Config:        opts.ConfigJSON,
		ConfigHash:    hashHex(opts.ConfigJSON),
	}
	classID := map[string]int{}
	res := &Result{Manifest: m}

	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		series, labels, err := src.NextChunk()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if len(series) == 0 {
			continue
		}
		index := len(m.Chunks)

		if m.SeriesLen == 0 {
			m.SeriesLen = len(series[0])
			m.FeatureNames = opts.FeatureNames(m.SeriesLen)
			m.Cols = len(m.FeatureNames)
			if m.Cols == 0 {
				return nil, fmt.Errorf("bulk: no feature names for series length %d", m.SeriesLen)
			}
		}
		ids := make([]int32, len(series))
		for i, s := range series {
			if len(s) != m.SeriesLen {
				return nil, fmt.Errorf("bulk: chunk %d row %d: series has %d points, series 1 has %d",
					index, i, len(s), m.SeriesLen)
			}
			id, ok := classID[labels[i]]
			if !ok {
				id = len(m.ClassNames)
				classID[labels[i]] = id
				m.ClassNames = append(m.ClassNames, labels[i])
			}
			ids[i] = int32(id)
		}

		inputHash := hashChunkInput(series, labels)
		info := ChunkInfo{Index: index, Rows: len(series), Shard: shardName(index), InputSHA256: inputHash}

		if sha, ok := chunkIsDurable(opts.Dir, prior, info); ok {
			info.ShardSHA256 = sha
			m.Chunks = append(m.Chunks, info)
			m.Rows += info.Rows
			res.Skipped++
			if opts.Progress != nil {
				opts.Progress(Progress{Chunk: index, Rows: info.Rows, Skipped: true})
			}
			continue
		}

		if err := opts.Injector.Fire(ctx, faults.PointBulkChunkExtract); err != nil {
			return nil, fmt.Errorf("bulk: chunk %d: %w", index, err)
		}
		x, err := opts.Extract(ctx, series)
		if err != nil {
			return nil, fmt.Errorf("bulk: chunk %d: %w", index, err)
		}
		if len(x) != len(series) || len(x[0]) != m.Cols {
			return nil, fmt.Errorf("bulk: chunk %d: extractor returned %d×%d, want %d×%d",
				index, len(x), len(x[0]), len(series), m.Cols)
		}
		shard := encodeShard(ids, x)
		if err := opts.Injector.Fire(ctx, faults.PointBulkShardWrite); err != nil {
			return nil, fmt.Errorf("bulk: chunk %d: %w", index, err)
		}
		if err := writeFileAtomic(opts.Dir, info.Shard, shard); err != nil {
			return nil, fmt.Errorf("bulk: chunk %d: %w", index, err)
		}
		info.ShardSHA256 = fmt.Sprintf("%x", sha256.Sum256(shard))
		m.Chunks = append(m.Chunks, info)
		m.Rows += info.Rows
		res.Extracted++

		// Checkpoint after every extracted chunk: a kill between here and
		// the next chunk costs nothing on resume.
		if err := opts.Injector.Fire(ctx, faults.PointBulkManifestWrite); err != nil {
			return nil, fmt.Errorf("bulk: chunk %d: %w", index, err)
		}
		if err := checkpoint(opts.Dir, m); err != nil {
			return nil, fmt.Errorf("bulk: chunk %d: %w", index, err)
		}
		if opts.Progress != nil {
			opts.Progress(Progress{Chunk: index, Rows: info.Rows})
		}
	}

	if len(m.Chunks) == 0 {
		return nil, errors.New("bulk: input produced no chunks")
	}
	if err := removeStaleShards(opts.Dir, len(m.Chunks)); err != nil {
		return nil, err
	}
	m.Complete = true
	if err := opts.Injector.Fire(ctx, faults.PointBulkManifestWrite); err != nil {
		return nil, fmt.Errorf("bulk: finalize: %w", err)
	}
	if err := checkpoint(opts.Dir, m); err != nil {
		return nil, fmt.Errorf("bulk: finalize: %w", err)
	}
	return res, nil
}

// loadPrior resolves the resume baseline: the existing manifest when
// resuming (after a config/dataset compatibility check), nothing when
// starting fresh (existing store files are removed so stale shards can
// never shadow the new run).
func loadPrior(opts RunOptions) (*Manifest, error) {
	path := filepath.Join(opts.Dir, ManifestName)
	b, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if !opts.Resume {
		if err := os.Remove(path); err != nil {
			return nil, err
		}
		return nil, removeStaleShards(opts.Dir, 0)
	}
	prior, err := DecodeManifest(b)
	if err != nil {
		// A torn or corrupt manifest (e.g. the process died mid-rename
		// sequence in a way rename cannot protect against, or manual
		// tampering) is not fatal: resume just starts from nothing, and
		// per-chunk shard verification still salvages intact shards.
		return nil, nil
	}
	if prior.ConfigHash != hashHex(opts.ConfigJSON) {
		return nil, fmt.Errorf("%w: %s was extracted under config %s, this run is %s (re-run without resume to rebuild)",
			ErrStoreMismatch, opts.Dir, prior.ConfigHash, hashHex(opts.ConfigJSON))
	}
	if prior.Dataset != opts.Dataset {
		return nil, fmt.Errorf("%w: %s holds dataset %q, this run extracts %q (re-run without resume to rebuild)",
			ErrStoreMismatch, opts.Dir, prior.Dataset, opts.Dataset)
	}
	return prior, nil
}

// chunkIsDurable reports whether the prior run already extracted exactly
// this chunk: the manifest entry must match the chunk's row count and
// input hash, and the shard on disk must hash to what the manifest
// recorded. Any mismatch — different input, torn shard, flipped bit —
// fails closed into re-extraction.
func chunkIsDurable(dir string, prior *Manifest, info ChunkInfo) (shardSHA string, ok bool) {
	if prior == nil || info.Index >= len(prior.Chunks) {
		return "", false
	}
	p := prior.Chunks[info.Index]
	if p.Rows != info.Rows || p.InputSHA256 != info.InputSHA256 || p.Shard != info.Shard {
		return "", false
	}
	raw, err := os.ReadFile(filepath.Join(dir, p.Shard))
	if err != nil {
		return "", false
	}
	if fmt.Sprintf("%x", sha256.Sum256(raw)) != p.ShardSHA256 {
		return "", false
	}
	return p.ShardSHA256, true
}

// checkpoint atomically rewrites the manifest.
func checkpoint(dir string, m *Manifest) error {
	b, err := m.Encode()
	if err != nil {
		return err
	}
	return writeFileAtomic(dir, ManifestName, b)
}

// removeStaleShards deletes shard files at or beyond numChunks — leftovers
// from a prior run with more chunks (smaller chunk size, larger input)
// that would otherwise linger as orphans the manifest no longer describes.
func removeStaleShards(dir string, numChunks int) error {
	matches, err := filepath.Glob(filepath.Join(dir, "shard-*.fm"))
	if err != nil {
		return err
	}
	for _, path := range matches {
		var idx int
		if _, err := fmt.Sscanf(filepath.Base(path), "shard-%d.fm", &idx); err != nil {
			continue
		}
		if idx >= numChunks {
			if err := os.Remove(path); err != nil {
				return err
			}
		}
	}
	return nil
}

// CheckFinite scans a feature matrix for NaN/±Inf values, returning the
// coordinates of the first offender. Shared by the runner's validation
// suite and tests.
func CheckFinite(x [][]float64) (row, col int, ok bool) {
	for i, r := range x {
		for j, v := range r {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return i, j, false
			}
		}
	}
	return 0, 0, true
}
