package bulk

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
)

// On-disk layout of a feature store directory (docs/bulk.md):
//
//	<dir>/manifest.json      resume + validation metadata, written last
//	<dir>/shard-000000.fm    one columnar shard per input chunk
//	<dir>/shard-000001.fm
//	...
//
// A shard is a self-describing little-endian binary block:
//
//	offset 0   magic "MVGF"
//	       4   uint32 format version (currently 1)
//	       8   uint32 rows
//	      12   uint32 cols
//	      16   int32 label id per row            (4·rows bytes)
//	      ...  float64 feature columns, column-major: all rows of
//	           feature 0, then all rows of feature 1, ...  (8·rows·cols)
//
// Column-major order is the point of the format: a selection pass over
// one feature ("give me T0.VG.Density for 10M series") reads rows·8
// contiguous bytes per shard instead of striding the whole matrix.
//
// Shards never change after their atomic rename into place; every byte is
// a pure function of (input chunk, extraction config), which is what
// makes resumed and uninterrupted runs byte-identical.

// ManifestName is the manifest's filename inside a store directory.
const ManifestName = "manifest.json"

const (
	shardMagic       = "MVGF"
	shardVersion     = 1
	shardHeaderBytes = 16
	// FormatVersion is the store format version stamped into manifests.
	FormatVersion = 1
)

// shardName returns the canonical shard filename for a chunk index.
func shardName(index int) string { return fmt.Sprintf("shard-%06d.fm", index) }

// ChunkInfo is one chunk's manifest record: enough to decide on resume
// whether the chunk's work is already durable (input hash + shard hash
// both verify) and to validate the shard later without trusting it.
type ChunkInfo struct {
	Index int `json:"index"`
	Rows  int `json:"rows"`
	// Shard is the shard's bare filename inside the store directory.
	Shard string `json:"shard"`
	// ShardSHA256 is the hex SHA-256 of the entire shard file.
	ShardSHA256 string `json:"shard_sha256"`
	// InputSHA256 is the hex SHA-256 of the chunk's canonical input
	// encoding (see hashChunkInput): label tokens and raw sample bits.
	InputSHA256 string `json:"input_sha256"`
}

// Manifest is the store's metadata and resume journal, serialized as
// deterministic JSON (no timestamps, fixed field order) so that two runs
// over the same input produce byte-identical manifests.
type Manifest struct {
	FormatVersion int    `json:"format_version"`
	Dataset       string `json:"dataset"`
	// Config is the opaque extraction-config JSON supplied by the caller;
	// ConfigHash is its "sha256:<hex>" digest and the resume-compatibility
	// key: a store extracted under one config is never silently extended
	// under another.
	Config     json.RawMessage `json:"config"`
	ConfigHash string          `json:"config_hash"`
	SeriesLen  int             `json:"series_len"`
	Cols       int             `json:"cols"`
	// FeatureNames names the Cols feature columns in shard order.
	FeatureNames []string `json:"feature_names"`
	// ClassNames maps dense label ids back to raw label tokens, in
	// first-seen input order (a streaming read cannot sort a token set it
	// has not finished discovering; docs/bulk.md).
	ClassNames []string `json:"class_names"`
	// Rows is the total row count across chunks written so far.
	Rows int `json:"rows"`
	// Complete is false from the first checkpoint until the final chunk's
	// shard has landed; an incomplete manifest is a resumable journal, not
	// a servable store.
	Complete bool        `json:"complete"`
	Chunks   []ChunkInfo `json:"chunks"`
}

// ErrBadStore is the sentinel for structurally invalid store content:
// undecodable or inconsistent manifests, corrupt or misdescribed shards.
var ErrBadStore = errors.New("bulk: invalid feature store")

// badStore wraps a formatted message in the ErrBadStore taxonomy.
func badStore(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadStore, fmt.Sprintf(format, args...))
}

// DecodeManifest parses and structurally validates manifest bytes: format
// version, config-hash integrity, dense ascending chunk indexes, sane
// bare shard filenames, digest shapes, and count consistency. It does not
// touch the filesystem — shard content is Validate's job.
func DecodeManifest(b []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, badStore("manifest: %v", err)
	}
	if m.FormatVersion != FormatVersion {
		return nil, badStore("manifest: unsupported format version %d", m.FormatVersion)
	}
	if len(m.Config) == 0 {
		return nil, badStore("manifest: missing config")
	}
	// Encoding re-indents the embedded config, so hash the canonical
	// (compact) form — the same form writers hash.
	cfg, err := compactJSON(m.Config)
	if err != nil {
		return nil, badStore("manifest: config: %v", err)
	}
	m.Config = cfg
	if got := hashHex(m.Config); m.ConfigHash != got {
		return nil, badStore("manifest: config_hash %q does not match config (%q)", m.ConfigHash, got)
	}
	if m.SeriesLen <= 0 {
		return nil, badStore("manifest: series_len %d", m.SeriesLen)
	}
	if m.Cols <= 0 || len(m.FeatureNames) != m.Cols {
		return nil, badStore("manifest: %d feature names for %d cols", len(m.FeatureNames), m.Cols)
	}
	if m.Rows < 0 {
		return nil, badStore("manifest: negative row count")
	}
	rows := 0
	for i, c := range m.Chunks {
		if c.Index != i {
			return nil, badStore("manifest: chunk %d has index %d", i, c.Index)
		}
		if c.Rows <= 0 {
			return nil, badStore("manifest: chunk %d has %d rows", i, c.Rows)
		}
		if c.Shard != filepath.Base(c.Shard) || c.Shard == "." || c.Shard == "" {
			return nil, badStore("manifest: chunk %d shard name %q is not a bare filename", i, c.Shard)
		}
		if !isHexDigest(c.ShardSHA256) || !isHexDigest(c.InputSHA256) {
			return nil, badStore("manifest: chunk %d has malformed digests", i)
		}
		rows += c.Rows
	}
	if rows != m.Rows {
		return nil, badStore("manifest: chunk rows sum to %d, rows says %d", rows, m.Rows)
	}
	seen := make(map[string]bool, len(m.ClassNames))
	for _, name := range m.ClassNames {
		if seen[name] {
			return nil, badStore("manifest: duplicate class name %q", name)
		}
		seen[name] = true
	}
	return &m, nil
}

// Encode serializes the manifest deterministically.
func (m *Manifest) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// compactJSON canonicalizes JSON whitespace. Config bytes are always
// hashed and stored in this form so that the indentation Encode applies
// to embedded raw JSON never shifts the config hash.
func compactJSON(b []byte) ([]byte, error) {
	var buf bytes.Buffer
	if err := json.Compact(&buf, b); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// HashConfig digests config JSON exactly as manifests record it: the
// canonical (compact) form under the "sha256:<hex>" scheme. Callers use
// it to test a config against a store's ConfigHash without rebuilding the
// store. Non-JSON input hashes verbatim (it can never match a manifest's
// hash, which is the right answer).
func HashConfig(b []byte) string {
	c, err := compactJSON(b)
	if err != nil {
		return hashHex(b)
	}
	return hashHex(c)
}

// isHexDigest reports whether s looks like a lowercase hex SHA-256.
func isHexDigest(s string) bool {
	if len(s) != 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// hashHex digests bytes as the manifest's "sha256:<hex>" config key.
func hashHex(b []byte) string {
	return fmt.Sprintf("sha256:%x", sha256.Sum256(b))
}

// hashChunkInput digests a chunk's canonical input encoding: for each
// row, the label token, a NUL separator, then the samples' IEEE-754 bits
// little-endian. Two chunks hash equal iff they are the same rows with
// the same labels bit-for-bit — the resume test for "this shard was
// extracted from exactly this input".
func hashChunkInput(series [][]float64, labels []string) string {
	h := sha256.New()
	var buf [8]byte
	for i, s := range series {
		h.Write([]byte(labels[i]))
		h.Write([]byte{0})
		for _, v := range s {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			h.Write(buf[:])
		}
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// encodeShard serializes one chunk's label ids and row-major feature
// matrix into the columnar shard format. Encoding is canonical: the same
// rows always produce the same bytes.
func encodeShard(labels []int32, x [][]float64) []byte {
	rows, cols := len(x), 0
	if rows > 0 {
		cols = len(x[0])
	}
	b := make([]byte, shardHeaderBytes+4*rows+8*rows*cols)
	copy(b, shardMagic)
	binary.LittleEndian.PutUint32(b[4:], shardVersion)
	binary.LittleEndian.PutUint32(b[8:], uint32(rows))
	binary.LittleEndian.PutUint32(b[12:], uint32(cols))
	off := shardHeaderBytes
	for _, id := range labels {
		binary.LittleEndian.PutUint32(b[off:], uint32(id))
		off += 4
	}
	for j := 0; j < cols; j++ {
		for i := 0; i < rows; i++ {
			binary.LittleEndian.PutUint64(b[off:], math.Float64bits(x[i][j]))
			off += 8
		}
	}
	return b
}

// decodeShard parses a shard back into label ids and a row-major matrix.
// It rejects bad magic, unknown versions, and any size mismatch — a shard
// either decodes exactly or not at all (trailing bytes are corruption).
func decodeShard(b []byte) (labels []int32, x [][]float64, err error) {
	if len(b) < shardHeaderBytes || string(b[:4]) != shardMagic {
		return nil, nil, badStore("shard: bad magic")
	}
	if v := binary.LittleEndian.Uint32(b[4:]); v != shardVersion {
		return nil, nil, badStore("shard: unsupported version %d", v)
	}
	rows := int(binary.LittleEndian.Uint32(b[8:]))
	cols := int(binary.LittleEndian.Uint32(b[12:]))
	if rows == 0 && cols != 0 {
		// A rowless shard carries no data bytes to witness its cols; the
		// canonical encoding of zero rows is zero cols.
		return nil, nil, badStore("shard: 0 rows with %d cols", cols)
	}
	want := uint64(shardHeaderBytes) + 4*uint64(rows) + 8*uint64(rows)*uint64(cols)
	if uint64(len(b)) != want {
		return nil, nil, badStore("shard: %d bytes for %d×%d, want %d", len(b), rows, cols, want)
	}
	labels = make([]int32, rows)
	off := shardHeaderBytes
	for i := range labels {
		labels[i] = int32(binary.LittleEndian.Uint32(b[off:]))
		off += 4
	}
	flat := make([]float64, rows*cols)
	x = make([][]float64, rows)
	for i := range x {
		x[i] = flat[i*cols : (i+1)*cols : (i+1)*cols]
	}
	for j := 0; j < cols; j++ {
		for i := 0; i < rows; i++ {
			x[i][j] = math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
			off += 8
		}
	}
	return labels, x, nil
}

// readShardFile loads and decodes one shard, returning its raw bytes too
// so callers can checksum exactly what was decoded.
func readShardFile(path string) (raw []byte, labels []int32, x [][]float64, err error) {
	raw, err = os.ReadFile(path)
	if err != nil {
		return nil, nil, nil, err
	}
	labels, x, err = decodeShard(raw)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("%s: %w", filepath.Base(path), err)
	}
	return raw, labels, x, nil
}

// writeFileAtomic lands data at dir/name via a temp sibling + rename, so
// a crash mid-write never leaves a torn file where a reader (or a resumed
// run) expects a whole one.
func writeFileAtomic(dir, name string, data []byte) error {
	tmp, err := os.CreateTemp(dir, name+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(dir, name))
}

// ReadManifest loads and validates a store directory's manifest.
func ReadManifest(dir string) (*Manifest, error) {
	b, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	return DecodeManifest(b)
}

// ReadChunkRows decodes one chunk's shard after verifying its checksum
// against the manifest, returning dense label ids and row-major features.
func ReadChunkRows(dir string, m *Manifest, index int) (labels []int32, x [][]float64, err error) {
	if index < 0 || index >= len(m.Chunks) {
		return nil, nil, badStore("chunk index %d of %d", index, len(m.Chunks))
	}
	c := m.Chunks[index]
	raw, labels, x, err := readShardFile(filepath.Join(dir, c.Shard))
	if err != nil {
		return nil, nil, err
	}
	if got := fmt.Sprintf("%x", sha256.Sum256(raw)); got != c.ShardSHA256 {
		return nil, nil, badStore("%s: checksum mismatch (have %s, manifest says %s)", c.Shard, got, c.ShardSHA256)
	}
	if len(x) != c.Rows {
		return nil, nil, badStore("%s: %d rows, manifest says %d", c.Shard, len(x), c.Rows)
	}
	if len(x) > 0 && len(x[0]) != m.Cols {
		return nil, nil, badStore("%s: %d cols, manifest says %d", c.Shard, len(x[0]), m.Cols)
	}
	return labels, x, nil
}
