package bulk

import (
	"reflect"
	"testing"
)

// FuzzManifestDecode hammers the manifest parser with arbitrary bytes:
// it must never panic, and anything it accepts must round-trip —
// Encode(Decode(b)) decodes back to a deeply equal manifest. Run in CI's
// nightly fuzz job (.github/workflows/fuzz.yml).
func FuzzManifestDecode(f *testing.F) {
	good, err := validManifest().Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte("{}"))
	f.Add([]byte(`{"format_version":1}`))
	f.Add([]byte(`{"format_version":1,"config":{},"chunks":[{"index":0}]}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := DecodeManifest(b)
		if err != nil {
			return
		}
		enc, err := m.Encode()
		if err != nil {
			t.Fatalf("accepted manifest failed to encode: %v", err)
		}
		again, err := DecodeManifest(enc)
		if err != nil {
			t.Fatalf("re-encoded manifest failed to decode: %v", err)
		}
		if !reflect.DeepEqual(m, again) {
			t.Fatalf("manifest round trip drifted:\n%#v\n%#v", m, again)
		}
	})
}

// FuzzShardDecode does the same for the binary shard parser: no panics
// on arbitrary bytes, and accepted shards re-encode canonically to the
// exact input bytes.
func FuzzShardDecode(f *testing.F) {
	f.Add(encodeShard([]int32{0, 1}, [][]float64{{1, 2}, {3, 4}}))
	f.Add(encodeShard(nil, nil))
	f.Add([]byte("MVGF"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, b []byte) {
		labels, x, err := decodeShard(b)
		if err != nil {
			return
		}
		if string(encodeShard(labels, x)) != string(b) {
			t.Fatal("accepted shard is not canonical: encode(decode(b)) != b")
		}
	})
}
