// Package bulk is the offline dataset-scale extraction subsystem: it
// turns archived time-series datasets of any size into an on-disk
// columnar feature store with bounded memory, manifest-driven
// resumability, and a validation suite that proves the store matches what
// a fresh extraction would produce (docs/bulk.md).
//
// The moving parts:
//
//   - A Source streams the input dataset in bounded chunks (UCR text via
//     internal/ucr's ChunkReader, raw NDJSON via NewNDJSONSource); at any
//     moment at most one chunk of raw series is resident.
//   - Run extracts each chunk on the caller-supplied ExtractFunc (the
//     mvg.Pipeline batch path, which fans per-series work across the
//     persistent pool) and writes one columnar shard per chunk plus a
//     JSON manifest checkpoint after every shard, so a killed run resumes
//     instead of restarting: chunks whose input hash and shard checksum
//     verify are skipped.
//   - Validate replays the structural invariants (checksums, counts,
//     label ranges, finiteness) and — given the original input — a parity
//     check that re-extracts sampled rows per shard and asserts
//     bit-identical features, the same determinism contract the golden
//     vectors pin.
//
// The package deliberately knows nothing about the mvg root package
// (which wraps it for library users): extraction arrives as a closure,
// configuration as opaque JSON whose hash keys resume compatibility.
package bulk

import (
	"encoding/json"
	"fmt"
	"io"

	"mvg/internal/ucr"
)

// Source streams a labelled dataset in bounded chunks. NextChunk returns
// the next chunk of series with aligned raw label tokens, and io.EOF
// after the last chunk. Implementations must keep chunks independent:
// returned slices are not reused across calls.
type Source interface {
	NextChunk() (series [][]float64, labels []string, err error)
}

// ucrSource adapts internal/ucr's streaming ChunkReader.
type ucrSource struct {
	cr *ucr.ChunkReader
}

// NewUCRSource streams a UCR-format input (label,v1,...,vn per line) in
// chunks of up to chunkSize rows (non-positive selects
// ucr.DefaultChunkSize). Malformed records surface with the ucr error
// taxonomy: *ucr.ParseError coordinates matching ucr.ErrMalformed.
func NewUCRSource(r io.Reader, name string, chunkSize int) Source {
	return &ucrSource{cr: ucr.NewChunkReader(r, name, chunkSize)}
}

func (s *ucrSource) NextChunk() ([][]float64, []string, error) {
	c, err := s.cr.Next()
	if err != nil {
		return nil, nil, err
	}
	return c.Series, c.Labels, nil
}

// ndjsonSource streams newline-delimited JSON records of the form
// {"label": "a", "series": [1, 2.5, ...]}; labels may also be bare JSON
// numbers, kept verbatim as tokens.
type ndjsonSource struct {
	name      string
	chunkSize int
	dec       *json.Decoder
	lineNo    int
	width     int
	err       error
	done      bool
}

// NewNDJSONSource streams an NDJSON input: one {"label": ..., "series":
// [...]} object per line. chunkSize bounds rows per chunk (non-positive
// selects ucr.DefaultChunkSize). JSON cannot encode NaN or ±Inf, so every
// parsed sample is finite by construction; empty series and series whose
// length differs from the first record are rejected with their record
// number.
func NewNDJSONSource(r io.Reader, name string, chunkSize int) Source {
	if chunkSize <= 0 {
		chunkSize = ucr.DefaultChunkSize
	}
	return &ndjsonSource{name: name, chunkSize: chunkSize, dec: json.NewDecoder(r)}
}

// ndjsonLabel accepts a JSON string or number and keeps its verbatim text
// as the label token.
type ndjsonLabel string

func (l *ndjsonLabel) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		*l = ndjsonLabel(s)
		return nil
	}
	var n json.Number
	if err := json.Unmarshal(b, &n); err == nil {
		*l = ndjsonLabel(n.String())
		return nil
	}
	return fmt.Errorf("label must be a string or number, have %s", b)
}

func (s *ndjsonSource) NextChunk() ([][]float64, []string, error) {
	if s.err != nil {
		return nil, nil, s.err
	}
	if s.done {
		return nil, nil, io.EOF
	}
	var series [][]float64
	var labels []string
	for len(series) < s.chunkSize {
		var rec struct {
			Label  ndjsonLabel `json:"label"`
			Series []float64   `json:"series"`
		}
		err := s.dec.Decode(&rec)
		if err == io.EOF {
			s.done = true
			if s.lineNo == 0 {
				s.err = fmt.Errorf("bulk: %s: contains no samples", s.name)
				return nil, nil, s.err
			}
			break
		}
		s.lineNo++
		if err != nil {
			s.err = fmt.Errorf("bulk: %s record %d: %w", s.name, s.lineNo, err)
			return nil, nil, s.err
		}
		if len(rec.Series) == 0 {
			s.err = fmt.Errorf("bulk: %s record %d: empty series", s.name, s.lineNo)
			return nil, nil, s.err
		}
		if s.width == 0 {
			s.width = len(rec.Series)
		} else if len(rec.Series) != s.width {
			s.err = fmt.Errorf("bulk: %s record %d: series has %d points, record 1 has %d",
				s.name, s.lineNo, len(rec.Series), s.width)
			return nil, nil, s.err
		}
		series = append(series, rec.Series)
		labels = append(labels, string(rec.Label))
	}
	if len(series) == 0 {
		return nil, nil, io.EOF
	}
	return series, labels, nil
}
