package bulk

import (
	"context"
	"crypto/sha256"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// checkByName plucks one check's result from a validation report.
func checkByName(t *testing.T, results []CheckResult, name string) CheckResult {
	t.Helper()
	for _, r := range results {
		if r.Name == name {
			return r
		}
	}
	t.Fatalf("no %q check in %+v", name, results)
	return CheckResult{}
}

// rewriteManifest mutates a store's manifest in place, keeping it
// structurally decodable (the mutation must preserve DecodeManifest's
// invariants).
func rewriteManifest(t *testing.T, dir string, mutate func(*Manifest)) {
	t.Helper()
	m, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	mutate(m)
	b, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, ManifestName), b, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestValidateMissingManifest(t *testing.T) {
	results, ok, err := Validate(context.Background(), ValidateOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if ok || checkByName(t, results, "manifest").OK {
		t.Fatalf("empty dir validated: %+v", results)
	}
}

func TestValidateDetectsIncompleteStore(t *testing.T) {
	dir := t.TempDir()
	runToy(t, dir, 10, 4, nil)
	rewriteManifest(t, dir, func(m *Manifest) { m.Complete = false })
	results, ok, err := Validate(context.Background(), ValidateOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	mc := checkByName(t, results, "manifest")
	if ok || mc.OK || !strings.Contains(mc.Detail, "incomplete") {
		t.Fatalf("incomplete store validated: %+v", results)
	}
}

func TestValidateDetectsShardCorruption(t *testing.T) {
	dir := t.TempDir()
	runToy(t, dir, 10, 4, nil)
	path := filepath.Join(dir, shardName(1))
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-3] ^= 0x40 // flip one data bit; shard still decodes, checksum does not
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	results, ok, err := Validate(context.Background(), ValidateOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	sc := checkByName(t, results, "shards")
	if ok || sc.OK || !strings.Contains(sc.Detail, "checksum mismatch") {
		t.Fatalf("corrupt shard validated: %+v", results)
	}
	if !checkByName(t, results, "manifest").OK {
		t.Fatal("manifest check should still pass — corruption is in the shard")
	}
}

func TestValidateDetectsNonFinite(t *testing.T) {
	dir := t.TempDir()
	runToy(t, dir, 10, 4, func(o *RunOptions) {
		o.Extract = func(ctx context.Context, series [][]float64) ([][]float64, error) {
			x, err := fakeExtract(ctx, series)
			if err == nil && len(x) == 2 { // poison one row of the 2-row tail chunk
				x[1][2] = math.NaN()
			}
			return x, err
		}
	})
	results, ok, err := Validate(context.Background(), ValidateOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	fc := checkByName(t, results, "finite")
	if ok || fc.OK || !strings.Contains(fc.Detail, "chunk 2 row 1 col 2") {
		t.Fatalf("NaN feature validated: %+v", results)
	}
}

func TestValidateDetectsBadLabelID(t *testing.T) {
	dir := t.TempDir()
	runToy(t, dir, 6, 3, nil)
	// Rewrite shard 0 with an out-of-range label id and patch its checksum
	// so the structural checks pass and the labels check has to catch it.
	m, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	ids, x, err := ReadChunkRows(dir, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	ids[0] = 99
	tamperShard(t, dir, 0, ids, x)
	results, ok, err := Validate(context.Background(), ValidateOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	lc := checkByName(t, results, "labels")
	if ok || lc.OK || !strings.Contains(lc.Detail, "label id 99") {
		t.Fatalf("out-of-range label id validated: %+v", results)
	}
}

// tamperShard re-encodes a shard with altered content and patches the
// manifest's recorded checksum, simulating tampering the structural
// checks cannot see.
func tamperShard(t *testing.T, dir string, index int, ids []int32, x [][]float64) {
	t.Helper()
	shard := encodeShard(ids, x)
	if err := os.WriteFile(filepath.Join(dir, shardName(index)), shard, 0o644); err != nil {
		t.Fatal(err)
	}
	rewriteManifest(t, dir, func(m *Manifest) {
		m.Chunks[index].ShardSHA256 = fmt.Sprintf("%x", sha256.Sum256(shard))
	})
}

func TestParityDetectsTamperedFeature(t *testing.T) {
	dir := t.TempDir()
	const rows, chunk = 10, 4
	runToy(t, dir, rows, chunk, nil)
	m, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	ids, x, err := ReadChunkRows(dir, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	x[0][0] += 1e-9 // row 0 is always in the parity sample
	tamperShard(t, dir, 0, ids, x)

	series, labels := toyDataset(rows, 16)
	results, ok, err := Validate(context.Background(), ValidateOptions{
		Dir:     dir,
		Source:  &memSource{series: series, labels: labels, chunk: chunk},
		Extract: fakeExtract,
	})
	if err != nil {
		t.Fatal(err)
	}
	pc := checkByName(t, results, "parity")
	if ok || pc.OK || !strings.Contains(pc.Detail, "not bit-identical") {
		t.Fatalf("tampered feature passed parity: %+v", results)
	}
	// Without the input, the tampering is invisible: structural checks pass.
	if _, structOK, err := Validate(context.Background(), ValidateOptions{Dir: dir}); err != nil || !structOK {
		t.Fatalf("structural checks should pass on a checksum-consistent tampered store (ok=%v err=%v)", structOK, err)
	}
}

func TestParityDetectsChangedInput(t *testing.T) {
	dir := t.TempDir()
	const rows, chunk = 10, 4
	runToy(t, dir, rows, chunk, nil)
	series, labels := toyDataset(rows, 16)
	series[5][3] += 0.5
	results, ok, err := Validate(context.Background(), ValidateOptions{
		Dir:     dir,
		Source:  &memSource{series: series, labels: labels, chunk: chunk},
		Extract: fakeExtract,
	})
	if err != nil {
		t.Fatal(err)
	}
	pc := checkByName(t, results, "parity")
	if ok || pc.OK || !strings.Contains(pc.Detail, "input differs") {
		t.Fatalf("changed input passed parity: %+v", results)
	}
}

func TestParityDetectsChunkSizeMismatch(t *testing.T) {
	dir := t.TempDir()
	const rows = 10
	runToy(t, dir, rows, 4, nil)
	series, labels := toyDataset(rows, 16)
	results, ok, err := Validate(context.Background(), ValidateOptions{
		Dir:     dir,
		Source:  &memSource{series: series, labels: labels, chunk: 5},
		Extract: fakeExtract,
	})
	if err != nil {
		t.Fatal(err)
	}
	pc := checkByName(t, results, "parity")
	if ok || pc.OK || !strings.Contains(pc.Detail, "different chunk size") {
		t.Fatalf("chunk-size mismatch passed parity: %+v", results)
	}
}

func TestParityNeedsExtractor(t *testing.T) {
	dir := t.TempDir()
	runToy(t, dir, 10, 4, nil)
	series, labels := toyDataset(10, 16)
	results, ok, err := Validate(context.Background(), ValidateOptions{
		Dir:    dir,
		Source: &memSource{series: series, labels: labels, chunk: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ok || checkByName(t, results, "parity").OK {
		t.Fatalf("parity without extractor should fail: %+v", results)
	}
}
