package bulk

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"mvg/internal/faults"
)

// fakeExtract is a cheap deterministic stand-in for the real pipeline:
// four features per series whose bits depend on every sample, so any
// input or ordering drift shows up bit-for-bit.
func fakeExtract(_ context.Context, series [][]float64) ([][]float64, error) {
	out := make([][]float64, len(series))
	for i, s := range series {
		mean, alt := 0.0, 0.0
		lo, hi := math.Inf(1), math.Inf(-1)
		for j, v := range s {
			mean += v
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
			if j%2 == 0 {
				alt += v
			} else {
				alt -= v / 3
			}
		}
		out[i] = []float64{mean / float64(len(s)), lo, hi, alt}
	}
	return out, nil
}

func fakeNames(int) []string { return []string{"mean", "min", "max", "alt"} }

// memSource streams an in-memory dataset in fixed-size chunks.
type memSource struct {
	series [][]float64
	labels []string
	chunk  int
	pos    int
}

func (m *memSource) NextChunk() ([][]float64, []string, error) {
	if m.pos >= len(m.series) {
		return nil, nil, io.EOF
	}
	end := m.pos + m.chunk
	if end > len(m.series) {
		end = len(m.series)
	}
	s, l := m.series[m.pos:end], m.labels[m.pos:end]
	m.pos = end
	return s, l, nil
}

// toyDataset builds rows deterministic rows of the given width with
// labels cycling through three tokens ("b" first, pinning first-seen
// class order as distinct from sorted order).
func toyDataset(rows, width int) ([][]float64, []string) {
	tokens := []string{"b", "a", "c"}
	series := make([][]float64, rows)
	labels := make([]string, rows)
	for i := range series {
		s := make([]float64, width)
		for j := range s {
			s[j] = math.Sin(float64(i*7+j)*0.13) + float64(i%5)*0.25
		}
		series[i] = s
		labels[i] = tokens[i%len(tokens)]
	}
	return series, labels
}

func toyOpts(dir string) RunOptions {
	return RunOptions{
		Dir:          dir,
		Dataset:      "toy",
		ConfigJSON:   []byte(`{"fake":"v1"}`),
		Extract:      fakeExtract,
		FeatureNames: fakeNames,
		Resume:       true,
	}
}

func runToy(t *testing.T, dir string, rows, chunk int, mutate func(*RunOptions)) *Result {
	t.Helper()
	series, labels := toyDataset(rows, 16)
	opts := toyOpts(dir)
	if mutate != nil {
		mutate(&opts)
	}
	res, err := Run(context.Background(), &memSource{series: series, labels: labels, chunk: chunk}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// dirSnapshot maps every filename in dir to its bytes.
func dirSnapshot(t *testing.T, dir string) map[string]string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	snap := map[string]string{}
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		snap[e.Name()] = string(b)
	}
	return snap
}

func assertSameStore(t *testing.T, wantDir, gotDir string) {
	t.Helper()
	want, got := dirSnapshot(t, wantDir), dirSnapshot(t, gotDir)
	var wantNames, gotNames []string
	for k := range want {
		wantNames = append(wantNames, k)
	}
	for k := range got {
		gotNames = append(gotNames, k)
	}
	sort.Strings(wantNames)
	sort.Strings(gotNames)
	if !reflect.DeepEqual(wantNames, gotNames) {
		t.Fatalf("store files differ: %v vs %v", wantNames, gotNames)
	}
	for _, name := range wantNames {
		if want[name] != got[name] {
			t.Fatalf("store file %s is not byte-identical", name)
		}
	}
}

// TestRunBuildsValidStore: a complete run produces a store whose decoded
// rows are bit-identical to direct extraction, with first-seen class
// order and a passing validation suite (parity included).
func TestRunBuildsValidStore(t *testing.T) {
	dir := t.TempDir()
	const rows, chunk = 25, 4
	res := runToy(t, dir, rows, chunk, nil)
	if res.Extracted != 7 || res.Skipped != 0 {
		t.Fatalf("extracted/skipped = %d/%d, want 7/0", res.Extracted, res.Skipped)
	}
	m := res.Manifest
	if m.Rows != rows || !m.Complete || len(m.Chunks) != 7 {
		t.Fatalf("manifest rows=%d complete=%v chunks=%d", m.Rows, m.Complete, len(m.Chunks))
	}
	if !reflect.DeepEqual(m.ClassNames, []string{"b", "a", "c"}) {
		t.Fatalf("class names %v, want first-seen order [b a c]", m.ClassNames)
	}
	if !reflect.DeepEqual(m.FeatureNames, fakeNames(0)) || m.Cols != 4 || m.SeriesLen != 16 {
		t.Fatalf("manifest schema: %v cols=%d len=%d", m.FeatureNames, m.Cols, m.SeriesLen)
	}

	series, labels := toyDataset(rows, 16)
	want, _ := fakeExtract(context.Background(), series)
	row := 0
	disk, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(disk, m) {
		t.Fatal("on-disk manifest differs from returned manifest")
	}
	for i := range m.Chunks {
		ids, x, err := ReadChunkRows(dir, m, i)
		if err != nil {
			t.Fatal(err)
		}
		for r := range x {
			if m.ClassNames[ids[r]] != labels[row] {
				t.Fatalf("row %d label %q, want %q", row, m.ClassNames[ids[r]], labels[row])
			}
			for j := range x[r] {
				if math.Float64bits(x[r][j]) != math.Float64bits(want[row][j]) {
					t.Fatalf("row %d col %d stored %v, want %v", row, j, x[r][j], want[row][j])
				}
			}
			row++
		}
	}
	if row != rows {
		t.Fatalf("decoded %d rows, want %d", row, rows)
	}

	results, ok, err := Validate(context.Background(), ValidateOptions{
		Dir:     dir,
		Source:  &memSource{series: series, labels: labels, chunk: chunk},
		Extract: fakeExtract,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("validation failed: %+v", results)
	}
	if len(results) != 6 {
		t.Fatalf("got %d checks, want 6: %+v", len(results), results)
	}
}

// TestRunBoundedBatches: the extractor never sees more rows than one
// chunk — the memory-boundedness contract in miniature.
func TestRunBoundedBatches(t *testing.T) {
	dir := t.TempDir()
	const chunk = 8
	maxBatch := 0
	runToy(t, dir, 100, chunk, func(o *RunOptions) {
		o.Extract = func(ctx context.Context, series [][]float64) ([][]float64, error) {
			if len(series) > maxBatch {
				maxBatch = len(series)
			}
			return fakeExtract(ctx, series)
		}
	})
	if maxBatch != chunk {
		t.Fatalf("largest extraction batch = %d, want %d", maxBatch, chunk)
	}
}

// TestCrashRecoveryByteIdentical is the crash-recovery contract: a run
// killed by an injected fault at every boundary — before a chunk
// extracts, before its shard lands, before its manifest checkpoint, and
// before the finalizing manifest write — must, after a plain rerun,
// converge to a store byte-identical to one from an uninterrupted run.
func TestCrashRecoveryByteIdentical(t *testing.T) {
	const rows, chunk = 25, 4 // 7 chunks
	ref := t.TempDir()
	runToy(t, ref, rows, chunk, nil)

	boom := errors.New("injected crash")
	points := []struct {
		name  string
		point string
		after int // arm the fault once this chunk completes
	}{
		{"before-extract", faults.PointBulkChunkExtract, 2},
		{"before-shard-write", faults.PointBulkShardWrite, 3},
		{"before-checkpoint", faults.PointBulkManifestWrite, 1},
		{"before-finalize", faults.PointBulkManifestWrite, 6},
	}
	for _, tc := range points {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			inj := faults.New()
			series, labels := toyDataset(rows, 16)
			opts := toyOpts(dir)
			opts.Injector = inj
			opts.Progress = func(p Progress) {
				if p.Chunk == tc.after {
					inj.Fail(tc.point, boom)
				}
			}
			_, err := Run(context.Background(), &memSource{series: series, labels: labels, chunk: chunk}, opts)
			if !errors.Is(err, boom) {
				t.Fatalf("interrupted run error = %v, want injected crash", err)
			}

			// The wreckage must be resumable: rerun without faults.
			res := runToy(t, dir, rows, chunk, nil)
			if res.Skipped == 0 {
				t.Fatal("resumed run skipped nothing — prior progress was lost")
			}
			if res.Skipped+res.Extracted != 7 {
				t.Fatalf("skipped %d + extracted %d != 7 chunks", res.Skipped, res.Extracted)
			}
			t.Logf("resume after %s: %d chunks skipped, %d re-extracted", tc.name, res.Skipped, res.Extracted)
			assertSameStore(t, ref, dir)

			results, ok, err := Validate(context.Background(), ValidateOptions{
				Dir:     dir,
				Source:  &memSource{series: series, labels: labels, chunk: chunk},
				Extract: fakeExtract,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("resumed store failed validation: %+v", results)
			}
		})
	}
}

// TestResumeSkipsEverything: rerunning a complete store extracts nothing
// and leaves every byte unchanged.
func TestResumeSkipsEverything(t *testing.T) {
	dir := t.TempDir()
	runToy(t, dir, 25, 4, nil)
	before := dirSnapshot(t, dir)
	res := runToy(t, dir, 25, 4, nil)
	if res.Extracted != 0 || res.Skipped != 7 {
		t.Fatalf("extracted/skipped = %d/%d, want 0/7", res.Extracted, res.Skipped)
	}
	after := dirSnapshot(t, dir)
	if !reflect.DeepEqual(before, after) {
		t.Fatal("no-op rerun changed store bytes")
	}
}

// TestResumeRefusesMismatchedConfig: extending a store under a different
// extraction config must fail loudly, and a non-resume run must rebuild.
func TestResumeRefusesMismatchedConfig(t *testing.T) {
	dir := t.TempDir()
	runToy(t, dir, 10, 4, nil)
	series, labels := toyDataset(10, 16)
	opts := toyOpts(dir)
	opts.ConfigJSON = []byte(`{"fake":"v2"}`)
	_, err := Run(context.Background(), &memSource{series: series, labels: labels, chunk: 4}, opts)
	if !errors.Is(err, ErrStoreMismatch) {
		t.Fatalf("config-mismatch resume error = %v, want ErrStoreMismatch", err)
	}
	opts.Resume = false
	res, err := Run(context.Background(), &memSource{series: series, labels: labels, chunk: 4}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped != 0 || res.Extracted != 3 {
		t.Fatalf("rebuild skipped/extracted = %d/%d, want 0/3", res.Skipped, res.Extracted)
	}
	m, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if string(m.Config) != `{"fake":"v2"}` {
		t.Fatalf("rebuilt store config = %s", m.Config)
	}
}

// TestRechunkRemovesStaleShards: rerunning with a larger chunk size
// recomputes everything and deletes shards the manifest no longer names.
func TestRechunkRemovesStaleShards(t *testing.T) {
	dir := t.TempDir()
	runToy(t, dir, 20, 2, nil) // 10 shards
	res := runToy(t, dir, 20, 5, nil)
	if res.Skipped != 0 || res.Extracted != 4 {
		t.Fatalf("rechunk skipped/extracted = %d/%d, want 0/4", res.Skipped, res.Extracted)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "shard-*.fm"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 4 {
		t.Fatalf("%d shard files remain, want 4: %v", len(matches), matches)
	}
	if _, ok, err := Validate(context.Background(), ValidateOptions{Dir: dir}); err != nil || !ok {
		t.Fatalf("rechunked store invalid (ok=%v err=%v)", ok, err)
	}
}

// TestRunNDJSON: the NDJSON source feeds the same runner, string and
// numeric labels both kept verbatim.
func TestRunNDJSON(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 9; i++ {
		fmt.Fprintf(&b, `{"label": %s, "series": [%d, %d.5, %d]}`+"\n",
			[]string{`"up"`, `2`, `"down"`}[i%3], i, i+1, i+2)
	}
	dir := t.TempDir()
	opts := toyOpts(dir)
	res, err := Run(context.Background(), NewNDJSONSource(strings.NewReader(b.String()), "feed", 4), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Manifest.Rows != 9 || res.Manifest.SeriesLen != 3 {
		t.Fatalf("rows=%d len=%d", res.Manifest.Rows, res.Manifest.SeriesLen)
	}
	if !reflect.DeepEqual(res.Manifest.ClassNames, []string{"up", "2", "down"}) {
		t.Fatalf("class names %v", res.Manifest.ClassNames)
	}
	_, ok, err := Validate(context.Background(), ValidateOptions{
		Dir:     dir,
		Source:  NewNDJSONSource(strings.NewReader(b.String()), "feed", 4),
		Extract: fakeExtract,
	})
	if err != nil || !ok {
		t.Fatalf("NDJSON store invalid (ok=%v err=%v)", ok, err)
	}
}

// TestNDJSONSourceErrors pins the NDJSON failure modes and their record
// coordinates.
func TestNDJSONSourceErrors(t *testing.T) {
	cases := []struct {
		name, in, wantSub string
	}{
		{"empty-input", "", "contains no samples"},
		{"malformed-json", `{"label":"a","series":[1,2]}` + "\n" + `{"label":`, "record 2"},
		{"empty-series", `{"label":"a","series":[]}`, "record 1: empty series"},
		{"ragged", `{"label":"a","series":[1,2]}` + "\n" + `{"label":"a","series":[1,2,3]}`, "record 2: series has 3 points"},
		{"bad-label", `{"label":[1],"series":[1,2]}`, "label must be a string or number"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := NewNDJSONSource(strings.NewReader(tc.in), "feed", 2)
			var err error
			for err == nil {
				_, _, err = src.NextChunk()
			}
			if err == io.EOF || !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error = %v, want substring %q", err, tc.wantSub)
			}
			if _, _, again := src.NextChunk(); again == nil || again == io.EOF {
				t.Fatalf("error not sticky: %v", again)
			}
		})
	}
}

// TestRunContextCancelled: a cancelled context stops the run promptly
// with ctx.Err().
func TestRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	series, labels := toyDataset(10, 8)
	_, err := Run(ctx, &memSource{series: series, labels: labels, chunk: 2}, toyOpts(t.TempDir()))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunRejectsRaggedInput: a mid-stream series length change aborts
// with chunk/row coordinates (memSource bypasses the sources' own width
// checks, so this exercises the runner's).
func TestRunRejectsRaggedInput(t *testing.T) {
	series, labels := toyDataset(6, 8)
	series[4] = series[4][:5]
	_, err := Run(context.Background(), &memSource{series: series, labels: labels, chunk: 3},
		toyOpts(t.TempDir()))
	if err == nil || !strings.Contains(err.Error(), "chunk 1 row 1") {
		t.Fatalf("err = %v, want ragged-width failure at chunk 1 row 1", err)
	}
}
