// Package synth generates the deterministic synthetic dataset suite that
// stands in for the UCR archive (see DESIGN.md §2). Each family mimics a
// class of datasets from the paper's evaluation tables — ECG-like beats,
// appliance loads, chaotic maps, noise processes, planted shapelets,
// fractional Brownian motion, and so on — chosen so that both the
// graph-structural mechanism MVG exploits and the shape/subsequence
// mechanisms of the baselines are present in the benchmark.
//
// All generators are pure functions of (class, *rand.Rand); a fixed seed
// reproduces the full suite bit-for-bit.
package synth

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"mvg/internal/ucr"
)

// Family describes one synthetic dataset generator.
type Family struct {
	// Name identifies the dataset in reports (Table 2/3 style rows).
	Name string
	// Classes, Length, TrainSize, TestSize mirror the paper's per-dataset
	// columns (#Cls, Dim., #Train, #Test).
	Classes   int
	Length    int
	TrainSize int
	TestSize  int
	// Imbalanced marks families whose training split intentionally skews
	// class frequencies (exercising the oversampling path).
	Imbalanced bool
	// Motivation documents which mechanism the family exercises.
	Motivation string
	// gen draws one series of the given class.
	gen func(class int, rng *rand.Rand) []float64
}

// Generate materializes deterministic train/test splits. The two splits
// use distinct RNG streams derived from seed.
func (f Family) Generate(seed int64) (train, test *ucr.Dataset) {
	train = f.split(f.TrainSize, rand.New(rand.NewSource(seed)), f.Imbalanced)
	test = f.split(f.TestSize, rand.New(rand.NewSource(seed+0x9e3779b9)), false)
	return train, test
}

func (f Family) split(n int, rng *rand.Rand, imbalanced bool) *ucr.Dataset {
	d := &ucr.Dataset{Name: f.Name}
	for c := 0; c < f.Classes; c++ {
		d.ClassNames = append(d.ClassNames, fmt.Sprintf("%d", c+1))
	}
	for i := 0; i < n; i++ {
		var class int
		if imbalanced {
			// Skew towards class 0: class c has weight 2^{-c}.
			r := rng.Float64() * (2 - math.Pow(2, float64(1-f.Classes)))
			acc := 0.0
			for c := 0; c < f.Classes; c++ {
				acc += math.Pow(2, -float64(c))
				if r < acc {
					class = c
					break
				}
				class = c
			}
		} else {
			class = i % f.Classes
		}
		d.Series = append(d.Series, f.gen(class, rng))
		d.Labels = append(d.Labels, class)
	}
	// Shuffle sample order so folds are not trivially stratified.
	rng.Shuffle(len(d.Series), func(a, b int) {
		d.Series[a], d.Series[b] = d.Series[b], d.Series[a]
		d.Labels[a], d.Labels[b] = d.Labels[b], d.Labels[a]
	})
	return d
}

// EmitRows streams rows synthetic series of the family to fn without
// ever materializing the dataset: classes cycle round-robin (the
// balanced draw of split, minus the shuffle — bulk consumers chunk the
// stream and don't care about sample order), labels are the family's
// usual "1".."K" tokens, and the whole emission is a pure function of
// (family, rows, seed), so two runs produce byte-identical streams. This
// is the generator behind `tsgen -rows`: datasets of millions of rows
// cost one series of memory at a time.
func (f Family) EmitRows(rows int, seed int64, fn func(label string, series []float64) error) error {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < rows; i++ {
		class := i % f.Classes
		if err := fn(fmt.Sprintf("%d", class+1), f.gen(class, rng)); err != nil {
			return err
		}
	}
	return nil
}

// --- waveform helpers ---

func addNoise(t []float64, sigma float64, rng *rand.Rand) []float64 {
	for i := range t {
		t[i] += sigma * rng.NormFloat64()
	}
	return t
}

// gaussBump adds a Gaussian bump of the given amplitude/center/width.
func gaussBump(t []float64, amp, center, width float64) {
	for i := range t {
		d := (float64(i) - center) / width
		t[i] += amp * math.Exp(-d*d/2)
	}
}

// Suite returns the full 13-family registry, sized to echo the paper's
// dataset table shapes while staying laptop-friendly.
func Suite() []Family {
	return []Family{
		ecgBeats(), applianceLoad(), chaosMaps(), noiseFamilies(),
		plantedShapelets(), hurstWalks(), freqSines(), warpedShapes(),
		randomWalkTails(), trendSeasonal(), piecewiseLevels(),
		amSignals(), burstNoise(),
	}
}

// ByName looks up one family.
func ByName(name string) (Family, error) {
	for _, f := range Suite() {
		if f.Name == name {
			return f, nil
		}
	}
	return Family{}, fmt.Errorf("synth: unknown dataset %q", name)
}

// Names lists the suite's dataset names in order.
func Names() []string {
	fams := Suite()
	out := make([]string, len(fams))
	for i, f := range fams {
		out[i] = f.Name
	}
	return out
}

// ecgBeats mimics the ECG datasets (ECG5000 etc.): a P-QRS-T beat built
// from Gaussian bumps; classes alter the T-wave and ST segment the way
// arrhythmia classes do.
func ecgBeats() Family {
	return Family{
		Name: "SynthECG", Classes: 3, Length: 140, TrainSize: 60, TestSize: 150,
		Motivation: "medical motivation from the paper's introduction; global shape + local deformation",
		gen: func(class int, rng *rand.Rand) []float64 {
			n := 140
			t := make([]float64, n)
			jitter := func(s float64) float64 { return s * (1 + 0.05*rng.NormFloat64()) }
			// P wave, QRS complex, T wave.
			gaussBump(t, jitter(0.25), jitter(25), jitter(5))
			gaussBump(t, jitter(-0.3), jitter(42), jitter(2.5))
			gaussBump(t, jitter(2.0), jitter(48), jitter(3))
			gaussBump(t, jitter(-0.4), jitter(55), jitter(3))
			switch class {
			case 0: // normal T wave
				gaussBump(t, jitter(0.6), jitter(90), jitter(9))
			case 1: // inverted, delayed T wave
				gaussBump(t, jitter(-0.55), jitter(100), jitter(11))
			default: // ST elevation with flattened, widened T
				for i := 58; i < 95 && i < n; i++ {
					t[i] += 0.35
				}
				gaussBump(t, jitter(0.3), jitter(95), jitter(16))
			}
			return addNoise(t, 0.07, rng)
		},
	}
}

// applianceLoad mimics the electric-device datasets: rectangular duty
// cycles whose count/width/level differ per device class.
func applianceLoad() Family {
	return Family{
		Name: "ApplianceLoad", Classes: 3, Length: 240, TrainSize: 75, TestSize: 150,
		Motivation: "industrial motivation (ElectricDevices/Kitchen appliances rows); HVG-friendly local structure",
		gen: func(class int, rng *rand.Rand) []float64 {
			n := 240
			t := make([]float64, n)
			var pulses, width int
			var level float64
			switch class {
			case 0: // fridge-like: many short cycles
				pulses, width, level = 6+rng.Intn(3), 12, 1.0
			case 1: // oven-like: one long flat plateau
				pulses, width, level = 1, 90+rng.Intn(30), 2.2
			default: // washer-like: bursts of alternating load
				pulses, width, level = 3+rng.Intn(2), 30, 1.5
			}
			for p := 0; p < pulses; p++ {
				start := rng.Intn(n - width)
				for i := start; i < start+width; i++ {
					v := level
					if class == 2 && (i/6)%2 == 0 {
						v = level * 0.4 // agitation cycling
					}
					t[i] += v * (1 + 0.05*rng.NormFloat64())
				}
			}
			return addNoise(t, 0.05, rng)
		},
	}
}

// chaosMaps follows the classic visibility-graph literature (Lacasa et
// al.; Iacovacci & Lacasa motif profiles): fully chaotic logistic maps vs
// white noise vs noisy chaos are distinguishable by VG motif statistics.
func chaosMaps() Family {
	return Family{
		Name: "ChaosMaps", Classes: 3, Length: 200, TrainSize: 60, TestSize: 150,
		Motivation: "the VG literature's flagship application: motif profiles separate chaos from noise",
		gen: func(class int, rng *rand.Rand) []float64 {
			n := 200
			t := make([]float64, n)
			switch class {
			case 0: // fully chaotic logistic map x' = 4x(1-x)
				x := 0.1 + 0.8*rng.Float64()
				for i := range t {
					x = 4 * x * (1 - x)
					t[i] = x
				}
			case 1: // white uniform noise (same marginal support)
				for i := range t {
					t[i] = rng.Float64()
				}
			default: // noisy chaotic map
				x := 0.1 + 0.8*rng.Float64()
				for i := range t {
					x = 4 * x * (1 - x)
					t[i] = 0.7*x + 0.3*rng.Float64()
				}
			}
			return t
		},
	}
}

// noiseFamilies separates serial-correlation structures that share
// identical marginals: white vs AR(1) vs smoothed noise.
func noiseFamilies() Family {
	return Family{
		Name: "NoiseFamilies", Classes: 3, Length: 150, TrainSize: 60, TestSize: 120,
		Motivation: "autocorrelation-only differences: no global shape, no subsequence; graph statistics must carry the signal",
		gen: func(class int, rng *rand.Rand) []float64 {
			n := 150
			t := make([]float64, n)
			switch class {
			case 0:
				for i := range t {
					t[i] = rng.NormFloat64()
				}
			case 1: // AR(1), φ = 0.8
				x := rng.NormFloat64()
				for i := range t {
					x = 0.8*x + 0.6*rng.NormFloat64()
					t[i] = x
				}
			default: // moving-average smoothed noise (window 5)
				raw := make([]float64, n+4)
				for i := range raw {
					raw[i] = rng.NormFloat64()
				}
				for i := range t {
					s := 0.0
					for k := 0; k < 5; k++ {
						s += raw[i+k]
					}
					t[i] = s / math.Sqrt(5)
				}
			}
			return t
		},
	}
}

// plantedShapelets is shapelet-method home turf: a class-defining local
// pattern at a random position on a noise background.
func plantedShapelets() Family {
	return Family{
		Name: "EngineNoise", Classes: 3, Length: 128, TrainSize: 60, TestSize: 150,
		Motivation: "FordA/ShapeletSim analogue: one local defect pattern defines the class",
		gen: func(class int, rng *rand.Rand) []float64 {
			n := 128
			t := make([]float64, n)
			for i := range t {
				t[i] = 0.4 * rng.NormFloat64()
			}
			pos := 10 + rng.Intn(n-42)
			switch class {
			case 0: // smooth knock: single wide bump
				gaussBump(t, 2.2, float64(pos+12), 5)
			case 1: // double spike
				gaussBump(t, 2.4, float64(pos+6), 1.6)
				gaussBump(t, -2.4, float64(pos+16), 1.6)
			default: // sharp sawtooth run
				for i := 0; i < 24 && pos+i < n; i++ {
					t[pos+i] += 1.8 * (float64(i%8)/4 - 1)
				}
			}
			return t
		},
	}
}

// hurstWalks generates power-law processes with different Hurst exponents
// via spectral synthesis — the VG paper's original use case (estimating H).
func hurstWalks() Family {
	return Family{
		Name: "HurstWalks", Classes: 3, Length: 256, TrainSize: 60, TestSize: 120,
		Motivation: "fractality: VGs were introduced to estimate Hurst exponents of fBm",
		gen: func(class int, rng *rand.Rand) []float64 {
			n := 256
			h := []float64{0.25, 0.5, 0.75}[class]
			// Spectral synthesis: S(f) ∝ f^{-(2H+1)}.
			t := make([]float64, n)
			for k := 1; k <= n/2; k++ {
				amp := math.Pow(float64(k), -(2*h+1)/2)
				phase := rng.Float64() * 2 * math.Pi
				a := amp * math.Cos(phase)
				b := amp * math.Sin(phase)
				w := 2 * math.Pi * float64(k) / float64(n)
				for i := range t {
					t[i] += a*math.Cos(w*float64(i)) + b*math.Sin(w*float64(i))
				}
			}
			return t
		},
	}
}

// freqSines separates classes by dominant frequency with phase jitter —
// easy for global-similarity methods, a control dataset.
func freqSines() Family {
	return Family{
		Name: "FreqSines", Classes: 3, Length: 128, TrainSize: 45, TestSize: 120,
		Motivation: "control: global periodic structure that distance baselines handle well",
		gen: func(class int, rng *rand.Rand) []float64 {
			n := 128
			t := make([]float64, n)
			freq := []float64{3, 5, 8}[class] * (1 + 0.04*rng.NormFloat64())
			phase := rng.Float64() * 2 * math.Pi
			for i := range t {
				t[i] = math.Sin(2*math.Pi*freq*float64(i)/float64(n) + phase)
			}
			return addNoise(t, 0.15, rng)
		},
	}
}

// warpedShapes separates waveform families under random smooth time
// warping — DTW home turf.
func warpedShapes() Family {
	return Family{
		Name: "WarpedShapes", Classes: 2, Length: 128, TrainSize: 40, TestSize: 100,
		Motivation: "alignment distortion: tests the paper's claim that MVG is agnostic to warping",
		gen: func(class int, rng *rand.Rand) []float64 {
			n := 128
			t := make([]float64, n)
			// Smooth monotone warp of [0,1].
			k1 := 0.3 * rng.NormFloat64()
			k2 := 0.2 * rng.NormFloat64()
			warp := func(u float64) float64 {
				return u + k1*math.Sin(math.Pi*u)/math.Pi + k2*math.Sin(2*math.Pi*u)/(2*math.Pi)
			}
			for i := range t {
				u := warp(float64(i) / float64(n-1))
				if class == 0 {
					t[i] = math.Sin(2 * math.Pi * 4 * u)
				} else {
					// Triangular wave of the same frequency.
					x := math.Mod(4*u, 1)
					t[i] = 4*math.Abs(x-0.5) - 1
				}
			}
			return addNoise(t, 0.1, rng)
		},
	}
}

// randomWalkTails separates detrended random walks by step distribution:
// Gaussian vs heavy-tailed vs uniform steps produce different VG hubs.
func randomWalkTails() Family {
	return Family{
		Name: "WalkTails", Classes: 3, Length: 200, TrainSize: 60, TestSize: 120,
		Motivation: "step-distribution tails: extreme increments create visibility hubs",
		gen: func(class int, rng *rand.Rand) []float64 {
			n := 200
			t := make([]float64, n)
			x := 0.0
			for i := range t {
				var step float64
				switch class {
				case 0:
					step = rng.NormFloat64()
				case 1: // Laplace (heavy tails)
					u := rng.Float64() - 0.5
					step = -math.Copysign(math.Log(1-2*math.Abs(u)), u) / math.Sqrt2
				default: // uniform (light tails)
					step = (rng.Float64()*2 - 1) * math.Sqrt(3)
				}
				x += step
				t[i] = x
			}
			return t
		},
	}
}

// trendSeasonal mixes a random linear trend (removed by the pipeline's
// detrending) with seasonal cycles whose period is the class.
func trendSeasonal() Family {
	return Family{
		Name: "TrendSeasonal", Classes: 3, Length: 192, TrainSize: 60, TestSize: 120,
		Motivation: "non-stationarity: exercises the detrending pre-step the paper prescribes",
		gen: func(class int, rng *rand.Rand) []float64 {
			n := 192
			t := make([]float64, n)
			period := []float64{8, 16, 32}[class]
			slope := rng.NormFloat64() * 0.05
			amp := 1 + 0.2*rng.NormFloat64()
			phase := rng.Float64() * 2 * math.Pi
			for i := range t {
				t[i] = slope*float64(i) + amp*math.Sin(2*math.Pi*float64(i)/period+phase)
			}
			return addNoise(t, 0.2, rng)
		},
	}
}

// piecewiseLevels separates classes by the number of regime changes.
func piecewiseLevels() Family {
	return Family{
		Name: "RegimeLevels", Classes: 3, Length: 160, TrainSize: 60, TestSize: 120,
		Motivation: "piecewise-constant structure (Mallat-style): segment counts change HVG statistics",
		gen: func(class int, rng *rand.Rand) []float64 {
			n := 160
			segments := []int{2, 5, 10}[class]
			cuts := make([]int, segments-1)
			for i := range cuts {
				cuts[i] = 1 + rng.Intn(n-2)
			}
			sort.Ints(cuts)
			t := make([]float64, n)
			level := rng.NormFloat64()
			seg := 0
			for i := range t {
				if seg < len(cuts) && i == cuts[seg] {
					level += 0.8 + math.Abs(rng.NormFloat64())
					if rng.Float64() < 0.5 {
						level -= 2 * (0.8 + math.Abs(rng.NormFloat64()))
					}
					seg++
				}
				t[i] = level
			}
			return addNoise(t, 0.12, rng)
		},
	}
}

// amSignals separates amplitude-modulation rates on a common carrier.
func amSignals() Family {
	return Family{
		Name: "AMSignals", Classes: 2, Length: 256, TrainSize: 50, TestSize: 100,
		Motivation: "InsectWingbeatSound analogue: envelope structure at multiple scales",
		gen: func(class int, rng *rand.Rand) []float64 {
			n := 256
			t := make([]float64, n)
			carrier := 24.0 * (1 + 0.02*rng.NormFloat64())
			mod := []float64{2, 6}[class] * (1 + 0.05*rng.NormFloat64())
			phase := rng.Float64() * 2 * math.Pi
			for i := range t {
				u := float64(i) / float64(n)
				env := 0.55 + 0.45*math.Sin(2*math.Pi*mod*u+phase)
				t[i] = env * math.Sin(2*math.Pi*carrier*u)
			}
			return addNoise(t, 0.08, rng)
		},
	}
}

// burstNoise is intentionally imbalanced: rare spike bursts over noise.
func burstNoise() Family {
	return Family{
		Name: "BurstNoise", Classes: 2, Length: 180, TrainSize: 60, TestSize: 120,
		Imbalanced: true,
		Motivation: "class imbalance: exercises random oversampling (Section 3.2)",
		gen: func(class int, rng *rand.Rand) []float64 {
			n := 180
			t := make([]float64, n)
			for i := range t {
				t[i] = 0.5 * rng.NormFloat64()
			}
			bursts := 2
			if class == 1 {
				bursts = 7
			}
			for b := 0; b < bursts; b++ {
				pos := rng.Intn(n - 4)
				amp := 2.5 + rng.Float64()
				sign := 1.0
				if rng.Float64() < 0.5 {
					sign = -1
				}
				for k := 0; k < 4; k++ {
					t[pos+k] += sign * amp * math.Exp(-float64(k))
				}
			}
			return t
		},
	}
}
