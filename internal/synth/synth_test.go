package synth

import (
	"errors"
	"fmt"
	"testing"

	"mvg/internal/ml"
	"mvg/internal/timeseries"
)

func TestSuiteShapes(t *testing.T) {
	suite := Suite()
	if len(suite) != 13 {
		t.Fatalf("suite has %d families, want 13", len(suite))
	}
	seen := map[string]bool{}
	for _, f := range suite {
		if seen[f.Name] {
			t.Errorf("duplicate family %q", f.Name)
		}
		seen[f.Name] = true
		if f.Classes < 2 || f.Length < 32 || f.TrainSize < 10 || f.TestSize < 10 {
			t.Errorf("%s has degenerate shape: %+v", f.Name, f)
		}
		if f.Motivation == "" {
			t.Errorf("%s lacks a motivation note", f.Name)
		}
	}
}

func TestGenerateValidDatasets(t *testing.T) {
	for _, f := range Suite() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			train, test := f.Generate(42)
			if err := train.Validate(); err != nil {
				t.Fatalf("train: %v", err)
			}
			if err := test.Validate(); err != nil {
				t.Fatalf("test: %v", err)
			}
			if train.Len() != f.TrainSize || test.Len() != f.TestSize {
				t.Errorf("sizes %d/%d, want %d/%d", train.Len(), test.Len(), f.TrainSize, f.TestSize)
			}
			if train.SeriesLength() != f.Length {
				t.Errorf("length %d, want %d", train.SeriesLength(), f.Length)
			}
			if train.Classes() != f.Classes {
				t.Errorf("classes %d, want %d", train.Classes(), f.Classes)
			}
			// Every class present in both splits (generators are balanced
			// for tests, imbalanced families may skew but not vanish).
			for _, d := range []*struct {
				name   string
				labels []int
			}{{"train", train.Labels}, {"test", test.Labels}} {
				counts := ml.ClassCounts(d.labels, f.Classes)
				for c, n := range counts {
					if n == 0 {
						t.Errorf("%s split lacks class %d", d.name, c)
					}
				}
			}
			// All values finite.
			for i, s := range train.Series {
				if err := timeseries.Validate(s); err != nil {
					t.Fatalf("train series %d: %v", i, err)
				}
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	f, err := ByName("SynthECG")
	if err != nil {
		t.Fatal(err)
	}
	a1, b1 := f.Generate(7)
	a2, b2 := f.Generate(7)
	for i := range a1.Series {
		for j := range a1.Series[i] {
			if a1.Series[i][j] != a2.Series[i][j] {
				t.Fatal("train split not deterministic")
			}
		}
	}
	for i := range b1.Series {
		for j := range b1.Series[i] {
			if b1.Series[i][j] != b2.Series[i][j] {
				t.Fatal("test split not deterministic")
			}
		}
	}
	// Different seeds differ.
	a3, _ := f.Generate(8)
	same := true
	for i := range a1.Series[0] {
		if a1.Series[0][i] != a3.Series[0][i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestTrainTestDisjointStreams(t *testing.T) {
	// Train and test must not share identical series (leakage).
	for _, f := range Suite() {
		train, test := f.Generate(3)
		for _, ts := range test.Series[:5] {
			for _, tr := range train.Series {
				same := true
				for j := range tr {
					if tr[j] != ts[j] {
						same = false
						break
					}
				}
				if same {
					t.Fatalf("%s: test series duplicated in train split", f.Name)
				}
			}
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("NoSuchDataset"); err == nil {
		t.Error("unknown dataset should fail")
	}
	names := Names()
	if len(names) != len(Suite()) {
		t.Error("Names() length mismatch")
	}
}

func TestImbalancedFamilySkews(t *testing.T) {
	f, err := ByName("BurstNoise")
	if err != nil {
		t.Fatal(err)
	}
	if !f.Imbalanced {
		t.Fatal("BurstNoise should be imbalanced")
	}
	train, _ := f.Generate(11)
	counts := ml.ClassCounts(train.Labels, f.Classes)
	if counts[0] <= counts[1] {
		t.Errorf("class 0 should dominate: %v", counts)
	}
}

// TestEmitRowsStreaming pins the bulk generator's contract: correct row
// count and shapes, round-robin class labels, determinism across calls,
// and a seed change actually changing the stream.
func TestEmitRowsStreaming(t *testing.T) {
	f, err := ByName("SynthECG")
	if err != nil {
		t.Fatal(err)
	}
	collect := func(rows int, seed int64) (labels []string, rowsOut [][]float64) {
		err := f.EmitRows(rows, seed, func(label string, series []float64) error {
			labels = append(labels, label)
			rowsOut = append(rowsOut, append([]float64(nil), series...))
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return labels, rowsOut
	}
	labels, rows := collect(31, 7)
	if len(rows) != 31 {
		t.Fatalf("emitted %d rows, want 31", len(rows))
	}
	for i, s := range rows {
		if len(s) != f.Length {
			t.Fatalf("row %d length %d, want %d", i, len(s), f.Length)
		}
		if want := fmt.Sprintf("%d", i%f.Classes+1); labels[i] != want {
			t.Fatalf("row %d label %q, want round-robin %q", i, labels[i], want)
		}
	}
	_, again := collect(31, 7)
	for i := range rows {
		for j := range rows[i] {
			if rows[i][j] != again[i][j] {
				t.Fatalf("row %d col %d not deterministic", i, j)
			}
		}
	}
	_, other := collect(31, 8)
	same := true
	for i := range rows {
		for j := range rows[i] {
			if rows[i][j] != other[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("seed change did not change the stream")
	}

	// Callback errors abort the emission immediately.
	calls := 0
	sentinel := errors.New("stop")
	if err := f.EmitRows(100, 1, func(string, []float64) error {
		calls++
		return sentinel
	}); err != sentinel || calls != 1 {
		t.Fatalf("err=%v calls=%d, want sentinel after 1 call", err, calls)
	}
}
