// Package core implements the paper's primary contribution: the multiscale
// visibility graph (MVG) representation of time series and the statistical
// feature extraction of Algorithm 1.
//
// A series is expanded into a multiscale pyramid (Definitions 3.1–3.3),
// every scale is transformed into a natural visibility graph and/or a
// horizontal visibility graph, and each graph contributes an unordered
// block of statistical features: the grouped motif probability
// distribution (MPD) over all graphlets of size ≤ 4, plus density,
// assortativity, the k-core number and degree statistics. Concatenating
// the blocks yields a fixed-length feature vector suitable for any generic
// classifier — the sequential nature of the series is gone.
package core

import (
	"errors"
	"fmt"
)

// ScaleMode selects which scales of the multiscale representation
// contribute graphs (Section 3 / Table 2 of the paper).
type ScaleMode int

const (
	// FullMultiscale uses T0..Tm (MVG) — the paper's recommended setting
	// and the zero value.
	FullMultiscale ScaleMode = iota
	// Uniscale uses only the original series T0 (UVG).
	Uniscale
	// ApproxMultiscale uses only the downscaled approximations T1..Tm (AMVG).
	ApproxMultiscale
)

func (s ScaleMode) String() string {
	switch s {
	case Uniscale:
		return "UVG"
	case ApproxMultiscale:
		return "AMVG"
	case FullMultiscale:
		return "MVG"
	default:
		return fmt.Sprintf("ScaleMode(%d)", int(s))
	}
}

// GraphMode selects which visibility transforms are applied per scale.
type GraphMode int

const (
	// VGAndHVG builds both graphs per scale — the paper's recommended
	// setting (heuristic 2: VGs capture global, HVGs local structure).
	VGAndHVG GraphMode = iota
	// VGOnly builds only natural visibility graphs.
	VGOnly
	// HVGOnly builds only horizontal visibility graphs.
	HVGOnly
)

func (g GraphMode) String() string {
	switch g {
	case VGAndHVG:
		return "VG+HVG"
	case VGOnly:
		return "VG"
	case HVGOnly:
		return "HVG"
	default:
		return fmt.Sprintf("GraphMode(%d)", int(g))
	}
}

// FeatureMode selects which statistics are extracted per graph.
type FeatureMode int

const (
	// AllFeatures extracts MPDs plus density, assortativity, k-core and
	// degree statistics — the paper's recommended setting (heuristic 1).
	AllFeatures FeatureMode = iota
	// MPDsOnly extracts only the motif probability distribution.
	MPDsOnly
)

func (f FeatureMode) String() string {
	switch f {
	case AllFeatures:
		return "All"
	case MPDsOnly:
		return "MPDs"
	default:
		return fmt.Sprintf("FeatureMode(%d)", int(f))
	}
}

// Options configures an Extractor. The zero value is the paper's
// recommended configuration: full multiscale, VG+HVG, all features,
// τ = DefaultTau, with detrending and z-normalization enabled.
type Options struct {
	Scales   ScaleMode
	Graphs   GraphMode
	Features FeatureMode

	// Tau is the minimum length of a multiscale approximation
	// (Definition 3.1); scales of Tau points or fewer are not generated.
	// Zero means timeseries.DefaultTau; negative means no threshold
	// (clamped to the 2-point minimum a graph needs).
	Tau int

	// NoDetrend disables removal of the least-squares linear trend before
	// graph construction. The paper notes VGs cannot represent monotone
	// trends, so detrending is on by default.
	NoDetrend bool

	// NoZNormalize disables z-normalization. Visibility graphs are affine
	// invariant, so this only matters for numerical conditioning; it is on
	// by default to match UCR conventions.
	NoZNormalize bool

	// Extended adds the graph features the paper's conclusion lists as
	// future work — degree-distribution entropy and global transitivity —
	// to every per-graph block. Off by default to match the evaluated
	// configuration.
	Extended bool
}

// Validate reports whether the option combination is usable.
func (o Options) Validate() error {
	if o.Scales < FullMultiscale || o.Scales > ApproxMultiscale {
		return fmt.Errorf("core: invalid ScaleMode %d", o.Scales)
	}
	if o.Graphs < VGAndHVG || o.Graphs > HVGOnly {
		return fmt.Errorf("core: invalid GraphMode %d", o.Graphs)
	}
	if o.Features < AllFeatures || o.Features > MPDsOnly {
		return fmt.Errorf("core: invalid FeatureMode %d", o.Features)
	}
	return nil
}

// ErrSeriesTooShort is returned when a series cannot produce a single
// non-trivial graph under the configured options.
var ErrSeriesTooShort = errors.New("core: series too short for configured scales")
