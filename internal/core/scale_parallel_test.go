package core

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"

	"mvg/internal/parallel"
)

// Tests for the in-series scale-parallel batch path: batches smaller than
// the worker budget whose series all reach scaleParallelMinLen fan their
// per-scale graph builds across the pool (see ExtractDatasetPool). The
// determinism contract is the same as the per-series path's: bit-identical
// rows at every worker count, with warm scratch, against the sequential
// reference.

func longTestSeries(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	t := make([]float64, n)
	level := 0.0
	for i := range t {
		level += rng.NormFloat64()
		t[i] = level + math.Sin(float64(i)/9)
	}
	return t
}

// TestScaleParallelRouting pins the routing predicate: in-series
// parallelism only when workers outnumber the batch, every series is long
// enough, and there is more than one graph to fan out.
func TestScaleParallelRouting(t *testing.T) {
	long := longTestSeries(scaleParallelMinLen, 1)
	short := longTestSeries(scaleParallelMinLen-1, 2)
	e, err := NewExtractor(Options{})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		opts    Options
		workers int
		batch   [][]float64
		want    bool
	}{
		{"long-single-many-workers", Options{}, 8, [][]float64{long}, true},
		{"long-pair-many-workers", Options{}, 8, [][]float64{long, long}, true},
		{"one-worker", Options{}, 1, [][]float64{long}, false},
		{"workers-equal-batch", Options{}, 2, [][]float64{long, long}, false},
		{"short-series", Options{}, 8, [][]float64{short}, false},
		{"mixed-lengths", Options{}, 8, [][]float64{long, short}, false},
		{"uniscale-single-graph", Options{Scales: Uniscale, Graphs: VGOnly}, 8, [][]float64{long}, false},
		{"uniscale-both-graphs", Options{Scales: Uniscale}, 8, [][]float64{long}, true},
	}
	for _, c := range cases {
		ex := e
		if c.opts != (Options{}) {
			if ex, err = NewExtractor(c.opts); err != nil {
				t.Fatal(err)
			}
		}
		if got := ex.scaleParallel(c.workers, c.batch); got != c.want {
			t.Errorf("%s: scaleParallel = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestScaleParallelBitIdentical extracts long series on a shared warm
// pool at workers 1, 2, 4 and 8 (1 takes the per-series path, the rest
// the scale-parallel path) and requires every row to match the
// sequential ExtractWith reference bit for bit, across configurations
// covering every graph-kind and scale-mode fan-out shape.
func TestScaleParallelBitIdentical(t *testing.T) {
	series := [][]float64{longTestSeries(5000, 3), longTestSeries(5000, 4)}
	opts := map[string]Options{
		"default":  {},
		"extended": {Extended: true},
		"vg-only":  {Graphs: VGOnly},
		"hvg-mpd":  {Graphs: HVGOnly, Features: MPDsOnly},
		"uniscale": {Scales: Uniscale},
		"amvg":     {Scales: ApproxMultiscale},
	}
	pool := parallel.NewPool(NewScratch)
	defer pool.Close()
	sc := NewScratch()

	for name, o := range opts {
		e, err := NewExtractor(o)
		if err != nil {
			t.Fatal(err)
		}
		want := make([][]string, len(series))
		for i, s := range series {
			ref, err := e.ExtractWith(sc, s)
			if err != nil {
				t.Fatalf("%s: sequential reference: %v", name, err)
			}
			want[i] = bitsOf(ref)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			// Two rounds per worker count: the second runs on scratch warmed
			// by the first, which must not perturb a bit either.
			for round := 0; round < 2; round++ {
				X, err := e.ExtractDatasetPool(context.Background(), pool, workers, series)
				if err != nil {
					t.Fatalf("%s workers=%d: %v", name, workers, err)
				}
				for i := range X {
					got := bitsOf(X[i])
					if len(got) != len(want[i]) {
						t.Fatalf("%s workers=%d row %d: width %d, reference %d",
							name, workers, i, len(got), len(want[i]))
					}
					for k := range got {
						if got[k] != want[i][k] {
							t.Fatalf("%s workers=%d round %d row %d: feature %d bits %s, reference %s",
								name, workers, round, i, k, got[k], want[i][k])
						}
					}
				}
			}
		}
	}
}

// TestScaleParallelErrors pins the error contract of the fanned-out path:
// per-series wrapping with the series index, and prompt ctx.Err() on
// cancellation.
func TestScaleParallelErrors(t *testing.T) {
	e, err := NewExtractor(Options{})
	if err != nil {
		t.Fatal(err)
	}
	pool := parallel.NewPool(NewScratch)
	defer pool.Close()

	bad := longTestSeries(5000, 5)
	bad[1234] = math.NaN()
	batch := [][]float64{longTestSeries(5000, 6), bad}
	if !e.scaleParallel(8, batch) {
		t.Fatal("batch unexpectedly not routed to the scale-parallel path")
	}
	_, err = e.ExtractDatasetPool(context.Background(), pool, 8, batch)
	if err == nil || !strings.Contains(err.Error(), "series 1") {
		t.Fatalf("NaN series error = %v, want mention of series 1", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = e.ExtractDatasetPool(ctx, pool, 8, [][]float64{longTestSeries(5000, 7)})
	if err != context.Canceled {
		t.Fatalf("cancelled extract = %v, want context.Canceled", err)
	}
}
