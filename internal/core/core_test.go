package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randSeries(n int, rng *rand.Rand) []float64 {
	t := make([]float64, n)
	for i := range t {
		t[i] = rng.NormFloat64()
	}
	return t
}

func TestOptionsValidate(t *testing.T) {
	if err := (Options{}).Validate(); err != nil {
		t.Errorf("zero options should be valid: %v", err)
	}
	if err := (Options{Scales: ScaleMode(9)}).Validate(); err == nil {
		t.Error("bad scale mode should fail")
	}
	if err := (Options{Graphs: GraphMode(9)}).Validate(); err == nil {
		t.Error("bad graph mode should fail")
	}
	if err := (Options{Features: FeatureMode(9)}).Validate(); err == nil {
		t.Error("bad feature mode should fail")
	}
	if _, err := NewExtractor(Options{Scales: ScaleMode(-1)}); err == nil {
		t.Error("NewExtractor should reject bad options")
	}
}

func TestStringers(t *testing.T) {
	cases := map[string]string{
		Uniscale.String():         "UVG",
		ApproxMultiscale.String(): "AMVG",
		FullMultiscale.String():   "MVG",
		VGAndHVG.String():         "VG+HVG",
		VGOnly.String():           "VG",
		HVGOnly.String():          "HVG",
		AllFeatures.String():      "All",
		MPDsOnly.String():         "MPDs",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestExtractWidthMatchesNames(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	series := randSeries(128, rng)
	for _, scales := range []ScaleMode{Uniscale, ApproxMultiscale, FullMultiscale} {
		for _, graphs := range []GraphMode{VGAndHVG, VGOnly, HVGOnly} {
			for _, feats := range []FeatureMode{AllFeatures, MPDsOnly} {
				e, err := NewExtractor(Options{Scales: scales, Graphs: graphs, Features: feats})
				if err != nil {
					t.Fatal(err)
				}
				v, err := e.Extract(series)
				if err != nil {
					t.Fatalf("%v/%v/%v: %v", scales, graphs, feats, err)
				}
				names := e.FeatureNames(len(series))
				if len(v) != len(names) {
					t.Errorf("%v/%v/%v: %d features, %d names", scales, graphs, feats, len(v), len(names))
				}
				if len(v) != e.NumFeatures(len(series)) {
					t.Errorf("%v/%v/%v: NumFeatures=%d, got %d", scales, graphs, feats, e.NumFeatures(len(series)), len(v))
				}
			}
		}
	}
}

func TestExtractScaleCounts(t *testing.T) {
	e, err := NewExtractor(Options{}) // MVG defaults, tau=15
	if err != nil {
		t.Fatal(err)
	}
	// 128 → 64 → 32 → 16: T0..T3 = 4 scales.
	if got := e.NumScales(128); got != 4 {
		t.Errorf("NumScales(128) = %d, want 4", got)
	}
	a, _ := NewExtractor(Options{Scales: ApproxMultiscale})
	if got := a.NumScales(128); got != 3 {
		t.Errorf("AMVG NumScales(128) = %d, want 3", got)
	}
	u, _ := NewExtractor(Options{Scales: Uniscale})
	if got := u.NumScales(128); got != 1 {
		t.Errorf("UVG NumScales = %d, want 1", got)
	}
}

func TestExtractErrors(t *testing.T) {
	e, _ := NewExtractor(Options{})
	if _, err := e.Extract(nil); err == nil {
		t.Error("empty series should fail")
	}
	if _, err := e.Extract([]float64{1, math.NaN()}); err == nil {
		t.Error("NaN series should fail")
	}
	if _, err := e.Extract([]float64{1}); err == nil {
		t.Error("1-point series should fail")
	}
	// AMVG on a short series yields no scales at all.
	a, _ := NewExtractor(Options{Scales: ApproxMultiscale, Tau: 15})
	if _, err := a.Extract(randSeries(16, rand.New(rand.NewSource(1)))); err == nil {
		t.Error("AMVG on 16 points with tau=15 should fail")
	}
}

func TestExtractConstantSeries(t *testing.T) {
	// Constant series z-normalize to zeros; both graphs degrade to chains,
	// which must still extract cleanly.
	e, _ := NewExtractor(Options{})
	v, err := e.Extract(make([]float64, 64))
	if err != nil {
		t.Fatalf("constant series: %v", err)
	}
	for i, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatalf("feature %d is %v", i, x)
		}
	}
}

func TestExtractFeatureRanges(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e, _ := NewExtractor(Options{})
		v, err := e.Extract(randSeries(64+rng.Intn(128), rng))
		if err != nil {
			return false
		}
		names := e.FeatureNames(64)
		_ = names
		for _, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestExtractMPDGroupsNormalized(t *testing.T) {
	e, _ := NewExtractor(Options{Scales: Uniscale, Graphs: VGOnly, Features: MPDsOnly})
	v, err := e.Extract(randSeries(100, rand.New(rand.NewSource(3))))
	if err != nil {
		t.Fatal(err)
	}
	// Group layout within the 17-wide block: {0,1},{2,3},{4,5},{6..11},{12..16}.
	groups := [][]int{{0, 1}, {2, 3}, {4, 5}, {6, 7, 8, 9, 10, 11}, {12, 13, 14, 15, 16}}
	for gi, grp := range groups {
		sum := 0.0
		for _, i := range grp {
			sum += v[i]
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("group %d sums to %v", gi, sum)
		}
	}
}

func TestExtractAffineInvariance(t *testing.T) {
	// MVG features must be identical for affine-transformed series (the
	// graphs are invariant; z-norm handles the scaling before PAA).
	rng := rand.New(rand.NewSource(11))
	series := randSeries(128, rng)
	scaled := make([]float64, len(series))
	for i, v := range series {
		scaled[i] = 3.7*v - 42
	}
	e, _ := NewExtractor(Options{})
	a, err1 := e.Extract(series)
	b, err2 := e.Extract(scaled)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			t.Fatalf("feature %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestExtractDataset(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	series := make([][]float64, 40)
	for i := range series {
		series[i] = randSeries(96, rng)
	}
	e, _ := NewExtractor(Options{})
	X, err := e.ExtractDataset(series)
	if err != nil {
		t.Fatal(err)
	}
	if len(X) != len(series) {
		t.Fatalf("got %d rows", len(X))
	}
	// Deterministic across calls (parallel workers must not change results).
	X2, err := e.ExtractDataset(series)
	if err != nil {
		t.Fatal(err)
	}
	for i := range X {
		for j := range X[i] {
			if X[i][j] != X2[i][j] {
				t.Fatalf("non-deterministic extraction at [%d][%d]", i, j)
			}
		}
	}
	// Serial extraction matches parallel extraction.
	for i := range series[:5] {
		v, err := e.Extract(series[i])
		if err != nil {
			t.Fatal(err)
		}
		for j := range v {
			if v[j] != X[i][j] {
				t.Fatalf("parallel/serial mismatch at [%d][%d]", i, j)
			}
		}
	}
	if _, err := e.ExtractDataset(nil); err == nil {
		t.Error("empty dataset should fail")
	}
	// Mixed lengths produce different widths → error.
	bad := [][]float64{randSeries(64, rng), randSeries(256, rng)}
	if _, err := e.ExtractDataset(bad); err == nil {
		t.Error("mixed series lengths should fail")
	}
}

func TestFeatureNamesFormat(t *testing.T) {
	e, _ := NewExtractor(Options{})
	names := e.FeatureNames(128)
	if names[0] != "T0.VG.P(M21)" {
		t.Errorf("first name = %q", names[0])
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate feature name %q", n)
		}
		seen[n] = true
	}
	// AMVG names start at T1.
	a, _ := NewExtractor(Options{Scales: ApproxMultiscale})
	if got := a.FeatureNames(128)[0]; got != "T1.VG.P(M21)" {
		t.Errorf("AMVG first name = %q", got)
	}
}

func TestExtendedFeatures(t *testing.T) {
	series := randSeries(128, rand.New(rand.NewSource(2)))
	base, _ := NewExtractor(Options{Scales: Uniscale})
	ext, _ := NewExtractor(Options{Scales: Uniscale, Extended: true})
	vb, err := base.Extract(series)
	if err != nil {
		t.Fatal(err)
	}
	ve, err := ext.Extract(series)
	if err != nil {
		t.Fatal(err)
	}
	// Two graphs per scale, two extended features each.
	if len(ve) != len(vb)+4 {
		t.Fatalf("extended width %d, base %d", len(ve), len(vb))
	}
	names := ext.FeatureNames(128)
	if len(names) != len(ve) {
		t.Fatalf("names %d vs features %d", len(names), len(ve))
	}
	foundEntropy, foundTrans := false, false
	for i, n := range names {
		if n == "T0.VG.DegreeEntropy" {
			foundEntropy = true
			if ve[i] <= 0 {
				t.Errorf("degree entropy = %v, expected positive for noise VG", ve[i])
			}
		}
		if n == "T0.VG.Transitivity" {
			foundTrans = true
			if ve[i] <= 0 || ve[i] > 1 {
				t.Errorf("transitivity = %v out of (0,1]", ve[i])
			}
		}
	}
	if !foundEntropy || !foundTrans {
		t.Error("extended feature names missing")
	}
	// Extended also composes with MPDsOnly.
	me, _ := NewExtractor(Options{Scales: Uniscale, Features: MPDsOnly, Extended: true})
	vm, err := me.Extract(series)
	if err != nil {
		t.Fatal(err)
	}
	if len(vm) != 2*(17+2) {
		t.Errorf("MPDs+extended width = %d, want 38", len(vm))
	}
}

// TestScratchReusePurity verifies that reusing one Scratch across many
// series of varying lengths and configurations yields bit-identical
// results to fresh-scratch extraction — the property the parallel batch
// engine's determinism guarantee rests on.
func TestScratchReusePurity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, opts := range []Options{
		{},
		{Scales: Uniscale},
		{Scales: ApproxMultiscale},
		{Graphs: VGOnly},
		{Graphs: HVGOnly, Features: MPDsOnly},
		{Extended: true},
		{NoDetrend: true, NoZNormalize: true},
	} {
		e, err := NewExtractor(opts)
		if err != nil {
			t.Fatal(err)
		}
		sc := NewScratch()
		// Alternate lengths so buffers shrink and grow between series.
		for _, n := range []int{96, 200, 64, 256, 100, 64} {
			series := randSeries(n, rng)
			want, err := e.Extract(series)
			if err != nil {
				t.Fatalf("%+v n=%d: %v", opts, n, err)
			}
			got, err := e.ExtractWith(sc, series)
			if err != nil {
				t.Fatalf("%+v n=%d: %v", opts, n, err)
			}
			if len(got) != len(want) {
				t.Fatalf("%+v n=%d: width %d vs %d", opts, n, len(got), len(want))
			}
			for j := range want {
				if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
					t.Fatalf("%+v n=%d: feature %d differs: %v vs %v",
						opts, n, j, got[j], want[j])
				}
			}
		}
	}
}

// TestExtractDatasetWorkersDeterministic pins the worker-count invariance
// of the batch engine at the core layer.
func TestExtractDatasetWorkersDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	series := make([][]float64, 30)
	for i := range series {
		series[i] = randSeries(128, rng)
	}
	e, _ := NewExtractor(Options{})
	ref, err := e.ExtractDatasetWorkers(series, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 5, 16} {
		X, err := e.ExtractDatasetWorkers(series, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range ref {
			for j := range ref[i] {
				if math.Float64bits(X[i][j]) != math.Float64bits(ref[i][j]) {
					t.Fatalf("workers=%d: [%d][%d] differs", workers, i, j)
				}
			}
		}
	}
}

// TestTauClampConsistency pins the agreement between NumFeatures and the
// actual extracted width across tau values, including tau=1, which used to
// slip past the constructor unclamped and desynchronize NumScales from the
// pyramid the extraction actually built.
func TestTauClampConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	series := randSeries(96, rng)
	for _, tau := range []int{-3, -1, 0, 1, 2, 3, 15, 40, 63} {
		e, err := NewExtractor(Options{Tau: tau})
		if err != nil {
			t.Fatal(err)
		}
		v, err := e.Extract(series)
		if err != nil {
			t.Fatalf("tau=%d: %v", tau, err)
		}
		if want := e.NumFeatures(len(series)); len(v) != want {
			t.Fatalf("tau=%d: extracted width %d, NumFeatures says %d", tau, len(v), want)
		}
	}
}
