package core

import (
	"mvg/internal/graph"
	"mvg/internal/motif"
	"mvg/internal/visibility"
)

// Scratch holds every reusable buffer one extraction worker needs: the
// preprocessing buffer, the PAA pyramid levels, the visibility-graph
// builder (edge list and stacks), the graph's flat CSR arrays (offsets,
// neighbors, forward splits and the counting-sort work arrays — see
// docs/perf.md), the motif counter's work arrays and the core-decomposition
// arrays. After warm-up, extracting a series with a Scratch allocates only
// the returned feature vector: rebuilding one visibility graph per scale
// reuses the embedded graph's flat storage in place.
//
// A Scratch must not be shared between goroutines; the batch executor
// (internal/parallel) creates one per worker. See docs/concurrency.md.
type Scratch struct {
	pre      []float64   // preprocessed T0 (z-normalize + detrend)
	pyramid  [][]float64 // PAA halving buffers, one per scale below T0
	scaleSet [][]float64 // slice headers of the scales handed to extraction
	vis      visibility.Builder
	g        graph.Graph
	motifs   motif.Counter
	cores    graph.CoreScratch
}

// NewScratch returns an empty Scratch ready for use with
// Extractor.ExtractWith. Buffers grow on first use and are retained across
// calls.
func NewScratch() *Scratch { return &Scratch{} }
