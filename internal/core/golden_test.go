package core

import (
	"encoding/json"
	"flag"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// The golden feature-vector test pins extraction output bit-for-bit across
// substrate rewrites (the golden file was generated on the pre-CSR
// slice-of-slices graph core, so any CSR-induced drift — reordered float
// summation, changed neighbour order — fails here). Regenerate only when a
// change is *supposed* to alter the features:
//
//	go test ./internal/core -run TestGoldenFeatureVectors -update-golden

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_features.json from current output")

// goldenCase is one (series, options) pair of the pinned corpus.
type goldenCase struct {
	Name string `json:"name"`
	// Bits holds the feature vector as hexadecimal IEEE-754 bit patterns,
	// so the comparison is exact and the file is diff-stable.
	Bits []string `json:"bits"`
}

func goldenSeries() map[string][]float64 {
	rng := rand.New(rand.NewSource(42))
	random := make([]float64, 512)
	for i := range random {
		random[i] = rng.NormFloat64()
	}
	walk := make([]float64, 300)
	for i := 1; i < len(walk); i++ {
		walk[i] = walk[i-1] + rng.NormFloat64()
	}
	sine := make([]float64, 256)
	for i := range sine {
		sine[i] = math.Sin(float64(i)/7) + 0.25*math.Sin(float64(i)/2)
	}
	spike := make([]float64, 128)
	spike[64] = 100
	alternating := make([]float64, 200)
	for i := range alternating {
		alternating[i] = float64(i % 2)
	}
	return map[string][]float64{
		"random512":      random,
		"walk300":        walk,
		"sine256":        sine,
		"spike128":       spike,
		"alternating200": alternating,
	}
}

func goldenOptions() map[string]Options {
	return map[string]Options{
		"default":  {},
		"extended": {Extended: true},
		"hvg-mpd":  {Graphs: HVGOnly, Features: MPDsOnly},
		"uvg":      {Scales: Uniscale},
		"amvg-raw": {Scales: ApproxMultiscale, NoDetrend: true, NoZNormalize: true},
	}
}

func bitsOf(v []float64) []string {
	out := make([]string, len(v))
	for i, x := range v {
		out[i] = strconv.FormatUint(math.Float64bits(x), 16)
	}
	return out
}

func TestGoldenFeatureVectors(t *testing.T) {
	path := filepath.Join("testdata", "golden_features.json")
	series := goldenSeries()
	opts := goldenOptions()

	current := map[string][]string{}
	for on, o := range opts {
		e, err := NewExtractor(o)
		if err != nil {
			t.Fatal(err)
		}
		sc := NewScratch() // shared scratch: reuse must not perturb output
		for sn, s := range series {
			v, err := e.ExtractWith(sc, s)
			if err != nil {
				t.Fatalf("%s/%s: %v", on, sn, err)
			}
			current[on+"/"+sn] = bitsOf(v)
		}
	}

	if *updateGolden {
		cases := make([]goldenCase, 0, len(current))
		for name, bits := range current {
			cases = append(cases, goldenCase{Name: name, Bits: bits})
		}
		// Deterministic file order for stable diffs.
		for i := range cases {
			for j := i + 1; j < len(cases); j++ {
				if cases[j].Name < cases[i].Name {
					cases[i], cases[j] = cases[j], cases[i]
				}
			}
		}
		raw, err := json.MarshalIndent(cases, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden vectors to %s", len(cases), path)
		return
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
	}
	var cases []goldenCase
	if err := json.Unmarshal(raw, &cases); err != nil {
		t.Fatal(err)
	}
	if len(cases) != len(current) {
		t.Fatalf("golden file has %d cases, current corpus has %d", len(cases), len(current))
	}
	for _, c := range cases {
		got, ok := current[c.Name]
		if !ok {
			t.Errorf("golden case %q not produced by current corpus", c.Name)
			continue
		}
		if len(got) != len(c.Bits) {
			t.Errorf("%s: feature width %d, golden %d", c.Name, len(got), len(c.Bits))
			continue
		}
		for i := range got {
			if got[i] != c.Bits[i] {
				gb, _ := strconv.ParseUint(got[i], 16, 64)
				wb, _ := strconv.ParseUint(c.Bits[i], 16, 64)
				t.Errorf("%s: feature %d = %v (bits %s), golden %v (bits %s)",
					c.Name, i, math.Float64frombits(gb), got[i], math.Float64frombits(wb), c.Bits[i])
				break
			}
		}
	}
}
