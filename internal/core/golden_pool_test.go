package core

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"mvg/internal/parallel"
)

// TestGoldenFeatureVectorsPool pins the persistent-pool batch path
// (ExtractDatasetPool, the engine behind mvg.Pipeline) against the same
// golden corpus as TestGoldenFeatureVectors, at several worker counts and
// with the scratch deliberately warmed by earlier batches: pool reuse and
// parallelism must not perturb a single bit of the feature output.
func TestGoldenFeatureVectorsPool(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "golden_features.json"))
	if err != nil {
		t.Fatalf("missing golden file: %v", err)
	}
	var cases []goldenCase
	if err := json.Unmarshal(raw, &cases); err != nil {
		t.Fatal(err)
	}
	golden := make(map[string][]string, len(cases))
	for _, c := range cases {
		golden[c.Name] = c.Bits
	}

	series := goldenSeries()
	pool := parallel.NewPool(NewScratch)
	defer pool.Close()

	for _, workers := range []int{1, 2, 4, 8} {
		for on, o := range goldenOptions() {
			e, err := NewExtractor(o)
			if err != nil {
				t.Fatal(err)
			}
			for sn, s := range series {
				name := on + "/" + sn
				want, ok := golden[name]
				if !ok {
					t.Fatalf("golden case %q missing from file", name)
				}
				// A batch of copies of the same series spreads across the
				// workers; the pool's goroutines keep their scratch from
				// every earlier (option, workers) round, which is exactly
				// the reuse being pinned. Every row must match the golden
				// bits.
				batch := make([][]float64, 8)
				for k := range batch {
					batch[k] = s
				}
				X, err := e.ExtractDatasetPool(context.Background(), pool, workers, batch)
				if err != nil {
					t.Fatalf("workers=%d %s: %v", workers, name, err)
				}
				for k := range X {
					got := bitsOf(X[k])
					if len(got) != len(want) {
						t.Fatalf("workers=%d %s row %d: width %d, golden %d", workers, name, k, len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Errorf("workers=%d %s row %d: feature %d bits %s, golden %s",
								workers, name, k, i, got[i], want[i])
							break
						}
					}
				}
			}
		}
	}
}
