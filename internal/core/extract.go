package core

import (
	"fmt"
	"runtime"
	"sync"

	"mvg/internal/graph"
	"mvg/internal/motif"
	"mvg/internal/timeseries"
	"mvg/internal/visibility"
)

// Per-graph feature block widths.
const (
	mpdWidth      = 17 // motif probabilities, motif.Names order
	otherWidth    = 6  // density, assortativity, kcore, max/min/mean degree
	extendedWidth = 2  // degree entropy, transitivity (§6 future work)
)

// otherFeatureNames lists the non-MPD per-graph statistics in block order.
var otherFeatureNames = []string{
	"Density", "Assortativity", "KCore", "MaxDegree", "MinDegree", "MeanDegree",
}

// extendedFeatureNames lists the optional future-work statistics.
var extendedFeatureNames = []string{"DegreeEntropy", "Transitivity"}

// Extractor converts time series into MVG feature vectors (Algorithm 1).
// It is safe for concurrent use.
type Extractor struct {
	opts Options
	tau  int
}

// NewExtractor validates opts and returns an Extractor. The zero Options
// value is the paper's recommended MVG configuration.
func NewExtractor(opts Options) (*Extractor, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	tau := opts.Tau
	switch {
	case tau == 0:
		tau = timeseries.DefaultTau
	case tau < 0:
		tau = 2
	}
	return &Extractor{opts: opts, tau: tau}, nil
}

// Options returns the configuration the extractor was built with.
func (e *Extractor) Options() Options { return e.opts }

// perGraphWidth returns the number of features contributed by one graph.
func (e *Extractor) perGraphWidth() int {
	w := mpdWidth
	if e.opts.Features == AllFeatures {
		w += otherWidth
	}
	if e.opts.Extended {
		w += extendedWidth
	}
	return w
}

// graphsPerScale returns how many graphs each scale contributes.
func (e *Extractor) graphsPerScale() int {
	if e.opts.Graphs == VGAndHVG {
		return 2
	}
	return 1
}

// scales materializes the configured subset of the multiscale pyramid.
func (e *Extractor) scales(series []float64) ([][]float64, error) {
	t := series
	if !e.opts.NoZNormalize {
		t = timeseries.ZNormalize(t)
	}
	if !e.opts.NoDetrend {
		t = timeseries.Detrend(t)
	}
	switch e.opts.Scales {
	case Uniscale:
		return [][]float64{t}, nil
	case ApproxMultiscale:
		return timeseries.Multiscale(t, e.tau)
	default:
		return timeseries.MultiscaleFull(t, e.tau)
	}
}

// NumScales returns the number of scales a series of length n produces
// under the extractor's configuration. Labels in FeatureNames use the
// convention T0 = original series, Ti = i-th halving, so AMVG starts at T1.
func (e *Extractor) NumScales(n int) int {
	count := 0
	switch e.opts.Scales {
	case Uniscale:
		return 1
	case ApproxMultiscale:
		for n/2 > e.tau {
			n /= 2
			count++
		}
		return count
	default:
		count = 1
		for n/2 > e.tau {
			n /= 2
			count++
		}
		return count
	}
}

// NumFeatures returns the feature-vector length for series of length n.
func (e *Extractor) NumFeatures(n int) int {
	return e.NumScales(n) * e.graphsPerScale() * e.perGraphWidth()
}

// FeatureNames returns human-readable names aligned with the output of
// Extract for series of length n, e.g. "T0.HVG.P(M44)" or
// "T2.VG.Assortativity" (the names used in the paper's Figure 10).
func (e *Extractor) FeatureNames(n int) []string {
	numScales := e.NumScales(n)
	firstScale := 0
	if e.opts.Scales == ApproxMultiscale {
		firstScale = 1
	}
	var kinds []string
	switch e.opts.Graphs {
	case VGAndHVG:
		kinds = []string{"VG", "HVG"}
	case VGOnly:
		kinds = []string{"VG"}
	default:
		kinds = []string{"HVG"}
	}
	names := make([]string, 0, e.NumFeatures(n))
	for s := 0; s < numScales; s++ {
		for _, kind := range kinds {
			prefix := fmt.Sprintf("T%d.%s", firstScale+s, kind)
			for _, m := range motif.Names {
				names = append(names, fmt.Sprintf("%s.P(%s)", prefix, m))
			}
			if e.opts.Features == AllFeatures {
				for _, o := range otherFeatureNames {
					names = append(names, prefix+"."+o)
				}
			}
			if e.opts.Extended {
				for _, o := range extendedFeatureNames {
					names = append(names, prefix+"."+o)
				}
			}
		}
	}
	return names
}

// graphBlock appends the feature block of one graph to dst.
func (e *Extractor) graphBlock(dst []float64, g *graph.Graph) []float64 {
	dst = append(dst, motif.Count(g).Probabilities()...)
	if e.opts.Features == AllFeatures {
		r, _ := g.Assortativity() // undefined → 0, a neutral value
		maxDeg, minDeg, meanDeg := g.DegreeStats()
		dst = append(dst,
			g.Density(),
			r,
			float64(g.Degeneracy()),
			float64(maxDeg),
			float64(minDeg),
			meanDeg,
		)
	}
	if e.opts.Extended {
		dst = append(dst, g.DegreeEntropy(), g.Transitivity())
	}
	return dst
}

// Extract implements Algorithm 1 for a single series: build the configured
// multiscale visibility graphs and concatenate per-graph feature blocks.
func (e *Extractor) Extract(series []float64) ([]float64, error) {
	if err := timeseries.Validate(series); err != nil {
		return nil, err
	}
	scales, err := e.scales(series)
	if err != nil {
		return nil, err
	}
	if len(scales) == 0 {
		return nil, fmt.Errorf("%w: n=%d tau=%d mode=%s",
			ErrSeriesTooShort, len(series), e.tau, e.opts.Scales)
	}
	out := make([]float64, 0, len(scales)*e.graphsPerScale()*e.perGraphWidth())
	for _, t := range scales {
		if len(t) < 2 {
			return nil, fmt.Errorf("%w: scale of %d points", ErrSeriesTooShort, len(t))
		}
		if e.opts.Graphs == VGAndHVG || e.opts.Graphs == VGOnly {
			vg, err := visibility.VG(t)
			if err != nil {
				return nil, err
			}
			out = e.graphBlock(out, vg)
		}
		if e.opts.Graphs == VGAndHVG || e.opts.Graphs == HVGOnly {
			hvg, err := visibility.HVG(t)
			if err != nil {
				return nil, err
			}
			out = e.graphBlock(out, hvg)
		}
	}
	return out, nil
}

// ExtractDataset extracts features for every series in parallel across
// runtime.NumCPU() workers (the pipeline is embarrassingly parallel, which
// the paper lists as a design goal). All series must yield equally long
// feature vectors, which holds when they share a common length.
func (e *Extractor) ExtractDataset(series [][]float64) ([][]float64, error) {
	n := len(series)
	if n == 0 {
		return nil, fmt.Errorf("core: empty dataset")
	}
	out := make([][]float64, n)
	errs := make([]error, n)
	workers := runtime.NumCPU()
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i], errs[i] = e.Extract(series[i])
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: series %d: %w", i, err)
		}
	}
	width := len(out[0])
	for i, v := range out {
		if len(v) != width {
			return nil, fmt.Errorf("core: inconsistent feature width: series %d has %d, series 0 has %d (unequal series lengths?)", i, len(v), width)
		}
	}
	return out, nil
}
