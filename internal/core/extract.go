package core

import (
	"context"
	"fmt"
	"sync"

	"mvg/internal/buf"
	"mvg/internal/graph"
	"mvg/internal/motif"
	"mvg/internal/parallel"
	"mvg/internal/timeseries"
)

// Per-graph feature block widths.
const (
	mpdWidth      = 17 // motif probabilities, motif.Names order
	otherWidth    = 6  // density, assortativity, kcore, max/min/mean degree
	extendedWidth = 2  // degree entropy, transitivity (§6 future work)
)

// otherFeatureNames lists the non-MPD per-graph statistics in block order.
var otherFeatureNames = []string{
	"Density", "Assortativity", "KCore", "MaxDegree", "MinDegree", "MeanDegree",
}

// extendedFeatureNames lists the optional future-work statistics.
var extendedFeatureNames = []string{"DegreeEntropy", "Transitivity"}

// scaleParallelMinLen is the series length from which a batch smaller
// than its worker budget fans each series's per-scale graph builds across
// the pool (see ExtractDatasetPool) instead of serializing the series on
// one worker. Below it, per-scale jobs are too short to amortize the
// hand-off; above it, the visibility builds dominate and split cleanly.
const scaleParallelMinLen = 4096

// Extractor converts time series into MVG feature vectors (Algorithm 1).
// It is safe for concurrent use.
type Extractor struct {
	opts Options
	tau  int

	// coord pools coordination Scratch values for the scale-parallel batch
	// path: preprocessing and the PAA pyramid run on the calling
	// goroutine (never on pool workers, whose own Scratch handles the
	// graph builds), and concurrent batches must not share buffers.
	coord sync.Pool
}

// NewExtractor validates opts and returns an Extractor. The zero Options
// value is the paper's recommended MVG configuration.
func NewExtractor(opts Options) (*Extractor, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	tau := opts.Tau
	if tau == 0 {
		tau = timeseries.DefaultTau
	}
	// Clamp once here so every consumer of e.tau — scalesInto, NumScales,
	// NumFeatures, FeatureNames — agrees on the pyramid's stop condition
	// (a visibility graph needs at least two vertices).
	if tau < 2 {
		tau = 2
	}
	return &Extractor{opts: opts, tau: tau}, nil
}

// Options returns the configuration the extractor was built with.
func (e *Extractor) Options() Options { return e.opts }

// perGraphWidth returns the number of features contributed by one graph.
func (e *Extractor) perGraphWidth() int {
	w := mpdWidth
	if e.opts.Features == AllFeatures {
		w += otherWidth
	}
	if e.opts.Extended {
		w += extendedWidth
	}
	return w
}

// graphsPerScale returns how many graphs each scale contributes.
func (e *Extractor) graphsPerScale() int {
	if e.opts.Graphs == VGAndHVG {
		return 2
	}
	return 1
}

// scalesInto materializes the configured subset of the multiscale pyramid
// in sc's reusable buffers. The returned slices alias sc and are valid
// until its next use.
func (e *Extractor) scalesInto(sc *Scratch, series []float64) ([][]float64, error) {
	sc.pre = buf.Grow(sc.pre, len(series))
	t := sc.pre
	if e.opts.NoZNormalize {
		copy(t, series)
	} else {
		timeseries.ZNormalizeInto(t, series)
	}
	if !e.opts.NoDetrend {
		timeseries.DetrendInto(t, t)
	}
	set := sc.scaleSet[:0]
	if e.opts.Scales != ApproxMultiscale {
		set = append(set, t)
	}
	if e.opts.Scales != Uniscale {
		// This loop is the in-buffer counterpart of timeseries.Multiscale;
		// its stop condition must stay in lockstep with NumScales.
		cur := t
		for level := 0; len(cur)/2 > e.tau; level++ {
			if level == len(sc.pyramid) {
				sc.pyramid = append(sc.pyramid, nil)
			}
			next, err := timeseries.HalveInto(sc.pyramid[level], cur)
			if err != nil {
				return nil, err
			}
			sc.pyramid[level] = next
			set = append(set, next)
			cur = next
		}
	}
	sc.scaleSet = set
	return set, nil
}

// NumScales returns the number of scales a series of length n produces
// under the extractor's configuration. Labels in FeatureNames use the
// convention T0 = original series, Ti = i-th halving, so AMVG starts at T1.
func (e *Extractor) NumScales(n int) int {
	count := 0
	switch e.opts.Scales {
	case Uniscale:
		return 1
	case ApproxMultiscale:
		for n/2 > e.tau {
			n /= 2
			count++
		}
		return count
	default:
		count = 1
		for n/2 > e.tau {
			n /= 2
			count++
		}
		return count
	}
}

// NumFeatures returns the feature-vector length for series of length n.
func (e *Extractor) NumFeatures(n int) int {
	return e.NumScales(n) * e.graphsPerScale() * e.perGraphWidth()
}

// FeatureNames returns human-readable names aligned with the output of
// Extract for series of length n, e.g. "T0.HVG.P(M44)" or
// "T2.VG.Assortativity" (the names used in the paper's Figure 10).
func (e *Extractor) FeatureNames(n int) []string {
	numScales := e.NumScales(n)
	firstScale := 0
	if e.opts.Scales == ApproxMultiscale {
		firstScale = 1
	}
	var kinds []string
	switch e.opts.Graphs {
	case VGAndHVG:
		kinds = []string{"VG", "HVG"}
	case VGOnly:
		kinds = []string{"VG"}
	default:
		kinds = []string{"HVG"}
	}
	names := make([]string, 0, e.NumFeatures(n))
	for s := 0; s < numScales; s++ {
		for _, kind := range kinds {
			prefix := fmt.Sprintf("T%d.%s", firstScale+s, kind)
			for _, m := range motif.Names {
				names = append(names, fmt.Sprintf("%s.P(%s)", prefix, m))
			}
			if e.opts.Features == AllFeatures {
				for _, o := range otherFeatureNames {
					names = append(names, prefix+"."+o)
				}
			}
			if e.opts.Extended {
				for _, o := range extendedFeatureNames {
					names = append(names, prefix+"."+o)
				}
			}
		}
	}
	return names
}

// graphBlock appends the feature block of one graph to dst, computing the
// statistics in sc's reusable buffers.
func (e *Extractor) graphBlock(dst []float64, g *graph.Graph, sc *Scratch) []float64 {
	dst = sc.motifs.Count(g).AppendProbabilities(dst)
	if e.opts.Features == AllFeatures {
		r, _ := g.Assortativity() // undefined → 0, a neutral value
		maxDeg, minDeg, meanDeg := g.DegreeStats()
		dst = append(dst,
			g.Density(),
			r,
			float64(g.DegeneracyScratch(&sc.cores)),
			float64(maxDeg),
			float64(minDeg),
			meanDeg,
		)
	}
	if e.opts.Extended {
		dst = append(dst, g.DegreeEntropyScratch(&sc.cores), g.Transitivity())
	}
	return dst
}

// Extract implements Algorithm 1 for a single series: build the configured
// multiscale visibility graphs and concatenate per-graph feature blocks.
// It allocates fresh scratch per call; batch extraction goes through
// ExtractWith / ExtractDataset, which reuse scratch across series.
func (e *Extractor) Extract(series []float64) ([]float64, error) {
	return e.ExtractWith(nil, series)
}

// ExtractWith is Extract computing all intermediates (scale pyramid,
// visibility graphs, motif counters) in sc's reusable buffers; only the
// returned feature vector is freshly allocated. A nil sc uses throwaway
// scratch. The output is byte-identical to Extract's regardless of scratch
// reuse — extraction is a pure function of the series.
func (e *Extractor) ExtractWith(sc *Scratch, series []float64) ([]float64, error) {
	return e.extractSeries(sc, series, nil, nil)
}

// ExtractWithGraphs is ExtractWith taking pre-built T0 visibility graphs —
// the entry point of the streaming engine (mvg.Stream), whose incremental
// maintainer already holds the window's graphs in CSR form. A non-nil
// t0vg / t0hvg substitutes for the batch builder at the original scale;
// deeper pyramid scales are still built by the batch builders in sc. The
// output is bit-identical to ExtractWith provided the supplied graphs
// equal the batch builders' output on the preprocessed series, which holds
// exactly when preprocessing is structure-preserving at the bit level
// (Options.NoDetrend and Options.NoZNormalize set — see docs/streaming.md
// for why streaming configs disable window-relative preprocessing).
//
// Supplied graphs are ignored under ApproxMultiscale (T0 contributes no
// features there) and must have exactly len(series) vertices otherwise.
func (e *Extractor) ExtractWithGraphs(sc *Scratch, series []float64, t0vg, t0hvg *graph.Graph) ([]float64, error) {
	return e.extractSeries(sc, series, t0vg, t0hvg)
}

// extractSeries is the shared body of ExtractWith and ExtractWithGraphs.
func (e *Extractor) extractSeries(sc *Scratch, series []float64, t0vg, t0hvg *graph.Graph) ([]float64, error) {
	if sc == nil {
		sc = NewScratch()
	}
	if err := timeseries.Validate(series); err != nil {
		return nil, err
	}
	scales, err := e.scalesInto(sc, series)
	if err != nil {
		return nil, err
	}
	if len(scales) == 0 {
		return nil, fmt.Errorf("%w: n=%d tau=%d mode=%s",
			ErrSeriesTooShort, len(series), e.tau, e.opts.Scales)
	}
	if e.opts.Scales == ApproxMultiscale {
		t0vg, t0hvg = nil, nil
	}
	out := make([]float64, 0, len(scales)*e.graphsPerScale()*e.perGraphWidth())
	for si, t := range scales {
		if len(t) < 2 {
			return nil, fmt.Errorf("%w: scale of %d points", ErrSeriesTooShort, len(t))
		}
		vg, hvg := t0vg, t0hvg
		if si > 0 {
			vg, hvg = nil, nil
		}
		if e.opts.Graphs == VGAndHVG || e.opts.Graphs == VGOnly {
			g := vg
			if g == nil {
				edges, err := sc.vis.VGEdges(t)
				if err != nil {
					return nil, err
				}
				sc.g.BuildUnchecked(len(t), edges)
				g = &sc.g
			} else if g.N() != len(t) {
				return nil, fmt.Errorf("core: supplied T0 VG has %d vertices, scale has %d", g.N(), len(t))
			}
			out = e.graphBlock(out, g, sc)
		}
		if e.opts.Graphs == VGAndHVG || e.opts.Graphs == HVGOnly {
			g := hvg
			if g == nil {
				edges, err := sc.vis.HVGEdges(t)
				if err != nil {
					return nil, err
				}
				sc.g.BuildUnchecked(len(t), edges)
				g = &sc.g
			} else if g.N() != len(t) {
				return nil, fmt.Errorf("core: supplied T0 HVG has %d vertices, scale has %d", g.N(), len(t))
			}
			out = e.graphBlock(out, g, sc)
		}
	}
	return out, nil
}

// ExtractDataset extracts features for every series in parallel across
// GOMAXPROCS workers (the pipeline is embarrassingly parallel, which the
// paper lists as a design goal). All series must yield equally long feature
// vectors, which holds when they share a common length.
func (e *Extractor) ExtractDataset(series [][]float64) ([][]float64, error) {
	return e.ExtractDatasetWorkers(series, 0)
}

// ExtractDatasetWorkers is ExtractDataset with an explicit worker count
// (<= 0 selects GOMAXPROCS). Rows of the result are ordered like the input
// and are byte-identical for every worker count: jobs are index-addressed
// and each worker runs the pure per-series extraction with its own private
// scratch (see internal/parallel and docs/concurrency.md).
//
// Scratch is created per call; long-lived callers that extract many
// (often small) batches should hold a persistent pool and use
// ExtractDatasetPool instead, which keeps the warm scratch buffers alive
// across calls.
func (e *Extractor) ExtractDatasetWorkers(series [][]float64, workers int) ([][]float64, error) {
	n := len(series)
	if n == 0 {
		return nil, fmt.Errorf("core: empty dataset")
	}
	out := make([][]float64, n)
	err := parallel.ForEachScratch(workers, n, NewScratch, func(sc *Scratch, i int) error {
		return e.extractRow(sc, series, out, i)
	})
	if err != nil {
		return nil, err
	}
	if err := checkWidths(out); err != nil {
		return nil, err
	}
	return out, nil
}

// ExtractDatasetPool is ExtractDatasetWorkers running on a caller-owned
// persistent worker pool: per-worker Scratch buffers survive across calls
// instead of being rebuilt per batch, and the context is checked between
// per-series jobs so a cancelled batch stops burning CPU promptly
// (returning ctx.Err()). This is the engine behind mvg.Pipeline. The
// output is byte-identical to ExtractDatasetWorkers for every worker
// count — extraction is a pure function of each series.
//
// Batches with fewer series than the resolved worker budget, all of them
// at least scaleParallelMinLen points long, are parallelized *within*
// each series instead: every (scale, graph-kind) pair of the multiscale
// pyramid becomes one pool job writing its fixed-width block of the
// feature vector, so a single 100k-point request no longer serializes on
// one worker. The routing only changes scheduling — the same pure
// per-graph computations write the same disjoint output slots, so rows
// stay byte-identical to the per-series path at every worker count.
func (e *Extractor) ExtractDatasetPool(ctx context.Context, pool *parallel.Pool[*Scratch], workers int, series [][]float64) ([][]float64, error) {
	n := len(series)
	if n == 0 {
		return nil, fmt.Errorf("core: empty dataset")
	}
	out := make([][]float64, n)
	if e.scaleParallel(workers, series) {
		if ctx == nil {
			ctx = context.Background()
		}
		for i := range series {
			v, err := e.extractSeriesOnPool(ctx, pool, workers, series[i])
			if err != nil {
				if ctxErr := ctx.Err(); ctxErr != nil {
					return nil, ctxErr
				}
				return nil, fmt.Errorf("core: series %d: %w", i, err)
			}
			out[i] = v
		}
		if err := checkWidths(out); err != nil {
			return nil, err
		}
		return out, nil
	}
	err := pool.ForEach(ctx, workers, n, func(sc *Scratch, i int) error {
		return e.extractRow(sc, series, out, i)
	})
	if err != nil {
		return nil, err
	}
	if err := checkWidths(out); err != nil {
		return nil, err
	}
	return out, nil
}

// scaleParallel reports whether a batch takes the in-series scale-parallel
// path: more workers available than series, every series long enough for
// per-scale jobs to amortize the pool hand-off, and more than one graph
// per series to fan out.
func (e *Extractor) scaleParallel(workers int, series [][]float64) bool {
	if e.opts.Scales == Uniscale && e.graphsPerScale() == 1 {
		return false
	}
	if parallel.Workers(workers, len(series)+1) <= len(series) {
		return false
	}
	for _, s := range series {
		if len(s) < scaleParallelMinLen {
			return false
		}
	}
	return true
}

// extractSeriesOnPool extracts one series with its per-scale graph builds
// fanned across the pool. It must run on the calling goroutine, never
// inside a pool job: Pool.ForEach submissions block on the task channel,
// so nesting it inside a worker could deadlock a saturated pool.
//
// Preprocessing and the pyramid run in a pooled coordination Scratch that
// stays alive (and untouched) for the duration of the fan-out, since the
// scale slices handed to the jobs alias its buffers; each job builds its
// graph and feature block in the pool worker's own Scratch. Jobs write
// disjoint fixed-width blocks of the result, in the exact block order of
// the sequential path.
func (e *Extractor) extractSeriesOnPool(ctx context.Context, pool *parallel.Pool[*Scratch], workers int, series []float64) ([]float64, error) {
	sc := e.coordScratch()
	defer e.coord.Put(sc)
	if err := timeseries.Validate(series); err != nil {
		return nil, err
	}
	scales, err := e.scalesInto(sc, series)
	if err != nil {
		return nil, err
	}
	if len(scales) == 0 {
		return nil, fmt.Errorf("%w: n=%d tau=%d mode=%s",
			ErrSeriesTooShort, len(series), e.tau, e.opts.Scales)
	}
	gps := e.graphsPerScale()
	width := e.perGraphWidth()
	buildVG := e.opts.Graphs == VGAndHVG || e.opts.Graphs == VGOnly
	out := make([]float64, len(scales)*gps*width)
	err = pool.ForEach(ctx, workers, len(scales)*gps, func(wsc *Scratch, job int) error {
		t := scales[job/gps]
		if len(t) < 2 {
			return fmt.Errorf("%w: scale of %d points", ErrSeriesTooShort, len(t))
		}
		var (
			edges [][2]int
			err   error
		)
		if buildVG && job%gps == 0 {
			edges, err = wsc.vis.VGEdges(t)
		} else {
			edges, err = wsc.vis.HVGEdges(t)
		}
		if err != nil {
			return err
		}
		wsc.g.BuildUnchecked(len(t), edges)
		off := job * width
		if blk := e.graphBlock(out[off:off:off+width], &wsc.g, wsc); len(blk) != width {
			return fmt.Errorf("core: internal: graph block width %d, want %d", len(blk), width)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// coordScratch hands out a coordination Scratch for the scale-parallel
// path, growing the pool on demand.
func (e *Extractor) coordScratch() *Scratch {
	if sc, ok := e.coord.Get().(*Scratch); ok {
		return sc
	}
	return NewScratch()
}

// extractRow is the shared per-series job body of the two batch entry
// points: extract series[i] into out[i] with the worker's scratch.
func (e *Extractor) extractRow(sc *Scratch, series [][]float64, out [][]float64, i int) error {
	v, err := e.ExtractWith(sc, series[i])
	if err != nil {
		return fmt.Errorf("core: series %d: %w", i, err)
	}
	out[i] = v
	return nil
}

// checkWidths verifies every row of a completed batch has the width of
// row 0 — the invariant classifiers rely on, broken only by datasets
// mixing series lengths.
func checkWidths(out [][]float64) error {
	width := len(out[0])
	for i, v := range out {
		if len(v) != width {
			return fmt.Errorf("core: inconsistent feature width: series %d has %d, series 0 has %d (unequal series lengths?)", i, len(v), width)
		}
	}
	return nil
}
