package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// tinyConfig runs experiments on two small datasets only.
func tinyConfig(buf *bytes.Buffer) Config {
	return Config{
		Out:      buf,
		Seed:     1,
		Quick:    true,
		Datasets: []string{"FreqSines", "EngineNoise"},
	}
}

func TestLoadSuiteAllAndFiltered(t *testing.T) {
	all, err := Config{Seed: 1}.LoadSuite()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 13 {
		t.Fatalf("full suite has %d datasets", len(all))
	}
	some, err := Config{Seed: 1, Datasets: []string{"ChaosMaps"}}.LoadSuite()
	if err != nil {
		t.Fatal(err)
	}
	if len(some) != 1 || some[0].Family.Name != "ChaosMaps" {
		t.Fatalf("filter failed: %+v", some)
	}
	if _, err := (Config{Datasets: []string{"Nope"}}).LoadSuite(); err == nil {
		t.Error("unknown dataset should fail")
	}
}

func TestQuickModeTruncates(t *testing.T) {
	runs, err := Config{Seed: 1, Quick: true, Datasets: []string{"ApplianceLoad"}}.LoadSuite()
	if err != nil {
		t.Fatal(err)
	}
	run := runs[0]
	if run.Train.Len() > 40 || run.Test.Len() > 60 {
		t.Errorf("quick mode kept %d/%d samples", run.Train.Len(), run.Test.Len())
	}
	// All classes survive truncation.
	seen := map[int]bool{}
	for _, label := range run.Train.Labels {
		seen[label] = true
	}
	if len(seen) != run.Train.Classes() {
		t.Errorf("truncation lost classes: %d of %d", len(seen), run.Train.Classes())
	}
	if err := run.Train.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRunTable2ProducesReport(t *testing.T) {
	var buf bytes.Buffer
	r := NewRunner(tinyConfig(&buf))
	if err := r.RunTable2(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 2", "FreqSines", "EngineNoise", "Wilcoxon", "1NN-DTW"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestTable2Cached(t *testing.T) {
	var buf bytes.Buffer
	r := NewRunner(tinyConfig(&buf))
	d1, err := r.Table2()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := r.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Error("Table2 should be cached per runner")
	}
	if d1.Column("G") == nil || d1.Column("1NN-ED") == nil {
		t.Error("column lookup failed")
	}
	if d1.Column("Z") != nil {
		t.Error("unknown column should be nil")
	}
}

func TestRunScatterFigures(t *testing.T) {
	var buf bytes.Buffer
	r := NewRunner(tinyConfig(&buf))
	for _, id := range []string{"fig3", "fig4", "fig5"} {
		if err := r.Run(id); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	out := buf.String()
	for _, want := range []string{"Figure 3", "Figure 4", "Figure 5", "wins"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestRunTable3AndRuntimeFigures(t *testing.T) {
	var buf bytes.Buffer
	r := NewRunner(tinyConfig(&buf))
	if err := r.Run("table3"); err != nil {
		t.Fatal(err)
	}
	if err := r.Run("fig8"); err != nil {
		t.Fatal(err)
	}
	if err := r.Run("fig9"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 3", "SAX-VSM", "Figure 8", "Figure 9", "log10"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	data, err := r.Table3()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range data.Rows {
		if row.MVGTotalSec <= 0 || row.FSSec <= 0 {
			t.Errorf("%s: non-positive runtimes %+v", row.Dataset, row)
		}
		for _, e := range []float64{row.NNED, row.NNDTW, row.LS, row.FS, row.SAXVSM, row.MVG} {
			if e < 0 || e > 1 {
				t.Errorf("%s: error rate out of range: %+v", row.Dataset, row)
			}
		}
	}
}

func TestRunCaseStudies(t *testing.T) {
	var buf bytes.Buffer
	r := NewRunner(tinyConfig(&buf))
	if err := r.Run("fig2"); err != nil {
		t.Fatal(err)
	}
	if err := r.Run("fig10"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 2", "M41", "Figure 10", "Gain"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	r := NewRunner(tinyConfig(&buf))
	if err := r.Run("table9"); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestQuartiles(t *testing.T) {
	q := quartiles([]float64{4, 1, 3, 2})
	want := [5]float64{1, 1.75, 2.5, 3.25, 4}
	if q != want {
		t.Errorf("quartiles = %v, want %v", q, want)
	}
	if quartiles(nil) != [5]float64{} {
		t.Error("empty quartiles should be zero")
	}
}

func TestRunCDExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("classifier-family comparison is slow")
	}
	var buf bytes.Buffer
	r := NewRunner(tinyConfig(&buf))
	if err := r.Run("fig6"); err != nil {
		t.Fatal(err)
	}
	if err := r.Run("fig7"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 6", "Figure 7", "Friedman", "Nemenyi CD", "Average ranks"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestRenderCD(t *testing.T) {
	var buf bytes.Buffer
	scores := [][]float64{
		{0.1, 0.2, 0.3}, {0.1, 0.25, 0.3}, {0.15, 0.2, 0.35},
		{0.1, 0.2, 0.3}, {0.12, 0.22, 0.31}, {0.1, 0.2, 0.3},
	}
	if err := renderCD(&buf, []string{"a", "b", "c"}, scores, 0.05); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Friedman", "a", "b", "c", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("CD render missing %q:\n%s", want, out)
		}
	}
	// The diagram must be valid UTF-8 with no replacement runes (the axis
	// marker overwrites a multi-byte rune).
	if strings.ContainsRune(out, '�') {
		t.Error("CD render produced a replacement character")
	}
	// Degenerate input errors instead of panicking.
	if err := renderCD(&buf, []string{"a"}, [][]float64{{1}}, 0.05); err == nil {
		t.Error("single algorithm should fail")
	}
}

func TestRunExtras(t *testing.T) {
	var buf bytes.Buffer
	r := NewRunner(tinyConfig(&buf))
	if err := r.Run("extras"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Extras", "BOP", "BOSS", "MVG+ext"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}
