package experiments

import (
	"context"
	"fmt"
	"math"
	"time"

	"mvg/internal/baselines/fastshapelets"
	"mvg/internal/baselines/learnshapelets"
	"mvg/internal/baselines/saxvsm"
	"mvg/internal/core"
	"mvg/internal/grids"
	"mvg/internal/ml"
	"mvg/internal/ml/modelsel"
	"mvg/internal/stats"
)

// Table3Row is one dataset's accuracy/runtime record.
type Table3Row struct {
	Dataset string
	Classes int
	Train   int
	Test    int
	Dim     int
	// Error rates, paper column order.
	NNED, NNDTW, LS, FS, SAXVSM, MVG float64
	// Runtime split for MVG: feature extraction vs classification
	// (train+test), and their sum, in seconds.
	MVGFeatSec, MVGClfSec, MVGTotalSec float64
	// FS runtime (train+test) in seconds.
	FSSec float64
}

// Table3Data holds the full baseline comparison.
type Table3Data struct {
	Rows []Table3Row
}

// Column extracts one named error-rate vector.
func (t *Table3Data) Column(name string) []float64 {
	out := make([]float64, len(t.Rows))
	for i, r := range t.Rows {
		switch name {
		case "1NN-ED":
			out[i] = r.NNED
		case "1NN-DTW":
			out[i] = r.NNDTW
		case "LS":
			out[i] = r.LS
		case "FS":
			out[i] = r.FS
		case "SAX-VSM":
			out[i] = r.SAXVSM
		case "MVG":
			out[i] = r.MVG
		}
	}
	return out
}

// mvgPipeline runs the paper's full MVG pipeline (extraction + tuned
// XGBoost) with the runtime split the Table 3 columns report.
func (c Config) mvgPipeline(run DatasetRun) (errRate, featSec, clfSec float64, err error) {
	e, err := core.NewExtractor(core.Options{})
	if err != nil {
		return 0, 0, 0, err
	}
	t0 := time.Now()
	trainX, err := e.ExtractDataset(run.Train.Series)
	if err != nil {
		return 0, 0, 0, err
	}
	testX, err := e.ExtractDataset(run.Test.Series)
	if err != nil {
		return 0, 0, 0, err
	}
	featSec = time.Since(t0).Seconds()

	t1 := time.Now()
	classes := run.Train.Classes()
	model, _, err := modelsel.Best(context.Background(), nil, grids.XGB(c.gridSize(), c.Seed),
		trainX, run.Train.Labels, classes, 3, run.Family.Imbalanced, c.Seed)
	if err != nil {
		return 0, 0, 0, err
	}
	proba, err := model.PredictProba(testX)
	if err != nil {
		return 0, 0, 0, err
	}
	clfSec = time.Since(t1).Seconds()
	return ml.ErrorRate(ml.Predict(proba), run.Test.Labels), featSec, clfSec, nil
}

// Table3 computes (and caches) the state-of-the-art comparison.
func (r *Runner) Table3() (*Table3Data, error) {
	if r.table3 != nil {
		return r.table3, nil
	}
	runs, err := r.Cfg.LoadSuite()
	if err != nil {
		return nil, err
	}
	lsEpochs := 200
	if r.Cfg.Quick {
		lsEpochs = 60
	}
	data := &Table3Data{}
	for _, run := range runs {
		row := Table3Row{
			Dataset: run.Family.Name,
			Classes: run.Train.Classes(),
			Train:   run.Train.Len(),
			Test:    run.Test.Len(),
			Dim:     run.Train.SeriesLength(),
		}
		if row.NNED, _, _, err = evalSeriesClassifier(nn1ED(), run); err != nil {
			return nil, fmt.Errorf("%s 1nn-ed: %w", run.Family.Name, err)
		}
		if row.NNDTW, _, _, err = evalSeriesClassifier(r.Cfg.nn1DTW(row.Dim), run); err != nil {
			return nil, fmt.Errorf("%s 1nn-dtw: %w", run.Family.Name, err)
		}
		ls := learnshapelets.New(learnshapelets.Params{Epochs: lsEpochs, Seed: r.Cfg.Seed})
		if row.LS, _, _, err = evalSeriesClassifier(ls, run); err != nil {
			return nil, fmt.Errorf("%s ls: %w", run.Family.Name, err)
		}
		fs := fastshapelets.New(fastshapelets.Params{Seed: r.Cfg.Seed})
		var fsTrain, fsTest float64
		if row.FS, fsTrain, fsTest, err = evalSeriesClassifier(fs, run); err != nil {
			return nil, fmt.Errorf("%s fs: %w", run.Family.Name, err)
		}
		row.FSSec = fsTrain + fsTest
		sv := saxvsm.New(saxvsm.Params{})
		if row.SAXVSM, _, _, err = evalSeriesClassifier(sv, run); err != nil {
			return nil, fmt.Errorf("%s sax-vsm: %w", run.Family.Name, err)
		}
		if row.MVG, row.MVGFeatSec, row.MVGClfSec, err = r.Cfg.mvgPipeline(run); err != nil {
			return nil, fmt.Errorf("%s mvg: %w", run.Family.Name, err)
		}
		row.MVGTotalSec = row.MVGFeatSec + row.MVGClfSec
		data.Rows = append(data.Rows, row)
	}
	r.table3 = data
	return data, nil
}

// RunTable3 renders the paper's accuracy + runtime comparison table.
func (r *Runner) RunTable3() error {
	data, err := r.Table3()
	if err != nil {
		return err
	}
	w := r.Cfg.Out
	fmt.Fprintln(w, "== Table 3: error rates vs five baselines, and runtime (seconds) ==")
	tbl := newTable(w)
	tbl.header("Dataset", "#Cls", "#Train", "#Test", "Dim",
		"1NN-ED", "1NN-DTW", "LS", "FS", "SAX-VSM", "MVG",
		"FE(s)", "Clf(s)", "Σ(s)", "FS(s)")
	bests := make([]int, 6)
	var mvgTotal, fsTotal float64
	for _, row := range data.Rows {
		errs := []float64{row.NNED, row.NNDTW, row.LS, row.FS, row.SAXVSM, row.MVG}
		best := minOf(errs)
		cells := []string{
			row.Dataset,
			fmt.Sprint(row.Classes), fmt.Sprint(row.Train),
			fmt.Sprint(row.Test), fmt.Sprint(row.Dim),
		}
		for j, e := range errs {
			cell := fmt.Sprintf("%.3f", e)
			if e == best {
				cell += "*"
				bests[j]++
			}
			cells = append(cells, cell)
		}
		cells = append(cells,
			fmt.Sprintf("%.2f", row.MVGFeatSec),
			fmt.Sprintf("%.2f", row.MVGClfSec),
			fmt.Sprintf("%.2f", row.MVGTotalSec),
			fmt.Sprintf("%.2f", row.FSSec))
		tbl.row(cells...)
		mvgTotal += row.MVGTotalSec
		fsTotal += row.FSSec
	}
	tbl.flush()
	fmt.Fprintf(w, "\nBest (incl. ties): 1NN-ED=%d 1NN-DTW=%d LS=%d FS=%d SAX-VSM=%d MVG=%d\n",
		bests[0], bests[1], bests[2], bests[3], bests[4], bests[5])
	fmt.Fprintf(w, "Total runtime: MVG %.1fs vs FS %.1fs (FS/MVG = %.1fx)\n",
		mvgTotal, fsTotal, ratioOrInf(fsTotal, mvgTotal))

	fmt.Fprintln(w, "\nWilcoxon signed-rank vs MVG (lower error wins):")
	for _, name := range []string{"1NN-ED", "1NN-DTW", "LS", "FS", "SAX-VSM"} {
		res, err := stats.Wilcoxon(data.Column(name), data.Column("MVG"))
		if err != nil {
			fmt.Fprintf(w, "  %-8s vs MVG  not testable: %v\n", name, err)
			continue
		}
		fmt.Fprintf(w, "  %-8s vs MVG  MVG wins %d / %s wins %d (ties %d), p = %.4g\n",
			name, res.BWins, name, res.AWins,
			len(data.Rows)-res.AWins-res.BWins, res.P)
	}
	fmt.Fprintln(w)
	return nil
}

// RunFigure8 renders the five baseline-vs-MVG scatter plots.
func (r *Runner) RunFigure8() error {
	data, err := r.Table3()
	if err != nil {
		return err
	}
	w := r.Cfg.Out
	fmt.Fprintln(w, "== Figure 8: per-dataset error scatter, each baseline vs MVG ==")
	mvg := data.Column("MVG")
	for _, name := range []string{"1NN-ED", "1NN-DTW", "LS", "FS", "SAX-VSM"} {
		base := data.Column(name)
		wins := 0
		fmt.Fprintf(w, "-- %s vs MVG (x=%s error, y=MVG error)\n", name, name)
		for i, row := range data.Rows {
			marker := " "
			switch {
			case mvg[i] < base[i]:
				marker = "+"
				wins++
			case base[i] < mvg[i]:
				marker = "-"
			}
			fmt.Fprintf(w, "   %-16s (%.3f, %.3f) %s\n", row.Dataset, base[i], mvg[i], marker)
		}
		fmt.Fprintf(w, "   MVG wins %d/%d datasets\n", wins, len(data.Rows))
	}
	fmt.Fprintln(w)
	return nil
}

// RunFigure9 renders the FS-vs-MVG log runtime comparison.
func (r *Runner) RunFigure9() error {
	data, err := r.Table3()
	if err != nil {
		return err
	}
	w := r.Cfg.Out
	fmt.Fprintln(w, "== Figure 9: runtime comparison FS vs MVG (log10 seconds) ==")
	faster := 0
	for _, row := range data.Rows {
		marker := " "
		if row.MVGTotalSec < row.FSSec {
			marker = "+"
			faster++
		}
		fmt.Fprintf(w, "   %-16s log10(FS)=%6.2f  log10(MVG)=%6.2f  FS/MVG=%6.1fx %s\n",
			row.Dataset, log10Safe(row.FSSec), log10Safe(row.MVGTotalSec),
			ratioOrInf(row.FSSec, row.MVGTotalSec), marker)
	}
	fmt.Fprintf(w, "   MVG faster on %d/%d datasets\n\n", faster, len(data.Rows))
	return nil
}

func log10Safe(v float64) float64 {
	if v <= 0 {
		return math.Inf(-1)
	}
	return math.Log10(v)
}

func ratioOrInf(num, den float64) float64 {
	if den <= 0 {
		return math.Inf(1)
	}
	return num / den
}
