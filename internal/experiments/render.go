package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"

	"mvg/internal/stats"
)

// table is a small tabwriter wrapper for aligned report tables.
type table struct{ tw *tabwriter.Writer }

func newTable(w io.Writer) *table {
	return &table{tw: tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)}
}

func (t *table) header(cells ...string) {
	t.row(cells...)
	rule := make([]string, len(cells))
	for i, c := range cells {
		rule[i] = strings.Repeat("-", len(c))
	}
	t.row(rule...)
}

func (t *table) row(cells ...string) {
	fmt.Fprintln(t.tw, strings.Join(cells, "\t"))
}

func (t *table) flush() { t.tw.Flush() }

// renderCD prints a textual critical-difference diagram: average ranks on
// a rank axis plus the groups joined by insignificance bars, mirroring the
// paper's Figures 6 and 7.
func renderCD(w io.Writer, names []string, scores [][]float64, alpha float64) error {
	fr, err := stats.Friedman(scores)
	if err != nil {
		return err
	}
	cd, err := stats.NemenyiCD(fr.K, fr.N, alpha)
	if err != nil {
		return err
	}
	type entry struct {
		name string
		rank float64
	}
	entries := make([]entry, len(names))
	for i, n := range names {
		entries[i] = entry{n, fr.AvgRanks[i]}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].rank < entries[j].rank })

	fmt.Fprintf(w, "Friedman χ² = %.3f (df=%d), p = %.4g;  Nemenyi CD = %.4f at α = %.2f, N = %d\n",
		fr.ChiSq, fr.K-1, fr.P, cd, alpha, fr.N)
	fmt.Fprintln(w, "Average ranks (lower = more accurate):")
	for _, e := range entries {
		// Rank axis from 1..K rendered as a dotted line with a marker.
		const width = 40
		pos := int((e.rank - 1) / float64(len(names)-1) * float64(width-1))
		if pos < 0 {
			pos = 0
		}
		if pos >= width {
			pos = width - 1
		}
		axis := []rune(strings.Repeat("·", width))
		axis[pos] = '#'
		fmt.Fprintf(w, "  %-14s %5.3f  |%s|\n", e.name, e.rank, string(axis))
	}
	// Insignificance groups: maximal runs of sorted entries whose rank
	// spread is below the critical difference (subset runs are skipped).
	fmt.Fprintln(w, "Groups not significantly different (within one CD):")
	printed := false
	maxEnd := -1
	for i := 0; i < len(entries); i++ {
		j := i
		for j+1 < len(entries) && entries[j+1].rank-entries[i].rank < cd {
			j++
		}
		if j > i && j > maxEnd {
			maxEnd = j
			names := make([]string, 0, j-i+1)
			for k := i; k <= j; k++ {
				names = append(names, entries[k].name)
			}
			fmt.Fprintf(w, "  { %s }\n", strings.Join(names, " ~ "))
			printed = true
		}
	}
	if !printed {
		fmt.Fprintln(w, "  (all pairs significantly different)")
	}
	return nil
}
