package experiments

import (
	"fmt"

	"mvg/internal/baselines/bop"
	"mvg/internal/baselines/boss"
	"mvg/internal/core"
	"mvg/internal/stats"
)

// Extension experiments beyond the paper's tables and figures: the
// related-work baselines the paper cites but does not benchmark
// (Bag-of-Patterns, BOSS) and the §6 future-work feature ablation.

// RunExtras compares MVG against the two related-work baselines and
// measures the effect of the future-work feature block (degree entropy +
// transitivity) across the suite.
func (r *Runner) RunExtras() error {
	runs, err := r.Cfg.LoadSuite()
	if err != nil {
		return err
	}
	w := r.Cfg.Out
	fmt.Fprintln(w, "== Extras: related-work baselines (BOP, BOSS) and §6 feature ablation ==")
	tbl := newTable(w)
	tbl.header("Dataset", "BOP", "BOSS", "MVG", "MVG+ext")

	var bopErrs, bossErrs, mvgErrs, extErrs []float64
	for _, run := range runs {
		be, _, _, err := evalSeriesClassifier(bop.New(bop.Params{}), run)
		if err != nil {
			return fmt.Errorf("%s bop: %w", run.Family.Name, err)
		}
		se, _, _, err := evalSeriesClassifier(boss.New(boss.Params{}), run)
		if err != nil {
			return fmt.Errorf("%s boss: %w", run.Family.Name, err)
		}
		me, err := r.Cfg.evalRepresentation(run, core.Options{})
		if err != nil {
			return err
		}
		xe, err := r.Cfg.evalRepresentation(run, core.Options{Extended: true})
		if err != nil {
			return err
		}
		bopErrs = append(bopErrs, be)
		bossErrs = append(bossErrs, se)
		mvgErrs = append(mvgErrs, me)
		extErrs = append(extErrs, xe)
		tbl.row(run.Family.Name,
			fmt.Sprintf("%.3f", be), fmt.Sprintf("%.3f", se),
			fmt.Sprintf("%.3f", me), fmt.Sprintf("%.3f", xe))
	}
	tbl.flush()

	for _, cmp := range []struct {
		name string
		base []float64
	}{{"BOP", bopErrs}, {"BOSS", bossErrs}} {
		res, err := stats.Wilcoxon(cmp.base, mvgErrs)
		if err != nil {
			fmt.Fprintf(w, "%s vs MVG: not testable (%v)\n", cmp.name, err)
			continue
		}
		fmt.Fprintf(w, "%s vs MVG: MVG wins %d / %s wins %d, p = %.4g\n",
			cmp.name, res.BWins, cmp.name, res.AWins, res.P)
	}
	if res, err := stats.Wilcoxon(mvgErrs, extErrs); err == nil {
		fmt.Fprintf(w, "MVG vs MVG+extended: extended wins %d / base wins %d, p = %.4g\n",
			res.BWins, res.AWins, res.P)
	} else {
		fmt.Fprintf(w, "MVG vs MVG+extended: not testable (%v)\n", err)
	}
	fmt.Fprintln(w)
	return nil
}
