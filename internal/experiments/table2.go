package experiments

import (
	"fmt"

	"mvg/internal/core"
	"mvg/internal/stats"
)

// repSpec is one representation column of Table 2.
type repSpec struct {
	Label string
	Desc  string
	Opts  core.Options
}

// table2Columns are the paper's columns A–G: UVG×HVG×{MPDs,All},
// UVG×VG×{MPDs,All}, UVG×(VG+HVG), AMVG, MVG.
func table2Columns() []repSpec {
	return []repSpec{
		{"A", "UVG HVG MPDs", core.Options{Scales: core.Uniscale, Graphs: core.HVGOnly, Features: core.MPDsOnly}},
		{"B", "UVG HVG All", core.Options{Scales: core.Uniscale, Graphs: core.HVGOnly, Features: core.AllFeatures}},
		{"C", "UVG VG MPDs", core.Options{Scales: core.Uniscale, Graphs: core.VGOnly, Features: core.MPDsOnly}},
		{"D", "UVG VG All", core.Options{Scales: core.Uniscale, Graphs: core.VGOnly, Features: core.AllFeatures}},
		{"E", "UVG VG+HVG All", core.Options{Scales: core.Uniscale, Graphs: core.VGAndHVG, Features: core.AllFeatures}},
		{"F", "AMVG VG+HVG All", core.Options{Scales: core.ApproxMultiscale, Graphs: core.VGAndHVG, Features: core.AllFeatures}},
		{"G", "MVG VG+HVG All", core.Options{Scales: core.FullMultiscale, Graphs: core.VGAndHVG, Features: core.AllFeatures}},
	}
}

// Table2Data holds every per-dataset error rate of the ablation.
type Table2Data struct {
	Datasets []DatasetRun
	Columns  []repSpec
	// Err[i][j] is dataset i's error under column j.
	Err [][]float64
	// NNED and NNDTW are the 1NN reference columns.
	NNED, NNDTW []float64
}

// Column returns the error-rate vector of a labelled column ("A".."G",
// "1NN-ED", "1NN-DTW").
func (t *Table2Data) Column(label string) []float64 {
	switch label {
	case "1NN-ED":
		return t.NNED
	case "1NN-DTW":
		return t.NNDTW
	}
	for j, c := range t.Columns {
		if c.Label == label {
			out := make([]float64, len(t.Err))
			for i := range t.Err {
				out[i] = t.Err[i][j]
			}
			return out
		}
	}
	return nil
}

// Table2 computes (and caches) the heuristic-ablation data.
func (r *Runner) Table2() (*Table2Data, error) {
	if r.table2 != nil {
		return r.table2, nil
	}
	runs, err := r.Cfg.LoadSuite()
	if err != nil {
		return nil, err
	}
	cols := table2Columns()
	data := &Table2Data{Datasets: runs, Columns: cols}
	for _, run := range runs {
		row := make([]float64, len(cols))
		for j, col := range cols {
			opts := col.Opts
			// Short series cannot produce AMVG scales with the default τ;
			// match the paper's τ guidance by relaxing it for tiny inputs.
			if opts.Scales == core.ApproxMultiscale && run.Train.SeriesLength()/2 <= 15 {
				opts.Tau = -1
			}
			e, err := r.Cfg.evalRepresentation(run, opts)
			if err != nil {
				return nil, fmt.Errorf("column %s: %w", col.Label, err)
			}
			row[j] = e
		}
		data.Err = append(data.Err, row)

		ed, _, _, err := evalSeriesClassifier(nn1ED(), run)
		if err != nil {
			return nil, err
		}
		dtw, _, _, err := evalSeriesClassifier(r.Cfg.nn1DTW(run.Train.SeriesLength()), run)
		if err != nil {
			return nil, err
		}
		data.NNED = append(data.NNED, ed)
		data.NNDTW = append(data.NNDTW, dtw)
	}
	r.table2 = data
	return data, nil
}

// table2Pairings are the paper's bottom-of-table comparisons: each column
// versus its reference, in the order printed in Table 2.
var table2Pairings = [][2]string{
	{"1NN-ED", "G"}, {"1NN-DTW", "G"},
	{"A", "B"}, {"B", "D"}, {"C", "D"}, {"D", "E"},
	{"E", "F"}, {"F", "G"}, {"E", "G"},
}

// RunTable2 renders the full ablation table with Wilcoxon rows.
func (r *Runner) RunTable2() error {
	data, err := r.Table2()
	if err != nil {
		return err
	}
	w := r.Cfg.Out
	fmt.Fprintln(w, "== Table 2: error rates across representations (XGBoost, 3-fold CV grid search) ==")
	fmt.Fprintln(w, "Columns: A=HVG/MPDs B=HVG/All C=VG/MPDs D=VG/All (all UVG), E=UVG F=AMVG G=MVG (VG+HVG, all features)")
	tbl := newTable(w)
	tbl.header("Dataset", "#Cls", "#Train", "#Test", "Dim",
		"1NN-ED", "1NN-DTW", "A", "B", "C", "D", "E", "F", "G")
	for i, run := range data.Datasets {
		best := minOf(append([]float64{data.NNED[i], data.NNDTW[i]}, data.Err[i]...))
		mark := func(v float64) string {
			cell := fmt.Sprintf("%.3f", v)
			if v == best {
				cell += "*"
			}
			return cell
		}
		row := []string{
			run.Family.Name,
			fmt.Sprint(run.Train.Classes()),
			fmt.Sprint(run.Train.Len()),
			fmt.Sprint(run.Test.Len()),
			fmt.Sprint(run.Train.SeriesLength()),
			mark(data.NNED[i]),
			mark(data.NNDTW[i]),
		}
		for _, v := range data.Err[i] {
			row = append(row, mark(v))
		}
		tbl.row(row...)
	}
	tbl.flush()

	fmt.Fprintln(w, "\nWilcoxon signed-rank comparisons (paper's bottom rows; lower error wins):")
	for _, pair := range table2Pairings {
		a, b := data.Column(pair[0]), data.Column(pair[1])
		res, err := stats.Wilcoxon(a, b)
		if err != nil {
			fmt.Fprintf(w, "  %-8s vs %-8s  not testable: %v\n", pair[0], pair[1], err)
			continue
		}
		fmt.Fprintf(w, "  %-8s vs %-8s  %s wins %d / %s wins %d (ties %d), p = %.4g\n",
			pair[0], pair[1], pair[1], res.BWins, pair[0], res.AWins,
			len(a)-res.AWins-res.BWins, res.P)
	}
	fmt.Fprintln(w)
	return nil
}

// scatterPairs renders one paper scatter plot as a win/loss listing (each
// point of the figure is a dataset's pair of error rates).
func (r *Runner) scatterPairs(title string, pairs [][2]string) error {
	data, err := r.Table2()
	if err != nil {
		return err
	}
	w := r.Cfg.Out
	fmt.Fprintf(w, "== %s ==\n", title)
	for _, pair := range pairs {
		a, b := data.Column(pair[0]), data.Column(pair[1])
		fmt.Fprintf(w, "-- %s vs %s (x=%s error, y=%s error; below diagonal = %s wins)\n",
			pair[0], pair[1], pair[0], pair[1], pair[1])
		wins := 0
		for i, run := range data.Datasets {
			marker := " "
			switch {
			case b[i] < a[i]:
				marker = "+" // second column wins
				wins++
			case a[i] < b[i]:
				marker = "-"
			}
			fmt.Fprintf(w, "   %-16s (%.3f, %.3f) %s\n", run.Family.Name, a[i], b[i], marker)
		}
		res, err := stats.Wilcoxon(a, b)
		if err == nil {
			fmt.Fprintf(w, "   %s wins %d/%d datasets, Wilcoxon p = %.4g\n",
				pair[1], wins, len(a), res.P)
		} else {
			fmt.Fprintf(w, "   %s wins %d/%d datasets\n", pair[1], wins, len(a))
		}
	}
	fmt.Fprintln(w)
	return nil
}

// RunFigure3 renders the MPDs-vs-all-features scatter comparisons.
func (r *Runner) RunFigure3() error {
	return r.scatterPairs("Figure 3: MPDs only vs MPDs+other graph features", [][2]string{
		{"A", "B"}, {"C", "D"},
	})
}

// RunFigure4 renders the HVG/VG/UVG scatter comparisons.
func (r *Runner) RunFigure4() error {
	return r.scatterPairs("Figure 4: HVG vs VG vs combined (UVG)", [][2]string{
		{"B", "D"}, {"B", "E"}, {"D", "E"},
	})
}

// RunFigure5 renders the UVG/AMVG/MVG scatter comparisons.
func (r *Runner) RunFigure5() error {
	return r.scatterPairs("Figure 5: UVG vs AMVG vs MVG", [][2]string{
		{"E", "F"}, {"F", "G"}, {"E", "G"},
	})
}

func minOf(values []float64) float64 {
	best := values[0]
	for _, v := range values[1:] {
		if v < best {
			best = v
		}
	}
	return best
}
