package experiments

import (
	"context"
	"fmt"

	"mvg/internal/core"
	"mvg/internal/grids"
	"mvg/internal/ml"
	"mvg/internal/ml/modelsel"
	"mvg/internal/ml/stack"
)

// mvgFeatures extracts the recommended MVG feature matrices for one
// dataset, min-max scaled (required by the SVM family; harmless for
// trees — Section 4.3).
func (c Config) mvgFeatures(run DatasetRun) (trainX, testX [][]float64, err error) {
	e, err := core.NewExtractor(core.Options{})
	if err != nil {
		return nil, nil, err
	}
	trainX, err = e.ExtractDataset(run.Train.Series)
	if err != nil {
		return nil, nil, err
	}
	testX, err = e.ExtractDataset(run.Test.Series)
	if err != nil {
		return nil, nil, err
	}
	var scaler ml.MinMaxScaler
	trainX, err = scaler.FitTransform(trainX)
	if err != nil {
		return nil, nil, err
	}
	testX, err = scaler.Transform(testX)
	if err != nil {
		return nil, nil, err
	}
	return trainX, testX, nil
}

// RunFigure6 compares the three tuned classifier families on MVG features
// with a Nemenyi critical-difference diagram (paper Figure 6).
func (r *Runner) RunFigure6() error {
	runs, err := r.Cfg.LoadSuite()
	if err != nil {
		return err
	}
	names := []string{"MVG (XGBoost)", "MVG (RF)", "MVG (SVM)"}
	var scores [][]float64
	for _, run := range runs {
		trainX, testX, err := r.Cfg.mvgFeatures(run)
		if err != nil {
			return err
		}
		classes := run.Train.Classes()
		row := make([]float64, 3)
		families := [][]ml.Classifier{
			grids.XGB(r.Cfg.gridSize(), r.Cfg.Seed),
			grids.RF(r.Cfg.gridSize(), r.Cfg.Seed),
			grids.SVM(r.Cfg.gridSize(), r.Cfg.Seed),
		}
		for j, candidates := range families {
			model, _, err := modelsel.Best(context.Background(), nil, candidates, trainX,
				run.Train.Labels, classes, 3, run.Family.Imbalanced, r.Cfg.Seed)
			if err != nil {
				return fmt.Errorf("%s family %d: %w", run.Family.Name, j, err)
			}
			proba, err := model.PredictProba(testX)
			if err != nil {
				return err
			}
			row[j] = ml.ErrorRate(ml.Predict(proba), run.Test.Labels)
		}
		scores = append(scores, row)
		fmt.Fprintf(r.Cfg.Out, "  %-16s xgb=%.3f rf=%.3f svm=%.3f\n",
			run.Family.Name, row[0], row[1], row[2])
	}
	fmt.Fprintln(r.Cfg.Out, "== Figure 6: critical difference diagram of classifier families on MVG features ==")
	if err := renderCD(r.Cfg.Out, names, scores, 0.05); err != nil {
		return err
	}
	fmt.Fprintln(r.Cfg.Out)
	return nil
}

// stackFamilies builds the single-family and all-family stacking
// configurations of Section 4.3.
func (c Config) stackFamilies() map[string][]stack.Family {
	size := c.gridSize()
	xgbFam := stack.Family{Name: "xgb", Candidates: grids.XGB(size, c.Seed)}
	rfFam := stack.Family{Name: "rf", Candidates: grids.RF(size, c.Seed)}
	svmFam := stack.Family{Name: "svm", Candidates: grids.SVM(size, c.Seed)}
	return map[string][]stack.Family{
		"XGBoost": {xgbFam},
		"RF":      {rfFam},
		"SVM":     {svmFam},
		"All":     {xgbFam, rfFam, svmFam},
	}
}

// RunFigure7 compares stacking a single classifier family against stacking
// all families (paper Figure 7).
func (r *Runner) RunFigure7() error {
	runs, err := r.Cfg.LoadSuite()
	if err != nil {
		return err
	}
	order := []string{"All", "XGBoost", "SVM", "RF"}
	topK := 5
	if r.Cfg.Quick {
		topK = 2
	}
	var scores [][]float64
	for _, run := range runs {
		trainX, testX, err := r.Cfg.mvgFeatures(run)
		if err != nil {
			return err
		}
		classes := run.Train.Classes()
		famSets := r.Cfg.stackFamilies()
		row := make([]float64, len(order))
		for j, name := range order {
			ens := stack.New(stack.Params{
				TopK:       topK,
				Folds:      3,
				Oversample: run.Family.Imbalanced,
				Seed:       r.Cfg.Seed,
			}, famSets[name]...)
			if err := ens.Fit(trainX, run.Train.Labels, classes); err != nil {
				return fmt.Errorf("%s stack %s: %w", run.Family.Name, name, err)
			}
			proba, err := ens.PredictProba(testX)
			if err != nil {
				return err
			}
			row[j] = ml.ErrorRate(ml.Predict(proba), run.Test.Labels)
		}
		scores = append(scores, row)
		fmt.Fprintf(r.Cfg.Out, "  %-16s all=%.3f xgb=%.3f svm=%.3f rf=%.3f\n",
			run.Family.Name, row[0], row[1], row[2], row[3])
	}
	fmt.Fprintln(r.Cfg.Out, "== Figure 7: critical difference diagram of stacked generalization ==")
	if err := renderCD(r.Cfg.Out, order, scores, 0.05); err != nil {
		return err
	}
	fmt.Fprintln(r.Cfg.Out)
	return nil
}
