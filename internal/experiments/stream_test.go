package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunStream executes the streaming experiment in quick mode: it must
// report an incremental-vs-recompute speedup and verify the determinism
// contract itself (RunStream fails when stream features diverge from
// batch extraction, so a pass here is also a correctness check).
func TestRunStream(t *testing.T) {
	var buf bytes.Buffer
	r := NewRunner(tinyConfig(&buf))
	if err := r.Run("stream"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"incremental push", "full recompute", "true ("} {
		if !strings.Contains(out, want) {
			t.Fatalf("stream report missing %q:\n%s", want, out)
		}
	}
}
