// Package experiments regenerates every table and figure of the paper's
// evaluation section (Section 4) on the synthetic dataset suite, printing
// the same rows and series the paper reports: Table 2 (heuristic
// ablation), Table 3 (accuracy and runtime against five baselines),
// Figure 2 (motif distributions), Figures 3–5 (representation scatter
// comparisons), Figures 6–7 (critical difference diagrams), Figures 8–9
// (baseline scatter and runtime comparisons) and Figure 10 (feature
// importance case study). See EXPERIMENTS.md for the experiment index and
// recorded outcomes.
package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	"mvg/internal/core"
	"mvg/internal/grids"
	"mvg/internal/ml"
	"mvg/internal/ml/knn"
	"mvg/internal/ml/modelsel"
	"mvg/internal/synth"
	"mvg/internal/ucr"
)

// Config controls an experiment run.
type Config struct {
	// Out receives the rendered report.
	Out io.Writer
	// Seed drives dataset generation and every stochastic component.
	Seed int64
	// Quick truncates datasets and shrinks hyper-parameter grids so the
	// full suite completes in minutes; the full mode mirrors the paper's
	// scale on this machine.
	Quick bool
	// Datasets filters the suite by name; empty means all 13 families.
	Datasets []string
	// Repeats averages accuracy over this many repetitions (the paper
	// repeats five times); 0 means 1.
	Repeats int
}

func (c Config) gridSize() grids.Size {
	if c.Quick {
		return grids.Quick
	}
	return grids.Full
}

func (c Config) repeats() int {
	if c.Repeats <= 0 {
		return 1
	}
	return c.Repeats
}

// DatasetRun is one loaded dataset with its generator metadata.
type DatasetRun struct {
	Family synth.Family
	Train  *ucr.Dataset
	Test   *ucr.Dataset
}

// LoadSuite materializes the configured datasets.
func (c Config) LoadSuite() ([]DatasetRun, error) {
	fams := synth.Suite()
	if len(c.Datasets) > 0 {
		var filtered []synth.Family
		for _, name := range c.Datasets {
			f, err := synth.ByName(name)
			if err != nil {
				return nil, err
			}
			filtered = append(filtered, f)
		}
		fams = filtered
	}
	out := make([]DatasetRun, 0, len(fams))
	for _, f := range fams {
		train, test := f.Generate(c.Seed)
		if c.Quick {
			truncate(train, 36, f.Classes, c.Seed)
			truncate(test, 60, f.Classes, c.Seed)
		}
		out = append(out, DatasetRun{Family: f, Train: train, Test: test})
	}
	return out, nil
}

// truncate stratified-downsamples a dataset in place to at most n rows.
func truncate(d *ucr.Dataset, n, classes int, seed int64) {
	if d.Len() <= n {
		return
	}
	rng := rand.New(rand.NewSource(seed ^ int64(d.Len())))
	byClass := make([][]int, classes)
	for i, label := range d.Labels {
		byClass[label] = append(byClass[label], i)
	}
	var keep []int
	for _, idx := range byClass {
		rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		quota := n * len(idx) / d.Len()
		if quota < 1 {
			quota = 1
		}
		if quota > len(idx) {
			quota = len(idx)
		}
		keep = append(keep, idx[:quota]...)
	}
	series := make([][]float64, 0, len(keep))
	labels := make([]int, 0, len(keep))
	for _, i := range keep {
		series = append(series, d.Series[i])
		labels = append(labels, d.Labels[i])
	}
	d.Series = series
	d.Labels = labels
}

// evalRepresentation extracts features under the given options, tunes an
// XGBoost classifier with stratified CV grid search (the paper's heuristic
// validation protocol), and returns the test error rate averaged over the
// configured repeats.
func (c Config) evalRepresentation(run DatasetRun, opts core.Options) (float64, error) {
	e, err := core.NewExtractor(opts)
	if err != nil {
		return 0, err
	}
	trainX, err := e.ExtractDataset(run.Train.Series)
	if err != nil {
		return 0, fmt.Errorf("%s train: %w", run.Family.Name, err)
	}
	testX, err := e.ExtractDataset(run.Test.Series)
	if err != nil {
		return 0, fmt.Errorf("%s test: %w", run.Family.Name, err)
	}
	classes := run.Train.Classes()
	total := 0.0
	for rep := 0; rep < c.repeats(); rep++ {
		seed := c.Seed + int64(rep)*101
		model, _, err := modelsel.Best(context.Background(), nil, grids.XGB(c.gridSize(), seed),
			trainX, run.Train.Labels, classes, 3, run.Family.Imbalanced, seed)
		if err != nil {
			return 0, err
		}
		proba, err := model.PredictProba(testX)
		if err != nil {
			return 0, err
		}
		total += ml.ErrorRate(ml.Predict(proba), run.Test.Labels)
	}
	return total / float64(c.repeats()), nil
}

// evalSeriesClassifier trains any raw-series classifier and returns (test
// error rate, train seconds, test seconds).
func evalSeriesClassifier(clf ml.Classifier, run DatasetRun) (float64, float64, float64, error) {
	t0 := time.Now()
	if err := clf.Fit(run.Train.Series, run.Train.Labels, run.Train.Classes()); err != nil {
		return 0, 0, 0, err
	}
	trainSec := time.Since(t0).Seconds()
	t1 := time.Now()
	proba, err := clf.PredictProba(run.Test.Series)
	if err != nil {
		return 0, 0, 0, err
	}
	testSec := time.Since(t1).Seconds()
	return ml.ErrorRate(ml.Predict(proba), run.Test.Labels), trainSec, testSec, nil
}

// nn1ED and nn1DTW build the paper's distance baselines.
func nn1ED() ml.Classifier { return knn.NewSeriesED() }

// nn1DTW uses an unconstrained warp in full mode and a 10% window in quick
// mode (the common UCR default), trading a little fidelity for speed.
func (c Config) nn1DTW(seriesLen int) ml.Classifier {
	if c.Quick {
		w := seriesLen / 10
		if w < 1 {
			w = 1
		}
		return knn.NewSeriesDTW(w)
	}
	return knn.NewSeriesDTW(-1)
}

// Runner caches expensive experiment computations so that figure
// experiments can reuse table data within one invocation.
type Runner struct {
	Cfg    Config
	table2 *Table2Data
	table3 *Table3Data
}

// NewRunner returns a Runner over the given configuration.
func NewRunner(cfg Config) *Runner { return &Runner{Cfg: cfg} }

// Experiments lists the runnable experiment ids in paper order, followed by
// the engine experiments this reproduction adds ("throughput" extends the
// paper's §4.5 efficiency study to the parallel batch executor).
var Experiments = []string{
	"fig2", "table2", "fig3", "fig4", "fig5", "fig6", "fig7",
	"table3", "fig8", "fig9", "fig10", "throughput", "stream",
}

// Run dispatches one experiment by id and writes its report to cfg.Out.
func (r *Runner) Run(name string) error {
	switch name {
	case "table2":
		return r.RunTable2()
	case "table3":
		return r.RunTable3()
	case "fig2":
		return r.RunFigure2()
	case "fig3":
		return r.RunFigure3()
	case "fig4":
		return r.RunFigure4()
	case "fig5":
		return r.RunFigure5()
	case "fig6":
		return r.RunFigure6()
	case "fig7":
		return r.RunFigure7()
	case "fig8":
		return r.RunFigure8()
	case "fig9":
		return r.RunFigure9()
	case "fig10":
		return r.RunFigure10()
	case "throughput":
		return r.RunThroughput()
	case "stream":
		return r.RunStream()
	case "extras":
		return r.RunExtras()
	case "all":
		for _, id := range Experiments {
			if err := r.Run(id); err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
		}
		return nil
	}
	return fmt.Errorf("experiments: unknown experiment %q (want one of %v, extras, or all)", name, Experiments)
}
