package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"time"

	"mvg/internal/core"
)

// RunThroughput measures the batch feature-extraction engine at several
// worker counts — the scaling companion to the paper's §4.5 complexity
// benchmarks. It extracts a synthetic batch with 1, 2, 4 and GOMAXPROCS
// workers, reports series/sec and the speedup over the single-worker
// baseline, and verifies that every worker count produced the identical
// feature matrix (the engine's determinism guarantee).
func (r *Runner) RunThroughput() error {
	w := r.Cfg.Out
	batch, length := 96, 512
	if !r.Cfg.Quick {
		batch, length = 512, 1024
	}
	rng := rand.New(rand.NewSource(r.Cfg.Seed))
	series := make([][]float64, batch)
	for i := range series {
		t := make([]float64, length)
		for k := range t {
			t[k] = rng.NormFloat64()
		}
		series[i] = t
	}

	e, err := core.NewExtractor(core.Options{})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "== Throughput: batch extraction, %d series × %d points ==\n", batch, length)
	tbl := newTable(w)
	tbl.header("Workers", "Series/sec", "Speedup", "Identical")

	workerCounts := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p > 4 {
		workerCounts = append(workerCounts, p)
	}
	var baseline float64
	var reference [][]float64
	for _, workers := range workerCounts {
		// Warm once so timing excludes scratch growth, then measure enough
		// repetitions to smooth scheduler noise.
		if _, err := e.ExtractDatasetWorkers(series, workers); err != nil {
			return err
		}
		const reps = 3
		start := time.Now()
		var X [][]float64
		for rep := 0; rep < reps; rep++ {
			X, err = e.ExtractDatasetWorkers(series, workers)
			if err != nil {
				return err
			}
		}
		elapsed := time.Since(start).Seconds()
		rate := float64(reps*batch) / elapsed
		if workers == 1 {
			baseline = rate
			reference = X
		}
		identical := matricesEqual(reference, X)
		tbl.row(fmt.Sprintf("%d", workers),
			fmt.Sprintf("%.0f", rate),
			fmt.Sprintf("%.2fx", rate/baseline),
			fmt.Sprintf("%v", identical))
		if !identical {
			return fmt.Errorf("throughput: workers=%d produced a different feature matrix than workers=1", workers)
		}
	}
	tbl.flush()
	fmt.Fprintln(w)
	return nil
}

// matricesEqual reports bit-for-bit equality of two feature matrices
// (math.Float64bits comparison: NaNs with equal payloads match, -0 and +0
// do not — the same strictness as the determinism tests).
func matricesEqual(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if math.Float64bits(a[i][j]) != math.Float64bits(b[i][j]) {
				return false
			}
		}
	}
	return true
}
