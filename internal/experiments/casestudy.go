package experiments

import (
	"fmt"
	"math"
	"sort"

	"mvg/internal/core"
	"mvg/internal/ml"
	"mvg/internal/ml/xgb"
	"mvg/internal/motif"
	"mvg/internal/visibility"
)

// fig2Dataset mirrors the paper's choice of ArrowHead (a 3-class dataset
// whose class motif distributions overlap): SynthECG plays that role here.
const fig2Dataset = "SynthECG"

// RunFigure2 prints per-class boxplot statistics of the size-4 motif
// probability distributions on one dataset's training set (paper
// Figure 2), demonstrating that raw motif distributions overlap between
// classes.
func (r *Runner) RunFigure2() error {
	runs, err := Config{Out: r.Cfg.Out, Seed: r.Cfg.Seed, Quick: r.Cfg.Quick,
		Datasets: []string{fig2Dataset}}.LoadSuite()
	if err != nil {
		return err
	}
	run := runs[0]
	w := r.Cfg.Out
	fmt.Fprintf(w, "== Figure 2: motif probability distributions per class (%s training set, VG) ==\n", run.Family.Name)

	classes := run.Train.Classes()
	// probs[class][motifIndex] = per-series probabilities.
	probs := make([][][]float64, classes)
	for c := range probs {
		probs[c] = make([][]float64, len(motif.Names))
	}
	for i, series := range run.Train.Series {
		vg, err := visibility.VG(series)
		if err != nil {
			return err
		}
		p := motif.Count(vg).Probabilities()
		class := run.Train.Labels[i]
		for mi, v := range p {
			probs[class][mi] = append(probs[class][mi], v)
		}
	}
	sections := []struct {
		title   string
		indices []int
	}{
		{"Connected 4-motifs (M41..M46)", motif.Groups[3]},
		{"Disconnected 4-motifs (M47..M411)", motif.Groups[4]},
	}
	for _, sec := range sections {
		fmt.Fprintf(w, "-- %s\n", sec.title)
		tbl := newTable(w)
		tbl.header("Motif", "Class", "Min", "Q1", "Median", "Q3", "Max")
		for _, mi := range sec.indices {
			for c := 0; c < classes; c++ {
				q := quartiles(probs[c][mi])
				tbl.row(motif.Names[mi], fmt.Sprint(c+1),
					fmt.Sprintf("%.4f", q[0]), fmt.Sprintf("%.4f", q[1]),
					fmt.Sprintf("%.4f", q[2]), fmt.Sprintf("%.4f", q[3]),
					fmt.Sprintf("%.4f", q[4]))
			}
		}
		tbl.flush()
	}
	fmt.Fprintln(w, "Note: heavy overlap between class distributions is expected — the paper's")
	fmt.Fprintln(w, "point is that motif features alone are weak and need the other graph features.")
	fmt.Fprintln(w)
	return nil
}

// quartiles returns {min, q1, median, q3, max} with linear interpolation.
func quartiles(values []float64) [5]float64 {
	if len(values) == 0 {
		return [5]float64{}
	}
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	q := func(p float64) float64 {
		pos := p * float64(len(s)-1)
		lo := int(math.Floor(pos))
		hi := int(math.Ceil(pos))
		if lo == hi {
			return s[lo]
		}
		frac := pos - float64(lo)
		return s[lo]*(1-frac) + s[hi]*frac
	}
	return [5]float64{s[0], q(0.25), q(0.5), q(0.75), s[len(s)-1]}
}

// fig10Dataset plays the role of FordA in the paper's case study.
const fig10Dataset = "EngineNoise"

// RunFigure10 trains an XGBoost model on MVG features of the case-study
// dataset and reports the ten most important features with per-class
// summary statistics (the scatter-matrix diagonal of paper Figure 10).
func (r *Runner) RunFigure10() error {
	runs, err := Config{Out: r.Cfg.Out, Seed: r.Cfg.Seed, Quick: r.Cfg.Quick,
		Datasets: []string{fig10Dataset}}.LoadSuite()
	if err != nil {
		return err
	}
	run := runs[0]
	w := r.Cfg.Out
	fmt.Fprintf(w, "== Figure 10: top MVG features for %s (XGBoost gain importance) ==\n", run.Family.Name)

	e, err := core.NewExtractor(core.Options{})
	if err != nil {
		return err
	}
	trainX, err := e.ExtractDataset(run.Train.Series)
	if err != nil {
		return err
	}
	testX, err := e.ExtractDataset(run.Test.Series)
	if err != nil {
		return err
	}
	names := e.FeatureNames(run.Train.SeriesLength())
	classes := run.Train.Classes()

	model := xgb.New(xgb.Params{NumRounds: 60, MaxDepth: 6, LearningRate: 0.3,
		Subsample: 0.5, ColsampleByTree: 0.5, Seed: r.Cfg.Seed})
	if err := model.Fit(trainX, run.Train.Labels, classes); err != nil {
		return err
	}
	proba, err := model.PredictProba(testX)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Test error rate: %.3f\n", ml.ErrorRate(ml.Predict(proba), run.Test.Labels))

	imp := model.FeatureImportance()
	type fw struct {
		idx int
		w   float64
	}
	ranked := make([]fw, len(imp))
	for i, v := range imp {
		ranked[i] = fw{i, v}
	}
	sort.Slice(ranked, func(a, b int) bool { return ranked[a].w > ranked[b].w })
	top := ranked
	if len(top) > 10 {
		top = top[:10]
	}
	tbl := newTable(w)
	header := []string{"Feature", "Gain"}
	for c := 0; c < classes; c++ {
		header = append(header, fmt.Sprintf("Cls%d μ±σ", c+1))
	}
	tbl.header(header...)
	for _, f := range top {
		row := []string{names[f.idx], fmt.Sprintf("%.4f", f.w)}
		for c := 0; c < classes; c++ {
			var vals []float64
			for i, label := range run.Test.Labels {
				if label == c {
					vals = append(vals, testX[i][f.idx])
				}
			}
			mu, sigma := meanStd(vals)
			row = append(row, fmt.Sprintf("%.3f±%.3f", mu, sigma))
		}
		tbl.row(row...)
	}
	tbl.flush()
	fmt.Fprintln(w, "Separated class means on a top feature indicate a visually")
	fmt.Fprintln(w, "comprehensible classification cue, as in the paper's scatter matrix.")
	fmt.Fprintln(w)
	return nil
}

func meanStd(values []float64) (float64, float64) {
	if len(values) == 0 {
		return 0, 0
	}
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	mu := sum / float64(len(values))
	ss := 0.0
	for _, v := range values {
		ss += (v - mu) * (v - mu)
	}
	return mu, math.Sqrt(ss / float64(len(values)))
}
