package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"mvg/internal/core"
	"mvg/internal/graph"
	"mvg/internal/visibility"
)

// RunStream measures the streaming sliding-window engine against per-slide
// full recomputation — the workload the batch tables cannot see: samples
// arriving one at a time with features due every hop. It compares the push
// throughput of incremental graph maintenance (internal/visibility
// .Incremental, the engine behind mvg.Stream) against rebuilding the
// window's graphs on every slide (hop=1, the worst case), reports feature
// throughput at a serving hop, and verifies the determinism contract —
// snapshot-based features bit-identical to batch extraction — on the fly.
func (r *Runner) RunStream() error {
	w := r.Cfg.Out
	windowLen, total := 512, 8192
	if !r.Cfg.Quick {
		windowLen, total = 1024, 131072
	}
	// The streaming configuration: uniscale, both graphs, preprocessing
	// off so incremental maintenance is bit-exact (docs/streaming.md).
	opts := core.Options{Scales: core.Uniscale, NoDetrend: true, NoZNormalize: true}
	extractor, err := core.NewExtractor(opts)
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(r.Cfg.Seed))
	samples := make([]float64, total)
	level := 0.0
	for i := range samples {
		level += rng.NormFloat64()
		samples[i] = level
	}

	fmt.Fprintf(w, "== Stream: sliding-window graph maintenance, window %d, %d samples ==\n", windowLen, total)
	tbl := newTable(w)
	tbl.header("Mode", "Hop", "Samples/sec", "Speedup", "Identical")

	// Incremental maintenance at hop=1: every push keeps both window
	// graphs current.
	inc, err := visibility.NewIncremental(windowLen, true, true)
	if err != nil {
		return err
	}
	start := time.Now()
	for _, x := range samples {
		if err := inc.Push(x); err != nil {
			return err
		}
	}
	incRate := float64(total) / time.Since(start).Seconds()

	// Full recompute at hop=1: materialize the window and rerun the batch
	// builders per slide, with every buffer reused.
	ring := make([]float64, windowLen)
	window := make([]float64, windowLen)
	var builder visibility.Builder
	var vg, hvg graph.Graph
	start = time.Now()
	rebuilt := 0
	for i, x := range samples {
		ring[i%windowLen] = x
		if i+1 < windowLen {
			continue
		}
		for k := 0; k < windowLen; k++ {
			window[k] = ring[(i+1+k)%windowLen]
		}
		edges, err := builder.VGEdges(window)
		if err != nil {
			return err
		}
		vg.BuildUnchecked(windowLen, edges)
		edges, err = builder.HVGEdges(window)
		if err != nil {
			return err
		}
		hvg.BuildUnchecked(windowLen, edges)
		rebuilt++
		if time.Since(start) > 5*time.Second {
			break // rate is stable long before the stream drains
		}
	}
	recRate := float64(rebuilt) / time.Since(start).Seconds()

	// Determinism check at a serving hop: features from the incremental
	// snapshots must be bit-identical to batch extraction of the window.
	hop := windowLen / 8
	inc2, err := visibility.NewIncremental(windowLen, true, true)
	if err != nil {
		return err
	}
	sc := core.NewScratch()
	var vgSnap, hvgSnap graph.Graph
	identical := true
	hops := 0
	start = time.Now()
	for i, x := range samples {
		if err := inc2.Push(x); err != nil {
			return err
		}
		if i+1 < windowLen || (i+1-windowLen)%hop != 0 {
			continue
		}
		hops++
		window = inc2.WindowInto(window)
		inc2.SnapshotVG(&vgSnap)
		inc2.SnapshotHVG(&hvgSnap)
		got, err := extractor.ExtractWithGraphs(sc, window, &vgSnap, &hvgSnap)
		if err != nil {
			return err
		}
		want, err := extractor.ExtractWith(nil, window)
		if err != nil {
			return err
		}
		if !matricesEqual([][]float64{got}, [][]float64{want}) {
			identical = false
		}
	}
	hopRate := float64(total) / time.Since(start).Seconds()

	tbl.row("incremental push", "1", fmt.Sprintf("%.0f", incRate), fmt.Sprintf("%.1fx", incRate/recRate), "—")
	tbl.row("full recompute", "1", fmt.Sprintf("%.0f", recRate), "1.0x", "—")
	tbl.row("incremental+features", fmt.Sprint(hop), fmt.Sprintf("%.0f", hopRate), "", fmt.Sprintf("%v (%d hops)", identical, hops))
	tbl.flush()
	fmt.Fprintln(w)
	if !identical {
		return fmt.Errorf("stream: features diverged from batch extraction")
	}
	return nil
}
