package proxy

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mvg/api/mvgpb"
	"mvg/internal/grpcx"
	"mvg/internal/serve/core"
	"mvg/internal/serve/grpcapi"
	"mvg/internal/serve/httpapi"
	"mvg/internal/serve/servetest"
)

// replica is one in-process mvgserve: an engine with the shared "demo"
// model behind both codecs, each on its own loopback listener, with a
// middleware counting the unary predicts it actually served — the
// accounting that proves failover neither duplicates nor loses work.
type replica struct {
	name       string
	engine     *core.Engine
	httpSrv    *http.Server
	grpcSrv    *http.Server
	httpAddr   string
	grpcAddr   string
	predicts   atomic.Int64
	lastTenant atomic.Value // string: X-Mvg-Tenant on the last counted predict
}

func (rep *replica) backend() Backend {
	return Backend{Name: rep.name, HTTPAddr: rep.httpAddr, GRPCAddr: rep.grpcAddr}
}

// count tallies unary predicts on either transport (the bidi stream and
// health/listing traffic are deliberately excluded) and records the
// tenant header the proxy forwarded.
func (rep *replica) count(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		grpcPredict := strings.HasPrefix(r.URL.Path, "/"+mvgpb.MvgService+"/Predict")
		httpPredict := strings.HasSuffix(r.URL.Path, "/predict") || strings.HasSuffix(r.URL.Path, "/predict_proba")
		if grpcPredict || httpPredict {
			rep.predicts.Add(1)
			rep.lastTenant.Store(r.Header.Get(core.TenantHeader))
		}
		next.ServeHTTP(w, r)
	})
}

// kill abruptly closes both listeners and every live connection — the
// shard is gone mid-fleet, exactly what the failover path must absorb.
func (rep *replica) kill() {
	rep.httpSrv.Close()
	rep.grpcSrv.Close()
}

func startReplica(t *testing.T, name string) *replica {
	t.Helper()
	model := servetest.Model(t)
	path := filepath.Join(t.TempDir(), "demo"+core.ModelExt)
	if err := model.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	reg := core.NewRegistry()
	reg.Register("demo", model, path)
	engine, err := core.NewEngine(core.Config{Registry: reg, Window: time.Millisecond, MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	rep := &replica{name: name, engine: engine}

	httpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rep.httpAddr = httpLn.Addr().String()
	rep.httpSrv = &http.Server{Handler: rep.count(httpapi.NewServer(engine))}
	go rep.httpSrv.Serve(httpLn)

	grpcLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rep.grpcAddr = grpcLn.Addr().String()
	rep.grpcSrv = grpcx.NewH2CServer("", rep.count(grpcapi.NewServer(engine)))
	go rep.grpcSrv.Serve(grpcLn)

	t.Cleanup(func() {
		rep.kill()
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		rep.engine.Shutdown(ctx)
	})
	return rep
}

// startProxy brings up a Proxy over the replicas on an h2c listener so
// both transports reach it on one port. The health interval is parked
// at an hour: state changes in the tests come from the synchronous poll
// New performs and from the passive MarkDown path under test.
func startProxy(t *testing.T, backends ...Backend) (*Proxy, string) {
	t.Helper()
	p, err := New(Config{Backends: backends, HealthInterval: time.Hour, RetryAfter: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := grpcx.NewH2CServer("", p)
	go srv.Serve(ln)
	t.Cleanup(func() {
		srv.Close()
		p.Close()
	})
	return p, ln.Addr().String()
}

func httpPredict(t *testing.T, addr, query string, series []float64) (int, map[string]any) {
	t.Helper()
	raw, _ := json.Marshal(map[string]any{"series": series})
	resp, err := http.Post("http://"+addr+"/v1/models/demo/predict"+query, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]any{}
	json.Unmarshal(body, &out)
	if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("Retry-After") == "" {
		t.Fatalf("429 without Retry-After hint: %s", body)
	}
	return resp.StatusCode, out
}

// TestProxyKillShardFailover is the fleet resilience contract end to
// end: requests for one model land on one replica over both transports;
// killing that replica mid-fleet costs exactly one recorded retry and
// zero failed requests; killing the whole fleet sheds with the shared
// status row (429 / RESOURCE_EXHAUSTED + Retry-After); and the
// per-replica predict counters prove no admitted request ran twice.
func TestProxyKillShardFailover(t *testing.T) {
	r1 := startReplica(t, "r1")
	r2 := startReplica(t, "r2")
	p, addr := startProxy(t, r1.backend(), r2.backend())
	series := servetest.Inputs(1, 42)[0]

	// Both transports for "demo" must land on the ring owner.
	code, out := httpPredict(t, addr, "", series)
	if code != http.StatusOK {
		t.Fatalf("predict via proxy = %d %v", code, out)
	}
	wantClass, ok := out["class"].(float64)
	if !ok {
		t.Fatalf("predict response missing class: %v", out)
	}
	primary, survivor := r1, r2
	if r2.predicts.Load() == 1 {
		primary, survivor = r2, r1
	}
	if primary.predicts.Load() != 1 || survivor.predicts.Load() != 0 {
		t.Fatalf("predict counts = %d/%d, want 1/0", primary.predicts.Load(), survivor.predicts.Load())
	}

	cl := grpcx.Dial(addr)
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var gresp mvgpb.PredictResponse
	if err := cl.Invoke(ctx, mvgpb.MvgMethodPredict, nil, &mvgpb.PredictRequest{Model: "demo", Series: series}, &gresp); err != nil {
		t.Fatalf("grpc predict via proxy: %v", err)
	}
	if float64(gresp.Class) != wantClass {
		t.Fatalf("grpc class %d != http class %v", gresp.Class, wantClass)
	}
	if primary.predicts.Load() != 2 {
		t.Fatal("grpc predict did not route to the same replica as http")
	}

	// Kill the primary. The next predict hits the dead shard, fails over
	// to the survivor, and still succeeds — one retry, no duplicate work.
	primary.kill()
	code, out = httpPredict(t, addr, "", series)
	if code != http.StatusOK {
		t.Fatalf("predict after shard kill = %d %v", code, out)
	}
	if got := out["class"].(float64); got != wantClass {
		t.Fatalf("failover predict class = %v, want %v", got, wantClass)
	}
	if n := p.Metrics().RetriesTotal(); n != 1 {
		t.Fatalf("retries_total = %d, want 1", n)
	}
	if primary.predicts.Load() != 2 || survivor.predicts.Load() != 1 {
		t.Fatalf("predict counts after failover = %d/%d, want 2/1 (no duplicated work)",
			primary.predicts.Load(), survivor.predicts.Load())
	}

	// The passive MarkDown means the next call skips the corpse outright:
	// no second retry is spent rediscovering a known-dead shard.
	if err := cl.Invoke(ctx, mvgpb.MvgMethodPredict, nil, &mvgpb.PredictRequest{Model: "demo", Series: series}, &gresp); err != nil {
		t.Fatalf("grpc predict after shard kill: %v", err)
	}
	if n := p.Metrics().RetriesTotal(); n != 1 {
		t.Fatalf("retries_total after marked-down routing = %d, want still 1", n)
	}
	if survivor.predicts.Load() != 2 {
		t.Fatalf("survivor predicts = %d, want 2", survivor.predicts.Load())
	}

	// Kill the fleet: both transports shed with the shared status row.
	survivor.kill()
	code, out = httpPredict(t, addr, "", series)
	if code != http.StatusTooManyRequests {
		t.Fatalf("predict with no fleet = %d %v, want 429", code, out)
	}
	err := cl.Invoke(ctx, mvgpb.MvgMethodPredict, nil, &mvgpb.PredictRequest{Model: "demo", Series: series}, &gresp)
	var st *grpcx.Status
	if !errors.As(err, &st) || st.Code != grpcx.ResourceExhausted {
		t.Fatalf("grpc predict with no fleet = %v, want RESOURCE_EXHAUSTED", err)
	}
	if n := p.Metrics().ShedTotal(); n != 2 {
		t.Fatalf("shed_total = %d, want 2", n)
	}

	// The proxy's own health and metrics reflect the fleet state.
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("proxy /healthz with dead fleet = %d, want 503", resp.StatusCode)
	}
	mresp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	metrics, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{
		"mvgproxy_retries_total 1",
		"mvgproxy_shed_total 2",
		fmt.Sprintf("mvgproxy_backend_up{backend=%q} 0", r1.name),
		fmt.Sprintf("mvgproxy_backend_up{backend=%q} 0", r2.name),
	} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("proxy metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestProxyTenantForwarding pins the accounting contract: the proxy
// terminates the client connection, so it must forward the resolved
// tenant key — explicit tenant if the client named one (query parameter
// or gRPC metadata), client host otherwise — or the backends would
// account the whole fleet's streams to the proxy's own address.
func TestProxyTenantForwarding(t *testing.T) {
	rep := startReplica(t, "solo")
	_, addr := startProxy(t, rep.backend())
	series := servetest.Inputs(1, 7)[0]

	if code, out := httpPredict(t, addr, "", series); code != http.StatusOK {
		t.Fatalf("predict = %d %v", code, out)
	}
	if got := rep.lastTenant.Load(); got != "127.0.0.1" {
		t.Fatalf("implicit tenant forwarded as %q, want client host 127.0.0.1", got)
	}

	if code, out := httpPredict(t, addr, "?"+core.TenantParam+"=acme", series); code != http.StatusOK {
		t.Fatalf("predict = %d %v", code, out)
	}
	if got := rep.lastTenant.Load(); got != "acme" {
		t.Fatalf("query tenant forwarded as %q, want acme", got)
	}

	cl := grpcx.Dial(addr)
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var gresp mvgpb.PredictResponse
	md := map[string]string{core.TenantMetadataKey: "zeta"}
	if err := cl.Invoke(ctx, mvgpb.MvgMethodPredict, md, &mvgpb.PredictRequest{Model: "demo", Series: series}, &gresp); err != nil {
		t.Fatal(err)
	}
	if got := rep.lastTenant.Load(); got != "zeta" {
		t.Fatalf("grpc metadata tenant forwarded as %q, want zeta", got)
	}
}

// TestProxyStreamForwarding drives the same sliding-window dialogue
// through the proxy over both transports and requires identical
// predictions — the stream path must relay frames (and the gRPC status
// trailer) without reordering, dropping, or buffering them apart.
func TestProxyStreamForwarding(t *testing.T) {
	rep := startReplica(t, "solo")
	_, addr := startProxy(t, rep.backend())

	inputs := servetest.Inputs(2, 9)
	samples := append(append([]float64{}, inputs[0]...), inputs[1]...)
	const hop = 32
	wantPredictions := (len(samples)-servetest.SeriesLen)/hop + 1

	// NDJSON through the proxy: all samples up front, one line each.
	var body strings.Builder
	for _, x := range samples {
		fmt.Fprintf(&body, "%g\n", x)
	}
	resp, err := http.Post("http://"+addr+"/v1/models/demo/stream?hop=32", "application/x-ndjson", strings.NewReader(body.String()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream via proxy = %d", resp.StatusCode)
	}
	type event struct {
		Sample      int  `json:"sample"`
		Class       *int `json:"class"`
		Done        bool `json:"done"`
		Predictions int  `json:"predictions"`
	}
	var httpEvents []event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		httpEvents = append(httpEvents, ev)
	}
	if len(httpEvents) == 0 || !httpEvents[len(httpEvents)-1].Done {
		t.Fatalf("NDJSON dialogue did not finish with a done line: %+v", httpEvents)
	}
	if got := httpEvents[len(httpEvents)-1].Predictions; got != wantPredictions {
		t.Fatalf("NDJSON predictions = %d, want %d", got, wantPredictions)
	}

	// The same dialogue as a gRPC bidi stream through the proxy.
	cl := grpcx.Dial(addr)
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	stream, err := cl.Stream(ctx, mvgpb.MvgMethodStreamPredict, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := stream.Send(&mvgpb.StreamRequest{Open: &mvgpb.StreamOpen{Model: "demo", Hop: hop}}); err != nil {
		t.Fatal(err)
	}
	if err := stream.Send(&mvgpb.StreamRequest{Samples: samples}); err != nil {
		t.Fatal(err)
	}
	if err := stream.CloseSend(); err != nil {
		t.Fatal(err)
	}
	var grpcPreds []*mvgpb.StreamPrediction
	var done *mvgpb.StreamDone
	for {
		var sr mvgpb.StreamResponse
		err := stream.Recv(&sr)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatalf("grpc stream via proxy: %v", err)
		}
		if sr.Prediction != nil {
			grpcPreds = append(grpcPreds, sr.Prediction)
		}
		if sr.Done != nil {
			done = sr.Done
		}
	}
	if done == nil || int(done.Predictions) != wantPredictions {
		t.Fatalf("grpc done = %+v, want %d predictions", done, wantPredictions)
	}

	// Cross-transport parity through the proxy, prediction by prediction.
	var httpPreds []event
	for _, ev := range httpEvents {
		if ev.Class != nil {
			httpPreds = append(httpPreds, ev)
		}
	}
	if len(httpPreds) != len(grpcPreds) {
		t.Fatalf("prediction counts differ: http %d, grpc %d", len(httpPreds), len(grpcPreds))
	}
	for i := range httpPreds {
		if int64(httpPreds[i].Sample) != grpcPreds[i].Sample || int32(*httpPreds[i].Class) != grpcPreds[i].Class {
			t.Fatalf("prediction %d differs across transports: http %+v, grpc %+v", i, httpPreds[i], grpcPreds[i])
		}
	}
}

// TestProxyShedsUnknownTransportConsistently pins the shed surface when
// the fleet never came up at all: New marks backends down after the
// failed initial poll, and both transports shed immediately.
func TestProxyShedsWhenFleetNeverUp(t *testing.T) {
	// Grab a loopback port that is closed by the time the proxy polls it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()

	p, addr := startProxy(t, Backend{Name: "ghost", HTTPAddr: deadAddr, GRPCAddr: deadAddr})
	code, _ := httpPredict(t, addr, "", servetest.Inputs(1, 3)[0])
	if code != http.StatusTooManyRequests {
		t.Fatalf("predict against dead fleet = %d, want 429", code)
	}
	if p.Metrics().ShedTotal() != 1 {
		t.Fatalf("shed_total = %d, want 1", p.Metrics().ShedTotal())
	}
}
