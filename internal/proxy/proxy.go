package proxy

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	"mvg/api/mvgpb"
	"mvg/internal/grpcx"
	"mvg/internal/serve/core"
)

// maxBufferedBody bounds the request body the proxy will buffer for a
// retryable forward — aligned with the backends' own 64 MiB body cap, so
// anything the proxy refuses the backend would have refused too.
const maxBufferedBody = 64 << 20

// Backend is one mvgserve replica: its HTTP API address and, when the
// replica also serves gRPC, that listener's address. Name labels the
// backend in metrics and on the ring; it defaults to HTTPAddr.
type Backend struct {
	Name     string
	HTTPAddr string
	GRPCAddr string
}

// Config configures a Proxy.
type Config struct {
	// Backends is the replica set. At least one is required; names must
	// be distinct.
	Backends []Backend
	// HealthInterval is the /healthz poll period (default 2s).
	HealthInterval time.Duration
	// RetryAfter is the hint attached to shed responses (default 1s).
	RetryAfter time.Duration
	// Logger receives forward failures and health transitions; nil
	// disables logging.
	Logger *log.Logger
}

// Proxy is the fleet front door. It implements http.Handler and accepts
// both the JSON API and gRPC on one listener (serve it from an h2c-capable
// server, grpcx.NewH2CServer); requests route to backends by
// consistent-hashing the model name, so every transport's traffic for a
// model shares one replica's coalescer.
type Proxy struct {
	cfg      Config
	ring     *ring
	backends map[string]Backend
	health   *health
	metrics  *Metrics

	// httpClient speaks HTTP/1 to the replicas' JSON listeners;
	// grpcClient speaks h2c to their gRPC listeners.
	httpClient *http.Client
	grpcClient *http.Client
}

// New validates cfg, builds the ring, runs one synchronous health poll
// (so a freshly started proxy routes correctly before the first tick)
// and starts the background checker. Close releases it.
func New(cfg Config) (*Proxy, error) {
	if len(cfg.Backends) == 0 {
		return nil, errors.New("proxy: at least one backend is required")
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = 2 * time.Second
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	backends := make(map[string]Backend, len(cfg.Backends))
	names := make([]string, 0, len(cfg.Backends))
	addrs := make(map[string]string, len(cfg.Backends))
	for i := range cfg.Backends {
		b := cfg.Backends[i]
		if b.HTTPAddr == "" {
			return nil, fmt.Errorf("proxy: backend %d has no HTTP address", i)
		}
		if b.Name == "" {
			b.Name = b.HTTPAddr
		}
		if _, dup := backends[b.Name]; dup {
			return nil, fmt.Errorf("proxy: duplicate backend name %q", b.Name)
		}
		backends[b.Name] = b
		names = append(names, b.Name)
		addrs[b.Name] = b.HTTPAddr
	}
	m := newMetrics()
	p := &Proxy{
		cfg:        cfg,
		ring:       newRing(names),
		backends:   backends,
		health:     newHealth(addrs, cfg.HealthInterval, m),
		metrics:    m,
		httpClient: &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64, IdleConnTimeout: 90 * time.Second}},
		grpcClient: &http.Client{Transport: grpcx.NewH2CTransport()},
	}
	p.health.CheckNow()
	go p.health.run()
	return p, nil
}

// Close stops the health checker and releases pooled backend
// connections.
func (p *Proxy) Close() {
	p.health.close()
	p.httpClient.CloseIdleConnections()
	p.grpcClient.CloseIdleConnections()
}

// Metrics returns the proxy's counter set.
func (p *Proxy) Metrics() *Metrics { return p.metrics }

// CheckNow forces one synchronous health poll of every backend.
func (p *Proxy) CheckNow() { p.health.CheckNow() }

func (p *Proxy) logf(format string, args ...any) {
	if p.cfg.Logger != nil {
		p.cfg.Logger.Printf(format, args...)
	}
}

// candidates returns the healthy backends for key, in ring preference
// order.
func (p *Proxy) candidates(key string) []Backend {
	order := p.ring.Order(key)
	out := make([]Backend, 0, len(order))
	for _, name := range order {
		if p.health.Healthy(name) {
			out = append(out, p.backends[name])
		}
	}
	return out
}

// statusRecorder captures the client-visible status for the request
// counter.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.code = code
	sr.ResponseWriter.WriteHeader(code)
}

// Unwrap lets http.ResponseController reach the underlying writer's
// Flush through the wrapper — streamed forwards flush per chunk.
func (sr *statusRecorder) Unwrap() http.ResponseWriter { return sr.ResponseWriter }

// ServeHTTP implements http.Handler: gRPC requests (HTTP/2 with a grpc
// content type) take the frame-forwarding path, everything else the JSON
// path; /healthz and /metrics are answered by the proxy itself.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	sr := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
	defer func() { p.metrics.Request(sr.code) }()

	if r.ProtoMajor == 2 && strings.HasPrefix(r.Header.Get("Content-Type"), "application/grpc") {
		p.serveGRPC(sr, r)
		return
	}
	switch r.URL.Path {
	case "/healthz":
		p.serveHealthz(sr)
	case "/metrics":
		sr.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		sr.WriteHeader(http.StatusOK)
		p.metrics.WritePrometheus(sr)
	default:
		p.serveJSON(sr, r)
	}
}

// serveHealthz reports the proxy ready while at least one backend is;
// with the whole fleet down it answers 503 so the proxy's own health
// check fails alongside.
func (p *Proxy) serveHealthz(w http.ResponseWriter) {
	snap := p.health.Snapshot()
	ready := false
	for _, up := range snap {
		ready = ready || up
	}
	code := http.StatusOK
	status := "ok"
	if !ready {
		code = http.StatusServiceUnavailable
		status = "unavailable"
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]any{
		"status": status, "ready": ready, "backends": snap,
	})
}

// ---- JSON path ----

// jsonRouteKey extracts the ring key and idempotency class from a JSON
// API path. Predicts are idempotent (safe to retry on another replica);
// streams are forwarded once without retry; everything else — reload,
// the model listing — is forwarded once to the key's owner.
func jsonRouteKey(path string) (key string, retryable, stream bool) {
	rest, ok := strings.CutPrefix(path, "/v1/models/")
	if !ok {
		return path, false, false
	}
	name, op, ok := strings.Cut(rest, "/")
	if !ok {
		return path, false, false // the bare /v1/models listing
	}
	switch op {
	case "predict", "predict_proba":
		return name, true, false
	case "stream":
		return name, false, true
	default:
		return name, false, false
	}
}

// shedJSON rejects a request no healthy backend can serve: 429 with a
// Retry-After hint, mirroring the backends' own admission-control
// surface so clients need one retry policy, not two.
func (p *Proxy) shedJSON(w http.ResponseWriter, reason string) {
	p.metrics.Shed()
	w.Header().Set("Retry-After", retryAfterSeconds(p.cfg.RetryAfter))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusTooManyRequests)
	json.NewEncoder(w).Encode(map[string]string{"error": reason})
}

func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

func (p *Proxy) serveJSON(w http.ResponseWriter, r *http.Request) {
	key, retryable, stream := jsonRouteKey(r.URL.Path)
	cands := p.candidates(key)
	if len(cands) == 0 {
		p.shedJSON(w, "no healthy backend")
		return
	}

	if stream {
		// Streams are stateful dialogues: forwarded to the key's owner,
		// flushed per chunk, never replayed.
		p.forwardStream(w, r, cands[0].HTTPAddr, r.Body, p.httpClient)
		return
	}

	var body []byte
	if r.Body != nil {
		var err error
		body, err = io.ReadAll(io.LimitReader(r.Body, maxBufferedBody+1))
		if err != nil {
			http.Error(w, "reading request body", http.StatusBadRequest)
			return
		}
		if len(body) > maxBufferedBody {
			http.Error(w, "request body too large", http.StatusRequestEntityTooLarge)
			return
		}
	}

	attempts := 1
	if retryable {
		attempts = 2
	}
	for i := 0; i < attempts && i < len(cands); i++ {
		b := cands[i]
		resp, err := p.roundTrip(r, b.HTTPAddr, bytes.NewReader(body), p.httpClient)
		if err != nil {
			// Connection-level failure: the shard is gone. Mark it down so
			// routing recovers before the next poll, and fail over.
			p.health.MarkDown(b.Name)
			p.logf("backend %s: %v", b.Name, err)
			if retryable && i+1 < len(cands) {
				p.metrics.Retry()
				continue
			}
			p.shedJSON(w, "backend unavailable")
			return
		}
		// 503 is the backends' "cannot serve right now" row — draining or
		// past its own deadline. Idempotent work moves on.
		if retryable && resp.StatusCode == http.StatusServiceUnavailable && i+1 < len(cands) {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			p.health.MarkDown(b.Name)
			p.metrics.Retry()
			continue
		}
		defer resp.Body.Close()
		copyHeader(w.Header(), resp.Header)
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
		return
	}
	p.shedJSON(w, "no healthy backend")
}

// ---- gRPC path ----

// grpcModelKey decodes the ring key out of the first request frame,
// per method. ListModels and Health carry no model; they route by
// method path, which spreads them but keeps them deterministic.
func grpcModelKey(path string, frame []byte) (string, error) {
	switch path {
	case mvgpb.MvgMethodPredict, mvgpb.MvgMethodPredictProba:
		var req mvgpb.PredictRequest
		if err := req.Unmarshal(frame); err != nil {
			return "", err
		}
		return req.Model, nil
	case mvgpb.MvgMethodPredictBatch:
		var req mvgpb.PredictBatchRequest
		if err := req.Unmarshal(frame); err != nil {
			return "", err
		}
		return req.Model, nil
	case mvgpb.MvgMethodStreamPredict:
		var req mvgpb.StreamRequest
		if err := req.Unmarshal(frame); err != nil {
			return "", err
		}
		if req.Open != nil {
			return req.Open.Model, nil
		}
		return "", nil
	}
	return path, nil
}

// shedGRPC rejects a gRPC call with RESOURCE_EXHAUSTED as a
// trailers-only response (the status travels in the HTTP headers, no
// body) — the same row of the status table the backends shed with.
func (p *Proxy) shedGRPC(w http.ResponseWriter, reason string) {
	p.metrics.Shed()
	h := w.Header()
	h.Set("Content-Type", "application/grpc+proto")
	h.Set("Retry-After", retryAfterSeconds(p.cfg.RetryAfter))
	h.Set("Grpc-Status", strconv.Itoa(int(grpcx.ResourceExhausted)))
	h.Set("Grpc-Message", reason)
	w.WriteHeader(http.StatusOK)
}

func grpcStatusErr(w http.ResponseWriter, code grpcx.Code, reason string) {
	h := w.Header()
	h.Set("Content-Type", "application/grpc+proto")
	h.Set("Grpc-Status", strconv.Itoa(int(code)))
	h.Set("Grpc-Message", reason)
	w.WriteHeader(http.StatusOK)
}

func (p *Proxy) serveGRPC(w http.ResponseWriter, r *http.Request) {
	if mvgpb.MvgStreamingMethods[r.URL.Path] {
		p.serveGRPCStream(w, r)
		return
	}
	// Peek the first frame: it names the model the call is for, which is
	// the ring key. The frame is re-encoded in front of the remaining
	// body for forwarding.
	frame, err := grpcx.ReadFrame(r.Body, grpcx.DefaultMaxMessageSize)
	if err != nil && !errors.Is(err, io.EOF) {
		grpcStatusErr(w, grpcx.Internal, fmt.Sprintf("reading request frame: %v", err))
		return
	}
	key, kerr := grpcModelKey(r.URL.Path, frame)
	if kerr != nil {
		grpcStatusErr(w, grpcx.InvalidArgument, fmt.Sprintf("decoding request: %v", kerr))
		return
	}

	cands := p.candidates(key)
	withGRPC := cands[:0:0]
	for _, b := range cands {
		if b.GRPCAddr != "" {
			withGRPC = append(withGRPC, b)
		}
	}
	if len(withGRPC) == 0 {
		p.shedGRPC(w, "no healthy backend")
		return
	}

	var framed bytes.Buffer
	if err == nil {
		grpcx.WriteFrame(&framed, frame)
	}

	// Unary: the single request frame is already buffered, so a dead or
	// draining shard costs one retry on the next ring candidate. The
	// response is buffered too — the status lives in the trailers, and
	// the retry decision needs it before bytes reach the client.
	for i := 0; i < 2 && i < len(withGRPC); i++ {
		b := withGRPC[i]
		resp, err := p.roundTrip(r, b.GRPCAddr, bytes.NewReader(framed.Bytes()), p.grpcClient)
		if err != nil {
			p.health.MarkDown(b.Name)
			p.logf("backend %s (grpc): %v", b.Name, err)
			if i+1 < len(withGRPC) {
				p.metrics.Retry()
				continue
			}
			p.shedGRPC(w, "backend unavailable")
			return
		}
		body, rerr := io.ReadAll(io.LimitReader(resp.Body, grpcx.DefaultMaxMessageSize+16))
		resp.Body.Close()
		if rerr != nil || resp.StatusCode != http.StatusOK {
			p.health.MarkDown(b.Name)
			if i+1 < len(withGRPC) {
				p.metrics.Retry()
				continue
			}
			p.shedGRPC(w, "backend unavailable")
			return
		}
		// UNAVAILABLE in the trailer is the draining signal over gRPC —
		// the connection still answers, but the engine is going away.
		if grpcTrailerCode(resp) == grpcx.Unavailable && i+1 < len(withGRPC) {
			p.health.MarkDown(b.Name)
			p.metrics.Retry()
			continue
		}
		copyHeader(w.Header(), resp.Header)
		w.WriteHeader(resp.StatusCode)
		w.Write(body)
		relayTrailers(w, resp)
		return
	}
	p.shedGRPC(w, "no healthy backend")
}

// serveGRPCStream forwards one bidi-streaming call. The proxy's own
// response headers go out immediately: a gRPC client may wait for them
// before sending its first frame, and the proxy cannot peek that frame
// (the ring key) until the client sends it — relaying the backend's
// headers instead would deadlock the dialogue against itself. With
// headers already sent, every outcome (including failure to reach a
// backend) travels in the declared grpc-status trailer.
func (p *Proxy) serveGRPCStream(w http.ResponseWriter, r *http.Request) {
	h := w.Header()
	h.Set("Content-Type", "application/grpc+proto")
	h.Set("Trailer", "Grpc-Status, Grpc-Message")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	rc.Flush()
	trailer := func(code grpcx.Code, msg string) {
		h.Set("Grpc-Status", strconv.Itoa(int(code)))
		if msg != "" {
			h.Set("Grpc-Message", msg)
		}
	}

	frame, err := grpcx.ReadFrame(r.Body, grpcx.DefaultMaxMessageSize)
	if err != nil && !errors.Is(err, io.EOF) {
		trailer(grpcx.Internal, fmt.Sprintf("reading request frame: %v", err))
		return
	}
	key, kerr := grpcModelKey(r.URL.Path, frame)
	if kerr != nil {
		trailer(grpcx.InvalidArgument, fmt.Sprintf("decoding request: %v", kerr))
		return
	}

	var target Backend
	for _, b := range p.candidates(key) {
		if b.GRPCAddr != "" {
			target = b
			break
		}
	}
	if target.GRPCAddr == "" {
		p.metrics.Shed()
		trailer(grpcx.ResourceExhausted, "no healthy backend")
		return
	}

	// Splice the peeked frame back in front of the live body and forward
	// once — streams are stateful dialogues, never replayed.
	var framed bytes.Buffer
	if err == nil {
		grpcx.WriteFrame(&framed, frame)
	}
	resp, rerr := p.roundTrip(r, target.GRPCAddr, io.MultiReader(bytes.NewReader(framed.Bytes()), r.Body), p.grpcClient)
	if rerr != nil {
		p.health.MarkDown(target.Name)
		p.logf("stream to %s (grpc): %v", target.Name, rerr)
		trailer(grpcx.Unavailable, "backend unavailable")
		return
	}
	defer resp.Body.Close()
	flushCopy(w, resp.Body)
	// Relay the backend's verdict, whether it travelled as a trailer or —
	// trailers-only responses — in the headers; both are still percent-
	// encoded, so they pass through verbatim.
	st := resp.Trailer.Get("Grpc-Status")
	msg := resp.Trailer.Get("Grpc-Message")
	if st == "" {
		st = resp.Header.Get("Grpc-Status")
		msg = resp.Header.Get("Grpc-Message")
	}
	if st == "" {
		trailer(grpcx.Internal, "backend sent no grpc-status")
		return
	}
	h.Set("Grpc-Status", st)
	if msg != "" {
		h.Set("Grpc-Message", msg)
	}
}

// grpcTrailerCode extracts the grpc-status code from a fully read
// response, whether it travelled as a trailer or (trailers-only
// responses) as a header. Absent or malformed reads as OK — the relay
// passes whatever is there through verbatim either way.
func grpcTrailerCode(resp *http.Response) grpcx.Code {
	v := resp.Trailer.Get("Grpc-Status")
	if v == "" {
		v = resp.Header.Get("Grpc-Status")
	}
	if v == "" {
		return grpcx.OK
	}
	n, err := strconv.ParseUint(v, 10, 32)
	if err != nil {
		return grpcx.OK
	}
	return grpcx.Code(n)
}

// ---- shared forwarding machinery ----

// hopHeaders are the hop-by-hop headers stripped when relaying in either
// direction. Te is deliberately kept: gRPC requires "te: trailers"
// end-to-end.
var hopHeaders = []string{"Connection", "Keep-Alive", "Proxy-Connection", "Transfer-Encoding", "Upgrade"}

func copyHeader(dst, src http.Header) {
	for k, vv := range src {
		dst[k] = append([]string(nil), vv...)
	}
	for _, h := range hopHeaders {
		dst.Del(h)
	}
}

// roundTrip issues the outbound request for r against addr with the
// given body, carrying the original headers plus the resolved tenant
// key. The proxy terminates the client connection, so without the
// forwarded X-Mvg-Tenant the backends would account every stream to the
// proxy's own address and one tenant could starve the rest.
func (p *Proxy) roundTrip(r *http.Request, addr string, body io.Reader, client *http.Client) (*http.Response, error) {
	out, err := http.NewRequestWithContext(r.Context(), r.Method, "http://"+addr+r.URL.RequestURI(), body)
	if err != nil {
		return nil, err
	}
	copyHeader(out.Header, r.Header)
	tenant := core.TenantKey(r.RemoteAddr,
		r.URL.Query().Get(core.TenantParam),
		r.Header.Get(core.TenantHeader),
		r.Header.Get(core.TenantMetadataKey))
	out.Header.Set(core.TenantHeader, tenant)
	return client.Do(out)
}

// forwardStream forwards one streaming request (NDJSON or gRPC bidi)
// and relays the response with a flush after every chunk, so dialogue
// frames cross the proxy without buffering delay. Trailers, if the
// backend sent any, are relayed after the body.
func (p *Proxy) forwardStream(w http.ResponseWriter, r *http.Request, addr string, body io.Reader, client *http.Client) {
	// An interactive HTTP/1 dialogue writes response lines while the
	// client is still sending samples; without the full-duplex opt-in
	// net/http would close the connection on the first such write.
	// HTTP/2 is always full-duplex, so the error is ignorable.
	_ = http.NewResponseController(w).EnableFullDuplex()
	resp, err := p.roundTrip(r, addr, body, client)
	if err != nil {
		p.logf("stream to %s: %v", addr, err)
		if strings.HasPrefix(r.Header.Get("Content-Type"), "application/grpc") {
			grpcStatusErr(w, grpcx.Unavailable, "backend unavailable")
		} else {
			http.Error(w, "backend unavailable", http.StatusServiceUnavailable)
		}
		return
	}
	defer resp.Body.Close()
	copyHeader(w.Header(), resp.Header)
	w.WriteHeader(resp.StatusCode)
	flushCopy(w, resp.Body)
	relayTrailers(w, resp)
}

// relayTrailers copies the backend's HTTP trailers to the client using
// the TrailerPrefix convention (net/http sends them as real HTTP/2
// trailers without pre-declaration) — this is how grpc-status crosses
// the proxy.
func relayTrailers(w http.ResponseWriter, resp *http.Response) {
	for k, vv := range resp.Trailer {
		for _, v := range vv {
			w.Header().Add(http.TrailerPrefix+k, v)
		}
	}
}

func flushCopy(w http.ResponseWriter, r io.Reader) {
	rc := http.NewResponseController(w)
	buf := make([]byte, 32<<10)
	for {
		n, err := r.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			rc.Flush()
		}
		if err != nil {
			return
		}
	}
}
