package proxy

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// health tracks per-backend readiness from two signals: an active poll
// of each replica's /healthz (which reports ready=false while the
// replica drains), and passive MarkDown calls from the forwarding path
// when a connection attempt fails. The passive path is what makes a
// killed shard disappear immediately — the next poll merely confirms it.
type health struct {
	client   *http.Client
	interval time.Duration
	metrics  *Metrics
	addrs    map[string]string // backend name -> host:port of its HTTP API

	mu sync.Mutex
	up map[string]bool

	stop chan struct{}
	done chan struct{}
}

func newHealth(addrs map[string]string, interval time.Duration, m *Metrics) *health {
	h := &health{
		client:   &http.Client{Timeout: 2 * time.Second},
		interval: interval,
		metrics:  m,
		addrs:    addrs,
		up:       make(map[string]bool, len(addrs)),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for name := range addrs {
		h.up[name] = false
		m.SetBackendUp(name, false)
	}
	return h
}

// run polls until stop is closed. The first poll has already happened
// synchronously (CheckNow from New), so the ticker only maintains state.
func (h *health) run() {
	defer close(h.done)
	t := time.NewTicker(h.interval)
	defer t.Stop()
	for {
		select {
		case <-h.stop:
			return
		case <-t.C:
			h.CheckNow()
		}
	}
}

func (h *health) close() {
	close(h.stop)
	<-h.done
}

// CheckNow polls every backend once, concurrently, and records the
// results.
func (h *health) CheckNow() {
	var wg sync.WaitGroup
	for name, addr := range h.addrs {
		wg.Add(1)
		go func(name, addr string) {
			defer wg.Done()
			h.set(name, h.probe(addr))
		}(name, addr)
	}
	wg.Wait()
}

// probe reports whether the replica at addr answers /healthz with
// ready=true. A draining replica answers 503 with ready=false, which is
// exactly the "stop sending new work here" signal.
func (h *health) probe(addr string) bool {
	resp, err := h.client.Get("http://" + addr + "/healthz")
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	var body struct {
		Ready bool `json:"ready"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return false
	}
	return body.Ready
}

func (h *health) set(name string, up bool) {
	h.mu.Lock()
	h.up[name] = up
	h.mu.Unlock()
	h.metrics.SetBackendUp(name, up)
}

// Healthy reports the last known state of name.
func (h *health) Healthy(name string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.up[name]
}

// MarkDown records a passive failure observed by the forwarding path; a
// later successful poll brings the backend back.
func (h *health) MarkDown(name string) {
	h.set(name, false)
}

// Snapshot returns a copy of the per-backend state.
func (h *health) Snapshot() map[string]bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]bool, len(h.up))
	for k, v := range h.up {
		out[k] = v
	}
	return out
}
