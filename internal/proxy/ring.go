// Package proxy implements mvgproxy's fleet layer: one stateless
// front door consistent-hashing model names across N mvgserve replicas,
// health-checking them through /healthz readiness, retrying idempotent
// predicts once when a shard is dead or draining, and shedding with
// 429/RESOURCE_EXHAUSTED + Retry-After when no replica can serve. Both
// transports route through the same ring keyed by model name, so a
// model's HTTP and gRPC traffic lands on the same replica and keeps
// sharing that replica's coalescer. docs/serving.md#fleet describes the
// deployment recipe.
package proxy

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// vnodesPerBackend is the number of virtual points each backend
// contributes to the ring. 64 keeps the keyspace split within a few
// percent of even for small fleets without making ring construction or
// lookup measurable.
const vnodesPerBackend = 64

type ringPoint struct {
	hash uint64
	name string
}

// ring is an immutable consistent-hash ring over backend names. Lookup
// returns backends in ring order from the key's position, so the
// preference list for a key is stable across proxies and across
// restarts, and removing one backend only remaps the keys it owned.
type ring struct {
	points []ringPoint
	names  []string
}

func newRing(names []string) *ring {
	r := &ring{names: append([]string(nil), names...)}
	r.points = make([]ringPoint, 0, len(names)*vnodesPerBackend)
	for _, n := range names {
		for v := 0; v < vnodesPerBackend; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", n, v)), name: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].name < r.points[j].name
	})
	return r
}

// hash64 is FNV-1a finished with a splitmix64-style mixer. Raw FNV has
// no avalanche: "a:1#0".."a:1#63" hash to near-sequential values, which
// would cluster each backend's 64 vnodes into one tiny arc and collapse
// the ring to one point per backend. The finalizer spreads them.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Order returns every distinct backend, starting with the key's owner
// and continuing in ring order — the retry preference list for key.
func (r *ring) Order(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, len(r.names))
	seen := make(map[string]bool, len(r.names))
	for n := 0; n < len(r.points) && len(out) < len(r.names); n++ {
		p := r.points[(i+n)%len(r.points)]
		if !seen[p.name] {
			seen[p.name] = true
			out = append(out, p.name)
		}
	}
	return out
}
