package proxy

import (
	"fmt"
	"reflect"
	"testing"
)

// TestRingOrder pins the ring's contract: Order is deterministic,
// returns every backend exactly once, and starts with the key's owner.
func TestRingOrder(t *testing.T) {
	names := []string{"a:1", "b:1", "c:1"}
	r := newRing(names)

	first := r.Order("demo")
	if len(first) != len(names) {
		t.Fatalf("Order returned %d backends, want %d", len(first), len(names))
	}
	seen := map[string]bool{}
	for _, n := range first {
		if seen[n] {
			t.Fatalf("Order repeated backend %q: %v", n, first)
		}
		seen[n] = true
	}
	for i := 0; i < 10; i++ {
		if got := r.Order("demo"); !reflect.DeepEqual(got, first) {
			t.Fatalf("Order not deterministic: %v vs %v", got, first)
		}
	}

	// A second ring built from the same names agrees — preference lists
	// are a pure function of the fleet, not of proxy instance state.
	if got := newRing(names).Order("demo"); !reflect.DeepEqual(got, first) {
		t.Fatalf("independent ring disagrees: %v vs %v", got, first)
	}
}

// TestRingBalance checks vnodes spread many keys across the fleet
// without any backend dominating: no owner takes more than 60% of 1000
// keys on a 3-backend ring, and every backend owns some.
func TestRingBalance(t *testing.T) {
	r := newRing([]string{"a:1", "b:1", "c:1"})
	counts := map[string]int{}
	const keys = 1000
	for i := 0; i < keys; i++ {
		counts[r.Order(fmt.Sprintf("model-%d", i))[0]]++
	}
	for name, c := range counts {
		if c == 0 {
			t.Fatalf("backend %s owns no keys", name)
		}
		if c > keys*6/10 {
			t.Fatalf("backend %s owns %d/%d keys — ring badly skewed: %v", name, c, keys, counts)
		}
	}
	if len(counts) != 3 {
		t.Fatalf("only %d backends own keys: %v", len(counts), counts)
	}
}

// TestRingStability checks removing one backend only remaps the keys it
// owned: every key owned by a surviving backend keeps its owner.
func TestRingStability(t *testing.T) {
	full := newRing([]string{"a:1", "b:1", "c:1"})
	reduced := newRing([]string{"a:1", "c:1"})
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("model-%d", i)
		owner := full.Order(key)[0]
		if owner == "b:1" {
			continue // the removed backend's keys must move, anywhere
		}
		if got := reduced.Order(key)[0]; got != owner {
			t.Fatalf("key %q moved %s -> %s though its owner survived", key, owner, got)
		}
	}
}
