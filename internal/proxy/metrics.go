package proxy

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Metrics is mvgproxy's own counter set, exposed on the proxy's
// /metrics endpoint — distinct from the mvgserve_* families the
// replicas expose, so fleet-level retry and shed behaviour is observable
// without scraping every backend.
type Metrics struct {
	mu        sync.Mutex
	requests  map[int]uint64 // by client-visible status code
	retries   uint64
	shed      uint64
	backendUp map[string]bool
}

func newMetrics() *Metrics {
	return &Metrics{
		requests:  make(map[int]uint64),
		backendUp: make(map[string]bool),
	}
}

// Request records one proxied request by the status code the client saw.
func (m *Metrics) Request(code int) {
	m.mu.Lock()
	m.requests[code]++
	m.mu.Unlock()
}

// Retry records one failover retry of an idempotent request.
func (m *Metrics) Retry() {
	m.mu.Lock()
	m.retries++
	m.mu.Unlock()
}

// RetriesTotal reports the failover retry count.
func (m *Metrics) RetriesTotal() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.retries
}

// Shed records one request rejected because no healthy backend could
// serve it.
func (m *Metrics) Shed() {
	m.mu.Lock()
	m.shed++
	m.mu.Unlock()
}

// ShedTotal reports the no-healthy-backend rejection count.
func (m *Metrics) ShedTotal() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.shed
}

// SetBackendUp records the health state of one backend.
func (m *Metrics) SetBackendUp(name string, up bool) {
	m.mu.Lock()
	m.backendUp[name] = up
	m.mu.Unlock()
}

// WritePrometheus renders the proxy metrics in the Prometheus text
// exposition format, families and labels in sorted order so the output
// is deterministic.
func (m *Metrics) WritePrometheus(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintf(w, "# HELP mvgproxy_requests_total Proxied requests by client-visible status code.\n")
	fmt.Fprintf(w, "# TYPE mvgproxy_requests_total counter\n")
	codes := make([]int, 0, len(m.requests))
	for c := range m.requests {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, c := range codes {
		fmt.Fprintf(w, "mvgproxy_requests_total{code=\"%d\"} %d\n", c, m.requests[c])
	}

	fmt.Fprintf(w, "# HELP mvgproxy_retries_total Idempotent requests retried on another replica after a dead or draining shard.\n")
	fmt.Fprintf(w, "# TYPE mvgproxy_retries_total counter\n")
	fmt.Fprintf(w, "mvgproxy_retries_total %d\n", m.retries)

	fmt.Fprintf(w, "# HELP mvgproxy_shed_total Requests rejected because no healthy backend could serve them.\n")
	fmt.Fprintf(w, "# TYPE mvgproxy_shed_total counter\n")
	fmt.Fprintf(w, "mvgproxy_shed_total %d\n", m.shed)

	fmt.Fprintf(w, "# HELP mvgproxy_backend_up Last known health of each backend (1 ready, 0 down or draining).\n")
	fmt.Fprintf(w, "# TYPE mvgproxy_backend_up gauge\n")
	names := make([]string, 0, len(m.backendUp))
	for n := range m.backendUp {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		v := 0
		if m.backendUp[n] {
			v = 1
		}
		fmt.Fprintf(w, "mvgproxy_backend_up{backend=%q} %d\n", n, v)
	}
}
