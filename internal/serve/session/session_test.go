package session

import (
	"errors"
	"sync"
	"testing"
)

func TestOpenCloseAccounting(t *testing.T) {
	r := NewRegistry(Config{MaxStreams: 4, MaxPerTenant: 2})
	a1, err := r.Open("a")
	if err != nil {
		t.Fatal(err)
	}
	a2, err := r.Open("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Open("a"); !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("3rd open for tenant a = %v, want ErrTenantQuota", err)
	}
	b1, err := r.Open("b")
	if err != nil {
		t.Fatal(err)
	}
	b2, err := r.Open("b")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Open("c"); !errors.Is(err, ErrServerLimit) {
		t.Fatalf("5th open = %v, want ErrServerLimit", err)
	}
	if got := r.Active(); got != 4 {
		t.Fatalf("Active = %d, want 4", got)
	}
	if got := r.TenantActive("a"); got != 2 {
		t.Fatalf("TenantActive(a) = %d, want 2", got)
	}
	a1.Close()
	a1.Close() // idempotent
	if got := r.TenantActive("a"); got != 1 {
		t.Fatalf("TenantActive(a) after close = %d, want 1", got)
	}
	// The freed slots are reusable, for the same tenant and globally.
	if _, err := r.Open("a"); err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	a2.Close()
	b1.Close()
	b2.Close()
}

func TestSessionIDsUnique(t *testing.T) {
	r := NewRegistry(Config{})
	seen := make(map[uint64]bool)
	for i := 0; i < 10; i++ {
		s, err := r.Open("t")
		if err != nil {
			t.Fatal(err)
		}
		if seen[s.ID] {
			t.Fatalf("duplicate session ID %d", s.ID)
		}
		seen[s.ID] = true
		s.Close()
	}
}

func TestNegativeLimitsUnbounded(t *testing.T) {
	r := NewRegistry(Config{MaxStreams: -1, MaxPerTenant: -1})
	for i := 0; i < 2*DefaultMaxStreams+1; i++ {
		if _, err := r.Open("t"); err != nil {
			t.Fatalf("open %d: %v", i, err)
		}
	}
}

func TestDrainBroadcast(t *testing.T) {
	r := NewRegistry(Config{})
	s1, _ := r.Open("a")
	s2, _ := r.Open("b")
	select {
	case <-s1.Done():
		t.Fatal("Done closed before Drain")
	default:
	}
	r.Drain()
	r.Drain() // idempotent
	for _, s := range []*Session{s1, s2} {
		select {
		case <-s.Done():
		default:
			t.Fatal("Done not closed by Drain")
		}
	}
	if !r.Draining() {
		t.Fatal("Draining() = false after Drain")
	}
	if _, err := r.Open("c"); !errors.Is(err, ErrDraining) {
		t.Fatalf("open while draining = %v, want ErrDraining", err)
	}
	// Sessions stay registered until their owners close them.
	if got := r.Active(); got != 2 {
		t.Fatalf("Active after Drain = %d, want 2", got)
	}
	s1.Close()
	s2.Close()
	if got := r.Active(); got != 0 {
		t.Fatalf("Active after closes = %d, want 0", got)
	}
}

// TestConcurrentOpenClose churns sessions from many goroutines with a
// concurrent Drain; run with -race. The invariant: accounting ends at
// zero and no Open ever exceeds the limits.
func TestConcurrentOpenClose(t *testing.T) {
	r := NewRegistry(Config{MaxStreams: 8, MaxPerTenant: 4})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			tenant := string(rune('a' + w%2))
			for i := 0; i < 200; i++ {
				s, err := r.Open(tenant)
				if err != nil {
					continue
				}
				s.Close()
			}
		}()
	}
	wg.Wait()
	if got := r.Active(); got != 0 {
		t.Fatalf("Active = %d after churn, want 0", got)
	}
	r.Drain()
}
