// Package session is the serving layer's stream session registry: every
// long-lived NDJSON stream dialogue registers here so the server can
// enforce a global concurrent-stream ceiling, per-tenant quotas, and a
// graceful drain that tells every live stream to finish — the enabling
// substrate for multiplexing tens of thousands of device streams
// (ROADMAP item 2) without letting one tenant, or an unbounded pile of
// idle connections, pin the process.
//
// The registry does not own goroutines and never touches the network: a
// stream handler calls Open, watches Session.Done while it serves, and
// calls Session.Close on exit. Eviction *policy* (idle deadlines, write
// deadlines) lives with the handler, which is the only party that can
// safely interrupt its own connection; the registry supplies the shared
// accounting and the drain broadcast. See docs/robustness.md.
package session

import (
	"errors"
	"fmt"
	"sync"
)

// Open errors. Both map to 429 at the HTTP layer (the client can retry
// once load subsides); ErrDraining maps to 503 (retry against another
// replica — this one is going away).
var (
	// ErrServerLimit: the global MaxStreams ceiling is reached.
	ErrServerLimit = errors.New("session: server stream limit reached")
	// ErrTenantQuota: this tenant is at its MaxPerTenant quota.
	ErrTenantQuota = errors.New("session: tenant stream quota reached")
	// ErrDraining: the registry is draining and accepts no new sessions.
	ErrDraining = errors.New("session: server draining")
)

// Defaults used when Config fields are zero.
const (
	DefaultMaxStreams   = 1024
	DefaultMaxPerTenant = 64
)

// Config bounds a Registry. Zero values select the defaults above; a
// negative value means unlimited (useful in tests).
type Config struct {
	// MaxStreams caps concurrently open sessions across all tenants.
	MaxStreams int
	// MaxPerTenant caps concurrently open sessions per tenant key.
	MaxPerTenant int
}

// Registry tracks live stream sessions. The zero value is not usable;
// call NewRegistry.
type Registry struct {
	maxStreams   int
	maxPerTenant int

	mu       sync.Mutex
	draining bool
	nextID   uint64
	sessions map[*Session]struct{}
	tenants  map[string]int
}

// Session is one registered stream. Done is closed when the registry
// wants the stream to finish (drain); the owning handler must call Close
// exactly once when the dialogue ends, whatever the reason.
type Session struct {
	// ID is unique within the registry's lifetime; it names the session
	// in logs and error lines.
	ID uint64
	// Tenant is the quota key the session was opened under.
	Tenant string

	reg  *Registry
	done chan struct{}
	once sync.Once
}

// NewRegistry builds a Registry from cfg.
func NewRegistry(cfg Config) *Registry {
	if cfg.MaxStreams == 0 {
		cfg.MaxStreams = DefaultMaxStreams
	}
	if cfg.MaxPerTenant == 0 {
		cfg.MaxPerTenant = DefaultMaxPerTenant
	}
	return &Registry{
		maxStreams:   cfg.MaxStreams,
		maxPerTenant: cfg.MaxPerTenant,
		sessions:     make(map[*Session]struct{}),
		tenants:      make(map[string]int),
	}
}

// Open registers a new session for tenant, enforcing the draining state,
// the global ceiling and the tenant quota — in that order, so an
// over-quota tenant cannot learn whether the server is also full.
func (r *Registry) Open(tenant string) (*Session, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch {
	case r.draining:
		return nil, ErrDraining
	case r.maxStreams > 0 && len(r.sessions) >= r.maxStreams:
		return nil, fmt.Errorf("%w (%d open)", ErrServerLimit, len(r.sessions))
	case r.maxPerTenant > 0 && r.tenants[tenant] >= r.maxPerTenant:
		return nil, fmt.Errorf("%w (tenant %q has %d open)", ErrTenantQuota, tenant, r.tenants[tenant])
	}
	r.nextID++
	s := &Session{ID: r.nextID, Tenant: tenant, reg: r, done: make(chan struct{})}
	r.sessions[s] = struct{}{}
	r.tenants[tenant]++
	return s, nil
}

// Done is closed when the registry asks the session to finish (drain).
func (s *Session) Done() <-chan struct{} { return s.done }

// Close deregisters the session, releasing its tenant-quota slot. It is
// idempotent and safe to call concurrently with Drain.
func (s *Session) Close() {
	s.once.Do(func() {
		r := s.reg
		r.mu.Lock()
		if _, ok := r.sessions[s]; ok {
			delete(r.sessions, s)
			if r.tenants[s.Tenant]--; r.tenants[s.Tenant] <= 0 {
				delete(r.tenants, s.Tenant)
			}
		}
		r.mu.Unlock()
	})
}

// Drain rejects all future Opens and closes every live session's Done
// channel. The sessions themselves stay registered until their owners
// Close them — Drain is a broadcast, not a teardown. Idempotent.
func (r *Registry) Drain() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.draining {
		return
	}
	r.draining = true
	for s := range r.sessions {
		close(s.done)
	}
}

// Draining reports whether Drain has been called.
func (r *Registry) Draining() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.draining
}

// Active reports the number of currently open sessions.
func (r *Registry) Active() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sessions)
}

// TenantActive reports the number of open sessions for one tenant.
func (r *Registry) TenantActive(tenant string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tenants[tenant]
}

// Limits reports the registry's effective (defaulted) limits.
func (r *Registry) Limits() (maxStreams, maxPerTenant int) {
	return r.maxStreams, r.maxPerTenant
}
