package serve

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"time"

	"mvg"
)

// Streaming endpoint: POST /v1/models/{name}/stream carries an NDJSON
// dialogue over one request — each request-body line is one sample (a JSON
// number), and every time the model's sliding window crosses a hop
// boundary the server writes one prediction line back:
//
//	{"sample":640,"class":1,"proba":[0.11,0.89]}
//
// The window length is the model's training length; the hop is the ?hop=N
// query parameter (default 1). Prediction lines carry a "drift" field when
// the model has a drift baseline. The ?alert= parameter arms alert triggers
// (docs/alerting.md#trigger-specs; repeat the parameter — or percent-encode
// ';' — to arm several); their state transitions interleave as alert lines
// right after the prediction that caused them:
//
//	{"alert":"flip","from":"OK","to":"FIRING","sample":640,"value":1}
//
// and FIRING/RESOLVED transitions are also delivered to the server's alert
// sink. When the body ends, a terminal line
//
//	{"done":true,"samples":700,"predictions":8}
//
// closes the dialogue. Errors after the first prediction cannot change the
// HTTP status (headers are gone), so they surface as an {"error":...}
// line followed by end-of-stream; errors before any output use the normal
// status mapping. The stream is context-cancellable: a dropped client
// connection stops extraction at the next sample. See docs/streaming.md
// for the protocol and docs/serving.md for how it relates to the batch
// endpoints.

// The NDJSON response line shapes of the /stream endpoint. They are
// separate types so each line carries exactly its documented fields — in
// particular the terminal line always includes samples and predictions,
// even when zero. StreamPrediction and StreamAlertEvent are exported
// because `mvgcli stream` speaks the identical protocol: sharing the types
// is what keeps the two from drifting.
type StreamPrediction struct {
	Sample int       `json:"sample"`
	Class  int       `json:"class"`
	Proba  []float64 `json:"proba"`
	// Drift is the window's drift/novelty score; present whenever the
	// model carries a drift baseline (docs/alerting.md#drift-score).
	Drift *float64 `json:"drift,omitempty"`
}

// StreamAlertEvent is one alert state transition, interleaved with the
// prediction lines right after the prediction that caused it. Sample uses
// the same samples-consumed convention as prediction lines.
type StreamAlertEvent struct {
	Alert  string  `json:"alert"` // trigger name
	From   string  `json:"from"`
	To     string  `json:"to"`
	Sample int     `json:"sample"`
	Value  float64 `json:"value"`
}

type streamDoneEvent struct {
	Done        bool `json:"done"`
	Samples     int  `json:"samples"`
	Predictions int  `json:"predictions"`
}

type streamErrorEvent struct {
	Error string `json:"error"`
}

// maxStreamLine bounds one NDJSON input line; a single float64 never needs
// more, so larger lines are protocol violations, not big requests.
const maxStreamLine = 4096

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	name, m, err := s.model(r)
	if err != nil {
		writeError(w, err)
		return
	}
	hop := 1
	if raw := r.URL.Query().Get("hop"); raw != "" {
		hop, err = strconv.Atoi(raw)
		if err != nil {
			writeError(w, httpErrorf(http.StatusBadRequest, "invalid hop %q: %v", raw, err))
			return
		}
	}
	stream, err := m.NewStream(hop)
	if err != nil {
		writeError(w, err)
		return
	}
	alerting := false
	// ';' joins trigger specs but is dropped from raw query strings by
	// net/url (Go 1.17+), so the parameter may be repeated instead —
	// ?alert=a&alert=b — or the ';' percent-encoded as %3B.
	if specs := strings.Join(r.URL.Query()["alert"], ";"); specs != "" {
		triggers, err := mvg.ParseAlertTriggers(specs)
		if err != nil {
			writeError(w, err)
			return
		}
		if err := stream.SetAlerts(triggers...); err != nil {
			writeError(w, err)
			return
		}
		alerting = true
		for _, tr := range stream.AlertTriggers() {
			s.metrics.AlertStreamStarted(tr.Name)
		}
		// The gauge tracks live streams: whatever state each trigger ends
		// in, this dialogue stops contributing to it when it returns.
		defer func() {
			for _, st := range stream.Alerts() {
				s.metrics.AlertStreamEnded(st.Name, st.State.String())
			}
		}()
	}

	// The dialogue reads the body while writing the response; HTTP/1.1
	// needs full-duplex opted in. Errors (HTTP/2, recorders) are fine —
	// those transports already allow it or buffer the whole body.
	rc := http.NewResponseController(w)
	_ = rc.EnableFullDuplex()

	enc := json.NewEncoder(w)
	wrote := false
	emit := func(ev any) bool {
		if !wrote {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			wrote = true
		}
		if err := enc.Encode(ev); err != nil {
			return false
		}
		_ = rc.Flush()
		return true
	}
	fail := func(err error) {
		if wrote {
			emit(streamErrorEvent{Error: err.Error()})
			return
		}
		writeError(w, err)
	}

	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, maxStreamLine), maxStreamLine)
	predictions := 0
	for sc.Scan() {
		if err := r.Context().Err(); err != nil {
			fail(err)
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		x, err := strconv.ParseFloat(line, 64)
		if err != nil {
			fail(httpErrorf(http.StatusBadRequest, "sample %d: not a number: %q", stream.Pushed(), line))
			return
		}
		ready, err := stream.Push(x)
		if err != nil {
			// writeError already maps the push taxonomy (non-finite → 400).
			fail(err)
			return
		}
		if !ready {
			continue
		}
		pt, err := stream.PredictAlert(r.Context())
		if err != nil {
			fail(err)
			return
		}
		predictions++
		pred := StreamPrediction{Sample: stream.Pushed(), Class: pt.Class, Proba: pt.Proba}
		if pt.HasDrift {
			pred.Drift = &pt.Drift
		}
		if !emit(pred) {
			return
		}
		for _, tr := range pt.Transitions {
			s.metrics.AlertTransition(tr.Trigger, tr.From.String(), tr.To.String())
			// The wire and webhook sample convention is samples-consumed,
			// matching prediction lines; the library's Transition carries
			// the window-closing sample index, one less.
			if !emit(StreamAlertEvent{
				Alert: tr.Trigger, From: tr.From.String(), To: tr.To.String(),
				Sample: tr.Sample + 1, Value: tr.Value,
			}) {
				return
			}
			if s.alertSink != nil && alerting && (tr.To == mvg.AlertFiring || tr.To == mvg.AlertResolved) {
				s.alertSink.Deliver(mvg.AlertEvent{
					Model: name, Trigger: tr.Trigger,
					From: tr.From.String(), To: tr.To.String(),
					Sample: tr.Sample + 1, Value: tr.Value, At: time.Now().UTC(),
				})
			}
		}
	}
	if err := sc.Err(); err != nil {
		fail(httpErrorf(http.StatusBadRequest, "reading stream: %v", err))
		return
	}
	emit(streamDoneEvent{Done: true, Samples: stream.Pushed(), Predictions: predictions})
}
