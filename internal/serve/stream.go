package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"mvg"
	"mvg/internal/faults"
	"mvg/internal/serve/session"
)

// Streaming endpoint: POST /v1/models/{name}/stream carries an NDJSON
// dialogue over one request — each request-body line is one sample (a JSON
// number), and every time the model's sliding window crosses a hop
// boundary the server writes one prediction line back:
//
//	{"sample":640,"class":1,"proba":[0.11,0.89]}
//
// The window length is the model's training length; the hop is the ?hop=N
// query parameter (default 1). Prediction lines carry a "drift" field when
// the model has a drift baseline. The ?alert= parameter arms alert triggers
// (docs/alerting.md#trigger-specs; repeat the parameter — or percent-encode
// ';' — to arm several); their state transitions interleave as alert lines
// right after the prediction that caused them:
//
//	{"alert":"flip","from":"OK","to":"FIRING","sample":640,"value":1}
//
// and FIRING/RESOLVED transitions are also delivered to the server's alert
// sink. When the body ends, a terminal line
//
//	{"done":true,"samples":700,"predictions":8}
//
// closes the dialogue. Errors after the first prediction cannot change the
// HTTP status (headers are gone), so they surface as an {"error":...}
// line followed by end-of-stream; errors before any output use the normal
// status mapping. The stream is context-cancellable: a dropped client
// connection stops extraction at the next sample. See docs/streaming.md
// for the protocol and docs/serving.md for how it relates to the batch
// endpoints.

// The NDJSON response line shapes of the /stream endpoint. They are
// separate types so each line carries exactly its documented fields — in
// particular the terminal line always includes samples and predictions,
// even when zero. StreamPrediction and StreamAlertEvent are exported
// because `mvgcli stream` speaks the identical protocol: sharing the types
// is what keeps the two from drifting.
type StreamPrediction struct {
	Sample int       `json:"sample"`
	Class  int       `json:"class"`
	Proba  []float64 `json:"proba"`
	// Drift is the window's drift/novelty score; present whenever the
	// model carries a drift baseline (docs/alerting.md#drift-score).
	Drift *float64 `json:"drift,omitempty"`
}

// StreamAlertEvent is one alert state transition, interleaved with the
// prediction lines right after the prediction that caused it. Sample uses
// the same samples-consumed convention as prediction lines.
type StreamAlertEvent struct {
	Alert  string  `json:"alert"` // trigger name
	From   string  `json:"from"`
	To     string  `json:"to"`
	Sample int     `json:"sample"`
	Value  float64 `json:"value"`
}

type streamDoneEvent struct {
	Done        bool `json:"done"`
	Samples     int  `json:"samples"`
	Predictions int  `json:"predictions"`
	// Draining is set when the server closed the dialogue as part of a
	// graceful drain (SIGTERM): the stream ended cleanly, but not because
	// the client finished — reconnect to another replica to continue.
	Draining bool `json:"draining,omitempty"`
}

type streamErrorEvent struct {
	Error string `json:"error"`
}

// maxStreamLine bounds one NDJSON input line; a single float64 never needs
// more, so larger lines are protocol violations, not big requests.
const maxStreamLine = 4096

// streamReaderGrace is how long a finishing dialogue waits for its body
// reader to exit on its own before force-failing the read (see the join in
// handleStream). It bounds eviction latency, not request latency: clean
// dialogues never wait it out.
const streamReaderGrace = 50 * time.Millisecond

// streamTenant derives the quota key a stream is accounted under: the
// explicit ?tenant= parameter when present (multiplexers and gateways set
// it), otherwise the client IP — good enough to stop one misbehaving host
// from monopolising the stream table.
func streamTenant(r *http.Request) string {
	if t := r.URL.Query().Get("tenant"); t != "" {
		return t
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// streamLine is one unit of work handed from the body-reader goroutine to
// the dialogue loop: a text line, or the scanner's terminal error.
type streamLine struct {
	text string
	err  error
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	name, m, err := s.model(r)
	if err != nil {
		writeError(w, err)
		return
	}
	hop := 1
	if raw := r.URL.Query().Get("hop"); raw != "" {
		hop, err = strconv.Atoi(raw)
		if err != nil {
			writeError(w, httpErrorf(http.StatusBadRequest, "invalid hop %q: %v", raw, err))
			return
		}
	}
	stream, err := m.NewStream(hop)
	if err != nil {
		writeError(w, err)
		return
	}
	alerting := false
	// ';' joins trigger specs but is dropped from raw query strings by
	// net/url (Go 1.17+), so the parameter may be repeated instead —
	// ?alert=a&alert=b — or the ';' percent-encoded as %3B.
	if specs := strings.Join(r.URL.Query()["alert"], ";"); specs != "" {
		triggers, err := mvg.ParseAlertTriggers(specs)
		if err != nil {
			writeError(w, err)
			return
		}
		if err := stream.SetAlerts(triggers...); err != nil {
			writeError(w, err)
			return
		}
		alerting = true
		for _, tr := range stream.AlertTriggers() {
			s.metrics.AlertStreamStarted(tr.Name)
		}
		// The gauge tracks live streams: whatever state each trigger ends
		// in, this dialogue stops contributing to it when it returns.
		defer func() {
			for _, st := range stream.Alerts() {
				s.metrics.AlertStreamEnded(st.Name, st.State.String())
			}
		}()
	}

	// Register the dialogue in the session registry: this is where the
	// global stream ceiling and the per-tenant quota are enforced, and
	// what graceful drain broadcasts through. Registration happens after
	// all parameter validation so a malformed request costs no quota.
	sess, err := s.sessions.Open(streamTenant(r))
	if err != nil {
		if errors.Is(err, session.ErrDraining) {
			writeError(w, httpErrorf(http.StatusServiceUnavailable, "%v", err))
			return
		}
		// Server limit or tenant quota: a deterministic load rejection,
		// counted with the predict sheds.
		s.metrics.Shed()
		retryAfterHeader(w, s.retryAfter)
		writeError(w, httpErrorf(http.StatusTooManyRequests, "%v: try again in %v", err, s.retryAfter))
		return
	}
	defer sess.Close()
	s.metrics.StreamStarted()
	defer s.metrics.StreamEnded()

	// The dialogue reads the body while writing the response; HTTP/1.1
	// needs full-duplex opted in. Errors (HTTP/2, recorders) are fine —
	// those transports already allow it or buffer the whole body.
	rc := http.NewResponseController(w)
	_ = rc.EnableFullDuplex()

	enc := json.NewEncoder(w)
	wrote := false
	var writeFailure error
	emit := func(ev any) bool {
		// Every response line renews the write deadline: a client that
		// reads, however slowly, keeps the dialogue alive; one that stops
		// reading entirely lets the deadline expire once the server-side
		// buffers fill, which surfaces below as a write error.
		if s.streamWrite > 0 {
			_ = rc.SetWriteDeadline(time.Now().Add(s.streamWrite))
		}
		if !wrote {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			wrote = true
		}
		if err := enc.Encode(ev); err != nil {
			writeFailure = err
			return false
		}
		if err := rc.Flush(); err != nil && errors.Is(err, os.ErrDeadlineExceeded) {
			writeFailure = err
			return false
		}
		return true
	}
	// send is emit plus slow-reader accounting: a write that died on the
	// deadline evicts the stream (counted) with a best-effort terminal
	// error line under one fresh deadline; any other write failure is the
	// client disconnecting, which needs no farewell.
	send := func(ev any) bool {
		if emit(ev) {
			return true
		}
		if errors.Is(writeFailure, os.ErrDeadlineExceeded) {
			s.metrics.StreamEvicted(EvictSlowReader)
			if s.streamWrite > 0 {
				_ = rc.SetWriteDeadline(time.Now().Add(s.streamWrite))
			}
			_ = enc.Encode(streamErrorEvent{Error: fmt.Sprintf(
				"stream evicted: slow reader (no progress within %v write deadline)", s.streamWrite)})
			_ = rc.Flush()
		}
		return false
	}
	fail := func(err error) {
		if wrote {
			emit(streamErrorEvent{Error: err.Error()})
			return
		}
		writeError(w, err)
	}

	// The body is consumed by a dedicated reader goroutine so the
	// dialogue loop can simultaneously watch the idle deadline, the
	// session's drain signal and the request context. The handler MUST
	// NOT return while this goroutine can still touch r.Body: after the
	// handler returns, net/http's connection teardown drains the body
	// itself, and a concurrent Read from here panics the connection
	// ("invalid concurrent Body.Read call"). So on every exit path the
	// deferred join below (1) closes stopReader to unblock a pending
	// channel send, (2) expires the connection read deadline to unblock a
	// Read parked on a silent client, and (3) waits for the goroutine to
	// finish before handing the connection back.
	ctxDone := r.Context().Done()
	stopReader := make(chan struct{})
	readerDone := make(chan struct{})
	lines := make(chan streamLine)
	go func() {
		defer close(readerDone)
		defer close(lines)
		sc := bufio.NewScanner(r.Body)
		sc.Buffer(make([]byte, maxStreamLine), maxStreamLine)
		for sc.Scan() {
			select {
			case lines <- streamLine{text: sc.Text()}:
			case <-stopReader:
				return
			}
		}
		if err := sc.Err(); err != nil {
			select {
			case lines <- streamLine{err: err}:
			case <-stopReader:
			}
		}
	}()
	defer func() {
		close(stopReader)
		// Fast path: the reader already hit EOF or notices stopReader at
		// its next channel send (any buffered body data scans in
		// microseconds). The connection stays pristine and reusable.
		select {
		case <-readerDone:
			return
		case <-time.After(streamReaderGrace):
		}
		// Slow path: the reader is parked inside r.Body.Read on a client
		// that stopped sending (idle eviction, drain, slow reader). Expire
		// the connection read deadline to fail that Read immediately —
		// this sacrifices connection reuse, but every such exit path is
		// already killing the dialogue. Transports without read-deadline
		// support (test recorders) return an error, which is fine: their
		// bodies are in-memory readers that never block.
		_ = rc.SetReadDeadline(time.Now())
		<-readerDone
	}()

	var idleTimer *time.Timer
	var idleC <-chan time.Time
	if s.streamIdle > 0 {
		idleTimer = time.NewTimer(s.streamIdle)
		defer idleTimer.Stop()
		idleC = idleTimer.C
	}

	predictions := 0
	for {
		select {
		case <-ctxDone:
			fail(r.Context().Err())
			return
		case <-sess.Done():
			// Graceful drain: close the dialogue cleanly so the client
			// knows everything sent so far was processed.
			send(streamDoneEvent{Done: true, Samples: stream.Pushed(), Predictions: predictions, Draining: true})
			return
		case <-idleC:
			s.metrics.StreamEvicted(EvictIdle)
			fail(httpErrorf(http.StatusRequestTimeout,
				"stream evicted: no sample received within the %v idle deadline", s.streamIdle))
			return
		case ln, ok := <-lines:
			if !ok {
				send(streamDoneEvent{Done: true, Samples: stream.Pushed(), Predictions: predictions})
				return
			}
			if ln.err != nil {
				fail(httpErrorf(http.StatusBadRequest, "reading stream: %v", ln.err))
				return
			}
			if idleTimer != nil {
				if !idleTimer.Stop() {
					select {
					case <-idleC:
					default:
					}
				}
				idleTimer.Reset(s.streamIdle)
			}
			line := strings.TrimSpace(ln.text)
			if line == "" {
				continue
			}
			x, err := strconv.ParseFloat(line, 64)
			if err != nil {
				fail(httpErrorf(http.StatusBadRequest, "sample %d: not a number: %q", stream.Pushed(), line))
				return
			}
			ready, err := stream.Push(x)
			if err != nil {
				// writeError already maps the push taxonomy (non-finite → 400).
				fail(err)
				return
			}
			if !ready {
				continue
			}
			if err := s.faults.Fire(r.Context(), faults.PointStreamPredict); err != nil {
				fail(err)
				return
			}
			pt, err := stream.PredictAlert(r.Context())
			if err != nil {
				fail(err)
				return
			}
			predictions++
			pred := StreamPrediction{Sample: stream.Pushed(), Class: pt.Class, Proba: pt.Proba}
			if pt.HasDrift {
				pred.Drift = &pt.Drift
			}
			if !send(pred) {
				return
			}
			for _, tr := range pt.Transitions {
				s.metrics.AlertTransition(tr.Trigger, tr.From.String(), tr.To.String())
				// The wire and webhook sample convention is samples-consumed,
				// matching prediction lines; the library's Transition carries
				// the window-closing sample index, one less.
				if !send(StreamAlertEvent{
					Alert: tr.Trigger, From: tr.From.String(), To: tr.To.String(),
					Sample: tr.Sample + 1, Value: tr.Value,
				}) {
					return
				}
				if s.alertSink != nil && alerting && (tr.To == mvg.AlertFiring || tr.To == mvg.AlertResolved) {
					s.alertSink.Deliver(mvg.AlertEvent{
						Model: name, Trigger: tr.Trigger,
						From: tr.From.String(), To: tr.To.String(),
						Sample: tr.Sample + 1, Value: tr.Value, At: time.Now().UTC(),
					})
				}
			}
		}
	}
}
