package core

import (
	"testing"
	"time"

	"mvg"
	"mvg/internal/serve/servetest"
)

// The shared serving fixture lives in servetest so core, httpapi and
// grpcapi train the test model at most once each per binary; these shims
// keep the test bodies on the short local names.
const testSeriesLen = servetest.SeriesLen

func testModel(t *testing.T) *mvg.Model { return servetest.Model(t) }

func testInputs(n int, seed int64) [][]float64 { return servetest.Inputs(n, seed) }

func requireSameRow(t *testing.T, want, got []float64) {
	t.Helper()
	servetest.RequireSameRow(t, want, got)
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}
