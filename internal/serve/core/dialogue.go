package core

import (
	"context"
	"errors"
	"strings"
	"sync"
	"time"

	"mvg"
	"mvg/internal/faults"
	"mvg/internal/serve/session"
)

// A stream dialogue is the transport-agnostic half of the /stream
// endpoint and the StreamPredict rpc: samples go in one at a time, and
// every time the model's sliding window crosses a hop boundary a
// prediction event comes out, optionally interleaved with alert state
// transitions. The HTTP codec speaks it as NDJSON lines, the gRPC codec
// as StreamResponse frames; both feed the same Dialogue, so the numeric
// payloads — proba rows, drift scores, alert values — are identical
// bit-for-bit across transports. See docs/streaming.md for the protocol.

// StreamPrediction is one prediction event. Exported (with the NDJSON
// field names) because `mvgcli stream` speaks the identical protocol:
// sharing the type is what keeps the two from drifting.
type StreamPrediction struct {
	Sample int       `json:"sample"`
	Class  int       `json:"class"`
	Proba  []float64 `json:"proba"`
	// Drift is the window's drift/novelty score; present whenever the
	// model carries a drift baseline (docs/alerting.md#drift-score).
	Drift *float64 `json:"drift,omitempty"`
}

// StreamAlertEvent is one alert state transition, interleaved with the
// prediction events right after the prediction that caused it. Sample
// uses the same samples-consumed convention as prediction events.
type StreamAlertEvent struct {
	Alert  string  `json:"alert"` // trigger name
	From   string  `json:"from"`
	To     string  `json:"to"`
	Sample int     `json:"sample"`
	Value  float64 `json:"value"`
}

// StreamDone is the terminal event of a clean dialogue; it always carries
// samples and predictions, even when zero.
type StreamDone struct {
	Done        bool `json:"done"`
	Samples     int  `json:"samples"`
	Predictions int  `json:"predictions"`
	// Draining is set when the server closed the dialogue as part of a
	// graceful drain (SIGTERM): the stream ended cleanly, but not because
	// the client finished — reconnect to another replica to continue.
	Draining bool `json:"draining,omitempty"`
}

// StreamEvent is one dialogue output: exactly one of Prediction or Alert
// is set.
type StreamEvent struct {
	Prediction *StreamPrediction
	Alert      *StreamAlertEvent
}

// DialogueConfig opens a stream dialogue.
type DialogueConfig struct {
	// Model is the registry name to stream against.
	Model string
	// Hop is the prediction stride in samples (the codecs default it to 1
	// before calling; the model validates it).
	Hop int
	// Alerts are raw trigger specs (docs/alerting.md#trigger-specs); the
	// codec passes each spec or spec-group through and they are joined
	// with ';' here.
	Alerts []string
	// Tenant is the resolved quota key (TenantKey).
	Tenant string
}

// Dialogue is one live stream: a model stream, its session-registry slot,
// and the alert/metrics accounting around them. It is not safe for
// concurrent use — one goroutine pushes samples (RunDialogue).
type Dialogue struct {
	engine   *Engine
	name     string
	stream   *mvg.Stream
	sess     *session.Session
	alerting bool
	preds    int
	closeFn  sync.Once
}

// OpenDialogue validates the stream parameters, arms any alert triggers,
// and claims a session slot — in that order, so a malformed request costs
// no quota. Failures are typed: unknown model → 404/NOT_FOUND, bad hop or
// trigger spec → 400/INVALID_ARGUMENT, draining → 503/UNAVAILABLE, quota
// → 429/RESOURCE_EXHAUSTED (counted with the predict sheds).
func (e *Engine) OpenDialogue(cfg DialogueConfig) (*Dialogue, error) {
	m, err := e.Model(cfg.Model)
	if err != nil {
		return nil, err
	}
	stream, err := m.NewStream(cfg.Hop)
	if err != nil {
		return nil, err
	}
	alerting := false
	if specs := strings.Join(cfg.Alerts, ";"); specs != "" {
		triggers, err := mvg.ParseAlertTriggers(specs)
		if err != nil {
			return nil, err
		}
		if err := stream.SetAlerts(triggers...); err != nil {
			return nil, err
		}
		alerting = true
		for _, tr := range stream.AlertTriggers() {
			e.metrics.AlertStreamStarted(tr.Name)
		}
	}
	d := &Dialogue{engine: e, name: cfg.Model, stream: stream, alerting: alerting}

	// Claim the session slot last: this is where the global stream ceiling
	// and the per-tenant quota are enforced, and what graceful drain
	// broadcasts through.
	sess, err := e.sessions.Open(cfg.Tenant)
	if err != nil {
		d.endAlertGauges()
		if errors.Is(err, session.ErrDraining) {
			return nil, Errorf(StatusUnavailable, "%v", err)
		}
		// Server limit or tenant quota: a deterministic load rejection,
		// counted with the predict sheds.
		e.metrics.Shed()
		serr := Errorf(StatusShed, "%v: try again in %v", err, e.retryAfter)
		serr.RetryAfter = e.retryAfter
		return nil, serr
	}
	d.sess = sess
	e.metrics.StreamStarted()
	return d, nil
}

// Done is closed when the engine asks the dialogue to finish (drain).
func (d *Dialogue) Done() <-chan struct{} { return d.sess.Done() }

// Pushed reports the number of samples consumed so far.
func (d *Dialogue) Pushed() int { return d.stream.Pushed() }

// DoneEvent builds the terminal event for the dialogue's current state.
func (d *Dialogue) DoneEvent(draining bool) StreamDone {
	return StreamDone{Done: true, Samples: d.stream.Pushed(), Predictions: d.preds, Draining: draining}
}

// Close releases the session slot and the metrics gauges. Idempotent;
// RunDialogue calls it, and codecs may defer it as a safety net.
func (d *Dialogue) Close() {
	d.closeFn.Do(func() {
		if d.sess != nil {
			d.sess.Close()
			d.engine.metrics.StreamEnded()
		}
		d.endAlertGauges()
	})
}

// endAlertGauges closes out the live-stream alert gauges: whatever state
// each trigger ends in, this dialogue stops contributing to it.
func (d *Dialogue) endAlertGauges() {
	if !d.alerting {
		return
	}
	for _, st := range d.stream.Alerts() {
		d.engine.metrics.AlertStreamEnded(st.Name, st.State.String())
	}
}

// Push consumes one sample and returns the events it produced: none while
// the window fills or between hop boundaries, otherwise one prediction
// followed by any alert transitions it caused. FIRING/RESOLVED
// transitions are also delivered to the engine's alert sink. Errors are
// typed by the shared status table (non-finite sample → bad request).
func (d *Dialogue) Push(ctx context.Context, x float64) ([]StreamEvent, error) {
	e := d.engine
	ready, err := d.stream.Push(x)
	if err != nil {
		return nil, err
	}
	if !ready {
		return nil, nil
	}
	if err := e.faults.Fire(ctx, faults.PointStreamPredict); err != nil {
		return nil, err
	}
	pt, err := d.stream.PredictAlert(ctx)
	if err != nil {
		return nil, err
	}
	d.preds++
	pred := &StreamPrediction{Sample: d.stream.Pushed(), Class: pt.Class, Proba: pt.Proba}
	if pt.HasDrift {
		pred.Drift = &pt.Drift
	}
	events := make([]StreamEvent, 0, 1+len(pt.Transitions))
	events = append(events, StreamEvent{Prediction: pred})
	for _, tr := range pt.Transitions {
		e.metrics.AlertTransition(tr.Trigger, tr.From.String(), tr.To.String())
		// The wire and webhook sample convention is samples-consumed,
		// matching prediction events; the library's Transition carries
		// the window-closing sample index, one less.
		events = append(events, StreamEvent{Alert: &StreamAlertEvent{
			Alert: tr.Trigger, From: tr.From.String(), To: tr.To.String(),
			Sample: tr.Sample + 1, Value: tr.Value,
		}})
		if e.alertSink != nil && d.alerting && (tr.To == mvg.AlertFiring || tr.To == mvg.AlertResolved) {
			e.alertSink.Deliver(mvg.AlertEvent{
				Model: d.name, Trigger: tr.Trigger,
				From: tr.From.String(), To: tr.To.String(),
				Sample: tr.Sample + 1, Value: tr.Value, At: time.Now().UTC(),
			})
		}
	}
	return events, nil
}

// Samples is one unit of inbound work a transport hands to RunDialogue: a
// chunk of parsed sample values, or a terminal (already typed) read
// error. The zero-value chunk is a no-op.
type Samples struct {
	Values []float64
	Err    error
}

// DialogueIO is the transport half of a running dialogue. Samples is the
// inbound channel, closed at the client's clean end of stream; Emit and
// EmitDone deliver events (an Emit error ends the dialogue silently —
// the transport already knows its own write failed); EmitError delivers
// the terminal failure using the transport's error convention.
type DialogueIO interface {
	Samples() <-chan Samples
	Emit(ev StreamEvent) error
	EmitDone(done StreamDone) error
	EmitError(err error)
}

// RunDialogue pumps io's samples through d until end of stream, a
// terminal error, a graceful drain, or the idle deadline — the one
// dialogue loop both codecs share, so eviction policy and drain
// semantics cannot differ between transports. It closes d before
// returning.
func (e *Engine) RunDialogue(ctx context.Context, d *Dialogue, io DialogueIO) {
	defer d.Close()

	var idleTimer *time.Timer
	var idleC <-chan time.Time
	if e.streamIdle > 0 {
		idleTimer = time.NewTimer(e.streamIdle)
		defer idleTimer.Stop()
		idleC = idleTimer.C
	}

	for {
		select {
		case <-ctx.Done():
			io.EmitError(ctx.Err())
			return
		case <-d.Done():
			// Graceful drain: close the dialogue cleanly so the client
			// knows everything sent so far was processed.
			_ = io.EmitDone(d.DoneEvent(true))
			return
		case <-idleC:
			e.metrics.StreamEvicted(EvictIdle)
			io.EmitError(Errorf(StatusEvicted,
				"stream evicted: no sample received within the %v idle deadline", e.streamIdle))
			return
		case chunk, ok := <-io.Samples():
			if !ok {
				_ = io.EmitDone(d.DoneEvent(false))
				return
			}
			if chunk.Err != nil {
				io.EmitError(chunk.Err)
				return
			}
			if idleTimer != nil {
				if !idleTimer.Stop() {
					select {
					case <-idleC:
					default:
					}
				}
				idleTimer.Reset(e.streamIdle)
			}
			for _, x := range chunk.Values {
				events, err := d.Push(ctx, x)
				if err != nil {
					io.EmitError(err)
					return
				}
				for _, ev := range events {
					if io.Emit(ev) != nil {
						return
					}
				}
			}
		}
	}
}
