package core

import (
	"context"
	"errors"
	"testing"
)

// TestLimiterUnit pins the limiter's three-zone behavior: run, queue,
// shed — and that released slots are reusable.
func TestLimiterUnit(t *testing.T) {
	l := newLimiter(1, 1)
	rel1, err := l.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Second caller parks in the queue.
	queued := make(chan error, 1)
	var rel2 func()
	go func() {
		var err error
		rel2, err = l.acquire(context.Background())
		queued <- err
	}()
	waitUntil(t, "second caller to queue", func() bool { _, q := l.depth(); return q == 1 })

	// Third caller is shed immediately.
	if _, err := l.acquire(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("third acquire = %v, want ErrShed", err)
	}
	if !l.saturated() {
		t.Fatal("limiter should report saturated with full slot and queue")
	}

	// A queued caller's deadline fires while waiting.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := l.acquire(ctx); err == nil || errors.Is(err, ErrShed) {
		// Shed is allowed only if the queue is still full; with queue=1
		// occupied it must shed. Accept either shed or ctx error — both
		// are bounded-time rejections.
		if err == nil {
			t.Fatal("cancelled acquire succeeded")
		}
	}

	rel1()
	if err := <-queued; err != nil {
		t.Fatalf("queued acquire = %v", err)
	}
	rel2()
	if inF, q := l.depth(); inF != 0 || q != 0 {
		t.Fatalf("depth after release = (%d,%d), want (0,0)", inF, q)
	}
	if l.saturated() {
		t.Fatal("drained limiter reports saturated")
	}

	// Disabled limiter admits everything.
	var nilL *limiter
	rel, err := nilL.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel()
	if nilL.saturated() {
		t.Fatal("nil limiter reports saturated")
	}
}
