package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"mvg"
	"mvg/internal/grpcx"
)

// StatusClientClosedRequest is the nginx convention for "the client went
// away before the response was ready" — the status a cancelled request
// context maps to. The client never sees it; it exists for access logs
// and metrics, where it keeps abandoned requests out of the 5xx error
// rate.
const StatusClientClosedRequest = 499

// Status is the transport mapping of one error class: the HTTP status
// code and the gRPC status code a failure surfaces as. Both codecs render
// from this one table (docs/serving.md#status-mapping), which is what
// keeps a failure's meaning identical across transports — a shed is
// always retryable, a shape mismatch is always the caller's bug, no
// matter how the request arrived.
type Status struct {
	HTTP int
	GRPC grpcx.Code
}

// The shared status table. Every serving-path failure maps onto exactly
// one of these rows.
var (
	// StatusOK is the success row (present for table completeness).
	StatusOK = Status{HTTP: 200, GRPC: grpcx.OK}
	// StatusBadRequest: the caller's request is malformed — wrong series
	// length, bad config, non-finite sample, unready stream, bad trigger
	// spec. Retrying unchanged will fail identically.
	StatusBadRequest = Status{HTTP: 400, GRPC: grpcx.InvalidArgument}
	// StatusNotFound: the named model is not in the registry.
	StatusNotFound = Status{HTTP: 404, GRPC: grpcx.NotFound}
	// StatusShed: admission control or a stream quota rejected the request
	// before any model work; safe to retry after the hint.
	StatusShed = Status{HTTP: 429, GRPC: grpcx.ResourceExhausted}
	// StatusEvicted: the server evicted an idle stream dialogue.
	StatusEvicted = Status{HTTP: 408, GRPC: grpcx.DeadlineExceeded}
	// StatusClientGone: the client cancelled; nobody is listening for the
	// response.
	StatusClientGone = Status{HTTP: StatusClientClosedRequest, GRPC: grpcx.Canceled}
	// StatusUnavailable: the server cannot serve right now — draining,
	// closed, or past its own request deadline. Retry another replica.
	StatusUnavailable = Status{HTTP: 503, GRPC: grpcx.Unavailable}
	// StatusInternal: a server-side fault.
	StatusInternal = Status{HTTP: 500, GRPC: grpcx.Internal}
)

// Error is a serving-layer error carrying its transport mapping, and
// optionally a retry hint (429/503 responses advertise it as Retry-After
// over HTTP).
type Error struct {
	Status     Status
	RetryAfter time.Duration // zero = no hint
	msg        string
}

func (e *Error) Error() string { return e.msg }

// Errorf builds a typed serving error.
func Errorf(st Status, format string, args ...any) *Error {
	return &Error{Status: st, msg: fmt.Sprintf(format, args...)}
}

// StatusOf maps any serving-path error onto the shared table: explicit
// *Errors keep their row, the public mvg error taxonomy (docs/api.md)
// distinguishes caller mistakes (shape/length/config problems → bad
// request) from server faults, a closed coalescer or pipeline means the
// server is going away, and a done request context means the client is.
func StatusOf(err error) Status {
	var se *Error
	switch {
	case err == nil:
		return StatusOK
	case errors.As(err, &se):
		return se.Status
	case errors.Is(err, ErrShed):
		return StatusShed
	case errors.Is(err, ErrCoalescerClosed), errors.Is(err, mvg.ErrPipelineClosed):
		return StatusUnavailable
	case errors.Is(err, mvg.ErrShapeMismatch),
		errors.Is(err, mvg.ErrSeriesTooShort),
		errors.Is(err, mvg.ErrBadConfig),
		errors.Is(err, mvg.ErrNonFiniteSample),
		errors.Is(err, mvg.ErrStreamNotReady),
		errors.Is(err, mvg.ErrBadAlertTrigger),
		errors.Is(err, mvg.ErrNoDriftBaseline):
		return StatusBadRequest
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return StatusClientGone
	}
	return StatusInternal
}

// RetryHint extracts the retry-after hint from a typed error, or zero.
func RetryHint(err error) time.Duration {
	var se *Error
	if errors.As(err, &se) {
		return se.RetryAfter
	}
	return 0
}
