package core

import "net"

// Tenant identification is uniform across transports: the same logical
// tenant key must land on the same quota bucket whether the stream
// arrived over HTTP, over gRPC, or through mvgproxy. These are the three
// carrier names, resolved by TenantKey in one place so the transports
// cannot drift.
const (
	// TenantParam is the HTTP query parameter (?tenant=...).
	TenantParam = "tenant"
	// TenantHeader is the HTTP header mvgproxy forwards the resolved
	// tenant under, so the backend accounts the originating client rather
	// than the proxy's own address.
	TenantHeader = "X-Mvg-Tenant"
	// TenantMetadataKey is the gRPC metadata key carrying the tenant.
	TenantMetadataKey = "mvg-tenant"
)

// TenantKey resolves the quota key a stream is accounted under: the first
// non-empty explicit source wins (callers pass the query parameter,
// forwarded header, or gRPC metadata value in precedence order), falling
// back to the client host of remoteAddr — good enough to stop one
// misbehaving host from monopolising the stream table.
func TenantKey(remoteAddr string, explicit ...string) string {
	for _, t := range explicit {
		if t != "" {
			return t
		}
	}
	host, _, err := net.SplitHostPort(remoteAddr)
	if err != nil {
		return remoteAddr
	}
	return host
}
