package core

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRegistryRoundTrip is the persistence round-trip required by the
// serving layer: a model saved to disk and reloaded through the registry
// must produce bit-identical PredictProba output to the in-memory model.
func TestRegistryRoundTrip(t *testing.T) {
	model := testModel(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "demo"+ModelExt)
	if err := model.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	reg := NewRegistry()
	names, err := reg.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "demo" {
		t.Fatalf("LoadDir names = %v, want [demo]", names)
	}
	loaded, ok := reg.Get("demo")
	if !ok || loaded == nil {
		t.Fatal("demo not registered")
	}

	inputs := testInputs(8, 2)
	want, err := model.PredictProba(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.PredictProba(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		requireSameRow(t, want[i], got[i])
	}
}

func TestRegistryList(t *testing.T) {
	model := testModel(t)
	reg := NewRegistry()
	reg.Register("b", model, "")
	reg.Register("a", model, "/tmp/a.mvg")

	infos := reg.List()
	if len(infos) != 2 || infos[0].Name != "a" || infos[1].Name != "b" {
		t.Fatalf("List order = %+v, want a then b", infos)
	}
	a := infos[0]
	if a.Classes != 2 || a.SeriesLen != testSeriesLen || a.Source != "/tmp/a.mvg" {
		t.Errorf("metadata wrong: %+v", a)
	}
	if a.Features == 0 || a.Features != len(a.FeatureNames) {
		t.Errorf("feature metadata wrong: %d features, %d names", a.Features, len(a.FeatureNames))
	}
	if !strings.HasPrefix(a.FeatureNames[0], "T0.") {
		t.Errorf("first feature name = %q", a.FeatureNames[0])
	}
}

func TestRegistryLoadDirErrors(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.LoadDir(t.TempDir()); err == nil {
		t.Error("empty dir should fail")
	}
	if _, err := reg.LoadDir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing dir should fail")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad"+ModelExt), []byte("not a model"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.LoadDir(dir); err == nil {
		t.Error("corrupt model file should fail")
	}
}

func TestRegistryReload(t *testing.T) {
	model := testModel(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "demo"+ModelExt)
	if err := model.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	if _, err := reg.LoadDir(dir); err != nil {
		t.Fatal(err)
	}

	before, _ := reg.Get("demo")
	before.SetWorkers(3)
	if err := reg.Reload("demo"); err != nil {
		t.Fatal(err)
	}
	after, _ := reg.Get("demo")
	if after == before {
		t.Error("Reload did not swap the model pointer")
	}
	// The worker setting survives the swap.
	if after.Workers() != 3 {
		t.Errorf("Workers after reload = %d, want 3", after.Workers())
	}
	// The old snapshot keeps serving callers that hold it.
	inputs := testInputs(2, 3)
	want, err := before.PredictProba(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := after.PredictProba(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		requireSameRow(t, want[i], got[i])
	}

	if err := reg.Reload("ghost"); err == nil {
		t.Error("reloading an unknown model should fail")
	}
	reg.Register("inmem", model, "")
	if err := reg.Reload("inmem"); err == nil {
		t.Error("reloading a file-less model should fail")
	}
	// A corrupted file fails the reload but keeps the old model serving.
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := reg.Reload("demo"); err == nil {
		t.Error("reloading a corrupt file should fail")
	}
	still, ok := reg.Get("demo")
	if !ok || still != after {
		t.Error("failed reload must leave the previous model in place")
	}
}
