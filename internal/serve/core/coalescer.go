package core

import (
	"context"
	"errors"
	"sync"
	"time"

	"mvg"
)

// ErrCoalescerClosed is returned by Coalescer.Predict after Close: the
// server is draining and no longer accepts work.
var ErrCoalescerClosed = errors.New("serve: coalescer closed")

// DefaultWindow and DefaultMaxBatch are the coalescing defaults used when
// CoalescerConfig leaves them zero. The 2ms window is small against the
// per-series extraction cost it amortizes; 64 matches the batch size
// BenchmarkExtractBatch pins the engine's throughput on.
const (
	DefaultWindow   = 2 * time.Millisecond
	DefaultMaxBatch = 64
)

// Coalescer merges concurrent single-series prediction requests into
// batches for one model, so the parallel engine's per-batch scratch reuse
// is amortized across HTTP clients. A batch is flushed when the first
// request in it has waited Window, or when MaxBatch requests are pending,
// whichever comes first. Each caller gets back exactly the
// class-probability row for its own series.
//
// Determinism contract: feature extraction and classification are pure
// per-series functions (docs/concurrency.md), so the row a request
// receives from a coalesced PredictProba call is byte-identical to the
// row a standalone single-series call would return. Coalescing is
// therefore invisible to clients except through latency; the stress test
// in coalescer_test.go pins this.
type Coalescer struct {
	window   time.Duration
	maxBatch int
	source   func() (*mvg.Model, error)
	observe  func(batchSize int)

	reqs chan coalRequest

	mu     sync.RWMutex // guards closed and the reqs channel close
	closed bool

	inFlight sync.WaitGroup // running batch predictions
	done     chan struct{}  // run loop exited
}

type coalRequest struct {
	ctx    context.Context // the submitting request's context
	series []float64
	out    chan coalResult
}

type coalResult struct {
	proba []float64
	err   error
}

// CoalescerConfig configures NewCoalescer.
type CoalescerConfig struct {
	// Window is the maximum time the first request of a batch waits for
	// company before the batch is flushed (default DefaultWindow).
	Window time.Duration
	// MaxBatch flushes a batch as soon as this many requests are pending
	// (default DefaultMaxBatch).
	MaxBatch int
	// Observe, if set, is called with the size of every flushed batch
	// (wired to Metrics.ObserveBatch by the server).
	Observe func(batchSize int)
}

// NewCoalescer starts a coalescer whose batches predict on the model
// returned by source. source is consulted at flush time, not submit time,
// so a registry Reload between enqueue and flush serves the batch on the
// freshest model.
func NewCoalescer(source func() (*mvg.Model, error), cfg CoalescerConfig) *Coalescer {
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	c := &Coalescer{
		window:   cfg.Window,
		maxBatch: cfg.MaxBatch,
		source:   source,
		observe:  cfg.Observe,
		reqs:     make(chan coalRequest, 4*cfg.MaxBatch),
		done:     make(chan struct{}),
	}
	go c.run()
	return c
}

// Predict submits one series and blocks until its probability row is
// available, the context is cancelled, or the coalescer is closed. The
// context travels with the request: a caller that cancels before its
// batch flushes (a client disconnecting inside the coalescing window) has
// its slot dropped at flush time, so abandoned requests never cost a
// prediction.
func (c *Coalescer) Predict(ctx context.Context, series []float64) ([]float64, error) {
	req := coalRequest{ctx: ctx, series: series, out: make(chan coalResult, 1)}

	// Holding the read lock across the send pairs with Close's write lock:
	// once Close observes the lock free and sets closed, no sender can be
	// mid-enqueue, so closing c.reqs below never races a send.
	c.mu.RLock()
	if c.closed {
		c.mu.RUnlock()
		return nil, ErrCoalescerClosed
	}
	select {
	case c.reqs <- req:
		c.mu.RUnlock()
	case <-ctx.Done():
		c.mu.RUnlock()
		return nil, ctx.Err()
	}

	select {
	case res := <-req.out:
		return res.proba, res.err
	case <-ctx.Done():
		// The slot is dropped when its batch flushes (predictBatch checks
		// req.ctx); the buffered out channel lets the flush goroutine
		// deliver the cancellation notice without blocking on the departed
		// caller.
		return nil, ctx.Err()
	}
}

// Close stops accepting requests, flushes the pending batch, waits for
// every in-flight batch prediction to deliver its results, and returns.
// Requests accepted before Close always receive a result — this is the
// drain mvgserve runs on SIGTERM. Close is idempotent.
func (c *Coalescer) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		<-c.done
		return
	}
	c.closed = true
	close(c.reqs)
	c.mu.Unlock()
	<-c.done
}

// run is the dispatch loop: it owns the pending slice and decides when to
// flush. Batches predict on their own goroutines so a slow prediction
// never blocks the assembly of the next batch.
func (c *Coalescer) run() {
	defer close(c.done)
	var (
		pending []coalRequest
		timer   *time.Timer
		timeout <-chan time.Time
	)
	flush := func() {
		if len(pending) == 0 {
			return
		}
		batch := pending
		pending = nil
		timeout = nil
		c.inFlight.Add(1)
		go func() {
			defer c.inFlight.Done()
			c.predictBatch(batch)
		}()
	}
	// disarm stops the timer and drains a concurrently-delivered fire, so
	// a reused timer channel never holds a stale tick that would flush the
	// next batch prematurely.
	disarm := func() {
		if timer != nil && !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
	}
	for {
		select {
		case req, ok := <-c.reqs:
			if !ok {
				disarm()
				flush()
				c.inFlight.Wait()
				return
			}
			pending = append(pending, req)
			if len(pending) >= c.maxBatch {
				disarm()
				flush()
			} else if len(pending) == 1 {
				if timer == nil {
					timer = time.NewTimer(c.window)
				} else {
					timer.Reset(c.window)
				}
				timeout = timer.C
			}
		case <-timeout:
			flush()
		}
	}
}

// predictBatch runs one coalesced batch and fans results (or errors) back
// to each caller. Requests whose context was cancelled while the batch
// was assembling are dropped here, before any model work: the caller has
// already stopped waiting (its Predict returned ctx.Err()), so computing
// its row would only burn CPU. A batch whose every slot was abandoned
// skips the model entirely.
func (c *Coalescer) predictBatch(batch []coalRequest) {
	live := batch[:0]
	for _, req := range batch {
		if err := req.ctx.Err(); err != nil {
			req.out <- coalResult{err: err}
			continue
		}
		live = append(live, req)
	}
	batch = live
	if len(batch) == 0 {
		return
	}
	if c.observe != nil {
		c.observe(len(batch))
	}
	model, err := c.source()
	if err != nil {
		for _, req := range batch {
			req.out <- coalResult{err: err}
		}
		return
	}
	// Re-validate lengths against the flush-time model: handlers validated
	// against a submit-time snapshot, and a reload in between may have
	// changed SeriesLen. Only the mismatching requests fail; the rest of
	// the batch predicts normally.
	want := model.SeriesLen()
	series := make([][]float64, 0, len(batch))
	idx := make([]int, 0, len(batch))
	for i, req := range batch {
		if len(req.series) != want {
			req.out <- coalResult{err: Errorf(StatusBadRequest,
				"series has %d points, model expects %d (model reloaded?)", len(req.series), want)}
			continue
		}
		series = append(series, req.series)
		idx = append(idx, i)
	}
	if len(series) == 0 {
		return
	}
	// The batch predicts under its own background context: the work is
	// shared by every surviving caller, so one caller's cancellation must
	// not abort the others' rows. Individual departures were already
	// handled above.
	proba, err := model.PredictProba(context.Background(), series)
	if err == nil && len(proba) != len(series) {
		err = errors.New("serve: model returned wrong row count")
	}
	for k, i := range idx {
		if err != nil {
			batch[i].out <- coalResult{err: err}
			continue
		}
		batch[i].out <- coalResult{proba: proba[k]}
	}
}
