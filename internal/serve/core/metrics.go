package core

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Metrics aggregates the server's operational counters and exposes them in
// the Prometheus text format on GET /metrics. It has no external
// dependencies: counters are plain atomics, histograms are fixed-bucket
// arrays behind a mutex. A zero-value-like Metrics from NewMetrics is safe
// for concurrent use by every handler and coalescer.
type Metrics struct {
	inFlight atomic.Int64

	mu       sync.Mutex
	requests map[requestKey]uint64
	latency  histogram
	batch    histogram

	// Alerting observability: how many live alerting streams sit in each
	// (trigger, state) cell, and how many transitions each trigger has made
	// into each destination state. Keys are trigger names, which the alert
	// package restricts to a Prometheus-label-safe charset.
	alertState       map[alertKey]int64
	alertTransitions map[alertKey]uint64

	coalescedBatches  atomic.Uint64
	coalescedRequests atomic.Uint64

	// Overload-safety counters (docs/robustness.md): requests shed by the
	// admission limiter, requests that hit the server's own deadline, and
	// streams evicted by reason. The eviction map is pre-seeded with the
	// known reasons so the time series exist (at zero) from the first
	// scrape — monotonicity checks and dashboards need the line present
	// before the first eviction, not after.
	shedTotal           atomic.Uint64
	requestTimeoutTotal atomic.Uint64
	activeStreams       atomic.Int64
	streamEvicted       map[string]uint64 // guarded by mu
}

type requestKey struct {
	route string
	code  int
}

type alertKey struct {
	trigger string
	state   string // current state (gauge) or destination state (counter)
}

// histogram is a fixed-bucket cumulative histogram (Prometheus semantics:
// bucket i counts observations ≤ bounds[i], plus an implicit +Inf bucket).
type histogram struct {
	bounds []float64
	counts []uint64 // len(bounds)+1; last is +Inf
	sum    float64
	total  uint64
}

func newHistogram(bounds []float64) histogram {
	return histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

func (h *histogram) observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.total++
}

// NewMetrics returns a Metrics with latency buckets spanning 100µs–10s and
// batch-size buckets aligned with typical coalescing windows.
func NewMetrics() *Metrics {
	return &Metrics{
		requests: make(map[requestKey]uint64),
		latency: newHistogram([]float64{
			0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
			0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
		}),
		batch:            newHistogram([]float64{1, 2, 4, 8, 16, 32, 64, 128, 256}),
		alertState:       make(map[alertKey]int64),
		alertTransitions: make(map[alertKey]uint64),
		streamEvicted:    map[string]uint64{EvictIdle: 0, EvictSlowReader: 0},
	}
}

// Stream eviction reasons (the label values of
// mvgserve_stream_evicted_total).
const (
	// EvictIdle: the stream sent no sample for the idle deadline.
	EvictIdle = "idle"
	// EvictSlowReader: the client stopped reading and a write deadline
	// expired with the response buffer full.
	EvictSlowReader = "slow_reader"
)

// Shed counts one request rejected by the admission limiter (429).
func (m *Metrics) Shed() { m.shedTotal.Add(1) }

// ShedTotal reports the number of shed requests so far.
func (m *Metrics) ShedTotal() uint64 { return m.shedTotal.Load() }

// RequestTimeout counts one request that hit the server's own deadline
// (503 via -request-timeout).
func (m *Metrics) RequestTimeout() { m.requestTimeoutTotal.Add(1) }

// RequestTimeoutTotal reports the number of server-deadline timeouts.
func (m *Metrics) RequestTimeoutTotal() uint64 { return m.requestTimeoutTotal.Load() }

// StreamStarted/StreamEnded maintain the live-stream gauge; the handler
// calls them around each registered NDJSON dialogue.
func (m *Metrics) StreamStarted() { m.activeStreams.Add(1) }

// StreamEnded is StreamStarted's closing bracket.
func (m *Metrics) StreamEnded() { m.activeStreams.Add(-1) }

// ActiveStreams reports the number of live NDJSON stream dialogues.
func (m *Metrics) ActiveStreams() int64 { return m.activeStreams.Load() }

// StreamEvicted counts one stream terminated by the server for reason
// (EvictIdle, EvictSlowReader).
func (m *Metrics) StreamEvicted(reason string) {
	m.mu.Lock()
	m.streamEvicted[reason]++
	m.mu.Unlock()
}

// StreamEvictedTotal reports the eviction count for one reason.
func (m *Metrics) StreamEvictedTotal(reason string) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.streamEvicted[reason]
}

// AlertStreamStarted records a new alerting stream's trigger entering the
// OK state; call once per trigger when the stream's evaluator is armed.
func (m *Metrics) AlertStreamStarted(trigger string) {
	m.mu.Lock()
	m.alertState[alertKey{trigger, "OK"}]++
	m.mu.Unlock()
}

// AlertStreamEnded removes a finished stream's trigger from the state
// gauge; state is the trigger's final state.
func (m *Metrics) AlertStreamEnded(trigger, state string) {
	m.mu.Lock()
	m.alertState[alertKey{trigger, state}]--
	m.mu.Unlock()
}

// AlertTransition moves one trigger between states in the gauge and counts
// the transition by destination.
func (m *Metrics) AlertTransition(trigger, from, to string) {
	m.mu.Lock()
	m.alertState[alertKey{trigger, from}]--
	m.alertState[alertKey{trigger, to}]++
	m.alertTransitions[alertKey{trigger, to}]++
	m.mu.Unlock()
}

// RequestStarted increments the in-flight gauge and returns a completion
// callback recording the request's route, status code and latency.
func (m *Metrics) RequestStarted() func(route string, code int, seconds float64) {
	m.inFlight.Add(1)
	return func(route string, code int, seconds float64) {
		m.inFlight.Add(-1)
		m.mu.Lock()
		m.requests[requestKey{route, code}]++
		m.latency.observe(seconds)
		m.mu.Unlock()
	}
}

// ObserveBatch records one coalesced batch of the given size.
func (m *Metrics) ObserveBatch(size int) {
	m.coalescedBatches.Add(1)
	m.coalescedRequests.Add(uint64(size))
	m.mu.Lock()
	m.batch.observe(float64(size))
	m.mu.Unlock()
}

// InFlight reports the number of HTTP requests currently being served.
func (m *Metrics) InFlight() int64 { return m.inFlight.Load() }

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4), the format scraped by GET /metrics.
func (m *Metrics) WritePrometheus(w io.Writer) {
	fmt.Fprintf(w, "# HELP mvgserve_in_flight_requests HTTP requests currently being served.\n")
	fmt.Fprintf(w, "# TYPE mvgserve_in_flight_requests gauge\n")
	fmt.Fprintf(w, "mvgserve_in_flight_requests %d\n", m.inFlight.Load())

	fmt.Fprintf(w, "# HELP mvgserve_coalesced_batches_total Prediction batches flushed by the coalescer.\n")
	fmt.Fprintf(w, "# TYPE mvgserve_coalesced_batches_total counter\n")
	fmt.Fprintf(w, "mvgserve_coalesced_batches_total %d\n", m.coalescedBatches.Load())

	fmt.Fprintf(w, "# HELP mvgserve_coalesced_requests_total Single-series requests served through coalesced batches.\n")
	fmt.Fprintf(w, "# TYPE mvgserve_coalesced_requests_total counter\n")
	fmt.Fprintf(w, "mvgserve_coalesced_requests_total %d\n", m.coalescedRequests.Load())

	fmt.Fprintf(w, "# HELP mvgserve_shed_total Requests rejected by the admission limiter (429).\n")
	fmt.Fprintf(w, "# TYPE mvgserve_shed_total counter\n")
	fmt.Fprintf(w, "mvgserve_shed_total %d\n", m.shedTotal.Load())

	fmt.Fprintf(w, "# HELP mvgserve_request_timeout_total Requests that exceeded the server request deadline (503).\n")
	fmt.Fprintf(w, "# TYPE mvgserve_request_timeout_total counter\n")
	fmt.Fprintf(w, "mvgserve_request_timeout_total %d\n", m.requestTimeoutTotal.Load())

	fmt.Fprintf(w, "# HELP mvgserve_active_streams Live NDJSON stream dialogues.\n")
	fmt.Fprintf(w, "# TYPE mvgserve_active_streams gauge\n")
	fmt.Fprintf(w, "mvgserve_active_streams %d\n", m.activeStreams.Load())

	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintf(w, "# HELP mvgserve_stream_evicted_total Streams terminated by the server, by reason.\n")
	fmt.Fprintf(w, "# TYPE mvgserve_stream_evicted_total counter\n")
	reasons := make([]string, 0, len(m.streamEvicted))
	for reason := range m.streamEvicted {
		reasons = append(reasons, reason)
	}
	sort.Strings(reasons)
	for _, reason := range reasons {
		fmt.Fprintf(w, "mvgserve_stream_evicted_total{reason=%q} %d\n", reason, m.streamEvicted[reason])
	}

	fmt.Fprintf(w, "# HELP mvgserve_requests_total HTTP requests by route and status code.\n")
	fmt.Fprintf(w, "# TYPE mvgserve_requests_total counter\n")
	keys := make([]requestKey, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].route != keys[j].route {
			return keys[i].route < keys[j].route
		}
		return keys[i].code < keys[j].code
	})
	for _, k := range keys {
		fmt.Fprintf(w, "mvgserve_requests_total{route=%q,code=\"%d\"} %d\n", k.route, k.code, m.requests[k])
	}

	fmt.Fprintf(w, "# HELP mvgserve_alert_state Live alerting streams in each state, by trigger.\n")
	fmt.Fprintf(w, "# TYPE mvgserve_alert_state gauge\n")
	for _, k := range sortedAlertKeys(m.alertState) {
		fmt.Fprintf(w, "mvgserve_alert_state{trigger=%q,state=%q} %d\n", k.trigger, k.state, m.alertState[k])
	}

	fmt.Fprintf(w, "# HELP mvgserve_alert_transitions_total Alert state transitions, by trigger and destination state.\n")
	fmt.Fprintf(w, "# TYPE mvgserve_alert_transitions_total counter\n")
	for _, k := range sortedAlertKeys(m.alertTransitions) {
		fmt.Fprintf(w, "mvgserve_alert_transitions_total{trigger=%q,to=%q} %d\n", k.trigger, k.state, m.alertTransitions[k])
	}

	writeHistogram(w, "mvgserve_request_duration_seconds", "HTTP request latency.", &m.latency)
	writeHistogram(w, "mvgserve_batch_size", "Coalesced batch size distribution.", &m.batch)
}

func sortedAlertKeys[V int64 | uint64](m map[alertKey]V) []alertKey {
	keys := make([]alertKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].trigger != keys[j].trigger {
			return keys[i].trigger < keys[j].trigger
		}
		return keys[i].state < keys[j].state
	})
	return keys
}

func writeHistogram(w io.Writer, name, help string, h *histogram) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, bound, cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.total)
	fmt.Fprintf(w, "%s_sum %g\n", name, h.sum)
	fmt.Fprintf(w, "%s_count %d\n", name, h.total)
}
