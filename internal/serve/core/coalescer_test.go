package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mvg"
)

func modelSource(m *mvg.Model) func() (*mvg.Model, error) {
	return func() (*mvg.Model, error) { return m, nil }
}

// TestCoalescerStress is the acceptance stress test: many goroutines
// hammer the coalescer with single-series requests, and every returned
// probability row must be byte-identical to a sequential single-series
// PredictProba call on the same model. Run under -race (CI always does).
func TestCoalescerStress(t *testing.T) {
	model := testModel(t)
	const distinct, goroutines, perG = 12, 8, 25
	inputs := testInputs(distinct, 4)

	// Sequential reference, one series at a time.
	ref := make([][]float64, distinct)
	for i, s := range inputs {
		rows, err := model.PredictProba(context.Background(), [][]float64{s})
		if err != nil {
			t.Fatal(err)
		}
		ref[i] = rows[0]
	}

	var batches, coalesced atomic.Int64
	c := NewCoalescer(modelSource(model), CoalescerConfig{
		Window:   500 * time.Microsecond,
		MaxBatch: 8,
		Observe: func(size int) {
			batches.Add(1)
			coalesced.Add(int64(size))
		},
	})
	defer c.Close()

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < perG; k++ {
				idx := (g*perG + k) % distinct
				proba, err := c.Predict(context.Background(), inputs[idx])
				if err != nil {
					errs <- err
					return
				}
				for j := range proba {
					if proba[j] != ref[idx][j] {
						errs <- errors.New("coalesced row differs from sequential prediction")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	total := int64(goroutines * perG)
	if coalesced.Load() != total {
		t.Errorf("observed %d coalesced requests, want %d", coalesced.Load(), total)
	}
	if b := batches.Load(); b == 0 || b > total {
		t.Errorf("batches = %d out of %d requests", b, total)
	} else if b == total {
		t.Logf("warning: no coalescing happened (%d batches for %d requests)", b, total)
	} else {
		t.Logf("%d requests coalesced into %d batches", total, b)
	}
}

// TestCoalescerMaxBatchFlush pins the "max-batch, whichever first" rule:
// with an hour-long window, a full batch must still flush immediately.
func TestCoalescerMaxBatchFlush(t *testing.T) {
	model := testModel(t)
	const maxBatch = 4
	c := NewCoalescer(modelSource(model), CoalescerConfig{Window: time.Hour, MaxBatch: maxBatch})
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	inputs := testInputs(maxBatch, 5)
	var wg sync.WaitGroup
	errs := make(chan error, maxBatch)
	for i := 0; i < maxBatch; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Predict(ctx, inputs[i]); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("full batch did not flush before the window: %v", err)
	}
}

// TestCoalescerWindowFlush pins the other side: a lone request must not
// wait for a full batch.
func TestCoalescerWindowFlush(t *testing.T) {
	model := testModel(t)
	c := NewCoalescer(modelSource(model), CoalescerConfig{Window: time.Millisecond, MaxBatch: 64})
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := c.Predict(ctx, testInputs(1, 6)[0]); err != nil {
		t.Fatalf("lone request did not flush on the window: %v", err)
	}
}

// TestCoalescerCloseDrains verifies the SIGTERM drain contract: requests
// accepted before Close get real results, requests after get ErrCoalescerClosed.
func TestCoalescerCloseDrains(t *testing.T) {
	model := testModel(t)
	c := NewCoalescer(modelSource(model), CoalescerConfig{Window: time.Hour, MaxBatch: 64})

	const n = 5
	inputs := testInputs(n, 7)
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Predict(context.Background(), inputs[i]); err != nil {
				errs <- err
			}
		}()
	}
	// Give the requests time to enqueue; the hour-long window guarantees
	// they are still pending when Close runs.
	time.Sleep(100 * time.Millisecond)
	c.Close()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("request accepted before Close got: %v", err)
	}

	if _, err := c.Predict(context.Background(), inputs[0]); !errors.Is(err, ErrCoalescerClosed) {
		t.Fatalf("Predict after Close = %v, want ErrCoalescerClosed", err)
	}
	c.Close() // idempotent
}

// TestCoalescerSourceError fans the model-resolution error back to every
// waiter in the batch.
func TestCoalescerSourceError(t *testing.T) {
	boom := errors.New("model gone")
	c := NewCoalescer(func() (*mvg.Model, error) { return nil, boom }, CoalescerConfig{
		Window: time.Millisecond, MaxBatch: 2,
	})
	defer c.Close()
	series := make([]float64, testSeriesLen)
	if _, err := c.Predict(context.Background(), series); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

// TestCoalescerRevalidatesAtFlush: the coalescer predicts on the model
// resolved at flush time, which may differ from the one the handler
// validated against (hot reload mid-window). A length mismatch must fail
// only the mismatching request — the rest of the batch still predicts.
func TestCoalescerRevalidatesAtFlush(t *testing.T) {
	model := testModel(t)
	c := NewCoalescer(modelSource(model), CoalescerConfig{Window: 50 * time.Millisecond, MaxBatch: 64})
	defer c.Close()

	good := testInputs(1, 9)[0]
	bad := make([]float64, testSeriesLen/2)
	var wg sync.WaitGroup
	var goodErr, badErr error
	var goodProba []float64
	wg.Add(2)
	go func() {
		defer wg.Done()
		goodProba, goodErr = c.Predict(context.Background(), good)
	}()
	go func() {
		defer wg.Done()
		_, badErr = c.Predict(context.Background(), bad)
	}()
	wg.Wait()

	if goodErr != nil {
		t.Fatalf("valid request in a mixed batch failed: %v", goodErr)
	}
	if len(goodProba) == 0 {
		t.Fatal("valid request got no probabilities")
	}
	var he *Error
	if !errors.As(badErr, &he) || he.Status.HTTP != 400 {
		t.Fatalf("mismatched request got %v, want a 400 typed error", badErr)
	}
}

// TestCoalescerContextCancel: a caller that gives up stops waiting, but
// the coalescer keeps running and serves later requests.
func TestCoalescerContextCancel(t *testing.T) {
	model := testModel(t)
	c := NewCoalescer(modelSource(model), CoalescerConfig{Window: time.Hour, MaxBatch: 64})
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	input := testInputs(1, 8)[0]
	if _, err := c.Predict(ctx, input); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

// TestCoalescerCancelledSlotDropped pins the fan-back cancellation
// contract: a client that disconnects before the window closes has its
// slot dropped at flush time — the observed batch holds only the
// surviving request — while companions in the same batch still get their
// rows.
func TestCoalescerCancelledSlotDropped(t *testing.T) {
	model := testModel(t)
	batchSizes := make(chan int, 8)
	c := NewCoalescer(modelSource(model), CoalescerConfig{
		Window:   200 * time.Millisecond,
		MaxBatch: 64,
		Observe:  func(size int) { batchSizes <- size },
	})
	defer c.Close()

	inputs := testInputs(2, 10)
	want, err := model.PredictProba(context.Background(), inputs[:1])
	if err != nil {
		t.Fatal(err)
	}

	// The doomed request enters the batch first and opens the window...
	doomedCtx, doom := context.WithCancel(context.Background())
	doomedErr := make(chan error, 1)
	go func() {
		_, err := c.Predict(doomedCtx, inputs[1])
		doomedErr <- err
	}()
	time.Sleep(20 * time.Millisecond) // let it enqueue and start the window
	doom()                            // ...disconnects inside the window...

	// ...and a surviving request joins the same batch.
	proba, err := c.Predict(context.Background(), inputs[0])
	if err != nil {
		t.Fatalf("surviving request failed: %v", err)
	}
	requireSameRow(t, want[0], proba)
	if err := <-doomedErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled request got %v, want context.Canceled", err)
	}
	if size := <-batchSizes; size != 1 {
		t.Errorf("flushed batch size = %d, want 1 (cancelled slot dropped before predicting)", size)
	}
}

// TestCoalescerCancelRace hammers the flush-time filtering under the race
// detector: half the callers cancel at random points inside the window,
// the other half must still receive rows byte-identical to the sequential
// reference, and cancelled callers must only ever see a context error.
func TestCoalescerCancelRace(t *testing.T) {
	model := testModel(t)
	const distinct, goroutines, perG = 6, 8, 15
	inputs := testInputs(distinct, 11)
	ref := make([][]float64, distinct)
	for i, s := range inputs {
		rows, err := model.PredictProba(context.Background(), [][]float64{s})
		if err != nil {
			t.Fatal(err)
		}
		ref[i] = rows[0]
	}

	c := NewCoalescer(modelSource(model), CoalescerConfig{
		Window:   2 * time.Millisecond,
		MaxBatch: 16,
	})
	defer c.Close()

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < perG; k++ {
				idx := (g*perG + k) % distinct
				if g%2 == 0 {
					// Cancelling caller: give up at a random point inside
					// (or right around) the coalescing window.
					ctx, cancel := context.WithTimeout(context.Background(),
						time.Duration(k%4)*time.Millisecond)
					proba, err := c.Predict(ctx, inputs[idx])
					cancel()
					if err != nil {
						if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
							errs <- err
							return
						}
						continue
					}
					// Beat the deadline: the row must still be correct.
					for j := range proba {
						if proba[j] != ref[idx][j] {
							errs <- errors.New("pre-deadline row differs from reference")
							return
						}
					}
					continue
				}
				proba, err := c.Predict(context.Background(), inputs[idx])
				if err != nil {
					errs <- err
					return
				}
				for j := range proba {
					if proba[j] != ref[idx][j] {
						errs <- errors.New("surviving row differs from reference")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
