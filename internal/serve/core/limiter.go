package core

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// ErrShed is returned by the admission limiter when both the in-flight
// slots and the bounded wait queue are full. It maps to 429 over HTTP and
// RESOURCE_EXHAUSTED over gRPC, with a Retry-After hint: the request was
// never admitted, cost no model work, and is safe for the client (or a
// fronting proxy) to retry elsewhere or later. See docs/robustness.md for
// the shed semantics.
var ErrShed = errors.New("serve: overloaded, request shed")

// errRequestDeadline is the cancellation cause installed by
// Engine.WithRequestDeadline. Its presence in context.Cause distinguishes
// "the server's own -request-timeout fired" (503: the server failed the
// request) from "the client went away" (499) when a handler surfaces a
// context error.
var errRequestDeadline = errors.New("serve: request deadline exceeded")

// DefaultRetryAfter is the Retry-After hint attached to shed and timeout
// responses when Config.RetryAfter is zero.
const DefaultRetryAfter = time.Second

// limiter is the predict-path admission controller: a counting semaphore
// of maxInFlight slots fronted by a bounded wait queue of maxQueue
// callers. A request beyond both bounds is shed immediately — deciding to
// reject is O(1) and allocation-free, which is what keeps an overloaded
// server responsive enough to say 429.
//
// The limiter deliberately sits outside the extraction hot path: it
// guards handler entry, never the per-series kernels, so admission
// control cannot perturb the benchmarked alloc counts.
type limiter struct {
	maxInFlight int
	maxQueue    int
	sem         chan struct{}
	waiting     atomic.Int64
}

// newLimiter builds a limiter; maxInFlight <= 0 disables admission
// control entirely (the returned nil limiter admits everything).
func newLimiter(maxInFlight, maxQueue int) *limiter {
	if maxInFlight <= 0 {
		return nil
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &limiter{
		maxInFlight: maxInFlight,
		maxQueue:    maxQueue,
		sem:         make(chan struct{}, maxInFlight),
	}
}

// acquire claims an in-flight slot, waiting in the bounded queue if the
// server is busy. It returns ErrShed when the queue is full, or the
// context error if the caller's deadline fires while queued. The caller
// must invoke release exactly once after the work completes.
func (l *limiter) acquire(ctx context.Context) (release func(), err error) {
	if l == nil {
		return func() {}, nil
	}
	release = func() { <-l.sem }
	select {
	case l.sem <- struct{}{}:
		return release, nil
	default:
	}
	// All slots busy: join the bounded wait queue.
	if n := l.waiting.Add(1); n > int64(l.maxQueue) {
		l.waiting.Add(-1)
		return nil, ErrShed
	}
	defer l.waiting.Add(-1)
	select {
	case l.sem <- struct{}{}:
		return release, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// saturated reports whether a new request would be shed right now: every
// slot busy and the queue full. This is the "shedding" readiness
// dimension /healthz exposes for fleet health checks.
func (l *limiter) saturated() bool {
	if l == nil {
		return false
	}
	return len(l.sem) == l.maxInFlight && l.waiting.Load() >= int64(l.maxQueue)
}

// depth reports the current in-flight and queued request counts.
func (l *limiter) depth() (inFlight, queued int) {
	if l == nil {
		return 0, 0
	}
	return len(l.sem), int(l.waiting.Load())
}
