package core

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"mvg"
	"mvg/internal/faults"
	"mvg/internal/ml"
	"mvg/internal/serve/session"
)

// Config configures an Engine.
type Config struct {
	// Registry holds the models to serve (required).
	Registry *Registry
	// Window and MaxBatch tune the per-model request coalescer (zero
	// values select DefaultWindow / DefaultMaxBatch).
	Window   time.Duration
	MaxBatch int
	// Metrics receives request and batch observations; nil allocates a
	// fresh Metrics.
	Metrics *Metrics
	// Logger receives one line per failed request; nil disables logging.
	Logger *log.Logger
	// AlertSink receives the FIRING/RESOLVED events of every alerting
	// stream dialogue. Nil disables delivery; transitions are still
	// emitted on the dialogue and counted in Metrics. The engine does not
	// close the sink — its owner (mvgserve) does, after drain.
	AlertSink mvg.AlertSink

	// ---- overload safety (docs/robustness.md) ----

	// MaxInFlight bounds concurrently executing predict requests; once
	// full, up to MaxQueue more wait (bounded by their deadline) and
	// anything beyond that is shed with 429 + Retry-After. Zero disables
	// admission control (tests, embedded use); mvgserve always sets it.
	MaxInFlight int
	// MaxQueue bounds the admission wait queue (see MaxInFlight).
	MaxQueue int
	// RequestTimeout is the server-side deadline per predict request,
	// queue wait included; expiry maps to 503 + Retry-After and the
	// mvgserve_request_timeout_total counter. Zero disables.
	RequestTimeout time.Duration
	// RetryAfter is the Retry-After hint on 429/503 responses (default
	// DefaultRetryAfter).
	RetryAfter time.Duration

	// MaxStreams / MaxStreamsPerTenant bound concurrently open stream
	// dialogues, globally and per tenant (TenantKey). Zero selects
	// session.DefaultMaxStreams / DefaultMaxPerTenant; negative means
	// unlimited. Rejections are 429 + Retry-After.
	MaxStreams          int
	MaxStreamsPerTenant int
	// StreamIdleTimeout evicts a stream that delivers no sample for this
	// long (terminal error event, mvgserve_stream_evicted_total
	// {reason="idle"}). Zero selects DefaultStreamIdleTimeout; negative
	// disables idle eviction.
	StreamIdleTimeout time.Duration
	// StreamWriteTimeout bounds each response write; a client that stops
	// reading until the write buffer fills is evicted
	// (reason="slow_reader"). Zero selects DefaultStreamWriteTimeout;
	// negative disables write deadlines.
	StreamWriteTimeout time.Duration

	// Faults is the fault-injection surface consulted on the predict
	// paths (internal/faults); nil — the production value — disarms every
	// point at the cost of a pointer comparison.
	Faults *faults.Injector
}

// Stream robustness defaults used when the Config fields are zero.
const (
	DefaultStreamIdleTimeout  = 5 * time.Minute
	DefaultStreamWriteTimeout = 10 * time.Second
)

// Engine is the transport-agnostic serving engine: it resolves models
// from a registry, funnels single-series predictions through one request
// coalescer per model, enforces admission control and stream quotas, and
// owns the metrics sink. The HTTP and gRPC codecs are both thin shells
// over one shared Engine, so a prediction's bytes cannot depend on which
// transport asked.
type Engine struct {
	registry  *Registry
	metrics   *Metrics
	window    time.Duration
	maxBatch  int
	logger    *log.Logger
	alertSink mvg.AlertSink

	limiter        *limiter
	sessions       *session.Registry
	requestTimeout time.Duration
	retryAfter     time.Duration
	streamIdle     time.Duration
	streamWrite    time.Duration
	faults         *faults.Injector

	mu         sync.Mutex
	coalescers map[string]*Coalescer
	draining   bool
}

// NewEngine builds an Engine from cfg. The returned engine is live: its
// coalescers start on first use and run until Shutdown.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Registry == nil {
		return nil, errors.New("serve: Config.Registry is required")
	}
	if cfg.Metrics == nil {
		cfg.Metrics = NewMetrics()
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = DefaultRetryAfter
	}
	if cfg.StreamIdleTimeout == 0 {
		cfg.StreamIdleTimeout = DefaultStreamIdleTimeout
	}
	if cfg.StreamWriteTimeout == 0 {
		cfg.StreamWriteTimeout = DefaultStreamWriteTimeout
	}
	return &Engine{
		registry:       cfg.Registry,
		metrics:        cfg.Metrics,
		window:         cfg.Window,
		maxBatch:       cfg.MaxBatch,
		logger:         cfg.Logger,
		alertSink:      cfg.AlertSink,
		limiter:        newLimiter(cfg.MaxInFlight, cfg.MaxQueue),
		sessions:       session.NewRegistry(session.Config{MaxStreams: cfg.MaxStreams, MaxPerTenant: cfg.MaxStreamsPerTenant}),
		requestTimeout: cfg.RequestTimeout,
		retryAfter:     cfg.RetryAfter,
		streamIdle:     cfg.StreamIdleTimeout,
		streamWrite:    cfg.StreamWriteTimeout,
		faults:         cfg.Faults,
		coalescers:     make(map[string]*Coalescer),
	}, nil
}

// Metrics returns the engine's metrics sink (shared across transports).
func (e *Engine) Metrics() *Metrics { return e.metrics }

// Registry returns the engine's model registry.
func (e *Engine) Registry() *Registry { return e.registry }

// Logger returns the engine's logger; may be nil.
func (e *Engine) Logger() *log.Logger { return e.logger }

// RetryAfter returns the configured retry hint for shed/timeout responses.
func (e *Engine) RetryAfter() time.Duration { return e.retryAfter }

// StreamWriteTimeout returns the per-write deadline codecs must apply to
// stream responses (<= 0 disables write deadlines).
func (e *Engine) StreamWriteTimeout() time.Duration { return e.streamWrite }

// DrainStreams asks every live stream dialogue to finish with a done
// event and rejects new streams with 503/UNAVAILABLE. mvgserve registers
// it via http.Server.RegisterOnShutdown so streams start draining the
// moment SIGTERM arrives, instead of pinning the HTTP drain until its
// timeout. Idempotent; Shutdown also calls it.
func (e *Engine) DrainStreams() { e.sessions.Drain() }

// Shutdown drains the engine: new predictions are rejected with
// 503/UNAVAILABLE and every coalescer is closed, which blocks until all
// accepted requests have received results. Call it after the transport
// servers have stopped accepting connections, with ctx bounding the
// drain.
func (e *Engine) Shutdown(ctx context.Context) error {
	e.mu.Lock()
	e.draining = true
	coalescers := make([]*Coalescer, 0, len(e.coalescers))
	for _, c := range e.coalescers {
		coalescers = append(coalescers, c)
	}
	e.mu.Unlock()
	// Tell every live dialogue to finish (they close with a done event);
	// new streams are rejected from here on.
	e.sessions.Drain()

	done := make(chan struct{})
	go func() {
		for _, c := range coalescers {
			c.Close()
		}
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: shutdown: %w", ctx.Err())
	}
}

// coalescer returns (starting if needed) the coalescer for a model name.
// It returns nil when the engine is draining.
func (e *Engine) coalescer(name string) *Coalescer {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.draining {
		return nil
	}
	c, ok := e.coalescers[name]
	if !ok {
		c = NewCoalescer(func() (*mvg.Model, error) {
			m, ok := e.registry.Get(name)
			if !ok || m == nil {
				return nil, fmt.Errorf("serve: unknown model %q", name)
			}
			return m, nil
		}, CoalescerConfig{
			Window:   e.window,
			MaxBatch: e.maxBatch,
			Observe:  e.metrics.ObserveBatch,
		})
		e.coalescers[name] = c
	}
	return c
}

// ---- admission ----

// WithRequestDeadline applies the server-side request timeout to ctx,
// with errRequestDeadline as the cancellation cause so RequestError can
// tell the server's deadline from the client's. A zero timeout returns
// ctx unchanged.
func (e *Engine) WithRequestDeadline(ctx context.Context) (context.Context, context.CancelFunc) {
	if e.requestTimeout <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeoutCause(ctx, e.requestTimeout, errRequestDeadline)
}

// Admit claims a predict admission slot, queueing (bounded by ctx) when
// the engine is busy. A shed is counted and returned as a typed 429 /
// RESOURCE_EXHAUSTED error carrying the retry hint; a context error
// while queued passes through for RequestError to classify. The caller
// must invoke release exactly once after the work completes.
func (e *Engine) Admit(ctx context.Context) (release func(), err error) {
	release, err = e.limiter.acquire(ctx)
	if err == nil {
		return release, nil
	}
	if errors.Is(err, ErrShed) {
		e.metrics.Shed()
		serr := Errorf(StatusShed, "%v: try again in %v", ErrShed, e.retryAfter)
		serr.RetryAfter = e.retryAfter
		return nil, serr
	}
	return nil, err
}

// RequestError resolves a predict-path failure against the request
// context: a context error whose cause is the engine's own request
// deadline becomes a typed 503/UNAVAILABLE with a Retry-After hint (the
// server failed to serve in time — the client did nothing wrong and
// should retry) and bumps the timeout counter. Everything else passes
// through for StatusOf to classify.
func (e *Engine) RequestError(ctx context.Context, err error) error {
	if (errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)) &&
		errors.Is(context.Cause(ctx), errRequestDeadline) {
		e.metrics.RequestTimeout()
		serr := Errorf(StatusUnavailable, "%s", errRequestDeadline.Error())
		serr.RetryAfter = e.retryAfter
		return serr
	}
	return err
}

// ---- typed predict operations ----

// Model resolves a registry name, or returns a typed not-found error.
func (e *Engine) Model(name string) (*mvg.Model, error) {
	m, ok := e.registry.Get(name)
	if !ok || m == nil {
		return nil, Errorf(StatusNotFound, "unknown model %q", name)
	}
	return m, nil
}

// ValidateSeries checks every series' length against the model, returning
// a typed bad-request error naming the first offender. Both codecs call
// it before predicting so the error text is transport-independent.
func ValidateSeries(m *mvg.Model, series [][]float64) error {
	want := m.SeriesLen()
	for i, s := range series {
		if len(s) != want {
			return Errorf(StatusBadRequest,
				"series %d has %d points, model expects %d", i, len(s), want)
		}
	}
	return nil
}

// PredictSingle routes one series through the model's coalescer, falling
// back to a typed 503 only when the engine is draining. The returned
// proba row is bit-identical across transports (the coalescer re-batches
// deterministically); coalesced reports that the coalescer served it.
func (e *Engine) PredictSingle(ctx context.Context, name string, series []float64) (proba []float64, coalesced bool, err error) {
	if err := e.faults.Fire(ctx, faults.PointPredict); err != nil {
		return nil, false, err
	}
	c := e.coalescer(name)
	if c == nil {
		return nil, false, ErrCoalescerClosed
	}
	proba, err = c.Predict(ctx, series)
	if err != nil {
		return nil, false, err
	}
	return proba, true, nil
}

// PredictBatch predicts classes for a batch directly on the model (batch
// callers already amortise extraction; they bypass the coalescer).
func (e *Engine) PredictBatch(ctx context.Context, m *mvg.Model, series [][]float64) ([]int, error) {
	if err := e.faults.Fire(ctx, faults.PointBatchPredict); err != nil {
		return nil, err
	}
	return m.PredictBatch(ctx, series)
}

// PredictProbaBatch predicts probability rows for a batch directly on the
// model.
func (e *Engine) PredictProbaBatch(ctx context.Context, m *mvg.Model, series [][]float64) ([][]float64, error) {
	if err := e.faults.Fire(ctx, faults.PointBatchPredict); err != nil {
		return nil, err
	}
	return m.PredictProba(ctx, series)
}

// Reload re-reads a model's backing file, mapping failures onto the
// status table (unknown name → not found, load failure → internal).
func (e *Engine) Reload(name string) error {
	if err := e.registry.Reload(name); err != nil {
		st := StatusInternal
		if _, ok := e.registry.Get(name); !ok {
			st = StatusNotFound
		}
		return Errorf(st, "%v", err)
	}
	return nil
}

// Argmax returns the index of the largest probability — the same
// tie-breaking (first maximum wins) as ml.Predict, so coalesced single
// predictions agree with Model.PredictBatch.
func Argmax(proba []float64) int {
	return ml.Predict([][]float64{proba})[0]
}

// ---- health ----

// Health is the readiness snapshot behind GET /healthz and the gRPC
// Health rpc: liveness plus the dimensions a fronting proxy needs to
// route meaningfully — loaded-model count, current shed state of the
// admission limiter, queue depth, and live stream count. The JSON tags
// are the /healthz wire contract.
type Health struct {
	Status      string            `json:"status"`
	Models      int               `json:"models"`
	Ready       bool              `json:"ready"`
	Shedding    bool              `json:"shedding"`
	InFlight    int               `json:"in_flight"`
	QueueDepth  int               `json:"queue_depth"`
	Streams     int               `json:"streams"`
	ShedTotal   uint64            `json:"shed_total"`
	EvictTotals map[string]uint64 `json:"evict_totals"`
}

// HealthSnapshot reports the engine's current readiness. A draining
// engine reports Ready=false and Status "draining"; transports answer
// 503 / UNAVAILABLE-adjacent so fleet health checks fail fast during
// shutdown while in-flight work finishes.
func (e *Engine) HealthSnapshot() Health {
	e.mu.Lock()
	draining := e.draining
	e.mu.Unlock()
	inFlight, queued := e.limiter.depth()
	h := Health{
		Status:     "ok",
		Models:     len(e.registry.Names()),
		Ready:      !draining,
		Shedding:   e.limiter.saturated(),
		InFlight:   inFlight,
		QueueDepth: queued,
		Streams:    e.sessions.Active(),
		ShedTotal:  e.metrics.ShedTotal(),
		EvictTotals: map[string]uint64{
			EvictIdle:       e.metrics.StreamEvictedTotal(EvictIdle),
			EvictSlowReader: e.metrics.StreamEvictedTotal(EvictSlowReader),
		},
	}
	if draining {
		h.Status = "draining"
	}
	return h
}
