// Package core is the transport-agnostic half of the serving layer: a
// named registry of trained mvg models, a request coalescer that merges
// concurrent single-series predictions into batches for the parallel
// extraction engine, admission control, stream sessions, metrics, and the
// Engine that ties them together behind typed request/response values.
// The HTTP and gRPC codecs (internal/serve/httpapi, internal/serve/grpcapi)
// are thin shells over this package, which is what keeps the two
// transports byte-identical: every decision that affects a response value
// — status mapping, validation, coalescing, shed accounting — is made
// here, exactly once. See docs/serving.md for the layer diagram.
package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"mvg"
)

// ModelExt is the filename extension Registry.LoadDir recognises; the
// model's registry name is the filename without it.
const ModelExt = ".mvg"

// Registry is a named collection of live models. Lookups are lock-free on
// the hot path: each name maps to an atomic pointer, so Reload swaps a new
// model in while concurrent PredictBatch callers keep the snapshot they
// started with — no request ever observes a half-loaded model.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*registryEntry
}

type registryEntry struct {
	name  string
	path  string // source file; empty for models registered in-process
	model atomic.Pointer[mvg.Model]
}

// ModelInfo is the metadata returned by GET /v1/models for one model.
type ModelInfo struct {
	Name         string   `json:"name"`
	Classes      int      `json:"classes"`
	SeriesLen    int      `json:"series_len"`
	Features     int      `json:"features"`
	FeatureNames []string `json:"feature_names"`
	Workers      int      `json:"workers"`
	Source       string   `json:"source,omitempty"`
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*registryEntry)}
}

// Register adds (or replaces) a model under the given name. path may be
// empty for models that have no backing file; such models cannot be
// reloaded.
func (r *Registry) Register(name string, m *mvg.Model, path string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	if !ok {
		e = &registryEntry{name: name, path: path}
		r.entries[name] = e
	}
	e.path = path
	e.model.Store(m)
}

// LoadDir loads every *.mvg file in dir into the registry (name = filename
// without extension) and returns the loaded names. A file that fails to
// decode aborts the load with an error naming it.
func (r *Registry) LoadDir(dir string) ([]string, error) {
	files, err := filepath.Glob(filepath.Join(dir, "*"+ModelExt))
	if err != nil {
		return nil, fmt.Errorf("serve: scan %s: %w", dir, err)
	}
	if len(files) == 0 {
		if _, err := os.Stat(dir); err != nil {
			return nil, fmt.Errorf("serve: model dir: %w", err)
		}
		return nil, fmt.Errorf("serve: no %s files in %s", ModelExt, dir)
	}
	sort.Strings(files)
	names := make([]string, 0, len(files))
	for _, path := range files {
		name := strings.TrimSuffix(filepath.Base(path), ModelExt)
		m, err := mvg.LoadModelFile(path)
		if err != nil {
			return nil, fmt.Errorf("serve: load %q: %w", name, err)
		}
		r.Register(name, m, path)
		names = append(names, name)
	}
	return names, nil
}

// Get returns the current model registered under name. The returned model
// is a stable snapshot: it keeps serving the caller even if a Reload swaps
// the registry entry mid-request.
func (r *Registry) Get(name string) (*mvg.Model, bool) {
	r.mu.RLock()
	e, ok := r.entries[name]
	r.mu.RUnlock()
	if !ok {
		return nil, false
	}
	return e.model.Load(), true
}

// Reload re-reads the model's backing file and atomically swaps it in,
// carrying the previous model's worker setting over so a reload never
// silently changes serving parallelism. In-flight predictions complete on
// the old model; requests that start after Reload returns see the new one.
func (r *Registry) Reload(name string) error {
	// Copy the path out under the lock: Register may rewrite e.path for an
	// existing entry, and reading it unlocked would race that write.
	r.mu.RLock()
	e, ok := r.entries[name]
	var path string
	if ok {
		path = e.path
	}
	r.mu.RUnlock()
	if !ok {
		return fmt.Errorf("serve: unknown model %q", name)
	}
	if path == "" {
		return fmt.Errorf("serve: model %q has no backing file", name)
	}
	m, err := mvg.LoadModelFile(path)
	if err != nil {
		return fmt.Errorf("serve: reload %q: %w", name, err)
	}
	if old := e.model.Load(); old != nil {
		m.SetWorkers(old.Workers())
	}
	e.model.Store(m)
	return nil
}

// Names returns the registered model names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.entries))
	for name := range r.entries {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// List returns metadata for every registered model, sorted by name.
func (r *Registry) List() []ModelInfo {
	names := r.Names()
	out := make([]ModelInfo, 0, len(names))
	for _, name := range names {
		m, ok := r.Get(name)
		if !ok || m == nil {
			continue
		}
		r.mu.RLock()
		path := r.entries[name].path
		r.mu.RUnlock()
		featNames := m.FeatureNames()
		out = append(out, ModelInfo{
			Name:         name,
			Classes:      m.Classes(),
			SeriesLen:    m.SeriesLen(),
			Features:     len(featNames),
			FeatureNames: featNames,
			Workers:      m.Workers(),
			Source:       path,
		})
	}
	return out
}

// SetWorkers applies a worker cap to every registered model (mvgserve's
// -workers flag).
func (r *Registry) SetWorkers(workers int) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, e := range r.entries {
		if m := e.model.Load(); m != nil {
			m.SetWorkers(workers)
		}
	}
}
