// Package servetest holds the serving layer's shared test fixture: one
// small two-class model, trained once per test binary, plus the input and
// comparison helpers every serve package leans on. It exists because the
// serving tests now span several packages (core, httpapi, grpcapi) that
// all need the same model — training even a small one dominates test
// time, so each package sharing this fixture trains at most once.
package servetest

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"

	"mvg"
)

var (
	modelOnce sync.Once
	modelVal  *mvg.Model
	modelErr  error
)

// SeriesLen is the training length of the shared model.
const SeriesLen = 128

// Dataset generates a two-class problem (smooth sine vs noise burst)
// small enough for fast training.
func Dataset(seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	const perClass = 10
	series := make([][]float64, 0, 2*perClass)
	labels := make([]int, 0, 2*perClass)
	for i := 0; i < perClass; i++ {
		smooth := make([]float64, SeriesLen)
		phase := rng.Float64()
		for k := range smooth {
			smooth[k] = math.Sin(2*math.Pi*(float64(k)/16+phase)) + 0.05*rng.NormFloat64()
		}
		series = append(series, smooth)
		labels = append(labels, 0)

		noisy := make([]float64, SeriesLen)
		for k := range noisy {
			noisy[k] = rng.NormFloat64()
		}
		series = append(series, noisy)
		labels = append(labels, 1)
	}
	return series, labels
}

// Model returns the shared test model, training it on first use.
func Model(t *testing.T) *mvg.Model {
	t.Helper()
	modelOnce.Do(func() {
		series, labels := Dataset(1)
		var pipe *mvg.Pipeline
		pipe, modelErr = mvg.NewPipeline(mvg.Config{Folds: 2, Seed: 1, Workers: 2})
		if modelErr != nil {
			return
		}
		modelVal, modelErr = pipe.Train(context.Background(), series, labels, 2)
	})
	if modelErr != nil {
		t.Fatalf("training shared test model: %v", modelErr)
	}
	return modelVal
}

// Inputs returns n prediction inputs drawn from the same two shapes the
// model was trained on.
func Inputs(n int, seed int64) [][]float64 {
	series, _ := Dataset(seed)
	out := make([][]float64, n)
	for i := range out {
		out[i] = series[i%len(series)]
	}
	return out
}

// RequireSameRow fails the test unless want and got agree bit-for-bit —
// the determinism bar the coalescer and the cross-transport parity suite
// are held to.
func RequireSameRow(t *testing.T, want, got []float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("row widths differ: %d vs %d", len(want), len(got))
	}
	for j := range want {
		if math.Float64bits(want[j]) != math.Float64bits(got[j]) {
			t.Fatalf("col %d differs: %v vs %v", j, want[j], got[j])
		}
	}
}
