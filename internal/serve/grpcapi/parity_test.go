package grpcapi_test

// Cross-transport parity suite: the HTTP and gRPC codecs are thin shells
// over one core.Engine, so every numeric payload — proba rows, drift
// scores, stream tallies — must be bit-identical across transports, and
// every failure must land on the same row of the shared status table.
// These tests run both codecs against the SAME engine instance and
// compare wire results float-bit for float-bit.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mvg/api/mvgpb"
	"mvg/internal/grpcx"
	"mvg/internal/serve/core"
	"mvg/internal/serve/grpcapi"
	"mvg/internal/serve/httpapi"
	"mvg/internal/serve/servetest"
)

// parityFixture is one engine served over both transports at once.
type parityFixture struct {
	engine *core.Engine
	http   *httptest.Server
	grpc   *grpcx.Client
}

func newParityFixture(t *testing.T, cfg core.Config) *parityFixture {
	t.Helper()
	model := servetest.Model(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "demo"+core.ModelExt)
	if err := model.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	reg := core.NewRegistry()
	reg.Register("demo", model, path)
	cfg.Registry = reg
	engine, err := core.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(httpapi.NewServer(engine))
	t.Cleanup(ts.Close)

	hs := grpcx.NewH2CServer("", grpcapi.NewServer(engine))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go hs.Serve(ln)
	client := grpcx.Dial(ln.Addr().String())
	t.Cleanup(func() {
		client.Close()
		hs.Close()
	})
	return &parityFixture{engine: engine, http: ts, grpc: client}
}

func (f *parityFixture) postJSON(t *testing.T, path string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(f.http.URL+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestCrossTransportPredictParity: single-class, single-proba and batch
// predictions return the same numbers over HTTP and gRPC, bit for bit.
func TestCrossTransportPredictParity(t *testing.T) {
	f := newParityFixture(t, core.Config{Window: time.Millisecond})
	inputs := servetest.Inputs(4, 50)
	ctx := context.Background()

	for i, s := range inputs {
		// Probabilities: the strongest parity check — full float64 rows.
		var hp struct {
			Proba     []float64 `json:"proba"`
			Coalesced bool      `json:"coalesced"`
		}
		resp, data := f.postJSON(t, "/v1/models/demo/predict_proba", map[string]any{"series": s})
		if resp.StatusCode != 200 {
			t.Fatalf("http proba status %d: %s", resp.StatusCode, data)
		}
		if err := json.Unmarshal(data, &hp); err != nil {
			t.Fatal(err)
		}
		var gp mvgpb.PredictProbaResponse
		if err := f.grpc.Invoke(ctx, mvgpb.MvgMethodPredictProba, nil,
			&mvgpb.PredictRequest{Model: "demo", Series: s}, &gp); err != nil {
			t.Fatalf("grpc proba: %v", err)
		}
		servetest.RequireSameRow(t, hp.Proba, gp.Proba)
		if !hp.Coalesced || !gp.Coalesced {
			t.Fatalf("input %d: coalesced flags http=%v grpc=%v, want both true", i, hp.Coalesced, gp.Coalesced)
		}

		// Classes agree with each other (and therefore with the model).
		var hc struct {
			Class *int `json:"class"`
		}
		resp, data = f.postJSON(t, "/v1/models/demo/predict", map[string]any{"series": s})
		if resp.StatusCode != 200 {
			t.Fatalf("http predict status %d: %s", resp.StatusCode, data)
		}
		if err := json.Unmarshal(data, &hc); err != nil {
			t.Fatal(err)
		}
		var gc mvgpb.PredictResponse
		if err := f.grpc.Invoke(ctx, mvgpb.MvgMethodPredict, nil,
			&mvgpb.PredictRequest{Model: "demo", Series: s}, &gc); err != nil {
			t.Fatalf("grpc predict: %v", err)
		}
		if hc.Class == nil || int32(*hc.Class) != gc.Class {
			t.Fatalf("input %d: class http=%v grpc=%d", i, hc.Class, gc.Class)
		}
	}

	// Batch form.
	var hb struct {
		Classes []int `json:"classes"`
	}
	resp, data := f.postJSON(t, "/v1/models/demo/predict", map[string]any{"batch": inputs})
	if resp.StatusCode != 200 {
		t.Fatalf("http batch status %d: %s", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &hb); err != nil {
		t.Fatal(err)
	}
	breq := &mvgpb.PredictBatchRequest{Model: "demo"}
	for _, s := range inputs {
		breq.Batch = append(breq.Batch, &mvgpb.Series{Values: s})
	}
	var gb mvgpb.PredictBatchResponse
	if err := f.grpc.Invoke(ctx, mvgpb.MvgMethodPredictBatch, nil, breq, &gb); err != nil {
		t.Fatalf("grpc batch: %v", err)
	}
	if len(hb.Classes) != len(gb.Classes) {
		t.Fatalf("batch widths differ: %d vs %d", len(hb.Classes), len(gb.Classes))
	}
	for i := range hb.Classes {
		if int32(hb.Classes[i]) != gb.Classes[i] {
			t.Fatalf("batch class %d: http=%d grpc=%d", i, hb.Classes[i], gb.Classes[i])
		}
	}
}

// ndjsonEvent decodes any /stream response line.
type ndjsonEvent struct {
	Sample      int       `json:"sample"`
	Class       *int      `json:"class"`
	Proba       []float64 `json:"proba"`
	Drift       *float64  `json:"drift"`
	Alert       string    `json:"alert"`
	From        string    `json:"from"`
	To          string    `json:"to"`
	Value       float64   `json:"value"`
	Done        bool      `json:"done"`
	Samples     int       `json:"samples"`
	Predictions int       `json:"predictions"`
	Error       string    `json:"error"`
}

func (f *parityFixture) httpStream(t *testing.T, query string, samples []float64) []ndjsonEvent {
	t.Helper()
	var body strings.Builder
	for _, x := range samples {
		fmt.Fprintf(&body, "%g\n", x)
	}
	resp, err := http.Post(f.http.URL+"/v1/models/demo/stream"+query, "application/x-ndjson", strings.NewReader(body.String()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("http stream status %d: %s", resp.StatusCode, data)
	}
	var events []ndjsonEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		var ev ndjsonEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

func (f *parityFixture) grpcStream(t *testing.T, open *mvgpb.StreamOpen, samples []float64) []*mvgpb.StreamResponse {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := f.grpc.Stream(ctx, mvgpb.MvgMethodStreamPredict, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Send(&mvgpb.StreamRequest{Open: open, Samples: samples}); err != nil {
		t.Fatal(err)
	}
	if err := st.CloseSend(); err != nil {
		t.Fatal(err)
	}
	var events []*mvgpb.StreamResponse
	for {
		resp := new(mvgpb.StreamResponse)
		if err := st.Recv(resp); err != nil {
			if errors.Is(err, io.EOF) {
				return events
			}
			t.Fatalf("grpc stream recv: %v", err)
		}
		events = append(events, resp)
	}
}

// TestCrossTransportStreamParity: the same sample feed through the NDJSON
// dialogue and the StreamPredict rpc yields the same predictions — same
// hop boundaries, same classes, bit-identical proba rows and drift
// scores, and matching terminal tallies.
func TestCrossTransportStreamParity(t *testing.T) {
	f := newParityFixture(t, core.Config{Window: time.Millisecond})
	in := servetest.Inputs(2, 51)
	samples := append(append([]float64{}, in[0]...), in[1]...)

	hEvents := f.httpStream(t, "?hop=32", samples)
	gEvents := f.grpcStream(t, &mvgpb.StreamOpen{Model: "demo", Hop: 32}, samples)

	var hPreds []ndjsonEvent
	for _, ev := range hEvents[:len(hEvents)-1] {
		if ev.Error != "" {
			t.Fatalf("http stream error: %q", ev.Error)
		}
		hPreds = append(hPreds, ev)
	}
	hDone := hEvents[len(hEvents)-1]
	if !hDone.Done {
		t.Fatalf("http stream did not end with done: %+v", hDone)
	}

	var gPreds []*mvgpb.StreamPrediction
	var gDone *mvgpb.StreamDone
	for _, ev := range gEvents {
		switch {
		case ev.Prediction != nil:
			gPreds = append(gPreds, ev.Prediction)
		case ev.Done != nil:
			gDone = ev.Done
		}
	}
	if gDone == nil {
		t.Fatal("grpc stream did not end with done")
	}

	if len(hPreds) != len(gPreds) {
		t.Fatalf("prediction counts differ: http=%d grpc=%d", len(hPreds), len(gPreds))
	}
	for i := range hPreds {
		h, g := hPreds[i], gPreds[i]
		if int64(h.Sample) != g.Sample || h.Class == nil || int32(*h.Class) != g.Class {
			t.Fatalf("prediction %d: http={sample:%d class:%v} grpc={sample:%d class:%d}",
				i, h.Sample, h.Class, g.Sample, g.Class)
		}
		servetest.RequireSameRow(t, h.Proba, g.Proba)
		switch {
		case h.Drift == nil && !g.HasDrift:
		case h.Drift != nil && g.HasDrift:
			if math.Float64bits(*h.Drift) != math.Float64bits(g.Drift) {
				t.Fatalf("prediction %d: drift http=%v grpc=%v", i, *h.Drift, g.Drift)
			}
		default:
			t.Fatalf("prediction %d: drift presence http=%v grpc=%v", i, h.Drift != nil, g.HasDrift)
		}
	}
	if int64(hDone.Samples) != gDone.Samples || int64(hDone.Predictions) != gDone.Predictions {
		t.Fatalf("done tallies differ: http={%d,%d} grpc={%d,%d}",
			hDone.Samples, hDone.Predictions, gDone.Samples, gDone.Predictions)
	}
}

// TestCrossTransportAlertParity: alert transitions fire at the same
// samples with the same values on both transports.
func TestCrossTransportAlertParity(t *testing.T) {
	f := newParityFixture(t, core.Config{Window: time.Millisecond})
	series, labels := servetest.Dataset(7)
	var smooth, noisy []float64
	for i, lab := range labels {
		if lab == 0 && smooth == nil {
			smooth = series[i]
		}
		if lab == 1 && noisy == nil {
			noisy = series[i]
		}
	}
	samples := append(append(append([]float64{}, smooth...), noisy...), smooth...)

	hEvents := f.httpStream(t, "?hop=32&alert=kind=flip", samples)
	gEvents := f.grpcStream(t, &mvgpb.StreamOpen{Model: "demo", Hop: 32, Alerts: []string{"kind=flip"}}, samples)

	type transition struct {
		alert, from, to string
		sample          int64
		valueBits       uint64
	}
	var hAlerts, gAlerts []transition
	for _, ev := range hEvents {
		if ev.Alert != "" {
			hAlerts = append(hAlerts, transition{ev.Alert, ev.From, ev.To, int64(ev.Sample), math.Float64bits(ev.Value)})
		}
	}
	for _, ev := range gEvents {
		if ev.Alert != nil {
			gAlerts = append(gAlerts, transition{ev.Alert.Alert, ev.Alert.From, ev.Alert.To, ev.Alert.Sample, math.Float64bits(ev.Alert.Value)})
		}
	}
	if len(hAlerts) == 0 {
		t.Fatal("no alert transitions on the flip body")
	}
	if len(hAlerts) != len(gAlerts) {
		t.Fatalf("alert counts differ: http=%d grpc=%d", len(hAlerts), len(gAlerts))
	}
	for i := range hAlerts {
		if hAlerts[i] != gAlerts[i] {
			t.Fatalf("alert %d differs: http=%+v grpc=%+v", i, hAlerts[i], gAlerts[i])
		}
	}
}

// TestGrpcStatusMapping pins the shared status table's gRPC column for
// the error shapes clients actually hit.
func TestGrpcStatusMapping(t *testing.T) {
	f := newParityFixture(t, core.Config{Window: time.Millisecond})
	ctx := context.Background()
	short := make([]float64, 7)

	cases := []struct {
		name string
		call func() error
		want grpcx.Code
	}{
		{"unknown model", func() error {
			return f.grpc.Invoke(ctx, mvgpb.MvgMethodPredict, nil,
				&mvgpb.PredictRequest{Model: "ghost", Series: servetest.Inputs(1, 52)[0]}, new(mvgpb.PredictResponse))
		}, grpcx.NotFound},
		{"wrong length", func() error {
			return f.grpc.Invoke(ctx, mvgpb.MvgMethodPredict, nil,
				&mvgpb.PredictRequest{Model: "demo", Series: short}, new(mvgpb.PredictResponse))
		}, grpcx.InvalidArgument},
		{"empty batch", func() error {
			return f.grpc.Invoke(ctx, mvgpb.MvgMethodPredictBatch, nil,
				&mvgpb.PredictBatchRequest{Model: "demo"}, new(mvgpb.PredictBatchResponse))
		}, grpcx.InvalidArgument},
		{"unknown method", func() error {
			return f.grpc.Invoke(ctx, "/mvg.v1.Mvg/Nope", nil,
				new(mvgpb.PredictRequest), new(mvgpb.PredictResponse))
		}, grpcx.Unimplemented},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.call()
			var st *grpcx.Status
			if !errors.As(err, &st) || st.Code != tc.want {
				t.Fatalf("err = %v, want code %v", err, tc.want)
			}
		})
	}

	// Bad trigger spec on the stream open → INVALID_ARGUMENT in trailers.
	st, err := f.grpc.Stream(ctx, mvgpb.MvgMethodStreamPredict, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Send(&mvgpb.StreamRequest{Open: &mvgpb.StreamOpen{Model: "demo", Alerts: []string{"kind=nope"}}}); err != nil {
		t.Fatal(err)
	}
	st.CloseSend()
	rerr := st.Recv(new(mvgpb.StreamResponse))
	var gst *grpcx.Status
	if !errors.As(rerr, &gst) || gst.Code != grpcx.InvalidArgument {
		t.Fatalf("bad trigger spec: recv err = %v, want INVALID_ARGUMENT", rerr)
	}
}

// TestGrpcHealthAndModels: the Health rpc and ListModels mirror /healthz
// and /v1/models over the same engine.
func TestGrpcHealthAndModels(t *testing.T) {
	f := newParityFixture(t, core.Config{Window: time.Millisecond})
	ctx := context.Background()

	var h mvgpb.HealthResponse
	if err := f.grpc.Invoke(ctx, mvgpb.MvgMethodHealth, nil, new(mvgpb.HealthRequest), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || !h.Ready || h.Models != 1 || h.Shedding {
		t.Fatalf("health = %+v", &h)
	}
	if len(h.EvictTotals) != 2 {
		t.Fatalf("evict totals = %+v, want both pre-seeded reasons", h.EvictTotals)
	}

	var lm mvgpb.ListModelsResponse
	if err := f.grpc.Invoke(ctx, mvgpb.MvgMethodListModels, nil, new(mvgpb.ListModelsRequest), &lm); err != nil {
		t.Fatal(err)
	}
	if len(lm.Models) != 1 || lm.Models[0].Name != "demo" {
		t.Fatalf("models = %+v", lm.Models)
	}
	mi := lm.Models[0]
	if mi.Classes != 2 || mi.SeriesLen != int32(servetest.SeriesLen) || mi.Features == 0 || len(mi.FeatureNames) != int(mi.Features) {
		t.Fatalf("model info = %+v", mi)
	}

	// Drain flips readiness on both transports at once.
	if err := f.engine.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := f.grpc.Invoke(ctx, mvgpb.MvgMethodHealth, nil, new(mvgpb.HealthRequest), &h); err != nil {
		t.Fatal(err)
	}
	if h.Ready || h.Status != "draining" {
		t.Fatalf("post-drain health = %+v", &h)
	}
	resp, err := http.Get(f.http.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain /healthz = %d, want 503", resp.StatusCode)
	}
}

// TestGrpcTenantQuota: the gRPC transport resolves tenants from the
// mvg-tenant metadata key into the same session quotas as HTTP's ?tenant=.
func TestGrpcTenantQuota(t *testing.T) {
	f := newParityFixture(t, core.Config{
		Window:              time.Millisecond,
		MaxStreams:          8,
		MaxStreamsPerTenant: 1,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	md := map[string]string{core.TenantMetadataKey: "acme"}

	// Hold one dialogue open for tenant acme.
	held, err := f.grpc.Stream(ctx, mvgpb.MvgMethodStreamPredict, md)
	if err != nil {
		t.Fatal(err)
	}
	if err := held.Send(&mvgpb.StreamRequest{Open: &mvgpb.StreamOpen{Model: "demo"}}); err != nil {
		t.Fatal(err)
	}
	// Wait until the session is registered before probing the quota.
	deadline := time.Now().Add(10 * time.Second)
	for f.engine.HealthSnapshot().Streams != 1 {
		if time.Now().After(deadline) {
			t.Fatal("held stream never registered a session")
		}
		time.Sleep(time.Millisecond)
	}

	// Same tenant over gRPC metadata: shed with RESOURCE_EXHAUSTED.
	st2, err := f.grpc.Stream(ctx, mvgpb.MvgMethodStreamPredict, md)
	if err != nil {
		t.Fatal(err)
	}
	st2.Send(&mvgpb.StreamRequest{Open: &mvgpb.StreamOpen{Model: "demo"}})
	st2.CloseSend()
	rerr := st2.Recv(new(mvgpb.StreamResponse))
	var gst *grpcx.Status
	if !errors.As(rerr, &gst) || gst.Code != grpcx.ResourceExhausted {
		t.Fatalf("same-tenant stream: recv err = %v, want RESOURCE_EXHAUSTED", rerr)
	}

	// Same tenant through the HTTP header hits the same quota — one
	// bucket, two transports.
	req, _ := http.NewRequest("POST", f.http.URL+"/v1/models/demo/stream", strings.NewReader("1\n"))
	req.Header.Set(core.TenantHeader, "acme")
	req.Header.Set("Content-Type", "application/x-ndjson")
	hresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("same-tenant http stream = %d, want 429", hresp.StatusCode)
	}

	// A different tenant still gets in.
	st3, err := f.grpc.Stream(ctx, mvgpb.MvgMethodStreamPredict, map[string]string{core.TenantMetadataKey: "other"})
	if err != nil {
		t.Fatal(err)
	}
	st3.Send(&mvgpb.StreamRequest{Open: &mvgpb.StreamOpen{Model: "demo"}})
	st3.CloseSend()
	resp3 := new(mvgpb.StreamResponse)
	if err := st3.Recv(resp3); err != nil || resp3.Done == nil {
		t.Fatalf("other-tenant stream: resp=%+v err=%v, want done", resp3, err)
	}

	cancel() // release the held stream
}

// TestGrpcStreamDrain: DrainStreams ends a live gRPC dialogue with a
// draining done frame, mirroring the NDJSON behavior.
func TestGrpcStreamDrain(t *testing.T) {
	f := newParityFixture(t, core.Config{Window: time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	st, err := f.grpc.Stream(ctx, mvgpb.MvgMethodStreamPredict, nil)
	if err != nil {
		t.Fatal(err)
	}
	samples := servetest.Inputs(1, 53)[0]
	if err := st.Send(&mvgpb.StreamRequest{Open: &mvgpb.StreamOpen{Model: "demo", Hop: 32}, Samples: samples}); err != nil {
		t.Fatal(err)
	}
	// First frame must be a prediction (the window filled).
	first := new(mvgpb.StreamResponse)
	if err := st.Recv(first); err != nil || first.Prediction == nil {
		t.Fatalf("first frame = %+v, err %v; want a prediction", first, err)
	}

	f.engine.DrainStreams()
	for {
		resp := new(mvgpb.StreamResponse)
		if err := st.Recv(resp); err != nil {
			t.Fatalf("drain recv: %v", err)
		}
		if resp.Done != nil {
			if !resp.Done.Draining || resp.Done.Predictions != 1 {
				t.Fatalf("drain done = %+v, want draining with 1 prediction", resp.Done)
			}
			break
		}
	}
	if err := st.Recv(new(mvgpb.StreamResponse)); !errors.Is(err, io.EOF) {
		t.Fatalf("post-done recv = %v, want EOF", err)
	}
}
