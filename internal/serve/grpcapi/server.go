// Package grpcapi is the gRPC codec of the serving layer: the mvg.v1.Mvg
// service (api/proto/mvg.proto) rendered over the same transport-agnostic
// core.Engine as the HTTP codec. Both transports share one engine —
// registry, coalescers, admission limiter, stream sessions and metrics —
// so a prediction's numeric payload is bit-identical regardless of how
// the request arrived, and a shed on one transport is visible on the
// other's /healthz. Errors map through the shared status table
// (docs/serving.md#status-mapping). The runtime underneath is
// internal/grpcx (std-lib h2c, no external gRPC dependency).
package grpcapi

import (
	"context"
	"errors"
	"io"
	"net/http"
	"os"
	"sort"
	"time"

	"mvg/api/mvgpb"
	"mvg/internal/grpcx"
	"mvg/internal/serve/core"
)

// Server owns the registered mvg.v1.Mvg service. Serve it over an h2c
// http.Server (grpcx.NewH2CServer); it implements http.Handler.
type Server struct {
	engine *core.Engine
	rpc    *grpcx.Server
}

// NewServer builds the gRPC codec over an engine (typically the same
// engine an httpapi.Server is using).
func NewServer(e *core.Engine) *Server {
	s := &Server{engine: e, rpc: grpcx.NewServer()}
	s.rpc.Unary(mvgpb.MvgMethodPredict,
		func() grpcx.Message { return new(mvgpb.PredictRequest) }, s.admitted(s.predict))
	s.rpc.Unary(mvgpb.MvgMethodPredictProba,
		func() grpcx.Message { return new(mvgpb.PredictRequest) }, s.admitted(s.predictProba))
	s.rpc.Unary(mvgpb.MvgMethodPredictBatch,
		func() grpcx.Message { return new(mvgpb.PredictBatchRequest) }, s.admitted(s.predictBatch))
	s.rpc.Unary(mvgpb.MvgMethodListModels,
		func() grpcx.Message { return new(mvgpb.ListModelsRequest) }, s.instrumented("grpc_models", s.listModels))
	s.rpc.Unary(mvgpb.MvgMethodHealth,
		func() grpcx.Message { return new(mvgpb.HealthRequest) }, s.instrumented("grpc_healthz", s.health))
	s.rpc.Stream(mvgpb.MvgMethodStreamPredict, s.streamPredict)
	return s
}

// ServeHTTP implements http.Handler (the grpcx server underneath).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.rpc.ServeHTTP(w, r)
}

// Engine returns the engine this codec serves.
func (s *Server) Engine() *core.Engine { return s.engine }

// statusErr renders any serving error as a *grpcx.Status through the
// shared table. grpcx.Status errors (from the runtime itself) pass
// through unchanged.
func statusErr(err error) error {
	if err == nil {
		return nil
	}
	var st *grpcx.Status
	if errors.As(err, &st) {
		return st
	}
	return grpcx.Statusf(core.StatusOf(err).GRPC, "%s", err.Error())
}

// instrumented wraps a unary handler with the request metrics shared with
// the HTTP codec: the in-flight gauge, per-route/status counters (the
// status label is the shared table's HTTP equivalent, so one dashboard
// covers both transports) and the latency histogram.
func (s *Server) instrumented(route string, h grpcx.UnaryHandler) grpcx.UnaryHandler {
	return func(ctx context.Context, call *grpcx.ServerCall, req grpcx.Message) (grpcx.Message, error) {
		finish := s.engine.Metrics().RequestStarted()
		start := time.Now()
		resp, err := h(ctx, call, req)
		finish(route, core.StatusOf(err).HTTP, time.Since(start).Seconds())
		if err != nil {
			if logger := s.engine.Logger(); logger != nil {
				logger.Printf("grpc %s -> %s (%.1fms)", route, core.StatusOf(err).GRPC,
					float64(time.Since(start).Microseconds())/1000)
			}
			return nil, statusErr(err)
		}
		return resp, nil
	}
}

// admitted layers the deadline and admission middleware under the
// instrumentation: the call context gains the server's request timeout,
// then the call claims an admission slot — or is shed with
// RESOURCE_EXHAUSTED before any model work, exactly like the HTTP 429.
func (s *Server) admitted(h grpcx.UnaryHandler) grpcx.UnaryHandler {
	route := "grpc_predict"
	return s.instrumented(route, func(ctx context.Context, call *grpcx.ServerCall, req grpcx.Message) (grpcx.Message, error) {
		ctx, cancel := s.engine.WithRequestDeadline(ctx)
		defer cancel()
		release, err := s.engine.Admit(ctx)
		if err != nil {
			return nil, s.engine.RequestError(ctx, err)
		}
		defer release()
		resp, err := h(ctx, call, req)
		if err != nil {
			return nil, s.engine.RequestError(ctx, err)
		}
		return resp, nil
	})
}

// ---- unary handlers ----

func (s *Server) predict(ctx context.Context, call *grpcx.ServerCall, req grpcx.Message) (grpcx.Message, error) {
	r := req.(*mvgpb.PredictRequest)
	m, err := s.engine.Model(r.Model)
	if err != nil {
		return nil, err
	}
	if err := core.ValidateSeries(m, [][]float64{r.Series}); err != nil {
		return nil, err
	}
	proba, coalesced, err := s.engine.PredictSingle(ctx, r.Model, r.Series)
	if err != nil {
		return nil, err
	}
	return &mvgpb.PredictResponse{Model: r.Model, Class: int32(core.Argmax(proba)), Coalesced: coalesced}, nil
}

func (s *Server) predictProba(ctx context.Context, call *grpcx.ServerCall, req grpcx.Message) (grpcx.Message, error) {
	r := req.(*mvgpb.PredictRequest)
	m, err := s.engine.Model(r.Model)
	if err != nil {
		return nil, err
	}
	if err := core.ValidateSeries(m, [][]float64{r.Series}); err != nil {
		return nil, err
	}
	proba, coalesced, err := s.engine.PredictSingle(ctx, r.Model, r.Series)
	if err != nil {
		return nil, err
	}
	return &mvgpb.PredictProbaResponse{Model: r.Model, Proba: proba, Coalesced: coalesced}, nil
}

func (s *Server) predictBatch(ctx context.Context, call *grpcx.ServerCall, req grpcx.Message) (grpcx.Message, error) {
	r := req.(*mvgpb.PredictBatchRequest)
	m, err := s.engine.Model(r.Model)
	if err != nil {
		return nil, err
	}
	if len(r.Batch) == 0 {
		return nil, core.Errorf(core.StatusBadRequest, `"batch" must contain at least one series`)
	}
	series := make([][]float64, len(r.Batch))
	for i, sr := range r.Batch {
		if sr != nil {
			series[i] = sr.Values
		}
	}
	if err := core.ValidateSeries(m, series); err != nil {
		return nil, err
	}
	classes, err := s.engine.PredictBatch(ctx, m, series)
	if err != nil {
		return nil, err
	}
	out := make([]int32, len(classes))
	for i, c := range classes {
		out[i] = int32(c)
	}
	return &mvgpb.PredictBatchResponse{Model: r.Model, Classes: out}, nil
}

func (s *Server) listModels(ctx context.Context, call *grpcx.ServerCall, req grpcx.Message) (grpcx.Message, error) {
	infos := s.engine.Registry().List()
	resp := &mvgpb.ListModelsResponse{Models: make([]*mvgpb.ModelInfo, 0, len(infos))}
	for _, mi := range infos {
		resp.Models = append(resp.Models, &mvgpb.ModelInfo{
			Name:         mi.Name,
			Classes:      int32(mi.Classes),
			SeriesLen:    int32(mi.SeriesLen),
			Features:     int32(mi.Features),
			FeatureNames: mi.FeatureNames,
			Workers:      int32(mi.Workers),
			Source:       mi.Source,
		})
	}
	return resp, nil
}

func (s *Server) health(ctx context.Context, call *grpcx.ServerCall, req grpcx.Message) (grpcx.Message, error) {
	h := s.engine.HealthSnapshot()
	resp := &mvgpb.HealthResponse{
		Status:     h.Status,
		Ready:      h.Ready,
		Shedding:   h.Shedding,
		Models:     int64(h.Models),
		InFlight:   int64(h.InFlight),
		QueueDepth: int64(h.QueueDepth),
		Streams:    int64(h.Streams),
		ShedTotal:  h.ShedTotal,
	}
	reasons := make([]string, 0, len(h.EvictTotals))
	for reason := range h.EvictTotals {
		reasons = append(reasons, reason)
	}
	sort.Strings(reasons)
	for _, reason := range reasons {
		resp.EvictTotals = append(resp.EvictTotals, &mvgpb.EvictCount{Reason: reason, Total: h.EvictTotals[reason]})
	}
	return resp, nil
}

// ---- stream handler ----

// streamPredict is the bidi StreamPredict rpc: the first StreamRequest
// must carry Open (model, hop, alert specs); every request's Samples are
// pushed in order, and predictions/alerts come back as StreamResponse
// frames. The dialogue loop — idle eviction, drain, the event stream —
// is core.RunDialogue, shared with the NDJSON endpoint.
func (s *Server) streamPredict(ctx context.Context, call *grpcx.ServerCall) error {
	finish := s.engine.Metrics().RequestStarted()
	start := time.Now()
	sio := &grpcIO{s: s, call: call, chunks: make(chan core.Samples)}
	defer func() {
		finish("grpc_stream", core.StatusOf(sio.err).HTTP, time.Since(start).Seconds())
	}()

	var first mvgpb.StreamRequest
	if err := call.Recv(&first); err != nil {
		sio.err = grpcx.Statusf(grpcx.InvalidArgument, "reading open frame: %v", err)
		return sio.err
	}
	if first.Open == nil {
		sio.err = grpcx.Statusf(grpcx.InvalidArgument, "first StreamRequest must carry open")
		return sio.err
	}
	hop := int(first.Open.Hop)
	if hop == 0 {
		hop = 1
	}
	d, err := s.engine.OpenDialogue(core.DialogueConfig{
		Model:  first.Open.Model,
		Hop:    hop,
		Alerts: first.Open.Alerts,
		Tenant: core.TenantKey(call.RemoteAddr(), call.Metadata(core.TenantMetadataKey)),
	})
	if err != nil {
		sio.err = statusErr(err)
		return sio.err
	}
	defer d.Close()

	// Reader goroutine: frames → sample chunks. Unlike the HTTP body
	// reader there is no join problem — call.Recv reads the request body
	// through net/http's own plumbing, and the handler returning cancels
	// the request context, which fails a parked Recv.
	stopReader := make(chan struct{})
	go func() {
		defer close(sio.chunks)
		emit := func(chunk core.Samples) bool {
			select {
			case sio.chunks <- chunk:
				return true
			case <-stopReader:
				return false
			}
		}
		if len(first.Samples) > 0 {
			if !emit(core.Samples{Values: first.Samples}) {
				return
			}
		}
		for {
			var req mvgpb.StreamRequest
			if err := call.Recv(&req); err != nil {
				if !errors.Is(err, io.EOF) {
					emit(core.Samples{Err: core.Errorf(core.StatusBadRequest, "reading stream: %v", err)})
				}
				return
			}
			if req.Open != nil {
				emit(core.Samples{Err: core.Errorf(core.StatusBadRequest, "open frame repeated mid-stream")})
				return
			}
			if len(req.Samples) > 0 && !emit(core.Samples{Values: req.Samples}) {
				return
			}
		}
	}()
	defer close(stopReader)

	s.engine.RunDialogue(ctx, d, sio)
	return sio.err
}

// grpcIO adapts the response side of a dialogue to core.DialogueIO: one
// StreamResponse frame per event, under per-send write deadlines that
// evict peers who stop reading.
type grpcIO struct {
	s      *Server
	call   *grpcx.ServerCall
	chunks chan core.Samples
	err    error // terminal status, nil on a clean dialogue
}

func (g *grpcIO) Samples() <-chan core.Samples { return g.chunks }

func (g *grpcIO) send(resp *mvgpb.StreamResponse) error {
	if d := g.s.engine.StreamWriteTimeout(); d > 0 {
		_ = g.call.SetWriteDeadline(time.Now().Add(d))
	}
	err := g.call.Send(resp)
	if err != nil && errors.Is(err, os.ErrDeadlineExceeded) {
		g.s.engine.Metrics().StreamEvicted(core.EvictSlowReader)
		g.err = grpcx.Statusf(grpcx.DeadlineExceeded,
			"stream evicted: slow reader (no progress within %v write deadline)", g.s.engine.StreamWriteTimeout())
	}
	return err
}

func (g *grpcIO) Emit(ev core.StreamEvent) error {
	resp := &mvgpb.StreamResponse{}
	switch {
	case ev.Prediction != nil:
		p := &mvgpb.StreamPrediction{
			Sample: int64(ev.Prediction.Sample),
			Class:  int32(ev.Prediction.Class),
			Proba:  ev.Prediction.Proba,
		}
		if ev.Prediction.Drift != nil {
			p.Drift, p.HasDrift = *ev.Prediction.Drift, true
		}
		resp.Prediction = p
	case ev.Alert != nil:
		resp.Alert = &mvgpb.StreamAlert{
			Alert:  ev.Alert.Alert,
			From:   ev.Alert.From,
			To:     ev.Alert.To,
			Sample: int64(ev.Alert.Sample),
			Value:  ev.Alert.Value,
		}
	}
	return g.send(resp)
}

func (g *grpcIO) EmitDone(done core.StreamDone) error {
	return g.send(&mvgpb.StreamResponse{Done: &mvgpb.StreamDone{
		Samples:     int64(done.Samples),
		Predictions: int64(done.Predictions),
		Draining:    done.Draining,
	}})
}

// EmitError records the terminal failure; the handler returns it so the
// status travels in the trailers (gRPC streams have no mid-stream error
// frame — the trailer is the error channel).
func (g *grpcIO) EmitError(err error) {
	g.err = statusErr(err)
}
