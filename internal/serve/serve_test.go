package serve

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"

	"mvg"
)

// Shared test fixture: training even a small model dominates test time, so
// every test in the package shares one model trained once.
var (
	testModelOnce sync.Once
	testModelVal  *mvg.Model
	testModelErr  error
)

const testSeriesLen = 128

// testDataset generates a two-class problem (smooth sine vs noise burst)
// small enough for fast training.
func testDataset(seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	const perClass = 10
	series := make([][]float64, 0, 2*perClass)
	labels := make([]int, 0, 2*perClass)
	for i := 0; i < perClass; i++ {
		smooth := make([]float64, testSeriesLen)
		phase := rng.Float64()
		for k := range smooth {
			smooth[k] = math.Sin(2*math.Pi*(float64(k)/16+phase)) + 0.05*rng.NormFloat64()
		}
		series = append(series, smooth)
		labels = append(labels, 0)

		noisy := make([]float64, testSeriesLen)
		for k := range noisy {
			noisy[k] = rng.NormFloat64()
		}
		series = append(series, noisy)
		labels = append(labels, 1)
	}
	return series, labels
}

func testModel(t *testing.T) *mvg.Model {
	t.Helper()
	testModelOnce.Do(func() {
		series, labels := testDataset(1)
		var pipe *mvg.Pipeline
		pipe, testModelErr = mvg.NewPipeline(mvg.Config{Folds: 2, Seed: 1, Workers: 2})
		if testModelErr != nil {
			return
		}
		testModelVal, testModelErr = pipe.Train(context.Background(), series, labels, 2)
	})
	if testModelErr != nil {
		t.Fatalf("training shared test model: %v", testModelErr)
	}
	return testModelVal
}

// testInputs returns n prediction inputs drawn from the same two shapes
// the model was trained on.
func testInputs(n int, seed int64) [][]float64 {
	series, _ := testDataset(seed)
	out := make([][]float64, n)
	for i := range out {
		out[i] = series[i%len(series)]
	}
	return out
}

func requireSameRow(t *testing.T, want, got []float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("row widths differ: %d vs %d", len(want), len(got))
	}
	for j := range want {
		if math.Float64bits(want[j]) != math.Float64bits(got[j]) {
			t.Fatalf("col %d differs: %v vs %v", j, want[j], got[j])
		}
	}
}
