package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// ErrShed is returned by the admission limiter when both the in-flight
// slots and the bounded wait queue are full. It maps to 429 with a
// Retry-After header: the request was never admitted, cost no model work,
// and is safe for the client (or a fronting proxy) to retry elsewhere or
// later. See docs/robustness.md for the shed semantics.
var ErrShed = errors.New("serve: overloaded, request shed")

// errRequestDeadline is the cancellation cause installed by the deadline
// middleware. Its presence in context.Cause distinguishes "the server's
// own -request-timeout fired" (503: the server failed the request) from
// "the client went away" (499) when a handler surfaces a context error.
var errRequestDeadline = errors.New("serve: request deadline exceeded")

// DefaultRetryAfter is the Retry-After hint attached to 429/503 shed and
// timeout responses when Config.RetryAfter is zero.
const DefaultRetryAfter = time.Second

// limiter is the predict-path admission controller: a counting semaphore
// of maxInFlight slots fronted by a bounded wait queue of maxQueue
// callers. A request beyond both bounds is shed immediately — deciding to
// reject is O(1) and allocation-free, which is what keeps an overloaded
// server responsive enough to say 429.
//
// The limiter deliberately sits outside the extraction hot path: it
// guards handler entry, never the per-series kernels, so admission
// control cannot perturb the benchmarked alloc counts.
type limiter struct {
	maxInFlight int
	maxQueue    int
	sem         chan struct{}
	waiting     atomic.Int64
}

// newLimiter builds a limiter; maxInFlight <= 0 disables admission
// control entirely (the returned nil limiter admits everything).
func newLimiter(maxInFlight, maxQueue int) *limiter {
	if maxInFlight <= 0 {
		return nil
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &limiter{
		maxInFlight: maxInFlight,
		maxQueue:    maxQueue,
		sem:         make(chan struct{}, maxInFlight),
	}
}

// acquire claims an in-flight slot, waiting in the bounded queue if the
// server is busy. It returns ErrShed when the queue is full, or the
// context error if the caller's deadline fires while queued. The caller
// must invoke release exactly once after the work completes.
func (l *limiter) acquire(ctx context.Context) (release func(), err error) {
	if l == nil {
		return func() {}, nil
	}
	release = func() { <-l.sem }
	select {
	case l.sem <- struct{}{}:
		return release, nil
	default:
	}
	// All slots busy: join the bounded wait queue.
	if n := l.waiting.Add(1); n > int64(l.maxQueue) {
		l.waiting.Add(-1)
		return nil, ErrShed
	}
	defer l.waiting.Add(-1)
	select {
	case l.sem <- struct{}{}:
		return release, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// saturated reports whether a new request would be shed right now: every
// slot busy and the queue full. This is the "shedding" readiness
// dimension /healthz exposes for fleet health checks.
func (l *limiter) saturated() bool {
	if l == nil {
		return false
	}
	return len(l.sem) == l.maxInFlight && l.waiting.Load() >= int64(l.maxQueue)
}

// depth reports the current in-flight and queued request counts.
func (l *limiter) depth() (inFlight, queued int) {
	if l == nil {
		return 0, 0
	}
	return len(l.sem), int(l.waiting.Load())
}

// retryAfterHeader sets the Retry-After hint (whole seconds, minimum 1).
func retryAfterHeader(w http.ResponseWriter, d time.Duration) {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
}

// admit wraps a predict handler with the deadline and admission
// middleware: the request context gains the server's -request-timeout
// (with errRequestDeadline as its cause), then the request claims an
// admission slot — or is shed with 429 + Retry-After before any model
// work. Queue waits are bounded by the request deadline, so a queued
// request can time out (503) without ever being admitted.
func (s *Server) admit(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.requestTimeout > 0 {
			ctx, cancel := context.WithTimeoutCause(r.Context(), s.requestTimeout, errRequestDeadline)
			defer cancel()
			r = r.WithContext(ctx)
		}
		release, err := s.limiter.acquire(r.Context())
		if err != nil {
			if errors.Is(err, ErrShed) {
				s.metrics.Shed()
				retryAfterHeader(w, s.retryAfter)
				writeJSON(w, http.StatusTooManyRequests, errorResponse{
					Error: fmt.Sprintf("%v: try again in %v", ErrShed, s.retryAfter)})
				return
			}
			s.writeRequestError(w, r, err)
			return
		}
		defer release()
		next(w, r)
	}
}

// writeRequestError maps err like writeError, but recognises the server's
// own request deadline: a context error whose cause is errRequestDeadline
// becomes 503 + Retry-After (the server failed to serve in time — the
// client did nothing wrong and should retry), and bumps the timeout
// counter. Client cancellations keep the 499 mapping.
func (s *Server) writeRequestError(w http.ResponseWriter, r *http.Request, err error) {
	if (errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)) &&
		errors.Is(context.Cause(r.Context()), errRequestDeadline) {
		s.metrics.RequestTimeout()
		retryAfterHeader(w, s.retryAfter)
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: errRequestDeadline.Error()})
		return
	}
	writeError(w, err)
}
