package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strings"
	"sync"
	"time"

	"mvg"
	"mvg/internal/faults"
	"mvg/internal/ml"
	"mvg/internal/serve/session"
)

// Config configures a Server.
type Config struct {
	// Registry holds the models to serve (required).
	Registry *Registry
	// Window and MaxBatch tune the per-model request coalescer (zero
	// values select DefaultWindow / DefaultMaxBatch).
	Window   time.Duration
	MaxBatch int
	// Metrics receives request and batch observations; nil allocates a
	// fresh Metrics.
	Metrics *Metrics
	// Logger receives one line per failed request; nil disables logging.
	Logger *log.Logger
	// AlertSink receives the FIRING/RESOLVED events of every alerting
	// stream (?alert= on /stream). Nil disables delivery; transitions are
	// still emitted on the NDJSON dialogue and counted in Metrics. The
	// server does not close the sink — its owner (mvgserve) does, after
	// drain.
	AlertSink mvg.AlertSink

	// ---- overload safety (docs/robustness.md) ----

	// MaxInFlight bounds concurrently executing predict requests; once
	// full, up to MaxQueue more wait (bounded by their deadline) and
	// anything beyond that is shed with 429 + Retry-After. Zero disables
	// admission control (tests, embedded use); mvgserve always sets it.
	MaxInFlight int
	// MaxQueue bounds the admission wait queue (see MaxInFlight).
	MaxQueue int
	// RequestTimeout is the server-side deadline per predict request,
	// queue wait included; expiry maps to 503 + Retry-After and the
	// mvgserve_request_timeout_total counter. Zero disables.
	RequestTimeout time.Duration
	// RetryAfter is the Retry-After hint on 429/503 responses (default
	// DefaultRetryAfter).
	RetryAfter time.Duration

	// MaxStreams / MaxStreamsPerTenant bound concurrently open NDJSON
	// stream dialogues, globally and per tenant (?tenant= or client IP).
	// Zero selects session.DefaultMaxStreams / DefaultMaxPerTenant;
	// negative means unlimited. Rejections are 429 + Retry-After.
	MaxStreams          int
	MaxStreamsPerTenant int
	// StreamIdleTimeout evicts a stream that delivers no sample for this
	// long (terminal NDJSON error line, mvgserve_stream_evicted_total
	// {reason="idle"}). Zero selects DefaultStreamIdleTimeout; negative
	// disables idle eviction.
	StreamIdleTimeout time.Duration
	// StreamWriteTimeout bounds each response write; a client that stops
	// reading until the write buffer fills is evicted
	// (reason="slow_reader"). Zero selects DefaultStreamWriteTimeout;
	// negative disables write deadlines.
	StreamWriteTimeout time.Duration

	// Faults is the fault-injection surface consulted on the predict
	// paths (internal/faults); nil — the production value — disarms every
	// point at the cost of a pointer comparison.
	Faults *faults.Injector
}

// Stream robustness defaults used when the Config fields are zero.
const (
	DefaultStreamIdleTimeout  = 5 * time.Minute
	DefaultStreamWriteTimeout = 10 * time.Second
)

// Server is the HTTP serving layer: it routes the /v1 prediction API onto
// a registry of models, funnelling single-series predictions through one
// request coalescer per model. It implements http.Handler.
type Server struct {
	registry  *Registry
	metrics   *Metrics
	window    time.Duration
	maxBatch  int
	logger    *log.Logger
	alertSink mvg.AlertSink
	handler   http.Handler

	// Overload safety: the predict admission limiter (nil = disabled),
	// the stream session registry, and their knobs.
	limiter        *limiter
	sessions       *session.Registry
	requestTimeout time.Duration
	retryAfter     time.Duration
	streamIdle     time.Duration
	streamWrite    time.Duration
	faults         *faults.Injector

	mu         sync.Mutex
	coalescers map[string]*Coalescer
	draining   bool
}

// NewServer builds a Server from cfg. The returned server is live: its
// coalescers start on first use and run until Shutdown.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Registry == nil {
		return nil, errors.New("serve: Config.Registry is required")
	}
	if cfg.Metrics == nil {
		cfg.Metrics = NewMetrics()
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = DefaultRetryAfter
	}
	if cfg.StreamIdleTimeout == 0 {
		cfg.StreamIdleTimeout = DefaultStreamIdleTimeout
	}
	if cfg.StreamWriteTimeout == 0 {
		cfg.StreamWriteTimeout = DefaultStreamWriteTimeout
	}
	s := &Server{
		registry:       cfg.Registry,
		metrics:        cfg.Metrics,
		window:         cfg.Window,
		maxBatch:       cfg.MaxBatch,
		logger:         cfg.Logger,
		alertSink:      cfg.AlertSink,
		limiter:        newLimiter(cfg.MaxInFlight, cfg.MaxQueue),
		sessions:       session.NewRegistry(session.Config{MaxStreams: cfg.MaxStreams, MaxPerTenant: cfg.MaxStreamsPerTenant}),
		requestTimeout: cfg.RequestTimeout,
		retryAfter:     cfg.RetryAfter,
		streamIdle:     cfg.StreamIdleTimeout,
		streamWrite:    cfg.StreamWriteTimeout,
		faults:         cfg.Faults,
		coalescers:     make(map[string]*Coalescer),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/models", s.handleModels)
	mux.HandleFunc("POST /v1/models/{name}/predict", s.admit(s.handlePredict))
	mux.HandleFunc("POST /v1/models/{name}/predict_proba", s.admit(s.handlePredictProba))
	mux.HandleFunc("POST /v1/models/{name}/stream", s.handleStream)
	mux.HandleFunc("POST /v1/models/{name}/reload", s.handleReload)
	s.handler = s.instrument(mux)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

// Metrics returns the server's metrics sink (useful for tests and for
// sharing one sink across servers).
func (s *Server) Metrics() *Metrics { return s.metrics }

// DrainStreams asks every live NDJSON stream dialogue to finish with a
// done event and rejects new streams with 503. mvgserve registers it via
// http.Server.RegisterOnShutdown so streams start draining the moment
// SIGTERM arrives, instead of pinning the HTTP drain until its timeout.
// Idempotent; Shutdown also calls it.
func (s *Server) DrainStreams() { s.sessions.Drain() }

// Shutdown drains the server: new predictions are rejected with 503 and
// every coalescer is closed, which blocks until all accepted requests
// have received results. Call it after http.Server.Shutdown has stopped
// accepting connections, with ctx bounding the drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	coalescers := make([]*Coalescer, 0, len(s.coalescers))
	for _, c := range s.coalescers {
		coalescers = append(coalescers, c)
	}
	s.mu.Unlock()
	// Tell every live NDJSON dialogue to finish (they close with a done
	// event); new streams are rejected with 503 from here on.
	s.sessions.Drain()

	done := make(chan struct{})
	go func() {
		for _, c := range coalescers {
			c.Close()
		}
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: shutdown: %w", ctx.Err())
	}
}

// coalescer returns (starting if needed) the coalescer for a model name.
// It returns nil when the server is draining.
func (s *Server) coalescer(name string) *Coalescer {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil
	}
	c, ok := s.coalescers[name]
	if !ok {
		c = NewCoalescer(func() (*mvg.Model, error) {
			m, ok := s.registry.Get(name)
			if !ok || m == nil {
				return nil, fmt.Errorf("serve: unknown model %q", name)
			}
			return m, nil
		}, CoalescerConfig{
			Window:   s.window,
			MaxBatch: s.maxBatch,
			Observe:  s.metrics.ObserveBatch,
		})
		s.coalescers[name] = c
	}
	return c
}

// ---- request/response schema ----

// predictRequest is the body of POST /v1/models/{name}/predict and
// /predict_proba. Exactly one of Series (single) or Batch must be set.
type predictRequest struct {
	Series []float64   `json:"series,omitempty"`
	Batch  [][]float64 `json:"batch,omitempty"`
}

type predictResponse struct {
	Model     string `json:"model"`
	Class     *int   `json:"class,omitempty"`
	Classes   []int  `json:"classes,omitempty"`
	Coalesced bool   `json:"coalesced,omitempty"`
}

type probaResponse struct {
	Model     string      `json:"model"`
	Proba     []float64   `json:"proba,omitempty"`
	Probas    [][]float64 `json:"probas,omitempty"`
	Coalesced bool        `json:"coalesced,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// httpError is an error with an HTTP status code attached.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

func httpErrorf(code int, format string, args ...any) *httpError {
	return &httpError{code: code, msg: fmt.Sprintf(format, args...)}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// StatusClientClosedRequest is the nginx convention for "the client went
// away before the response was ready" — the status a cancelled request
// context maps to. The client never sees it; it exists for access logs
// and metrics, where it keeps abandoned requests out of the 5xx error
// rate.
const StatusClientClosedRequest = 499

// writeError maps an error onto an HTTP status: explicit httpErrors keep
// their code, the public mvg error taxonomy (docs/api.md) distinguishes
// caller mistakes (shape/length/config problems → 400) from server faults
// (500), cancelled request contexts become 499, and a draining server
// answers 503.
func writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	var he *httpError
	switch {
	case errors.As(err, &he):
		code = he.code
	case errors.Is(err, ErrCoalescerClosed), errors.Is(err, mvg.ErrPipelineClosed):
		code = http.StatusServiceUnavailable
	case errors.Is(err, mvg.ErrShapeMismatch),
		errors.Is(err, mvg.ErrSeriesTooShort),
		errors.Is(err, mvg.ErrBadConfig),
		errors.Is(err, mvg.ErrNonFiniteSample),
		errors.Is(err, mvg.ErrStreamNotReady),
		errors.Is(err, mvg.ErrBadAlertTrigger),
		errors.Is(err, mvg.ErrNoDriftBaseline):
		code = http.StatusBadRequest
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		code = StatusClientClosedRequest
	}
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

// parsePredictRequest decodes and validates a prediction body against the
// model, returning the series to predict and whether the request was the
// single-series form.
func parsePredictRequest(r *http.Request, m *mvg.Model) (series [][]float64, single bool, err error) {
	var req predictRequest
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, false, httpErrorf(http.StatusBadRequest, "invalid JSON body: %v", err)
	}
	switch {
	case req.Series != nil && req.Batch != nil:
		return nil, false, httpErrorf(http.StatusBadRequest, `body must set exactly one of "series" or "batch"`)
	case req.Series != nil:
		series, single = [][]float64{req.Series}, true
	case req.Batch != nil:
		if len(req.Batch) == 0 {
			return nil, false, httpErrorf(http.StatusBadRequest, `"batch" must contain at least one series`)
		}
		series = req.Batch
	default:
		return nil, false, httpErrorf(http.StatusBadRequest, `body must set "series" or "batch"`)
	}
	want := m.SeriesLen()
	for i, s := range series {
		if len(s) != want {
			return nil, false, httpErrorf(http.StatusBadRequest,
				"series %d has %d points, model expects %d", i, len(s), want)
		}
	}
	return series, single, nil
}

// model resolves the {name} path value against the registry.
func (s *Server) model(r *http.Request) (string, *mvg.Model, error) {
	name := r.PathValue("name")
	m, ok := s.registry.Get(name)
	if !ok || m == nil {
		return name, nil, httpErrorf(http.StatusNotFound, "unknown model %q", name)
	}
	return name, m, nil
}

// ---- handlers ----

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	name, m, err := s.model(r)
	if err != nil {
		writeError(w, err)
		return
	}
	series, single, err := parsePredictRequest(r, m)
	if err != nil {
		writeError(w, err)
		return
	}
	if single {
		proba, coalesced, err := s.predictSingle(r, name, m, series[0])
		if err != nil {
			s.writeRequestError(w, r, err)
			return
		}
		class := argmax(proba)
		writeJSON(w, http.StatusOK, predictResponse{Model: name, Class: &class, Coalesced: coalesced})
		return
	}
	if err := s.faults.Fire(r.Context(), faults.PointBatchPredict); err != nil {
		s.writeRequestError(w, r, err)
		return
	}
	classes, err := m.PredictBatch(r.Context(), series)
	if err != nil {
		s.writeRequestError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, predictResponse{Model: name, Classes: classes})
}

func (s *Server) handlePredictProba(w http.ResponseWriter, r *http.Request) {
	name, m, err := s.model(r)
	if err != nil {
		writeError(w, err)
		return
	}
	series, single, err := parsePredictRequest(r, m)
	if err != nil {
		writeError(w, err)
		return
	}
	if single {
		proba, coalesced, err := s.predictSingle(r, name, m, series[0])
		if err != nil {
			s.writeRequestError(w, r, err)
			return
		}
		writeJSON(w, http.StatusOK, probaResponse{Model: name, Proba: proba, Coalesced: coalesced})
		return
	}
	if err := s.faults.Fire(r.Context(), faults.PointBatchPredict); err != nil {
		s.writeRequestError(w, r, err)
		return
	}
	probas, err := m.PredictProba(r.Context(), series)
	if err != nil {
		s.writeRequestError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, probaResponse{Model: name, Probas: probas})
}

// predictSingle routes one series through the model's coalescer, falling
// back to a direct call only when the server is draining (in which case
// the caller gets 503 via ErrCoalescerClosed).
func (s *Server) predictSingle(r *http.Request, name string, m *mvg.Model, series []float64) ([]float64, bool, error) {
	if err := s.faults.Fire(r.Context(), faults.PointPredict); err != nil {
		return nil, false, err
	}
	c := s.coalescer(name)
	if c == nil {
		return nil, false, ErrCoalescerClosed
	}
	proba, err := c.Predict(r.Context(), series)
	if err != nil {
		return nil, false, err
	}
	return proba, true, nil
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.registry.Reload(name); err != nil {
		code := http.StatusInternalServerError
		if _, ok := s.registry.Get(name); !ok {
			code = http.StatusNotFound
		}
		writeError(w, httpErrorf(code, "%v", err))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"model": name, "status": "reloaded"})
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"models": s.registry.List()})
}

// handleHealthz reports liveness plus the readiness dimensions a fronting
// proxy needs to route meaningfully (ROADMAP item 1): loaded-model count,
// current shed state of the admission limiter, queue depth, and live
// stream count. A draining server answers 503 so health checks fail fast
// during shutdown while in-flight work finishes.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	inFlight, queued := s.limiter.depth()
	body := map[string]any{
		"status":       "ok",
		"models":       len(s.registry.Names()),
		"ready":        !draining,
		"shedding":     s.limiter.saturated(),
		"in_flight":    inFlight,
		"queue_depth":  queued,
		"streams":      s.sessions.Active(),
		"shed_total":   s.metrics.ShedTotal(),
		"evict_totals": map[string]uint64{EvictIdle: s.metrics.StreamEvictedTotal(EvictIdle), EvictSlowReader: s.metrics.StreamEvictedTotal(EvictSlowReader)},
	}
	code := http.StatusOK
	if draining {
		body["status"] = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WritePrometheus(w)
}

// argmax returns the index of the largest probability — the same
// tie-breaking (first maximum wins) as ml.Predict, so coalesced single
// predictions agree with Model.PredictBatch.
func argmax(proba []float64) int {
	return ml.Predict([][]float64{proba})[0]
}

// ---- middleware ----

// statusRecorder captures the response status for metrics.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.code = code
	sr.ResponseWriter.WriteHeader(code)
}

// Unwrap lets http.ResponseController reach the underlying writer's
// Flush/EnableFullDuplex through the middleware wrapper — without it the
// /stream endpoint's per-line flushing and full-duplex opt-in silently
// degrade to ErrNotSupported and long dialogues die once the server's
// write buffer fills (pinned by TestStreamEndpointLongDialogue).
func (sr *statusRecorder) Unwrap() http.ResponseWriter { return sr.ResponseWriter }

// instrument wraps the mux with panic recovery and metrics: the in-flight
// gauge, per-route/status counters and the latency histogram.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		finish := s.metrics.RequestStarted()
		start := time.Now()
		sr := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		route := routeLabel(r)
		defer func() {
			if rec := recover(); rec != nil {
				if s.logger != nil {
					s.logger.Printf("panic serving %s %s: %v", r.Method, r.URL.Path, rec)
				}
				writeJSON(sr, http.StatusInternalServerError, errorResponse{Error: "internal error"})
			}
			finish(route, sr.code, time.Since(start).Seconds())
			if s.logger != nil && sr.code >= 400 {
				s.logger.Printf("%s %s -> %d (%.1fms)", r.Method, r.URL.Path, sr.code, float64(time.Since(start).Microseconds())/1000)
			}
		}()
		next.ServeHTTP(sr, r)
	})
}

// routeLabel collapses request paths onto low-cardinality metric labels so
// model names don't explode the per-route counter space.
func routeLabel(r *http.Request) string {
	switch {
	case r.URL.Path == "/healthz":
		return "healthz"
	case r.URL.Path == "/metrics":
		return "metrics"
	case r.URL.Path == "/v1/models":
		return "models"
	case strings.HasSuffix(r.URL.Path, "/predict"):
		return "predict"
	case strings.HasSuffix(r.URL.Path, "/predict_proba"):
		return "predict_proba"
	case strings.HasSuffix(r.URL.Path, "/stream"):
		return "stream"
	case strings.HasSuffix(r.URL.Path, "/reload"):
		return "reload"
	}
	return "other"
}
