// Package httpapi is the HTTP codec of the serving layer: the /v1 JSON
// endpoints and the NDJSON /stream dialogue, rendered over a shared
// transport-agnostic core.Engine. Everything response-shaping happens in
// the engine — this package only decodes requests, maps typed errors to
// HTTP statuses through the shared status table, and encodes responses.
// The endpoint contract is documented in docs/serving.md.
package httpapi

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"time"

	"mvg"
	"mvg/internal/serve/core"
)

// Server is the HTTP serving layer over one core.Engine. It implements
// http.Handler.
type Server struct {
	engine  *core.Engine
	handler http.Handler
}

// NewServer builds the HTTP codec over an engine. Multiple transport
// servers (this one and grpcapi's) may share one engine; they then share
// its registry, coalescers, admission limiter and metrics.
func NewServer(e *core.Engine) *Server {
	s := &Server{engine: e}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/models", s.handleModels)
	mux.HandleFunc("POST /v1/models/{name}/predict", s.admit(s.handlePredict))
	mux.HandleFunc("POST /v1/models/{name}/predict_proba", s.admit(s.handlePredictProba))
	mux.HandleFunc("POST /v1/models/{name}/stream", s.handleStream)
	mux.HandleFunc("POST /v1/models/{name}/reload", s.handleReload)
	s.handler = s.instrument(mux)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

// Engine returns the engine this codec serves.
func (s *Server) Engine() *core.Engine { return s.engine }

// ---- request/response schema ----

// predictRequest is the body of POST /v1/models/{name}/predict and
// /predict_proba. Exactly one of Series (single) or Batch must be set.
type predictRequest struct {
	Series []float64   `json:"series,omitempty"`
	Batch  [][]float64 `json:"batch,omitempty"`
}

type predictResponse struct {
	Model     string `json:"model"`
	Class     *int   `json:"class,omitempty"`
	Classes   []int  `json:"classes,omitempty"`
	Coalesced bool   `json:"coalesced,omitempty"`
}

type probaResponse struct {
	Model     string      `json:"model"`
	Proba     []float64   `json:"proba,omitempty"`
	Probas    [][]float64 `json:"probas,omitempty"`
	Coalesced bool        `json:"coalesced,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// retryAfterHeader sets the Retry-After hint (whole seconds, minimum 1).
func retryAfterHeader(w http.ResponseWriter, d time.Duration) {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
}

// writeError renders err through the shared status table, attaching the
// Retry-After header when the typed error carries a hint.
func writeError(w http.ResponseWriter, err error) {
	if d := core.RetryHint(err); d > 0 {
		retryAfterHeader(w, d)
	}
	writeJSON(w, core.StatusOf(err).HTTP, errorResponse{Error: err.Error()})
}

// parsePredictRequest decodes and validates a prediction body against the
// model, returning the series to predict and whether the request was the
// single-series form.
func parsePredictRequest(r *http.Request, m *mvg.Model) (series [][]float64, single bool, err error) {
	var req predictRequest
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, false, core.Errorf(core.StatusBadRequest, "invalid JSON body: %v", err)
	}
	switch {
	case req.Series != nil && req.Batch != nil:
		return nil, false, core.Errorf(core.StatusBadRequest, `body must set exactly one of "series" or "batch"`)
	case req.Series != nil:
		series, single = [][]float64{req.Series}, true
	case req.Batch != nil:
		if len(req.Batch) == 0 {
			return nil, false, core.Errorf(core.StatusBadRequest, `"batch" must contain at least one series`)
		}
		series = req.Batch
	default:
		return nil, false, core.Errorf(core.StatusBadRequest, `body must set "series" or "batch"`)
	}
	if err := core.ValidateSeries(m, series); err != nil {
		return nil, false, err
	}
	return series, single, nil
}

// model resolves the {name} path value against the registry.
func (s *Server) model(r *http.Request) (string, *mvg.Model, error) {
	name := r.PathValue("name")
	m, err := s.engine.Model(name)
	return name, m, err
}

// ---- middleware ----

// admit wraps a predict handler with the deadline and admission
// middleware: the request context gains the server's -request-timeout,
// then the request claims an admission slot — or is shed with 429 +
// Retry-After before any model work. Queue waits are bounded by the
// request deadline, so a queued request can time out (503) without ever
// being admitted.
func (s *Server) admit(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := s.engine.WithRequestDeadline(r.Context())
		defer cancel()
		r = r.WithContext(ctx)
		release, err := s.engine.Admit(ctx)
		if err != nil {
			s.writeRequestError(w, r, err)
			return
		}
		defer release()
		next(w, r)
	}
}

// writeRequestError maps err like writeError after letting the engine
// recognise its own request deadline (503 + Retry-After + timeout
// counter); client cancellations keep the 499 mapping.
func (s *Server) writeRequestError(w http.ResponseWriter, r *http.Request, err error) {
	writeError(w, s.engine.RequestError(r.Context(), err))
}

// ---- handlers ----

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	name, m, err := s.model(r)
	if err != nil {
		writeError(w, err)
		return
	}
	series, single, err := parsePredictRequest(r, m)
	if err != nil {
		writeError(w, err)
		return
	}
	if single {
		proba, coalesced, err := s.engine.PredictSingle(r.Context(), name, series[0])
		if err != nil {
			s.writeRequestError(w, r, err)
			return
		}
		class := core.Argmax(proba)
		writeJSON(w, http.StatusOK, predictResponse{Model: name, Class: &class, Coalesced: coalesced})
		return
	}
	classes, err := s.engine.PredictBatch(r.Context(), m, series)
	if err != nil {
		s.writeRequestError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, predictResponse{Model: name, Classes: classes})
}

func (s *Server) handlePredictProba(w http.ResponseWriter, r *http.Request) {
	name, m, err := s.model(r)
	if err != nil {
		writeError(w, err)
		return
	}
	series, single, err := parsePredictRequest(r, m)
	if err != nil {
		writeError(w, err)
		return
	}
	if single {
		proba, coalesced, err := s.engine.PredictSingle(r.Context(), name, series[0])
		if err != nil {
			s.writeRequestError(w, r, err)
			return
		}
		writeJSON(w, http.StatusOK, probaResponse{Model: name, Proba: proba, Coalesced: coalesced})
		return
	}
	probas, err := s.engine.PredictProbaBatch(r.Context(), m, series)
	if err != nil {
		s.writeRequestError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, probaResponse{Model: name, Probas: probas})
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.engine.Reload(name); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"model": name, "status": "reloaded"})
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"models": s.engine.Registry().List()})
}

// handleHealthz renders the engine's readiness snapshot; a draining
// server answers 503 so health checks fail fast during shutdown while
// in-flight work finishes.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := s.engine.HealthSnapshot()
	code := http.StatusOK
	if !h.Ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.engine.Metrics().WritePrometheus(w)
}

// statusRecorder captures the response status for metrics.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.code = code
	sr.ResponseWriter.WriteHeader(code)
}

// Unwrap lets http.ResponseController reach the underlying writer's
// Flush/EnableFullDuplex through the middleware wrapper — without it the
// /stream endpoint's per-line flushing and full-duplex opt-in silently
// degrade to ErrNotSupported and long dialogues die once the server's
// write buffer fills (pinned by TestStreamEndpointLongDialogue).
func (sr *statusRecorder) Unwrap() http.ResponseWriter { return sr.ResponseWriter }

// instrument wraps the mux with panic recovery and metrics: the in-flight
// gauge, per-route/status counters and the latency histogram.
func (s *Server) instrument(next http.Handler) http.Handler {
	logger := s.engine.Logger()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		finish := s.engine.Metrics().RequestStarted()
		start := time.Now()
		sr := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		route := routeLabel(r)
		defer func() {
			if rec := recover(); rec != nil {
				if logger != nil {
					logger.Printf("panic serving %s %s: %v", r.Method, r.URL.Path, rec)
				}
				writeJSON(sr, http.StatusInternalServerError, errorResponse{Error: "internal error"})
			}
			finish(route, sr.code, time.Since(start).Seconds())
			if logger != nil && sr.code >= 400 {
				logger.Printf("%s %s -> %d (%.1fms)", r.Method, r.URL.Path, sr.code, float64(time.Since(start).Microseconds())/1000)
			}
		}()
		next.ServeHTTP(sr, r)
	})
}

// routeLabel collapses request paths onto low-cardinality metric labels so
// model names don't explode the per-route counter space.
func routeLabel(r *http.Request) string {
	switch {
	case r.URL.Path == "/healthz":
		return "healthz"
	case r.URL.Path == "/metrics":
		return "metrics"
	case r.URL.Path == "/v1/models":
		return "models"
	case strings.HasSuffix(r.URL.Path, "/predict"):
		return "predict"
	case strings.HasSuffix(r.URL.Path, "/predict_proba"):
		return "predict_proba"
	case strings.HasSuffix(r.URL.Path, "/stream"):
		return "stream"
	case strings.HasSuffix(r.URL.Path, "/reload"):
		return "reload"
	}
	return "other"
}
