package httpapi

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"mvg/internal/serve/core"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"
)

// heldStream is one NDJSON dialogue kept open under test control: samples
// go in through the pipe, response lines come out of events().
type heldStream struct {
	w      *io.PipeWriter
	respc  chan *http.Response
	t      *testing.T
	events chan streamEvent
	eof    chan struct{}
}

// openStream starts a stream dialogue against url, writes the given
// samples, and leaves the request body open so the session stays
// registered. The returned heldStream reads response lines in the
// background.
func openStream(t *testing.T, url string, samples []float64) *heldStream {
	t.Helper()
	pr, pw := io.Pipe()
	h := &heldStream{
		w:      pw,
		respc:  make(chan *http.Response, 1),
		t:      t,
		events: make(chan streamEvent, 64),
		eof:    make(chan struct{}),
	}
	go func() {
		resp, err := http.Post(url, "application/x-ndjson", pr)
		if err != nil {
			close(h.respc)
			close(h.eof)
			return
		}
		h.respc <- resp
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if strings.TrimSpace(sc.Text()) == "" {
				continue
			}
			var ev streamEvent
			if err := json.Unmarshal(sc.Bytes(), &ev); err == nil {
				h.events <- ev
			}
		}
		resp.Body.Close()
		close(h.eof)
	}()
	for _, x := range samples {
		if _, err := fmt.Fprintf(pw, "%g\n", x); err != nil {
			t.Fatalf("writing sample: %v", err)
		}
	}
	return h
}

// next waits for one response line.
func (h *heldStream) next() streamEvent {
	h.t.Helper()
	select {
	case ev := <-h.events:
		return ev
	case <-time.After(10 * time.Second):
		h.t.Fatal("timed out waiting for a stream response line")
		return streamEvent{}
	}
}

// waitEOF waits for the server to end the dialogue.
func (h *heldStream) waitEOF() {
	h.t.Helper()
	select {
	case <-h.eof:
	case <-time.After(10 * time.Second):
		h.t.Fatal("timed out waiting for end of stream")
	}
}

func (h *heldStream) close() { h.w.Close() }

// TestStreamTenantQuota: with a one-stream-per-tenant quota, a tenant's
// second concurrent dialogue is shed with 429 + Retry-After while another
// tenant still gets in; closing the first dialogue frees the quota.
func TestStreamTenantQuota(t *testing.T) {
	srv, ts := newTestServer(t, core.Config{
		MaxStreams:          8,
		MaxStreamsPerTenant: 1,
		RetryAfter:          3 * time.Second,
	})
	samples := testInputs(1, 30)[0]

	// Both the held stream and the rejected one come from 127.0.0.1, so
	// they share the default remote-addr tenant.
	held := openStream(t, ts.URL+"/v1/models/demo/stream", samples)
	first := held.next()
	if first.Class == nil {
		t.Fatalf("expected a prediction line, got %+v", first)
	}
	waitUntil(t, "session registration", func() bool { return sessionsActive(srv) == 1 })
	if got := srv.Engine().Metrics().ActiveStreams(); got != 1 {
		t.Fatalf("active_streams = %d, want 1", got)
	}

	resp, err := http.Post(ts.URL+"/v1/models/demo/stream", "application/x-ndjson", strings.NewReader("1\n"))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second same-tenant stream status = %d, want 429; body %s", resp.StatusCode, data)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", got)
	}
	if !strings.Contains(string(data), "tenant") {
		t.Fatalf("quota rejection body = %s", data)
	}
	if got := srv.Engine().Metrics().ShedTotal(); got != 1 {
		t.Fatalf("shed_total = %d, want 1", got)
	}

	// A different tenant is not affected by this tenant's quota.
	resp2, events := postStream(t, ts.URL+"/v1/models/demo/stream?tenant=other", streamBody(samples))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("other-tenant stream status = %d, want 200", resp2.StatusCode)
	}
	if last := events[len(events)-1]; !last.Done {
		t.Fatalf("other-tenant stream terminal line = %+v", last)
	}

	// Quota is released with the dialogue.
	held.close()
	held.waitEOF()
	waitUntil(t, "session release", func() bool { return sessionsActive(srv) == 0 })
	resp3, _ := postStream(t, ts.URL+"/v1/models/demo/stream", streamBody(samples))
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("stream after quota release status = %d, want 200", resp3.StatusCode)
	}
}

// TestStreamServerLimit: the global stream ceiling rejects dialogue N+1
// with 429 even when it belongs to a fresh tenant.
func TestStreamServerLimit(t *testing.T) {
	srv, ts := newTestServer(t, core.Config{MaxStreams: 1, MaxStreamsPerTenant: -1})
	samples := testInputs(1, 31)[0]

	held := openStream(t, ts.URL+"/v1/models/demo/stream?tenant=a", samples)
	held.next()
	waitUntil(t, "session registration", func() bool { return sessionsActive(srv) == 1 })

	resp, err := http.Post(ts.URL+"/v1/models/demo/stream?tenant=b", "application/x-ndjson", strings.NewReader("1\n"))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit stream status = %d, want 429; body %s", resp.StatusCode, data)
	}
	held.close()
	held.waitEOF()
}

// TestStreamIdleEviction: a dialogue that stops sending samples is evicted
// at the idle deadline with a terminal error line, a counted eviction, and
// a freed session slot.
func TestStreamIdleEviction(t *testing.T) {
	srv, ts := newTestServer(t, core.Config{StreamIdleTimeout: 100 * time.Millisecond})
	samples := testInputs(1, 32)[0]

	start := time.Now()
	held := openStream(t, ts.URL+"/v1/models/demo/stream", samples)
	first := held.next()
	if first.Class == nil {
		t.Fatalf("expected a prediction line, got %+v", first)
	}
	// ... and now the client goes quiet without closing the body.
	evict := held.next()
	if evict.Error == "" || !strings.Contains(evict.Error, "idle") {
		t.Fatalf("expected idle eviction error line, got %+v", evict)
	}
	held.waitEOF()
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("idle eviction took %v with a 100ms deadline", elapsed)
	}
	if got := srv.Engine().Metrics().StreamEvictedTotal(core.EvictIdle); got != 1 {
		t.Fatalf("stream_evicted_total{idle} = %d, want 1", got)
	}
	waitUntil(t, "session release", func() bool { return sessionsActive(srv) == 0 })
	held.close()

	// Before any output the same eviction is a plain 408 status.
	resp, err := http.Post(ts.URL+"/v1/models/demo/stream", "application/x-ndjson", newSilentBody())
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestTimeout {
		t.Fatalf("pre-output idle eviction status = %d, want 408; body %s", resp.StatusCode, data)
	}
	if got := srv.Engine().Metrics().StreamEvictedTotal(core.EvictIdle); got != 2 {
		t.Fatalf("stream_evicted_total{idle} = %d, want 2", got)
	}
}

// silentBody is a request body that never produces a byte — a client that
// opened a stream and went quiet. Close (called by the transport when the
// request ends) releases the blocked Read so no goroutine outlives it.
type silentBody struct{ unblock chan struct{} }

func newSilentBody() *silentBody { return &silentBody{unblock: make(chan struct{})} }

func (b *silentBody) Read(p []byte) (int, error) { <-b.unblock; return 0, io.EOF }

func (b *silentBody) Close() error {
	select {
	case <-b.unblock:
	default:
		close(b.unblock)
	}
	return nil
}

// stuckClientWriter is a ResponseWriter standing in for a connection whose
// peer stopped reading: it accepts budget bytes (the kernel buffers), then
// every write fails with the write-deadline error net/http surfaces when
// SetWriteDeadline expires.
type stuckClientWriter struct {
	header http.Header
	code   int
	buf    strings.Builder
	budget int
}

func (w *stuckClientWriter) Header() http.Header {
	if w.header == nil {
		w.header = make(http.Header)
	}
	return w.header
}

func (w *stuckClientWriter) WriteHeader(code int) { w.code = code }

func (w *stuckClientWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	if w.buf.Len()+len(p) > w.budget {
		return 0, fmt.Errorf("write tcp 127.0.0.1: %w", os.ErrDeadlineExceeded)
	}
	return w.buf.Write(p)
}

// TestStreamSlowReaderEviction: when response writes die on the write
// deadline (the client stopped reading), the dialogue is evicted and
// counted under reason="slow_reader" instead of spinning on a dead pipe.
func TestStreamSlowReaderEviction(t *testing.T) {
	srv, _ := newTestServer(t, core.Config{})
	base := testInputs(1, 33)[0]
	samples := append(append([]float64{}, base...), base[:8]...) // hop=1: 9 prediction lines

	w := &stuckClientWriter{budget: 300} // roughly two prediction lines
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel() // stands in for net/http cancelling the request context on return
	req := httptest.NewRequest("POST", "/v1/models/demo/stream?hop=1", strings.NewReader(streamBody(samples))).WithContext(ctx)
	srv.ServeHTTP(w, req)

	if w.code != http.StatusOK {
		t.Fatalf("status = %d, want 200 (failure was mid-stream)", w.code)
	}
	if !strings.Contains(w.buf.String(), `"class"`) {
		t.Fatalf("no prediction line got through before the stall:\n%s", w.buf.String())
	}
	if got := srv.Engine().Metrics().StreamEvictedTotal(core.EvictSlowReader); got != 1 {
		t.Fatalf("stream_evicted_total{slow_reader} = %d, want 1", got)
	}
	if got := sessionsActive(srv); got != 0 {
		t.Fatalf("sessions still active after eviction: %d", got)
	}
}

// TestStreamDrainDone: DrainStreams (wired to http.Server.Shutdown in
// mvgserve) ends live dialogues with a done line marked draining, and new
// dialogues are refused with 503.
func TestStreamDrainDone(t *testing.T) {
	srv, ts := newTestServer(t, core.Config{})
	samples := testInputs(1, 34)[0]

	held := openStream(t, ts.URL+"/v1/models/demo/stream", samples)
	first := held.next()
	if first.Class == nil {
		t.Fatalf("expected a prediction line, got %+v", first)
	}

	srv.Engine().DrainStreams()
	done := held.next()
	if !done.Done || !done.Draining {
		t.Fatalf("drain terminal line = %+v, want done with draining=true", done)
	}
	if done.Samples == 0 || done.Predictions != 1 {
		t.Fatalf("drain terminal line = %+v, want the dialogue's tallies", done)
	}
	held.waitEOF()
	held.close()

	resp, err := http.Post(ts.URL+"/v1/models/demo/stream", "application/x-ndjson", strings.NewReader("1\n"))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("stream while draining status = %d, want 503; body %s", resp.StatusCode, data)
	}
}

// TestStreamTenantKey pins the quota-key derivation: explicit ?tenant=
// wins, then the RemoteAddr host, then the raw RemoteAddr.
func TestStreamTenantKey(t *testing.T) {
	cases := []struct {
		url, remote, want string
	}{
		{"/v1/models/demo/stream?tenant=acme", "10.0.0.1:4242", "acme"},
		{"/v1/models/demo/stream", "10.0.0.1:4242", "10.0.0.1"},
		{"/v1/models/demo/stream", "weird-addr", "weird-addr"},
	}
	for _, tc := range cases {
		r := httptest.NewRequest("POST", tc.url, nil)
		r.RemoteAddr = tc.remote
		if got := streamTenant(r); got != tc.want {
			t.Errorf("streamTenant(%q, remote %q) = %q, want %q", tc.url, tc.remote, got, tc.want)
		}
	}
}
