package httpapi

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"mvg/internal/serve/core"
)

// Streaming endpoint: POST /v1/models/{name}/stream carries an NDJSON
// dialogue over one request — each request-body line is one sample (a JSON
// number), and every time the model's sliding window crosses a hop
// boundary the server writes one prediction line back:
//
//	{"sample":640,"class":1,"proba":[0.11,0.89]}
//
// The window length is the model's training length; the hop is the ?hop=N
// query parameter (default 1). Prediction lines carry a "drift" field when
// the model has a drift baseline. The ?alert= parameter arms alert triggers
// (docs/alerting.md#trigger-specs; repeat the parameter — or percent-encode
// ';' — to arm several); their state transitions interleave as alert lines
// right after the prediction that caused them:
//
//	{"alert":"flip","from":"OK","to":"FIRING","sample":640,"value":1}
//
// and FIRING/RESOLVED transitions are also delivered to the server's alert
// sink. When the body ends, a terminal line
//
//	{"done":true,"samples":700,"predictions":8}
//
// closes the dialogue. Errors after the first prediction cannot change the
// HTTP status (headers are gone), so they surface as an {"error":...}
// line followed by end-of-stream; errors before any output use the normal
// status mapping. The stream is context-cancellable: a dropped client
// connection stops extraction at the next sample. The dialogue logic
// itself — hop prediction, alerts, idle eviction, drain — lives in
// core.RunDialogue, shared with the gRPC codec; this file is only the
// NDJSON framing. See docs/streaming.md for the protocol.

type streamErrorEvent struct {
	Error string `json:"error"`
}

// maxStreamLine bounds one NDJSON input line; a single float64 never needs
// more, so larger lines are protocol violations, not big requests.
const maxStreamLine = 4096

// streamReaderGrace is how long a finishing dialogue waits for its body
// reader to exit on its own before force-failing the read (see the join in
// handleStream). It bounds eviction latency, not request latency: clean
// dialogues never wait it out.
const streamReaderGrace = 50 * time.Millisecond

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	hop := 1
	if raw := r.URL.Query().Get("hop"); raw != "" {
		var err error
		hop, err = strconv.Atoi(raw)
		if err != nil {
			writeError(w, core.Errorf(core.StatusBadRequest, "invalid hop %q: %v", raw, err))
			return
		}
	}
	// ';' joins trigger specs but is dropped from raw query strings by
	// net/url (Go 1.17+), so the parameter may be repeated instead —
	// ?alert=a&alert=b — or the ';' percent-encoded as %3B.
	d, err := s.engine.OpenDialogue(core.DialogueConfig{
		Model:  name,
		Hop:    hop,
		Alerts: r.URL.Query()["alert"],
		Tenant: core.TenantKey(r.RemoteAddr, r.URL.Query().Get(core.TenantParam), r.Header.Get(core.TenantHeader)),
	})
	if err != nil {
		writeError(w, err)
		return
	}
	defer d.Close()

	// The dialogue reads the body while writing the response; HTTP/1.1
	// needs full-duplex opted in. Errors (HTTP/2, recorders) are fine —
	// those transports already allow it or buffer the whole body.
	rc := http.NewResponseController(w)
	_ = rc.EnableFullDuplex()

	io := &ndjsonIO{s: s, w: w, rc: rc, enc: json.NewEncoder(w), lines: make(chan core.Samples)}

	// The body is consumed by a dedicated reader goroutine so the
	// dialogue loop can simultaneously watch the idle deadline, the
	// session's drain signal and the request context. The handler MUST
	// NOT return while this goroutine can still touch r.Body: after the
	// handler returns, net/http's connection teardown drains the body
	// itself, and a concurrent Read from here panics the connection
	// ("invalid concurrent Body.Read call"). So on every exit path the
	// deferred join below (1) closes stopReader to unblock a pending
	// channel send, (2) expires the connection read deadline to unblock a
	// Read parked on a silent client, and (3) waits for the goroutine to
	// finish before handing the connection back.
	stopReader := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		defer close(io.lines)
		sent := 0
		emit := func(chunk core.Samples) bool {
			select {
			case io.lines <- chunk:
				return true
			case <-stopReader:
				return false
			}
		}
		sc := bufio.NewScanner(r.Body)
		sc.Buffer(make([]byte, maxStreamLine), maxStreamLine)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			x, err := strconv.ParseFloat(line, 64)
			if err != nil {
				// sent == samples the loop has pushed by the time this chunk
				// is received: the channel is unbuffered and ordered.
				emit(core.Samples{Err: core.Errorf(core.StatusBadRequest,
					"sample %d: not a number: %q", sent, line)})
				return
			}
			if !emit(core.Samples{Values: []float64{x}}) {
				return
			}
			sent++
		}
		if err := sc.Err(); err != nil {
			emit(core.Samples{Err: core.Errorf(core.StatusBadRequest, "reading stream: %v", err)})
		}
	}()
	defer func() {
		close(stopReader)
		// Fast path: the reader already hit EOF or notices stopReader at
		// its next channel send (any buffered body data scans in
		// microseconds). The connection stays pristine and reusable.
		select {
		case <-readerDone:
			return
		case <-time.After(streamReaderGrace):
		}
		// Slow path: the reader is parked inside r.Body.Read on a client
		// that stopped sending (idle eviction, drain, slow reader). Expire
		// the connection read deadline to fail that Read immediately —
		// this sacrifices connection reuse, but every such exit path is
		// already killing the dialogue. Transports without read-deadline
		// support (test recorders) return an error, which is fine: their
		// bodies are in-memory readers that never block.
		_ = rc.SetReadDeadline(time.Now())
		<-readerDone
	}()

	s.engine.RunDialogue(r.Context(), d, io)
}

// ndjsonIO adapts the NDJSON response side of a dialogue to
// core.DialogueIO: one JSON line per event, flushed immediately, under
// per-write deadlines that evict clients who stop reading.
type ndjsonIO struct {
	s     *Server
	w     http.ResponseWriter
	rc    *http.ResponseController
	enc   *json.Encoder
	lines chan core.Samples

	wrote        bool
	writeFailure error
}

func (io *ndjsonIO) Samples() <-chan core.Samples { return io.lines }

// emit writes one response line. Every line renews the write deadline: a
// client that reads, however slowly, keeps the dialogue alive; one that
// stops reading entirely lets the deadline expire once the server-side
// buffers fill, which surfaces as a write error.
func (io *ndjsonIO) emit(ev any) bool {
	streamWrite := io.s.engine.StreamWriteTimeout()
	if streamWrite > 0 {
		_ = io.rc.SetWriteDeadline(time.Now().Add(streamWrite))
	}
	if !io.wrote {
		io.w.Header().Set("Content-Type", "application/x-ndjson")
		io.w.WriteHeader(http.StatusOK)
		io.wrote = true
	}
	if err := io.enc.Encode(ev); err != nil {
		io.writeFailure = err
		return false
	}
	if err := io.rc.Flush(); err != nil && errors.Is(err, os.ErrDeadlineExceeded) {
		io.writeFailure = err
		return false
	}
	return true
}

// send is emit plus slow-reader accounting: a write that died on the
// deadline evicts the stream (counted) with a best-effort terminal
// error line under one fresh deadline; any other write failure is the
// client disconnecting, which needs no farewell.
func (io *ndjsonIO) send(ev any) error {
	if io.emit(ev) {
		return nil
	}
	if errors.Is(io.writeFailure, os.ErrDeadlineExceeded) {
		io.s.engine.Metrics().StreamEvicted(core.EvictSlowReader)
		streamWrite := io.s.engine.StreamWriteTimeout()
		if streamWrite > 0 {
			_ = io.rc.SetWriteDeadline(time.Now().Add(streamWrite))
		}
		_ = io.enc.Encode(streamErrorEvent{Error: fmt.Sprintf(
			"stream evicted: slow reader (no progress within %v write deadline)", streamWrite)})
		_ = io.rc.Flush()
	}
	return io.writeFailure
}

func (io *ndjsonIO) Emit(ev core.StreamEvent) error {
	if ev.Prediction != nil {
		return io.send(*ev.Prediction)
	}
	return io.send(*ev.Alert)
}

func (io *ndjsonIO) EmitDone(done core.StreamDone) error {
	return io.send(done)
}

// EmitError surfaces a terminal failure: before any output it can still
// set the HTTP status through the shared table; after the first line the
// headers are gone, so it becomes an {"error":...} line.
func (io *ndjsonIO) EmitError(err error) {
	if io.wrote {
		io.emit(streamErrorEvent{Error: err.Error()})
		return
	}
	writeError(io.w, err)
}
