package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"mvg/internal/serve/core"
	"net/http"
	"net/http/httptest"
	"net/http/httptrace"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHandlers drives every endpoint through its status-code matrix.
func TestHandlers(t *testing.T) {
	_, ts := newTestServer(t, core.Config{Window: time.Millisecond})
	single := testInputs(1, 10)[0]
	batch := testInputs(3, 11)
	short := make([]float64, 7)

	cases := []struct {
		name     string
		method   string
		path     string
		body     any // nil = no body; string = raw body
		wantCode int
		contains string
	}{
		{"healthz", "GET", "/healthz", nil, 200, `"status":"ok"`},
		{"models listing", "GET", "/v1/models", nil, 200, `"name":"demo"`},
		{"predict single", "POST", "/v1/models/demo/predict", map[string]any{"series": single}, 200, `"class":`},
		{"predict batch", "POST", "/v1/models/demo/predict", map[string]any{"batch": batch}, 200, `"classes":`},
		{"proba single", "POST", "/v1/models/demo/predict_proba", map[string]any{"series": single}, 200, `"proba":`},
		{"proba batch", "POST", "/v1/models/demo/predict_proba", map[string]any{"batch": batch}, 200, `"probas":`},
		{"unknown model", "POST", "/v1/models/ghost/predict", map[string]any{"series": single}, 404, "unknown model"},
		{"wrong length", "POST", "/v1/models/demo/predict", map[string]any{"series": short}, 400, "model expects"},
		{"both series and batch", "POST", "/v1/models/demo/predict", map[string]any{"series": single, "batch": batch}, 400, "exactly one"},
		{"neither", "POST", "/v1/models/demo/predict", map[string]any{}, 400, "must set"},
		{"empty batch", "POST", "/v1/models/demo/predict", map[string]any{"batch": [][]float64{}}, 400, "at least one"},
		{"unknown field", "POST", "/v1/models/demo/predict", map[string]any{"serie": single}, 400, "invalid JSON"},
		{"invalid JSON", "POST", "/v1/models/demo/predict", "{not json", 400, "invalid JSON"},
		{"GET predict", "GET", "/v1/models/demo/predict", nil, 405, ""},
		{"reload", "POST", "/v1/models/demo/reload", nil, 200, "reloaded"},
		{"reload unknown", "POST", "/v1/models/ghost/reload", nil, 404, "unknown model"},
		{"unrouted path", "GET", "/v2/nope", nil, 404, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var body io.Reader
			switch b := tc.body.(type) {
			case nil:
			case string:
				body = strings.NewReader(b)
			default:
				raw, err := json.Marshal(b)
				if err != nil {
					t.Fatal(err)
				}
				body = bytes.NewReader(raw)
			}
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, body)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.wantCode {
				t.Fatalf("status = %d, want %d; body: %s", resp.StatusCode, tc.wantCode, data)
			}
			if tc.contains != "" && !strings.Contains(string(data), tc.contains) {
				t.Fatalf("body %q does not contain %q", data, tc.contains)
			}
		})
	}
}

// TestPredictMatchesModel: the HTTP path (including coalescing) returns
// exactly what the in-process model returns. Go's JSON encoder emits the
// shortest round-tripping float representation, so bit-identity survives
// the wire.
func TestPredictMatchesModel(t *testing.T) {
	model := testModel(t)
	_, ts := newTestServer(t, core.Config{Window: time.Millisecond})
	inputs := testInputs(4, 12)

	wantProba, err := model.PredictProba(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	wantClass, err := model.PredictBatch(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}

	for i, s := range inputs {
		resp, data := postJSON(t, ts.URL+"/v1/models/demo/predict_proba", map[string]any{"series": s})
		if resp.StatusCode != 200 {
			t.Fatalf("status %d: %s", resp.StatusCode, data)
		}
		var pr probaResponse
		if err := json.Unmarshal(data, &pr); err != nil {
			t.Fatal(err)
		}
		if !pr.Coalesced {
			t.Error("single predict_proba should report coalesced=true")
		}
		requireSameRow(t, wantProba[i], pr.Proba)
		sum := 0.0
		for _, v := range pr.Proba {
			sum += v
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Errorf("probabilities sum to %v", sum)
		}

		resp, data = postJSON(t, ts.URL+"/v1/models/demo/predict", map[string]any{"series": s})
		if resp.StatusCode != 200 {
			t.Fatalf("status %d: %s", resp.StatusCode, data)
		}
		var cr predictResponse
		if err := json.Unmarshal(data, &cr); err != nil {
			t.Fatal(err)
		}
		if cr.Class == nil || *cr.Class != wantClass[i] {
			t.Fatalf("class = %v, want %d", cr.Class, wantClass[i])
		}
	}

	// The batch form agrees too.
	resp, data := postJSON(t, ts.URL+"/v1/models/demo/predict", map[string]any{"batch": inputs})
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var br predictResponse
	if err := json.Unmarshal(data, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Classes) != len(inputs) {
		t.Fatalf("%d classes for %d series", len(br.Classes), len(inputs))
	}
	for i := range br.Classes {
		if br.Classes[i] != wantClass[i] {
			t.Fatalf("batch class %d = %d, want %d", i, br.Classes[i], wantClass[i])
		}
	}
}

// TestConcurrentPredicts hammers the HTTP path from many clients; combined
// with -race this exercises handler + coalescer + registry concurrency.
func TestConcurrentPredicts(t *testing.T) {
	_, ts := newTestServer(t, core.Config{Window: 500 * time.Microsecond, MaxBatch: 8})
	inputs := testInputs(6, 13)
	var wg sync.WaitGroup
	errs := make(chan error, 12)
	for g := 0; g < 12; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := inputs[g%len(inputs)]
			resp, data := postJSONQuiet(ts.URL+"/v1/models/demo/predict", map[string]any{"series": s})
			if resp == nil {
				errs <- fmt.Errorf("request failed")
				return
			}
			if resp.StatusCode != 200 {
				errs <- fmt.Errorf("status %d: %s", resp.StatusCode, data)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestMetricsEndpoint checks the Prometheus exposition after real traffic.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, core.Config{Window: time.Millisecond})
	single := testInputs(1, 14)[0]
	postJSON(t, ts.URL+"/v1/models/demo/predict", map[string]any{"series": single})
	get(t, ts.URL+"/healthz")

	resp, data := get(t, ts.URL+"/metrics")
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	for _, want := range []string{
		`mvgserve_requests_total{route="predict",code="200"}`,
		`mvgserve_requests_total{route="healthz",code="200"}`,
		"mvgserve_in_flight_requests",
		"mvgserve_request_duration_seconds_bucket",
		"mvgserve_batch_size_count",
		"mvgserve_coalesced_batches_total",
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("metrics output missing %q:\n%s", want, data)
		}
	}
}

// TestGracefulShutdown is the SIGTERM drain integration test: requests in
// flight when shutdown starts are answered, requests after are rejected.
func TestGracefulShutdown(t *testing.T) {
	srv, ts := newTestServer(t, core.Config{Window: 50 * time.Millisecond, MaxBatch: 64})
	inputs := testInputs(4, 15)

	// Park requests inside the coalescing window so they are mid-flight
	// when shutdown begins.
	var wg sync.WaitGroup
	errs := make(chan error, len(inputs))
	for i := range inputs {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, data := postJSONQuiet(ts.URL+"/v1/models/demo/predict", map[string]any{"series": inputs[i]})
			if resp == nil {
				errs <- fmt.Errorf("in-flight request dropped during drain")
				return
			}
			if resp.StatusCode != 200 {
				errs <- fmt.Errorf("in-flight request got %d: %s", resp.StatusCode, data)
			}
		}()
	}
	time.Sleep(10 * time.Millisecond) // let the requests enter the window

	// Mirror cmd/mvgserve's drain order: stop the listener first (waits
	// for active handlers, which are blocked on the coalescer), then close
	// the coalescers.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := ts.Config.Shutdown(ctx); err != nil {
		t.Fatalf("http shutdown: %v", err)
	}
	if err := srv.Engine().Shutdown(ctx); err != nil {
		t.Fatalf("server shutdown: %v", err)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The coalescer is gone: direct predictions now report draining.
	rec := httptest.NewRecorder()
	raw, _ := json.Marshal(map[string]any{"series": inputs[0]})
	req := httptest.NewRequest("POST", "/v1/models/demo/predict", bytes.NewReader(raw))
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("predict after shutdown = %d, want 503", rec.Code)
	}
}

// TestPanicRecovery: a panicking handler inside the instrument middleware
// is answered with a JSON 500, counted in the per-route metrics, and —
// because the panic is recovered rather than re-thrown — the keep-alive
// connection survives and serves the next request.
func TestPanicRecovery(t *testing.T) {
	srv, _ := newTestServer(t, core.Config{Window: time.Millisecond})
	mux := http.NewServeMux()
	mux.HandleFunc("/panic", func(w http.ResponseWriter, r *http.Request) {
		panic("boom: injected handler panic")
	})
	mux.Handle("/", srv) // everything else is the real server
	ts := httptest.NewServer(srv.instrument(mux))
	defer ts.Close()
	client := ts.Client()

	resp, err := client.Get(ts.URL + "/panic")
	if err != nil {
		t.Fatalf("panicking handler broke the connection: %v", err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	if !strings.Contains(string(data), "internal error") {
		t.Fatalf("panic response body = %s, want the opaque internal-error JSON", data)
	}

	// The same pooled connection must serve the next request: trace
	// connection reuse explicitly instead of trusting the status code.
	reused := false
	trace := &httptrace.ClientTrace{GotConn: func(info httptrace.GotConnInfo) { reused = info.Reused }}
	req, _ := http.NewRequestWithContext(httptrace.WithClientTrace(context.Background(), trace), "GET", ts.URL+"/healthz", nil)
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after panic = %d, body %s", resp.StatusCode, data)
	}
	if !reused {
		t.Error("connection was not reused after the recovered panic")
	}

	// The 500 is attributed to the panicking route in the counters. The
	// /panic path is outside the API surface, so it lands on "other".
	var buf bytes.Buffer
	srv.Engine().Metrics().WritePrometheus(&buf)
	if want := `mvgserve_requests_total{route="other",code="500"} 1`; !strings.Contains(buf.String(), want) {
		t.Errorf("metrics missing %q:\n%s", want, buf.String())
	}
}

// TestShutdownContextCancelled: a cancelled drain context surfaces as an
// error instead of hanging.
func TestShutdownContextCancelled(t *testing.T) {
	srv, ts := newTestServer(t, core.Config{Window: time.Hour, MaxBatch: 64})
	// Park one request behind the hour-long window so the drain has work
	// to do, then cancel immediately.
	go postJSONQuiet(ts.URL+"/v1/models/demo/predict", map[string]any{"series": testInputs(1, 16)[0]})
	time.Sleep(20 * time.Millisecond)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := srv.Engine().Shutdown(ctx)
	// The flush itself is fast, so this may legitimately win the race and
	// return nil; both outcomes are correct, hanging is the failure mode.
	if err != nil && !strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("unexpected shutdown error: %v", err)
	}
	// Complete the drain so the parked request is answered.
	srv.Engine().Shutdown(context.Background())
}
