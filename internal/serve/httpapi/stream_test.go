package httpapi

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"mvg/internal/serve/core"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// streamEvent is the decode superset of the /stream endpoint's four
// response line shapes (StreamPrediction, StreamAlertEvent, done, error).
// Prediction lines have Class != nil; alert lines have Alert != "".
type streamEvent struct {
	Sample      int       `json:"sample"`
	Class       *int      `json:"class"`
	Proba       []float64 `json:"proba"`
	Drift       *float64  `json:"drift"`
	Alert       string    `json:"alert"`
	From        string    `json:"from"`
	To          string    `json:"to"`
	Value       float64   `json:"value"`
	Done        bool      `json:"done"`
	Samples     int       `json:"samples"`
	Predictions int       `json:"predictions"`
	Draining    bool      `json:"draining"`
	Error       string    `json:"error"`
}

// streamBody renders samples as the NDJSON request body (one per line).
func streamBody(samples []float64) string {
	var b strings.Builder
	for _, x := range samples {
		fmt.Fprintf(&b, "%g\n", x)
	}
	return b.String()
}

// postStream POSTs an NDJSON body and decodes every response line.
func postStream(t *testing.T, url, body string) (*http.Response, []streamEvent) {
	t.Helper()
	resp, err := http.Post(url, "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var events []streamEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		var ev streamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return resp, events
}

func TestStreamEndpoint(t *testing.T) {
	_, ts := newTestServer(t, core.Config{})
	model := testModel(t)
	const hop = 32
	inputs := testInputs(2, 5)
	samples := append(append([]float64{}, inputs[0]...), inputs[1]...)

	resp, events := postStream(t, ts.URL+"/v1/models/demo/stream?hop=32", streamBody(samples))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); got != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", got)
	}
	wantPredictions := (len(samples)-testSeriesLen)/hop + 1
	if len(events) != wantPredictions+1 {
		t.Fatalf("got %d lines, want %d predictions + done", len(events), wantPredictions)
	}
	last := events[len(events)-1]
	if !last.Done || last.Samples != len(samples) || last.Predictions != wantPredictions {
		t.Fatalf("terminal line = %+v, want done with %d samples / %d predictions", last, len(samples), wantPredictions)
	}
	// Every prediction line must agree with batch prediction on the
	// materialized window (the stream determinism contract, through HTTP).
	for _, ev := range events[:len(events)-1] {
		if ev.Class == nil || len(ev.Proba) != 2 {
			t.Fatalf("prediction line %+v lacks class/proba", ev)
		}
		window := samples[ev.Sample-testSeriesLen : ev.Sample]
		want, err := model.PredictBatch(context.Background(), [][]float64{window})
		if err != nil {
			t.Fatal(err)
		}
		if *ev.Class != want[0] {
			t.Fatalf("sample %d: streamed class %d, batch %d", ev.Sample, *ev.Class, want[0])
		}
	}
}

// TestStreamEndpointLongDialogue pushes a dialogue whose response far
// exceeds the server's write buffer over a real connection at hop=1.
// This is the regression test for the middleware's ResponseController
// pass-through (statusRecorder.Unwrap): without it, EnableFullDuplex and
// Flush silently fail, the server closes the half-read body once its
// buffered output fills, and the dialogue dies mid-stream with
// "invalid Read on closed Body".
func TestStreamEndpointLongDialogue(t *testing.T) {
	_, ts := newTestServer(t, core.Config{})
	base := testInputs(1, 9)[0]
	samples := make([]float64, 0, 20*len(base))
	for i := 0; i < 20; i++ {
		samples = append(samples, base...)
	}
	resp, events := postStream(t, ts.URL+"/v1/models/demo/stream?hop=1", streamBody(samples))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	for _, ev := range events {
		if ev.Error != "" {
			t.Fatalf("dialogue died mid-stream: %q", ev.Error)
		}
	}
	wantPredictions := len(samples) - testSeriesLen + 1
	last := events[len(events)-1]
	if !last.Done || last.Predictions != wantPredictions || len(events) != wantPredictions+1 {
		t.Fatalf("got %d lines, terminal %+v; want %d predictions then done", len(events), last, wantPredictions)
	}
}

func TestStreamEndpointErrors(t *testing.T) {
	_, ts := newTestServer(t, core.Config{})

	// Unknown model → 404 before any streaming.
	resp, _ := postStream(t, ts.URL+"/v1/models/nope/stream", "1\n")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model status = %d, want 404", resp.StatusCode)
	}
	// Bad hop → 400.
	for _, q := range []string{"?hop=x", "?hop=0", "?hop=100000"} {
		resp, _ = postStream(t, ts.URL+"/v1/models/demo/stream"+q, "1\n")
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("hop %q status = %d, want 400", q, resp.StatusCode)
		}
	}
	// Malformed sample before any prediction → 400 status.
	resp, _ = postStream(t, ts.URL+"/v1/models/demo/stream", "1\nbananas\n")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed sample status = %d, want 400", resp.StatusCode)
	}
	// Non-finite sample → 400 with the taxonomy message.
	resp, events := postStream(t, ts.URL+"/v1/models/demo/stream", "1\nNaN\n")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("NaN sample status = %d, want 400", resp.StatusCode)
	}
	if len(events) == 0 || events[len(events)-1].Error == "" {
		t.Fatalf("NaN sample produced no error line: %+v", events)
	}
	// Malformed sample after a prediction: status already sent, so the
	// error arrives as a terminal NDJSON line.
	samples := testInputs(1, 6)[0]
	body := streamBody(samples) + "not-a-number\n"
	resp, events = postStream(t, ts.URL+"/v1/models/demo/stream", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mid-stream error status = %d, want 200 (already streaming)", resp.StatusCode)
	}
	if len(events) < 2 {
		t.Fatalf("got %d lines, want a prediction plus an error line", len(events))
	}
	if last := events[len(events)-1]; last.Error == "" || last.Done {
		t.Fatalf("terminal line = %+v, want error", last)
	}
	// An empty body is a valid (if pointless) dialogue.
	resp, events = postStream(t, ts.URL+"/v1/models/demo/stream", "")
	if resp.StatusCode != http.StatusOK || len(events) != 1 || !events[0].Done {
		t.Fatalf("empty body: status %d events %+v", resp.StatusCode, events)
	}
}

// cancellableBody serves a fixed NDJSON prefix, then blocks until its
// context is cancelled — the shape of a live sensor feed whose client
// disappears mid-dialogue. drained is closed when the prefix has been
// fully consumed (i.e. every sample is being / has been processed).
type cancellableBody struct {
	ctx     context.Context
	prefix  io.Reader
	drained chan struct{}
	once    sync.Once
}

func (b *cancellableBody) Read(p []byte) (int, error) {
	n, err := b.prefix.Read(p)
	if n > 0 || err != io.EOF {
		return n, err
	}
	b.once.Do(func() { close(b.drained) })
	<-b.ctx.Done()
	return 0, b.ctx.Err()
}

// TestStreamEndpointCancellation abandons the dialogue mid-stream and
// checks the handler returns promptly instead of blocking on the dead
// connection. It drives ServeHTTP directly so the cancellation point is
// deterministic.
func TestStreamEndpointCancellation(t *testing.T) {
	srv, _ := newTestServer(t, core.Config{})
	ctx, cancel := context.WithCancel(context.Background())
	samples := testInputs(1, 7)[0]
	body := &cancellableBody{ctx: ctx, prefix: strings.NewReader(streamBody(samples)), drained: make(chan struct{})}
	req := httptest.NewRequest(http.MethodPost, "/v1/models/demo/stream?hop=32", body).WithContext(ctx)
	rec := httptest.NewRecorder()

	done := make(chan struct{})
	go func() {
		srv.ServeHTTP(rec, req)
		close(done)
	}()
	// Wait until every sample has been handed to the handler (so at least
	// one prediction is in flight or written), then vanish.
	select {
	case <-body.drained:
	case <-time.After(30 * time.Second):
		t.Fatal("handler never consumed the sample prefix")
	}
	cancel()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("handler did not return after the request context was cancelled")
	}
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200 (stream was live before the cancel)", rec.Code)
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	var last streamEvent
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Done {
		t.Fatalf("cancelled dialogue still emitted a done line: %+v", last)
	}
}
