package httpapi

import (
	"fmt"
	"io"
	"math"
	"mvg/internal/serve/core"
	"net/http"
	"strings"
	"sync"
	"testing"

	"mvg"
)

// captureSink is a test mvg.AlertSink recording every delivered event.
type captureSink struct {
	mu     sync.Mutex
	events []mvg.AlertEvent
	closed int
}

func (s *captureSink) Deliver(ev mvg.AlertEvent) {
	s.mu.Lock()
	s.events = append(s.events, ev)
	s.mu.Unlock()
}

func (s *captureSink) Close() error {
	s.mu.Lock()
	s.closed++
	s.mu.Unlock()
	return nil
}

func (s *captureSink) snapshot() []mvg.AlertEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]mvg.AlertEvent(nil), s.events...)
}

// alertBody returns a stream body engineered to flip the model's
// prediction: a class-0 window, then class 1, then class 0 again, so a
// flip trigger fires on the middle stretch and resolves on the last.
func alertBody(t *testing.T) string {
	t.Helper()
	series, labels := testDataset(7)
	var smooth, noisy []float64
	for i, lab := range labels {
		if lab == 0 && smooth == nil {
			smooth = series[i]
		}
		if lab == 1 && noisy == nil {
			noisy = series[i]
		}
	}
	samples := append(append(append([]float64{}, smooth...), noisy...), smooth...)
	return streamBody(samples)
}

func TestStreamDriftField(t *testing.T) {
	_, ts := newTestServer(t, core.Config{})
	testModel(t)
	inputs := testInputs(1, 5)

	_, events := postStream(t, ts.URL+"/v1/models/demo/stream?hop=32", streamBody(inputs[0]))
	preds := 0
	for _, ev := range events {
		if ev.Class == nil {
			continue
		}
		preds++
		if ev.Drift == nil {
			t.Fatalf("prediction line %+v lacks drift (model has a baseline)", ev)
		}
		if d := *ev.Drift; math.IsNaN(d) || math.IsInf(d, 0) || d < 0 {
			t.Fatalf("drift = %v, want finite non-negative", d)
		}
	}
	if preds == 0 {
		t.Fatal("no prediction lines")
	}
}

func TestStreamAlertDialogue(t *testing.T) {
	_, ts := newTestServer(t, core.Config{})
	testModel(t)

	url := ts.URL + "/v1/models/demo/stream?hop=32&alert=kind=flip" +
		"&alert=kind=proba,name=hot,class=1,rise=0.8,clear=0.2"
	resp, events := postStream(t, url, alertBody(t))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}

	// Alert lines must interleave directly after the prediction that caused
	// them, sharing its samples-consumed sample value.
	lastPredSample := -1
	var firing, resolved int
	seen := map[string]bool{}
	for _, ev := range events {
		switch {
		case ev.Class != nil:
			lastPredSample = ev.Sample
		case ev.Alert != "":
			seen[ev.Alert] = true
			if ev.Sample != lastPredSample {
				t.Fatalf("alert line sample %d does not match preceding prediction sample %d", ev.Sample, lastPredSample)
			}
			if ev.From == "" || ev.To == "" {
				t.Fatalf("alert line %+v lacks from/to", ev)
			}
			if ev.To == "FIRING" {
				firing++
			}
			if ev.To == "RESOLVED" {
				resolved++
			}
		}
	}
	if !seen["flip"] {
		t.Fatalf("no transitions for the flip trigger; events=%+v", events)
	}
	if firing == 0 || resolved == 0 {
		t.Fatalf("want at least one FIRING and one RESOLVED transition, got %d/%d", firing, resolved)
	}
	if !events[len(events)-1].Done {
		t.Fatal("dialogue did not end with a done line")
	}
}

func TestStreamAlertBadSpec(t *testing.T) {
	_, ts := newTestServer(t, core.Config{})
	testModel(t)
	for _, q := range []string{
		"alert=kind=nope",
		"alert=kind=proba,class=0,rise=0.4,clear=0.6", // clear >= rise
		"alert=kind=proba",                            // missing levels
		"alert=garbage",
	} {
		resp, err := http.Post(ts.URL+"/v1/models/demo/stream?"+q, "application/x-ndjson", strings.NewReader("1\n"))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("?%s: status = %d, want 400", q, resp.StatusCode)
		}
	}
}

func TestStreamAlertMetrics(t *testing.T) {
	_, ts := newTestServer(t, core.Config{})
	testModel(t)

	url := ts.URL + "/v1/models/demo/stream?hop=32&alert=kind=flip"
	if resp, _ := postStream(t, url, alertBody(t)); resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d", resp.StatusCode)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"# TYPE mvgserve_alert_state gauge",
		`mvgserve_alert_state{trigger="flip",state=`,
		"# TYPE mvgserve_alert_transitions_total counter",
		`mvgserve_alert_transitions_total{trigger="flip",to="FIRING"}`,
		`mvgserve_alert_transitions_total{trigger="flip",to="RESOLVED"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q\n%s", want, body)
		}
	}
	// The dialogue is over: every state cell for the trigger must be back
	// to zero (started streams were removed at end-of-dialogue).
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, `mvgserve_alert_state{trigger="flip"`) && !strings.HasSuffix(line, " 0") {
			t.Fatalf("stale alert-state gauge after dialogue end: %q", line)
		}
	}
}

func TestStreamAlertSinkDelivery(t *testing.T) {
	sink := &captureSink{}
	_, ts := newTestServer(t, core.Config{AlertSink: sink})
	testModel(t)

	url := ts.URL + "/v1/models/demo/stream?hop=32&alert=kind=flip"
	_, events := postStream(t, url, alertBody(t))

	wireSamples := map[int]bool{}
	var wantDelivered int
	for _, ev := range events {
		if ev.Alert != "" {
			wireSamples[ev.Sample] = true
			if ev.To == "FIRING" || ev.To == "RESOLVED" {
				wantDelivered++
			}
		}
	}
	got := sink.snapshot()
	if len(got) != wantDelivered || wantDelivered == 0 {
		t.Fatalf("sink got %d events, want %d (from %d wire alert lines)", len(got), wantDelivered, len(wireSamples))
	}
	for _, ev := range got {
		if ev.Model != "demo" || ev.Trigger != "flip" {
			t.Fatalf("event %+v: want model demo / trigger flip", ev)
		}
		if ev.To != "FIRING" && ev.To != "RESOLVED" {
			t.Fatalf("sink delivered non-terminal transition %+v", ev)
		}
		if !wireSamples[ev.Sample] {
			t.Fatalf("sink event sample %d not among wire alert samples %v", ev.Sample, wireSamples)
		}
		if ev.At.IsZero() {
			t.Fatalf("event %+v lacks a timestamp", ev)
		}
	}
	// The server must never close a sink it does not own.
	ts.Close()
	if sink.closed != 0 {
		t.Fatal("server closed the caller-owned sink")
	}
}

// TestStreamAlertConcurrentSharedSink drives many alerting dialogues at
// once through one shared sink — the ISSUE's -race satellite: per-stream
// evaluators are independent, the sink and metrics are shared.
func TestStreamAlertConcurrentSharedSink(t *testing.T) {
	sink := &captureSink{}
	srv, ts := newTestServer(t, core.Config{AlertSink: sink})
	testModel(t)
	body := alertBody(t)

	const dialogues = 8
	results := make([]int, dialogues)
	var wg sync.WaitGroup
	for i := 0; i < dialogues; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			url := fmt.Sprintf("%s/v1/models/demo/stream?hop=32&alert=kind=flip,name=t%d", ts.URL, i)
			resp, err := http.Post(url, "application/x-ndjson", strings.NewReader(body))
			if err != nil {
				return
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return
			}
			for _, line := range strings.Split(string(raw), "\n") {
				if strings.Contains(line, `"alert"`) && (strings.Contains(line, `"to":"FIRING"`) || strings.Contains(line, `"to":"RESOLVED"`)) {
					results[i]++
				}
			}
		}(i)
	}
	wg.Wait()

	total := 0
	for i, n := range results {
		if n == 0 {
			t.Fatalf("dialogue %d saw no FIRING/RESOLVED transitions", i)
		}
		total += n
	}
	if got := len(sink.snapshot()); got != total {
		t.Fatalf("sink got %d events, wire carried %d", got, total)
	}
	// Identical bodies through per-stream evaluators must transition
	// identically: deliveries per trigger name are uniform.
	perTrigger := map[string]int{}
	for _, ev := range sink.snapshot() {
		perTrigger[ev.Trigger]++
	}
	if len(perTrigger) != dialogues {
		t.Fatalf("want %d distinct triggers, got %v", dialogues, perTrigger)
	}
	for name, n := range perTrigger {
		if n != total/dialogues {
			t.Fatalf("trigger %s delivered %d events, others %d — identical streams diverged", name, n, total/dialogues)
		}
	}
	_ = srv
}
