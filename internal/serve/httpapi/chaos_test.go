package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"mvg/internal/serve/core"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	alertwebhook "mvg/internal/alert/webhook"
	"mvg/internal/faults"
)

// promValue extracts one sample value from a Prometheus text exposition,
// matching the full series name (labels included). Returns ok=false when
// the series is absent.
func promValue(data []byte, series string) (float64, bool) {
	for _, line := range strings.Split(string(data), "\n") {
		rest, found := strings.CutPrefix(line, series)
		if !found || !strings.HasPrefix(rest, " ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			return 0, false
		}
		return v, true
	}
	return 0, false
}

// chaosResult is one client-observed request outcome.
type chaosResult struct {
	kind    string // "predict", "proba", "batch"
	input   int    // index into the reference inputs (single forms)
	code    int
	latency time.Duration
	proba   []float64 // decoded row for 200 single proba responses
	body    string
}

// TestChaosMixedTraffic is the fault-injection acceptance test: mixed
// predict/stream/alert traffic against a tightly-limited server while
// faults come and go (prediction delays, transient failures, stream stalls,
// a flaky webhook receiver). Run under -race. Invariants checked:
//
//   - every request completes, is shed (429), or times out (503) — nothing
//     hangs past the deadline plus slack;
//   - admitted single predict_proba responses are byte-identical to the
//     quiet model's output, faults or not;
//   - the shed / request-timeout counters match what clients observed, and
//     every counter scraped during the storm is monotonic;
//   - no goroutine outlives the storm (leak gate).
func TestChaosMixedTraffic(t *testing.T) {
	before := runtime.NumGoroutine()
	errBoom := errors.New("chaos: injected prediction failure")

	func() {
		inj := faults.New()
		hookInj := faults.New()

		// A webhook receiver with injectable outages: delivery goes through
		// the same harness as the prediction path.
		hookSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if err := hookInj.Fire(r.Context(), "chaos.webhook"); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.WriteHeader(http.StatusOK)
		}))
		defer hookSrv.Close()
		hook, err := alertwebhook.New(alertwebhook.Config{
			URL:     hookSrv.URL,
			Backoff: time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}

		const requestTimeout = 2 * time.Second
		srv, ts := newTestServer(t, core.Config{
			Window:              500 * time.Microsecond,
			MaxBatch:            8,
			MaxInFlight:         4,
			MaxQueue:            8,
			RequestTimeout:      requestTimeout,
			MaxStreams:          16,
			MaxStreamsPerTenant: 8,
			StreamIdleTimeout:   500 * time.Millisecond,
			Faults:              inj,
			AlertSink:           hook,
		})

		// Quiet reference output, computed before any fault is armed.
		model := testModel(t)
		inputs := testInputs(6, 40)
		wantProba, err := model.PredictProba(context.Background(), inputs)
		if err != nil {
			t.Fatal(err)
		}

		// Metrics poller: scrape throughout the storm and flag any counter
		// decrease.
		pollStop := make(chan struct{})
		pollDone := make(chan struct{})
		var monotonicViolation error
		go func() {
			defer close(pollDone)
			series := []string{
				"mvgserve_shed_total",
				"mvgserve_request_timeout_total",
				`mvgserve_stream_evicted_total{reason="idle"}`,
				`mvgserve_stream_evicted_total{reason="slow_reader"}`,
			}
			last := make(map[string]float64)
			for {
				select {
				case <-pollStop:
					return
				case <-time.After(5 * time.Millisecond):
				}
				resp, err := http.Get(ts.URL + "/metrics")
				if err != nil {
					continue
				}
				data := make([]byte, 0, 4096)
				buf := make([]byte, 4096)
				for {
					n, err := resp.Body.Read(buf)
					data = append(data, buf[:n]...)
					if err != nil {
						break
					}
				}
				resp.Body.Close()
				for _, s := range series {
					v, ok := promValue(data, s)
					if !ok {
						if monotonicViolation == nil {
							monotonicViolation = fmt.Errorf("series %s disappeared mid-storm", s)
						}
						continue
					}
					if v < last[s] && monotonicViolation == nil {
						monotonicViolation = fmt.Errorf("counter %s went backwards: %v -> %v", s, last[s], v)
					}
					last[s] = v
				}
			}
		}()

		// Fault schedule: overlapping delay / transient-failure / recovery
		// windows across all three prediction points plus the webhook.
		faultsDone := make(chan struct{})
		go func() {
			defer close(faultsDone)
			hookInj.FailN("chaos.webhook", 4, errBoom) // receiver down, then recovers
			inj.Delay(faults.PointPredict, 3*time.Millisecond)
			time.Sleep(40 * time.Millisecond)
			inj.FailN(faults.PointPredict, 5, errBoom)
			inj.Delay(faults.PointBatchPredict, 2*time.Millisecond)
			time.Sleep(40 * time.Millisecond)
			inj.Clear(faults.PointPredict)
			inj.FailN(faults.PointStreamPredict, 3, errBoom)
			time.Sleep(40 * time.Millisecond)
			inj.Reset()
		}()

		var (
			mu      sync.Mutex
			results []chaosResult
		)
		record := func(res chaosResult) {
			mu.Lock()
			results = append(results, res)
			mu.Unlock()
		}

		var wg sync.WaitGroup

		// Predict traffic: single class, single proba, and batch proba.
		const predictWorkers, perWorker = 6, 12
		for g := 0; g < predictWorkers; g++ {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					idx := (g + i) % len(inputs)
					start := time.Now()
					var res chaosResult
					switch i % 3 {
					case 0:
						resp, data := postJSONQuiet(ts.URL+"/v1/models/demo/predict", map[string]any{"series": inputs[idx]})
						if resp == nil {
							continue
						}
						res = chaosResult{kind: "predict", input: idx, code: resp.StatusCode, body: string(data)}
					case 1:
						resp, data := postJSONQuiet(ts.URL+"/v1/models/demo/predict_proba", map[string]any{"series": inputs[idx]})
						if resp == nil {
							continue
						}
						res = chaosResult{kind: "proba", input: idx, code: resp.StatusCode, body: string(data)}
						if resp.StatusCode == http.StatusOK {
							var pr probaResponse
							if err := json.Unmarshal(data, &pr); err == nil {
								res.proba = pr.Proba
							}
						}
					case 2:
						resp, data := postJSONQuiet(ts.URL+"/v1/models/demo/predict_proba", map[string]any{"batch": inputs[:3]})
						if resp == nil {
							continue
						}
						res = chaosResult{kind: "batch", code: resp.StatusCode, body: string(data)}
					}
					res.latency = time.Since(start)
					record(res)
				}
			}()
		}

		// Stream traffic: complete alerting dialogues whose events hit the
		// flaky webhook, plus one client that goes idle and gets evicted.
		streamSamples := append(append([]float64{}, inputs[0]...), inputs[1]...)
		for g := 0; g < 3; g++ {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				url := fmt.Sprintf("%s/v1/models/demo/stream?hop=32&tenant=chaos%d&alert=kind=flip", ts.URL, g)
				resp, err := http.Post(url, "application/x-ndjson", strings.NewReader(streamBody(streamSamples)))
				if err != nil {
					return
				}
				data := new(strings.Builder)
				buf := make([]byte, 4096)
				for {
					n, err := resp.Body.Read(buf)
					data.Write(buf[:n])
					if err != nil {
						break
					}
				}
				resp.Body.Close()
				record(chaosResult{kind: "stream", code: resp.StatusCode, body: data.String()})
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			held := openStream(t, ts.URL+"/v1/models/demo/stream?tenant=idler", inputs[2])
			held.waitEOF() // the idle deadline ends the dialogue for us
			held.close()
		}()

		// Everything must finish within the deadline envelope; a hang here
		// is exactly the bug this suite exists to catch.
		allDone := make(chan struct{})
		go func() { wg.Wait(); close(allDone) }()
		select {
		case <-allDone:
		case <-time.After(60 * time.Second):
			t.Fatal("chaos traffic did not complete: a request or stream is stuck")
		}
		<-faultsDone
		close(pollStop)
		<-pollDone

		// Per-request invariants.
		var sheds429, timeouts503 uint64
		for _, res := range results {
			switch res.code {
			case http.StatusOK, http.StatusInternalServerError:
			case http.StatusTooManyRequests:
				sheds429++
			case http.StatusServiceUnavailable:
				if !strings.Contains(res.body, "deadline") {
					t.Errorf("unexpected 503 outside the deadline path: %s", res.body)
				}
				timeouts503++
			default:
				t.Errorf("unexpected status %d for %s: %s", res.code, res.kind, res.body)
			}
			if res.kind != "stream" && res.latency > requestTimeout+3*time.Second {
				t.Errorf("%s request took %v, deadline is %v", res.kind, res.latency, requestTimeout)
			}
			// Determinism under chaos: an admitted proba answer is the quiet
			// model's answer, bit for bit.
			if res.kind == "proba" && res.code == http.StatusOK {
				requireSameRow(t, wantProba[res.input], res.proba)
			}
		}

		if monotonicViolation != nil {
			t.Error(monotonicViolation)
		}
		if got := srv.Engine().Metrics().ShedTotal(); got != sheds429 {
			t.Errorf("shed_total = %d, but clients observed %d 429s", got, sheds429)
		}
		if got := srv.Engine().Metrics().RequestTimeoutTotal(); got != timeouts503 {
			t.Errorf("request_timeout_total = %d, but clients observed %d deadline 503s", got, timeouts503)
		}
		if got := srv.Engine().Metrics().StreamEvictedTotal(core.EvictIdle); got < 1 {
			t.Errorf("stream_evicted_total{idle} = %d, want >= 1 (the idler)", got)
		}

		// Final exposition agrees with the in-process counters.
		resp, data := get(t, ts.URL+"/metrics")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("final metrics scrape: %d", resp.StatusCode)
		}
		if v, ok := promValue(data, "mvgserve_shed_total"); !ok || uint64(v) != sheds429 {
			t.Errorf("exposed shed_total = %v (ok=%v), want %d", v, ok, sheds429)
		}
		if v, ok := promValue(data, "mvgserve_request_timeout_total"); !ok || uint64(v) != timeouts503 {
			t.Errorf("exposed request_timeout_total = %v (ok=%v), want %d", v, ok, timeouts503)
		}

		// Orderly teardown, then the leak gate outside this closure.
		ts.Close()
		if err := srv.Engine().Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
		if err := hook.Close(); err != nil {
			t.Fatal(err)
		}
	}()

	waitUntil(t, "goroutines to drain after the storm", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before+2
	})
}

// TestChaosInjectedStreamFault: a mid-dialogue prediction failure surfaces
// as a terminal NDJSON error line (headers are long gone), the session is
// released, and the next dialogue works — transient faults don't poison
// the server.
func TestChaosInjectedStreamFault(t *testing.T) {
	inj := faults.New()
	errBoom := errors.New("chaos: injected stream failure")
	srv, ts := newTestServer(t, core.Config{Faults: inj})
	samples := append(append([]float64{}, testInputs(1, 41)[0]...), testInputs(1, 42)[0]...)

	// First prediction succeeds, second hits the fault.
	inj.Delay(faults.PointStreamPredict, 0)
	resp, events := postStream(t, ts.URL+"/v1/models/demo/stream?hop=32", streamBody(samples))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("clean stream status = %d", resp.StatusCode)
	}
	clean := len(events)

	inj.Reset()
	inj.FailN(faults.PointStreamPredict, 1, errBoom)
	// hop=32 yields several predictions; the first Fire fails, so the error
	// line is the first and only output after the 200 header... unless the
	// failure happens before any write, in which case the status itself
	// reports it. Either way the dialogue terminates cleanly.
	resp, events = postStream(t, ts.URL+"/v1/models/demo/stream?hop=32", streamBody(samples))
	last := events[len(events)-1]
	if resp.StatusCode == http.StatusOK {
		if last.Error == "" && !last.Done {
			t.Fatalf("faulted stream ended without error or done line: %+v", last)
		}
	} else if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("faulted stream status = %d, want 200 or 500", resp.StatusCode)
	}

	// The fault is spent: the next dialogue is clean again.
	inj.Reset()
	resp, events = postStream(t, ts.URL+"/v1/models/demo/stream?hop=32", streamBody(samples))
	if resp.StatusCode != http.StatusOK || len(events) != clean {
		t.Fatalf("post-fault stream: status %d, %d events (want 200, %d)", resp.StatusCode, len(events), clean)
	}
	waitUntil(t, "session release", func() bool { return sessionsActive(srv) == 0 })
}
