package httpapi

import (
	"context"
	"encoding/json"
	"mvg/internal/serve/core"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"mvg/internal/faults"
)

// TestShed429 pins the overload contract end to end: with one in-flight
// slot and no queue, a request that arrives while another is being served
// is shed with 429, a Retry-After header, and a shed counter increment —
// and the admitted request still completes normally.
func TestShed429(t *testing.T) {
	inj := faults.New()
	srv, ts := newTestServer(t, core.Config{
		Window:      time.Millisecond,
		MaxInFlight: 1,
		MaxQueue:    0,
		RetryAfter:  2 * time.Second,
		Faults:      inj,
	})
	single := testInputs(1, 20)[0]

	// Park the first request inside the handler (post-admission) so it
	// deterministically holds the only slot.
	inj.Delay(faults.PointPredict, time.Hour) // cut short by cancel below
	ctx, cancel := context.WithCancel(context.Background())
	held := make(chan struct{})
	go func() {
		defer close(held)
		body, _ := json.Marshal(map[string]any{"series": single})
		req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/models/demo/predict", strings.NewReader(string(body)))
		http.DefaultClient.Do(req) //nolint:bodyclose // cancelled below
	}()
	waitUntil(t, "first request to hold the slot", func() bool {
		inF, _ := limiterDepth(srv)
		return inF == 1
	})

	resp, data := postJSON(t, ts.URL+"/v1/models/demo/predict", map[string]any{"series": single})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429; body %s", resp.StatusCode, data)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Fatalf("Retry-After = %q, want \"2\"", got)
	}
	if !strings.Contains(string(data), "shed") {
		t.Fatalf("shed body = %s", data)
	}
	if got := srv.Engine().Metrics().ShedTotal(); got != 1 {
		t.Fatalf("shed_total = %d, want 1", got)
	}

	// Release the parked request; the limiter drains.
	cancel()
	<-held
	waitUntil(t, "slot release", func() bool { inF, _ := limiterDepth(srv); return inF == 0 })

	// With the slot free the same request is admitted again.
	inj.Reset()
	resp, data = postJSON(t, ts.URL+"/v1/models/demo/predict", map[string]any{"series": single})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-overload status = %d, body %s", resp.StatusCode, data)
	}
}

// TestRequestDeadline503: a predict that cannot finish inside
// -request-timeout is answered 503 + Retry-After (the server's fault, not
// the client's) and counted on mvgserve_request_timeout_total.
func TestRequestDeadline503(t *testing.T) {
	inj := faults.New()
	srv, ts := newTestServer(t, core.Config{
		Window:         time.Millisecond,
		RequestTimeout: 50 * time.Millisecond,
		Faults:         inj,
	})
	inj.Delay(faults.PointPredict, time.Hour) // deadline cuts the sleep short
	single := testInputs(1, 21)[0]

	start := time.Now()
	resp, data := postJSON(t, ts.URL+"/v1/models/demo/predict", map[string]any{"series": single})
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503; body %s", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("timeout response lacks Retry-After")
	}
	if !strings.Contains(string(data), "deadline") {
		t.Fatalf("timeout body = %s", data)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("timed-out request took %v, deadline was 50ms", elapsed)
	}
	if got := srv.Engine().Metrics().RequestTimeoutTotal(); got != 1 {
		t.Fatalf("request_timeout_total = %d, want 1", got)
	}

	// The batch form shares the deadline plumbing.
	inj.Reset()
	inj.Delay(faults.PointBatchPredict, time.Hour)
	resp, data = postJSON(t, ts.URL+"/v1/models/demo/predict_proba", map[string]any{"batch": testInputs(2, 22)})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("batch status = %d, want 503; body %s", resp.StatusCode, data)
	}
	if got := srv.Engine().Metrics().RequestTimeoutTotal(); got != 2 {
		t.Fatalf("request_timeout_total = %d, want 2", got)
	}
}

// TestClientCancelStays499: the server deadline must not steal the 499
// mapping from genuine client cancellations.
func TestClientCancelStays499(t *testing.T) {
	inj := faults.New()
	srv, _ := newTestServer(t, core.Config{
		Window:         time.Millisecond,
		RequestTimeout: time.Hour, // present but never the cause
		Faults:         inj,
	})
	inj.Delay(faults.PointPredict, time.Hour)
	single := testInputs(1, 23)[0]

	ctx, cancel := context.WithCancel(context.Background())
	body, _ := json.Marshal(map[string]any{"series": single})
	req := httptest.NewRequest("POST", "/v1/models/demo/predict", strings.NewReader(string(body))).WithContext(ctx)
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		srv.ServeHTTP(rec, req)
		close(done)
	}()
	waitUntil(t, "handler to reach the fault point", func() bool {
		return inj.Count(faults.PointPredict) >= 1
	})
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("handler did not return after client cancel")
	}
	if rec.Code != core.StatusClientClosedRequest {
		t.Fatalf("status = %d, want 499", rec.Code)
	}
	if got := srv.Engine().Metrics().RequestTimeoutTotal(); got != 0 {
		t.Fatalf("client cancel bumped request_timeout_total to %d", got)
	}
}

// TestQueuedRequestTimesOut: the deadline covers queue wait — a request
// that never gets a slot is answered 503 at its deadline, not parked
// forever.
func TestQueuedRequestTimesOut(t *testing.T) {
	inj := faults.New()
	srv, ts := newTestServer(t, core.Config{
		Window:         time.Millisecond,
		MaxInFlight:    1,
		MaxQueue:       4,
		RequestTimeout: 100 * time.Millisecond,
		Faults:         inj,
	})
	single := testInputs(1, 24)[0]

	inj.Delay(faults.PointPredict, time.Hour)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	held := make(chan struct{})
	go func() {
		defer close(held)
		body, _ := json.Marshal(map[string]any{"series": single})
		req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/models/demo/predict", strings.NewReader(string(body)))
		http.DefaultClient.Do(req) //nolint:bodyclose
	}()
	waitUntil(t, "slot holder", func() bool { inF, _ := limiterDepth(srv); return inF == 1 })

	start := time.Now()
	resp, data := postJSON(t, ts.URL+"/v1/models/demo/predict", map[string]any{"series": single})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("queued request status = %d, want 503; body %s", resp.StatusCode, data)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("queued request took %v despite 100ms deadline", elapsed)
	}
	cancel()
	<-held
}

// TestHealthzReadiness pins the readiness dimensions /healthz exposes for
// fleet health checks: model count, shed state, stream count — and the
// 503 flip once the server drains.
func TestHealthzReadiness(t *testing.T) {
	srv, ts := newTestServer(t, core.Config{Window: time.Millisecond, MaxInFlight: 2, MaxQueue: 2})
	resp, data := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var h struct {
		Status     string `json:"status"`
		Models     int    `json:"models"`
		Ready      bool   `json:"ready"`
		Shedding   bool   `json:"shedding"`
		Streams    int    `json:"streams"`
		InFlight   int    `json:"in_flight"`
		QueueDepth int    `json:"queue_depth"`
	}
	if err := json.Unmarshal(data, &h); err != nil {
		t.Fatalf("healthz body %s: %v", data, err)
	}
	if h.Status != "ok" || h.Models != 1 || !h.Ready || h.Shedding || h.Streams != 0 {
		t.Fatalf("healthz = %+v", h)
	}

	if err := srv.Engine().Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, data = get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz status = %d, want 503; body %s", resp.StatusCode, data)
	}
	if !strings.Contains(string(data), `"status":"draining"`) {
		t.Fatalf("draining healthz body = %s", data)
	}
}

// TestOverloadMetricsExposed asserts the new counters appear on /metrics
// from the first scrape, including the pre-seeded eviction reasons.
func TestOverloadMetricsExposed(t *testing.T) {
	_, ts := newTestServer(t, core.Config{Window: time.Millisecond})
	resp, data := get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	for _, want := range []string{
		"mvgserve_shed_total 0",
		"mvgserve_request_timeout_total 0",
		"mvgserve_active_streams 0",
		`mvgserve_stream_evicted_total{reason="idle"} 0`,
		`mvgserve_stream_evicted_total{reason="slow_reader"} 0`,
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

// TestAdmissionConcurrentChurn hammers a tightly-limited server from many
// clients; run with -race. Every response is 200, 429 or 503, the books
// balance (sheds seen == shed counter), and no goroutine outlives the
// churn.
func TestAdmissionConcurrentChurn(t *testing.T) {
	before := runtime.NumGoroutine()
	func() {
		srv, ts := newTestServer(t, core.Config{
			Window:         500 * time.Microsecond,
			MaxBatch:       8,
			MaxInFlight:    2,
			MaxQueue:       2,
			RequestTimeout: 5 * time.Second,
		})
		single := testInputs(1, 25)[0]
		const workers, perWorker = 8, 10
		var mu sync.Mutex
		codes := make(map[int]int)
		var wg sync.WaitGroup
		for g := 0; g < workers; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					resp, _ := postJSONQuiet(ts.URL+"/v1/models/demo/predict", map[string]any{"series": single})
					if resp == nil {
						continue
					}
					mu.Lock()
					codes[resp.StatusCode]++
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		for code := range codes {
			switch code {
			case http.StatusOK, http.StatusTooManyRequests, http.StatusServiceUnavailable:
			default:
				t.Errorf("unexpected status %d under churn: %v", code, codes)
			}
		}
		if got, want := srv.Engine().Metrics().ShedTotal(), uint64(codes[http.StatusTooManyRequests]); got != want {
			t.Errorf("shed_total = %d, but clients saw %d 429s", got, want)
		}
		ts.Close()
		if err := srv.Engine().Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
	}()
	waitUntil(t, "goroutines to drain", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before+2
	})
}
