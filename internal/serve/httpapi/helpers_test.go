package httpapi

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"mvg"
	"mvg/internal/serve/core"
	"mvg/internal/serve/servetest"
)

// The shared serving fixture lives in servetest so core, httpapi and
// grpcapi train the test model at most once each per binary; these shims
// keep the test bodies on the short local names.
const testSeriesLen = servetest.SeriesLen

func testModel(t *testing.T) *mvg.Model { return servetest.Model(t) }

func testInputs(n int, seed int64) [][]float64 { return servetest.Inputs(n, seed) }

func testDataset(seed int64) ([][]float64, []int) { return servetest.Dataset(seed) }

func requireSameRow(t *testing.T, want, got []float64) {
	t.Helper()
	servetest.RequireSameRow(t, want, got)
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// newTestServer stands up the HTTP codec over a fresh engine serving one
// file-backed model named "demo", wrapped in an httptest.Server.
func newTestServer(t *testing.T, cfg core.Config) (*Server, *httptest.Server) {
	t.Helper()
	model := testModel(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "demo"+core.ModelExt)
	if err := model.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	reg := core.NewRegistry()
	reg.Register("demo", model, path)
	cfg.Registry = reg
	engine, err := core.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(engine)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

// limiterDepth reports the engine's admission occupancy (in-flight,
// queued) through the health snapshot — the tests' window into the
// otherwise-unexported limiter.
func limiterDepth(srv *Server) (inFlight, queued int) {
	h := srv.Engine().HealthSnapshot()
	return h.InFlight, h.QueueDepth
}

// sessionsActive reports the number of live stream sessions.
func sessionsActive(srv *Server) int {
	return srv.Engine().HealthSnapshot().Streams
}

// streamTenant derives the quota key exactly as handleStream does.
func streamTenant(r *http.Request) string {
	return core.TenantKey(r.RemoteAddr, r.URL.Query().Get(core.TenantParam), r.Header.Get(core.TenantHeader))
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func postJSONQuiet(url string, body any) (*http.Response, []byte) {
	raw, err := json.Marshal(body)
	if err != nil {
		return nil, nil
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		return nil, nil
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp, data
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}
