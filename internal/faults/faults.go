// Package faults is the repo's fault-injection surface: a registry of
// named fault points that production code consults on its failure-prone
// paths (model predicts, sink deliveries, stream writes) and that chaos
// tests arm with delays and errors.
//
// The design constraint is zero cost when disarmed: a nil *Injector is a
// valid receiver whose Fire is a single pointer comparison, so wiring a
// fault point into a hot-ish path costs nothing in production builds —
// there is no build tag to forget and no interface call. Points are plain
// strings owned by the code that fires them (see PointPredict and
// friends for the serving layer's names); tests arm them by name.
//
// Firing semantics: a point may carry a delay, an error, or both. The
// delay is applied first (bounded by the context — a cancelled context
// cuts the sleep short and returns ctx.Err()), then the error, if any, is
// returned. An armed error may be bounded with FailN so the first n calls
// fail and later calls succeed — the shape of a dependency that recovers.
package faults

import (
	"context"
	"sync"
	"time"
)

// Fault point names used by the serving layer. Owning them here keeps the
// chaos suite and the firing sites from drifting apart.
const (
	// PointPredict fires before every coalesced batch prediction.
	PointPredict = "serve.predict"
	// PointBatchPredict fires before every batch-form handler prediction.
	PointBatchPredict = "serve.predict_batch"
	// PointStreamPredict fires before every per-hop stream prediction.
	PointStreamPredict = "serve.stream_predict"
)

// Fault point names used by the bulk extraction runner (internal/bulk).
// The crash-recovery suite arms these to kill a run at every interesting
// boundary — before a chunk extracts, after it extracts but before its
// shard lands, and after the shard lands but before the manifest
// checkpoint — and asserts a resumed run converges to a byte-identical
// store (docs/bulk.md).
const (
	// PointBulkChunkExtract fires before each chunk's feature extraction.
	PointBulkChunkExtract = "bulk.extract_chunk"
	// PointBulkShardWrite fires after extraction, before the chunk's shard
	// file is written.
	PointBulkShardWrite = "bulk.write_shard"
	// PointBulkManifestWrite fires after the shard landed, before the
	// manifest checkpoint that records it.
	PointBulkManifestWrite = "bulk.write_manifest"
)

// Injector is a concurrency-safe registry of armed fault points. The zero
// value and the nil pointer are both valid, permanently-disarmed
// injectors.
type Injector struct {
	mu     sync.Mutex
	points map[string]*rule
}

type rule struct {
	delay     time.Duration
	err       error
	remaining int // calls left to fail; -1 = unbounded
	fired     uint64
}

// New returns an empty (disarmed) Injector.
func New() *Injector { return &Injector{} }

func (in *Injector) rule(point string) *rule {
	if in.points == nil {
		in.points = make(map[string]*rule)
	}
	r, ok := in.points[point]
	if !ok {
		r = &rule{remaining: -1}
		in.points[point] = r
	}
	return r
}

// Delay arms point with a sleep applied on every Fire until Clear.
func (in *Injector) Delay(point string, d time.Duration) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rule(point).delay = d
}

// Fail arms point to return err on every Fire until Clear.
func (in *Injector) Fail(point string, err error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	r := in.rule(point)
	r.err = err
	r.remaining = -1
}

// FailN arms point to return err on the next n Fires, then succeed — the
// shape of a dependency that recovers after a bounded outage.
func (in *Injector) FailN(point string, n int, err error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	r := in.rule(point)
	r.err = err
	r.remaining = n
}

// Clear disarms one point; its fire count is preserved.
func (in *Injector) Clear(point string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if r, ok := in.points[point]; ok {
		r.delay, r.err, r.remaining = 0, nil, -1
	}
}

// Reset disarms every point and zeroes all fire counts.
func (in *Injector) Reset() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.points = nil
}

// Count reports how many times point has fired (armed or not, a Fire on a
// known point counts; an unarmed, never-armed point reports zero).
func (in *Injector) Count(point string) uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if r, ok := in.points[point]; ok {
		return r.fired
	}
	return 0
}

// Fire consults point: it sleeps through an armed delay (cut short by ctx,
// whose error is then returned) and returns the armed error, if any. On a
// nil Injector or an unarmed point it returns nil immediately.
func (in *Injector) Fire(ctx context.Context, point string) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	r, ok := in.points[point]
	if !ok {
		in.mu.Unlock()
		return nil
	}
	r.fired++
	delay := r.delay
	var err error
	if r.err != nil && r.remaining != 0 {
		err = r.err
		if r.remaining > 0 {
			r.remaining--
		}
	}
	in.mu.Unlock()

	if delay > 0 {
		t := time.NewTimer(delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return err
}
