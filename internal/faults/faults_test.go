package faults

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

var errBoom = errors.New("boom")

func TestNilAndUnarmed(t *testing.T) {
	var nilInj *Injector
	if err := nilInj.Fire(context.Background(), "x"); err != nil {
		t.Fatalf("nil injector fired: %v", err)
	}
	if got := nilInj.Count("x"); got != 0 {
		t.Fatalf("nil injector count = %d", got)
	}
	in := New()
	if err := in.Fire(context.Background(), "x"); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}
	// A never-armed point is not tracked.
	if got := in.Count("x"); got != 0 {
		t.Fatalf("unarmed count = %d", got)
	}
}

func TestFailAndClear(t *testing.T) {
	in := New()
	in.Fail("p", errBoom)
	for i := 0; i < 3; i++ {
		if err := in.Fire(context.Background(), "p"); !errors.Is(err, errBoom) {
			t.Fatalf("fire %d = %v, want errBoom", i, err)
		}
	}
	in.Clear("p")
	if err := in.Fire(context.Background(), "p"); err != nil {
		t.Fatalf("cleared point fired: %v", err)
	}
	if got := in.Count("p"); got != 4 {
		t.Fatalf("count = %d, want 4 (counts survive Clear)", got)
	}
	in.Reset()
	if got := in.Count("p"); got != 0 {
		t.Fatalf("count after Reset = %d", got)
	}
}

func TestFailN(t *testing.T) {
	in := New()
	in.FailN("p", 2, errBoom)
	for i := 0; i < 2; i++ {
		if err := in.Fire(context.Background(), "p"); !errors.Is(err, errBoom) {
			t.Fatalf("fire %d = %v, want errBoom", i, err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := in.Fire(context.Background(), "p"); err != nil {
			t.Fatalf("post-recovery fire %d = %v, want nil", i, err)
		}
	}
}

func TestDelayHonoursContext(t *testing.T) {
	in := New()
	in.Delay("p", time.Hour)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- in.Fire(ctx, "p") }()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Fire did not respect cancellation")
	}
}

func TestDelayThenError(t *testing.T) {
	in := New()
	in.Delay("p", time.Millisecond)
	in.Fail("p", errBoom)
	start := time.Now()
	if err := in.Fire(context.Background(), "p"); !errors.Is(err, errBoom) {
		t.Fatalf("err = %v, want errBoom", err)
	}
	if time.Since(start) < time.Millisecond {
		t.Fatal("delay was not applied before the error")
	}
}

// TestConcurrentFire hammers one injector from many goroutines while it is
// re-armed concurrently; run with -race. Every fire must be counted.
func TestConcurrentFire(t *testing.T) {
	in := New()
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				in.Fire(context.Background(), "p")
			}
		}()
	}
	for i := 0; i < 50; i++ {
		in.FailN("p", 3, errBoom)
		in.Clear("p")
	}
	wg.Wait()
	if got := in.Count("p"); got != workers*perWorker {
		t.Fatalf("count = %d, want %d", got, workers*perWorker)
	}
}
