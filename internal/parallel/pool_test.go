package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolForEachRunsEveryJob verifies completeness and scratch identity:
// every index runs exactly once, and the scratch a job sees is one of the
// per-worker values (never shared between concurrently-running jobs).
func TestPoolForEachRunsEveryJob(t *testing.T) {
	var scratchID atomic.Int64
	p := NewPool(func() *int64 {
		id := scratchID.Add(1)
		return &id
	})
	defer p.Close()

	const n = 100
	ran := make([]int64, n) // scratch id per job, also proves single execution
	err := p.ForEach(context.Background(), 4, n, func(s *int64, i int) error {
		if ran[i] != 0 {
			t.Errorf("job %d ran twice", i)
		}
		ran[i] = *s
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ran {
		if id == 0 {
			t.Fatalf("job %d never ran", i)
		}
	}
	if ids := scratchID.Load(); ids > 4 {
		t.Errorf("%d scratch values created for 4 workers", ids)
	}
}

// TestPoolScratchPersistsAcrossBatches is the pool's reason to exist: the
// same per-worker scratch values serve batch after batch, instead of being
// rebuilt per call like ForEachScratch's.
func TestPoolScratchPersistsAcrossBatches(t *testing.T) {
	var created atomic.Int64
	p := NewPool(func() *struct{} {
		created.Add(1)
		return &struct{}{}
	})
	defer p.Close()

	for batch := 0; batch < 10; batch++ {
		if err := p.ForEach(context.Background(), 2, 8, func(_ *struct{}, i int) error {
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if c := created.Load(); c > 2 {
		t.Errorf("newScratch called %d times across 10 batches, want <= 2 (one per worker)", c)
	}
}

// TestPoolErrorDeterminism: like ForEachScratch, the error of the
// lowest-numbered failing job wins regardless of scheduling.
func TestPoolErrorDeterminism(t *testing.T) {
	p := NewPool(func() struct{} { return struct{}{} })
	defer p.Close()
	for trial := 0; trial < 20; trial++ {
		err := p.ForEach(context.Background(), 8, 50, func(_ struct{}, i int) error {
			if i%7 == 3 { // fails at 3, 10, 17, ...
				return fmt.Errorf("job %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "job 3" {
			t.Fatalf("trial %d: err = %v, want job 3", trial, err)
		}
	}
}

// TestPoolCancellation: cancelling mid-batch returns ctx.Err() promptly
// and stops claiming new jobs; the pool stays usable afterwards.
func TestPoolCancellation(t *testing.T) {
	p := NewPool(func() struct{} { return struct{}{} })
	defer p.Close()

	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	release := make(chan struct{})
	var cancelOnce sync.Once

	const n = 1000
	err := p.ForEach(ctx, 2, n, func(_ struct{}, i int) error {
		if started.Add(1) == 2 {
			cancelOnce.Do(func() {
				cancel()
				close(release)
			})
		} else {
			<-release // park the other worker until the cancel happened
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s := started.Load(); s > 4 {
		t.Errorf("%d jobs started after cancellation point, want prompt stop", s)
	}

	// The pool still serves fresh batches.
	if err := p.ForEach(context.Background(), 2, 10, func(_ struct{}, i int) error {
		return nil
	}); err != nil {
		t.Fatalf("pool unusable after a cancelled batch: %v", err)
	}
}

// TestPoolPreCancelled: an already-cancelled context runs nothing.
func TestPoolPreCancelled(t *testing.T) {
	p := NewPool(func() struct{} { return struct{}{} })
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := p.ForEach(ctx, 2, 5, func(_ struct{}, i int) error {
		ran = true
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if ran {
		t.Error("job ran despite pre-cancelled context")
	}
}

// TestPoolCloseReleasesGoroutines: Close stops the workers; the goroutine
// count returns to the pre-pool baseline (the no-leak assertion the
// cancellation satellite requires).
func TestPoolCloseReleasesGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	p := NewPool(func() struct{} { return struct{}{} })
	if err := p.ForEach(context.Background(), 8, 64, func(_ struct{}, i int) error {
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if during := runtime.NumGoroutine(); during < before+1 {
		t.Fatalf("expected persistent workers while open: %d goroutines vs %d before", during, before)
	}
	p.Close()
	waitForGoroutines(t, before)

	if err := p.ForEach(context.Background(), 1, 1, func(_ struct{}, i int) error { return nil }); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("ForEach after Close = %v, want ErrPoolClosed", err)
	}
	p.Close() // idempotent
}

// waitForGoroutines retries until the goroutine count drops back to the
// baseline (scheduler exits are asynchronous), failing after 5s.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d alive, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestPoolConcurrentBatches: many goroutines share one pool; every batch
// completes correctly even when batches outnumber workers.
func TestPoolConcurrentBatches(t *testing.T) {
	p := NewPool(func() struct{} { return struct{}{} })
	defer p.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var count atomic.Int64
			if err := p.ForEach(context.Background(), 3, 40, func(_ struct{}, i int) error {
				count.Add(1)
				return nil
			}); err != nil {
				errs <- err
				return
			}
			if c := count.Load(); c != 40 {
				errs <- fmt.Errorf("batch ran %d of 40 jobs", c)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestLimitRunner covers the per-call Runner fallback: completeness,
// cancellation, and nil-context tolerance.
func TestLimitRunner(t *testing.T) {
	run := Limit(4)
	var count atomic.Int64
	if err := run.Run(nil, 25, func(i int) error { count.Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 25 {
		t.Fatalf("ran %d of 25", count.Load())
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := run.Run(ctx, 5, func(i int) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	boom := errors.New("boom")
	err := run.Run(context.Background(), 10, func(i int) error {
		if i >= 4 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}
