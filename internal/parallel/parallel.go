// Package parallel provides the worker-pool executor used by every batch
// stage of the MVG pipeline: feature extraction over a dataset (per-series,
// or per-scale within one long series), grid-search cross validation, and
// any future fan-out (sharding, serving, caching).
//
// The executor makes two guarantees that the pipeline relies on:
//
//   - Determinism. Jobs are identified by index and results are written to
//     caller-owned, index-addressed storage, so the output of a run is
//     independent of scheduling order and of the worker count. When several
//     jobs fail, the error of the lowest-numbered job is returned, so error
//     reporting is deterministic too.
//   - Scratch isolation. ForEachScratch hands every worker goroutine its own
//     scratch value, created once per worker and reused across all jobs that
//     worker executes. Hot loops (e.g. core.Extractor) use this to recycle
//     degree arrays, PAA buffers and motif counters instead of reallocating
//     them per series.
//
// See docs/concurrency.md for the concurrency model exposed to users via
// mvg.Config.Workers.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count against a job count: requested
// <= 0 selects runtime.GOMAXPROCS(0) (one worker per available CPU), and
// the result is clamped to [1, jobs] so no goroutine is ever idle-spawned.
func Workers(requested, jobs int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if jobs > 0 && w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ForEach executes fn(i) for every i in [0, n) across the given number of
// worker goroutines (0 = GOMAXPROCS). Every job runs exactly once, even
// when earlier jobs fail; the error of the lowest failing index is
// returned. With workers == 1 all jobs run on the calling goroutine.
func ForEach(workers, n int, fn func(i int) error) error {
	return ForEachScratch(workers, n,
		func() struct{} { return struct{}{} },
		func(_ struct{}, i int) error { return fn(i) })
}

// ForEachScratch is ForEach with per-worker state: newScratch is called
// once per worker goroutine and the returned value is passed to every job
// that worker executes. fn owns the scratch for the duration of a call and
// may mutate it freely; it must copy anything that outlives the job into
// index-addressed result storage (scratch contents are overwritten by the
// worker's next job).
func ForEachScratch[S any](workers, n int, newScratch func() S, fn func(scratch S, i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers, n)
	if workers == 1 {
		scratch := newScratch()
		var first error
		for i := 0; i < n; i++ {
			if err := fn(scratch, i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := newScratch()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(scratch, i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
