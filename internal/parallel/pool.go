package parallel

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// ErrPoolClosed is returned by Pool.ForEach and Pool.Run after Close: the
// pool's workers have exited and no new batches are accepted. mvg.Pipeline
// translates it into the public mvg.ErrPipelineClosed.
var ErrPoolClosed = errors.New("parallel: pool closed")

// Runner abstracts "run n index-addressed jobs with cooperative
// cancellation": the executor contract shared by the persistent Pool and
// the per-call Limit fallback. Implementations guarantee the ForEach
// determinism rules (index-addressed jobs, lowest-index error wins) and
// return ctx.Err() when the context is cancelled before every job ran.
type Runner interface {
	Run(ctx context.Context, n int, fn func(i int) error) error
}

// RunnerFunc adapts a function to the Runner interface.
type RunnerFunc func(ctx context.Context, n int, fn func(i int) error) error

// Run implements Runner.
func (f RunnerFunc) Run(ctx context.Context, n int, fn func(i int) error) error {
	return f(ctx, n, fn)
}

// Limit returns a per-call Runner: every Run spawns up to workers
// goroutines (<= 0 selects GOMAXPROCS) that exit when the batch drains.
// It is the executor for callers with no long-lived pipeline to borrow a
// Pool from (experiments, one-shot grid searches).
func Limit(workers int) Runner {
	return RunnerFunc(func(ctx context.Context, n int, fn func(i int) error) error {
		return ForEachContext(ctx, workers, n, fn)
	})
}

// ForEachContext is ForEach with cooperative cancellation: the context is
// checked between jobs, so a cancelled batch stops claiming new jobs
// promptly (in-flight jobs finish — fn is never interrupted mid-run) and
// the call returns ctx.Err(). Results of jobs that ran are already in the
// caller's index-addressed storage; jobs after the cancellation point
// simply never execute.
func ForEachContext(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	workers = Workers(workers, n)
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Pool is a persistent worker pool with per-worker scratch: each worker
// goroutine owns one S, created on the worker's first job and reused for
// every job it ever executes — across batches, not just within one. This
// is what makes a warm mvg.Pipeline cheap: the scratch buffers (PAA
// pyramid, CSR arrays, motif counters) stay grown between calls instead of
// being rebuilt per batch, which is the dominant per-call cost for the
// small batches a serving coalescer flushes.
//
// Workers are spawned lazily, growing to the largest worker count any
// batch has requested; idle workers park on a channel receive and cost
// nothing. A Pool must eventually be Closed to release its goroutines
// (mvg.Pipeline arranges this via Close and a GC cleanup fallback).
//
// ForEach keeps the package's determinism contract: jobs are
// index-addressed, results live in caller-owned storage, and the error of
// the lowest failing index wins, so output is independent of scheduling
// and of the worker count.
type Pool[S any] struct {
	newScratch func() S

	mu      sync.Mutex
	spawned int
	closed  bool

	tasks chan func(S)
	quit  chan struct{}
	wg    sync.WaitGroup
}

// NewPool returns an empty pool; no goroutines run until the first batch.
// newScratch is called once per worker goroutine, exactly like
// ForEachScratch's per-worker constructor.
func NewPool[S any](newScratch func() S) *Pool[S] {
	return &Pool[S]{
		newScratch: newScratch,
		tasks:      make(chan func(S)),
		quit:       make(chan struct{}),
	}
}

// ensure grows the worker set to at least k goroutines.
func (p *Pool[S]) ensure(k int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrPoolClosed
	}
	for ; p.spawned < k; p.spawned++ {
		p.wg.Add(1)
		go p.worker()
	}
	return nil
}

func (p *Pool[S]) worker() {
	defer p.wg.Done()
	scratch := p.newScratch()
	for {
		select {
		case task := <-p.tasks:
			task(scratch)
		case <-p.quit:
			return
		}
	}
}

// ForEach executes fn(scratch, i) for every i in [0, n) on the pool,
// fanning across up to `workers` of the persistent goroutines (<= 0
// selects GOMAXPROCS; the cap is clamped to n). The context is checked
// between jobs: on cancellation, running jobs finish, unstarted jobs are
// skipped, and ctx.Err() is returned. After Close it returns ErrPoolClosed.
//
// Concurrent ForEach calls are safe and share the worker set; each batch
// claims at most `workers` of them. A batch that got at least one worker
// always completes (that worker drains every remaining index), so a
// saturated pool degrades to less parallelism, never to deadlock.
func (p *Pool[S]) ForEach(ctx context.Context, workers, n int, fn func(scratch S, i int) error) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	k := Workers(workers, n)
	if err := p.ensure(k); err != nil {
		return err
	}
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	errs := make([]error, n)
	run := func(scratch S) {
		defer wg.Done()
		for ctx.Err() == nil {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			errs[i] = fn(scratch, i)
		}
	}
	// Hand the batch to up to k workers. Any single accepted task is
	// enough for completeness — it loops until the index counter drains —
	// so a Close or cancellation racing the later submissions only costs
	// parallelism.
	submitted := 0
submit:
	for j := 0; j < k; j++ {
		wg.Add(1)
		select {
		case p.tasks <- run:
			submitted++
		case <-p.quit:
			wg.Done()
			break submit
		case <-ctx.Done():
			wg.Done()
			break submit
		}
	}
	if submitted == 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		return ErrPoolClosed
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Run executes scratch-free jobs on the pool — the Runner shape used by
// grid-search cross validation, which needs the pipeline's executor but
// not its extraction scratch.
func (p *Pool[S]) Run(ctx context.Context, workers, n int, fn func(i int) error) error {
	return p.ForEach(ctx, workers, n, func(_ S, i int) error { return fn(i) })
}

// Close stops the workers and waits for them to exit. Batches that already
// hold a worker run to completion first; ForEach calls that arrive after
// (or race) Close without securing a worker return ErrPoolClosed. Close is
// idempotent and safe to call concurrently.
func (p *Pool[S]) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.quit)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
