package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	auto := procs
	if auto > 2 {
		auto = 2 // Workers(<=0, 2) clamps GOMAXPROCS to the job count
	}
	cases := []struct {
		requested, jobs, want int
	}{
		{1, 100, 1},
		{8, 3, 3},
		{4, 0, 4},
		{0, 1000, procs},
		{-5, 2, auto},
	}
	for _, c := range cases {
		got := Workers(c.requested, c.jobs)
		if got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.requested, c.jobs, got, c.want)
		}
	}
}

func TestForEachRunsEveryJobOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 1000
		counts := make([]atomic.Int32, n)
		err := ForEach(workers, n, func(i int) error {
			counts[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachZeroJobs(t *testing.T) {
	called := false
	if err := ForEach(4, 0, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("fn called for n=0")
	}
}

func TestForEachLowestIndexError(t *testing.T) {
	// Several jobs fail; the reported error must always be the lowest
	// failing index, independent of worker count and scheduling.
	for _, workers := range []int{1, 2, 8} {
		err := ForEach(workers, 100, func(i int) error {
			if i%7 == 3 { // fails at 3, 10, 17, ...
				return fmt.Errorf("job %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "job 3" {
			t.Fatalf("workers=%d: err = %v, want job 3", workers, err)
		}
	}
}

func TestForEachScratchPerWorkerIsolation(t *testing.T) {
	// Each worker gets its own scratch; with deterministic job results the
	// output must not depend on which worker ran which job.
	type scratch struct{ buf []int }
	const n = 500
	for _, workers := range []int{1, 3, 16} {
		out := make([]int, n)
		var created atomic.Int32
		err := ForEachScratch(workers, n,
			func() *scratch {
				created.Add(1)
				return &scratch{buf: make([]int, 0, 8)}
			},
			func(s *scratch, i int) error {
				s.buf = s.buf[:0] // reuse across jobs
				for k := 0; k <= i%5; k++ {
					s.buf = append(s.buf, i)
				}
				out[i] = len(s.buf) // copy result out of scratch
				return nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		want := Workers(workers, n)
		if int(created.Load()) != want {
			t.Errorf("workers=%d: newScratch called %d times, want %d", workers, created.Load(), want)
		}
		for i, got := range out {
			if got != i%5+1 {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, got, i%5+1)
			}
		}
	}
}

func TestForEachScratchErrorsDoNotSkipJobs(t *testing.T) {
	const n = 64
	var ran atomic.Int32
	sentinel := errors.New("boom")
	err := ForEachScratch(4, n,
		func() int { return 0 },
		func(_ int, i int) error {
			ran.Add(1)
			if i == 0 {
				return sentinel
			}
			return nil
		})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if got := ran.Load(); got != n {
		t.Fatalf("ran %d jobs, want all %d despite the error", got, n)
	}
}
