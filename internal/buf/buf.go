// Package buf provides the grow-or-allocate slice-reuse helpers shared by
// the extraction hot path (internal/graph, internal/motif, internal/core,
// internal/timeseries). Centralizing the idiom keeps its semantics — when
// a buffer is recycled versus reallocated, and whether contents are
// cleared — consistent everywhere scratch buffers are reused.
package buf

// Grow returns a slice of length n, reusing s's storage when its capacity
// suffices. Contents are unspecified; callers must overwrite every element
// they read.
func Grow[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// GrowZero is Grow with every element of the returned slice zeroed.
func GrowZero[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	clear(s)
	return s
}
