package buf

import "testing"

func TestGrowReusesStorage(t *testing.T) {
	s := make([]int, 0, 8)
	g := Grow(s, 5)
	if len(g) != 5 {
		t.Fatalf("len = %d, want 5", len(g))
	}
	if &g[0] != &s[:1][0] {
		t.Error("Grow did not reuse backing storage within capacity")
	}
	big := Grow(g, 16)
	if len(big) != 16 {
		t.Fatalf("len = %d, want 16", len(big))
	}
}

func TestGrowZero(t *testing.T) {
	s := []int64{1, 2, 3, 4}
	z := GrowZero(s, 3)
	for i, v := range z {
		if v != 0 {
			t.Fatalf("z[%d] = %d, want 0", i, v)
		}
	}
	if &z[0] != &s[0] {
		t.Error("GrowZero did not reuse backing storage within capacity")
	}
	big := GrowZero(z, 100)
	for i, v := range big {
		if v != 0 {
			t.Fatalf("big[%d] = %d, want 0", i, v)
		}
	}
}
