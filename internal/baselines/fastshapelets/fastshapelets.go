// Package fastshapelets implements the Fast Shapelets classifier
// (Rakthanmanon & Keogh, SDM 2013), one of the paper's five comparison
// baselines. Candidate shapelets are discovered cheaply in SAX space:
// subsequences become SAX words, random masking projects similar words
// onto shared signatures, per-class collision statistics score each word's
// distinguishing power, and only the top-scoring candidates are evaluated
// exactly by information gain. The best (shapelet, threshold) pair splits
// the data and the procedure recurses into a decision tree.
package fastshapelets

import (
	"math"
	"math/rand"
	"sort"

	"mvg/internal/ml"
	"mvg/internal/sax"
	"mvg/internal/timeseries"
)

// Params configures the search.
type Params struct {
	// NumProjections is the number of random masking rounds per candidate
	// length (default 10).
	NumProjections int
	// TopK is the number of SAX words evaluated exactly per length
	// (default 10).
	TopK int
	// SAXSegments is the word length (default 8).
	SAXSegments int
	// SAXAlphabet is the cardinality (default 4).
	SAXAlphabet int
	// MaxDepth limits the decision tree (default 12).
	MaxDepth int
	// MinLen, MaxLen, LenStep control the shapelet-length sweep; zero
	// values default to 10%, 60% and ~10 steps of the series length.
	MinLen, MaxLen, LenStep int
	// Seed drives masking.
	Seed int64
}

func (p Params) withDefaults(seriesLen int) Params {
	if p.NumProjections <= 0 {
		p.NumProjections = 10
	}
	if p.TopK <= 0 {
		p.TopK = 10
	}
	if p.SAXSegments <= 0 {
		p.SAXSegments = 8
	}
	if p.SAXAlphabet <= 0 {
		p.SAXAlphabet = 4
	}
	if p.MaxDepth <= 0 {
		p.MaxDepth = 12
	}
	if p.MinLen <= 0 {
		p.MinLen = seriesLen / 10
	}
	if p.MinLen < p.SAXSegments {
		p.MinLen = p.SAXSegments
	}
	if p.MaxLen <= 0 || p.MaxLen > seriesLen {
		p.MaxLen = seriesLen * 6 / 10
	}
	if p.MaxLen < p.MinLen {
		p.MaxLen = p.MinLen
	}
	if p.LenStep <= 0 {
		p.LenStep = (p.MaxLen - p.MinLen) / 10
		if p.LenStep < 1 {
			p.LenStep = 1
		}
	}
	return p
}

// treeNode is one node of the shapelet decision tree.
type treeNode struct {
	shapelet  []float64 // z-normalized; nil for leaves
	threshold float64
	left      int32
	right     int32
	probs     []float64
}

// Model is a fitted Fast Shapelets tree implementing ml.Classifier.
type Model struct {
	P       Params
	classes int
	nodes   []treeNode
}

// New returns an untrained model.
func New(p Params) *Model { return &Model{P: p} }

// Clone returns a fresh untrained model with identical parameters.
func (m *Model) Clone() ml.Classifier { return &Model{P: m.P} }

// Name implements ml.Named.
func (m *Model) Name() string { return "fastshapelets" }

// wordInfo tracks one distinct SAX word at one candidate length.
type wordInfo struct {
	word string
	// firstSeries/firstPos locate a concrete subsequence spelling the word.
	firstSeries int
	firstPos    int
	// series marks which node-local series contain the word.
	series map[int]bool
	// score accumulates distinguishing power across projections.
	score float64
}

type fitState struct {
	X       [][]float64
	y       []int
	classes int
	p       Params
	rng     *rand.Rand
	nodes   []treeNode
}

// Fit builds the shapelet decision tree.
func (m *Model) Fit(X [][]float64, y []int, classes int) error {
	if err := ml.CheckTrainingSet(X, y, classes); err != nil {
		return err
	}
	m.P = m.P.withDefaults(len(X[0]))
	m.classes = classes
	st := &fitState{
		X:       X,
		y:       y,
		classes: classes,
		p:       m.P,
		rng:     rand.New(rand.NewSource(m.P.Seed)),
	}
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	st.grow(idx, 0)
	m.nodes = st.nodes
	return nil
}

func (st *fitState) leaf(idx []int) int32 {
	probs := make([]float64, st.classes)
	for _, i := range idx {
		probs[st.y[i]]++
	}
	ml.Normalize(probs)
	st.nodes = append(st.nodes, treeNode{probs: probs})
	return int32(len(st.nodes) - 1)
}

func entropy(counts []float64, total float64) float64 {
	if total <= 0 {
		return 0
	}
	h := 0.0
	for _, c := range counts {
		if c > 0 {
			p := c / total
			h -= p * math.Log2(p)
		}
	}
	return h
}

// grow recursively builds the subtree over idx.
func (st *fitState) grow(idx []int, depth int) int32 {
	pure := true
	for _, i := range idx[1:] {
		if st.y[i] != st.y[idx[0]] {
			pure = false
			break
		}
	}
	if pure || len(idx) < 4 || depth >= st.p.MaxDepth {
		return st.leaf(idx)
	}

	shapelet, threshold, ok := st.bestShapelet(idx)
	if !ok {
		return st.leaf(idx)
	}

	var leftIdx, rightIdx []int
	for _, i := range idx {
		if minSubseqDist(st.X[i], shapelet) <= threshold {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	if len(leftIdx) == 0 || len(rightIdx) == 0 {
		return st.leaf(idx)
	}
	self := int32(len(st.nodes))
	st.nodes = append(st.nodes, treeNode{shapelet: shapelet, threshold: threshold})
	l := st.grow(leftIdx, depth+1)
	r := st.grow(rightIdx, depth+1)
	st.nodes[self].left = l
	st.nodes[self].right = r
	return self
}

// bestShapelet runs the SAX random-projection search over the node's
// samples and returns the best (shapelet, threshold) by information gain.
func (st *fitState) bestShapelet(idx []int) ([]float64, float64, bool) {
	bestGain := 0.0
	bestGap := 0.0
	var bestShapelet []float64
	bestThreshold := 0.0

	for length := st.p.MinLen; length <= st.p.MaxLen; length += st.p.LenStep {
		if length > len(st.X[idx[0]]) {
			break
		}
		words := st.collectWords(idx, length)
		if len(words) == 0 {
			continue
		}
		st.projectAndScore(words, idx)

		// Evaluate the top-k words exactly.
		list := make([]*wordInfo, 0, len(words))
		for _, w := range words {
			list = append(list, w)
		}
		sort.Slice(list, func(a, b int) bool { return list[a].score > list[b].score })
		k := st.p.TopK
		if k > len(list) {
			k = len(list)
		}
		for _, w := range list[:k] {
			sub := st.X[w.firstSeries][w.firstPos : w.firstPos+length]
			cand := timeseries.ZNormalize(sub)
			gain, threshold, gap := st.evaluateCandidate(idx, cand)
			if gain > bestGain || (gain == bestGain && gap > bestGap) {
				bestGain = gain
				bestGap = gap
				bestShapelet = cand
				bestThreshold = threshold
			}
		}
	}
	return bestShapelet, bestThreshold, bestShapelet != nil && bestGain > 1e-12
}

// collectWords builds the distinct SAX word table for one candidate length.
func (st *fitState) collectWords(idx []int, length int) map[string]*wordInfo {
	enc, err := sax.NewEncoder(st.p.SAXSegments, st.p.SAXAlphabet)
	if err != nil {
		return nil
	}
	words := map[string]*wordInfo{}
	for _, i := range idx {
		series := st.X[i]
		prev := ""
		for start := 0; start+length <= len(series); start++ {
			w, err := enc.Word(series[start : start+length])
			if err != nil {
				return nil
			}
			if w == prev {
				continue // numerosity reduction
			}
			prev = w
			info, ok := words[w]
			if !ok {
				info = &wordInfo{word: w, firstSeries: i, firstPos: start, series: map[int]bool{}}
				words[w] = info
			}
			info.series[i] = true
		}
	}
	return words
}

// projectAndScore runs random masking rounds and accumulates each word's
// class-distinguishing score from collision statistics.
func (st *fitState) projectAndScore(words map[string]*wordInfo, idx []int) {
	classTotals := make([]float64, st.classes)
	for _, i := range idx {
		classTotals[st.y[i]]++
	}
	maskCount := st.p.SAXSegments / 2
	if maskCount < 1 {
		maskCount = 1
	}
	coll := make([]float64, st.classes)
	for r := 0; r < st.p.NumProjections; r++ {
		mask := st.rng.Perm(st.p.SAXSegments)[:maskCount]
		groups := map[string][]*wordInfo{}
		buf := make([]byte, st.p.SAXSegments)
		for _, info := range words {
			copy(buf, info.word)
			for _, pos := range mask {
				buf[pos] = '*'
			}
			sig := string(buf)
			groups[sig] = append(groups[sig], info)
		}
		for _, group := range groups {
			// Per-class series hit counts for the merged group.
			for c := range coll {
				coll[c] = 0
			}
			seen := map[int]bool{}
			for _, info := range group {
				for s := range info.series {
					if !seen[s] {
						seen[s] = true
						coll[st.y[s]]++
					}
				}
			}
			// Distinguishing power: the best one-vs-rest frequency gap.
			for _, info := range group {
				best := 0.0
				for c := 0; c < st.classes; c++ {
					if classTotals[c] == 0 {
						continue
					}
					own := coll[c] / classTotals[c]
					other, cnt := 0.0, 0.0
					for c2 := 0; c2 < st.classes; c2++ {
						if c2 == c || classTotals[c2] == 0 {
							continue
						}
						other += coll[c2] / classTotals[c2]
						cnt++
					}
					if cnt > 0 {
						other /= cnt
					}
					gap := math.Abs(own - other)
					if gap > best {
						best = gap
					}
				}
				info.score += best
			}
		}
	}
}

// evaluateCandidate computes the best information-gain threshold for one
// exact shapelet candidate over the node samples, returning (gain,
// threshold, separation gap).
func (st *fitState) evaluateCandidate(idx []int, cand []float64) (float64, float64, float64) {
	type distLabel struct {
		d float64
		y int
	}
	dl := make([]distLabel, len(idx))
	parentCounts := make([]float64, st.classes)
	for k, i := range idx {
		dl[k] = distLabel{minSubseqDist(st.X[i], cand), st.y[i]}
		parentCounts[st.y[i]]++
	}
	sort.Slice(dl, func(a, b int) bool { return dl[a].d < dl[b].d })
	total := float64(len(dl))
	parentH := entropy(parentCounts, total)

	left := make([]float64, st.classes)
	bestGain, bestThreshold, bestGap := 0.0, 0.0, 0.0
	for k := 0; k+1 < len(dl); k++ {
		left[dl[k].y]++
		if dl[k].d == dl[k+1].d {
			continue
		}
		lTotal := float64(k + 1)
		rTotal := total - lTotal
		rightH := 0.0
		{
			h := 0.0
			for c := range parentCounts {
				r := parentCounts[c] - left[c]
				if r > 0 {
					p := r / rTotal
					h -= p * math.Log2(p)
				}
			}
			rightH = h
		}
		gain := parentH - (lTotal/total)*entropy(left, lTotal) - (rTotal/total)*rightH
		gap := dl[k+1].d - dl[k].d
		if gain > bestGain || (gain == bestGain && gap > bestGap) {
			bestGain = gain
			bestGap = gap
			bestThreshold = (dl[k].d + dl[k+1].d) / 2
		}
	}
	return bestGain, bestThreshold, bestGap
}

// minSubseqDist returns the minimum length-normalized Euclidean distance
// between the (z-normalized) candidate and every z-normalized window of
// the series, with early abandoning.
func minSubseqDist(series, cand []float64) float64 {
	L := len(cand)
	if len(series) < L {
		// Compare against the whole (shorter) series stretched via PAA of
		// the candidate; rare in practice, defined for robustness.
		short, err := timeseries.PAA(cand, len(series))
		if err != nil {
			return math.Inf(1)
		}
		z := timeseries.ZNormalize(series)
		sum := 0.0
		for i := range z {
			d := z[i] - short[i]
			sum += d * d
		}
		return math.Sqrt(sum / float64(len(series)))
	}
	best := math.Inf(1)
	for start := 0; start+L <= len(series); start++ {
		w := timeseries.ZNormalize(series[start : start+L])
		sum := 0.0
		for i := 0; i < L; i++ {
			d := w[i] - cand[i]
			sum += d * d
			if sum >= best*best*float64(L) {
				sum = math.Inf(1)
				break
			}
		}
		if !math.IsInf(sum, 1) {
			d := math.Sqrt(sum / float64(L))
			if d < best {
				best = d
			}
		}
	}
	return best
}

// PredictProba walks the shapelet tree for each series.
func (m *Model) PredictProba(X [][]float64) ([][]float64, error) {
	if m.nodes == nil {
		return nil, ml.ErrNotFitted
	}
	out := make([][]float64, len(X))
	for i, series := range X {
		n := &m.nodes[0]
		for n.shapelet != nil {
			if minSubseqDist(series, n.shapelet) <= n.threshold {
				n = &m.nodes[n.left]
			} else {
				n = &m.nodes[n.right]
			}
		}
		p := make([]float64, len(n.probs))
		copy(p, n.probs)
		out[i] = p
	}
	return out, nil
}

// NumNodes reports the size of the fitted tree.
func (m *Model) NumNodes() int { return len(m.nodes) }
