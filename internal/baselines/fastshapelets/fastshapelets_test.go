package fastshapelets

import (
	"testing"

	"mvg/internal/ml"
	"mvg/internal/synth"
)

func TestLearnsPlantedShapelets(t *testing.T) {
	fam, err := synth.ByName("EngineNoise")
	if err != nil {
		t.Fatal(err)
	}
	train, test := fam.Generate(3)
	m := New(Params{Seed: 1})
	if err := m.Fit(train.Series, train.Labels, train.Classes()); err != nil {
		t.Fatal(err)
	}
	if m.NumNodes() < 3 {
		t.Errorf("tree has only %d nodes; no split found", m.NumNodes())
	}
	proba, err := m.PredictProba(test.Series)
	if err != nil {
		t.Fatal(err)
	}
	acc := ml.Accuracy(ml.Predict(proba), test.Labels)
	if acc < 0.6 {
		t.Errorf("EngineNoise accuracy = %v, want ≥0.6 (planted patterns are FS home turf)", acc)
	}
}

func TestBinaryShapes(t *testing.T) {
	fam, err := synth.ByName("WarpedShapes")
	if err != nil {
		t.Fatal(err)
	}
	train, test := fam.Generate(7)
	m := New(Params{Seed: 2})
	if err := m.Fit(train.Series, train.Labels, train.Classes()); err != nil {
		t.Fatal(err)
	}
	proba, err := m.PredictProba(test.Series)
	if err != nil {
		t.Fatal(err)
	}
	acc := ml.Accuracy(ml.Predict(proba), test.Labels)
	if acc < 0.6 {
		t.Errorf("WarpedShapes accuracy = %v", acc)
	}
}

func TestProbabilitySimplex(t *testing.T) {
	fam, _ := synth.ByName("EngineNoise")
	train, test := fam.Generate(5)
	m := New(Params{Seed: 3})
	if err := m.Fit(train.Series, train.Labels, train.Classes()); err != nil {
		t.Fatal(err)
	}
	proba, err := m.PredictProba(test.Series[:20])
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range proba {
		sum := 0.0
		for _, v := range p {
			if v < 0 || v > 1 {
				t.Fatalf("row %d: invalid probability %v", i, p)
			}
			sum += v
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
}

func TestErrorsAndAccessors(t *testing.T) {
	m := New(Params{})
	if err := m.Fit(nil, nil, 2); err == nil {
		t.Error("empty fit should fail")
	}
	if _, err := m.PredictProba([][]float64{{1}}); err == nil {
		t.Error("predict before fit should fail")
	}
	if m.Name() != "fastshapelets" {
		t.Error("name")
	}
	clone := m.Clone()
	if _, ok := clone.(*Model); !ok {
		t.Error("clone type")
	}
}

func TestPureTrainingData(t *testing.T) {
	// Single-class node: must produce a one-leaf tree, not loop.
	X := [][]float64{
		{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16},
		{2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17},
	}
	y := []int{0, 0}
	m := New(Params{Seed: 4})
	if err := m.Fit(X, y, 2); err != nil {
		t.Fatal(err)
	}
	if m.NumNodes() != 1 {
		t.Errorf("pure data should give a single leaf, got %d", m.NumNodes())
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	fam, _ := synth.ByName("EngineNoise")
	train, test := fam.Generate(11)
	run := func() []int {
		m := New(Params{Seed: 9})
		if err := m.Fit(train.Series, train.Labels, train.Classes()); err != nil {
			t.Fatal(err)
		}
		proba, err := m.PredictProba(test.Series[:25])
		if err != nil {
			t.Fatal(err)
		}
		return ml.Predict(proba)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("predictions differ at %d under a fixed seed", i)
		}
	}
}
