package saxvsm

import (
	"testing"

	"mvg/internal/ml"
	"mvg/internal/synth"
)

func TestConformsOnSeriesData(t *testing.T) {
	// SAX-VSM consumes raw series, so the generic blob fixtures don't
	// apply; use a synthetic series dataset instead.
	fam, err := synth.ByName("FreqSines")
	if err != nil {
		t.Fatal(err)
	}
	train, test := fam.Generate(5)
	m := New(Params{Window: 32, Segments: 8, Alphabet: 4})
	if err := m.Fit(train.Series, train.Labels, train.Classes()); err != nil {
		t.Fatal(err)
	}
	proba, err := m.PredictProba(test.Series)
	if err != nil {
		t.Fatal(err)
	}
	acc := ml.Accuracy(ml.Predict(proba), test.Labels)
	if acc < 0.7 {
		t.Errorf("FreqSines accuracy = %v, want ≥0.7", acc)
	}
	for _, p := range proba {
		sum := 0.0
		for _, v := range p {
			if v < 0 || v > 1 {
				t.Fatalf("invalid probability %v", p)
			}
			sum += v
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("probabilities sum to %v", sum)
		}
	}
}

func TestShapeletDataset(t *testing.T) {
	// Planted local patterns are SAX-VSM home turf.
	fam, err := synth.ByName("EngineNoise")
	if err != nil {
		t.Fatal(err)
	}
	train, test := fam.Generate(9)
	m := New(Params{Window: 24, Segments: 6, Alphabet: 4})
	if err := m.Fit(train.Series, train.Labels, train.Classes()); err != nil {
		t.Fatal(err)
	}
	proba, err := m.PredictProba(test.Series)
	if err != nil {
		t.Fatal(err)
	}
	acc := ml.Accuracy(ml.Predict(proba), test.Labels)
	if acc < 0.6 {
		t.Errorf("EngineNoise accuracy = %v, want ≥0.6", acc)
	}
}

func TestErrorsAndClone(t *testing.T) {
	m := New(Params{})
	if err := m.Fit(nil, nil, 2); err == nil {
		t.Error("empty fit should fail")
	}
	if _, err := m.PredictProba([][]float64{{1, 2, 3}}); err == nil {
		t.Error("predict before fit should fail")
	}
	clone := m.Clone()
	if _, ok := clone.(*Model); !ok {
		t.Error("clone has wrong type")
	}
	if m.Name() == "" {
		t.Error("name should be non-empty")
	}
}

func TestDefaultWindowClamped(t *testing.T) {
	// Very short series: the default window (len/3) must clamp to at least
	// Segments and fit without error.
	X := [][]float64{
		{1, 2, 3, 1, 2, 3, 1, 2, 3, 4, 5, 6},
		{6, 5, 4, 3, 2, 1, 6, 5, 4, 3, 2, 1},
	}
	y := []int{0, 1}
	m := New(Params{Segments: 4, Alphabet: 3})
	if err := m.Fit(X, y, 2); err != nil {
		t.Fatalf("short series fit: %v", err)
	}
	if _, err := m.PredictProba(X); err != nil {
		t.Fatalf("short series predict: %v", err)
	}
}
