// Package saxvsm implements the SAX-VSM time series classifier (Senin &
// Malinchik 2013), one of the paper's five comparison baselines: every
// class's training series are pooled into a bag of sliding-window SAX
// words, the bags become TF-IDF weight vectors, and test series are
// assigned to the class whose vector has the highest cosine similarity
// with the test word bag.
package saxvsm

import (
	"fmt"
	"math"

	"mvg/internal/ml"
	"mvg/internal/sax"
)

// Params configures the symbolic transform.
type Params struct {
	// Window is the sliding-window length; 0 means a third of the series
	// length at fit time (clamped to at least Segments).
	Window int
	// Segments is the PAA word length (default 8).
	Segments int
	// Alphabet is the SAX cardinality (default 4).
	Alphabet int
}

func (p Params) withDefaults() Params {
	if p.Segments <= 0 {
		p.Segments = 8
	}
	if p.Alphabet <= 0 {
		p.Alphabet = 4
	}
	return p
}

// Model is a fitted SAX-VSM classifier implementing ml.Classifier.
type Model struct {
	P       Params
	classes int
	window  int
	enc     *sax.Encoder
	// tfidf[c][word] is the class-c TF-IDF weight of the word.
	tfidf []map[string]float64
	// norms[c] caches ‖tfidf[c]‖.
	norms []float64
}

// New returns an untrained model.
func New(p Params) *Model { return &Model{P: p} }

// Clone returns a fresh untrained model with identical parameters.
func (m *Model) Clone() ml.Classifier { return &Model{P: m.P} }

// Name implements ml.Named.
func (m *Model) Name() string {
	p := m.P.withDefaults()
	return fmt.Sprintf("saxvsm(w=%d,paa=%d,a=%d)", p.Window, p.Segments, p.Alphabet)
}

// Fit pools per-class word bags and computes TF-IDF weights.
func (m *Model) Fit(X [][]float64, y []int, classes int) error {
	if err := ml.CheckTrainingSet(X, y, classes); err != nil {
		return err
	}
	p := m.P.withDefaults()
	m.P = p
	m.classes = classes
	m.window = p.Window
	if m.window <= 0 {
		m.window = len(X[0]) / 3
	}
	if m.window < p.Segments {
		m.window = p.Segments
	}
	if m.window > len(X[0]) {
		m.window = len(X[0])
	}
	enc, err := sax.NewEncoder(p.Segments, p.Alphabet)
	if err != nil {
		return err
	}
	m.enc = enc

	// Per-class term frequencies.
	bags := make([]map[string]float64, classes)
	for c := range bags {
		bags[c] = map[string]float64{}
	}
	for i, series := range X {
		words, err := enc.SlidingWords(series, m.window, true)
		if err != nil {
			return fmt.Errorf("saxvsm: series %d: %w", i, err)
		}
		for _, w := range words {
			bags[y[i]][w]++
		}
	}

	// Document frequency across class corpora.
	df := map[string]int{}
	for _, bag := range bags {
		for w := range bag {
			df[w]++
		}
	}

	// TF-IDF with log-scaled tf and the standard SAX-VSM idf:
	// weight = (1+log tf) · log(C/df). Words present in every class get
	// zero weight and are dropped.
	m.tfidf = make([]map[string]float64, classes)
	m.norms = make([]float64, classes)
	for c, bag := range bags {
		vec := map[string]float64{}
		for w, tf := range bag {
			idf := math.Log(float64(classes) / float64(df[w]))
			if idf <= 0 {
				continue
			}
			vec[w] = (1 + math.Log(tf)) * idf
		}
		m.tfidf[c] = vec
		norm := 0.0
		for _, v := range vec {
			norm += v * v
		}
		m.norms[c] = math.Sqrt(norm)
	}
	return nil
}

// PredictProba returns normalized cosine similarities against each class
// vector (clamped at zero).
func (m *Model) PredictProba(X [][]float64) ([][]float64, error) {
	if m.enc == nil {
		return nil, ml.ErrNotFitted
	}
	out := make([][]float64, len(X))
	for i, series := range X {
		words, err := m.enc.SlidingWords(series, m.window, true)
		if err != nil {
			return nil, fmt.Errorf("saxvsm: series %d: %w", i, err)
		}
		bag := map[string]float64{}
		for _, w := range words {
			bag[w]++
		}
		bagNorm := 0.0
		for _, v := range bag {
			bagNorm += v * v
		}
		bagNorm = math.Sqrt(bagNorm)

		p := make([]float64, m.classes)
		for c := range p {
			if m.norms[c] == 0 || bagNorm == 0 {
				continue
			}
			dot := 0.0
			for w, tf := range bag {
				if weight, ok := m.tfidf[c][w]; ok {
					dot += tf * weight
				}
			}
			sim := dot / (bagNorm * m.norms[c])
			if sim > 0 {
				p[c] = sim
			}
		}
		ml.Normalize(p)
		out[i] = p
	}
	return out, nil
}
