// Package boss implements the BOSS classifier (Bag-of-SFA-Symbols,
// Schäfer 2015), the noise-robust bag-of-words method the paper's related
// work highlights. Sliding windows are transformed with Symbolic Fourier
// Approximation (SFA): the first word-length Fourier coefficients of each
// z-normalized window are quantized with Multiple Coefficient Binning
// (equi-depth bins learned per coefficient on the training windows), the
// resulting words are counted per series with numerosity reduction, and
// test series are classified by 1NN under the asymmetric BOSS distance.
// An ensemble over several window lengths votes on the final label.
package boss

import (
	"fmt"
	"math"
	"sort"

	"mvg/internal/ml"
	"mvg/internal/timeseries"
)

// Params configures the ensemble.
type Params struct {
	// WordLength is the number of Fourier values per word (default 4;
	// must be even — pairs of real/imaginary parts).
	WordLength int
	// Alphabet is the per-coefficient cardinality (default 4).
	Alphabet int
	// Windows lists window lengths; empty means an automatic sweep of
	// roughly {n/8, n/4, n/2} clamped to valid sizes.
	Windows []int
	// EnsembleFactor keeps every window model whose training (leave-one-
	// out) accuracy is within this factor of the best (default 0.92, as
	// in the original).
	EnsembleFactor float64
}

func (p Params) withDefaults() Params {
	if p.WordLength <= 0 {
		p.WordLength = 4
	}
	if p.WordLength%2 == 1 {
		p.WordLength++
	}
	if p.Alphabet <= 1 {
		p.Alphabet = 4
	}
	if p.EnsembleFactor <= 0 || p.EnsembleFactor > 1 {
		p.EnsembleFactor = 0.92
	}
	return p
}

// windowModel is one fitted window-length member of the ensemble.
type windowModel struct {
	window int
	// bins[k] holds the Alphabet-1 split points of coefficient k.
	bins [][]float64
	// histograms[i] is the word bag of training series i.
	histograms []map[string]float64
	looAcc     float64
}

// Model is a fitted BOSS ensemble implementing ml.Classifier.
type Model struct {
	P       Params
	classes int
	labels  []int
	members []windowModel
}

// New returns an untrained model.
func New(p Params) *Model { return &Model{P: p} }

// Clone returns a fresh untrained model with identical parameters.
func (m *Model) Clone() ml.Classifier { return &Model{P: m.P} }

// Name implements ml.Named.
func (m *Model) Name() string {
	p := m.P.withDefaults()
	return fmt.Sprintf("boss(l=%d,a=%d)", p.WordLength, p.Alphabet)
}

// dftCoefficients returns the first l real values of the window's DFT
// (alternating real/imaginary parts of coefficients 1..l/2; coefficient 0
// is skipped because windows are z-normalized, making it zero).
func dftCoefficients(window []float64, l int) []float64 {
	n := len(window)
	out := make([]float64, l)
	for k := 1; k <= l/2; k++ {
		var re, im float64
		w := -2 * math.Pi * float64(k) / float64(n)
		for t, v := range window {
			a := w * float64(t)
			re += v * math.Cos(a)
			im += v * math.Sin(a)
		}
		out[2*(k-1)] = re / float64(n)
		out[2*(k-1)+1] = im / float64(n)
	}
	return out
}

// windowsOf yields the z-normalized sliding windows of a series.
func windowsOf(series []float64, window int) [][]float64 {
	var out [][]float64
	for start := 0; start+window <= len(series); start++ {
		out = append(out, timeseries.ZNormalize(series[start:start+window]))
	}
	return out
}

// learnBins computes equi-depth split points per coefficient (MCB).
func learnBins(coeffs [][]float64, wordLength, alphabet int) [][]float64 {
	bins := make([][]float64, wordLength)
	column := make([]float64, len(coeffs))
	for k := 0; k < wordLength; k++ {
		for i, c := range coeffs {
			column[i] = c[k]
		}
		sort.Float64s(column)
		splits := make([]float64, alphabet-1)
		for b := 1; b < alphabet; b++ {
			idx := b * len(column) / alphabet
			if idx >= len(column) {
				idx = len(column) - 1
			}
			splits[b-1] = column[idx]
		}
		bins[k] = splits
	}
	return bins
}

// wordOf quantizes one coefficient vector against the bins.
func wordOf(coeffs []float64, bins [][]float64) string {
	buf := make([]byte, len(coeffs))
	for k, v := range coeffs {
		s := 0
		for s < len(bins[k]) && v > bins[k][s] {
			s++
		}
		buf[k] = byte('a' + s)
	}
	return string(buf)
}

// bagOf converts a series into its SFA word histogram with numerosity
// reduction.
func (wm *windowModel) bagOf(series []float64, wordLength int) map[string]float64 {
	bag := map[string]float64{}
	prev := ""
	for _, win := range windowsOf(series, wm.window) {
		w := wordOf(dftCoefficients(win, wordLength), wm.bins)
		if w == prev {
			continue
		}
		bag[w]++
		prev = w
	}
	return bag
}

// bossDistance is the asymmetric BOSS distance: squared differences over
// the words present in the query bag only.
func bossDistance(query, ref map[string]float64) float64 {
	d := 0.0
	for w, q := range query {
		diff := q - ref[w]
		d += diff * diff
	}
	return d
}

// Fit trains one window model per candidate length and keeps those within
// EnsembleFactor of the best leave-one-out training accuracy.
func (m *Model) Fit(X [][]float64, y []int, classes int) error {
	if err := ml.CheckTrainingSet(X, y, classes); err != nil {
		return err
	}
	p := m.P.withDefaults()
	m.P = p
	m.classes = classes
	m.labels = y
	n := len(X[0])

	windows := p.Windows
	if len(windows) == 0 {
		for _, w := range []int{n / 8, n / 4, n / 2} {
			if w >= p.WordLength+2 && w <= n {
				windows = append(windows, w)
			}
		}
		if len(windows) == 0 {
			w := p.WordLength + 2
			if w > n {
				w = n
			}
			windows = []int{w}
		}
	}

	var members []windowModel
	for _, window := range windows {
		if window < p.WordLength || window > n {
			continue
		}
		wm := windowModel{window: window}
		// Learn MCB bins from every training window.
		var all [][]float64
		for _, series := range X {
			for _, win := range windowsOf(series, window) {
				all = append(all, dftCoefficients(win, p.WordLength))
			}
		}
		if len(all) == 0 {
			continue
		}
		wm.bins = learnBins(all, p.WordLength, p.Alphabet)
		wm.histograms = make([]map[string]float64, len(X))
		for i, series := range X {
			wm.histograms[i] = wm.bagOf(series, p.WordLength)
		}
		// Leave-one-out 1NN accuracy on the training set.
		hits := 0
		for i := range X {
			best, bestD := -1, math.Inf(1)
			for j := range X {
				if i == j {
					continue
				}
				d := bossDistance(wm.histograms[i], wm.histograms[j])
				if d < bestD {
					best, bestD = j, d
				}
			}
			if best >= 0 && y[best] == y[i] {
				hits++
			}
		}
		wm.looAcc = float64(hits) / float64(len(X))
		members = append(members, wm)
	}
	if len(members) == 0 {
		return fmt.Errorf("boss: no usable window length for series of %d points", n)
	}
	bestAcc := 0.0
	for _, wm := range members {
		if wm.looAcc > bestAcc {
			bestAcc = wm.looAcc
		}
	}
	m.members = m.members[:0]
	for _, wm := range members {
		if wm.looAcc >= p.EnsembleFactor*bestAcc {
			m.members = append(m.members, wm)
		}
	}
	return nil
}

// PredictProba votes across ensemble members: each member casts a 1NN
// vote for its nearest training series' label.
func (m *Model) PredictProba(X [][]float64) ([][]float64, error) {
	if len(m.members) == 0 {
		return nil, ml.ErrNotFitted
	}
	out := make([][]float64, len(X))
	for i, series := range X {
		p := make([]float64, m.classes)
		for _, wm := range m.members {
			bag := wm.bagOf(series, m.P.WordLength)
			best, bestD := -1, math.Inf(1)
			for j, ref := range wm.histograms {
				d := bossDistance(bag, ref)
				if d < bestD {
					best, bestD = j, d
				}
			}
			if best >= 0 {
				p[m.labels[best]]++
			}
		}
		ml.Normalize(p)
		out[i] = p
	}
	return out, nil
}

// Members reports the retained window lengths (for inspection).
func (m *Model) Members() []int {
	out := make([]int, len(m.members))
	for i, wm := range m.members {
		out[i] = wm.window
	}
	return out
}
