package boss

import (
	"math"
	"testing"

	"mvg/internal/ml"
	"mvg/internal/synth"
	"mvg/internal/timeseries"
)

func TestDFTMatchesDirectDefinition(t *testing.T) {
	// Cross-check against the textbook DFT on a known window.
	window := timeseries.ZNormalize([]float64{1, 3, 2, 5, 4, 6, 2, 1})
	l := 4
	got := dftCoefficients(window, l)
	n := len(window)
	for k := 1; k <= l/2; k++ {
		var re, im float64
		for tt, v := range window {
			a := -2 * math.Pi * float64(k) * float64(tt) / float64(n)
			re += v * math.Cos(a)
			im += v * math.Sin(a)
		}
		re /= float64(n)
		im /= float64(n)
		if math.Abs(got[2*(k-1)]-re) > 1e-9 || math.Abs(got[2*(k-1)+1]-im) > 1e-9 {
			t.Fatalf("coefficient %d = (%v,%v), want (%v,%v)",
				k, got[2*(k-1)], got[2*(k-1)+1], re, im)
		}
	}
}

func TestLearnBinsEquiDepth(t *testing.T) {
	// 100 coefficient vectors with a single uniform dimension: splits at
	// roughly the quartiles.
	coeffs := make([][]float64, 100)
	for i := range coeffs {
		coeffs[i] = []float64{float64(i)}
	}
	bins := learnBins(coeffs, 1, 4)
	if len(bins) != 1 || len(bins[0]) != 3 {
		t.Fatalf("bins shape: %v", bins)
	}
	for b, want := range []float64{25, 50, 75} {
		if math.Abs(bins[0][b]-want) > 1.5 {
			t.Errorf("split %d = %v, want ≈%v", b, bins[0][b], want)
		}
	}
	// Words use the splits monotonically.
	if wordOf([]float64{-5}, bins) != "a" || wordOf([]float64{99}, bins) != "d" {
		t.Error("word quantization wrong at the extremes")
	}
}

func TestBossDistanceAsymmetric(t *testing.T) {
	q := map[string]float64{"ab": 2, "cd": 1}
	r := map[string]float64{"ab": 1, "zz": 5}
	// Only words in q count: (2-1)² + (1-0)² = 2.
	if d := bossDistance(q, r); d != 2 {
		t.Errorf("boss distance = %v, want 2", d)
	}
	// Asymmetry: from r's perspective zz counts.
	if d := bossDistance(r, q); d != 1+25 {
		t.Errorf("reverse distance = %v, want 26", d)
	}
}

func TestLearnsFreqSines(t *testing.T) {
	fam, err := synth.ByName("FreqSines")
	if err != nil {
		t.Fatal(err)
	}
	train, test := fam.Generate(5)
	m := New(Params{})
	if err := m.Fit(train.Series, train.Labels, train.Classes()); err != nil {
		t.Fatal(err)
	}
	if len(m.Members()) == 0 {
		t.Fatal("empty ensemble")
	}
	proba, err := m.PredictProba(test.Series)
	if err != nil {
		t.Fatal(err)
	}
	if acc := ml.Accuracy(ml.Predict(proba), test.Labels); acc < 0.8 {
		t.Errorf("FreqSines accuracy = %v (BOSS is frequency-based, this is its home turf)", acc)
	}
}

func TestLearnsAMSignals(t *testing.T) {
	fam, _ := synth.ByName("AMSignals")
	train, test := fam.Generate(7)
	m := New(Params{})
	if err := m.Fit(train.Series, train.Labels, train.Classes()); err != nil {
		t.Fatal(err)
	}
	proba, err := m.PredictProba(test.Series)
	if err != nil {
		t.Fatal(err)
	}
	if acc := ml.Accuracy(ml.Predict(proba), test.Labels); acc < 0.7 {
		t.Errorf("AMSignals accuracy = %v", acc)
	}
}

func TestErrorsAndSimplex(t *testing.T) {
	m := New(Params{})
	if err := m.Fit(nil, nil, 2); err == nil {
		t.Error("empty fit should fail")
	}
	if _, err := m.PredictProba([][]float64{{1}}); err == nil {
		t.Error("predict before fit should fail")
	}
	if m.Name() == "" || m.Clone() == nil {
		t.Error("name/clone")
	}
	fam, _ := synth.ByName("WarpedShapes")
	train, test := fam.Generate(3)
	if err := m.Fit(train.Series, train.Labels, train.Classes()); err != nil {
		t.Fatal(err)
	}
	proba, err := m.PredictProba(test.Series[:10])
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range proba {
		sum := 0.0
		for _, v := range p {
			if v < 0 || v > 1 {
				t.Fatalf("invalid probability %v", p)
			}
			sum += v
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("sums to %v", sum)
		}
	}
}

func TestOddWordLengthRoundsUp(t *testing.T) {
	p := Params{WordLength: 5}.withDefaults()
	if p.WordLength != 6 {
		t.Errorf("odd word length should round up, got %d", p.WordLength)
	}
}
