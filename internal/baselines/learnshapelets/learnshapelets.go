// Package learnshapelets implements the Learning Shapelets classifier
// (Grabocka et al., KDD 2014), the strongest accuracy baseline in the
// paper's Table 3. Instead of searching for shapelets, K shapelets at R
// length scales are *learned* jointly with a linear classifier: the model
// computes a differentiable soft-minimum distance from every shapelet to
// every series, feeds those distances into a softmax classifier, and
// back-propagates the cross-entropy loss into both the classifier weights
// and the shapelet shapes themselves.
package learnshapelets

import (
	"fmt"
	"math"
	"math/rand"

	"mvg/internal/ml"
	"mvg/internal/timeseries"
)

// Params configures learning.
type Params struct {
	// K is the number of shapelets per scale (default 4).
	K int
	// LengthFrac is the base shapelet length as a fraction of the series
	// length (default 0.125).
	LengthFrac float64
	// Scales is the number of length multiples learned: L, 2L, …, R·L
	// (default 3).
	Scales int
	// Alpha is the soft-minimum precision; more negative = closer to hard
	// minimum (default -30).
	Alpha float64
	// LearningRate for SGD (default 0.1).
	LearningRate float64
	// Epochs of SGD over the training set (default 200).
	Epochs int
	// LambdaW is the L2 penalty on classifier weights (default 0.01).
	LambdaW float64
	// Seed drives initialization and sample order.
	Seed int64
}

func (p Params) withDefaults() Params {
	if p.K <= 0 {
		p.K = 4
	}
	if p.LengthFrac <= 0 || p.LengthFrac >= 1 {
		p.LengthFrac = 0.125
	}
	if p.Scales <= 0 {
		p.Scales = 3
	}
	if p.Alpha >= 0 {
		p.Alpha = -30
	}
	if p.LearningRate <= 0 {
		p.LearningRate = 0.1
	}
	if p.Epochs <= 0 {
		p.Epochs = 200
	}
	if p.LambdaW < 0 {
		p.LambdaW = 0
	} else if p.LambdaW == 0 {
		p.LambdaW = 0.01
	}
	return p
}

// Model is a fitted Learning Shapelets classifier implementing
// ml.Classifier.
type Model struct {
	P         Params
	classes   int
	shapelets [][]float64 // all scales concatenated
	// W[c] has len(shapelets)+1 entries; the last is the bias.
	W [][]float64
}

// New returns an untrained model.
func New(p Params) *Model { return &Model{P: p} }

// Clone returns a fresh untrained model with identical parameters.
func (m *Model) Clone() ml.Classifier { return &Model{P: m.P} }

// Name implements ml.Named.
func (m *Model) Name() string {
	p := m.P.withDefaults()
	return fmt.Sprintf("ls(K=%d,R=%d,frac=%.3g)", p.K, p.Scales, p.LengthFrac)
}

// initShapelets seeds shapelets with k-means centroids of all training
// segments at each scale (the initialization recommended by the paper).
func initShapelets(X [][]float64, k, length int, rng *rand.Rand) [][]float64 {
	var segments [][]float64
	for _, series := range X {
		for start := 0; start+length <= len(series); start += length / 2 {
			segments = append(segments, timeseries.ZNormalize(series[start:start+length]))
		}
		if len(segments) > 2000 {
			break
		}
	}
	if len(segments) == 0 {
		return nil
	}
	if k > len(segments) {
		k = len(segments)
	}
	// k-means with a few Lloyd iterations.
	centroids := make([][]float64, k)
	perm := rng.Perm(len(segments))
	for i := 0; i < k; i++ {
		centroids[i] = append([]float64(nil), segments[perm[i]]...)
	}
	assign := make([]int, len(segments))
	for iter := 0; iter < 10; iter++ {
		for si, seg := range segments {
			best, bestD := 0, math.Inf(1)
			for ci, c := range centroids {
				d := 0.0
				for j := range seg {
					dd := seg[j] - c[j]
					d += dd * dd
				}
				if d < bestD {
					best, bestD = ci, d
				}
			}
			assign[si] = best
		}
		counts := make([]int, k)
		sums := make([][]float64, k)
		for i := range sums {
			sums[i] = make([]float64, length)
		}
		for si, seg := range segments {
			counts[assign[si]]++
			s := sums[assign[si]]
			for j, v := range seg {
				s[j] += v
			}
		}
		for ci := range centroids {
			if counts[ci] == 0 {
				continue
			}
			for j := range centroids[ci] {
				centroids[ci][j] = sums[ci][j] / float64(counts[ci])
			}
		}
	}
	return centroids
}

// Fit learns shapelets and classifier weights jointly by SGD.
func (m *Model) Fit(X [][]float64, y []int, classes int) error {
	if err := ml.CheckTrainingSet(X, y, classes); err != nil {
		return err
	}
	p := m.P.withDefaults()
	m.P = p
	m.classes = classes
	rng := rand.New(rand.NewSource(p.Seed))

	// z-normalize inputs once.
	Z := make([][]float64, len(X))
	for i, s := range X {
		Z[i] = timeseries.ZNormalize(s)
	}
	n := len(Z)
	seriesLen := len(Z[0])

	baseLen := int(p.LengthFrac * float64(seriesLen))
	if baseLen < 3 {
		baseLen = 3
	}
	m.shapelets = m.shapelets[:0]
	for r := 1; r <= p.Scales; r++ {
		length := baseLen * r
		if length >= seriesLen {
			break
		}
		m.shapelets = append(m.shapelets, initShapelets(Z, p.K, length, rng)...)
	}
	if len(m.shapelets) == 0 {
		return fmt.Errorf("learnshapelets: series of %d points too short for shapelets", seriesLen)
	}
	K := len(m.shapelets)

	m.W = make([][]float64, classes)
	for c := range m.W {
		m.W[c] = make([]float64, K+1)
		for j := range m.W[c] {
			m.W[c][j] = rng.NormFloat64() * 0.01
		}
	}

	Mfeat := make([]float64, K)
	probs := make([]float64, classes)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	lr := p.LearningRate
	for epoch := 0; epoch < p.Epochs; epoch++ {
		rng.Shuffle(n, func(a, b int) { order[a], order[b] = order[b], order[a] })
		for _, i := range order {
			series := Z[i]
			// Forward: soft-min distances and their soft weights.
			xis := make([][]float64, K)   // ξ per window
			dists := make([][]float64, K) // D per window
			for k, s := range m.shapelets {
				Mfeat[k], xis[k], dists[k] = softMin(series, s, p.Alpha)
			}
			// Softmax classifier.
			maxScore := math.Inf(-1)
			for c := 0; c < classes; c++ {
				score := m.W[c][K]
				for k := 0; k < K; k++ {
					score += m.W[c][k] * Mfeat[k]
				}
				probs[c] = score
				if score > maxScore {
					maxScore = score
				}
			}
			sum := 0.0
			for c := range probs {
				probs[c] = math.Exp(probs[c] - maxScore)
				sum += probs[c]
			}
			for c := range probs {
				probs[c] /= sum
			}
			// Backward.
			for c := 0; c < classes; c++ {
				delta := probs[c]
				if y[i] == c {
					delta -= 1
				}
				for k := 0; k < K; k++ {
					m.W[c][k] -= lr * (delta*Mfeat[k] + p.LambdaW*m.W[c][k])
				}
				m.W[c][K] -= lr * delta
			}
			for k, s := range m.shapelets {
				// ∂L/∂M_k = Σ_c δ_c W_ck (with post-update W, an acceptable
				// SGD approximation).
				dM := 0.0
				for c := 0; c < classes; c++ {
					delta := probs[c]
					if y[i] == c {
						delta -= 1
					}
					dM += delta * m.W[c][k]
				}
				if dM == 0 {
					continue
				}
				L := len(s)
				for j, xi := range xis[k] {
					// ∂M/∂D_j = ξ_j (1 + α (D_j − M)).
					dMdD := xi * (1 + p.Alpha*(dists[k][j]-Mfeat[k]))
					coeff := lr * dM * dMdD * 2 / float64(L)
					if coeff == 0 {
						continue
					}
					seg := series[j : j+L]
					for l := 0; l < L; l++ {
						s[l] -= coeff * (s[l] - seg[l])
					}
				}
			}
		}
		// Gentle learning-rate decay.
		lr = p.LearningRate / (1 + 3*float64(epoch)/float64(p.Epochs))
	}
	return nil
}

// softMin returns the soft-minimum distance M between the shapelet and all
// series windows, the soft weights ξ_j, and the per-window distances D_j.
func softMin(series, shapelet []float64, alpha float64) (float64, []float64, []float64) {
	L := len(shapelet)
	nw := len(series) - L + 1
	if nw < 1 {
		nw = 1
	}
	dists := make([]float64, nw)
	minD := math.Inf(1)
	for j := 0; j < nw; j++ {
		end := j + L
		if end > len(series) {
			end = len(series)
		}
		seg := series[j:end]
		sum := 0.0
		for l := range seg {
			d := seg[l] - shapelet[l]
			sum += d * d
		}
		dists[j] = sum / float64(L)
		if dists[j] < minD {
			minD = dists[j]
		}
	}
	// Numerically stable soft-min weights.
	xis := make([]float64, nw)
	den := 0.0
	for j, d := range dists {
		xis[j] = math.Exp(alpha * (d - minD))
		den += xis[j]
	}
	M := 0.0
	for j := range xis {
		xis[j] /= den
		M += xis[j] * dists[j]
	}
	return M, xis, dists
}

// PredictProba computes soft-min features and applies the softmax layer.
func (m *Model) PredictProba(X [][]float64) ([][]float64, error) {
	if m.W == nil {
		return nil, ml.ErrNotFitted
	}
	K := len(m.shapelets)
	out := make([][]float64, len(X))
	for i, series := range X {
		z := timeseries.ZNormalize(series)
		p := make([]float64, m.classes)
		feats := make([]float64, K)
		for k, s := range m.shapelets {
			feats[k], _, _ = softMin(z, s, m.P.Alpha)
		}
		maxScore := math.Inf(-1)
		for c := 0; c < m.classes; c++ {
			score := m.W[c][K]
			for k := 0; k < K; k++ {
				score += m.W[c][k] * feats[k]
			}
			p[c] = score
			if score > maxScore {
				maxScore = score
			}
		}
		sum := 0.0
		for c := range p {
			p[c] = math.Exp(p[c] - maxScore)
			sum += p[c]
		}
		for c := range p {
			p[c] /= sum
		}
		out[i] = p
	}
	return out, nil
}

// Shapelets exposes the learned shapelets (for inspection and examples).
func (m *Model) Shapelets() [][]float64 { return m.shapelets }
