package learnshapelets

import (
	"math"
	"testing"

	"mvg/internal/ml"
	"mvg/internal/synth"
)

func TestLearnsPlantedShapelets(t *testing.T) {
	fam, err := synth.ByName("EngineNoise")
	if err != nil {
		t.Fatal(err)
	}
	train, test := fam.Generate(3)
	m := New(Params{K: 4, Epochs: 120, Seed: 1})
	if err := m.Fit(train.Series, train.Labels, train.Classes()); err != nil {
		t.Fatal(err)
	}
	proba, err := m.PredictProba(test.Series)
	if err != nil {
		t.Fatal(err)
	}
	acc := ml.Accuracy(ml.Predict(proba), test.Labels)
	if acc < 0.6 {
		t.Errorf("EngineNoise accuracy = %v, want ≥0.6", acc)
	}
}

func TestFreqSines(t *testing.T) {
	fam, _ := synth.ByName("FreqSines")
	train, test := fam.Generate(5)
	m := New(Params{K: 4, Epochs: 120, Seed: 2})
	if err := m.Fit(train.Series, train.Labels, train.Classes()); err != nil {
		t.Fatal(err)
	}
	proba, err := m.PredictProba(test.Series)
	if err != nil {
		t.Fatal(err)
	}
	acc := ml.Accuracy(ml.Predict(proba), test.Labels)
	if acc < 0.7 {
		t.Errorf("FreqSines accuracy = %v, want ≥0.7", acc)
	}
}

func TestSoftMinApproximatesHardMin(t *testing.T) {
	series := []float64{0, 0, 5, 5, 0, 0, 0, 0}
	shapelet := []float64{5, 5}
	M, xis, dists := softMin(series, shapelet, -100)
	hard := math.Inf(1)
	for _, d := range dists {
		hard = math.Min(hard, d)
	}
	if math.Abs(M-hard) > 1e-6 {
		t.Errorf("softmin %v far from hard min %v", M, hard)
	}
	sum := 0.0
	for _, x := range xis {
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("soft weights sum to %v", sum)
	}
}

func TestShapeletShapesAndErrors(t *testing.T) {
	m := New(Params{})
	if err := m.Fit(nil, nil, 2); err == nil {
		t.Error("empty fit should fail")
	}
	if _, err := m.PredictProba([][]float64{{1}}); err == nil {
		t.Error("predict before fit should fail")
	}
	if m.Name() == "" {
		t.Error("name")
	}
	fam, _ := synth.ByName("WarpedShapes")
	train, _ := fam.Generate(1)
	m2 := New(Params{K: 2, Scales: 2, Epochs: 10, Seed: 3})
	if err := m2.Fit(train.Series, train.Labels, train.Classes()); err != nil {
		t.Fatal(err)
	}
	shp := m2.Shapelets()
	if len(shp) == 0 {
		t.Fatal("no shapelets learned")
	}
	base := int(0.125 * float64(train.SeriesLength()))
	for _, s := range shp {
		if len(s) != base && len(s) != 2*base {
			t.Errorf("unexpected shapelet length %d (base %d)", len(s), base)
		}
	}
	clone := m2.Clone()
	if _, err := clone.PredictProba(train.Series[:1]); err == nil {
		t.Error("clone should be untrained")
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	fam, _ := synth.ByName("EngineNoise")
	train, _ := fam.Generate(13)
	short := New(Params{K: 3, Epochs: 3, Seed: 5})
	long := New(Params{K: 3, Epochs: 100, Seed: 5})
	if err := short.Fit(train.Series, train.Labels, train.Classes()); err != nil {
		t.Fatal(err)
	}
	if err := long.Fit(train.Series, train.Labels, train.Classes()); err != nil {
		t.Fatal(err)
	}
	ps, _ := short.PredictProba(train.Series)
	pl, _ := long.PredictProba(train.Series)
	if ml.LogLoss(pl, train.Labels) >= ml.LogLoss(ps, train.Labels) {
		t.Errorf("more epochs should reduce training loss: %v → %v",
			ml.LogLoss(ps, train.Labels), ml.LogLoss(pl, train.Labels))
	}
}
