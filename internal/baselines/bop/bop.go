// Package bop implements the Bag-of-Patterns classifier (Lin, Khade & Li
// 2012), the rotation-invariant bag-of-words approach the paper's related
// work builds on: every series becomes a histogram of sliding-window SAX
// words, and test series are classified by nearest neighbour over the
// histograms.
package bop

import (
	"fmt"
	"math"

	"mvg/internal/ml"
	"mvg/internal/sax"
)

// Params configures the symbolic transform.
type Params struct {
	// Window is the sliding-window length; 0 means a quarter of the series
	// length at fit time.
	Window int
	// Segments is the PAA word length (default 6).
	Segments int
	// Alphabet is the SAX cardinality (default 4).
	Alphabet int
	// K is the neighbourhood size (default 1, as in the original).
	K int
}

func (p Params) withDefaults() Params {
	if p.Segments <= 0 {
		p.Segments = 6
	}
	if p.Alphabet <= 0 {
		p.Alphabet = 4
	}
	if p.K <= 0 {
		p.K = 1
	}
	return p
}

// Model is a fitted Bag-of-Patterns classifier implementing ml.Classifier.
type Model struct {
	P       Params
	classes int
	window  int
	enc     *sax.Encoder
	// vocab maps words to histogram columns; train holds histograms.
	vocab  map[string]int
	train  [][]float64
	labels []int
}

// New returns an untrained model.
func New(p Params) *Model { return &Model{P: p} }

// Clone returns a fresh untrained model with identical parameters.
func (m *Model) Clone() ml.Classifier { return &Model{P: m.P} }

// Name implements ml.Named.
func (m *Model) Name() string {
	p := m.P.withDefaults()
	return fmt.Sprintf("bop(w=%d,paa=%d,a=%d,k=%d)", p.Window, p.Segments, p.Alphabet, p.K)
}

// histogram converts one series into its word histogram over the fitted
// vocabulary. Unknown words are ignored (grow=false) or added (grow=true).
func (m *Model) histogram(series []float64, grow bool) ([]float64, error) {
	words, err := m.enc.SlidingWords(series, m.window, true)
	if err != nil {
		return nil, err
	}
	counts := map[int]float64{}
	for _, w := range words {
		col, ok := m.vocab[w]
		if !ok {
			if !grow {
				continue
			}
			col = len(m.vocab)
			m.vocab[w] = col
		}
		counts[col]++
	}
	h := make([]float64, len(m.vocab))
	for col, c := range counts {
		h[col] = c
	}
	return h, nil
}

// Fit builds histograms for every training series.
func (m *Model) Fit(X [][]float64, y []int, classes int) error {
	if err := ml.CheckTrainingSet(X, y, classes); err != nil {
		return err
	}
	p := m.P.withDefaults()
	m.P = p
	m.classes = classes
	m.window = p.Window
	if m.window <= 0 {
		m.window = len(X[0]) / 4
	}
	if m.window < p.Segments {
		m.window = p.Segments
	}
	if m.window > len(X[0]) {
		m.window = len(X[0])
	}
	enc, err := sax.NewEncoder(p.Segments, p.Alphabet)
	if err != nil {
		return err
	}
	m.enc = enc
	m.vocab = map[string]int{}
	m.labels = y
	m.train = make([][]float64, len(X))
	for i, series := range X {
		h, err := m.histogram(series, true)
		if err != nil {
			return fmt.Errorf("bop: series %d: %w", i, err)
		}
		m.train[i] = h
	}
	// Pad earlier histograms to the final vocabulary width.
	width := len(m.vocab)
	for i, h := range m.train {
		if len(h) < width {
			padded := make([]float64, width)
			copy(padded, h)
			m.train[i] = padded
		}
	}
	return nil
}

// PredictProba votes among the K nearest training histograms (Euclidean
// distance over word counts).
func (m *Model) PredictProba(X [][]float64) ([][]float64, error) {
	if m.enc == nil {
		return nil, ml.ErrNotFitted
	}
	out := make([][]float64, len(X))
	for i, series := range X {
		h, err := m.histogram(series, false)
		if err != nil {
			return nil, err
		}
		type cand struct {
			d float64
			y int
		}
		best := make([]cand, 0, m.P.K)
		for j, th := range m.train {
			d := 0.0
			for c := range th {
				diff := th[c] - h[c]
				d += diff * diff
			}
			d = math.Sqrt(d)
			if len(best) < m.P.K {
				best = append(best, cand{d, m.labels[j]})
			} else {
				worst := 0
				for b := 1; b < len(best); b++ {
					if best[b].d > best[worst].d {
						worst = b
					}
				}
				if d < best[worst].d {
					best[worst] = cand{d, m.labels[j]}
				}
			}
		}
		p := make([]float64, m.classes)
		for _, c := range best {
			p[c.y]++
		}
		ml.Normalize(p)
		out[i] = p
	}
	return out, nil
}
