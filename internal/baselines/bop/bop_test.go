package bop

import (
	"testing"

	"mvg/internal/ml"
	"mvg/internal/synth"
)

func TestLearnsFreqSines(t *testing.T) {
	fam, err := synth.ByName("FreqSines")
	if err != nil {
		t.Fatal(err)
	}
	train, test := fam.Generate(5)
	m := New(Params{Window: 32})
	if err := m.Fit(train.Series, train.Labels, train.Classes()); err != nil {
		t.Fatal(err)
	}
	proba, err := m.PredictProba(test.Series)
	if err != nil {
		t.Fatal(err)
	}
	if acc := ml.Accuracy(ml.Predict(proba), test.Labels); acc < 0.7 {
		t.Errorf("FreqSines accuracy = %v", acc)
	}
}

func TestRotationInvariance(t *testing.T) {
	// Bag-of-Patterns' selling point: a circularly shifted copy keeps
	// (almost) the same histogram, so shifted test data still classifies.
	fam, _ := synth.ByName("FreqSines")
	train, test := fam.Generate(9)
	shifted := make([][]float64, len(test.Series))
	for i, s := range test.Series {
		r := make([]float64, len(s))
		k := len(s) / 3
		copy(r, s[k:])
		copy(r[len(s)-k:], s[:k])
		shifted[i] = r
	}
	m := New(Params{Window: 32})
	if err := m.Fit(train.Series, train.Labels, train.Classes()); err != nil {
		t.Fatal(err)
	}
	proba, err := m.PredictProba(shifted)
	if err != nil {
		t.Fatal(err)
	}
	if acc := ml.Accuracy(ml.Predict(proba), test.Labels); acc < 0.65 {
		t.Errorf("shifted accuracy = %v, BOP should be rotation invariant", acc)
	}
}

func TestProbabilitySimplexAndErrors(t *testing.T) {
	fam, _ := synth.ByName("WarpedShapes")
	train, test := fam.Generate(3)
	m := New(Params{K: 3})
	if err := m.Fit(train.Series, train.Labels, train.Classes()); err != nil {
		t.Fatal(err)
	}
	proba, err := m.PredictProba(test.Series[:10])
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range proba {
		sum := 0.0
		for _, v := range p {
			if v < 0 || v > 1 {
				t.Fatalf("invalid probability %v", p)
			}
			sum += v
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("sums to %v", sum)
		}
	}
	fresh := New(Params{})
	if err := fresh.Fit(nil, nil, 2); err == nil {
		t.Error("empty fit should fail")
	}
	if _, err := fresh.PredictProba(test.Series[:1]); err == nil {
		t.Error("predict before fit should fail")
	}
	if fresh.Name() == "" || fresh.Clone() == nil {
		t.Error("name/clone")
	}
}
