package grpcx

import (
	"context"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// DefaultMaxMessageSize bounds one decoded frame in either direction —
// aligned with the HTTP API's 64 MiB MaxBytesReader body cap.
const DefaultMaxMessageSize = 64 << 20

// contentType is the content-type grpcx sends; anything with the
// "application/grpc" prefix is accepted ("+proto" suffix included).
const contentType = "application/grpc+proto"

// ServerCall is one live RPC as seen by a handler: inbound metadata, and
// for streaming handlers the Recv/Send frame pair.
type ServerCall struct {
	req     *http.Request
	w       http.ResponseWriter
	rc      *http.ResponseController
	flush   func()
	maxRecv int

	sendMu    sync.Mutex
	wroteBody bool
}

// Metadata returns the inbound metadata value for key (ASCII metadata
// travels as HTTP/2 headers; keys are case-insensitive).
func (c *ServerCall) Metadata(key string) string {
	return c.req.Header.Get(key)
}

// RemoteAddr returns the peer address of the underlying connection.
func (c *ServerCall) RemoteAddr() string { return c.req.RemoteAddr }

// SetWriteDeadline bounds subsequent Sends on this call — streaming
// handlers use it to evict peers that stop reading.
func (c *ServerCall) SetWriteDeadline(t time.Time) error {
	return c.rc.SetWriteDeadline(t)
}

// Recv decodes the next inbound frame into m. It returns io.EOF at the
// clean end of the client's send stream.
func (c *ServerCall) Recv(m Message) error {
	payload, err := ReadFrame(c.req.Body, c.maxRecv)
	if err != nil {
		return err
	}
	if err := m.Unmarshal(payload); err != nil {
		return Statusf(Internal, "decoding frame: %v", err)
	}
	return nil
}

// Send writes one response frame and flushes it to the peer — streaming
// responses must not sit in server buffers while the dialogue continues.
func (c *ServerCall) Send(m Message) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	c.wroteBody = true
	if err := WriteFrame(c.w, m.Marshal()); err != nil {
		return err
	}
	c.flush()
	return nil
}

// UnaryHandler serves one unary RPC: req is already decoded; the returned
// message is the response (ignored when err != nil, in which case err's
// Status becomes the trailer).
type UnaryHandler func(ctx context.Context, call *ServerCall, req Message) (Message, error)

// StreamHandler serves one bidi-streaming RPC through call.Recv/Send; the
// returned error's Status becomes the trailer.
type StreamHandler func(ctx context.Context, call *ServerCall) error

type route struct {
	newReq func() Message // unary request factory; nil for streams
	unary  UnaryHandler
	stream StreamHandler
}

// Server routes gRPC method paths to handlers. It implements
// http.Handler; serve it from an http.Server with unencrypted HTTP/2
// enabled (NewH2CServer).
type Server struct {
	routes  map[string]route
	maxRecv int
}

// NewServer returns an empty server with the default message size bound.
func NewServer() *Server {
	return &Server{routes: make(map[string]route), maxRecv: DefaultMaxMessageSize}
}

// Unary registers a unary method under its full path
// ("/mvg.v1.Mvg/Predict"); newReq allocates the request message.
func (s *Server) Unary(path string, newReq func() Message, h UnaryHandler) {
	s.routes[path] = route{newReq: newReq, unary: h}
}

// Stream registers a bidi-streaming method under its full path.
func (s *Server) Stream(path string, h StreamHandler) {
	s.routes[path] = route{stream: h}
}

// ServeHTTP implements the gRPC HTTP/2 server protocol: every RPC is an
// HTTP 200 whose real outcome travels in the grpc-status/grpc-message
// trailers.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.ProtoMajor != 2 {
		// gRPC requires HTTP/2; a cleartext HTTP/1 probe gets a plain
		// 505 it can render rather than an unparseable trailer.
		http.Error(w, "grpc requires HTTP/2 (h2c)", http.StatusHTTPVersionNotSupported)
		return
	}
	if r.Method != http.MethodPost || !strings.HasPrefix(r.Header.Get("Content-Type"), "application/grpc") {
		http.Error(w, "not a grpc request", http.StatusUnsupportedMediaType)
		return
	}
	rt, ok := s.routes[r.URL.Path]

	// Headers first, flushed immediately: a bidi stream's client may wait
	// for response headers before sending its first frame, and the status
	// always travels in trailers anyway.
	h := w.Header()
	h.Set("Content-Type", contentType)
	h.Set("Trailer", "Grpc-Status, Grpc-Message")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	_ = rc.Flush()

	trailer := func(st *Status) {
		h.Set("Grpc-Status", strconv.FormatUint(uint64(st.Code), 10))
		if st.Message != "" {
			h.Set("Grpc-Message", encodeGrpcMessage(st.Message))
		}
	}
	if !ok {
		trailer(Statusf(Unimplemented, "unknown method %s", r.URL.Path))
		return
	}

	ctx := r.Context()
	if tv := r.Header.Get("Grpc-Timeout"); tv != "" {
		if d, err := decodeTimeout(tv); err == nil {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, d)
			defer cancel()
		}
	}

	call := &ServerCall{req: r, w: w, rc: rc, maxRecv: s.maxRecv, flush: func() { _ = rc.Flush() }}
	err := func() (err error) {
		defer func() {
			if rec := recover(); rec != nil {
				err = Statusf(Internal, "handler panic: %v", rec)
			}
		}()
		if rt.unary != nil {
			req := rt.newReq()
			if rerr := call.Recv(req); rerr != nil {
				return Statusf(Internal, "reading request: %v", rerr)
			}
			resp, herr := rt.unary(ctx, call, req)
			if herr != nil {
				return herr
			}
			return call.Send(resp)
		}
		return rt.stream(ctx, call)
	}()
	trailer(StatusOf(err))
}

// NewH2CServer wraps handler in an http.Server configured for unencrypted
// HTTP/2 — the transport gRPC needs — while still accepting HTTP/1 (which
// ServeHTTP answers with a descriptive 505).
func NewH2CServer(addr string, handler http.Handler) *http.Server {
	srv := &http.Server{Addr: addr, Handler: handler}
	p := new(http.Protocols)
	p.SetHTTP1(true)
	p.SetHTTP2(true)
	p.SetUnencryptedHTTP2(true)
	srv.Protocols = p
	return srv
}
