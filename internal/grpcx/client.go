package grpcx

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// NewH2CTransport returns an http.Transport speaking unencrypted HTTP/2 —
// the client-side counterpart of NewH2CServer. Shared by the grpcx client
// and the proxy's backend connections.
func NewH2CTransport() *http.Transport {
	tr := &http.Transport{
		MaxIdleConnsPerHost: 16,
		IdleConnTimeout:     90 * time.Second,
	}
	p := new(http.Protocols)
	p.SetUnencryptedHTTP2(true)
	tr.Protocols = p
	return tr
}

// Client issues gRPC calls to one server address over h2c. Safe for
// concurrent use; connections are pooled by the underlying transport.
type Client struct {
	base    string // http://host:port
	hc      *http.Client
	maxRecv int
}

// Dial returns a client for addr ("host:port"). No connection is made
// until the first call.
func Dial(addr string) *Client {
	return &Client{
		base:    "http://" + addr,
		hc:      &http.Client{Transport: NewH2CTransport()},
		maxRecv: DefaultMaxMessageSize,
	}
}

// Close releases pooled connections.
func (c *Client) Close() {
	c.hc.CloseIdleConnections()
}

func (c *Client) newRequest(ctx context.Context, path string, md map[string]string, body io.Reader) (*http.Request, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, body)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", contentType)
	req.Header.Set("Te", "trailers")
	if dl, ok := ctx.Deadline(); ok {
		req.Header.Set("Grpc-Timeout", encodeTimeout(time.Until(dl)))
	}
	for k, v := range md {
		req.Header.Set(k, v)
	}
	return req, nil
}

// Invoke performs one unary RPC: req is marshalled as the single request
// frame, the single response frame is unmarshalled into resp, and a
// non-OK trailer status is returned as a *Status error.
func (c *Client) Invoke(ctx context.Context, path string, md map[string]string, req, resp Message) error {
	var body bytes.Buffer
	if err := WriteFrame(&body, req.Marshal()); err != nil {
		return err
	}
	hreq, err := c.newRequest(ctx, path, md, &body)
	if err != nil {
		return err
	}
	hresp, err := c.hc.Do(hreq)
	if err != nil {
		return &Status{Code: Unavailable, Message: err.Error()}
	}
	defer func() {
		io.Copy(io.Discard, hresp.Body)
		hresp.Body.Close()
	}()
	if err := checkResponse(hresp); err != nil {
		return err
	}
	// Trailers-only response: some servers answer an immediate error with
	// grpc-status in the HTTP headers and no body.
	if st := headerStatus(hresp.Header); st != nil && st.Code != OK {
		return st
	}
	payload, err := ReadFrame(hresp.Body, c.maxRecv)
	if errors.Is(err, io.EOF) {
		// No response frame: the status trailer says why.
		if st := trailerStatus(hresp); st.Code != OK {
			return st
		}
		return &Status{Code: Internal, Message: "server closed stream without a response message"}
	}
	if err != nil {
		return &Status{Code: Internal, Message: fmt.Sprintf("reading response: %v", err)}
	}
	if err := resp.Unmarshal(payload); err != nil {
		return &Status{Code: Internal, Message: fmt.Sprintf("decoding response: %v", err)}
	}
	// Drain to EOF so the trailers arrive, then check them.
	if _, err := io.Copy(io.Discard, hresp.Body); err != nil {
		return &Status{Code: Unavailable, Message: err.Error()}
	}
	if st := trailerStatus(hresp); st.Code != OK {
		return st
	}
	return nil
}

// ClientStream is one live bidi-streaming call.
type ClientStream struct {
	resp    *http.Response
	maxRecv int

	sendMu sync.Mutex
	pw     *io.PipeWriter
	closed bool

	recvErr error // sticky terminal state of the receive side
}

// Stream opens a bidi-streaming RPC. The returned stream must be finished
// either by reading through the terminal Recv error or by cancelling ctx,
// or the underlying HTTP/2 stream leaks until the context ends.
func (c *Client) Stream(ctx context.Context, path string, md map[string]string) (*ClientStream, error) {
	pr, pw := io.Pipe()
	hreq, err := c.newRequest(ctx, path, md, pr)
	if err != nil {
		return nil, err
	}
	hresp, err := c.hc.Do(hreq)
	if err != nil {
		pw.Close()
		return nil, &Status{Code: Unavailable, Message: err.Error()}
	}
	if err := checkResponse(hresp); err != nil {
		pw.Close()
		hresp.Body.Close()
		return nil, err
	}
	return &ClientStream{resp: hresp, pw: pw, maxRecv: c.maxRecv}, nil
}

// Send writes one request frame. Safe for one goroutine at a time per
// direction (sends may overlap receives).
func (s *ClientStream) Send(m Message) error {
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	if s.closed {
		return errors.New("grpcx: send on closed stream")
	}
	return WriteFrame(s.pw, m.Marshal())
}

// CloseSend ends the request stream (half-close); the server sees EOF.
func (s *ClientStream) CloseSend() error {
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.pw.Close()
}

// Recv decodes the next response frame into m. At the end of the response
// stream it returns io.EOF when the server finished OK, or the server's
// *Status error otherwise. After a terminal return the stream is closed.
func (s *ClientStream) Recv(m Message) error {
	if s.recvErr != nil {
		return s.recvErr
	}
	payload, err := ReadFrame(s.resp.Body, s.maxRecv)
	if err != nil {
		if errors.Is(err, io.EOF) {
			if st := trailerStatus(s.resp); st.Code != OK {
				s.recvErr = st
			} else {
				s.recvErr = io.EOF
			}
		} else {
			s.recvErr = &Status{Code: Unavailable, Message: err.Error()}
		}
		s.close()
		return s.recvErr
	}
	if err := m.Unmarshal(payload); err != nil {
		s.recvErr = &Status{Code: Internal, Message: fmt.Sprintf("decoding response: %v", err)}
		s.close()
		return s.recvErr
	}
	return nil
}

func (s *ClientStream) close() {
	_ = s.CloseSend()
	s.resp.Body.Close()
}

// checkResponse validates the HTTP layer of a gRPC response.
func checkResponse(resp *http.Response) error {
	if resp.StatusCode != http.StatusOK {
		return &Status{Code: Unavailable, Message: fmt.Sprintf("http status %s", resp.Status)}
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/grpc") {
		return &Status{Code: Internal, Message: fmt.Sprintf("not a grpc response (content-type %q)", ct)}
	}
	return nil
}

// headerStatus reads a grpc-status carried in headers (trailers-only
// responses); nil when absent.
func headerStatus(h http.Header) *Status {
	v := h.Get("Grpc-Status")
	if v == "" {
		return nil
	}
	code, err := strconv.ParseUint(v, 10, 32)
	if err != nil {
		return &Status{Code: Internal, Message: fmt.Sprintf("malformed grpc-status %q", v)}
	}
	return &Status{Code: Code(code), Message: decodeGrpcMessage(h.Get("Grpc-Message"))}
}

// trailerStatus reads the call status from response trailers (valid after
// the body hits EOF). A missing trailer is an Internal error: the server
// never finished the RPC properly.
func trailerStatus(resp *http.Response) *Status {
	if st := headerStatus(http.Header(resp.Trailer)); st != nil {
		return st
	}
	if st := headerStatus(resp.Header); st != nil {
		return st
	}
	return &Status{Code: Internal, Message: "server sent no grpc-status"}
}
