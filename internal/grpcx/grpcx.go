// Package grpcx is a minimal gRPC runtime over net/http's native
// unencrypted HTTP/2 (h2c, Go 1.24 http.Protocols) — servers and clients
// speak the standard gRPC wire protocol (length-prefixed protobuf frames
// over HTTP/2, grpc-status/grpc-message trailers, grpc-timeout deadline
// propagation, ASCII metadata as headers) without importing any non-std
// dependency, so the container the repo builds in needs neither
// google.golang.org/grpc nor a protoc toolchain. Interoperates with
// standard gRPC stacks; compression is not negotiated (frames are always
// sent uncompressed, and compressed inbound frames are rejected).
//
// The surface is deliberately small: a Server is an http.Handler that
// routes full method paths to unary or bidi-stream handlers, a Client
// issues Invoke (unary) and Stream (bidi) calls, and Status carries the
// code/message pair both directions. internal/serve/grpcapi builds the
// Mvg service on top; internal/proxy forwards raw frames with the
// ReadFrame/WriteFrame helpers.
package grpcx

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// Message is the structural interface the generated api/mvgpb types
// satisfy; grpcx stays decoupled from the generated package.
type Message interface {
	Marshal() []byte
	Unmarshal([]byte) error
}

// Code is a gRPC status code (the canonical numbering).
type Code uint32

const (
	OK                 Code = 0
	Canceled           Code = 1
	Unknown            Code = 2
	InvalidArgument    Code = 3
	DeadlineExceeded   Code = 4
	NotFound           Code = 5
	AlreadyExists      Code = 6
	PermissionDenied   Code = 7
	ResourceExhausted  Code = 8
	FailedPrecondition Code = 9
	Aborted            Code = 10
	OutOfRange         Code = 11
	Unimplemented      Code = 12
	Internal           Code = 13
	Unavailable        Code = 14
	DataLoss           Code = 15
	Unauthenticated    Code = 16
)

var codeNames = map[Code]string{
	OK: "OK", Canceled: "CANCELLED", Unknown: "UNKNOWN",
	InvalidArgument: "INVALID_ARGUMENT", DeadlineExceeded: "DEADLINE_EXCEEDED",
	NotFound: "NOT_FOUND", AlreadyExists: "ALREADY_EXISTS",
	PermissionDenied: "PERMISSION_DENIED", ResourceExhausted: "RESOURCE_EXHAUSTED",
	FailedPrecondition: "FAILED_PRECONDITION", Aborted: "ABORTED",
	OutOfRange: "OUT_OF_RANGE", Unimplemented: "UNIMPLEMENTED",
	Internal: "INTERNAL", Unavailable: "UNAVAILABLE", DataLoss: "DATA_LOSS",
	Unauthenticated: "UNAUTHENTICATED",
}

func (c Code) String() string {
	if s, ok := codeNames[c]; ok {
		return s
	}
	return fmt.Sprintf("CODE(%d)", uint32(c))
}

// Status is a gRPC status as an error. A nil *Status means OK.
type Status struct {
	Code    Code
	Message string
}

func (s *Status) Error() string {
	return fmt.Sprintf("rpc error: code = %s desc = %s", s.Code, s.Message)
}

// Statusf builds a *Status error.
func Statusf(code Code, format string, args ...any) *Status {
	return &Status{Code: code, Message: fmt.Sprintf(format, args...)}
}

// StatusOf extracts the *Status from err: a wrapped *Status keeps its
// code, context cancellation and deadline map to their canonical codes,
// nil maps to OK, and anything else is UNKNOWN.
func StatusOf(err error) *Status {
	if err == nil {
		return &Status{Code: OK}
	}
	var st *Status
	if errors.As(err, &st) {
		return st
	}
	switch {
	case errors.Is(err, context.Canceled):
		return &Status{Code: Canceled, Message: err.Error()}
	case errors.Is(err, context.DeadlineExceeded):
		return &Status{Code: DeadlineExceeded, Message: err.Error()}
	}
	return &Status{Code: Unknown, Message: err.Error()}
}

// ---- wire framing ----

// ErrFrameTooLarge is returned by ReadFrame for a frame whose declared
// length exceeds the caller's bound.
var ErrFrameTooLarge = errors.New("grpcx: frame exceeds size limit")

// errCompressed rejects inbound frames with the compressed flag set —
// grpcx never negotiates an encoding, so a compressed frame is a protocol
// error, not data to inflate.
var errCompressed = errors.New("grpcx: compressed frames not supported")

// WriteFrame writes one uncompressed length-prefixed gRPC frame.
func WriteFrame(w io.Writer, payload []byte) error {
	hdr := [5]byte{0,
		byte(len(payload) >> 24), byte(len(payload) >> 16),
		byte(len(payload) >> 8), byte(len(payload))}
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one gRPC frame, bounding the payload at maxSize bytes.
// io.EOF (clean end of stream) is returned only when no prefix byte was
// read; a frame cut mid-way is io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader, maxSize int) ([]byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, err
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	if hdr[0] != 0 {
		return nil, errCompressed
	}
	n := int(hdr[1])<<24 | int(hdr[2])<<16 | int(hdr[3])<<8 | int(hdr[4])
	if n > maxSize {
		return nil, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return payload, nil
}

// ---- grpc-message percent encoding ----

// encodeGrpcMessage percent-encodes a status message for the
// grpc-message trailer: '%' and every byte outside printable ASCII.
func encodeGrpcMessage(msg string) string {
	var b strings.Builder
	for i := 0; i < len(msg); i++ {
		c := msg[i]
		if c >= ' ' && c <= '~' && c != '%' {
			b.WriteByte(c)
		} else {
			fmt.Fprintf(&b, "%%%02X", c)
		}
	}
	return b.String()
}

// decodeGrpcMessage reverses encodeGrpcMessage, tolerating malformed
// escapes by passing them through verbatim.
func decodeGrpcMessage(msg string) string {
	if !strings.ContainsRune(msg, '%') {
		return msg
	}
	var b strings.Builder
	for i := 0; i < len(msg); i++ {
		if msg[i] == '%' && i+2 < len(msg) {
			if v, err := strconv.ParseUint(msg[i+1:i+3], 16, 8); err == nil {
				b.WriteByte(byte(v))
				i += 2
				continue
			}
		}
		b.WriteByte(msg[i])
	}
	return b.String()
}

// ---- grpc-timeout ----

// timeout units in descending size, as the spec defines them.
var timeoutUnits = []struct {
	suffix byte
	unit   time.Duration
}{
	{'H', time.Hour},
	{'M', time.Minute},
	{'S', time.Second},
	{'m', time.Millisecond},
	{'u', time.Microsecond},
	{'n', time.Nanosecond},
}

// encodeTimeout renders a deadline as a grpc-timeout header value: at
// most 8 digits, using the coarsest unit that still represents d.
func encodeTimeout(d time.Duration) string {
	if d <= 0 {
		return "0n"
	}
	for i := len(timeoutUnits) - 1; i >= 0; i-- {
		u := timeoutUnits[i]
		v := d / u.unit
		if v < 1e8 {
			return strconv.FormatInt(int64(v), 10) + string(u.suffix)
		}
	}
	return "99999999H"
}

// decodeTimeout parses a grpc-timeout header value.
func decodeTimeout(s string) (time.Duration, error) {
	if len(s) < 2 || len(s) > 9 {
		return 0, fmt.Errorf("grpcx: malformed grpc-timeout %q", s)
	}
	v, err := strconv.ParseInt(s[:len(s)-1], 10, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("grpcx: malformed grpc-timeout %q", s)
	}
	for _, u := range timeoutUnits {
		if u.suffix == s[len(s)-1] {
			return time.Duration(v) * u.unit, nil
		}
	}
	return 0, fmt.Errorf("grpcx: malformed grpc-timeout unit %q", s)
}
