package grpcx

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// echoMsg is a minimal Message for tests: a length-delimited field 1.
type echoMsg struct {
	Text string
}

func (m *echoMsg) Marshal() []byte {
	if m.Text == "" {
		return nil
	}
	b := []byte{0x0a, byte(len(m.Text))}
	return append(b, m.Text...)
}

func (m *echoMsg) Unmarshal(data []byte) error {
	m.Text = ""
	if len(data) == 0 {
		return nil
	}
	if len(data) < 2 || data[0] != 0x0a || int(data[1]) != len(data)-2 {
		return errors.New("echoMsg: bad wire")
	}
	m.Text = string(data[2:])
	return nil
}

// startServer boots an h2c gRPC server on a loopback port and returns a
// dialled client. Cleanup tears both down.
func startServer(t *testing.T, build func(*Server)) *Client {
	t.Helper()
	srv := NewServer()
	build(srv)
	hs := NewH2CServer("", srv)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go hs.Serve(ln)
	client := Dial(ln.Addr().String())
	t.Cleanup(func() {
		client.Close()
		hs.Close()
	})
	return client
}

func TestUnaryEcho(t *testing.T) {
	client := startServer(t, func(s *Server) {
		s.Unary("/test.Echo/Echo", func() Message { return new(echoMsg) },
			func(ctx context.Context, call *ServerCall, req Message) (Message, error) {
				return &echoMsg{Text: "echo:" + req.(*echoMsg).Text + ":" + call.Metadata("x-tenant")}, nil
			})
	})
	var resp echoMsg
	err := client.Invoke(context.Background(), "/test.Echo/Echo",
		map[string]string{"x-tenant": "t1"}, &echoMsg{Text: "hello"}, &resp)
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if resp.Text != "echo:hello:t1" {
		t.Errorf("resp = %q, want echo:hello:t1", resp.Text)
	}
}

func TestUnaryStatusError(t *testing.T) {
	client := startServer(t, func(s *Server) {
		s.Unary("/test.Echo/Fail", func() Message { return new(echoMsg) },
			func(ctx context.Context, call *ServerCall, req Message) (Message, error) {
				return nil, Statusf(InvalidArgument, "bad input: %s", "percent % and\nnewline")
			})
	})
	err := client.Invoke(context.Background(), "/test.Echo/Fail", nil, &echoMsg{Text: "x"}, &echoMsg{})
	var st *Status
	if !errors.As(err, &st) {
		t.Fatalf("error %v is not a *Status", err)
	}
	if st.Code != InvalidArgument {
		t.Errorf("code = %v, want INVALID_ARGUMENT", st.Code)
	}
	// The message survives percent-encoding through the trailer, newline
	// included.
	if want := "bad input: percent % and\nnewline"; st.Message != want {
		t.Errorf("message = %q, want %q", st.Message, want)
	}
}

func TestUnimplementedMethod(t *testing.T) {
	client := startServer(t, func(s *Server) {})
	err := client.Invoke(context.Background(), "/test.Echo/Nope", nil, &echoMsg{}, &echoMsg{})
	var st *Status
	if !errors.As(err, &st) || st.Code != Unimplemented {
		t.Fatalf("error = %v, want UNIMPLEMENTED status", err)
	}
}

func TestServerPanicBecomesInternal(t *testing.T) {
	client := startServer(t, func(s *Server) {
		s.Unary("/test.Echo/Panic", func() Message { return new(echoMsg) },
			func(ctx context.Context, call *ServerCall, req Message) (Message, error) {
				panic("boom")
			})
	})
	err := client.Invoke(context.Background(), "/test.Echo/Panic", nil, &echoMsg{}, &echoMsg{})
	var st *Status
	if !errors.As(err, &st) || st.Code != Internal {
		t.Fatalf("error = %v, want INTERNAL status", err)
	}
	if !strings.Contains(st.Message, "boom") {
		t.Errorf("message %q does not name the panic", st.Message)
	}
}

func TestDeadlinePropagates(t *testing.T) {
	gotDeadline := make(chan bool, 1)
	client := startServer(t, func(s *Server) {
		s.Unary("/test.Echo/Slow", func() Message { return new(echoMsg) },
			func(ctx context.Context, call *ServerCall, req Message) (Message, error) {
				_, ok := ctx.Deadline()
				gotDeadline <- ok
				select {
				case <-ctx.Done():
					return nil, ctx.Err()
				case <-time.After(5 * time.Second):
					return &echoMsg{Text: "too late"}, nil
				}
			})
	})
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	err := client.Invoke(ctx, "/test.Echo/Slow", nil, &echoMsg{}, &echoMsg{})
	if err == nil {
		t.Fatal("expected deadline error")
	}
	if !<-gotDeadline {
		t.Error("server context had no deadline — grpc-timeout not propagated")
	}
}

func TestBidiStream(t *testing.T) {
	client := startServer(t, func(s *Server) {
		s.Stream("/test.Echo/Chat", func(ctx context.Context, call *ServerCall) error {
			for {
				var in echoMsg
				if err := call.Recv(&in); err != nil {
					if errors.Is(err, io.EOF) {
						return call.Send(&echoMsg{Text: "bye"})
					}
					return err
				}
				if err := call.Send(&echoMsg{Text: "ack:" + in.Text}); err != nil {
					return err
				}
			}
		})
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	stream, err := client.Stream(ctx, "/test.Echo/Chat", nil)
	if err != nil {
		t.Fatalf("Stream: %v", err)
	}
	// Strict ping-pong proves full duplex: each ack must arrive before the
	// next send, so nothing can be satisfied by buffering the whole
	// request first.
	for _, msg := range []string{"one", "two", "three"} {
		if err := stream.Send(&echoMsg{Text: msg}); err != nil {
			t.Fatalf("Send(%q): %v", msg, err)
		}
		var in echoMsg
		if err := stream.Recv(&in); err != nil {
			t.Fatalf("Recv after %q: %v", msg, err)
		}
		if in.Text != "ack:"+msg {
			t.Errorf("got %q, want ack:%s", in.Text, msg)
		}
	}
	if err := stream.CloseSend(); err != nil {
		t.Fatal(err)
	}
	var in echoMsg
	if err := stream.Recv(&in); err != nil || in.Text != "bye" {
		t.Fatalf("final Recv = %q, %v; want bye, nil", in.Text, err)
	}
	if err := stream.Recv(&in); !errors.Is(err, io.EOF) {
		t.Fatalf("post-final Recv = %v, want io.EOF", err)
	}
}

func TestStreamServerError(t *testing.T) {
	client := startServer(t, func(s *Server) {
		s.Stream("/test.Echo/Reject", func(ctx context.Context, call *ServerCall) error {
			return Statusf(ResourceExhausted, "over quota")
		})
	})
	stream, err := client.Stream(context.Background(), "/test.Echo/Reject", nil)
	if err != nil {
		t.Fatalf("Stream: %v", err)
	}
	var in echoMsg
	err = stream.Recv(&in)
	var st *Status
	if !errors.As(err, &st) || st.Code != ResourceExhausted {
		t.Fatalf("Recv = %v, want RESOURCE_EXHAUSTED", err)
	}
}

func TestConcurrentUnaryCalls(t *testing.T) {
	client := startServer(t, func(s *Server) {
		s.Unary("/test.Echo/Echo", func() Message { return new(echoMsg) },
			func(ctx context.Context, call *ServerCall, req Message) (Message, error) {
				return req, nil
			})
	})
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var resp echoMsg
			if err := client.Invoke(context.Background(), "/test.Echo/Echo", nil, &echoMsg{Text: "x"}, &resp); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestHTTP1ProbeRejected(t *testing.T) {
	srv := NewServer()
	hs := NewH2CServer("", srv)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hs.Close()
	go hs.Serve(ln)
	resp, err := http.Post("http://"+ln.Addr().String()+"/x", contentType, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusHTTPVersionNotSupported {
		t.Errorf("HTTP/1 probe got %d, want 505", resp.StatusCode)
	}
}

func TestTimeoutCodec(t *testing.T) {
	for _, d := range []time.Duration{time.Nanosecond, time.Millisecond,
		1500 * time.Millisecond, time.Hour, 300 * time.Hour} {
		enc := encodeTimeout(d)
		if len(enc) > 9 {
			t.Errorf("encodeTimeout(%v) = %q exceeds 8 digits + unit", d, enc)
		}
		dec, err := decodeTimeout(enc)
		if err != nil {
			t.Fatalf("decodeTimeout(%q): %v", enc, err)
		}
		// The encoding may round down to its unit; never up, and never by
		// more than one unit step.
		if dec > d || d-dec >= d/8+time.Second {
			t.Errorf("timeout %v decoded as %v (enc %q)", d, dec, enc)
		}
	}
	for _, bad := range []string{"", "S", "123456789S", "12x", "-1S"} {
		if _, err := decodeTimeout(bad); err == nil {
			t.Errorf("decodeTimeout(%q) accepted", bad)
		}
	}
}

func TestGrpcMessageCodec(t *testing.T) {
	for _, msg := range []string{"", "plain", "pct % pct", "line\nbreak", "ünïcode", string([]byte{0, 1, 255})} {
		if got := decodeGrpcMessage(encodeGrpcMessage(msg)); got != msg {
			t.Errorf("round trip %q -> %q", msg, got)
		}
	}
}
