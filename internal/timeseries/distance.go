package timeseries

import (
	"fmt"
	"math"
)

// Euclidean returns the Euclidean distance between two equal-length series.
func Euclidean(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("timeseries: length mismatch %d != %d", len(a), len(b))
	}
	sum := 0.0
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum), nil
}

// SquaredEuclidean is Euclidean without the final square root; it preserves
// ordering and is cheaper inside nearest-neighbour searches.
func SquaredEuclidean(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("timeseries: length mismatch %d != %d", len(a), len(b))
	}
	sum := 0.0
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return sum, nil
}

// DTW computes the Dynamic Time Warping distance between a and b with a
// Sakoe-Chiba band of half-width window. window < 0 means an unconstrained
// (full) warp; window == 0 degenerates to Euclidean alignment. The series
// may have different lengths. The returned value is the square root of the
// accumulated squared point costs, matching the usual UCR convention.
func DTW(a, b []float64, window int) (float64, error) {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return 0, ErrEmpty
	}
	if window < 0 {
		window = max(n, m)
	}
	// The band must be at least |n-m| wide for any alignment to exist.
	w := max(window, abs(n-m))

	// Rolling two-row DP over the cost matrix.
	inf := math.Inf(1)
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	for j := 0; j <= m; j++ {
		prev[j] = inf
	}
	prev[0] = 0
	for i := 1; i <= n; i++ {
		for j := 0; j <= m; j++ {
			cur[j] = inf
		}
		lo := max(1, i-w)
		hi := min(m, i+w)
		for j := lo; j <= hi; j++ {
			d := a[i-1] - b[j-1]
			best := prev[j] // insertion
			if prev[j-1] < best {
				best = prev[j-1] // match
			}
			if cur[j-1] < best {
				best = cur[j-1] // deletion
			}
			cur[j] = d*d + best
		}
		prev, cur = cur, prev
	}
	if math.IsInf(prev[m], 1) {
		return 0, fmt.Errorf("timeseries: DTW band w=%d admits no alignment for lengths %d,%d", window, n, m)
	}
	return math.Sqrt(prev[m]), nil
}

// Envelope computes the upper and lower LB_Keogh envelopes of t for a
// Sakoe-Chiba band of half-width window: upper[i] = max(t[i-w..i+w]),
// lower[i] = min(t[i-w..i+w]). It is O(n) using monotonic deques.
func Envelope(t []float64, window int) (upper, lower []float64) {
	n := len(t)
	upper = make([]float64, n)
	lower = make([]float64, n)
	if n == 0 {
		return upper, lower
	}
	if window < 0 {
		window = n
	}
	// Monotonic deques holding candidate indices.
	maxDQ := make([]int, 0, n)
	minDQ := make([]int, 0, n)
	// Window for position i is [i-window, i+window].
	for i := 0; i < n+window; i++ {
		if i < n {
			for len(maxDQ) > 0 && t[maxDQ[len(maxDQ)-1]] <= t[i] {
				maxDQ = maxDQ[:len(maxDQ)-1]
			}
			maxDQ = append(maxDQ, i)
			for len(minDQ) > 0 && t[minDQ[len(minDQ)-1]] >= t[i] {
				minDQ = minDQ[:len(minDQ)-1]
			}
			minDQ = append(minDQ, i)
		}
		out := i - window
		if out >= 0 && out < n {
			for maxDQ[0] < out-window {
				maxDQ = maxDQ[1:]
			}
			for minDQ[0] < out-window {
				minDQ = minDQ[1:]
			}
			upper[out] = t[maxDQ[0]]
			lower[out] = t[minDQ[0]]
		}
	}
	return upper, lower
}

// LBKeogh returns the LB_Keogh lower bound of DTW(q, c) for equal-length
// series given the precomputed envelope of c. It lower-bounds the DTW value
// returned by DTW (i.e. sqrt of accumulated squared costs).
func LBKeogh(q, upper, lower []float64) (float64, error) {
	if len(q) != len(upper) || len(q) != len(lower) {
		return 0, fmt.Errorf("timeseries: envelope length mismatch")
	}
	sum := 0.0
	for i, v := range q {
		if v > upper[i] {
			d := v - upper[i]
			sum += d * d
		} else if v < lower[i] {
			d := lower[i] - v
			sum += d * d
		}
	}
	return math.Sqrt(sum), nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
