// Package timeseries provides the numeric time-series substrate used by the
// MVG pipeline: validation, normalization, detrending, piecewise aggregate
// approximation (PAA), the multiscale pyramid of Definition 3.1/3.2 of the
// paper, and summary statistics.
//
// A time series is a plain []float64 (Definition 2.1 in the paper); the
// package works on slices directly so callers can reuse buffers.
package timeseries

import (
	"errors"
	"fmt"
	"math"

	"mvg/internal/buf"
)

// Common errors returned by validation helpers.
var (
	ErrEmpty      = errors.New("timeseries: empty series")
	ErrTooShort   = errors.New("timeseries: series too short")
	ErrNonFinite  = errors.New("timeseries: series contains NaN or Inf")
	ErrBadSegment = errors.New("timeseries: invalid segment count")
)

// Validate checks that t is non-empty and contains only finite values.
func Validate(t []float64) error {
	if len(t) == 0 {
		return ErrEmpty
	}
	for i, v := range t {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: index %d is %v", ErrNonFinite, i, v)
		}
	}
	return nil
}

// Clone returns an independent copy of t.
func Clone(t []float64) []float64 {
	out := make([]float64, len(t))
	copy(out, t)
	return out
}

// Mean returns the arithmetic mean of t, or 0 for an empty series.
func Mean(t []float64) float64 {
	if len(t) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range t {
		sum += v
	}
	return sum / float64(len(t))
}

// Std returns the population standard deviation of t.
func Std(t []float64) float64 {
	if len(t) == 0 {
		return 0
	}
	mu := Mean(t)
	ss := 0.0
	for _, v := range t {
		d := v - mu
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(t)))
}

// MinMax returns the minimum and maximum values of t.
// It returns (0, 0) for an empty series.
func MinMax(t []float64) (min, max float64) {
	if len(t) == 0 {
		return 0, 0
	}
	min, max = t[0], t[0]
	for _, v := range t[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// ZNormalize returns a z-normalized copy of t: zero mean, unit variance.
// Near-constant series (σ below eps) are returned as all zeros rather than
// amplifying numeric noise, matching common UCR preprocessing.
func ZNormalize(t []float64) []float64 {
	return ZNormalizeInto(make([]float64, len(t)), t)
}

// ZNormalizeInto is ZNormalize writing into dst, which must have len(t).
// dst may alias t for in-place normalization. It returns dst.
func ZNormalizeInto(dst, t []float64) []float64 {
	const eps = 1e-12
	mu := Mean(t)
	sigma := Std(t)
	if sigma < eps {
		for i := range dst {
			dst[i] = 0
		}
		return dst
	}
	for i, v := range t {
		dst[i] = (v - mu) / sigma
	}
	return dst
}

// Detrend returns a copy of t with the least-squares linear trend removed.
// The paper notes VGs are unsuitable for series with monotonic trends; this
// is the recommended pre-processing step before VG construction.
func Detrend(t []float64) []float64 {
	return DetrendInto(make([]float64, len(t)), t)
}

// DetrendInto is Detrend writing into dst, which must have len(t). dst may
// alias t for in-place detrending. It returns dst.
func DetrendInto(dst, t []float64) []float64 {
	n := len(t)
	out := dst
	if n < 2 {
		copy(out, t)
		return out
	}
	// Least squares fit of v = a + b*i.
	var sx, sy, sxx, sxy float64
	for i, v := range t {
		x := float64(i)
		sx += x
		sy += v
		sxx += x * x
		sxy += x * v
	}
	fn := float64(n)
	den := fn*sxx - sx*sx
	var a, b float64
	if den != 0 {
		b = (fn*sxy - sx*sy) / den
		a = (sy - b*sx) / fn
	} else {
		a = sy / fn
	}
	for i, v := range t {
		out[i] = v - (a + b*float64(i))
	}
	return out
}

// PAA computes the Piecewise Aggregate Approximation of t with s segments
// (equation 1 of the paper). Segment boundaries follow the fractional
// scheme of Keogh & Pazzani so that n need not be divisible by s: sample k
// contributes to segment floor(k*s/n) with proportional weighting at
// boundaries handled by exact fractional assignment.
func PAA(t []float64, s int) ([]float64, error) {
	return PAAInto(nil, t, s)
}

// PAAInto is PAA writing into dst's storage (grown as needed, so a reused
// buffer makes repeated downscaling allocation-free). dst must not alias t.
// It returns the filled slice of length s.
func PAAInto(dst []float64, t []float64, s int) ([]float64, error) {
	n := len(t)
	if n == 0 {
		return nil, ErrEmpty
	}
	if s <= 0 || s > n {
		return nil, fmt.Errorf("%w: s=%d for n=%d", ErrBadSegment, s, n)
	}
	out := buf.Grow(dst, s)
	if s == n {
		copy(out, t)
		return out, nil
	}
	if n%s == 0 {
		// Fast path: equal-size integer segments.
		w := n / s
		for i := 0; i < s; i++ {
			sum := 0.0
			for k := i * w; k < (i+1)*w; k++ {
				sum += t[k]
			}
			out[i] = sum / float64(w)
		}
		return out, nil
	}
	// General fractional segmentation: segment i covers the real interval
	// [i*n/s, (i+1)*n/s); each sample contributes the overlapping fraction.
	ratio := float64(n) / float64(s)
	for i := 0; i < s; i++ {
		lo := float64(i) * ratio
		hi := float64(i+1) * ratio
		sum := 0.0
		for k := int(lo); k < n && float64(k) < hi; k++ {
			l := math.Max(lo, float64(k))
			r := math.Min(hi, float64(k+1))
			if r > l {
				sum += t[k] * (r - l)
			}
		}
		out[i] = sum / ratio
	}
	return out, nil
}

// Halve is PAA downscaling by a factor of exactly two (the multiscale step).
// An odd trailing sample is averaged into the final segment.
func Halve(t []float64) ([]float64, error) {
	return HalveInto(nil, t)
}

// HalveInto is Halve writing into dst's storage (grown as needed). dst must
// not alias t.
func HalveInto(dst, t []float64) ([]float64, error) {
	n := len(t)
	if n < 2 {
		return nil, ErrTooShort
	}
	return PAAInto(dst, t, n/2)
}

// DefaultTau is the default minimum length for multiscale approximations
// (Definition 3.1): scales shorter than this are considered trivial graphs
// and are not generated. The paper suggests τ = 15 as an optimization; τ=0
// is also valid since feature selection happens during classification.
const DefaultTau = 15

// Multiscale returns the approximated multiscale representation
// (T1, T2, ..., Tm) of Definition 3.1: successive PAA halvings of t with
// every scale longer than tau. The original series is NOT included; see
// MultiscaleFull for Definition 3.2. tau < 2 is treated as 2 because a
// visibility graph needs at least two vertices.
func Multiscale(t []float64, tau int) ([][]float64, error) {
	if err := Validate(t); err != nil {
		return nil, err
	}
	if tau < 2 {
		tau = 2
	}
	var scales [][]float64
	cur := t
	for len(cur)/2 > tau {
		next, err := Halve(cur)
		if err != nil {
			return nil, err
		}
		scales = append(scales, next)
		cur = next
	}
	return scales, nil
}

// MultiscaleFull returns the full multiscale representation
// (T0, T1, ..., Tm) of Definition 3.2: the original series followed by its
// approximated multiscale representation.
func MultiscaleFull(t []float64, tau int) ([][]float64, error) {
	scales, err := Multiscale(t, tau)
	if err != nil {
		return nil, err
	}
	out := make([][]float64, 0, len(scales)+1)
	out = append(out, Clone(t))
	out = append(out, scales...)
	return out, nil
}
