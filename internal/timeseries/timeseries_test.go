package timeseries

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		in      []float64
		wantErr bool
	}{
		{"empty", nil, true},
		{"single", []float64{1}, false},
		{"normal", []float64{1, 2, 3}, false},
		{"nan", []float64{1, math.NaN(), 3}, true},
		{"posinf", []float64{1, math.Inf(1)}, true},
		{"neginf", []float64{math.Inf(-1)}, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if err := Validate(tc.in); (err != nil) != tc.wantErr {
				t.Fatalf("Validate(%v) err=%v, wantErr=%v", tc.in, err, tc.wantErr)
			}
		})
	}
}

func TestMeanStdMinMax(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(x); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := Std(x); !almostEqual(got, 2, 1e-12) {
		t.Errorf("Std = %v, want 2", got)
	}
	lo, hi := MinMax(x)
	if lo != 2 || hi != 9 {
		t.Errorf("MinMax = %v,%v want 2,9", lo, hi)
	}
	if Mean(nil) != 0 || Std(nil) != 0 {
		t.Errorf("empty series stats should be 0")
	}
}

func TestZNormalize(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	z := ZNormalize(x)
	if !almostEqual(Mean(z), 0, 1e-12) {
		t.Errorf("mean after znorm = %v", Mean(z))
	}
	if !almostEqual(Std(z), 1, 1e-12) {
		t.Errorf("std after znorm = %v", Std(z))
	}
	// Constant series → all zeros, not NaN.
	for _, v := range ZNormalize([]float64{3, 3, 3}) {
		if v != 0 {
			t.Errorf("constant series should normalize to zeros, got %v", v)
		}
	}
}

func TestDetrendRemovesLinearTrend(t *testing.T) {
	n := 100
	x := make([]float64, n)
	for i := range x {
		x[i] = 3.5 + 0.25*float64(i) + math.Sin(float64(i)/5)
	}
	d := Detrend(x)
	// The residual must have (near-)zero mean and no linear correlation
	// with the index.
	if !almostEqual(Mean(d), 0, 1e-9) {
		t.Errorf("detrended mean = %v", Mean(d))
	}
	var sxy float64
	for i, v := range d {
		sxy += (float64(i) - float64(n-1)/2) * v
	}
	if !almostEqual(sxy, 0, 1e-6) {
		t.Errorf("detrended series still correlates with time: %v", sxy)
	}
	// A perfectly linear ramp detrends to ~zero everywhere.
	ramp := make([]float64, 50)
	for i := range ramp {
		ramp[i] = -2 + 7*float64(i)
	}
	for _, v := range Detrend(ramp) {
		if !almostEqual(v, 0, 1e-9) {
			t.Fatalf("ramp residual %v != 0", v)
		}
	}
}

func TestPAAExactDivision(t *testing.T) {
	x := []float64{1, 3, 5, 7, 2, 4, 6, 8}
	got, err := PAA(x, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 6, 3, 7}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Errorf("PAA[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestPAAFractional(t *testing.T) {
	// n=5, s=2: segments cover [0,2.5) and [2.5,5).
	x := []float64{1, 2, 3, 4, 5}
	got, err := PAA(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	want0 := (1 + 2 + 0.5*3) / 2.5
	want1 := (0.5*3 + 4 + 5) / 2.5
	if !almostEqual(got[0], want0, 1e-12) || !almostEqual(got[1], want1, 1e-12) {
		t.Errorf("PAA = %v, want [%v %v]", got, want0, want1)
	}
}

func TestPAAErrors(t *testing.T) {
	if _, err := PAA(nil, 1); err == nil {
		t.Error("expected error for empty series")
	}
	if _, err := PAA([]float64{1, 2}, 0); err == nil {
		t.Error("expected error for s=0")
	}
	if _, err := PAA([]float64{1, 2}, 3); err == nil {
		t.Error("expected error for s>n")
	}
	got, err := PAA([]float64{1, 2}, 2)
	if err != nil || got[0] != 1 || got[1] != 2 {
		t.Errorf("identity PAA failed: %v %v", got, err)
	}
}

func TestPAAMeanPreservationProperty(t *testing.T) {
	// PAA with exact division preserves the global mean.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 64
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		p, err := PAA(x, 16)
		if err != nil {
			return false
		}
		return almostEqual(Mean(p), Mean(x), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMultiscaleSizes(t *testing.T) {
	x := make([]float64, 256)
	for i := range x {
		x[i] = float64(i % 7)
	}
	scales, err := Multiscale(x, 15)
	if err != nil {
		t.Fatal(err)
	}
	// 256 → 128 → 64 → 32 (16 would not exceed τ=15... 32/2=16 > 15 so 16 included).
	wantLens := []int{128, 64, 32, 16}
	if len(scales) != len(wantLens) {
		t.Fatalf("got %d scales, want %d", len(scales), len(wantLens))
	}
	for i, s := range scales {
		if len(s) != wantLens[i] {
			t.Errorf("scale %d has %d points, want %d", i, len(s), wantLens[i])
		}
	}
	full, err := MultiscaleFull(x, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != len(scales)+1 || len(full[0]) != 256 {
		t.Errorf("MultiscaleFull should prepend T0")
	}
}

func TestMultiscaleTinyTau(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	scales, err := Multiscale(x, 0)
	if err != nil {
		t.Fatal(err)
	}
	// τ clamps to 2: scales 4, hmm 8/2=4>2 yes; 4/2=2 not >2 stop. → [4]
	if len(scales) != 1 || len(scales[0]) != 4 {
		t.Errorf("unexpected scales: %v", scales)
	}
	if _, err := Multiscale(nil, 0); err == nil {
		t.Error("expected error for empty series")
	}
}

func TestEuclidean(t *testing.T) {
	d, err := Euclidean([]float64{0, 0}, []float64{3, 4})
	if err != nil || !almostEqual(d, 5, 1e-12) {
		t.Errorf("Euclidean = %v, %v", d, err)
	}
	if _, err := Euclidean([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("expected length mismatch error")
	}
	sq, _ := SquaredEuclidean([]float64{0, 0}, []float64{3, 4})
	if !almostEqual(sq, 25, 1e-12) {
		t.Errorf("SquaredEuclidean = %v", sq)
	}
}

func TestDTWIdentityAndSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := make([]float64, 40)
	b := make([]float64, 40)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	d0, err := DTW(a, a, -1)
	if err != nil || !almostEqual(d0, 0, 1e-12) {
		t.Errorf("DTW(a,a) = %v, %v", d0, err)
	}
	dab, _ := DTW(a, b, -1)
	dba, _ := DTW(b, a, -1)
	if !almostEqual(dab, dba, 1e-9) {
		t.Errorf("DTW not symmetric: %v vs %v", dab, dba)
	}
}

func TestDTWNotWorseThanEuclidean(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := make([]float64, 32)
		b := make([]float64, 32)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		dtw, err1 := DTW(a, b, -1)
		ed, err2 := Euclidean(a, b)
		return err1 == nil && err2 == nil && dtw <= ed+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDTWWindowMonotone(t *testing.T) {
	// Wider windows can only lower (or keep) the distance.
	rng := rand.New(rand.NewSource(11))
	a := make([]float64, 50)
	b := make([]float64, 50)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	prev := math.Inf(1)
	for _, w := range []int{0, 1, 2, 5, 10, 25, 50} {
		d, err := DTW(a, b, w)
		if err != nil {
			t.Fatal(err)
		}
		if d > prev+1e-9 {
			t.Errorf("DTW window=%d gave %v > previous %v", w, d, prev)
		}
		prev = d
	}
	// window 0 equals Euclidean for equal lengths.
	d0, _ := DTW(a, b, 0)
	ed, _ := Euclidean(a, b)
	if !almostEqual(d0, ed, 1e-9) {
		t.Errorf("DTW(w=0)=%v != Euclidean=%v", d0, ed)
	}
}

func TestDTWShiftInvariance(t *testing.T) {
	// A shifted copy should have much smaller DTW than Euclidean distance.
	n := 64
	a := make([]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = math.Sin(2 * math.Pi * float64(i) / 16)
		b[i] = math.Sin(2 * math.Pi * float64(i+2) / 16)
	}
	// Boundary points cannot warp away, so DTW is small but non-zero.
	dtw, _ := DTW(a, b, -1)
	ed, _ := Euclidean(a, b)
	if dtw > ed/3 {
		t.Errorf("DTW=%v should be far below ED=%v for phase shift", dtw, ed)
	}
}

func TestDTWDifferentLengths(t *testing.T) {
	a := []float64{0, 1, 2, 3, 4}
	b := []float64{0, 0, 1, 1, 2, 2, 3, 3, 4, 4}
	d, err := DTW(a, b, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(d, 0, 1e-12) {
		t.Errorf("DTW of stretched copy = %v, want 0", d)
	}
	if _, err := DTW(nil, b, -1); err == nil {
		t.Error("expected error for empty input")
	}
}

func TestEnvelopeAndLBKeogh(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 64
	for trial := 0; trial < 20; trial++ {
		q := make([]float64, n)
		c := make([]float64, n)
		for i := range q {
			q[i] = rng.NormFloat64()
			c[i] = rng.NormFloat64()
		}
		w := 5
		up, lo := Envelope(c, w)
		for i := range c {
			if up[i] < c[i] || lo[i] > c[i] {
				t.Fatalf("envelope does not contain series at %d", i)
			}
		}
		lb, err := LBKeogh(q, up, lo)
		if err != nil {
			t.Fatal(err)
		}
		d, err := DTW(q, c, w)
		if err != nil {
			t.Fatal(err)
		}
		if lb > d+1e-9 {
			t.Fatalf("LB_Keogh %v exceeds DTW %v", lb, d)
		}
	}
}

func TestEnvelopeBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := make([]float64, 40)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	w := 3
	up, lo := Envelope(x, w)
	for i := range x {
		wantHi := math.Inf(-1)
		wantLo := math.Inf(1)
		for j := maxInt(0, i-w); j <= minInt(len(x)-1, i+w); j++ {
			wantHi = math.Max(wantHi, x[j])
			wantLo = math.Min(wantLo, x[j])
		}
		if !almostEqual(up[i], wantHi, 1e-12) || !almostEqual(lo[i], wantLo, 1e-12) {
			t.Fatalf("envelope[%d] = (%v,%v), want (%v,%v)", i, up[i], lo[i], wantHi, wantLo)
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
