// Package grids defines the hyper-parameter search grids for the three
// generic classifier families of Section 4.2/4.3. The paper's grid
// (learning rate ∈ 3 values, estimators ∈ 10 values, depth ∈ {10, 20},
// subsample = colsample = 0.5) is provided in full and in a reduced
// "quick" form used by tests and the scaled-down benchmark harness.
package grids

import (
	"mvg/internal/ml"
	"mvg/internal/ml/forest"
	"mvg/internal/ml/svm"
	"mvg/internal/ml/xgb"
)

// Size selects the grid resolution.
type Size int

const (
	// Quick is a small grid for tests and fast experiment runs.
	Quick Size = iota
	// Full mirrors the paper's grid-search dimensions.
	Full
)

// XGB returns the XGBoost candidate grid. The paper: learning rate has
// "three choices from 0.01 to 0.3", estimators "10 choices from 10 to
// 100", depth "10 or 20", subsample and colsample fixed at 0.5.
func XGB(size Size, seed int64) []ml.Classifier {
	var lrs []float64
	var rounds, depths []int
	switch size {
	case Full:
		lrs = []float64{0.01, 0.1, 0.3}
		rounds = []int{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
		depths = []int{10, 20}
	default:
		lrs = []float64{0.1, 0.3}
		rounds = []int{25, 50}
		depths = []int{3, 6}
	}
	var out []ml.Classifier
	for _, lr := range lrs {
		for _, r := range rounds {
			for _, d := range depths {
				out = append(out, xgb.New(xgb.Params{
					NumRounds:       r,
					LearningRate:    lr,
					MaxDepth:        d,
					Subsample:       0.5,
					ColsampleByTree: 0.5,
					Seed:            seed,
				}))
			}
		}
	}
	return out
}

// RF returns the random-forest candidate grid.
func RF(size Size, seed int64) []ml.Classifier {
	var trees, depths []int
	switch size {
	case Full:
		trees = []int{50, 100, 200, 400}
		depths = []int{0, 10, 20}
	default:
		trees = []int{50, 100}
		depths = []int{0, 10}
	}
	var out []ml.Classifier
	for _, n := range trees {
		for _, d := range depths {
			out = append(out, forest.New(forest.Params{
				NumTrees: n,
				MaxDepth: d,
				Seed:     seed,
			}))
		}
	}
	return out
}

// SVM returns the SVM candidate grid (inputs must be min-max scaled).
func SVM(size Size, seed int64) []ml.Classifier {
	var cs, gammas []float64
	switch size {
	case Full:
		cs = []float64{0.1, 1, 10, 100}
		gammas = []float64{0, 0.01, 0.1, 1} // 0 = 1/numFeatures
	default:
		cs = []float64{1, 10}
		gammas = []float64{0, 0.1}
	}
	var out []ml.Classifier
	for _, c := range cs {
		for _, g := range gammas {
			out = append(out, svm.New(svm.Params{C: c, Kernel: svm.RBF, Gamma: g, Seed: seed}))
		}
	}
	// One linear machine per C completes the family.
	for _, c := range cs {
		out = append(out, svm.New(svm.Params{C: c, Kernel: svm.Linear, Seed: seed}))
	}
	return out
}
